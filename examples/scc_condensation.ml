(* Strongly connected components and condensation — the model-checking
   motivation from the paper's introduction (huge implicit graphs whose SCC
   structure must be computed, with a concurrent DSU as the shared component
   store, as in Bloemen et al.'s multi-core on-the-fly SCC decomposition).

   We build a synthetic "state space": clusters of states joined by
   forward-only transitions (each cluster a terminal or transient SCC),
   compute SCCs with Tarjan's algorithm, collapse them through the
   concurrent DSU, and inspect the condensation DAG.

   Run with:  dune exec examples/scc_condensation.exe *)

let () =
  let rng = Repro_util.Rng.create 99 in
  let clusters = 64 and cluster_size = 50 in
  let g =
    Graphs.Generators.clustered_digraph ~rng ~clusters ~cluster_size ~extra:800
  in
  Printf.printf "synthetic state space: %d states, %d transitions\n"
    (Graphs.Digraph.n g) (Graphs.Digraph.num_edges g);

  let c = Graphs.Scc.condense_with_dsu ~seed:17 g in
  let num_sccs = Graphs.Scc.count c.Graphs.Scc.labels in
  Printf.printf "SCCs found: %d (expected %d)\n" num_sccs clusters;
  assert (num_sccs = clusters);

  let q = c.Graphs.Scc.quotient in
  Printf.printf "condensation: %d vertices, %d edges\n" (Graphs.Digraph.n q)
    (Graphs.Digraph.num_edges q);
  (* The condensation must be a DAG: every SCC of the quotient is trivial. *)
  assert (Graphs.Scc.count (Graphs.Scc.tarjan q) = Graphs.Digraph.n q);
  print_endline "condensation is acyclic";

  (* Terminal SCCs (no outgoing quotient edges) are the "fates" of the
     system — in model checking, where runs can end up. *)
  let terminal = ref 0 in
  for v = 0 to Graphs.Digraph.n q - 1 do
    if Array.length (Graphs.Digraph.out q v) = 0 then incr terminal
  done;
  Printf.printf "terminal SCCs: %d\n" !terminal;

  (* SCC sizes. *)
  let sizes = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      Hashtbl.replace sizes l (1 + Option.value ~default:0 (Hashtbl.find_opt sizes l)))
    c.Graphs.Scc.labels;
  let max_size = Hashtbl.fold (fun _ s acc -> max s acc) sizes 0 in
  Printf.printf "largest SCC: %d states (expected %d)\n" max_size cluster_size;

  (* A second, irregular instance: random digraph near the SCC phase
     transition (m ~ n), where a giant SCC starts to form. *)
  let n = 20_000 in
  Printf.printf "\nrandom digraph sweep (n=%d):\n%8s %10s %14s\n" n "m/n"
    "SCCs" "largest SCC";
  List.iter
    (fun factor ->
      let m = factor * n in
      let dg = Graphs.Generators.random_digraph ~rng ~n ~m in
      let labels = Graphs.Scc.tarjan dg in
      let sizes = Hashtbl.create 64 in
      Array.iter
        (fun l ->
          Hashtbl.replace sizes l
            (1 + Option.value ~default:0 (Hashtbl.find_opt sizes l)))
        labels;
      let largest = Hashtbl.fold (fun _ s acc -> max s acc) sizes 0 in
      Printf.printf "%8d %10d %14d\n%!" factor (Graphs.Scc.count labels) largest)
    [ 1; 2; 4 ]
