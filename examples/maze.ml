(* Maze generation with union-find (randomized Kruskal): knock down a
   random wall whenever it separates two cells that are not yet connected;
   when all cells are in one set, the standing walls form a perfect maze
   (unique path between any two cells).  The DSU answers exactly the
   connectivity question the algorithm needs after every removal.

   Run with:  dune exec examples/maze.exe *)

let rows = 12
let cols = 32

type wall = { a : int; b : int; horizontal : bool }
(* The wall between cells [a] and [b]; [horizontal] walls are between
   vertically adjacent cells. *)

let () =
  let rng = Repro_util.Rng.create 20260706 in
  let cell r c = (r * cols) + c in
  let walls = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        walls := { a = cell r c; b = cell r (c + 1); horizontal = false } :: !walls;
      if r + 1 < rows then
        walls := { a = cell r c; b = cell (r + 1) c; horizontal = true } :: !walls
    done
  done;
  let walls = Array.of_list !walls in
  Repro_util.Rng.shuffle rng walls;

  let dsu = Dsu.Native.create ~seed:7 (rows * cols) in
  let open_right = Hashtbl.create 256 in
  let open_down = Hashtbl.create 256 in
  let removed = ref 0 in
  Array.iter
    (fun w ->
      if not (Dsu.Native.same_set dsu w.a w.b) then begin
        Dsu.Native.unite dsu w.a w.b;
        incr removed;
        if w.horizontal then Hashtbl.replace open_down w.a ()
        else Hashtbl.replace open_right w.a ()
      end)
    walls;
  assert (Dsu.Native.count_sets dsu = 1);
  assert (!removed = (rows * cols) - 1);
  Printf.printf "perfect maze: %dx%d cells, %d walls removed of %d\n\n" rows cols
    !removed (Array.length walls);

  (* Solve it (breadth-first) to draw the entrance-to-exit path. *)
  let neighbours v =
    let r = v / cols and c = v mod cols in
    List.concat
      [
        (if Hashtbl.mem open_right v then [ cell r (c + 1) ] else []);
        (if c > 0 && Hashtbl.mem open_right (cell r (c - 1)) then [ cell r (c - 1) ]
         else []);
        (if Hashtbl.mem open_down v then [ cell (r + 1) c ] else []);
        (if r > 0 && Hashtbl.mem open_down (cell (r - 1) c) then [ cell (r - 1) c ]
         else []);
      ]
  in
  let start = cell 0 0 and goal = cell (rows - 1) (cols - 1) in
  let prev = Array.make (rows * cols) (-1) in
  let queue = Queue.create () in
  prev.(start) <- start;
  Queue.push start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if prev.(w) = -1 then begin
          prev.(w) <- v;
          Queue.push w queue
        end)
      (neighbours v)
  done;
  let on_path = Array.make (rows * cols) false in
  let rec mark v =
    on_path.(v) <- true;
    if v <> start then mark prev.(v)
  in
  mark goal;
  let path_length = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 on_path in

  (* Render: every cell is 2 characters wide; '.' marks the solution. *)
  print_string "+";
  for _ = 1 to cols do
    print_string "--+"
  done;
  print_newline ();
  for r = 0 to rows - 1 do
    print_string "|";
    for c = 0 to cols - 1 do
      print_string (if on_path.(cell r c) then "()" else "  ");
      print_string (if Hashtbl.mem open_right (cell r c) then " " else "|")
    done;
    print_newline ();
    print_string "+";
    for c = 0 to cols - 1 do
      print_string (if Hashtbl.mem open_down (cell r c) then "  +" else "--+")
    done;
    print_newline ()
  done;
  Printf.printf "\nsolution length: %d cells (unique, since the maze is a tree)\n"
    path_length
