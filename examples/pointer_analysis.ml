(* Pointer analysis with union-find — the compiler application behind the
   paper's "storage allocation in compilers" citation (Lattner & Adve's pool
   allocation rests on a unification-based points-to analysis).

   Steensgaard's analysis processes each statement with a constant number of
   union-find operations (abstract locations are created on the fly — the
   paper's MakeSet extension) and answers may-alias queries in near-constant
   time.  Andersen's inclusion-based analysis is more precise but cubic;
   this example shows both the speed gap and the precision gap.

   Run with:  dune exec examples/pointer_analysis.exe *)

module S = Analysis.Steensgaard
module A = Analysis.Andersen

let () =
  (* A small program, annotated. *)
  let program =
    [
      S.Address_of ("p", "x");   (* p = &x  *)
      S.Address_of ("q", "y");   (* q = &y  *)
      S.Address_of ("r", "z");   (* r = &z  *)
      S.Copy ("s", "p");         (* s = p   *)
      S.Store ("q", "r");        (* *q = r  *)
      S.Load ("t", "q");         (* t = *q  *)
    ]
  in
  print_endline "program:";
  List.iter (fun st -> Format.printf "  %a@." S.pp_stmt st) program;

  let steens = S.analyze program in
  let anders = A.analyze program in
  print_endline "\nmay-alias matrix (S = Steensgaard, A = Andersen):";
  let vars = A.variables anders in
  Format.printf "%6s" "";
  List.iter (fun v -> Format.printf "%5s" v) vars;
  Format.printf "@.";
  List.iter
    (fun a ->
      Format.printf "%6s" a;
      List.iter
        (fun b ->
          let s = S.may_alias steens a b and an = A.may_alias anders a b in
          Format.printf "%5s"
            (match (s, an) with
            | true, true -> "SA"
            | true, false -> "S"
            | false, true -> "!!"     (* would be a soundness bug *)
            | false, false -> "."))
        vars;
      Format.printf "@.")
    vars;
  print_endline
    "(SA = both agree alias, S = only Steensgaard (its precision loss),\n\
    \ . = neither; '!!' would mean unsoundness and never appears)";

  (* Scale comparison: Steensgaard is near-linear, Andersen cubic. *)
  print_endline "\nscaling (random programs, may-alias over all variable pairs):";
  Printf.printf "%10s %12s %12s %16s\n" "stmts" "steens (s)" "andersen (s)"
    "extra S aliases";
  let rng = Repro_util.Rng.create 5 in
  List.iter
    (fun size ->
      let nvars = size / 10 in
      let var i = Printf.sprintf "v%d" i in
      let program =
        List.init size (fun _ ->
            let x = var (Repro_util.Rng.int rng nvars) in
            let y = var (Repro_util.Rng.int rng nvars) in
            match Repro_util.Rng.int rng 4 with
            | 0 -> S.Address_of (x, y)
            | 1 -> S.Copy (x, y)
            | 2 -> S.Load (x, y)
            | _ -> S.Store (x, y))
      in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let steens, st = time (fun () -> S.analyze ~capacity:(4 * size) program) in
      let anders, at = time (fun () -> A.analyze program) in
      let extra = ref 0 in
      let vars = A.variables anders in
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              let s = S.may_alias steens x y and a = A.may_alias anders x y in
              assert ((not a) || s);
              if s && not a then incr extra)
            vars)
        vars;
      Printf.printf "%10d %12.4f %12.4f %16d\n%!" size st at !extra)
    [ 250; 1_000; 2_000 ]
