(* Minimum spanning forests with Kruskal's algorithm — the MST application
   from the paper's introduction.  The DSU is the algorithm's engine: an
   edge enters the forest exactly when its endpoints are in different sets.

   Run with:  dune exec examples/kruskal_mst.exe *)

let () =
  let rng = Repro_util.Rng.create 7 in

  (* A small hand-readable instance first. *)
  let g =
    Graphs.Graph.create ~n:5
      ~edges:[| (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 2); (1, 3) |]
  in
  let w =
    { Graphs.Graph.graph = g; weights = [| 4.; 8.; 7.; 9.; 1.; 2.; 3. |] }
  in
  let r = Graphs.Kruskal.run w in
  Printf.printf "toy graph MST (weight %.0f):\n" r.Graphs.Kruskal.total_weight;
  List.iter
    (fun (u, v, wt) -> Printf.printf "  %d -- %d  (%.0f)\n" u v wt)
    r.Graphs.Kruskal.edges;

  (* A larger random instance, solved with both the sequential DSU and the
     concurrent one; the forests may differ (ties) but weights must agree. *)
  let n = 50_000 and m = 200_000 in
  let g = Graphs.Generators.erdos_renyi ~rng ~n ~m () in
  let w = Graphs.Graph.with_random_weights ~rng g in
  let seq = Graphs.Kruskal.run w in
  let conc = Graphs.Kruskal.run_concurrent_dsu ~seed:13 w in
  Printf.printf
    "\nrandom graph n=%d m=%d:\n  sequential DSU: weight %.2f, %d trees\n  concurrent DSU: weight %.2f, %d trees\n"
    n m seq.Graphs.Kruskal.total_weight seq.Graphs.Kruskal.components
    conc.Graphs.Kruskal.total_weight conc.Graphs.Kruskal.components;
  assert (Float.abs (seq.Graphs.Kruskal.total_weight -. conc.Graphs.Kruskal.total_weight) < 1e-6);
  print_endline "weights agree";

  (* Boruvka on the same instance: same forest weight, logarithmically many
     rounds, and its edge scans parallelize across domains. *)
  let b = Graphs.Boruvka.run_parallel ~domains:4 w in
  Printf.printf "  Boruvka (4 domains): weight %.2f in %d rounds\n"
    b.Graphs.Boruvka.total_weight b.Graphs.Boruvka.rounds;
  assert (Float.abs (b.Graphs.Boruvka.total_weight -. seq.Graphs.Kruskal.total_weight) < 1e-6);

  (* Sparse graphs leave a forest: count the trees. *)
  let sparse = Graphs.Generators.erdos_renyi ~rng ~n:10_000 ~m:4_000 () in
  let sw = Graphs.Graph.with_random_weights ~rng sparse in
  let rf = Graphs.Kruskal.run sw in
  Printf.printf "sparse graph: %d trees in the minimum spanning forest\n"
    rf.Graphs.Kruskal.components
