(* Connected components of a large random graph, computed three ways:
   sequential DSU, concurrent DSU driven by several domains, and the
   incremental (dynamic-connectivity) interface.

   This is the canonical application from the paper's introduction:
   "maintaining connected components in a graph under edge insertions".

   Run with:  dune exec examples/connected_components.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let rng = Repro_util.Rng.create 2024 in
  let n = 200_000 and m = 300_000 in
  Printf.printf "generating Erdos-Renyi graph: n=%d m=%d...\n%!" n m;
  let g = Graphs.Generators.erdos_renyi ~rng ~n ~m () in

  let seq_labels, seq_time = time (fun () -> Graphs.Components.sequential g) in
  Printf.printf "sequential DSU:  %d components in %.3fs\n%!"
    (Graphs.Components.count seq_labels) seq_time;

  let conc_labels, conc_time =
    time (fun () -> Graphs.Components.concurrent ~domains:4 ~seed:11 g)
  in
  Printf.printf "concurrent DSU:  %d components in %.3fs (4 domains)\n%!"
    (Graphs.Components.count conc_labels) conc_time;

  assert (seq_labels = conc_labels);
  print_endline "sequential and concurrent labelings agree";

  (* Dynamic connectivity through the incremental interface: watch the
     giant component emerge as random edges arrive (the Erdos-Renyi phase
     transition around m = n/2). *)
  let n = 50_000 in
  let add_edge, connected = Graphs.Components.incremental ~seed:3 ~n () in
  let sets = ref n in
  Printf.printf "\nedge arrivals on n=%d (watch the phase transition):\n" n;
  Printf.printf "%10s %12s\n" "edges" "components";
  let next_report = ref (n / 8) in
  let added = ref 0 in
  while !sets > 1 && !added < 20 * n do
    let x = Repro_util.Rng.int rng n and y = Repro_util.Rng.int rng n in
    if not (connected x y) then decr sets;
    add_edge x y;
    incr added;
    if !added = !next_report then begin
      Printf.printf "%10d %12d\n%!" !added !sets;
      next_report := !next_report * 2
    end
  done;
  Printf.printf "single component after %d edge arrivals\n" !added
