(* Percolation testing — another introduction application (and the textbook
   union-find showcase): estimate the site-percolation threshold of the
   square lattice by Monte Carlo, with the DSU maintaining connectivity of
   open sites to virtual top/bottom nodes.

   The known threshold is ~0.5927; the estimate concentrates there as the
   grid grows.

   Run with:  dune exec examples/percolation.exe *)

let () =
  let rng = Repro_util.Rng.create 31 in

  (* A small visual demo: open sites until percolation, render the grid. *)
  let size = 12 in
  let p = Graphs.Percolation.create ~seed:1 size in
  let order = Repro_util.Rng.permutation rng (size * size) in
  let i = ref 0 in
  while not (Graphs.Percolation.percolates p) do
    let c = order.(!i) in
    incr i;
    Graphs.Percolation.open_site p ~row:(c / size) ~col:(c mod size)
  done;
  Printf.printf "%dx%d grid percolated after opening %d sites (%.1f%%)\n\n" size
    size
    (Graphs.Percolation.open_count p)
    (100.
    *. float_of_int (Graphs.Percolation.open_count p)
    /. float_of_int (size * size));
  for r = 0 to size - 1 do
    for c = 0 to size - 1 do
      let ch =
        if not (Graphs.Percolation.is_open p ~row:r ~col:c) then '#'
        else if Graphs.Percolation.full p ~row:r ~col:c then '~'
        else '.'
      in
      print_char ch
    done;
    print_newline ()
  done;
  print_endline "(# closed, . open, ~ open and connected to the top)\n";

  (* Threshold estimation across grid sizes. *)
  Printf.printf "%8s %8s %10s %10s\n" "size" "trials" "mean" "stddev";
  List.iter
    (fun (size, trials) ->
      let s = Graphs.Percolation.threshold_estimate ~rng ~size ~trials in
      Printf.printf "%8d %8d %10.4f %10.4f\n%!" size trials
        s.Repro_util.Stats.mean s.Repro_util.Stats.stddev)
    [ (16, 40); (32, 30); (64, 20); (128, 10) ];
  print_endline "\nliterature value: 0.5927"
