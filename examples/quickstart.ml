(* Quickstart: the concurrent disjoint-set-union API in two minutes.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* Create a DSU over one million elements.  The default Find policy is
     two-try splitting — the paper's best variant; the seed fixes the random
     node order so runs are reproducible. *)
  let n = 1_000_000 in
  let dsu = Dsu.Native.create ~seed:42 n in

  (* Basic operations: unite merges two sets, same_set queries membership. *)
  Dsu.Native.unite dsu 1 2;
  Dsu.Native.unite dsu 2 3;
  assert (Dsu.Native.same_set dsu 1 3);
  assert (not (Dsu.Native.same_set dsu 1 4));
  Printf.printf "after two unions: %d sets\n" (Dsu.Native.count_sets dsu);

  (* All operations are safe to call from multiple domains concurrently:
     wait-free and linearizable (Theorem 3.4 of the paper).  Here four
     domains union disjoint ranges in parallel, then we stitch them. *)
  let chunk = n / 4 in
  let worker k () =
    let lo = k * chunk in
    for i = lo to lo + chunk - 2 do
      Dsu.Native.unite dsu i (i + 1)
    done
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  Printf.printf "after parallel phase: %d sets\n" (Dsu.Native.count_sets dsu);
  for k = 0 to 2 do
    Dsu.Native.unite dsu (k * chunk) ((k + 1) * chunk)
  done;
  assert (Dsu.Native.same_set dsu 0 (n - 1));
  Printf.printf "after stitching: %d set(s)\n" (Dsu.Native.count_sets dsu);

  (* Variants: pick a Find policy and/or the early-termination operations of
     Section 6 of the paper. *)
  let fancy =
    Dsu.Native.create ~policy:Dsu.Find_policy.One_try_splitting ~early:true
      ~seed:7 16
  in
  Dsu.Native.unite fancy 3 9;
  assert (Dsu.Native.same_set fancy 9 3);

  (* The MakeSet extension: create elements on the fly. *)
  let g = Dsu.Growable.create ~capacity:1024 () in
  let a = Dsu.Growable.make_set g in
  let b = Dsu.Growable.make_set g in
  Dsu.Growable.unite g a b;
  assert (Dsu.Growable.same_set g a b);
  Printf.printf "growable: %d elements, %d set(s)\n" (Dsu.Growable.cardinal g)
    (Dsu.Growable.count_sets g);

  (* ... or with no capacity bound at all (lock-free set operations over a
     chunked store; see Section 3 of the paper on wait-free vs lock-free
     in the unbounded setting). *)
  let u = Dsu.Growable_unbounded.create ~chunk_size:256 () in
  let first = Dsu.Growable_unbounded.make_set u in
  for _ = 1 to 10_000 do
    let e = Dsu.Growable_unbounded.make_set u in
    Dsu.Growable_unbounded.unite u first e
  done;
  Printf.printf "unbounded: %d elements in %d set(s)\n"
    (Dsu.Growable_unbounded.cardinal u)
    (Dsu.Growable_unbounded.count_sets u);

  (* Instrumentation: operation counters for work accounting. *)
  let counted = Dsu.Native.create ~collect_stats:true ~seed:1 1000 in
  for i = 0 to 998 do
    Dsu.Native.unite counted i (i + 1)
  done;
  Format.printf "stats: %a@." Dsu.Stats.pp (Dsu.Native.stats counted);
  print_endline "quickstart ok"
