(* A tour of the APRAM simulator — the research harness behind the
   reproduction: run the concurrent DSU under hand-picked adversarial
   schedules, watch the history, count every shared-memory step, and check
   linearizability.

   Run with:  dune exec examples/simulator_tour.exe *)

let () =
  (* Three simulated processes race on a five-element universe. *)
  let n = 5 in
  let spec = Dsu.Sim.spec ~n ~seed:42 () in
  let run sched =
    (* Fresh handle per run so per-run stats don't mix. *)
    let h = Dsu.Sim.handle spec in
    let ops =
      [|
        [ Dsu.Sim.unite_op h 0 1; Dsu.Sim.same_set_op h 0 2 ];
        [ Dsu.Sim.unite_op h 1 2; Dsu.Sim.same_set_op h 0 1 ];
        [ Dsu.Sim.unite_op h 3 4; Dsu.Sim.same_set_op h 2 4 ];
      |]
    in
    Apram.Sim.run_ops ~mem_size:(Dsu.Sim.mem_size spec) ~init:(Dsu.Sim.init spec)
      ~sched ops
  in

  (* 1. Watch a full history under the CAS adversary. *)
  let outcome = run (Apram.Scheduler.cas_adversary ~seed:7) in
  print_endline "history under the CAS adversary:";
  Format.printf "%a" Apram.History.pp outcome.Apram.Sim.history;
  Printf.printf "total shared-memory steps: %d (per process: %s)\n\n"
    outcome.Apram.Sim.total_steps
    (String.concat ", "
       (Array.to_list (Array.map string_of_int outcome.Apram.Sim.steps)));

  (* 2. Check the history against the sequential specification. *)
  (match Lincheck.Checker.check ~n outcome.Apram.Sim.history with
  | Lincheck.Checker.Linearizable -> print_endline "history is linearizable"
  | Lincheck.Checker.Not_linearizable msg -> failwith msg);

  (* 3. Show a linearization witness. *)
  (match Lincheck.Checker.witness ~n outcome.Apram.Sim.history with
  | Some order ->
    print_endline "one legal linearization order:";
    List.iter
      (fun op ->
        Format.printf "  p%d %a = %d@." op.Apram.History.pid
          Apram.History.pp_call op.Apram.History.call op.Apram.History.result)
      order
  | None -> assert false);

  (* 4. Compare total work across schedulers — same workload, different
     interleavings. *)
  print_newline ();
  Printf.printf "%-16s %12s\n" "scheduler" "total steps";
  List.iter
    (fun sched ->
      let o = run sched in
      Printf.printf "%-16s %12d\n" (Apram.Scheduler.name sched)
        o.Apram.Sim.total_steps)
    [
      Apram.Scheduler.sequential ();
      Apram.Scheduler.round_robin ();
      Apram.Scheduler.random ~seed:1;
      Apram.Scheduler.cas_adversary ~seed:2;
      Apram.Scheduler.laggard ~seed:3 ~victim:0 ~delay:10;
    ];

  (* 5. Per-operation step costs: the quantity the paper's theorems bound. *)
  let o = run (Apram.Scheduler.random ~seed:9) in
  print_newline ();
  print_endline "per-operation step costs (random schedule):";
  List.iter
    (fun op ->
      Format.printf "  p%d %a -> %d steps@." op.Apram.History.pid
        Apram.History.pp_call op.Apram.History.call op.Apram.History.steps)
    (Apram.History.complete_ops o.Apram.Sim.history);

  (* 6. The raw execution trace: every scheduled shared-memory access. *)
  print_newline ();
  print_endline "first raw steps under round-robin (the APRAM's machine tape):";
  let shown = ref 0 in
  let h = Dsu.Sim.handle spec in
  let ops =
    [| [ Dsu.Sim.unite_op h 0 1 ]; [ Dsu.Sim.unite_op h 1 2 ] |]
  in
  ignore
    (Apram.Sim.run_ops ~mem_size:(Dsu.Sim.mem_size spec) ~init:(Dsu.Sim.init spec)
       ~sched:(Apram.Scheduler.round_robin ())
       ~on_step:(fun ~pid ~op ~result ->
         if !shown < 12 then begin
           Format.printf "  p%d %a = %d@." pid Apram.Memory.pp_op op result;
           incr shown
         end)
       ops)
