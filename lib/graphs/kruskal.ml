type result = {
  edges : (int * int * float) list;
  total_weight : float;
  components : int;
}

let sorted_edges (w : Graph.weighted) =
  let { Graph.graph; weights } = w in
  let m = Graph.num_edges graph in
  let order = Array.init m (fun i -> i) in
  Array.sort (fun i j -> compare weights.(i) weights.(j)) order;
  let edges = Graph.edges graph in
  Array.map
    (fun i ->
      let u, v = edges.(i) in
      (u, v, weights.(i)))
    order

let scan ~same_set ~unite (w : Graph.weighted) =
  let n = Graph.n w.Graph.graph in
  let accepted = ref [] in
  let total = ref 0. in
  let count = ref n in
  Array.iter
    (fun (u, v, weight) ->
      if not (same_set u v) then begin
        unite u v;
        accepted := (u, v, weight) :: !accepted;
        total := !total +. weight;
        decr count
      end)
    (sorted_edges w);
  { edges = List.rev !accepted; total_weight = !total; components = !count }

let run (w : Graph.weighted) =
  let d = Sequential.Seq_dsu.create (Graph.n w.Graph.graph) in
  scan ~same_set:(Sequential.Seq_dsu.same_set d) ~unite:(Sequential.Seq_dsu.unite d) w

let run_concurrent_dsu ?policy ?seed (w : Graph.weighted) =
  let d = Dsu.Native.create ?policy ?seed (Graph.n w.Graph.graph) in
  scan ~same_set:(Dsu.Native.same_set d) ~unite:(Dsu.Native.unite d) w
