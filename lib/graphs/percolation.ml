type t = {
  size : int;
  dsu : Dsu.Native.t;
  opened : bool array;
  mutable open_count : int;
  top : int;  (** virtual node united with every open top-row site *)
  bottom : int;
}

let create ?policy ?seed size =
  if size < 1 then invalid_arg "Percolation.create: size must be >= 1";
  let cells = size * size in
  {
    size;
    dsu = Dsu.Native.create ?policy ?seed (cells + 2);
    opened = Array.make cells false;
    open_count = 0;
    top = cells;
    bottom = cells + 1;
  }

let size t = t.size

let cell t ~row ~col =
  if row < 0 || row >= t.size || col < 0 || col >= t.size then
    invalid_arg "Percolation: site out of range";
  (row * t.size) + col

let is_open t ~row ~col = t.opened.(cell t ~row ~col)

let open_count t = t.open_count

let open_site t ~row ~col =
  let c = cell t ~row ~col in
  if not t.opened.(c) then begin
    t.opened.(c) <- true;
    t.open_count <- t.open_count + 1;
    if row = 0 then Dsu.Native.unite t.dsu c t.top;
    if row = t.size - 1 then Dsu.Native.unite t.dsu c t.bottom;
    let try_join r k =
      if r >= 0 && r < t.size && k >= 0 && k < t.size && t.opened.((r * t.size) + k)
      then Dsu.Native.unite t.dsu c ((r * t.size) + k)
    in
    try_join (row - 1) col;
    try_join (row + 1) col;
    try_join row (col - 1);
    try_join row (col + 1)
  end

let percolates t = Dsu.Native.same_set t.dsu t.top t.bottom

let full t ~row ~col =
  let c = cell t ~row ~col in
  t.opened.(c) && Dsu.Native.same_set t.dsu c t.top

let simulate ~rng ?policy size =
  let t = create ?policy ~seed:(Repro_util.Rng.bits30 rng) size in
  let cells = size * size in
  let order = Repro_util.Rng.permutation rng cells in
  let i = ref 0 in
  while not (percolates t) && !i < cells do
    let c = order.(!i) in
    incr i;
    open_site t ~row:(c / size) ~col:(c mod size)
  done;
  float_of_int t.open_count /. float_of_int cells

let threshold_estimate ~rng ~size ~trials =
  let samples = Array.init trials (fun _ -> simulate ~rng size) in
  Repro_util.Stats.summarize samples
