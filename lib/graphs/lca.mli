(** Tarjan's offline lowest-common-ancestor algorithm — the textbook
    union-find application: answer a batch of LCA queries on a rooted tree
    in one DFS, uniting each child's subtree into its parent's set on the
    way back up; when the second endpoint of a query is visited, the query's
    answer is the current "set ancestor" of the first endpoint's class. *)

type tree
(** A rooted tree on vertices [0 .. n-1]. *)

val tree_of_parents : root:int -> int array -> tree
(** [tree_of_parents ~root parents] — [parents.(root) = root]; every other
    vertex points to its parent.  Raises [Invalid_argument] on cycles or a
    mislabeled root. *)

val random_tree : rng:Repro_util.Rng.t -> n:int -> tree
(** A uniformly random recursive tree rooted at 0. *)

val n : tree -> int
val root : tree -> int
val parent : tree -> int -> int
val depth : tree -> int -> int

val solve : tree -> (int * int) list -> int list
(** [solve t queries] answers every [(u, v)] query with the lowest common
    ancestor of [u] and [v], in query order.  One DFS over the tree plus
    near-constant amortized union-find work per query. *)

val lca_naive : tree -> int -> int -> int
(** Walk-up reference implementation, for tests. *)
