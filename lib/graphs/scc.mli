(** Strongly connected components — the model-checking application that
    motivates the paper (computing SCCs of huge implicit graphs; Bloemen et
    al.).

    {!tarjan} is the classical sequential algorithm (iterative, so it
    handles deep graphs).  {!condense_with_dsu} then uses the concurrent DSU
    to collapse each SCC to one set and build the condensation — the role a
    concurrent DSU plays inside multi-core on-the-fly SCC decomposition,
    where workers merging partial SCCs need exactly a concurrent [Unite]. *)

val tarjan : Digraph.t -> int array
(** SCC labels, normalized to the smallest member of each component. *)

val count : int array -> int

type condensation = {
  labels : int array;  (** per-vertex SCC label *)
  quotient : Digraph.t;  (** one vertex per SCC, renumbered densely *)
  scc_of_vertex : int array;  (** vertex -> dense SCC index *)
}

val condense_with_dsu :
  ?policy:Dsu.Find_policy.t -> ?seed:int -> Digraph.t -> condensation
(** Collapse SCCs via the concurrent DSU ([unite] every intra-SCC tree edge,
    queried with [find]) and build the quotient graph without duplicate
    edges between the same pair of SCCs. *)
