type result = {
  edges : (int * int * float) list;
  total_weight : float;
  components : int;
  rounds : int;
}

(* Edge comparison key: (weight, index) lexicographic, so ties are broken
   deterministically and the cheapest edge per component is unique. *)
let cheaper weights i j =
  match compare weights.(i) weights.(j) with 0 -> i < j | c -> c < 0

(* One Borůvka round's scan: fill [cheapest.(root)] with the index of the
   lightest edge leaving [root]'s component, over edge indices [lo, hi). *)
let scan_range ~dsu ~edges ~weights ~cheapest_cas lo hi =
  for i = lo to hi - 1 do
    let u, v = edges.(i) in
    let ru = Dsu.Native.find dsu u in
    let rv = Dsu.Native.find dsu v in
    if ru <> rv then begin
      let offer r =
        (* Atomic minimum by CAS loop. *)
        let rec loop () =
          let cur = Repro_util.Flat_atomic_array.get cheapest_cas r in
          if cur = -1 || cheaper weights i cur then
            if not (Repro_util.Flat_atomic_array.cas cheapest_cas r cur i) then loop ()
        in
        loop ()
      in
      offer ru;
      offer rv
    end
  done

let run_rounds ~domains ~seed (w : Graph.weighted) =
  let g = w.Graph.graph in
  let weights = w.Graph.weights in
  let n = Graph.n g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let dsu = Dsu.Native.create ~seed n in
  let cheapest = Repro_util.Flat_atomic_array.make n (fun _ -> -1) in
  let forest = ref [] in
  let total = ref 0. in
  let components = ref n in
  let rounds = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (* Phase 1 (parallel): cheapest incident edge per component. *)
    if domains <= 1 || m < 1024 then
      scan_range ~dsu ~edges ~weights ~cheapest_cas:cheapest 0 m
    else begin
      let worker k () =
        scan_range ~dsu ~edges ~weights ~cheapest_cas:cheapest (m * k / domains)
          (m * (k + 1) / domains)
      in
      let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
      List.iter Domain.join handles
    end;
    (* Phase 2 (sequential): contract the selected edges.  An edge can be
       the choice of both its endpoints' components, and two components can
       pick different connecting edges, so re-check connectivity before
       accepting — the scan's atomic minima make the selection
       deterministic, the re-check keeps the output a forest. *)
    incr rounds;
    for r = 0 to n - 1 do
      let i = Repro_util.Flat_atomic_array.get cheapest r in
      if i >= 0 then begin
        Repro_util.Flat_atomic_array.set cheapest r (-1);
        let u, v = edges.(i) in
        if not (Dsu.Native.same_set dsu u v) then begin
          Dsu.Native.unite dsu u v;
          forest := (u, v, weights.(i)) :: !forest;
          total := !total +. weights.(i);
          decr components;
          progress := true
        end
      end
    done
  done;
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> compare a b) !forest
  in
  {
    edges = sorted;
    total_weight = !total;
    components = !components;
    rounds = !rounds - 1;
  }

let run w = run_rounds ~domains:1 ~seed:1 w

let run_parallel ?(domains = 4) ?(seed = 1) w = run_rounds ~domains ~seed w
