(** Borůvka's minimum-spanning-forest algorithm, sequential and parallel.

    Borůvka proceeds in rounds: every component selects its cheapest
    incident edge, and all selected edges are contracted at once.  The
    contraction structure {e is} a DSU, and — unlike Kruskal's sorted scan —
    both phases of a round parallelize naturally: cheapest-edge selection
    partitions the edges across domains (with atomic per-component minima),
    and the contractions are concurrent [unite]s.  This is the classic
    showcase for a {e concurrent} union-find inside a parallel graph
    algorithm.

    Edge weights must be distinct for the classic uniqueness argument; ties
    are broken by edge index, so any weights work. *)

type result = {
  edges : (int * int * float) list;  (** forest edges, ascending weight *)
  total_weight : float;
  components : int;
  rounds : int;
}

val run : Graph.weighted -> result
(** Sequential Borůvka over the concurrent DSU (single caller). *)

val run_parallel : ?domains:int -> ?seed:int -> Graph.weighted -> result
(** Each round's cheapest-edge scan — the O(m) bulk of the work, every edge
    doing two concurrent [find]s — is split across [domains] OCaml domains
    (default 4) racing on atomic per-component minima; the O(#components)
    contraction phase then runs sequentially (concurrent check-then-unite
    pairs could otherwise accept two parallel edges between the same two
    components). *)
