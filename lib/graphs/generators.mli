(** Random graph generators for the application examples and benches.

    {b Edge hygiene contract.}  By default the random generators draw
    endpoints independently, so they can emit [u = v] self-loops and
    duplicate edges; every DSU application here tolerates both (a
    self-loop or repeated edge is a no-op unite), but they inflate
    edges/sec numbers — a skipped unite is much cheaper than a real one.
    The generators that can produce them take [~simple:true] to reject
    self-loops by resampling the second endpoint (bounded retries, then a
    deterministic rotation); [erdos_renyi ~simple:true] additionally
    dedupes undirected edges (feasible only because its edge list is
    materialized — the streamed twins in {!Edge_stream} reject self-loops
    only).  [rmat ~simple:true] keeps duplicates: they are intrinsic to
    the R-MAT skew and deduping them would need a global seen-set. *)

val erdos_renyi :
  ?simple:bool -> rng:Repro_util.Rng.t -> n:int -> m:int -> unit -> Graph.t
(** [m] edges with endpoints uniform (parallel edges possible) — G(n, m)
    up to multi-edges, which the DSU applications tolerate.
    [~simple:true] (default [false]) resamples away self-loops {e and}
    duplicate undirected edges; raises [Invalid_argument] if [n < 2] or
    [m] exceeds [n(n-1)/2]. *)

val random_tree : rng:Repro_util.Rng.t -> n:int -> Graph.t
(** A uniformly random recursive tree: connected, [n - 1] edges. *)

val grid2d : rows:int -> cols:int -> Graph.t
(** The 4-neighbour lattice; vertex [(r, c)] is [r * cols + c]. *)

val rmat :
  ?simple:bool -> rng:Repro_util.Rng.t -> scale:int -> edge_factor:int ->
  ?a:float -> ?b:float -> ?c:float -> unit -> Graph.t
(** R-MAT power-law graph on [2^scale] vertices with
    [edge_factor * 2^scale] edges; defaults (a, b, c) = (0.57, 0.19, 0.19),
    the Graph500 parameters.  [~simple:true] resamples the second endpoint
    of self-loops (duplicates remain; see the module contract). *)

val rmat_edge :
  Repro_util.Rng.t -> scale:int -> a:float -> b:float -> c:float -> int * int
(** One R-MAT endpoint pair from the given rng state — the single-edge
    kernel {!rmat} and {!Edge_stream} share, so streamed chunks replay
    exactly the edges the materialized generator draws. *)

val other_endpoint : Repro_util.Rng.t -> n:int -> int -> int
(** [other_endpoint rng ~n u] draws a vertex distinct from [u] (the
    [~simple] self-loop rejection kernel: bounded resampling, then the
    deterministic rotation [(u + 1) mod n]).  Requires [n >= 2]. *)

val preferential : rng:Repro_util.Rng.t -> n:int -> deg:int -> Graph.t
(** Barabási–Albert-style preferential attachment: each new vertex attaches
    [deg] edges to endpoints chosen proportionally to current degree. *)

val random_digraph : rng:Repro_util.Rng.t -> n:int -> m:int -> Digraph.t

val clustered_digraph :
  rng:Repro_util.Rng.t -> clusters:int -> cluster_size:int -> extra:int -> Digraph.t
(** SCC-rich directed graph: [clusters] directed cycles of [cluster_size]
    vertices each (each cycle one SCC), plus [extra] random inter-cluster
    edges oriented from lower to higher cluster so they never merge SCCs.
    The ground truth for the SCC tests: exactly [clusters] components. *)
