(** Random graph generators for the application examples and benches. *)

val erdos_renyi : rng:Repro_util.Rng.t -> n:int -> m:int -> Graph.t
(** [m] edges with endpoints uniform (parallel edges possible) — G(n, m)
    up to multi-edges, which the DSU applications tolerate. *)

val random_tree : rng:Repro_util.Rng.t -> n:int -> Graph.t
(** A uniformly random recursive tree: connected, [n - 1] edges. *)

val grid2d : rows:int -> cols:int -> Graph.t
(** The 4-neighbour lattice; vertex [(r, c)] is [r * cols + c]. *)

val rmat :
  rng:Repro_util.Rng.t -> scale:int -> edge_factor:int ->
  ?a:float -> ?b:float -> ?c:float -> unit -> Graph.t
(** R-MAT power-law graph on [2^scale] vertices with
    [edge_factor * 2^scale] edges; defaults (a, b, c) = (0.57, 0.19, 0.19),
    the Graph500 parameters. *)

val preferential : rng:Repro_util.Rng.t -> n:int -> deg:int -> Graph.t
(** Barabási–Albert-style preferential attachment: each new vertex attaches
    [deg] edges to endpoints chosen proportionally to current degree. *)

val random_digraph : rng:Repro_util.Rng.t -> n:int -> m:int -> Digraph.t

val clustered_digraph :
  rng:Repro_util.Rng.t -> clusters:int -> cluster_size:int -> extra:int -> Digraph.t
(** SCC-rich directed graph: [clusters] directed cycles of [cluster_size]
    vertices each (each cycle one SCC), plus [extra] random inter-cluster
    edges oriented from lower to higher cluster so they never merge SCCs.
    The ground truth for the SCC tests: exactly [clusters] components. *)
