module Faa = Repro_util.Flat_atomic_array

(* ------------------------------------------------------------------ *)
(* Internally deterministic bulk union-find over an edge stream, after
   Fedorov–Hashemi–Nadiradze–Alistarh: the output forest is a function
   of the input stream alone — independent of the number of domains,
   the OS schedule, and any injected delays.

   The stream is consumed in *blocks* of [block_chunks] chunks.  A block
   is processed in barrier-separated rounds of three phases:

   - {b propose}: the forest is frozen; every domain walks its share of
     the block's (still unmerged) edges, chases both endpoints to their
     roots, and for roots [ru <> rv] publishes [writeMin(propose[hi], lo)]
     where [hi = max ru rv], [lo = min ru rv].  writeMin (a CAS-min loop)
     is commutative and associative, so after the barrier [propose.(h)]
     is the minimum over every proposal for [h] this round — whatever
     the interleaving.
   - {b link}: each domain re-reads the slots it touched and installs
     [parent.(hi) <- propose.(hi)].  Several domains may write the same
     slot; they write the same (now frozen) value, so the writes are
     idempotent.  Links always point root -> strictly smaller id, so no
     cycle can form and the final root of a component is its minimum id.
   - {b reset}: touched propose slots return to the sentinel, so the
     next round starts clean.

   A round with no proposal anywhere ends the block (the shared
   [progress] flag is an OR — again commutative).  Because every phase
   is deterministic given the frozen state before it, by induction the
   parent array after every round — and hence the final labels — is
   schedule-independent.

   Work partitioning is by *chunk index*, never by domain count: chunk
   [j] of a block always belongs to domain [j mod domains], so changing
   [domains] changes who does the work but not which edges are in the
   block, and the min-reductions erase the difference.  Memory is
   [2 * n] words of shared state plus one block of edges
   ([block_chunks * chunk_size] pairs) spread across the domains —
   the full edge list is never materialized. *)

type report = {
  n : int;
  edges : int;
  blocks : int;
  rounds : int;
  components : int;
}

(* Sense-reversing barrier.  Bounded cpu_relax spinning, then short
   sleeps: on single-core CI hosts a pure spin waits out whole scheduler
   timeslices (see the service-layer drain loop, which made the same
   tradeoff). *)
type barrier = { count : int Atomic.t; sense : bool Atomic.t; total : int }

let barrier_make total = { count = Atomic.make 0; sense = Atomic.make false; total }

let barrier_wait b ~local_sense =
  if Atomic.fetch_and_add b.count 1 = b.total - 1 then begin
    Atomic.set b.count 0;
    Atomic.set b.sense local_sense
  end
  else begin
    let spins = ref 0 in
    while Atomic.get b.sense <> local_sense do
      incr spins;
      if !spins < 4096 then Domain.cpu_relax () else Unix.sleepf 0.0002
    done
  end

(* One domain's slice of the current block, compacted across rounds. *)
type slice = {
  src : int array;
  dst : int array;
  mutable live : int;
  touched : int array;
  mutable touched_len : int;
}

let run ?(domains = 4) ?(block_chunks = 8) ?(flatten_every = 1)
    ?(on_round = fun ~domain:_ ~round:_ -> ()) stream =
  if domains < 1 then invalid_arg "Det_bulk.run: domains must be >= 1";
  if block_chunks < 1 then
    invalid_arg "Det_bulk.run: block_chunks must be >= 1";
  if flatten_every < 1 then
    invalid_arg "Det_bulk.run: flatten_every must be >= 1";
  let n = Edge_stream.n stream in
  let m = Edge_stream.total_edges stream in
  let chunk_size = Edge_stream.chunk_size stream in
  let chunks = Edge_stream.chunk_count stream in
  let blocks = (chunks + block_chunks - 1) / block_chunks in
  (* Plain parent array: written only in barrier-separated link/flatten
     phases (same-value races only), read only in frozen phases. *)
  let parent = Array.init n (fun i -> i) in
  let sentinel = n in
  let propose = Faa.make n (fun _ -> sentinel) in
  let progress = Atomic.make false in
  let barrier = barrier_make domains in
  let rounds_total = ref 0 in
  (* Per-domain slice capacity: chunks j mod domains = d of a block. *)
  let slice_cap =
    ((block_chunks + domains - 1) / domains) * chunk_size
  in
  let root v =
    let r = ref v in
    while Array.unsafe_get parent !r <> !r do
      r := Array.unsafe_get parent !r
    done;
    !r
  in
  let body d =
    let local_sense = ref true in
    let bar () =
      barrier_wait barrier ~local_sense:!local_sense;
      local_sense := not !local_sense
    in
    let sl =
      {
        src = Array.make slice_cap 0;
        dst = Array.make slice_cap 0;
        live = 0;
        touched = Array.make slice_cap 0;
        touched_len = 0;
      }
    in
    let buf = Edge_stream.make_chunk stream in
    for b = 0 to blocks - 1 do
      (* Load my chunks of block [b] into the slice. *)
      sl.live <- 0;
      let first = b * block_chunks in
      let last = min chunks (first + block_chunks) - 1 in
      for j = first to last do
        if (j - first) mod domains = d then begin
          Edge_stream.fill stream j buf;
          Array.blit buf.Edge_stream.src 0 sl.src sl.live buf.Edge_stream.len;
          Array.blit buf.Edge_stream.dst 0 sl.dst sl.live buf.Edge_stream.len;
          sl.live <- sl.live + buf.Edge_stream.len
        end
      done;
      let round = ref 0 in
      let continue = ref true in
      while !continue do
        (* Propose phase: compact live edges in place. *)
        let keep = ref 0 in
        sl.touched_len <- 0;
        for k = 0 to sl.live - 1 do
          let ru = root (Array.unsafe_get sl.src k) in
          let rv = root (Array.unsafe_get sl.dst k) in
          if ru <> rv then begin
            let hi = if ru > rv then ru else rv in
            let lo = if ru > rv then rv else ru in
            (* writeMin *)
            let rec write_min () =
              let cur = Faa.get propose hi in
              if lo < cur && not (Faa.cas propose hi cur lo) then write_min ()
            in
            write_min ();
            sl.touched.(sl.touched_len) <- hi;
            sl.touched_len <- sl.touched_len + 1;
            Array.unsafe_set sl.src !keep ru;
            Array.unsafe_set sl.dst !keep rv;
            incr keep
          end
        done;
        sl.live <- !keep;
        if sl.touched_len > 0 && not (Atomic.get progress) then
          Atomic.set progress true;
        bar ();
        on_round ~domain:d ~round:!round;
        if Atomic.get progress then begin
          (* Link phase: idempotent same-value writes. *)
          for k = 0 to sl.touched_len - 1 do
            let hi = sl.touched.(k) in
            let p = Faa.get propose hi in
            if p < hi then Array.unsafe_set parent hi p
          done;
          bar ();
          (* Reset phase. *)
          for k = 0 to sl.touched_len - 1 do
            Faa.set propose sl.touched.(k) sentinel
          done;
          if d = 0 then begin
            Atomic.set progress false;
            incr rounds_total
          end;
          bar ();
          incr round
        end
        else continue := false
      done;
      (* Deterministic flatten: each vertex's root is frozen, so the
         range-partitioned writes commute with concurrent root chases
         (a racy read sees the old or the new parent — both reach the
         same root). *)
      if (b + 1) mod flatten_every = 0 || b = blocks - 1 then begin
        let lo = d * n / domains and hi = (d + 1) * n / domains in
        for v = lo to hi - 1 do
          let r = root v in
          if Array.unsafe_get parent v <> r then Array.unsafe_set parent v r
        done;
        bar ()
      end
    done
  in
  if domains = 1 then body 0
  else begin
    let ds = Array.init domains (fun d -> Domain.spawn (fun () -> body d)) in
    let failure = ref None in
    Array.iter
      (fun h ->
        match Domain.join h with
        | () -> ()
        | exception e -> if !failure = None then failure := Some e)
      ds;
    match !failure with Some e -> raise e | None -> ()
  end;
  let components = ref 0 in
  for v = 0 to n - 1 do
    if parent.(v) = v then incr components
  done;
  ( Array.copy parent,
    { n; edges = m; blocks; rounds = !rounds_total; components = !components } )
