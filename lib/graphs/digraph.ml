(** Directed graphs for the strongly-connected-components application — the
    model-checking use case the paper's introduction highlights (Bloemen et
    al.'s on-the-fly SCC decomposition is the motivating consumer of a
    concurrent DSU). *)

type t = { n : int; out : int array array }

let create ~n ~edges =
  if n < 1 then invalid_arg "Digraph.create: n must be >= 1";
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.create: edge endpoint out of range";
      deg.(u) <- deg.(u) + 1)
    edges;
  let out = Array.map (fun d -> Array.make d (-1)) deg in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      out.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1)
    edges;
  { n; out }

let n t = t.n

let out t v = t.out.(v)

let num_edges t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.out

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    Array.iter (fun v -> acc := (u, v) :: !acc) t.out.(u)
  done;
  Array.of_list !acc
