(** Site percolation on an N×N grid — the percolation-testing application of
    the paper's introduction (and the textbook union-find showcase of
    Sedgewick & Wayne).

    Sites open one by one in random order; two virtual nodes connect the top
    and bottom rows, and the system percolates when they join.  The fraction
    of open sites at that moment concentrates around the site-percolation
    threshold ≈ 0.5927 as N grows, which the tests check. *)

type t

val create : ?policy:Dsu.Find_policy.t -> ?seed:int -> int -> t
(** [create size] — a [size × size] grid, all sites closed. *)

val size : t -> int
val open_site : t -> row:int -> col:int -> unit
val is_open : t -> row:int -> col:int -> bool
val open_count : t -> int
val percolates : t -> bool
val full : t -> row:int -> col:int -> bool
(** Connected to the top row through open sites. *)

val simulate : rng:Repro_util.Rng.t -> ?policy:Dsu.Find_policy.t -> int -> float
(** Open uniformly random sites until the grid percolates; the fraction of
    open sites at that moment. *)

val threshold_estimate :
  rng:Repro_util.Rng.t -> size:int -> trials:int -> Repro_util.Stats.summary
