(* Immediate dominators.  Vertex numbering conventions below follow the
   Lengauer–Tarjan paper: [dfnum] is the DFS number, [vertex] its inverse,
   [semi.(v)] the DFS number of v's semidominator. *)

let predecessors g =
  let n = Digraph.n g in
  let deg = Array.make n 0 in
  Array.iter (fun (_, v) -> deg.(v) <- deg.(v) + 1) (Digraph.edges g);
  let preds = Array.map (fun d -> Array.make d (-1)) deg in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      preds.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    (Digraph.edges g);
  preds

(* Iterative DFS computing dfs numbers, parents, and the vertex order. *)
let dfs g root =
  let n = Digraph.n g in
  let dfnum = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let vertex = Array.make n (-1) in
  let counter = ref 0 in
  let stack = ref [ (root, -1) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, par) :: rest ->
      stack := rest;
      if dfnum.(v) = -1 then begin
        dfnum.(v) <- !counter;
        vertex.(!counter) <- v;
        incr counter;
        parent.(v) <- par;
        (* Push children in reverse so low-index successors are visited
           first; order does not affect correctness. *)
        let out = Digraph.out g v in
        for i = Array.length out - 1 downto 0 do
          if dfnum.(out.(i)) = -1 then stack := (out.(i), v) :: !stack
        done
      end
  done;
  (dfnum, parent, vertex, !counter)

let lengauer_tarjan g ~root =
  let n = Digraph.n g in
  if root < 0 || root >= n then invalid_arg "Dominators: root out of range";
  let preds = predecessors g in
  let dfnum, parent, vertex, count = dfs g root in
  let semi = Array.copy dfnum in
  let idom = Array.make n (-1) in
  let samedom = Array.make n (-1) in
  let bucket = Array.make n [] in
  (* Link–eval forest: [ancestor] is the forest parent (-1 = root of its
     tree), [label.(v)] the vertex of minimum semi on the compressed path
     from v to its tree root. *)
  let ancestor = Array.make n (-1) in
  let label = Array.init n (fun i -> i) in
  let compress v =
    (* Collect the path to the root, then fold labels top-down. *)
    let path = ref [] in
    let u = ref v in
    while ancestor.(!u) <> -1 && ancestor.(ancestor.(!u)) <> -1 do
      path := !u :: !path;
      u := ancestor.(!u)
    done;
    (* [!path] has the shallowest collected node at its head (it was
       prepended last); processing shallow-to-deep reproduces the unwinding
       order of the recursive compress, so every node merges from an
       already-compressed ancestor. *)
    List.iter
      (fun w ->
        let a = ancestor.(w) in
        if ancestor.(a) <> -1 then begin
          if semi.(label.(a)) < semi.(label.(w)) then label.(w) <- label.(a);
          ancestor.(w) <- ancestor.(a)
        end)
      !path
  in
  let eval v =
    if ancestor.(v) = -1 then v
    else begin
      compress v;
      label.(v)
    end
  in
  let link parent_v w = ancestor.(w) <- parent_v in
  (* Pass over vertices in reverse DFS order (skipping the root). *)
  for i = count - 1 downto 1 do
    let w = vertex.(i) in
    let p = parent.(w) in
    (* Semidominator of w. *)
    Array.iter
      (fun v ->
        if dfnum.(v) <> -1 then begin
          let u = eval v in
          if semi.(u) < semi.(w) then semi.(w) <- semi.(u)
        end)
      preds.(w);
    bucket.(vertex.(semi.(w))) <- w :: bucket.(vertex.(semi.(w)));
    link p w;
    (* Decide (or defer) dominators for p's bucket. *)
    List.iter
      (fun v ->
        let u = eval v in
        if semi.(u) < semi.(v) then samedom.(v) <- u else idom.(v) <- p)
      bucket.(p);
    bucket.(p) <- []
  done;
  (* Forward pass resolving deferred dominators. *)
  for i = 1 to count - 1 do
    let w = vertex.(i) in
    if samedom.(w) <> -1 then idom.(w) <- idom.(samedom.(w))
  done;
  idom.(root) <- root;
  idom

let iterative g ~root =
  let n = Digraph.n g in
  if root < 0 || root >= n then invalid_arg "Dominators: root out of range";
  let preds = predecessors g in
  let dfnum, _, vertex, count = dfs g root in
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  (* Intersect in DFS-number space (a valid "reverse postorder-like"
     ordering for the two-finger walk is any order where ancestors precede
     descendants; DFS numbers qualify because idoms are DFS ancestors). *)
  let rec intersect a b =
    if a = b then a
    else if dfnum.(a) > dfnum.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to count - 1 do
      let w = vertex.(i) in
      let new_idom = ref (-1) in
      Array.iter
        (fun p ->
          if idom.(p) <> -1 then
            new_idom := if !new_idom = -1 then p else intersect !new_idom p)
        preds.(w);
      if !new_idom <> -1 && idom.(w) <> !new_idom then begin
        idom.(w) <- !new_idom;
        changed := true
      end
    done
  done;
  idom

let dominates idom ~root a b =
  if idom.(b) = -1 then invalid_arg "Dominators.dominates: unreachable vertex";
  let rec walk v = v = a || (v <> root && walk idom.(v)) in
  walk b

let dominator_tree_children idom =
  let n = Array.length idom in
  let deg = Array.make n 0 in
  Array.iteri (fun v d -> if d <> -1 && d <> v then deg.(d) <- deg.(d) + 1) idom;
  let children = Array.map (fun d -> Array.make d (-1)) deg in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v d ->
      if d <> -1 && d <> v then begin
        children.(d).(fill.(d)) <- v;
        fill.(d) <- fill.(d) + 1
      end)
    idom;
  children
