(** Chunked, replayable random edge streams for out-of-core connectivity.

    A stream is a pure description — generator kind, parameters, seed and
    chunk geometry — not a container: edges only ever exist inside
    caller-provided {!chunk} buffers, so a 2^26-vertex / 10^9-edge input
    occupies [chunk_size] pairs of memory no matter how long it runs.

    Chunk [idx] is generated from its own rng ([seed * 1_000_003 + idx]),
    so any domain can (re)generate any chunk in any order and its
    contents are a function of [(stream, idx)] alone — the property the
    parallel driver (round-robin chunk hand-out), crash replay, and the
    deterministic bulk engine all rely on.  Consequence: a stream draws
    different edges than the single-rng materialized generators in
    {!Generators} even at equal seeds; oracle tests compare a stream
    against its own {!materialize}.

    [~simple:true] rejects [u = v] self-loops by resampling the second
    endpoint ({!Generators.other_endpoint}); duplicate edges remain
    possible in every kind — cross-chunk dedup would need global state
    (see the {!Generators} hygiene contract). *)

type chunk = { src : int array; dst : int array; mutable len : int }
(** One block of edges: pairs [(src.(k), dst.(k))] for [k < len].
    Buffers are [chunk_size] long; the final chunk of a stream may be
    shorter ([len < chunk_size]). *)

type t

val erdos_renyi :
  ?simple:bool -> ?chunk_size:int -> seed:int -> n:int -> m:int -> unit -> t
(** G(n, m)-style stream: both endpoints uniform on [0, n). *)

val rmat :
  ?simple:bool -> ?chunk_size:int -> ?a:float -> ?b:float -> ?c:float ->
  seed:int -> scale:int -> edge_factor:int -> unit -> t
(** R-MAT stream on [2^scale] vertices, [edge_factor * 2^scale] edges;
    defaults (a, b, c) = (0.57, 0.19, 0.19), the Graph500 parameters.
    @raise Invalid_argument unless [0 <= scale <= 40] and [a + b + c < 1]. *)

val power_law :
  ?simple:bool -> ?chunk_size:int -> ?theta:float -> seed:int -> n:int ->
  m:int -> unit -> t
(** Heavy-tailed stream: source drawn Zipf-ishly (inverse-CDF power law
    with exponent [theta], default 2.0, must be [> 1]), destination
    uniform — low-id vertices become hubs. *)

val n : t -> int
(** Number of vertices (the DSU universe size). *)

val total_edges : t -> int

val chunk_size : t -> int
val chunk_count : t -> int
val is_simple : t -> bool

val kind_name : t -> string
(** ["erdos-renyi"], ["rmat"] or ["power-law"] — report keys. *)

val describe : t -> string
(** One-line human-readable description for logs and reports. *)

val make_chunk : t -> chunk
(** A fresh buffer sized for this stream; reuse it across {!fill} calls. *)

val fill : t -> int -> chunk -> unit
(** [fill t idx chunk] (re)generates chunk [idx] into [chunk], setting
    [chunk.len].  Deterministic in [(t, idx)]; safe to call concurrently
    from many domains on distinct chunks.
    @raise Invalid_argument if [idx] is out of range or the buffer is too
    small. *)

val iter : t -> (int -> int -> unit) -> unit
(** Sequential scan of the whole stream in chunk order, using one
    internal buffer ([O(chunk_size)] memory). *)

val materialize : t -> Graph.t
(** The stream as an ordinary graph — tests and small baselines only;
    allocates all [total_edges] pairs. *)
