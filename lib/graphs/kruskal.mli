(** Kruskal's minimum-spanning-forest algorithm — the MST application of the
    paper's introduction.  The DSU is the algorithm's core: an edge joins the
    forest exactly when its endpoints are in different sets. *)

type result = {
  edges : (int * int * float) list;  (** forest edges in acceptance order *)
  total_weight : float;
  components : int;  (** trees in the resulting forest *)
}

val run : Graph.weighted -> result
(** Classic sequential Kruskal over the rank+splitting sequential DSU. *)

val run_concurrent_dsu :
  ?policy:Dsu.Find_policy.t -> ?seed:int -> Graph.weighted -> result
(** Same scan driven through the concurrent DSU (single caller): exercises
    the public API on a real algorithm and must produce a forest of equal
    weight. *)
