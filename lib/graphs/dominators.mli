(** Dominator trees of flow graphs — the "finding dominators via disjoint
    set union" application the paper's introduction cites [FGMT14].

    {!lengauer_tarjan} is the classical near-linear algorithm; its engine is
    the link–eval structure — a union-find forest with path compression
    whose classes carry a minimum-semidominator label — i.e. precisely the
    compressed-tree machinery this repository is about, specialized with an
    aggregate.  {!iterative} is the Cooper–Harvey–Kennedy dataflow
    algorithm, simple and obviously correct, used as the oracle.

    Both return the immediate-dominator array: [idom.(root) = root],
    [idom.(v) = -1] for vertices unreachable from [root]. *)

val lengauer_tarjan : Digraph.t -> root:int -> int array
val iterative : Digraph.t -> root:int -> int array

val dominates : int array -> root:int -> int -> int -> bool
(** [dominates idom ~root a b] — does [a] dominate [b]?  (Walks the
    dominator tree; [b] must be reachable.) *)

val dominator_tree_children : int array -> int array array
(** Children lists of the dominator tree ([-1] entries skipped). *)
