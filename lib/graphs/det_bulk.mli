(** Internally deterministic bulk union-find over an {!Edge_stream}
    (after Fedorov–Hashemi–Nadiradze–Alistarh): barrier-separated
    propose / link / reset rounds whose only cross-domain combination
    operators are writeMin and OR — both commutative — so the output
    forest is a function of the input stream alone, independent of the
    domain count, the OS schedule, and any injected delays.

    Links always point root → strictly smaller id, so the final label of
    every vertex is its component's minimum id: the labels are canonical
    without a normalization pass, and two runs agree byte-for-byte.

    Roughly 2–3× slower than the racy {!Connectit} finish phase on the
    same stream (three barriers per round, no early settling) — the
    price of replayability; see docs/PERFORMANCE.md. *)

type report = {
  n : int;
  edges : int;
  blocks : int;  (** Stream blocks processed ([block_chunks] chunks each). *)
  rounds : int;  (** Total propose/link rounds — deterministic. *)
  components : int;
}

val run :
  ?domains:int ->
  ?block_chunks:int ->
  ?flatten_every:int ->
  ?on_round:(domain:int -> round:int -> unit) ->
  Edge_stream.t ->
  int array * report
(** [run stream] returns [(labels, report)]: [labels.(v)] is the minimum
    vertex id of [v]'s component.  [domains] (default 4) only changes
    who does the work, never the result.  [block_chunks] (default 8)
    bounds resident edges at [block_chunks * chunk_size] pairs;
    [flatten_every] (default 1) full-compresses the forest after every
    k-th block (a barrier-separated, deterministic pass).  [on_round]
    fires on every domain after each round barrier — the determinism
    check injects sleeps here to perturb schedules.
    @raise Invalid_argument on non-positive parameters. *)
