(** Undirected graphs as edge lists with a cached adjacency view — the
    substrate for the connected-components, spanning-tree and percolation
    applications that motivate the paper (Section 1). *)

type t

val create : n:int -> edges:(int * int) array -> t
(** Vertices are [0 .. n-1]; self-loops and parallel edges are permitted
    (the DSU applications tolerate them). *)

val n : t -> int
val num_edges : t -> int
val edges : t -> (int * int) array
(** The underlying edge array (not a copy; treat as read-only). *)

val adjacency : t -> int array array
(** Symmetrized adjacency lists, built on first use and cached. *)

val degree : t -> int -> int

type weighted = { graph : t; weights : float array }
(** Weight [weights.(i)] belongs to edge [i] of [graph]. *)

val with_random_weights : rng:Repro_util.Rng.t -> t -> weighted
