(* Iterative Tarjan SCC.  The explicit stack holds (vertex, next-edge-index)
   frames; lowlink updates happen when a child frame is popped. *)
let tarjan g =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let labels = Array.make n (-1) in
  let counter = ref 0 in
  let frames = ref [] in
  let push_vertex v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    frames := (v, ref 0) :: !frames
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      push_vertex root;
      let continue = ref true in
      while !continue do
        match !frames with
        | [] -> continue := false
        | (v, next) :: rest ->
          let out = Digraph.out g v in
          if !next < Array.length out then begin
            let w = out.(!next) in
            incr next;
            if index.(w) = -1 then push_vertex w
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            (* v's subtree is done: close its SCC if v is a root, then
               propagate its lowlink to the parent frame. *)
            if lowlink.(v) = index.(v) then begin
              let rec pop () =
                match !stack with
                | [] -> assert false
                | w :: tl ->
                  stack := tl;
                  on_stack.(w) <- false;
                  labels.(w) <- v;
                  if w <> v then pop ()
              in
              pop ()
            end;
            frames := rest;
            (match rest with
            | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            | [] -> ())
          end
      done
    end
  done;
  Components.normalize labels

let count labels = Components.count labels

type condensation = {
  labels : int array;
  quotient : Digraph.t;
  scc_of_vertex : int array;
}

let condense_with_dsu ?policy ?seed g =
  let n = Digraph.n g in
  let labels = tarjan g in
  (* Collapse each SCC in the DSU: unite every vertex with its label.  This
     is how a parallel on-the-fly SCC algorithm publishes discovered
     components; here the discovery is Tarjan's and the DSU is the shared
     component store. *)
  let d = Dsu.Native.create ?policy ?seed n in
  for v = 0 to n - 1 do
    if labels.(v) <> v then Dsu.Native.unite d v labels.(v)
  done;
  (* Dense renumbering of SCC representatives. *)
  let dense = Hashtbl.create 64 in
  let next = ref 0 in
  let scc_of_vertex =
    Array.init n (fun v ->
        let rep = labels.(Dsu.Native.find d v) in
        match Hashtbl.find_opt dense rep with
        | Some i -> i
        | None ->
          let i = !next in
          incr next;
          Hashtbl.replace dense rep i;
          i)
  in
  let quotient_edges = Hashtbl.create 256 in
  Array.iter
    (fun (u, v) ->
      let cu = scc_of_vertex.(u) and cv = scc_of_vertex.(v) in
      if cu <> cv then Hashtbl.replace quotient_edges (cu, cv) ())
    (Digraph.edges g);
  let qedges = Hashtbl.fold (fun e () acc -> e :: acc) quotient_edges [] in
  {
    labels;
    quotient = Digraph.create ~n:!next ~edges:(Array.of_list qedges);
    scc_of_vertex;
  }
