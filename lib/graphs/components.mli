(** Connected components via disjoint set union — the paper's canonical
    application ("maintaining connected components in a graph under edge
    insertions"). *)

val sequential : Graph.t -> int array
(** Component labels via the classical sequential DSU; label = smallest
    vertex in the component. *)

val concurrent :
  ?domains:int -> ?policy:Dsu.Find_policy.t -> ?early:bool -> ?seed:int ->
  Graph.t -> int array
(** Component labels computed by uniting the edge list across [domains]
    OCaml domains (default 4) sharing one concurrent DSU; the label pass
    runs after all domains join.  Labels are normalized as in
    {!sequential}, so results are comparable across implementations. *)

val count : int array -> int
(** Number of distinct labels. *)

val incremental :
  ?policy:Dsu.Find_policy.t -> ?seed:int -> n:int -> unit ->
  (int -> int -> unit) * (int -> int -> bool)
(** [incremental ~n ()] is [(add_edge, connected)]: dynamic connectivity
    under edge insertions, directly exposing the DSU operations. *)

val normalize : int array -> int array
(** Relabel arbitrary component representatives to the smallest member. *)
