module Rng = Repro_util.Rng

(* ------------------------------------------------------------------ *)
(* Chunked, replayable random edge streams.

   The billion-edge connectivity pipeline must never hold the edge list:
   at 10^9 edges a materialized [(int * int) array] is ~16 GB.  Instead a
   stream is a pure *description* — generator kind + parameters + seed +
   chunk geometry — and edges only ever exist inside caller-provided
   chunk buffers of [chunk_size] pairs.

   Chunk [idx] is generated from its own rng, seeded as
   [seed * 1_000_003 + idx].  That makes every chunk independently
   regenerable: any domain can fill any chunk in any order (the parallel
   driver hands chunks out round-robin), a crashed run can replay from
   any position, and the deterministic bulk engine can rely on chunk
   contents being a function of [(stream, idx)] alone.  The price is
   that a streamed generator draws *different* edges than its
   single-rng materialized twin in {!Generators} even at equal seeds —
   the oracle tests therefore compare a stream against its own
   {!materialize}, not against {!Generators}. *)

type chunk = { src : int array; dst : int array; mutable len : int }

type kind =
  | Erdos_renyi
  | Rmat of { scale : int; a : float; b : float; c : float }
  | Power_law of { theta : float }

type t = {
  n : int;
  m : int;
  chunk_size : int;
  seed : int;
  simple : bool;
  kind : kind;
}

let default_chunk_size = 1 lsl 16

let check_common op ~n ~m ~chunk_size ~simple =
  if n < 1 then invalid_arg (Printf.sprintf "Edge_stream.%s: n must be >= 1" op);
  if m < 0 then invalid_arg (Printf.sprintf "Edge_stream.%s: m must be >= 0" op);
  if chunk_size < 1 then
    invalid_arg (Printf.sprintf "Edge_stream.%s: chunk_size must be >= 1" op);
  if simple && n < 2 then
    invalid_arg (Printf.sprintf "Edge_stream.%s: ~simple needs n >= 2" op)

let erdos_renyi ?(simple = false) ?(chunk_size = default_chunk_size) ~seed ~n
    ~m () =
  check_common "erdos_renyi" ~n ~m ~chunk_size ~simple;
  { n; m; chunk_size; seed; simple; kind = Erdos_renyi }

let rmat ?(simple = false) ?(chunk_size = default_chunk_size) ?(a = 0.57)
    ?(b = 0.19) ?(c = 0.19) ~seed ~scale ~edge_factor () =
  if a +. b +. c >= 1. then
    invalid_arg "Edge_stream.rmat: a + b + c must be < 1";
  if scale < 0 || scale > 40 then
    invalid_arg "Edge_stream.rmat: scale must be in [0, 40]";
  let n = 1 lsl scale in
  let m = edge_factor * n in
  check_common "rmat" ~n ~m ~chunk_size ~simple;
  { n; m; chunk_size; seed; simple; kind = Rmat { scale; a; b; c } }

let power_law ?(simple = false) ?(chunk_size = default_chunk_size)
    ?(theta = 2.0) ~seed ~n ~m () =
  if theta <= 1. then invalid_arg "Edge_stream.power_law: theta must be > 1";
  check_common "power_law" ~n ~m ~chunk_size ~simple;
  { n; m; chunk_size; seed; simple; kind = Power_law { theta } }

let n t = t.n
let total_edges t = t.m
let chunk_size t = t.chunk_size
let is_simple t = t.simple
let chunk_count t = (t.m + t.chunk_size - 1) / t.chunk_size

let kind_name t =
  match t.kind with
  | Erdos_renyi -> "erdos-renyi"
  | Rmat _ -> "rmat"
  | Power_law _ -> "power-law"

let describe t =
  Printf.sprintf "%s(n=%d, m=%d, chunk=%d, seed=%d%s)" (kind_name t) t.n t.m
    t.chunk_size t.seed
    (if t.simple then ", simple" else "")

let make_chunk t =
  { src = Array.make t.chunk_size 0; dst = Array.make t.chunk_size 0; len = 0 }

(* Zipf-ish endpoint for the power-law stream: invert the continuous
   power-law CDF on [1, n + 1) with exponent [theta], then truncate.
   Stateless per draw, so chunks replay exactly. *)
let power_law_endpoint rng ~n ~theta =
  let u = Rng.float rng in
  let e = 1. -. theta in
  (* x = (1 + u * ((n+1)^e - 1))^(1/e) in [1, n + 1) *)
  let x = Float.pow (1. +. (u *. (Float.pow (float_of_int (n + 1)) e -. 1.))) (1. /. e) in
  let v = int_of_float x - 1 in
  if v < 0 then 0 else if v >= n then n - 1 else v

let chunk_rng t idx = Rng.create ((t.seed * 1_000_003) + idx)

let fill t idx chunk =
  let chunks = chunk_count t in
  if idx < 0 || idx >= chunks then
    invalid_arg
      (Printf.sprintf "Edge_stream.fill: chunk %d out of range [0, %d)" idx
         chunks);
  if Array.length chunk.src < t.chunk_size then
    invalid_arg "Edge_stream.fill: chunk buffer smaller than chunk_size";
  let lo = idx * t.chunk_size in
  let len = min t.chunk_size (t.m - lo) in
  let rng = chunk_rng t idx in
  let draw =
    match t.kind with
    | Erdos_renyi ->
      fun () -> (Rng.int rng t.n, Rng.int rng t.n)
    | Rmat { scale; a; b; c } -> fun () -> Generators.rmat_edge rng ~scale ~a ~b ~c
    | Power_law { theta } ->
      (* Hub endpoint × uniform endpoint: heavy-tailed degrees without
         the quadratic cost of two Zipf draws hitting the same hubs. *)
      fun () -> (power_law_endpoint rng ~n:t.n ~theta, Rng.int rng t.n)
  in
  for k = 0 to len - 1 do
    let u, v = draw () in
    let u, v =
      if t.simple && u = v then (u, Generators.other_endpoint rng ~n:t.n u)
      else (u, v)
    in
    Array.unsafe_set chunk.src k u;
    Array.unsafe_set chunk.dst k v
  done;
  chunk.len <- len

let iter t f =
  let chunk = make_chunk t in
  for idx = 0 to chunk_count t - 1 do
    fill t idx chunk;
    for k = 0 to chunk.len - 1 do
      f chunk.src.(k) chunk.dst.(k)
    done
  done

let materialize t =
  let edges = Array.make t.m (0, 0) in
  let pos = ref 0 in
  iter t (fun u v ->
      edges.(!pos) <- (u, v);
      incr pos);
  Graph.create ~n:t.n ~edges
