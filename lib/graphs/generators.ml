module Rng = Repro_util.Rng

(* Self-loop rejection for the [~simple] modes: resample the second
   endpoint until it differs from the first.  A bounded retry count keeps
   the generators total even under adversarial rng states; the fallback
   rotation is hit with probability ~[n^-64]. *)
let max_resample = 64

let other_endpoint rng ~n u =
  let rec loop tries =
    let v = Rng.int rng n in
    if v <> u then v
    else if tries >= max_resample then (u + 1) mod n
    else loop (tries + 1)
  in
  loop 0

let require_two op ~simple ~n =
  if simple && n < 2 then
    invalid_arg (Printf.sprintf "Generators.%s: ~simple needs n >= 2" op)

let erdos_renyi ?(simple = false) ~rng ~n ~m () =
  require_two "erdos_renyi" ~simple ~n;
  let edges =
    if not simple then Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n))
    else begin
      (* Simple mode also drops duplicate undirected edges: resample the
         pair until unseen.  Feasible here because the edge list is
         materialized anyway (the streamed twin, {!Edge_stream}, only
         rejects self-loops — cross-chunk dedup would need global
         state).  Give up on dedup when the graph is denser than the
         simple graph can be. *)
      let max_pairs = n * (n - 1) / 2 in
      if m > max_pairs then
        invalid_arg
          (Printf.sprintf
             "Generators.erdos_renyi: ~simple cannot place %d distinct edges \
              on %d vertices (max %d)"
             m n max_pairs);
      let seen = Hashtbl.create (2 * m) in
      Array.init m (fun _ ->
          let rec draw () =
            let u = Rng.int rng n in
            let v = other_endpoint rng ~n u in
            let key = if u < v then (u, v) else (v, u) in
            if Hashtbl.mem seen key then draw ()
            else begin
              Hashtbl.add seen key ();
              (u, v)
            end
          in
          draw ())
    end
  in
  Graph.create ~n ~edges

let random_tree ~rng ~n =
  let relabel = Rng.permutation rng n in
  let edges =
    Array.init (n - 1) (fun i ->
        let child = i + 1 in
        (relabel.(child), relabel.(Rng.int rng child)))
  in
  Graph.create ~n ~edges

let grid2d ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid2d: empty grid";
  let vertex r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (vertex r c, vertex r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (vertex r c, vertex (r + 1) c) :: !acc
    done
  done;
  Graph.create ~n:(rows * cols) ~edges:(Array.of_list !acc)

(* One R-MAT endpoint pair: recurse [scale] times into the quadrant the
   (a, b, c, d) mix selects, accumulating one bit of each endpoint per
   level.  Shared with {!Edge_stream.fill} so the streamed and
   materialized generators draw identical edges from identical rng
   states. *)
let rmat_edge rng ~scale ~a ~b ~c =
  let u = ref 0 and v = ref 0 in
  for _bit = 1 to scale do
    let r = Rng.float rng in
    let du, dv =
      if r < a then (0, 0)
      else if r < a +. b then (0, 1)
      else if r < a +. b +. c then (1, 0)
      else (1, 1)
    in
    u := (!u lsl 1) lor du;
    v := (!v lsl 1) lor dv
  done;
  (!u, !v)

let rmat ?(simple = false) ~rng ~scale ~edge_factor ?(a = 0.57) ?(b = 0.19)
    ?(c = 0.19) () =
  if a +. b +. c >= 1. then invalid_arg "Generators.rmat: a + b + c must be < 1";
  let n = 1 lsl scale in
  require_two "rmat" ~simple ~n;
  let m = edge_factor * n in
  let one_edge () =
    let u, v = rmat_edge rng ~scale ~a ~b ~c in
    if simple && u = v then (u, other_endpoint rng ~n u) else (u, v)
  in
  Graph.create ~n ~edges:(Array.init m (fun _ -> one_edge ()))

let preferential ~rng ~n ~deg =
  if deg < 1 then invalid_arg "Generators.preferential: deg must be >= 1";
  if n < 2 then invalid_arg "Generators.preferential: n must be >= 2";
  (* [targets] holds one entry per edge endpoint, so sampling a uniform
     element of it is sampling proportionally to degree.  Each vertex's
     attachment points are drawn from the state before it arrived. *)
  let targets = ref [ 0 ] in
  let edges = ref [] in
  for v = 1 to n - 1 do
    let arr = Array.of_list !targets in
    let len = Array.length arr in
    for _ = 1 to min deg v do
      let u = arr.(Rng.int rng len) in
      edges := (u, v) :: !edges;
      targets := u :: !targets
    done;
    targets := v :: !targets
  done;
  Graph.create ~n ~edges:(Array.of_list !edges)

let random_digraph ~rng ~n ~m =
  Digraph.create ~n ~edges:(Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)))

let clustered_digraph ~rng ~clusters ~cluster_size ~extra =
  if clusters < 1 || cluster_size < 1 then
    invalid_arg "Generators.clustered_digraph: empty clusters";
  let n = clusters * cluster_size in
  let acc = ref [] in
  for cl = 0 to clusters - 1 do
    let base = cl * cluster_size in
    for i = 0 to cluster_size - 1 do
      acc := (base + i, base + ((i + 1) mod cluster_size)) :: !acc
    done
  done;
  let added = ref 0 in
  while !added < extra && clusters > 1 do
    let cu = Rng.int rng (clusters - 1) in
    let cv = Rng.int rng (clusters - cu - 1) + cu + 1 in
    let u = (cu * cluster_size) + Rng.int rng cluster_size in
    let v = (cv * cluster_size) + Rng.int rng cluster_size in
    acc := (u, v) :: !acc;
    incr added
  done;
  Digraph.create ~n ~edges:(Array.of_list !acc)
