type strategy = Direct | Sampled of int

type stats = {
  edges_total : int;
  edges_skipped : int;
  sample_unites : int;
  dsu_work : int;
}

let in_domains ~domains f =
  if domains <= 1 then f 0 1
  else begin
    let handles = List.init domains (fun k -> Domain.spawn (fun () -> f k domains)) in
    List.iter Domain.join handles
  end

let components ?(domains = 4) ?(seed = 1) ?(strategy = Sampled 2) g =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let d = Dsu.Native.create ~collect_stats:true ~seed n in
  let sample_unites = ref 0 in
  let skipped = Atomic.make 0 in
  (match strategy with
  | Direct ->
    in_domains ~domains (fun k total ->
        for i = m * k / total to (m * (k + 1) / total) - 1 do
          let u, v = edges.(i) in
          Dsu.Native.unite d u v
        done)
  | Sampled k_out ->
    (* Phase 1: k-out sampling over the adjacency lists (parallel over
       vertex ranges). *)
    let adj = Graph.adjacency g in
    in_domains ~domains (fun k total ->
        for v = n * k / total to (n * (k + 1) / total) - 1 do
          let neighbours = adj.(v) in
          for j = 0 to min k_out (Array.length neighbours) - 1 do
            Dsu.Native.unite d v neighbours.(j)
          done
        done);
    sample_unites :=
      Array.fold_left (fun acc row -> acc + min k_out (Array.length row)) 0 adj;
    (* Phase 2: snapshot labels and find the giant class. *)
    let labels = Array.init n (fun v -> Dsu.Native.find d v) in
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun l ->
        Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
      labels;
    let giant, _ =
      Hashtbl.fold
        (fun l c ((_, best) as acc) -> if c > best then (l, c) else acc)
        counts (-1, 0)
    in
    (* Phase 3: finish — two array reads decide most edges. *)
    in_domains ~domains (fun k total ->
        let my_skipped = ref 0 in
        for i = m * k / total to (m * (k + 1) / total) - 1 do
          let u, v = edges.(i) in
          if labels.(u) = giant && labels.(v) = giant then incr my_skipped
          else Dsu.Native.unite d u v
        done;
        ignore (Atomic.fetch_and_add skipped !my_skipped)));
  let labels = Components.normalize (Array.init n (fun v -> Dsu.Native.find d v)) in
  let s = Dsu.Native.stats d in
  ( labels,
    {
      edges_total = m;
      edges_skipped = Atomic.get skipped;
      sample_unites = !sample_unites;
      dsu_work = Dsu.Stats.total_work s;
    } )
