module Clock = Repro_obs.Clock

(* ------------------------------------------------------------------ *)
(* ConnectIt-style parallel connectivity (Dhulipala–Hong–Shun): a cheap
   sampling phase collapses most of a giant-component graph into one
   class, a snapshot labeling identifies that class, and the finish
   phase skips every intra-giant edge with two array reads.  Two entry
   points share the machinery:

   - [components]: the original materialized-graph API, now
     plan-dispatched ({!Dsu.Driver}) with parallel label passes;
   - [run_stream]: the out-of-core pipeline over an {!Edge_stream} —
     sampling x finish x plan on the racy engine, or the
     schedule-independent {!Det_bulk} engine. *)

let in_domains ~domains f =
  if domains <= 1 then f 0 1
  else begin
    let handles =
      List.init domains (fun k -> Domain.spawn (fun () -> f k domains))
    in
    let failure = ref None in
    List.iter
      (fun h ->
        match Domain.join h with
        | () -> ()
        | exception e -> if !failure = None then failure := Some e)
      handles;
    match !failure with Some e -> raise e | None -> ()
  end

(* Parallel label snapshot: each domain batch-finds its vertex range
   through the bulk kernel (root cache + prefetch) and blits into the
   shared array.  Writes are range-partitioned, so no two domains touch
   the same slot. *)
let parallel_labels ~domains (driver : Dsu.Driver.t) =
  let n = driver.Dsu.Driver.n in
  let labels = Array.make n 0 in
  in_domains ~domains (fun k total ->
      let lo = n * k / total and hi = n * (k + 1) / total in
      if hi > lo then begin
        let xs = Array.init (hi - lo) (fun i -> lo + i) in
        let roots = driver.Dsu.Driver.find_batch xs in
        Array.blit roots 0 labels lo (hi - lo)
      end);
  labels

(* [Components.normalize] with flat arrays instead of a Hashtbl: root
   labels are vertex ids, so a second [n]-word array suffices — at
   2^20+ vertices the Hashtbl would dominate the label pass. *)
let normalize_min_id labels =
  let n = Array.length labels in
  let smallest = Array.make n (-1) in
  for v = n - 1 downto 0 do
    smallest.(labels.(v)) <- v
  done;
  Array.map (fun l -> smallest.(l)) labels

(* The giant class of a label snapshot: the label with the highest
   multiplicity (all labels are vertex ids, so a flat counts array
   works), or -1 for an empty universe. *)
let giant_of snapshot =
  let counts = Array.make (Array.length snapshot) 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) snapshot;
  let giant = ref (-1) and best = ref 0 in
  Array.iteri
    (fun l c ->
      if c > !best then begin
        giant := l;
        best := c
      end)
    counts;
  !giant

(* ------------------------------------------------------------------ *)
(* Materialized-graph API (the original signature, kept as a default). *)

type strategy = Direct | Sampled of int

type stats = {
  edges_total : int;
  edges_skipped : int;
  sample_unites : int;
  dsu_work : int;
}

let components ?(domains = 4) ?(seed = 1) ?(strategy = Sampled 2)
    ?(plan = Dsu.Plan.default) ?(collect_stats = true) g =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let d = Dsu.Driver.create ~plan ~seed ~collect_stats n in
  let unite = d.Dsu.Driver.unite in
  let sample_unites = ref 0 in
  let skipped = Atomic.make 0 in
  (match strategy with
  | Direct ->
    in_domains ~domains (fun k total ->
        for i = m * k / total to (m * (k + 1) / total) - 1 do
          let u, v = edges.(i) in
          unite u v
        done)
  | Sampled k_out ->
    (* Phase 1: k-out sampling over the adjacency lists (parallel over
       vertex ranges). *)
    let adj = Graph.adjacency g in
    in_domains ~domains (fun k total ->
        for v = n * k / total to (n * (k + 1) / total) - 1 do
          let neighbours = adj.(v) in
          for j = 0 to min k_out (Array.length neighbours) - 1 do
            unite v neighbours.(j)
          done
        done);
    sample_unites :=
      Array.fold_left (fun acc row -> acc + min k_out (Array.length row)) 0 adj;
    (* Phase 2: snapshot labels and find the giant class. *)
    let labels = parallel_labels ~domains d in
    let giant = giant_of labels in
    (* Phase 3: finish — two array reads decide most edges. *)
    in_domains ~domains (fun k total ->
        let my_skipped = ref 0 in
        for i = m * k / total to (m * (k + 1) / total) - 1 do
          let u, v = edges.(i) in
          if labels.(u) = giant && labels.(v) = giant then incr my_skipped
          else unite u v
        done;
        ignore (Atomic.fetch_and_add skipped !my_skipped)));
  let labels = normalize_min_id (parallel_labels ~domains d) in
  let dsu_work =
    match d.Dsu.Driver.stats () with
    | Some s -> Dsu.Stats.total_work s
    | None -> 0
  in
  ( labels,
    {
      edges_total = m;
      edges_skipped = Atomic.get skipped;
      sample_unites = !sample_unites;
      dsu_work;
    } )

(* ------------------------------------------------------------------ *)
(* Streamed pipeline. *)

type sampling = No_sampling | K_out of int | Bfs_hubs of int
type finish = Per_op | Bulk
type mode = Racy | Deterministic

let sampling_to_string = function
  | No_sampling -> "none"
  | K_out k -> Printf.sprintf "k-out:%d" k
  | Bfs_hubs h -> Printf.sprintf "bfs-hubs:%d" h

let sampling_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Some No_sampling
  | [ "k-out"; k ] -> int_of_string_opt k |> Option.map (fun k -> K_out k)
  | [ "k-out" ] -> Some (K_out 2)
  | [ "bfs-hubs"; h ] ->
    int_of_string_opt h |> Option.map (fun h -> Bfs_hubs h)
  | [ "bfs-hubs" ] -> Some (Bfs_hubs 64)
  | _ -> None

let finish_to_string = function Per_op -> "per-op" | Bulk -> "bulk"

let finish_of_string = function
  | "per-op" -> Some Per_op
  | "bulk" -> Some Bulk
  | _ -> None

let mode_to_string = function Racy -> "racy" | Deterministic -> "det"

let mode_of_string = function
  | "racy" -> Some Racy
  | "det" | "deterministic" -> Some Deterministic
  | _ -> None

type stream_report = {
  labels : int array;
  components : int;
  edges_total : int;
  edges_skipped : int;
  sample_unites : int;
  det_rounds : int;
  sample_ns : int;
  finish_ns : int;
  label_ns : int;
  total_ns : int;
}

let count_components labels =
  let c = ref 0 in
  Array.iteri (fun v l -> if l = v then incr c) labels;
  !c

(* How much of the stream the sampling phase reads: enough chunks to see
   ~2 edges per vertex on average, capped at the whole stream.  A pure
   function of the stream geometry, so sampling work is reproducible. *)
let sample_window stream =
  let n = Edge_stream.n stream in
  let per_chunk = Edge_stream.chunk_size stream in
  let want = (2 * n + per_chunk - 1) / per_chunk in
  min (Edge_stream.chunk_count stream) (max 1 want)

(* Round-robin chunk hand-out: domains race on an atomic cursor, so a
   slow domain (NUMA, preemption) simply takes fewer chunks. *)
let drain_chunks ~domains stream ~window ~f =
  let next = Atomic.make 0 in
  in_domains ~domains (fun _ _ ->
      let buf = Edge_stream.make_chunk stream in
      let rec loop () =
        let idx = Atomic.fetch_and_add next 1 in
        if idx < window then begin
          Edge_stream.fill stream idx buf;
          f buf;
          loop ()
        end
      in
      loop ())

let run_stream ?(domains = 4) ?(seed = 1) ?(plan = Dsu.Plan.default)
    ?(sampling = K_out 2) ?(finish = Bulk) ?(mode = Racy) ?(block_chunks = 8)
    stream =
  let n = Edge_stream.n stream in
  let m = Edge_stream.total_edges stream in
  let chunks = Edge_stream.chunk_count stream in
  let t_start = Clock.now_ns () in
  match mode with
  | Deterministic ->
    (* The deterministic engine processes every edge through min-id
       rounds: sampling and plan choice would reintroduce schedule
       dependence, so they are ignored by design. *)
    let labels, (report : Det_bulk.report) =
      Det_bulk.run ~domains ~block_chunks stream
    in
    let t_end = Clock.now_ns () in
    {
      labels;
      components = report.Det_bulk.components;
      edges_total = m;
      edges_skipped = 0;
      sample_unites = 0;
      det_rounds = report.Det_bulk.rounds;
      sample_ns = 0;
      finish_ns = t_end - t_start;
      label_ns = 0;
      total_ns = t_end - t_start;
    }
  | Racy ->
    let d = Dsu.Driver.create ~plan ~seed n in
    let unite = d.Dsu.Driver.unite in
    let sample_unites = ref 0 in
    (* -------- Phase 1: sampling over a stream prefix. ------------- *)
    (match sampling with
    | No_sampling -> ()
    | K_out k ->
      let k = max 1 (min k 255) in
      (* Per-vertex out-degree budget.  The unsynchronized byte
         counters can race a few extra unites in — harmless for the
         racy engine, and far cheaper than n atomic cells. *)
      let budget = Bytes.make n '\000' in
      let counted = Atomic.make 0 in
      drain_chunks ~domains stream ~window:(sample_window stream)
        ~f:(fun buf ->
          let mine = ref 0 in
          for e = 0 to buf.Edge_stream.len - 1 do
            let u = buf.Edge_stream.src.(e)
            and v = buf.Edge_stream.dst.(e) in
            let b = Char.code (Bytes.unsafe_get budget u) in
            if b < k then begin
              Bytes.unsafe_set budget u (Char.unsafe_chr (b + 1));
              unite u v;
              incr mine
            end
          done;
          ignore (Atomic.fetch_and_add counted !mine));
      sample_unites := Atomic.get counted
    | Bfs_hubs hubs ->
      let hubs = max 1 hubs in
      let window = sample_window stream in
      (* Pass 1: racy degree histogram over the window (lost updates
         only blur hub selection, never correctness). *)
      let degree = Array.make n 0 in
      drain_chunks ~domains stream ~window ~f:(fun buf ->
          for e = 0 to buf.Edge_stream.len - 1 do
            let u = buf.Edge_stream.src.(e) in
            degree.(u) <- degree.(u) + 1
          done);
      let is_hub =
        let order = Array.init n (fun i -> i) in
        Array.sort (fun a b -> compare degree.(b) degree.(a)) order;
        let mark = Bytes.make n '\000' in
        for i = 0 to min hubs n - 1 do
          Bytes.set mark order.(i) '\001'
        done;
        fun v -> Bytes.unsafe_get mark v = '\001'
      in
      (* Pass 2: unite every window edge incident to a hub — the
         streamed analogue of BFS outward from high-degree roots. *)
      let counted = Atomic.make 0 in
      drain_chunks ~domains stream ~window ~f:(fun buf ->
          let mine = ref 0 in
          for e = 0 to buf.Edge_stream.len - 1 do
            let u = buf.Edge_stream.src.(e)
            and v = buf.Edge_stream.dst.(e) in
            if is_hub u || is_hub v then begin
              unite u v;
              incr mine
            end
          done;
          ignore (Atomic.fetch_and_add counted !mine));
      sample_unites := Atomic.get counted);
    (* -------- Phase 2: snapshot labels, find the giant class. ----- *)
    let skip_filter =
      if sampling = No_sampling then None
      else begin
        let snapshot = parallel_labels ~domains d in
        let giant = giant_of snapshot in
        if giant < 0 then None
        else Some (fun u v -> snapshot.(u) = giant && snapshot.(v) = giant)
      end
    in
    let t_sampled = Clock.now_ns () in
    (* -------- Phase 3: finish over the whole stream. -------------- *)
    let skipped = Atomic.make 0 in
    let cap = Edge_stream.chunk_size stream in
    let next = Atomic.make 0 in
    in_domains ~domains (fun _ _ ->
        let buf = Edge_stream.make_chunk stream in
        let xs = Array.make cap 0 and ys = Array.make cap 0 in
        let my_skipped = ref 0 in
        let rec loop () =
          let idx = Atomic.fetch_and_add next 1 in
          if idx < chunks then begin
            Edge_stream.fill stream idx buf;
            (match finish with
            | Per_op ->
              for e = 0 to buf.Edge_stream.len - 1 do
                let u = buf.Edge_stream.src.(e)
                and v = buf.Edge_stream.dst.(e) in
                match skip_filter with
                | Some skip when skip u v -> incr my_skipped
                | _ -> unite u v
              done
            | Bulk ->
              (match skip_filter with
              | None when buf.Edge_stream.len = cap ->
                (* Full chunk, nothing to skip: feed the chunk buffers
                   straight to the kernel, no compaction copy. *)
                d.Dsu.Driver.unite_batch buf.Edge_stream.src
                  buf.Edge_stream.dst
              | _ ->
                (* Compact the survivors, then one bulk-kernel call per
                   chunk (root cache + prefetch amortized over the
                   block). *)
                let len = ref 0 in
                for e = 0 to buf.Edge_stream.len - 1 do
                  let u = buf.Edge_stream.src.(e)
                  and v = buf.Edge_stream.dst.(e) in
                  match skip_filter with
                  | Some skip when skip u v -> incr my_skipped
                  | _ ->
                    xs.(!len) <- u;
                    ys.(!len) <- v;
                    incr len
                done;
                if !len > 0 then
                  d.Dsu.Driver.unite_batch (Array.sub xs 0 !len)
                    (Array.sub ys 0 !len)));
            loop ()
          end
        in
        loop ();
        ignore (Atomic.fetch_and_add skipped !my_skipped));
    let t_finished = Clock.now_ns () in
    (* -------- Phase 4: final labels (parallel batched finds). ----- *)
    let labels = normalize_min_id (parallel_labels ~domains d) in
    let t_end = Clock.now_ns () in
    {
      labels;
      components = count_components labels;
      edges_total = m;
      edges_skipped = Atomic.get skipped;
      sample_unites = !sample_unites;
      det_rounds = 0;
      sample_ns = t_sampled - t_start;
      finish_ns = t_finished - t_sampled;
      label_ns = t_end - t_finished;
      total_ns = t_end - t_start;
    }
