type t = {
  n : int;
  edges : (int * int) array;
  mutable adjacency : int array array option;
}

let create ~n ~edges =
  if n < 1 then invalid_arg "Graph.create: n must be >= 1";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.create: edge endpoint out of range")
    edges;
  { n; edges; adjacency = None }

let n t = t.n
let num_edges t = Array.length t.edges
let edges t = t.edges

let build_adjacency t =
  let deg = Array.make t.n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      if u <> v then deg.(v) <- deg.(v) + 1)
    t.edges;
  let adj = Array.map (fun d -> Array.make d (-1)) deg in
  let fill = Array.make t.n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      if u <> v then begin
        adj.(v).(fill.(v)) <- u;
        fill.(v) <- fill.(v) + 1
      end)
    t.edges;
  adj

let adjacency t =
  match t.adjacency with
  | Some adj -> adj
  | None ->
    let adj = build_adjacency t in
    t.adjacency <- Some adj;
    adj

let degree t v = Array.length (adjacency t).(v)

type weighted = { graph : t; weights : float array }

let with_random_weights ~rng t =
  { graph = t; weights = Array.init (num_edges t) (fun _ -> Repro_util.Rng.float rng) }
