type tree = {
  root : int;
  parents : int array;
  children : int array array;
  depths : int array;
}

let build_children parents root =
  let n = Array.length parents in
  let deg = Array.make n 0 in
  Array.iteri (fun v p -> if v <> root then deg.(p) <- deg.(p) + 1) parents;
  let children = Array.map (fun d -> Array.make d (-1)) deg in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v p ->
      if v <> root then begin
        children.(p).(fill.(p)) <- v;
        fill.(p) <- fill.(p) + 1
      end)
    parents;
  children

let compute_depths parents root =
  let n = Array.length parents in
  let depths = Array.make n (-1) in
  depths.(root) <- 0;
  let rec depth_of v hops =
    if hops > n then invalid_arg "Lca.tree_of_parents: cycle detected";
    if depths.(v) >= 0 then depths.(v)
    else begin
      let d = 1 + depth_of parents.(v) (hops + 1) in
      depths.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    ignore (depth_of v 0)
  done;
  depths

let tree_of_parents ~root parents =
  let n = Array.length parents in
  if n < 1 then invalid_arg "Lca.tree_of_parents: empty tree";
  if root < 0 || root >= n || parents.(root) <> root then
    invalid_arg "Lca.tree_of_parents: root must be its own parent";
  Array.iteri
    (fun v p ->
      if p < 0 || p >= n then invalid_arg "Lca.tree_of_parents: parent out of range";
      if v <> root && p = v then
        invalid_arg "Lca.tree_of_parents: non-root self-loop")
    parents;
  {
    root;
    parents = Array.copy parents;
    children = build_children parents root;
    depths = compute_depths parents root;
  }

let random_tree ~rng ~n =
  let parents = Array.make n 0 in
  for v = 1 to n - 1 do
    parents.(v) <- Repro_util.Rng.int rng v
  done;
  tree_of_parents ~root:0 parents

let n t = Array.length t.parents
let root t = t.root
let parent t v = t.parents.(v)
let depth t v = t.depths.(v)

let lca_naive t u v =
  let rec climb u v =
    if u = v then u
    else if t.depths.(u) >= t.depths.(v) then climb t.parents.(u) v
    else climb u t.parents.(v)
  in
  climb u v

(* Tarjan's offline algorithm.  [ancestor] maps the union-find class of a
   visited vertex to the shallowest vertex on the current DFS path that the
   class has been merged into; a query (u, v) is answered when its second
   endpoint finishes, at which point [ancestor (find u)] is the LCA. *)
let solve t queries =
  let size = n t in
  let dsu = Dsu.Native.create ~seed:1 size in
  let ancestor = Array.init size (fun i -> i) in
  let visited = Array.make size false in
  let queries_arr = Array.of_list queries in
  let answers = Array.make (Array.length queries_arr) (-1) in
  (* Queries indexed by both endpoints. *)
  let by_vertex = Array.make size [] in
  Array.iteri
    (fun qi (u, v) ->
      if u < 0 || u >= size || v < 0 || v >= size then
        invalid_arg "Lca.solve: query vertex out of range";
      by_vertex.(u) <- (qi, v) :: by_vertex.(u);
      by_vertex.(v) <- (qi, u) :: by_vertex.(v))
    queries_arr;
  (* Iterative post-order DFS: frames are (vertex, next-child index). *)
  let stack = ref [ (t.root, ref 0) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, next) :: rest ->
      if !next = 0 then begin
        (* first visit *)
        visited.(v) <- true;
        List.iter
          (fun (qi, other) ->
            if visited.(other) && answers.(qi) < 0 then
              answers.(qi) <- ancestor.(Dsu.Native.find dsu other))
          by_vertex.(v)
      end;
      if !next < Array.length t.children.(v) then begin
        let c = t.children.(v).(!next) in
        incr next;
        stack := (c, ref 0) :: !stack
      end
      else begin
        (* post-order: fold v's class into its parent's and relabel *)
        stack := rest;
        if v <> t.root then begin
          Dsu.Native.unite dsu v t.parents.(v);
          ancestor.(Dsu.Native.find dsu v) <- t.parents.(v)
        end
      end
  done;
  Array.to_list answers
