let normalize labels =
  let n = Array.length labels in
  let smallest = Hashtbl.create 64 in
  for v = n - 1 downto 0 do
    Hashtbl.replace smallest labels.(v) v
  done;
  Array.map (fun l -> Hashtbl.find smallest l) labels

let sequential g =
  let d = Sequential.Seq_dsu.create (Graph.n g) in
  Array.iter (fun (u, v) -> Sequential.Seq_dsu.unite d u v) (Graph.edges g);
  normalize (Array.init (Graph.n g) (fun v -> Sequential.Seq_dsu.find d v))

let concurrent ?(domains = 4) ?policy ?early ?seed g =
  let n = Graph.n g in
  let d = Dsu.Native.create ?policy ?early ?seed n in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let worker k () =
    let lo = m * k / domains and hi = m * (k + 1) / domains in
    for i = lo to hi - 1 do
      let u, v = edges.(i) in
      Dsu.Native.unite d u v
    done
  in
  let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join handles;
  normalize (Array.init n (fun v -> Dsu.Native.find d v))

let count labels =
  let seen = Hashtbl.create 64 in
  Array.iter (fun l -> Hashtbl.replace seen l ()) labels;
  Hashtbl.length seen

let incremental ?policy ?seed ~n () =
  let d = Dsu.Native.create ?policy ?seed n in
  let add_edge u v = Dsu.Native.unite d u v in
  let connected u v = Dsu.Native.same_set d u v in
  (add_edge, connected)
