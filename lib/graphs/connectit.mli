(** ConnectIt-style parallel connectivity: the follow-on pattern built on
    this paper's algorithm (Dhulipala, Hong & Shun's ConnectIt framework
    composes exactly such sampling and finish strategies around a
    Jayanti–Tarjan-style concurrent union-find).

    The key idea: a cheap {e sampling phase} (unite each vertex with up to
    [k] of its neighbours — "k-out" sampling) already collapses most of a
    graph with a giant component into one class; a snapshot labeling then
    identifies that class, and the {e finish phase} skips every edge with
    both endpoints already inside it using two array reads instead of two
    traversals — most edges never touch the DSU at all. *)

type strategy =
  | Direct  (** unite every edge; no sampling *)
  | Sampled of int  (** k-out sampling, then skip intra-giant edges *)

type stats = {
  edges_total : int;
  edges_skipped : int;  (** finish-phase edges skipped by the snapshot test *)
  sample_unites : int;  (** unites performed by the sampling phase *)
  dsu_work : int;  (** total find iterations + CAS attempts (Dsu.Stats) *)
}

val components :
  ?domains:int ->
  ?seed:int ->
  ?strategy:strategy ->
  Graph.t ->
  int array * stats
(** Component labels (normalized to smallest member, comparable with
    {!Components.sequential}) plus work statistics.  [domains] defaults to
    4, [strategy] to [Sampled 2]. *)
