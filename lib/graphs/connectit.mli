(** ConnectIt-style parallel connectivity: the follow-on pattern built on
    this paper's algorithm (Dhulipala, Hong & Shun's ConnectIt framework
    composes exactly such sampling and finish strategies around a
    Jayanti–Tarjan-style concurrent union-find).

    The key idea: a cheap {e sampling phase} (unite each vertex with up to
    [k] of its neighbours — "k-out" sampling) already collapses most of a
    graph with a giant component into one class; a snapshot labeling then
    identifies that class, and the {e finish phase} skips every edge with
    both endpoints already inside it using two array reads instead of two
    traversals — most edges never touch the DSU at all.

    {!components} is the materialized-graph entry point;
    {!run_stream} runs the same pipeline out-of-core over an
    {!Edge_stream} (the edge list is never materialized), with a choice
    of finish kernel (per-op vs bulk), any {!Dsu.Plan}, and an
    internally deterministic mode ({!Det_bulk}). *)

type strategy =
  | Direct  (** unite every edge; no sampling *)
  | Sampled of int  (** k-out sampling, then skip intra-giant edges *)

type stats = {
  edges_total : int;
  edges_skipped : int;  (** finish-phase edges skipped by the snapshot test *)
  sample_unites : int;  (** unites performed by the sampling phase *)
  dsu_work : int;  (** total find iterations + CAS attempts (Dsu.Stats) *)
}

val components :
  ?domains:int ->
  ?seed:int ->
  ?strategy:strategy ->
  ?plan:Dsu.Plan.t ->
  ?collect_stats:bool ->
  Graph.t ->
  int array * stats
(** Component labels (normalized to smallest member, comparable with
    {!Components.sequential}) plus work statistics.  [domains] defaults
    to 4, [strategy] to [Sampled 2].  [plan] (default {!Dsu.Plan.default})
    picks the DSU backend via {!Dsu.Driver}; [collect_stats] (default
    [true], matching the original API) feeds [dsu_work] — pass [false]
    for timing runs, leaving [dsu_work = 0].
    @raise Invalid_argument if {!Dsu.Plan.validate} rejects [plan]. *)

(** {1 Streamed pipeline} *)

type sampling =
  | No_sampling
  | K_out of int
      (** Unite each vertex's first [k] stream-incident out-edges over a
          prefix window of the stream. *)
  | Bfs_hubs of int
      (** Rank vertices by out-degree over a prefix window, then unite
          every window edge incident to one of the top-[h] hubs. *)

type finish =
  | Per_op  (** one [unite] call per surviving edge *)
  | Bulk  (** one [unite_batch] call per surviving chunk *)

type mode =
  | Racy
      (** The paper's wait-free engine: fastest; the output forest
          depends on the schedule (labels are still correct and
          normalized). *)
  | Deterministic
      (** {!Det_bulk}: byte-identical labels for a given stream across
          any domain count and schedule; sampling and plan are ignored
          (they would reintroduce schedule dependence). *)

val sampling_to_string : sampling -> string

val sampling_of_string : string -> sampling option
(** ["none"], ["k-out:<k>"] (bare ["k-out"] = 2), ["bfs-hubs:<h>"]
    (bare = 64). *)

val finish_to_string : finish -> string
val finish_of_string : string -> finish option
val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type stream_report = {
  labels : int array;
      (** Normalized component labels: [labels.(v)] is the minimum
          vertex id of [v]'s component, in every mode. *)
  components : int;
  edges_total : int;
  edges_skipped : int;  (** finish-phase edges skipped intra-giant *)
  sample_unites : int;
  det_rounds : int;  (** deterministic rounds (0 in [Racy] mode) *)
  sample_ns : int;  (** sampling + giant-snapshot wall time *)
  finish_ns : int;
  label_ns : int;  (** final parallel label pass *)
  total_ns : int;
}

val run_stream :
  ?domains:int ->
  ?seed:int ->
  ?plan:Dsu.Plan.t ->
  ?sampling:sampling ->
  ?finish:finish ->
  ?mode:mode ->
  ?block_chunks:int ->
  Edge_stream.t ->
  stream_report
(** One pass of the streaming pipeline.  Memory is bounded by the DSU
    state ([O(n)]) plus per-domain chunk buffers — the stream's edge
    list is never materialized.  Defaults: 4 domains, [K_out 2]
    sampling, [Bulk] finish, [Racy] mode, plan {!Dsu.Plan.default};
    [block_chunks] (default 8) is the deterministic engine's block size.
    @raise Invalid_argument if {!Dsu.Plan.validate} rejects [plan]. *)

(**/**)

val in_domains : domains:int -> (int -> int -> unit) -> unit
(** Internal: run [f k domains] on [domains] domains (rethrows the
    first worker exception after joining all).  Shared with the harness
    sweeps. *)
