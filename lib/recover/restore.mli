(** Rebuild a live structure from a {!Snapshot.t}.

    Dispatches on the snapshot's kind to the layout's validated
    [of_snapshot] constructor; the uniform {!unite}/{!same_set}/{!find}
    dispatchers let a resumed workload drive whichever layout came back
    without caring which it was. *)

type restored =
  | Flat of Dsu.Native.t
  | Boxed of Dsu.Boxed.t
  | Growable of Dsu.Growable.t
  | Rank of Dsu.Rank.Native.t
  | Packed of Dsu.Packed.Native.t

val restore :
  ?policy:Dsu.Find_policy.t ->
  ?early:bool ->
  ?collect_stats:bool ->
  ?padded:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  Snapshot.t ->
  restored
(** [policy] applies to the Flat, Boxed, Growable and Packed kinds;
    [early] to Flat, Boxed and Growable; [padded] to Flat and Packed;
    [on_link] (all kinds) hooks every successful link CAS — pass
    {!Repro_durable.Wal.append} to resume logging after recovery.
    @raise Invalid_argument when the snapshot fails the layout's invariant
    validation (run {!Repair.repair} first). *)

val restore_result :
  ?policy:Dsu.Find_policy.t ->
  ?early:bool ->
  ?collect_stats:bool ->
  ?padded:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  Snapshot.t ->
  (restored, string) result
(** {!restore} with the validation failure as an [Error]. *)

val snapshot : restored -> Snapshot.t
(** Re-capture (quiescent only) — the round-trip proof obligation. *)

val snapshot_fuzzy : restored -> int array * int array
(** The layout's fuzzy [(parents, prios)] scan (see
    {!Dsu.Native.snapshot_fuzzy}); safe concurrent with mutators. *)

val n : restored -> int
(** Elements present ([cardinal] for Growable). *)

val unite : restored -> int -> int -> unit
val same_set : restored -> int -> int -> bool
val find : restored -> int -> int
val count_sets : restored -> int
(** Quiescent only. *)

val kind : restored -> Snapshot.kind
