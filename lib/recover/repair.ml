module Fc = Repro_fault.Forest_check
module J = Repro_obs.Json

type reason = Out_of_range | Order | Cycle

type fix = { node : int; old_parent : int; reason : reason }

let repair (snap : Snapshot.t) =
  let parents = Array.copy snap.parents in
  let fixes = ref [] in
  let make_root node reason =
    (* An earlier fix this round may already have rooted the node. *)
    if parents.(node) <> node then begin
      fixes := { node; old_parent = parents.(node); reason } :: !fixes;
      parents.(node) <- node
    end
  in
  let less i j =
    let pi = snap.prios.(i) and pj = snap.prios.(j) in
    pi < pj || (pi = pj && i < j)
  in
  (* Every fix removes an edge and adds none, so n rounds always suffice. *)
  let rec rounds budget =
    let report = Snapshot.check { snap with parents } in
    if (not (Fc.ok report)) && budget > 0 then begin
      List.iter
        (function
          | Fc.Out_of_range { node; _ } -> make_root node Out_of_range
          | Fc.Order { node; _ } -> make_root node Order
          | Fc.Cycle [] -> ()
          | Fc.Cycle (first :: rest) ->
            make_root (List.fold_left (fun best v -> if less v best then v else best) first rest)
              Cycle)
        report.violations;
      rounds (budget - 1)
    end
  in
  rounds (snap.n + 1);
  ({ snap with parents }, List.rev !fixes)

(* Component representative per node: union-find over the in-range edges,
   direction ignored — well-defined even on cyclic input. *)
let components (snap : Snapshot.t) =
  let n = snap.n in
  let uf = Array.init n (fun i -> i) in
  let rec find i = if uf.(i) = i then i else (let r = find uf.(i) in uf.(i) <- r; r) in
  Array.iteri
    (fun i p ->
      if p >= 0 && p < n && p <> i then begin
        let ri = find i and rp = find p in
        if ri <> rp then uf.(ri) <- rp
      end)
    snap.parents;
  Array.init n (fun i -> find i)

let refines ~(fine : Snapshot.t) ~(coarse : Snapshot.t) =
  fine.n = coarse.n
  &&
  let cf = components fine and cc = components coarse in
  let coarse_of_fine = Hashtbl.create 64 in
  let ok = ref true in
  Array.iteri
    (fun i rf ->
      match Hashtbl.find_opt coarse_of_fine rf with
      | None -> Hashtbl.add coarse_of_fine rf cc.(i)
      | Some c -> if c <> cc.(i) then ok := false)
    cf;
  !ok

let reason_to_string = function
  | Out_of_range -> "out-of-range"
  | Order -> "order"
  | Cycle -> "cycle"

let pp_fix ppf { node; old_parent; reason } =
  Format.fprintf ppf "%s: parent(%d) %d -> %d" (reason_to_string reason) node old_parent
    node

let fixes_to_json fixes =
  J.List
    (List.map
       (fun { node; old_parent; reason } ->
         J.Obj
           [
             ("node", J.Int node);
             ("old_parent", J.Int old_parent);
             ("reason", J.String (reason_to_string reason));
           ])
       fixes)
