(** Versioned, checksummed snapshots of a quiescent DSU memory.

    A snapshot is the raw state any of the layouts can be rebuilt from:
    the parent array plus the per-node linking order ([prios] — the id
    permutation for {!Dsu.Native}/{!Dsu.Boxed}, the 62-bit random priorities
    for {!Dsu.Growable}, the ranks for {!Dsu.Rank.Native} and
    {!Dsu.Packed.Native}, extracted from the packed words).  All the orders
    share the algorithm's [less]: priority first, node index on ties — so
    one {!check} validates any kind against Lemma 3.1.

    Snapshots are taken at quiescence — either deliberately (checkpoint) or
    after a crash has killed some domains and the survivors have drained
    (Theorem 3.4: every surviving operation completes regardless of the
    crashed processes, so quiescence is always reachable).  A crash leaves
    at most one installed CAS per killed process and never a corrupt edge,
    so a crash-time snapshot still passes {!check}; {!Repair} exists for
    snapshots corrupted {e in storage}, not by the algorithm.

    Fuzzy snapshots ({!Repro_durable.Fuzzy}) carry a WAL [epoch]: the cut
    is guaranteed to contain every link whose WAL record has a strictly
    smaller epoch, so recovery replays the log tail from [epoch] on.
    Quiescent captures set [epoch = 0] (replay nothing, or everything —
    at quiescence the snapshot already holds all links).

    Two codecs, both carrying a CRC-32 of the same canonical body so either
    detects bit-rot:

    - binary: magic ["DSUSNAP2"], kind byte, [epoch], [n] and [capacity]
      as 8-byte little-endian, both arrays as 8-byte little-endian words,
      CRC-32 little-endian trailer;
    - JSON: schema ["dsu-snapshot/v2"] with the checksum as a field.

    Both decoders also read the previous version (["DSUSNAP1"] /
    ["dsu-snapshot/v1"], no epoch field) as [epoch = 0].

    Decoders return [result]s — a malformed or checksum-failing file is an
    ordinary error, never an exception. *)

type kind = Flat | Boxed | Growable | Rank | Packed

type t = {
  kind : kind;
  n : int;  (** elements present ([cardinal] for Growable) *)
  capacity : int;  (** slots to preallocate on restore; [n] except for Growable *)
  epoch : int;  (** WAL epoch the cut is consistent with; 0 = quiescent *)
  parents : int array;  (** length [n]; roots are self-parented *)
  prios : int array;  (** length [n]; ids / priorities / ranks, per [kind] *)
}

val with_epoch : t -> int -> t
(** The same snapshot stamped with a WAL epoch.
    @raise Invalid_argument on a negative epoch. *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** {1 Capture} — quiescent only; see the layout's [parents_snapshot] doc. *)

val of_native : Dsu.Native.t -> t
val of_boxed : Dsu.Boxed.t -> t
val of_growable : Dsu.Growable.t -> t
val of_rank : Dsu.Rank.Native.t -> t

val of_packed : Dsu.Packed.Native.t -> t
(** [prios] holds the ranks unpacked from the bit fields; restore re-packs
    them ({!Dsu.Packed.Native.of_snapshot}). *)

(** {1 Validation} *)

val check : t -> Repro_fault.Forest_check.report
(** {!Repro_fault.Forest_check.check} with this snapshot's priority order. *)

val ok : t -> bool

val checksum : t -> int
(** CRC-32 of the canonical body (shared by both codecs). *)

(** {1 Codecs} *)

val to_binary_string : t -> string
val of_binary_string : string -> (t, string) result

val to_json : t -> Repro_obs.Json.t
val of_json : Repro_obs.Json.t -> (t, string) result
val to_json_string : t -> string
val of_json_string : string -> (t, string) result

type format = Binary | Json

val write_file : ?format:format -> string -> t -> unit
(** Default {!Binary}.  Crash-atomic: the bytes are staged in a temporary
    file in the destination directory, fsynced, renamed over [path], and
    the directory is fsynced — a crash leaves the old file or the new one,
    never a torn snapshot.  Raises [Sys_error] or [Unix.Unix_error] on I/O
    failure. *)

val read_file : string -> (t, string) result
(** Auto-detects the format: a binary magic (v2 or v1) wins, otherwise
    JSON. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
