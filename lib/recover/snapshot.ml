module J = Repro_obs.Json

type kind = Flat | Boxed | Growable | Rank | Packed

type t = {
  kind : kind;
  n : int;
  capacity : int;
  parents : int array;
  prios : int array;
}

let kind_to_string = function
  | Flat -> "flat"
  | Boxed -> "boxed"
  | Growable -> "growable"
  | Rank -> "rank"
  | Packed -> "packed"

let kind_of_string = function
  | "flat" -> Some Flat
  | "boxed" -> Some Boxed
  | "growable" -> Some Growable
  | "rank" -> Some Rank
  | "packed" -> Some Packed
  | _ -> None

let of_native d =
  let n = Dsu.Native.n d in
  {
    kind = Flat;
    n;
    capacity = n;
    parents = Dsu.Native.parents_snapshot d;
    prios = Dsu.Native.ids_snapshot d;
  }

let of_boxed d =
  let n = Dsu.Boxed.n d in
  {
    kind = Boxed;
    n;
    capacity = n;
    parents = Dsu.Boxed.parents_snapshot d;
    prios = Dsu.Boxed.ids_snapshot d;
  }

let of_growable d =
  {
    kind = Growable;
    n = Dsu.Growable.cardinal d;
    capacity = Dsu.Growable.capacity d;
    parents = Dsu.Growable.parents_snapshot d;
    prios = Dsu.Growable.priorities_snapshot d;
  }

let of_rank d =
  let n = Dsu.Rank.Native.n d in
  {
    kind = Rank;
    n;
    capacity = n;
    parents = Dsu.Rank.Native.parents_snapshot d;
    prios = Dsu.Rank.Native.ranks_snapshot d;
  }

let of_packed d =
  let n = Dsu.Packed.Native.n d in
  {
    kind = Packed;
    n;
    capacity = n;
    parents = Dsu.Packed.Native.parents_snapshot d;
    prios = Dsu.Packed.Native.ranks_snapshot d;
  }

let check t = Repro_fault.Forest_check.check ~prio:(fun i -> t.prios.(i)) t.parents
let ok t = Repro_fault.Forest_check.ok (check t)

(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.  Values stay in
   the low 32 bits of an OCaml int. *)
let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let kind_byte = function
  | Flat -> 0
  | Boxed -> 1
  | Growable -> 2
  | Rank -> 3
  | Packed -> 4

let kind_of_byte = function
  | 0 -> Some Flat
  | 1 -> Some Boxed
  | 2 -> Some Growable
  | 3 -> Some Rank
  | 4 -> Some Packed
  | _ -> None

(* The canonical body both codecs checksum: kind byte, then n, capacity and
   the two arrays as 8-byte little-endian words. *)
let body t =
  let buf = Buffer.create (17 + (16 * t.n)) in
  Buffer.add_char buf (Char.chr (kind_byte t.kind));
  let scratch = Bytes.create 8 in
  let add_word v =
    Bytes.set_int64_le scratch 0 (Int64.of_int v);
    Buffer.add_bytes buf scratch
  in
  add_word t.n;
  add_word t.capacity;
  Array.iter add_word t.parents;
  Array.iter add_word t.prios;
  Buffer.contents buf

let checksum t = crc32 (body t)

let magic = "DSUSNAP1"

let to_binary_string t =
  let body = body t in
  let buf = Buffer.create (String.length magic + String.length body + 4) in
  Buffer.add_string buf magic;
  Buffer.add_string buf body;
  let trailer = Bytes.create 4 in
  Bytes.set_int32_le trailer 0 (Int32.of_int (crc32 body));
  Buffer.add_bytes buf trailer;
  Buffer.contents buf

let ( let* ) = Result.bind

let int_of_word v =
  (* OCaml ints are 63-bit; a word outside that range cannot have been
     written by [body], so the file is from a foreign producer or corrupt. *)
  if Int64.of_int (Int64.to_int v) = v then Ok (Int64.to_int v)
  else Error "snapshot word overflows the OCaml int range"

let parse_body s =
  let len = String.length s in
  let* () = if len >= 17 then Ok () else Error "snapshot body truncated" in
  let* kind =
    match kind_of_byte (Char.code s.[0]) with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown snapshot kind byte %d" (Char.code s.[0]))
  in
  let* n = int_of_word (String.get_int64_le s 1) in
  let* capacity = int_of_word (String.get_int64_le s 9) in
  let* () = if n >= 0 then Ok () else Error "negative element count" in
  let* () = if capacity >= n then Ok () else Error "capacity below element count" in
  let* () =
    if len = 17 + (16 * n) then Ok ()
    else Error (Printf.sprintf "snapshot body length %d, expected %d" len (17 + (16 * n)))
  in
  let* parents =
    let arr = Array.make n 0 in
    let rec fill i =
      if i = n then Ok arr
      else
        let* v = int_of_word (String.get_int64_le s (17 + (8 * i))) in
        arr.(i) <- v;
        fill (i + 1)
    in
    fill 0
  in
  let* prios =
    let base = 17 + (8 * n) in
    let arr = Array.make n 0 in
    let rec fill i =
      if i = n then Ok arr
      else
        let* v = int_of_word (String.get_int64_le s (base + (8 * i))) in
        arr.(i) <- v;
        fill (i + 1)
    in
    fill 0
  in
  Ok { kind; n; capacity; parents; prios }

let of_binary_string s =
  let len = String.length s in
  let* () =
    if len >= String.length magic + 17 + 4 then Ok () else Error "snapshot file truncated"
  in
  let* () =
    if String.sub s 0 (String.length magic) = magic then Ok ()
    else Error "bad magic: not a DSU snapshot"
  in
  let body = String.sub s (String.length magic) (len - String.length magic - 4) in
  let stored = Int32.to_int (String.get_int32_le s (len - 4)) land 0xffffffff in
  let computed = crc32 body in
  let* () =
    if stored = computed then Ok ()
    else Error (Printf.sprintf "checksum mismatch: stored %08x, computed %08x" stored computed)
  in
  parse_body body

let schema = "dsu-snapshot/v1"

let to_json t =
  let ints arr = J.List (Array.to_list arr |> List.map (fun v -> J.Int v)) in
  J.Obj
    [
      ("schema", J.String schema);
      ("kind", J.String (kind_to_string t.kind));
      ("n", J.Int t.n);
      ("capacity", J.Int t.capacity);
      ("parents", ints t.parents);
      ("prios", ints t.prios);
      ("checksum", J.Int (checksum t));
    ]

let of_json json =
  let field name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let int_field name =
    let* v = field name (J.member name json) in
    match v with J.Int i -> Ok i | _ -> Error (Printf.sprintf "field %S is not an integer" name)
  in
  let int_array name =
    let* v = field name (J.member name json) in
    match v with
    | J.List items ->
      let rec conv acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | J.Int i :: rest -> conv (i :: acc) rest
        | _ -> Error (Printf.sprintf "field %S has a non-integer element" name)
      in
      conv [] items
    | _ -> Error (Printf.sprintf "field %S is not an array" name)
  in
  let* s = field "schema" (J.member "schema" json) in
  let* () =
    match s with
    | J.String v when v = schema -> Ok ()
    | J.String v -> Error (Printf.sprintf "unsupported schema %S (want %S)" v schema)
    | _ -> Error "field \"schema\" is not a string"
  in
  let* k = field "kind" (J.member "kind" json) in
  let* kind =
    match k with
    | J.String v -> (
      match kind_of_string v with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown kind %S" v))
    | _ -> Error "field \"kind\" is not a string"
  in
  let* n = int_field "n" in
  let* capacity = int_field "capacity" in
  let* parents = int_array "parents" in
  let* prios = int_array "prios" in
  let* () = if n >= 0 then Ok () else Error "negative element count" in
  let* () = if capacity >= n then Ok () else Error "capacity below element count" in
  let* () =
    if Array.length parents = n && Array.length prios = n then Ok ()
    else Error "array lengths disagree with n"
  in
  let t = { kind; n; capacity; parents; prios } in
  let* stored = int_field "checksum" in
  let computed = checksum t in
  if stored = computed then Ok t
  else Error (Printf.sprintf "checksum mismatch: stored %08x, computed %08x" stored computed)

let to_json_string t = J.to_string (to_json t)

let of_json_string s =
  match J.parse s with Error e -> Error ("bad JSON: " ^ e) | Ok json -> of_json json

type format = Binary | Json

let write_file ?(format = Binary) path t =
  let data = match format with Binary -> to_binary_string t | Json -> to_json_string t in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error "snapshot file truncated"
  | data ->
    if String.length data >= String.length magic && String.sub data 0 (String.length magic) = magic
    then of_binary_string data
    else of_json_string data

let equal a b =
  a.kind = b.kind && a.n = b.n && a.capacity = b.capacity && a.parents = b.parents
  && a.prios = b.prios

let pp ppf t =
  Format.fprintf ppf "snapshot{%s, n=%d, capacity=%d, crc=%08x}" (kind_to_string t.kind)
    t.n t.capacity (checksum t)
