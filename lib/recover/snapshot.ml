module J = Repro_obs.Json

type kind = Flat | Boxed | Growable | Rank | Packed

type t = {
  kind : kind;
  n : int;
  capacity : int;
  epoch : int;
  parents : int array;
  prios : int array;
}

let with_epoch t epoch =
  if epoch < 0 then invalid_arg "Snapshot.with_epoch: negative epoch";
  { t with epoch }

let kind_to_string = function
  | Flat -> "flat"
  | Boxed -> "boxed"
  | Growable -> "growable"
  | Rank -> "rank"
  | Packed -> "packed"

let kind_of_string = function
  | "flat" -> Some Flat
  | "boxed" -> Some Boxed
  | "growable" -> Some Growable
  | "rank" -> Some Rank
  | "packed" -> Some Packed
  | _ -> None

let of_native d =
  let n = Dsu.Native.n d in
  {
    kind = Flat;
    n;
    capacity = n;
    epoch = 0;
    parents = Dsu.Native.parents_snapshot d;
    prios = Dsu.Native.ids_snapshot d;
  }

let of_boxed d =
  let n = Dsu.Boxed.n d in
  {
    kind = Boxed;
    n;
    capacity = n;
    epoch = 0;
    parents = Dsu.Boxed.parents_snapshot d;
    prios = Dsu.Boxed.ids_snapshot d;
  }

let of_growable d =
  {
    kind = Growable;
    n = Dsu.Growable.cardinal d;
    capacity = Dsu.Growable.capacity d;
    epoch = 0;
    parents = Dsu.Growable.parents_snapshot d;
    prios = Dsu.Growable.priorities_snapshot d;
  }

let of_rank d =
  let n = Dsu.Rank.Native.n d in
  {
    kind = Rank;
    n;
    capacity = n;
    epoch = 0;
    parents = Dsu.Rank.Native.parents_snapshot d;
    prios = Dsu.Rank.Native.ranks_snapshot d;
  }

let of_packed d =
  let n = Dsu.Packed.Native.n d in
  {
    kind = Packed;
    n;
    capacity = n;
    epoch = 0;
    parents = Dsu.Packed.Native.parents_snapshot d;
    prios = Dsu.Packed.Native.ranks_snapshot d;
  }

let check t = Repro_fault.Forest_check.check ~prio:(fun i -> t.prios.(i)) t.parents
let ok t = Repro_fault.Forest_check.ok (check t)

let crc32 = Repro_util.Crc32.string

let kind_byte = function
  | Flat -> 0
  | Boxed -> 1
  | Growable -> 2
  | Rank -> 3
  | Packed -> 4

let kind_of_byte = function
  | 0 -> Some Flat
  | 1 -> Some Boxed
  | 2 -> Some Growable
  | 3 -> Some Rank
  | 4 -> Some Packed
  | _ -> None

(* The canonical v2 body both codecs checksum: kind byte, then epoch, n,
   capacity and the two arrays as 8-byte little-endian words. *)
let body t =
  let buf = Buffer.create (25 + (16 * t.n)) in
  Buffer.add_char buf (Char.chr (kind_byte t.kind));
  let scratch = Bytes.create 8 in
  let add_word v =
    Bytes.set_int64_le scratch 0 (Int64.of_int v);
    Buffer.add_bytes buf scratch
  in
  add_word t.epoch;
  add_word t.n;
  add_word t.capacity;
  Array.iter add_word t.parents;
  Array.iter add_word t.prios;
  Buffer.contents buf

(* The v1 body — no epoch — kept so checksums in v1 files (binary and
   JSON) still validate on read. *)
let body_v1 t =
  let buf = Buffer.create (17 + (16 * t.n)) in
  Buffer.add_char buf (Char.chr (kind_byte t.kind));
  let scratch = Bytes.create 8 in
  let add_word v =
    Bytes.set_int64_le scratch 0 (Int64.of_int v);
    Buffer.add_bytes buf scratch
  in
  add_word t.n;
  add_word t.capacity;
  Array.iter add_word t.parents;
  Array.iter add_word t.prios;
  Buffer.contents buf

let checksum t = crc32 (body t)

let magic = "DSUSNAP2"
let magic_v1 = "DSUSNAP1"

let to_binary_string t =
  let body = body t in
  let buf = Buffer.create (String.length magic + String.length body + 4) in
  Buffer.add_string buf magic;
  Buffer.add_string buf body;
  let trailer = Bytes.create 4 in
  Bytes.set_int32_le trailer 0 (Int32.of_int (crc32 body));
  Buffer.add_bytes buf trailer;
  Buffer.contents buf

let ( let* ) = Result.bind

let int_of_word v =
  (* OCaml ints are 63-bit; a word outside that range cannot have been
     written by [body], so the file is from a foreign producer or corrupt. *)
  if Int64.of_int (Int64.to_int v) = v then Ok (Int64.to_int v)
  else Error "snapshot word overflows the OCaml int range"

(* [parse_body ~header s] parses a body whose fixed prefix is the kind
   byte plus [header] 8-byte words ending with n and capacity, followed by
   the two arrays.  v2 bodies carry (epoch, n, capacity); v1 bodies carry
   (n, capacity) and an implicit epoch 0. *)
let parse_body ~v2 s =
  let header = if v2 then 25 else 17 in
  let len = String.length s in
  let* () = if len >= header then Ok () else Error "snapshot body truncated" in
  let* kind =
    match kind_of_byte (Char.code s.[0]) with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown snapshot kind byte %d" (Char.code s.[0]))
  in
  let* epoch = if v2 then int_of_word (String.get_int64_le s 1) else Ok 0 in
  let base = if v2 then 9 else 1 in
  let* n = int_of_word (String.get_int64_le s base) in
  let* capacity = int_of_word (String.get_int64_le s (base + 8)) in
  let* () = if epoch >= 0 then Ok () else Error "negative epoch" in
  let* () = if n >= 0 then Ok () else Error "negative element count" in
  let* () = if capacity >= n then Ok () else Error "capacity below element count" in
  let* () =
    if len = header + (16 * n) then Ok ()
    else
      Error (Printf.sprintf "snapshot body length %d, expected %d" len (header + (16 * n)))
  in
  let read_array base =
    let arr = Array.make n 0 in
    let rec fill i =
      if i = n then Ok arr
      else
        let* v = int_of_word (String.get_int64_le s (base + (8 * i))) in
        arr.(i) <- v;
        fill (i + 1)
    in
    fill 0
  in
  let* parents = read_array header in
  let* prios = read_array (header + (8 * n)) in
  Ok { kind; n; capacity; epoch; parents; prios }

let of_binary_string s =
  let len = String.length s in
  let* () =
    if len >= String.length magic + 17 + 4 then Ok () else Error "snapshot file truncated"
  in
  let* v2 =
    match String.sub s 0 (String.length magic) with
    | m when m = magic -> Ok true
    | m when m = magic_v1 -> Ok false
    | _ -> Error "bad magic: not a DSU snapshot"
  in
  let body = String.sub s (String.length magic) (len - String.length magic - 4) in
  let stored = Int32.to_int (String.get_int32_le s (len - 4)) land 0xffffffff in
  let computed = crc32 body in
  let* () =
    if stored = computed then Ok ()
    else Error (Printf.sprintf "checksum mismatch: stored %08x, computed %08x" stored computed)
  in
  parse_body ~v2 body

let schema = "dsu-snapshot/v2"
let schema_v1 = "dsu-snapshot/v1"

let to_json t =
  let ints arr = J.List (Array.to_list arr |> List.map (fun v -> J.Int v)) in
  J.Obj
    [
      ("schema", J.String schema);
      ("kind", J.String (kind_to_string t.kind));
      ("n", J.Int t.n);
      ("capacity", J.Int t.capacity);
      ("epoch", J.Int t.epoch);
      ("parents", ints t.parents);
      ("prios", ints t.prios);
      ("checksum", J.Int (checksum t));
    ]

let of_json json =
  let field name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let int_field name =
    let* v = field name (J.member name json) in
    match v with J.Int i -> Ok i | _ -> Error (Printf.sprintf "field %S is not an integer" name)
  in
  let int_array name =
    let* v = field name (J.member name json) in
    match v with
    | J.List items ->
      let rec conv acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | J.Int i :: rest -> conv (i :: acc) rest
        | _ -> Error (Printf.sprintf "field %S has a non-integer element" name)
      in
      conv [] items
    | _ -> Error (Printf.sprintf "field %S is not an array" name)
  in
  let* s = field "schema" (J.member "schema" json) in
  let* v2 =
    match s with
    | J.String v when v = schema -> Ok true
    | J.String v when v = schema_v1 -> Ok false
    | J.String v -> Error (Printf.sprintf "unsupported schema %S (want %S)" v schema)
    | _ -> Error "field \"schema\" is not a string"
  in
  let* k = field "kind" (J.member "kind" json) in
  let* kind =
    match k with
    | J.String v -> (
      match kind_of_string v with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown kind %S" v))
    | _ -> Error "field \"kind\" is not a string"
  in
  let* n = int_field "n" in
  let* capacity = int_field "capacity" in
  let* epoch = if v2 then int_field "epoch" else Ok 0 in
  let* parents = int_array "parents" in
  let* prios = int_array "prios" in
  let* () = if epoch >= 0 then Ok () else Error "negative epoch" in
  let* () = if n >= 0 then Ok () else Error "negative element count" in
  let* () = if capacity >= n then Ok () else Error "capacity below element count" in
  let* () =
    if Array.length parents = n && Array.length prios = n then Ok ()
    else Error "array lengths disagree with n"
  in
  let t = { kind; n; capacity; epoch; parents; prios } in
  let* stored = int_field "checksum" in
  (* v1 files checksummed the v1 body (no epoch). *)
  let computed = if v2 then checksum t else crc32 (body_v1 t) in
  if stored = computed then Ok t
  else Error (Printf.sprintf "checksum mismatch: stored %08x, computed %08x" stored computed)

let to_json_string t = J.to_string (to_json t)

let of_json_string s =
  match J.parse s with Error e -> Error ("bad JSON: " ^ e) | Ok json -> of_json json

type format = Binary | Json

(* Crash-atomic write: stage the bytes in a temporary file in the same
   directory (rename is only atomic within a filesystem), fsync the data,
   then rename over the destination and fsync the directory so the rename
   itself is durable.  A crash at any point leaves either the old file or
   the new one — never a torn snapshot. *)
let write_file ?(format = Binary) path t =
  let data = match format with Binary -> to_binary_string t | Json -> to_json_string t in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (match
     output_string oc data;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  (match Unix.rename tmp path with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error "snapshot file truncated"
  | data ->
    let has_magic m =
      String.length data >= String.length m && String.sub data 0 (String.length m) = m
    in
    if has_magic magic || has_magic magic_v1 then of_binary_string data
    else of_json_string data

let equal a b =
  a.kind = b.kind && a.n = b.n && a.capacity = b.capacity && a.epoch = b.epoch
  && a.parents = b.parents && a.prios = b.prios

let pp ppf t =
  Format.fprintf ppf "snapshot{%s, n=%d, capacity=%d, epoch=%d, crc=%08x}"
    (kind_to_string t.kind) t.n t.capacity t.epoch (checksum t)
