type restored =
  | Flat of Dsu.Native.t
  | Boxed of Dsu.Boxed.t
  | Growable of Dsu.Growable.t
  | Rank of Dsu.Rank.Native.t
  | Packed of Dsu.Packed.Native.t

let restore ?policy ?early ?(collect_stats = false) ?(padded = false) ?on_link
    (s : Snapshot.t) =
  match s.kind with
  | Snapshot.Flat ->
    Flat
      (Dsu.Native.of_snapshot ?policy ?early ~collect_stats ~padded ?on_link
         ~parents:s.parents ~ids:s.prios ())
  | Snapshot.Boxed ->
    Boxed
      (Dsu.Boxed.of_snapshot ?policy ?early ~collect_stats ?on_link ~parents:s.parents
         ~ids:s.prios ())
  | Snapshot.Growable ->
    Growable
      (Dsu.Growable.of_snapshot ?policy ?early ~collect_stats ?on_link
         ~capacity:s.capacity ~parents:s.parents ~prios:s.prios ())
  | Snapshot.Rank ->
    Rank
      (Dsu.Rank.Native.of_snapshot ~collect_stats ?on_link ~parents:s.parents
         ~ranks:s.prios ())
  | Snapshot.Packed ->
    Packed
      (Dsu.Packed.Native.of_snapshot ?policy ~collect_stats ~padded ?on_link
         ~parents:s.parents ~ranks:s.prios ())

let restore_result ?policy ?early ?collect_stats ?padded ?on_link s =
  match restore ?policy ?early ?collect_stats ?padded ?on_link s with
  | r -> Ok r
  | exception Invalid_argument msg -> Error msg

let snapshot = function
  | Flat d -> Snapshot.of_native d
  | Boxed d -> Snapshot.of_boxed d
  | Growable d -> Snapshot.of_growable d
  | Rank d -> Snapshot.of_rank d
  | Packed d -> Snapshot.of_packed d

let snapshot_fuzzy = function
  | Flat d -> Dsu.Native.snapshot_fuzzy d
  | Boxed d -> Dsu.Boxed.snapshot_fuzzy d
  | Growable d -> Dsu.Growable.snapshot_fuzzy d
  | Rank d -> Dsu.Rank.Native.snapshot_fuzzy d
  | Packed d -> Dsu.Packed.Native.snapshot_fuzzy d

let n = function
  | Flat d -> Dsu.Native.n d
  | Boxed d -> Dsu.Boxed.n d
  | Growable d -> Dsu.Growable.cardinal d
  | Rank d -> Dsu.Rank.Native.n d
  | Packed d -> Dsu.Packed.Native.n d

let unite t x y =
  match t with
  | Flat d -> Dsu.Native.unite d x y
  | Boxed d -> Dsu.Boxed.unite d x y
  | Growable d -> Dsu.Growable.unite d x y
  | Rank d -> Dsu.Rank.Native.unite d x y
  | Packed d -> Dsu.Packed.Native.unite d x y

let same_set t x y =
  match t with
  | Flat d -> Dsu.Native.same_set d x y
  | Boxed d -> Dsu.Boxed.same_set d x y
  | Growable d -> Dsu.Growable.same_set d x y
  | Rank d -> Dsu.Rank.Native.same_set d x y
  | Packed d -> Dsu.Packed.Native.same_set d x y

let find t x =
  match t with
  | Flat d -> Dsu.Native.find d x
  | Boxed d -> Dsu.Boxed.find d x
  | Growable d -> Dsu.Growable.find d x
  | Rank d -> Dsu.Rank.Native.find d x
  | Packed d -> Dsu.Packed.Native.find d x

let count_sets = function
  | Flat d -> Dsu.Native.count_sets d
  | Boxed d -> Dsu.Boxed.count_sets d
  | Growable d -> Dsu.Growable.count_sets d
  | Rank d -> Dsu.Rank.Native.count_sets d
  | Packed d -> Dsu.Packed.Native.count_sets d

let kind = function
  | Flat _ -> Snapshot.Flat
  | Boxed _ -> Snapshot.Boxed
  | Growable _ -> Snapshot.Growable
  | Rank _ -> Snapshot.Rank
  | Packed _ -> Snapshot.Packed
