(** Repair-on-restart: turn {!Repro_fault.Forest_check} diagnostics into
    fixes.

    Theorem 3.4 (wait-freedom) means a crash can leave at most one installed
    link CAS per killed process and never a malformed edge, so a snapshot of
    a crashed run is already clean — {!repair} returns it unchanged with no
    fixes.  What repair exists for is snapshots corrupted {e in storage}
    (bit-rot past the checksum, a foreign producer, a hand-edited JSON
    file): every fix makes some node a root, which only ever {e splits}
    sets, so the repaired partition provably refines the snapshot's
    ({!refines}) — no union is invented, some may be lost.

    The fix per violation class:

    - out-of-range parent: re-point the node to itself;
    - priority-order violation: re-point the node to itself (the edge cannot
      have been installed by the algorithm, Lemma 3.1);
    - parent cycle: break it at its minimum-priority node (the node the
      linking order says must be deepest, so the other edges may stand).

    Rounds of check → fix → check run until the report is clean; each round
    only removes edges, so at most [n] rounds terminate. *)

type reason = Out_of_range | Order | Cycle

type fix = { node : int; old_parent : int; reason : reason }
(** The applied fix: [parents.(node)] was [old_parent], is now [node]. *)

val repair : Snapshot.t -> Snapshot.t * fix list
(** Fixes in application order; [[]] iff the snapshot was already clean. *)

val refines : fine:Snapshot.t -> coarse:Snapshot.t -> bool
(** [refines ~fine ~coarse]: every set of [fine]'s partition lies inside one
    set of [coarse]'s.  Partitions are the connected components of the
    parent graph (in-range edges, direction ignored), which is well-defined
    even for cyclic or order-violating snapshots.  After [repair s] returns
    [(s', _)], [refines ~fine:s' ~coarse:s] always holds — the sandwich a
    restart must prove before resuming. *)

val pp_fix : Format.formatter -> fix -> unit
val fixes_to_json : fix list -> Repro_obs.Json.t
