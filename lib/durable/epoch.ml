type t = int Atomic.t

let create () = Atomic.make 1
let current = Atomic.get
let bump t = 1 + Atomic.fetch_and_add t 1
