module Site = Repro_fault.Site
module Fi = Repro_fault.Inject
module Crc32 = Repro_util.Crc32

let magic = "DSUWAL01"
let record_bytes = 37
let payload_bytes = 33

type record = { seq : int; epoch : int; x : int; y : int }

(* ------------------------------------------------------------- codec *)

let encode_record r =
  let b = Bytes.create record_bytes in
  Bytes.set b 0 '\001';
  Bytes.set_int64_le b 1 (Int64.of_int r.epoch);
  Bytes.set_int64_le b 9 (Int64.of_int r.seq);
  Bytes.set_int64_le b 17 (Int64.of_int r.x);
  Bytes.set_int64_le b 25 (Int64.of_int r.y);
  let crc = Crc32.sub (Bytes.unsafe_to_string b) ~pos:0 ~len:payload_bytes in
  Bytes.set_int32_le b payload_bytes (Int32.of_int crc);
  b

let word_fits v = Int64.of_int (Int64.to_int v) = v

(* [decode_record s pos] validates the CRC before trusting any field, so a
   torn or bit-flipped record is detected no matter which byte it hit. *)
let decode_record s pos =
  if pos + record_bytes > String.length s then Error `Short
  else begin
    let stored =
      Int32.to_int (String.get_int32_le s (pos + payload_bytes)) land 0xffffffff
    in
    let computed = Crc32.sub s ~pos ~len:payload_bytes in
    if stored <> computed then Error `Crc
    else if s.[pos] <> '\001' then Error `Kind
    else begin
      let w off = String.get_int64_le s (pos + off) in
      if word_fits (w 1) && word_fits (w 9) && word_fits (w 17) && word_fits (w 25)
      then
        Ok
          {
            epoch = Int64.to_int (w 1);
            seq = Int64.to_int (w 9);
            x = Int64.to_int (w 17);
            y = Int64.to_int (w 25);
          }
      else Error `Kind
    end
  end

(* ------------------------------------------------------------ reader *)

type tail = {
  records : record array;
  truncated_at : int option;
  total_bytes : int;
}

let empty_tail = { records = [||]; truncated_at = None; total_bytes = 0 }

let of_string s =
  let len = String.length s in
  if len < String.length magic then Error "WAL file shorter than the magic"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "bad magic: not a DSU WAL"
  else begin
    let rec loop pos acc =
      if pos = len then { records = Array.of_list (List.rev acc); truncated_at = None; total_bytes = len }
      else
        match decode_record s pos with
        | Ok r -> loop (pos + record_bytes) (r :: acc)
        | Error (`Short | `Crc | `Kind) ->
          (* Torn tail: everything from the first bad record on is
             untrustworthy — a group commit writes records in order, so a
             valid-looking record after a torn one could be half of two
             different commits. *)
          { records = Array.of_list (List.rev acc); truncated_at = Some pos; total_bytes = len }
    in
    Ok (loop (String.length magic) [])
  end

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error "WAL file truncated while reading"
  | data -> of_string data

let ( let* ) = Result.bind

let truncate_file path =
  let* tail = read_file path in
  match tail.truncated_at with
  | None -> Ok tail
  | Some off ->
    (match Unix.truncate path off with
    | () -> Ok { tail with truncated_at = None; total_bytes = off }
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* ------------------------------------------------------------ writer *)

type shard = { mu : Mutex.t; mutable buf : record list }

type writer = {
  path : string;
  oc : out_channel;
  fd : Unix.file_descr;
  epoch : Epoch.t;
  seq : int Atomic.t;
  shards : shard array;
  flush_records : int;
  flush_interval : float;
  stop : bool Atomic.t;
  force : bool Atomic.t;
  appended : int Atomic.t;
  committed : int Atomic.t;
  commits : int Atomic.t;
  crashed : (Site.t * int) option Atomic.t;
  failed : exn option Atomic.t;
  close_mu : Mutex.t;
  mutable closed : bool;
  mutable committer : unit Domain.t option;
}

let[@inline] hit_site site = if Atomic.get Fi.armed then Fi.hit site

(* One group commit: encode the whole batch, write it, one fsync.  When
   fault injection is armed the batch is written in two parts with a
   flush and a {!Site.Wal_commit_mid} hit between them — a crash there
   deterministically leaves a torn final record on disk, which is the
   exact state {!of_string}'s truncation logic must recover from. *)
let commit w batch n_batch =
  hit_site Site.Wal_commit_pre;
  let buf = Buffer.create (n_batch * record_bytes) in
  List.iter (fun r -> Buffer.add_bytes buf (encode_record r)) batch;
  let s = Buffer.contents buf in
  let len = String.length s in
  if Atomic.get Fi.armed then begin
    let cut = max 0 (len - 19) in
    output_substring w.oc s 0 cut;
    flush w.oc;
    Fi.hit Site.Wal_commit_mid;
    output_substring w.oc s cut (len - cut)
  end
  else output_string w.oc s;
  flush w.oc;
  Unix.fsync w.fd;
  ignore (Atomic.fetch_and_add w.committed n_batch);
  ignore (Atomic.fetch_and_add w.commits 1);
  hit_site Site.Wal_commit_post

let run_committer w =
  let pending = ref [] and n_pending = ref 0 in
  let last = ref (Unix.gettimeofday ()) in
  let drain () =
    Array.iter
      (fun sh ->
        Mutex.lock sh.mu;
        let b = sh.buf in
        sh.buf <- [];
        Mutex.unlock sh.mu;
        List.iter
          (fun r ->
            pending := r :: !pending;
            incr n_pending)
          b)
      w.shards
  in
  (* A drained backlog larger than [flush_records] is committed in chunks
     of that size — each chunk one write + one fsync — so a commit's cost
     and blast radius (the records a torn tail can lose) stay bounded no
     matter how far the committer fell behind. *)
  let commit_pending now =
    let rec go lst =
      match lst with
      | [] -> ()
      | _ ->
        let rec take k acc rest =
          if k = 0 then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | r :: tl -> take (k - 1) (r :: acc) tl
        in
        let batch, rest = take w.flush_records [] lst in
        commit w batch (List.length batch);
        go rest
    in
    go (List.rev !pending);
    pending := [];
    n_pending := 0;
    Atomic.set w.force false;
    last := now
  in
  let rec loop () =
    drain ();
    let now = Unix.gettimeofday () in
    let committing =
      !n_pending > 0
      && (!n_pending >= w.flush_records
         || now -. !last >= w.flush_interval
         || Atomic.get w.force || Atomic.get w.stop)
    in
    if committing then commit_pending now
    else if !n_pending = 0 && Atomic.get w.force then Atomic.set w.force false;
    if Atomic.get w.stop then begin
      (* Final drain: appends racing the stop flag may still be in the
         shards; anything arriving after this is lost (documented). *)
      drain ();
      if !n_pending > 0 then commit_pending (Unix.gettimeofday ())
    end
    else begin
      (* Sleep between rounds rather than spin: a spinning committer
         (and its per-shard mutex sweep) steals mutator CPU — on a
         fully loaded box it showed up as tens of percent of unite
         throughput.  Only a just-finished commit or a waiting
         [flush]er warrants an immediate next round. *)
      if committing || Atomic.get w.force then Domain.cpu_relax ()
      else Unix.sleepf (min 0.002 (w.flush_interval /. 2.));
      loop ()
    end
  in
  loop ()

let create_writer ?(shards = 8) ?(flush_records = 64) ?(flush_interval = 0.002)
    ?epoch ?on_committer_start path =
  if shards < 1 then invalid_arg "Wal.create_writer: shards must be >= 1";
  if flush_records < 1 then invalid_arg "Wal.create_writer: flush_records must be >= 1";
  if flush_interval <= 0. then
    invalid_arg "Wal.create_writer: flush_interval must be positive";
  let oc = open_out_bin path in
  output_string oc magic;
  flush oc;
  let epoch = match epoch with Some e -> e | None -> Epoch.create () in
  let w =
    {
      path;
      oc;
      fd = Unix.descr_of_out_channel oc;
      epoch;
      seq = Atomic.make 0;
      shards = Array.init shards (fun _ -> { mu = Mutex.create (); buf = [] });
      flush_records;
      flush_interval;
      stop = Atomic.make false;
      force = Atomic.make false;
      appended = Atomic.make 0;
      committed = Atomic.make 0;
      commits = Atomic.make 0;
      crashed = Atomic.make None;
      failed = Atomic.make None;
      close_mu = Mutex.create ();
      closed = false;
      committer = None;
    }
  in
  (* The death latches wrap the whole domain body, [on_committer_start]
     included: a committer that dies for ANY reason — injected crash, real
     I/O failure, or a raising start hook — must leave a latch behind,
     because [flush]/[close] wait loops key off them and an unlatched
     death would leave every later [flush] spinning forever. *)
  w.committer <-
    Some
      (Domain.spawn (fun () ->
           try
             (match on_committer_start with None -> () | Some f -> f ());
             run_committer w
           with
           | Fi.Crashed (site, slot) -> Atomic.set w.crashed (Some (site, slot))
           | e -> Atomic.set w.failed (Some e)));
  w

let epoch w = w.epoch

let append w ~child ~parent =
  (* The record's epoch is read after the link CAS took effect (on_link
     fires post-CAS), which is what makes the epoch-cut argument in
     {!Epoch} sound. *)
  let seq = Atomic.fetch_and_add w.seq 1 in
  let e = Epoch.current w.epoch in
  let r = { seq; epoch = e; x = child; y = parent } in
  let sh = w.shards.((Domain.self () :> int) mod Array.length w.shards) in
  Mutex.lock sh.mu;
  sh.buf <- r :: sh.buf;
  Mutex.unlock sh.mu;
  ignore (Atomic.fetch_and_add w.appended 1)

let crashed w = Atomic.get w.crashed
let failed w = Atomic.get w.failed

(* A dead committer will never advance [committed] again, so every wait
   loop must give up as soon as either death latch is set. *)
let dead w = Atomic.get w.crashed <> None || Atomic.get w.failed <> None

let flush w =
  let target = Atomic.get w.appended in
  Atomic.set w.force true;
  let rec wait () =
    if dead w then ()
    else if Atomic.get w.committed >= target then ()
    else begin
      (* Sleep-poll: the committer needs the CPU more than this waiter. *)
      Unix.sleepf 0.00005;
      wait ()
    end
  in
  wait ()

type writer_stats = {
  ws_appended : int;
  ws_committed : int;
  ws_commits : int;
  ws_crashed : (Site.t * int) option;
}

let writer_stats w =
  {
    ws_appended = Atomic.get w.appended;
    ws_committed = Atomic.get w.committed;
    ws_commits = Atomic.get w.commits;
    ws_crashed = Atomic.get w.crashed;
  }

(* Idempotent and safe against a dead committer: the mutex serializes
   concurrent closers (the second waits, then sees [closed] and returns),
   [flush] cannot hang (it exits on the death latches), and the single
   [Domain.join] never re-raises — a committer that died took its
   exception into a latch, not into the joiner. *)
let close w =
  Mutex.lock w.close_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.close_mu)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        flush w;
        Atomic.set w.stop true;
        (match w.committer with
        | None -> ()
        | Some d -> ( try Domain.join d with _ -> ()));
        w.committer <- None;
        close_out_noerr w.oc
      end)

let path w = w.path
