module Snapshot = Repro_recover.Snapshot
module Repair = Repro_recover.Repair
module Restore = Repro_recover.Restore
module Clock = Repro_obs.Clock

type capture = {
  snapshot : Snapshot.t;
  raw : Snapshot.t;
  fixes : Repair.fix list;
  scan_ns : int;
  repair_ns : int;
}

let capture ?epoch ~kind ~capacity scan =
  let e = match epoch with Some e -> Epoch.bump e | None -> 0 in
  let t0 = Clock.now_ns () in
  let parents, prios = scan () in
  let scan_ns = Clock.now_ns () - t0 in
  let n = Array.length parents in
  let raw =
    { Snapshot.kind; n; capacity = max capacity n; epoch = e; parents; prios }
  in
  let t1 = Clock.now_ns () in
  let repaired, fixes = Repair.repair raw in
  let repair_ns = Clock.now_ns () - t1 in
  (* A repaired cut refines the final partition but may have dropped an
     edge whose record predates this epoch, so the epoch-cut guarantee is
     void: stamp 0 and recovery replays the whole log. *)
  let snapshot = if fixes = [] then repaired else Snapshot.with_epoch repaired 0 in
  { snapshot; raw; fixes; scan_ns; repair_ns }

let of_native ?epoch d =
  capture ?epoch ~kind:Snapshot.Flat ~capacity:(Dsu.Native.n d) (fun () ->
      Dsu.Native.snapshot_fuzzy d)

let of_boxed ?epoch d =
  capture ?epoch ~kind:Snapshot.Boxed ~capacity:(Dsu.Boxed.n d) (fun () ->
      Dsu.Boxed.snapshot_fuzzy d)

let of_growable ?epoch d =
  capture ?epoch ~kind:Snapshot.Growable ~capacity:(Dsu.Growable.capacity d)
    (fun () -> Dsu.Growable.snapshot_fuzzy d)

let of_rank ?epoch d =
  capture ?epoch ~kind:Snapshot.Rank ~capacity:(Dsu.Rank.Native.n d) (fun () ->
      Dsu.Rank.Native.snapshot_fuzzy d)

let of_packed ?epoch d =
  capture ?epoch ~kind:Snapshot.Packed ~capacity:(Dsu.Packed.Native.n d)
    (fun () -> Dsu.Packed.Native.snapshot_fuzzy d)

let of_restored ?epoch r =
  let capacity =
    match r with
    | Restore.Growable d -> Dsu.Growable.capacity d
    | _ -> Restore.n r
  in
  capture ?epoch ~kind:(Restore.kind r) ~capacity (fun () ->
      Restore.snapshot_fuzzy r)
