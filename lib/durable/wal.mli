(** Append-only operation log of effective link events, with group commit.

    Every successful link CAS (the moment a unite actually merges two
    trees) appends one fixed-size record via the layouts' [on_link] hook.
    Records are {e not} the unite calls — redundant unites settle without
    a link and log nothing — but replaying the links as unites rebuilds
    the same partition, which is all connectivity recovery needs.

    {2 Write path}

    The mutator hot path is one enqueue: stamp (seq, epoch), push onto a
    per-domain-sharded staging buffer (one mutex each, domains hash to
    shards so contention is spread).  A dedicated committer domain drains
    the shards and {e group-commits}: one [write] + one [fsync] per batch,
    a batch closing when it reaches [flush_records] records or
    [flush_interval] seconds pass with work pending.  Burst cost per
    record is therefore amortized to a buffer push; the window of loss on
    a crash (RPO) is the commit window, not per-op.

    {2 On-disk format}

    Magic ["DSUWAL01"], then 37-byte records: kind byte [0x01], epoch,
    seq, x, y as 8-byte little-endian words, CRC-32 (of the preceding 33
    bytes) little-endian.  Records appear in commit order, which
    interleaves domains — readers must not assume seq-sorted order.

    {2 Torn tails}

    A crash mid-commit leaves a prefix of the batch on disk; the reader
    stops at the first record whose CRC fails (or that is cut short) and
    reports the byte offset — everything before it is trustworthy,
    everything after it is discarded ({!tail.truncated_at}).

    {2 Fault sites}

    With {!Repro_fault.Inject} armed, each commit hits
    {!Repro_fault.Site.Wal_commit_pre}, then {e flushes a partial batch}
    and hits {!Repro_fault.Site.Wal_commit_mid} (a crash here
    deterministically tears the final record), then fsyncs and hits
    {!Repro_fault.Site.Wal_commit_post}.  A {!Repro_fault.Inject.Crashed}
    raised in the committer is caught and latched ({!crashed}); the
    writer stops committing, mutators keep enqueueing unharmed — the
    crashed-committer state is exactly what the chaos drill recovers
    from. *)

type record = { seq : int; epoch : int; x : int; y : int }

val record_bytes : int
val magic : string

(** {1 Writer} *)

type writer

val create_writer :
  ?shards:int ->
  ?flush_records:int ->
  ?flush_interval:float ->
  ?epoch:Epoch.t ->
  ?on_committer_start:(unit -> unit) ->
  string ->
  writer
(** Create (truncating) the log at the given path and spawn the committer
    domain.  [shards] (default 8) staging buffers; a batch commits at
    [flush_records] (default 64) records or after [flush_interval]
    (default 2ms) seconds with work pending.  [epoch] shares an existing
    counter (else a fresh one); [on_committer_start] runs first on the
    committer domain — the chaos drill uses it to enroll the committer
    for fault injection.  @raise Invalid_argument on nonsensical knobs;
    [Sys_error] if the file cannot be created. *)

val append : writer -> child:int -> parent:int -> unit
(** Stage one link record, epoch-stamped now (call it {e after} the link
    applied — it is shaped to be passed as the layouts' [on_link] hook
    directly).  Never blocks on I/O. *)

val flush : writer -> unit
(** Block until everything appended so far is fsynced (group commit
    forced), or the committer has died ({!crashed} or {!failed}) — a dead
    committer will never advance the commit watermark, so waiting on it
    would hang forever.  Callers that need the durability guarantee must
    check {!crashed}/{!failed} after [flush] returns. *)

val close : writer -> unit
(** {!flush}, stop and join the committer, close the file.  Idempotent
    and safe under every committer state: concurrent or repeated [close]
    calls are serialized and the non-first are no-ops, a committer that
    already died (injected crash or real I/O failure) is joined without
    hanging or re-raising, and the join happens exactly once. *)

val epoch : writer -> Epoch.t
val path : writer -> string

val crashed : writer -> (Repro_fault.Site.t * int) option
(** The latched [(site, slot)] if an injected crash killed the committer. *)

val failed : writer -> exn option
(** The latched exception if anything {e other} than an injected crash
    killed the committer (disk full, closed descriptor, …).  Either latch
    means no further record will ever commit. *)

type writer_stats = {
  ws_appended : int;  (** records staged *)
  ws_committed : int;  (** records fsynced *)
  ws_commits : int;  (** group commits (= fsyncs) *)
  ws_crashed : (Repro_fault.Site.t * int) option;
}

val writer_stats : writer -> writer_stats

(** {1 Reader} *)

type tail = {
  records : record array;  (** the valid prefix, in commit order *)
  truncated_at : int option;
      (** byte offset of the first torn/corrupt record, if any *)
  total_bytes : int;
}

val empty_tail : tail

val of_string : string -> (tail, string) result
(** [Error] only for a missing/foreign magic; torn or corrupt records are
    reported via [truncated_at], never as an error. *)

val read_file : string -> (tail, string) result

val truncate_file : string -> (tail, string) result
(** {!read_file}, then physically truncate the file at the torn point (a
    no-op when the log is clean).  Returns the tail after truncation. *)

(** {1 Codec} (exposed for tests and the [wal] inspection subcommand) *)

val encode_record : record -> bytes
val decode_record : string -> int -> (record, [ `Short | `Crc | `Kind ]) result
