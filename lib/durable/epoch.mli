(** The epoch counter coupling fuzzy snapshots to the WAL.

    One shared counter orders snapshot cuts against log records with plain
    sequentially-consistent atomics:

    - every WAL append stamps its record with {!current}, read {e after}
      the link CAS has taken effect;
    - a fuzzy snapshot calls {!bump} first and scans afterwards.

    If a record carries an epoch strictly below a snapshot's, its stamp
    read preceded the snapshot's bump in the SC total order, so the link
    CAS did too — and by Lemma 3.1 (parents only ever move to proper
    ancestors) the snapshot's scan can only have observed that link or a
    later, coarser state of it.  Hence recovery may skip all records below
    the snapshot's epoch and replay only the tail; records at or above it
    may or may not be in the cut, and replaying them is harmless (unite is
    idempotent for connectivity). *)

type t

val create : unit -> t
(** Starts at 1, so epoch 0 is free to mean "no cut guarantee — replay
    everything" ({!Snapshot.t.epoch}). *)

val current : t -> int

val bump : t -> int
(** Atomically increment and return the {e new} value — the epoch a fuzzy
    snapshot started at. *)
