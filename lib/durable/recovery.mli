(** Recovery: newest valid snapshot + WAL tail replay.

    The recovery contract (see {!Epoch} for the cut argument):

    + pick the newest snapshot that decodes and passes its checksum
      ({!newest_valid} — "newest" = highest epoch, so a fuzzy checkpoint
      beats an older quiescent one);
    + run {!Repro_recover.Repair.repair} on it — a clean snapshot is
      returned unchanged; any fix voids the epoch-cut guarantee and
      forces a full-log replay;
    + rebuild the live structure ({!Repro_recover.Restore});
    + replay the WAL's valid prefix from the snapshot's epoch on,
      dropping records below it (already in the cut) and records whose
      endpoints exceed the restored universe (Growable races past the
      latched cardinal).  The torn tail past the first bad CRC was never
      acknowledged as committed, so dropping it only loses the group
      commit in flight — the documented RPO.

    Replaying a record the cut already contains is harmless: unite is
    idempotent and commutative for connectivity, so over-replay can only
    re-merge what is already merged. *)

type stats = {
  snapshot_epoch : int;
  from_epoch : int;  (** 0 when repair had to fix the snapshot *)
  fixes : int;
  replayed : int;
  skipped : int;  (** records below [from_epoch] *)
  out_of_range : int;
  truncated_at : int option;  (** byte offset of the WAL's torn tail *)
}

val replay :
  Repro_recover.Restore.restored ->
  from_epoch:int ->
  Wal.record array ->
  int * int * int
(** [(replayed, skipped, out_of_range)]; applies each eligible record as
    a unite on the restored structure. *)

val recover :
  ?policy:Dsu.Find_policy.t ->
  ?early:bool ->
  ?collect_stats:bool ->
  ?padded:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  snapshot:Repro_recover.Snapshot.t ->
  tail:Wal.tail ->
  unit ->
  (Repro_recover.Restore.restored * stats, string) result
(** Repair, restore, replay.  [on_link] re-attaches a fresh WAL so the
    recovered structure resumes logging. *)

val newest_valid :
  string list -> (string * Repro_recover.Snapshot.t) option
(** The readable, checksum-passing candidate with the highest epoch
    (later in the list wins ties); [None] if none decodes. *)

val recover_files :
  ?policy:Dsu.Find_policy.t ->
  ?early:bool ->
  ?collect_stats:bool ->
  ?padded:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  snapshots:string list ->
  ?wal:string ->
  unit ->
  (Repro_recover.Restore.restored * stats, string) result
(** {!newest_valid} over the snapshot candidates, then {!recover} with
    the WAL file's valid prefix (a missing WAL file means an empty
    tail). *)

val stats_to_json : stats -> Repro_obs.Json.t
val pp_stats : Format.formatter -> stats -> unit
