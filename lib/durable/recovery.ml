module Snapshot = Repro_recover.Snapshot
module Repair = Repro_recover.Repair
module Restore = Repro_recover.Restore
module J = Repro_obs.Json

type stats = {
  snapshot_epoch : int;
  from_epoch : int;
  fixes : int;
  replayed : int;
  skipped : int;
  out_of_range : int;
  truncated_at : int option;
}

let ( let* ) = Result.bind

let replay r ~from_epoch (records : Wal.record array) =
  let n = Restore.n r in
  let replayed = ref 0 and skipped = ref 0 and oor = ref 0 in
  Array.iter
    (fun (rc : Wal.record) ->
      if rc.Wal.epoch < from_epoch then incr skipped
      else if rc.x < 0 || rc.x >= n || rc.y < 0 || rc.y >= n then
        (* A record for an element the snapshot predates (Growable: a
           make_set raced past the latched cardinal).  The element's
           links will be re-made by the resumed workload; dropping the
           record is the only sound choice for a fixed universe. *)
        incr oor
      else begin
        Restore.unite r rc.x rc.y;
        incr replayed
      end)
    records;
  (!replayed, !skipped, !oor)

let recover ?policy ?early ?collect_stats ?padded ?on_link ~snapshot ~tail () =
  (* Repair before restore: a snapshot corrupted in storage must not make
     restore raise, and any fix voids the epoch-cut guarantee, so the
     replay falls back to the whole log. *)
  let repaired, fixes = Repair.repair snapshot in
  let from_epoch = if fixes = [] then snapshot.Snapshot.epoch else 0 in
  let* r = Restore.restore_result ?policy ?early ?collect_stats ?padded ?on_link repaired in
  let replayed, skipped, out_of_range = replay r ~from_epoch tail.Wal.records in
  Ok
    ( r,
      {
        snapshot_epoch = snapshot.Snapshot.epoch;
        from_epoch;
        fixes = List.length fixes;
        replayed;
        skipped;
        out_of_range;
        truncated_at = tail.Wal.truncated_at;
      } )

let newest_valid paths =
  List.fold_left
    (fun best p ->
      match Snapshot.read_file p with
      | Error _ -> best
      | Ok s -> (
        match best with
        | Some (_, (b : Snapshot.t)) when b.epoch >= s.Snapshot.epoch -> best
        | _ -> Some (p, s)))
    None paths

let recover_files ?policy ?early ?collect_stats ?padded ?on_link ~snapshots
    ?wal () =
  let* snapshot =
    match newest_valid snapshots with
    | Some (_, s) -> Ok s
    | None -> Error "no valid snapshot among the candidates"
  in
  let* tail =
    match wal with
    | None -> Ok Wal.empty_tail
    | Some p -> if Sys.file_exists p then Wal.read_file p else Ok Wal.empty_tail
  in
  recover ?policy ?early ?collect_stats ?padded ?on_link ~snapshot ~tail ()

let stats_to_json s =
  J.Obj
    [
      ("snapshot_epoch", J.Int s.snapshot_epoch);
      ("from_epoch", J.Int s.from_epoch);
      ("fixes", J.Int s.fixes);
      ("replayed", J.Int s.replayed);
      ("skipped", J.Int s.skipped);
      ("out_of_range", J.Int s.out_of_range);
      ( "truncated_at",
        match s.truncated_at with None -> J.Null | Some o -> J.Int o );
    ]

let pp_stats ppf s =
  Format.fprintf ppf
    "recovery{epoch=%d, from=%d, fixes=%d, replayed=%d, skipped=%d, \
     out_of_range=%d%s}"
    s.snapshot_epoch s.from_epoch s.fixes s.replayed s.skipped s.out_of_range
    (match s.truncated_at with
    | None -> ""
    | Some o -> Printf.sprintf ", torn@%d" o)
