(** Fuzzy epoch snapshots: capture a consistent-enough cut of a live DSU
    {e without stopping the mutators}.

    The scan is one acquire read per parent cell while unites and finds
    keep running.  Lemma 3.1 (parents only ever move to proper ancestors
    under the same linking order) makes the scanned cut a valid forest for
    the random-priority layouts: priorities are immutable, so every
    scanned edge satisfies the order invariant at whatever moment it was
    read, and the cut's partition {e refines} the final one — no union is
    invented, racing unions may be absent.  For the rank layouts a racing
    rank promotion can leave a cross-node order violation in the cut; the
    reconciliation pass below removes it.

    Every capture runs {!Repro_recover.Repair.repair} on the scanned cut
    (reconciliation).  For flat/boxed/growable the fix list is empty by
    the argument above — a non-empty list there would falsify Lemma 3.1
    and the chaos drill checks exactly that.  For rank/packed a few fixes
    are legitimate; each fix only splits sets, so the repaired cut still
    refines the final partition.

    The snapshot is stamped with the epoch obtained by {!Epoch.bump}
    {e before} the scan: every WAL record with a strictly smaller epoch is
    provably inside the cut (see {!Epoch}), so recovery replays only the
    log tail from that epoch on.  If reconciliation had to fix anything,
    the cut-containment guarantee is void and the snapshot is stamped
    epoch 0 — recovery then replays the whole log, trading replay time
    for safety.  Without [?epoch] (no WAL attached) snapshots are stamped
    0 as well. *)

type capture = {
  snapshot : Repro_recover.Snapshot.t;
      (** reconciled and epoch-stamped — the thing to {!Repro_recover.Snapshot.write_file} *)
  raw : Repro_recover.Snapshot.t;
      (** the cut exactly as scanned, for diagnostics and tests *)
  fixes : Repro_recover.Repair.fix list;
      (** reconciliation fixes; [[]] for the random-priority layouts *)
  scan_ns : int;
  repair_ns : int;
}

val of_native : ?epoch:Epoch.t -> Dsu.Native.t -> capture
val of_boxed : ?epoch:Epoch.t -> Dsu.Boxed.t -> capture
val of_growable : ?epoch:Epoch.t -> Dsu.Growable.t -> capture
val of_rank : ?epoch:Epoch.t -> Dsu.Rank.Native.t -> capture
val of_packed : ?epoch:Epoch.t -> Dsu.Packed.Native.t -> capture

val of_restored : ?epoch:Epoch.t -> Repro_recover.Restore.restored -> capture
(** Dispatch on a restored handle's kind — what a recovered-and-resumed
    server uses for its next checkpoint. *)
