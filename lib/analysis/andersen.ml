module StringSet = Set.Make (String)

type t = { pts : (string, StringSet.t) Hashtbl.t; vars : StringSet.t }

let get tbl v = Option.value ~default:StringSet.empty (Hashtbl.find_opt tbl v)

let add_all tbl v set =
  let cur = get tbl v in
  let next = StringSet.union cur set in
  if StringSet.equal cur next then false
  else begin
    Hashtbl.replace tbl v next;
    true
  end

let analyze stmts =
  let pts : (string, StringSet.t) Hashtbl.t = Hashtbl.create 64 in
  let vars =
    List.fold_left
      (fun acc stmt ->
        match stmt with
        | Steensgaard.Address_of (x, y)
        | Steensgaard.Copy (x, y)
        | Steensgaard.Load (x, y)
        | Steensgaard.Store (x, y) ->
          StringSet.add x (StringSet.add y acc))
      StringSet.empty stmts
  in
  (* Fixpoint: apply every constraint until nothing changes.  Cubic, which
     is fine for the reference role. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun stmt ->
        let step =
          match stmt with
          | Steensgaard.Address_of (x, y) -> add_all pts x (StringSet.singleton y)
          | Steensgaard.Copy (x, y) -> add_all pts x (get pts y)
          | Steensgaard.Load (x, y) ->
            StringSet.fold
              (fun l acc -> add_all pts x (get pts l) || acc)
              (get pts y) false
          | Steensgaard.Store (x, y) ->
            StringSet.fold
              (fun l acc -> add_all pts l (get pts y) || acc)
              (get pts x) false
        in
        if step then changed := true)
      stmts
  done;
  { pts; vars }

let points_to t v = StringSet.elements (get t.pts v)

let may_alias t x y =
  not (StringSet.is_empty (StringSet.inter (get t.pts x) (get t.pts y)))

let variables t = StringSet.elements t.vars
