type stmt =
  | Address_of of string * string
  | Copy of string * string
  | Load of string * string
  | Store of string * string

let pp_stmt ppf = function
  | Address_of (x, y) -> Format.fprintf ppf "%s = &%s" x y
  | Copy (x, y) -> Format.fprintf ppf "%s = %s" x y
  | Load (x, y) -> Format.fprintf ppf "%s = *%s" x y
  | Store (x, y) -> Format.fprintf ppf "*%s = %s" x y

type t = {
  cells : Dsu.Growable.t;
  var_cell : (string, int) Hashtbl.t;
  pts : (int, int) Hashtbl.t;
      (** class representative -> pointee cell; always keyed by the
          {e current} representative of the class *)
}

let create ?(capacity = 4096) () =
  {
    cells = Dsu.Growable.create ~capacity ();
    var_cell = Hashtbl.create 64;
    pts = Hashtbl.create 64;
  }

let find t cell = Dsu.Growable.find t.cells cell

let cell_of_var t x =
  match Hashtbl.find_opt t.var_cell x with
  | Some c -> c
  | None ->
    let c = Dsu.Growable.make_set t.cells in
    Hashtbl.replace t.var_cell x c;
    c

(* Unify the classes of two cells, merging their points-to facts; when both
   classes have pointees, those pointees are unified recursively (setting
   the merged fact before recursing keeps cyclic structures like x = *x
   terminating). *)
let rec join t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let pa = Hashtbl.find_opt t.pts ra in
    let pb = Hashtbl.find_opt t.pts rb in
    Hashtbl.remove t.pts ra;
    Hashtbl.remove t.pts rb;
    Dsu.Growable.unite t.cells ra rb;
    let r = find t ra in
    match (pa, pb) with
    | None, None -> ()
    | Some p, None | None, Some p -> Hashtbl.replace t.pts r p
    | Some p1, Some p2 ->
      Hashtbl.replace t.pts r p1;
      join t p1 p2
  end

(* The pointee cell of a class, created on first demand — a fresh abstract
   location, i.e. a MakeSet. *)
let pointee t cell =
  let r = find t cell in
  match Hashtbl.find_opt t.pts r with
  | Some p -> p
  | None ->
    let fresh = Dsu.Growable.make_set t.cells in
    Hashtbl.replace t.pts r fresh;
    fresh

let process t = function
  | Address_of (x, y) -> join t (pointee t (cell_of_var t x)) (cell_of_var t y)
  | Copy (x, y) -> join t (pointee t (cell_of_var t x)) (pointee t (cell_of_var t y))
  | Load (x, y) ->
    let py = pointee t (cell_of_var t y) in
    join t (pointee t (cell_of_var t x)) (pointee t py)
  | Store (x, y) ->
    let px = pointee t (cell_of_var t x) in
    join t (pointee t px) (pointee t (cell_of_var t y))

let analyze ?capacity stmts =
  let t = create ?capacity () in
  List.iter (process t) stmts;
  t

let pts_repr t x =
  match Hashtbl.find_opt t.var_cell x with
  | None -> None
  | Some c -> (
    match Hashtbl.find_opt t.pts (find t c) with
    | None -> None
    | Some p -> Some (find t p))

let may_alias t x y =
  match (pts_repr t x, pts_repr t y) with
  | Some a, Some b -> a = b
  | None, _ | _, None -> false

let same_class t x y =
  match (Hashtbl.find_opt t.var_cell x, Hashtbl.find_opt t.var_cell y) with
  | Some a, Some b -> find t a = find t b
  | None, _ | _, None -> false

let points_to_repr = pts_repr

let variables t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.var_cell [] |> List.sort compare

let cells_used t = Dsu.Growable.cardinal t.cells
