(** Steensgaard's unification-based points-to analysis.

    The paper's first application ("storage allocation in compilers
    [Lattner & Adve 2002]"): pool allocation rests on a unification-based
    pointer analysis whose core is exactly disjoint set union — abstract
    memory locations are unified as assignments are processed, each
    statement costing a constant number of union-find operations, for a
    near-linear whole-program analysis.

    The input language is the classic four-statement pointer fragment over
    named variables:

    - [Address_of (x, y)] — [x = &y]
    - [Copy (x, y)] — [x = y]
    - [Load (x, y)] — [x = *y]
    - [Store (x, y)] — [*x = y]

    Every variable (and every fresh pointee cell the analysis invents) is
    an element of a {!Dsu.Growable} structure — locations are created on
    the fly, which is precisely the [MakeSet] extension of the paper's
    Section 3.  The analysis is flow-insensitive: statement order does not
    matter, so the union-find unifications can be replayed in any order
    (or concurrently). *)

type stmt =
  | Address_of of string * string
  | Copy of string * string
  | Load of string * string
  | Store of string * string

val pp_stmt : Format.formatter -> stmt -> unit

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of abstract locations (variables + fresh
    pointee cells); default 4096. *)

val process : t -> stmt -> unit
(** Apply one statement's unifications.  Idempotent. *)

val analyze : ?capacity:int -> stmt list -> t
(** Fresh analysis over a whole program. *)

val may_alias : t -> string -> string -> bool
(** Do [x] and [y] possibly point to the same location?  True iff their
    pointee cells are in the same class.  Variables never seen and
    variables with no points-to facts alias nothing. *)

val same_class : t -> string -> string -> bool
(** Are the two variables' own cells unified? *)

val points_to_repr : t -> string -> int option
(** The class representative of the variable's pointee cell, if any facts
    about it exist; classes are unification classes, so equal representative
    means may-alias. *)

val variables : t -> string list
(** All variables mentioned so far, sorted. *)

val cells_used : t -> int
(** Abstract locations allocated (for capacity sizing). *)
