(** Andersen's inclusion-based points-to analysis over the same statement
    fragment — the precision reference for {!Steensgaard}.

    Andersen computes, for every variable, the set of {e named} locations
    (variables whose address was taken) it may point to, by a cubic
    fixpoint over subset constraints.  It is strictly more precise than
    Steensgaard's unification, which gives the soundness test used in the
    suite: whenever Andersen says two variables may alias, Steensgaard must
    agree (the converse can fail — that is exactly the precision
    Steensgaard trades for near-linear time). *)

type t

val analyze : Steensgaard.stmt list -> t
(** Naive worklist-to-fixpoint solver; exact but cubic, for small
    programs. *)

val points_to : t -> string -> string list
(** The named locations the variable may point to, sorted. *)

val may_alias : t -> string -> string -> bool
(** Non-empty intersection of the two points-to sets. *)

val variables : t -> string list
