(** Random workload generators: the bread-and-butter inputs of the work
    experiments (E1, E4, E5, E8). *)

val spanning_unites : rng:Repro_util.Rng.t -> n:int -> Op.t list
(** [n - 1] unites forming a uniformly random recursive tree over the [n]
    elements, in random order: element [i] (in a random relabeling) is
    united with a uniformly chosen earlier element.  Executing all of them
    yields a single set. *)

val random_pairs : rng:Repro_util.Rng.t -> n:int -> m:int -> Op.t list
(** [m] unites with both endpoints uniform on [0, n): the classic random
    multigraph workload; duplicate and redundant unions occur naturally. *)

val mixed :
  rng:Repro_util.Rng.t -> n:int -> m:int -> unite_fraction:float -> Op.t list
(** [m] operations; each is a [Unite] with probability [unite_fraction]
    (else a [Same_set]), endpoints uniform. *)

val queries_after_union :
  rng:Repro_util.Rng.t -> n:int -> queries:int -> Op.t list
(** A spanning-union phase followed by [queries] random [Same_set]s — the
    find-dominated regime where compaction pays. *)
