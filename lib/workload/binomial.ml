let is_power_of_two k = k > 0 && k land (k - 1) = 0

let check_k k =
  if not (is_power_of_two k) then
    invalid_arg "Binomial: tree size must be a positive power of two"

let rounds ~base ~k =
  check_k k;
  (* Representatives of the current trees, in block order. *)
  let reps = ref (List.init k (fun i -> base + i)) in
  let out = ref [] in
  while List.length !reps > 1 do
    let rec pair acc ops = function
      | a :: b :: rest -> pair (a :: acc) (Op.Unite (a, b) :: ops) rest
      | [] -> (List.rev acc, List.rev ops)
      | [ _ ] -> invalid_arg "Binomial.rounds: odd number of representatives"
    in
    let new_reps, ops = pair [] [] !reps in
    reps := new_reps;
    out := ops :: !out
  done;
  List.rev !out

let schedule ~base ~k = List.concat (rounds ~base ~k)

let representative ~base ~k =
  check_k k;
  base

let check_forest ~n ~tree_size =
  check_k tree_size;
  if n < tree_size || n mod tree_size <> 0 then
    invalid_arg "Binomial: tree_size must divide n"

let forest_schedule ~n ~tree_size =
  check_forest ~n ~tree_size;
  List.init (n / tree_size) (fun b -> schedule ~base:(b * tree_size) ~k:tree_size)
  |> List.concat

let probe_nodes ~rng ~n ~tree_size =
  check_forest ~n ~tree_size;
  List.init (n / tree_size) (fun b ->
      (b * tree_size) + Repro_util.Rng.int rng tree_size)

let probes ~rng ~n ~tree_size =
  List.map (fun x -> Op.Same_set (x, x)) (probe_nodes ~rng ~n ~tree_size)
