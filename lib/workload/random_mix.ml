module Rng = Repro_util.Rng

let spanning_unites ~rng ~n =
  if n < 1 then invalid_arg "Random_mix.spanning_unites: n must be >= 1";
  let relabel = Rng.permutation rng n in
  let edges = ref [] in
  for i = n - 1 downto 1 do
    let j = Rng.int rng i in
    edges := Op.Unite (relabel.(i), relabel.(j)) :: !edges
  done;
  let arr = Array.of_list !edges in
  Rng.shuffle rng arr;
  Array.to_list arr

let random_pairs ~rng ~n ~m =
  List.init m (fun _ ->
      let x = Rng.int rng n in
      let y = Rng.int rng n in
      Op.Unite (x, y))

let mixed ~rng ~n ~m ~unite_fraction =
  if unite_fraction < 0. || unite_fraction > 1. then
    invalid_arg "Random_mix.mixed: unite_fraction out of range";
  List.init m (fun _ ->
      let x = Rng.int rng n in
      let y = Rng.int rng n in
      if Rng.float rng < unite_fraction then Op.Unite (x, y) else Op.Same_set (x, y))

let queries_after_union ~rng ~n ~queries =
  let unions = spanning_unites ~rng ~n in
  let qs =
    List.init queries (fun _ ->
        let x = Rng.int rng n in
        let y = Rng.int rng n in
        Op.Same_set (x, y))
  in
  unions @ qs
