(** Hand-shaped stress workloads: degenerate union orders and maximal
    contention.  With randomized linking the resulting {e tree} shapes stay
    shallow whatever the union order — that robustness is what these inputs
    exercise — while the contention workloads maximize CAS interference. *)

val chain : n:int -> Op.t list
(** [unite (0, 1); unite (1, 2); ...] — the order that builds a path under
    naive linking. *)

val star : n:int -> Op.t list
(** [unite (0, i)] for all [i] — every union through one hub element. *)

val double_binary : n:int -> Op.t list
(** Unions along a complete binary tree's edges, leaves first — the order
    that maximizes rank growth under linking by rank. *)

val contended_pair : m:int -> x:int -> y:int -> Op.t list
(** [m] unites of the same two elements; after the first succeeds, the rest
    race on the same roots. *)

val all_same_set : rng:Repro_util.Rng.t -> n:int -> m:int -> Op.t list
(** [m] random queries, no unions: the read-only regime. *)

val pt_incremental :
  rng:Repro_util.Rng.t -> n:int -> queries_per_phase:int -> Op.t list
(** Pătrașcu–Thorup-style incremental connectivity: [log2 n] union
    phases, each pairing off the surviving component representatives (a
    binomial merge tree), interleaved with [queries_per_phase] random
    cross-component connectivity queries per phase.  Stresses the
    update/query-time tradeoff of their lower bound: early unions are
    cheap, late queries traverse the deepest accumulated structure. *)
