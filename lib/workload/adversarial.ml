let chain ~n = List.init (n - 1) (fun i -> Op.Unite (i, i + 1))

let star ~n = List.init (n - 1) (fun i -> Op.Unite (0, i + 1))

let double_binary ~n =
  (* Edges of the complete binary heap layout, deepest nodes first: node i
     links to its parent (i-1)/2. *)
  List.init (n - 1) (fun i ->
      let child = n - 1 - i in
      Op.Unite (child, (child - 1) / 2))

let contended_pair ~m ~x ~y = List.init m (fun _ -> Op.Unite (x, y))

let all_same_set ~rng ~n ~m =
  List.init m (fun _ ->
      let x = Repro_util.Rng.int rng n in
      let y = Repro_util.Rng.int rng n in
      Op.Same_set (x, y))
