let chain ~n = List.init (n - 1) (fun i -> Op.Unite (i, i + 1))

let star ~n = List.init (n - 1) (fun i -> Op.Unite (0, i + 1))

let double_binary ~n =
  (* Edges of the complete binary heap layout, deepest nodes first: node i
     links to its parent (i-1)/2. *)
  List.init (n - 1) (fun i ->
      let child = n - 1 - i in
      Op.Unite (child, (child - 1) / 2))

let contended_pair ~m ~x ~y = List.init m (fun _ -> Op.Unite (x, y))

let all_same_set ~rng ~n ~m =
  List.init m (fun _ ->
      let x = Repro_util.Rng.int rng n in
      let y = Repro_util.Rng.int rng n in
      Op.Same_set (x, y))

let pt_incremental ~rng ~n ~queries_per_phase =
  (* Pătrașcu–Thorup-style incremental connectivity: union phases that
     halve the number of components (pairing off the current roots, as
     in a binomial merge tree), each followed by a burst of connectivity
     queries across the freshly merged halves.  Late-phase queries must
     traverse the deepest structure the adversary could build, so the
     instance stresses the update-time/query-time tradeoff their lower
     bound is about. *)
  let module Rng = Repro_util.Rng in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  (* Representatives of the current components; phase p merges block
     2i with block 2i+1. *)
  let reps = ref (Array.init n (fun i -> i)) in
  while Array.length !reps > 1 do
    let r = !reps in
    let len = Array.length r in
    let half = len / 2 in
    for i = 0 to half - 1 do
      emit (Op.Unite (r.(2 * i), r.((2 * i) + 1)))
    done;
    for _ = 1 to queries_per_phase do
      (* Bias queries toward distinct just-merged blocks: endpoints from
         two random components of the previous generation. *)
      let a = r.(Rng.int rng len) and b = r.(Rng.int rng len) in
      emit (Op.Same_set (a, b))
    done;
    reps := Array.init (half + (len land 1)) (fun i ->
        if i < half then r.(2 * i) else r.(len - 1))
  done;
  List.rev !ops
