type t = Unite of int * int | Same_set of int * int | Find of int

let pp ppf = function
  | Unite (x, y) -> Format.fprintf ppf "unite(%d, %d)" x y
  | Same_set (x, y) -> Format.fprintf ppf "same_set(%d, %d)" x y
  | Find x -> Format.fprintf ppf "find(%d)" x

let max_node ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Unite (x, y) | Same_set (x, y) -> max acc (max x y)
      | Find x -> max acc x)
    (-1) ops

let count_unites ops =
  List.fold_left
    (fun acc op -> match op with Unite _ -> acc + 1 | Same_set _ | Find _ -> acc)
    0 ops

let round_robin items ~p =
  if p < 1 then invalid_arg "Op.round_robin: p must be >= 1";
  let buckets = Array.make p [] in
  List.iteri (fun i item -> buckets.(i mod p) <- item :: buckets.(i mod p)) items;
  Array.map List.rev buckets

let blocks items ~p =
  if p < 1 then invalid_arg "Op.blocks: p must be >= 1";
  let arr = Array.of_list items in
  let total = Array.length arr in
  let base = total / p and extra = total mod p in
  let buckets = Array.make p [] in
  let pos = ref 0 in
  for i = 0 to p - 1 do
    let len = base + if i < extra then 1 else 0 in
    buckets.(i) <- Array.to_list (Array.sub arr !pos len);
    pos := !pos + len
  done;
  buckets

let duplicate items ~p =
  if p < 1 then invalid_arg "Op.duplicate: p must be >= 1";
  Array.make p items

(* The hot loops iterate contiguous arrays, not lists: a benchmark inner
   loop that chases list cells interleaves its cache misses with the DSU's
   own, polluting exactly the locality the flat parent array buys.  The
   list entry points convert once and delegate. *)

let run_native_array d ops =
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | Unite (x, y) -> Dsu.Native.unite d x y
    | Same_set (x, y) -> ignore (Dsu.Native.same_set d x y)
    | Find x -> ignore (Dsu.Native.find d x)
  done

(* Batched runner: walk the stream as maximal runs of consecutive
   same-kind [Unite]/[Same_set] ops (capped at [batch]).  Long runs are
   copied into endpoint arrays and handed to the bulk kernels
   ([Dsu.Native.unite_batch] / [same_set_batch]); runs shorter than
   [min_kernel_run] execute per-op straight from the ops array — the
   kernels pay a per-call root-cache allocation that only amortizes over
   long runs, so a kind-alternating stream must degrade to exactly the
   per-op loop, with no buffering on the way.  [Find]s break runs and
   execute directly. *)
let min_kernel_run = 32

let run_native_array_batched d ?(batch = 2048) ops =
  if batch < 1 then invalid_arg "Op.run_native_array_batched: batch must be >= 1";
  let len = Array.length ops in
  let same_kind a b =
    match (a, b) with
    | Unite _, Unite _ | Same_set _, Same_set _ -> true
    | _ -> false
  in
  let i = ref 0 in
  while !i < len do
    match Array.unsafe_get ops !i with
    | Find x ->
      ignore (Dsu.Native.find d x);
      incr i
    | op ->
      let j = ref (!i + 1) in
      while
        !j < len && !j - !i < batch && same_kind op (Array.unsafe_get ops !j)
      do
        incr j
      done;
      let run = !j - !i in
      (if run < min_kernel_run then
         for k = !i to !j - 1 do
           match Array.unsafe_get ops k with
           | Unite (x, y) -> Dsu.Native.unite d x y
           | Same_set (x, y) -> ignore (Dsu.Native.same_set d x y)
           | Find _ -> assert false
         done
       else
         let xs = Array.make run 0 and ys = Array.make run 0 in
         for k = 0 to run - 1 do
           match Array.unsafe_get ops (!i + k) with
           | Unite (x, y) | Same_set (x, y) ->
             Array.unsafe_set xs k x;
             Array.unsafe_set ys k y
           | Find _ -> assert false
         done;
         match op with
         | Unite _ -> Dsu.Native.unite_batch d xs ys
         | Same_set _ -> ignore (Dsu.Native.same_set_batch d xs ys)
         | Find _ -> assert false);
      i := !j
  done

let run_packed_array d ops =
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | Unite (x, y) -> Dsu.Packed.Native.unite d x y
    | Same_set (x, y) -> ignore (Dsu.Packed.Native.same_set d x y)
    | Find x -> ignore (Dsu.Packed.Native.find d x)
  done

let run_boxed_array d ops =
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | Unite (x, y) -> Dsu.Boxed.unite d x y
    | Same_set (x, y) -> ignore (Dsu.Boxed.same_set d x y)
    | Find x -> ignore (Dsu.Boxed.find d x)
  done

let run_seq_array d ops =
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | Unite (x, y) -> Sequential.Seq_dsu.unite d x y
    | Same_set (x, y) -> ignore (Sequential.Seq_dsu.same_set d x y)
    | Find x -> ignore (Sequential.Seq_dsu.find d x)
  done

let run_quick_find_array d ops =
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | Unite (x, y) -> Sequential.Quick_find.unite d x y
    | Same_set (x, y) -> ignore (Sequential.Quick_find.same_set d x y)
    | Find x -> ignore (Sequential.Quick_find.label d x)
  done

let run_native d ops = run_native_array d (Array.of_list ops)
let run_seq d ops = run_seq_array d (Array.of_list ops)
let run_quick_find d ops = run_quick_find_array d (Array.of_list ops)

let to_sim_ops h ops =
  List.map
    (fun op ->
      match op with
      | Unite (x, y) -> Dsu.Sim.unite_op h x y
      | Same_set (x, y) -> Dsu.Sim.same_set_op h x y
      | Find x -> Dsu.Sim.find_op h x)
    ops

let to_sim_ops_aw h ops =
  List.map
    (fun op ->
      match op with
      | Unite (x, y) -> Baselines.Anderson_woll.Sim.unite_op h x y
      | Same_set (x, y) -> Baselines.Anderson_woll.Sim.same_set_op h x y
      | Find x -> Baselines.Anderson_woll.Sim.same_set_op h x x)
    ops
