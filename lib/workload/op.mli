(** Abstract set operations, the currency of workload generators: a workload
    is an [op list] (or one list per process), executable against any of the
    implementations — native, simulated, sequential — so the same workload
    drives correctness tests and cross-implementation work comparisons. *)

type t = Unite of int * int | Same_set of int * int | Find of int

val pp : Format.formatter -> t -> unit
val max_node : t list -> int
val count_unites : t list -> int

(** {1 Distribution across processes} *)

val round_robin : 'a list -> p:int -> 'a list array
(** Deal the list out cyclically to [p] processes, preserving per-process
    order. *)

val blocks : 'a list -> p:int -> 'a list array
(** Split into [p] contiguous blocks of near-equal length. *)

val duplicate : 'a list -> p:int -> 'a list array
(** Every process gets the whole list — the lockstep workloads of the
    lower-bound experiments (Theorem 5.4). *)

(** {1 Execution} *)

val run_native : Dsu.Native.t -> t list -> unit
val run_seq : Sequential.Seq_dsu.t -> t list -> unit
val run_quick_find : Sequential.Quick_find.t -> t list -> unit
(** Convert to an array once and delegate to the array runners below. *)

val run_native_array : Dsu.Native.t -> t array -> unit

val run_native_array_batched : Dsu.Native.t -> ?batch:int -> t array -> unit
(** Like {!run_native_array}, but maximal runs of consecutive same-kind
    [Unite]/[Same_set] ops are flushed through the bulk kernels
    ({!Dsu.Native.unite_batch} / {!Dsu.Native.same_set_batch}) in groups of
    at most [batch] (default 2048) pairs; [Find]s flush and run directly,
    and runs shorter than an internal threshold (32) fall back to the
    per-op entry points, so kind-alternating streams never pay kernel
    setup per tiny flush.  Same per-element semantics as the per-op loop —
    used by the bench bulk suite to measure the batching win.
    @raise Invalid_argument if [batch < 1]. *)

val run_packed_array : Dsu.Packed.Native.t -> t array -> unit
(** Drives the bit-packed linking-by-rank layout ({!Dsu.Packed.Native})
    for the plan-space sweeps. *)

val run_boxed_array : Dsu.Boxed.t -> t array -> unit
val run_seq_array : Sequential.Seq_dsu.t -> t array -> unit
val run_quick_find_array : Sequential.Quick_find.t -> t array -> unit
(** Array-based hot loops: contiguous iteration, no list-cell chasing in
    benchmark inner loops.  [run_boxed_array] drives the boxed-layout
    comparator ({!Dsu.Boxed}) for memory-layout A/B runs. *)

val to_sim_ops : Dsu.Sim.t -> t list -> (unit -> unit) list
(** Closures for {!Apram.Sim.run_ops}, each recording itself in the
    history. *)

val to_sim_ops_aw : Baselines.Anderson_woll.Sim.t -> t list -> (unit -> unit) list
(** Same for the Anderson–Woll baseline ([Find] is run as a [same_set] with
    itself, since AW exposes the same interface through its own root type). *)
