(** The binomial-tree-style construction of Lemma 5.3: [k - 1] Unites that
    build a [k]-node tree with average node depth Ω(log k) {e despite}
    splitting — start with singletons, unite in pairs, unite the resulting
    trees in pairs, and repeat, always accessing trees through their
    designated representatives (which stay within depth 2, so the finds
    barely compact anything).

    This is the adversarial input of the lower-bound experiments E6 and E7:
    a deep forest that forces Ω(log(np/m)) work per subsequent find. *)

val rounds : base:int -> k:int -> Op.t list list
(** The construction over elements [base .. base + k - 1], [k] a power of
    two: [lg k] rounds, round [i] holding [k / 2^(i+1)] unites of
    representative pairs.  Unites within a round touch disjoint trees, so a
    round may execute concurrently. *)

val schedule : base:int -> k:int -> Op.t list
(** The rounds flattened to one sequential schedule. *)

val representative : base:int -> k:int -> int
(** The representative of the final tree. *)

val forest_schedule : n:int -> tree_size:int -> Op.t list
(** Lower-bound step (a) of Theorem 5.4: partition [0 .. n-1] into
    [n / tree_size] blocks and build one Lemma-5.3 tree per block.
    [tree_size] must be a power of two dividing [n]. *)

val probe_nodes : rng:Repro_util.Rng.t -> n:int -> tree_size:int -> int list
(** Lower-bound step (b): one uniformly random node from each tree. *)

val probes : rng:Repro_util.Rng.t -> n:int -> tree_size:int -> Op.t list
(** Lower-bound step (c): the [Same_set (x_i, x_i)] probes, one per tree;
    run a copy on each of the [p] processes in lockstep to realize the
    Ω(m log(np/m)) bound. *)
