type summary = { schedules : int; truncated : bool }

type violation = { schedule_index : int; choices : int list; outcome : Sim.outcome }

(* One replay: follow [prefix]; once it is exhausted choose index 0.  The
   scheduler records (chosen index, runnable count) for every decision. *)
let replay ~mem_size ~init ~make_ops prefix =
  let remaining = ref prefix in
  let trace = ref [] in
  let sched =
    Scheduler.custom ~name:"explore" (fun ~memory:_ pending ->
        let count = List.length pending in
        let idx =
          match !remaining with
          | [] -> 0
          | i :: rest ->
            remaining := rest;
            if i >= count then
              (* The prefix was built against this same deterministic tree,
                 so an out-of-range index means [make_ops] is not
                 deterministic. *)
              invalid_arg "Explore: non-deterministic workload";
            i
        in
        trace := (idx, count) :: !trace;
        (List.nth pending idx).Scheduler.pid)
  in
  let outcome = Sim.run_ops ~mem_size ~init ~sched (make_ops ()) in
  (outcome, List.rev !trace)

(* Next prefix in depth-first order: bump the deepest decision that still
   has an unexplored sibling, drop everything after it. *)
let next_prefix trace =
  let rec backtrack = function
    | [] -> None
    | (idx, count) :: shallower ->
      if idx + 1 < count then Some (List.rev ((idx + 1, count) :: shallower))
      else backtrack shallower
  in
  match backtrack (List.rev trace) with
  | None -> None
  | Some t -> Some (List.map fst t)

let run_all ?(max_schedules = 1_000_000) ~mem_size ~init ~make_ops ~check () =
  let rec loop prefix index =
    let outcome, trace = replay ~mem_size ~init ~make_ops prefix in
    if not (check outcome) then
      Error { schedule_index = index; choices = List.map fst trace; outcome }
    else if index + 1 >= max_schedules then
      Ok { schedules = index + 1; truncated = next_prefix trace <> None }
    else begin
      match next_prefix trace with
      | None -> Ok { schedules = index + 1; truncated = false }
      | Some prefix -> loop prefix (index + 1)
    end
  in
  loop [] 0

let count_schedules ?max_schedules ~mem_size ~init ~make_ops () =
  match run_all ?max_schedules ~mem_size ~init ~make_ops ~check:(fun _ -> true) () with
  | Ok summary -> summary
  | Error _ -> assert false
