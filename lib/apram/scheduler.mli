(** Scheduling policies for the APRAM simulator.

    The model is fully asynchronous: any interleaving of process steps is a
    legal execution.  A policy inspects the set of runnable processes (each
    with its pending shared-memory operation) and picks which one executes
    its step next.  Adversarial policies exercise the algorithm's wait-free
    progress and linearizability under hostile timing; the lockstep policy
    realizes the synchronous executions used by the paper's lower-bound
    constructions (Theorem 5.4). *)

type pending = { pid : int; op : Memory.op }

type t
(** A (possibly stateful) scheduling policy. *)

val name : t -> string

val choose : t -> memory:Memory.t -> pending list -> int
(** [choose t ~memory runnable] returns the pid of the process to step next.
    [runnable] is non-empty and sorted by pid. *)

val kills : t -> memory:Memory.t -> pending list -> int list
(** [kills t ~memory runnable]: pids the policy crash-stops {e before} this
    decision — the simulator discards each one's pending operation and never
    runs it again (its partial shared-memory writes stay).  Every policy but
    {!crash} returns [[]]. *)

val custom : name:string -> (memory:Memory.t -> pending list -> int) -> t
(** Arbitrary user policy — used by tests to enumerate interleavings
    exhaustively.  The function must return the pid of some runnable
    process. *)

val round_robin : unit -> t
(** Cycle through runnable processes in pid order, one step each — the
    lockstep schedule of the lower-bound experiments. *)

val sequential : unit -> t
(** Always run the lowest-pid runnable process: executes processes one after
    another, i.e. a sequential execution. *)

val random : seed:int -> t
(** Uniformly random runnable process at every step. *)

val quantum : seed:int -> quantum:int -> t
(** Run a randomly chosen process for up to [quantum] consecutive steps
    before re-choosing; models coarse-grained preemption. *)

val cas_adversary : seed:int -> t
(** Contention adversary: when some runnable process is about to perform a
    [Cas] that would currently succeed at an address that another runnable
    process is also about to [Cas], schedule the would-succeed one first so
    the competitor's [Cas] fails.  Falls back to random otherwise.  This is
    the schedule that maximizes wasted compare-and-swaps in splitting. *)

val laggard : seed:int -> victim:int -> delay:int -> t
(** Starve process [victim]: step it only once per [delay] steps of the
    others (or when it is the only runnable process).  Exercises wait-freedom:
    the victim must still complete. *)

val crash : seed:int -> victims:int list -> after:int -> t
(** Crash-stop adversary over an otherwise uniform random schedule: each
    process in [victims] is killed once it has been scheduled [after] (plus
    per-victim seeded jitter, at most [after] more) steps, abandoning its
    in-flight operation; survivors must still finish and the final memory
    must satisfy the forest invariants — the simulator side of the chaos
    scenario matrix ({!Harness.Chaos} is the native side). *)

val stall_storm : seed:int -> prob_percent:int -> stall:int -> t
(** Random schedule with storms: each decision parks a random runnable
    process for [stall] decisions with probability [prob_percent]%.
    Models machine-wide noise hitting a changing subset of processes;
    never parks the last awake process, so executions terminate. *)
