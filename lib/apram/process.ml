type _ Effect.t +=
  | Access : Memory.op -> int Effect.t
  | Record : History.proto -> unit Effect.t
  | Self : int Effect.t

let read a = Effect.perform (Access (Memory.Read a))

let write a v = ignore (Effect.perform (Access (Memory.Write (a, v))))

let cas a expected desired = Effect.perform (Access (Memory.Cas (a, expected, desired))) = 1

let self () = Effect.perform Self

let record_invoke ~name ~args =
  Effect.perform (Record (History.Proto_invoke { History.name; args }))

let record_return value = Effect.perform (Record (History.Proto_return value))
