(** Telemetry instruments for the APRAM simulator ({!Repro_obs} glue).

    Hooks are guarded at the call site by [Atomic.get Sim_obs.armed] — one
    atomic load and branch per simulated step when telemetry is off. *)

module M = Repro_obs.Metrics
module T = Repro_obs.Trace

let armed = Repro_obs.Switch.any

let steps_total =
  M.counter ~help:"shared-memory steps executed by the simulator"
    "apram_steps_total"

let decisions_total =
  M.counter ~help:"scheduling decisions taken" "apram_sched_decisions_total"

let runnable_procs =
  M.gauge ~help:"runnable processes at the latest scheduling decision"
    "apram_runnable_procs"

let procs =
  M.gauge ~help:"process count of the latest completed simulator run"
    "apram_procs"

let steps_per_process =
  M.histogram
    ~help:
      "per-process shared-memory step totals, one sample per process per \
       completed run"
    "apram_steps_per_process"

let on_decision ~pid ~runnable =
  M.incr decisions_total;
  M.set runnable_procs runnable;
  T.emit (T.Sched_decision { pid })

let on_step () = M.incr steps_total

let on_run_complete (steps : int array) =
  M.set procs (Array.length steps);
  Array.iter (M.observe steps_per_process) steps
