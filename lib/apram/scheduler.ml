module Rng = Repro_util.Rng

type pending = { pid : int; op : Memory.op }

type t = {
  name : string;
  choose : memory:Memory.t -> pending list -> int;
}

let name t = t.name

let choose t ~memory runnable =
  let pid = t.choose ~memory runnable in
  if Atomic.get Sim_obs.armed then
    Sim_obs.on_decision ~pid ~runnable:(List.length runnable);
  pid

let custom ~name choose = { name; choose }

let round_robin () =
  let last = ref (-1) in
  let choose ~memory:_ runnable =
    (* First runnable pid strictly greater than the last scheduled one,
       wrapping around: every runnable process advances once per cycle. *)
    let next =
      match List.find_opt (fun p -> p.pid > !last) runnable with
      | Some p -> p.pid
      | None -> (List.hd runnable).pid
    in
    last := next;
    next
  in
  { name = "round-robin"; choose }

let sequential () =
  { name = "sequential"; choose = (fun ~memory:_ runnable -> (List.hd runnable).pid) }

let random ~seed =
  let rng = Rng.create seed in
  let choose ~memory:_ runnable =
    (List.nth runnable (Rng.int rng (List.length runnable))).pid
  in
  { name = "random"; choose }

let quantum ~seed ~quantum =
  if quantum < 1 then invalid_arg "Scheduler.quantum: quantum must be >= 1";
  let rng = Rng.create seed in
  let current = ref (-1) in
  let remaining = ref 0 in
  let choose ~memory:_ runnable =
    let still_runnable = List.exists (fun p -> p.pid = !current) runnable in
    if !remaining > 0 && still_runnable then begin
      decr remaining;
      !current
    end
    else begin
      let p = List.nth runnable (Rng.int rng (List.length runnable)) in
      current := p.pid;
      remaining := quantum - 1;
      p.pid
    end
  in
  { name = Printf.sprintf "quantum-%d" quantum; choose }

let cas_adversary ~seed =
  let rng = Rng.create seed in
  let choose ~memory runnable =
    let cas_addr p =
      match p.op with
      | Memory.Cas (a, e, _) when Memory.peek memory a = e -> Some a
      | Memory.Cas _ | Memory.Read _ | Memory.Write _ -> None
    in
    let would_succeed = List.filter (fun p -> cas_addr p <> None) runnable in
    let contended =
      List.filter
        (fun p ->
          match cas_addr p with
          | None -> false
          | Some a ->
            List.exists
              (fun q ->
                q.pid <> p.pid
                &&
                match q.op with
                | Memory.Cas (a', _, _) -> a' = a
                | Memory.Read _ | Memory.Write _ -> false)
              runnable)
        would_succeed
    in
    let pool = if contended <> [] then contended else runnable in
    (List.nth pool (Rng.int rng (List.length pool))).pid
  in
  { name = "cas-adversary"; choose }

let laggard ~seed ~victim ~delay =
  if delay < 1 then invalid_arg "Scheduler.laggard: delay must be >= 1";
  let rng = Rng.create seed in
  let since_victim = ref 0 in
  let choose ~memory:_ runnable =
    let others = List.filter (fun p -> p.pid <> victim) runnable in
    if others = [] then victim
    else if !since_victim >= delay && List.exists (fun p -> p.pid = victim) runnable
    then begin
      since_victim := 0;
      victim
    end
    else begin
      incr since_victim;
      (List.nth others (Rng.int rng (List.length others))).pid
    end
  in
  { name = "laggard"; choose }
