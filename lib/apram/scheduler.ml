module Rng = Repro_util.Rng

type pending = { pid : int; op : Memory.op }

type t = {
  name : string;
  choose : memory:Memory.t -> pending list -> int;
  kills : memory:Memory.t -> pending list -> int list;
}

let no_kills ~memory:_ _ = []

let name t = t.name

let choose t ~memory runnable =
  let pid = t.choose ~memory runnable in
  if Atomic.get Sim_obs.armed then
    Sim_obs.on_decision ~pid ~runnable:(List.length runnable);
  pid

let kills t ~memory runnable = t.kills ~memory runnable

let custom ~name choose = { name; choose; kills = no_kills }

let round_robin () =
  let last = ref (-1) in
  let choose ~memory:_ runnable =
    (* First runnable pid strictly greater than the last scheduled one,
       wrapping around: every runnable process advances once per cycle. *)
    let next =
      match List.find_opt (fun p -> p.pid > !last) runnable with
      | Some p -> p.pid
      | None -> (List.hd runnable).pid
    in
    last := next;
    next
  in
  { name = "round-robin"; choose; kills = no_kills }

let sequential () =
  { name = "sequential"; choose = (fun ~memory:_ runnable -> (List.hd runnable).pid); kills = no_kills }

let random ~seed =
  let rng = Rng.create seed in
  let choose ~memory:_ runnable =
    (List.nth runnable (Rng.int rng (List.length runnable))).pid
  in
  { name = "random"; choose; kills = no_kills }

let quantum ~seed ~quantum =
  if quantum < 1 then invalid_arg "Scheduler.quantum: quantum must be >= 1";
  let rng = Rng.create seed in
  let current = ref (-1) in
  let remaining = ref 0 in
  let choose ~memory:_ runnable =
    let still_runnable = List.exists (fun p -> p.pid = !current) runnable in
    if !remaining > 0 && still_runnable then begin
      decr remaining;
      !current
    end
    else begin
      let p = List.nth runnable (Rng.int rng (List.length runnable)) in
      current := p.pid;
      remaining := quantum - 1;
      p.pid
    end
  in
  { name = Printf.sprintf "quantum-%d" quantum; choose; kills = no_kills }

let cas_adversary ~seed =
  let rng = Rng.create seed in
  let choose ~memory runnable =
    let cas_addr p =
      match p.op with
      | Memory.Cas (a, e, _) when Memory.peek memory a = e -> Some a
      | Memory.Cas _ | Memory.Read _ | Memory.Write _ -> None
    in
    let would_succeed = List.filter (fun p -> cas_addr p <> None) runnable in
    let contended =
      List.filter
        (fun p ->
          match cas_addr p with
          | None -> false
          | Some a ->
            List.exists
              (fun q ->
                q.pid <> p.pid
                &&
                match q.op with
                | Memory.Cas (a', _, _) -> a' = a
                | Memory.Read _ | Memory.Write _ -> false)
              runnable)
        would_succeed
    in
    let pool = if contended <> [] then contended else runnable in
    (List.nth pool (Rng.int rng (List.length pool))).pid
  in
  { name = "cas-adversary"; choose; kills = no_kills }

let laggard ~seed ~victim ~delay =
  if delay < 1 then invalid_arg "Scheduler.laggard: delay must be >= 1";
  let rng = Rng.create seed in
  let since_victim = ref 0 in
  let choose ~memory:_ runnable =
    let others = List.filter (fun p -> p.pid <> victim) runnable in
    if others = [] then victim
    else if !since_victim >= delay && List.exists (fun p -> p.pid = victim) runnable
    then begin
      since_victim := 0;
      victim
    end
    else begin
      incr since_victim;
      (List.nth others (Rng.int rng (List.length others))).pid
    end
  in
  { name = "laggard"; choose; kills = no_kills }

(* Crash-stop adversary: each victim runs normally until it has been
   scheduled for its personal step budget, then is killed — removed from
   the execution with its pending operation never applied, modeling a
   process that halts mid-operation (the fault model of Theorem 3.4's
   "any asynchrony" claim).  The budget is [after] plus a per-victim
   seeded jitter so several victims do not all die on the same decision. *)
let crash ~seed ~victims ~after =
  if after < 1 then invalid_arg "Scheduler.crash: after must be >= 1";
  List.iter
    (fun v -> if v < 0 then invalid_arg "Scheduler.crash: negative victim pid")
    victims;
  let rng = Rng.create seed in
  let budget = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if not (Hashtbl.mem budget v) then
        Hashtbl.replace budget v (after + Rng.int rng (max 1 after)))
    victims;
  let steps = Hashtbl.create 8 in
  let taken pid = Option.value ~default:0 (Hashtbl.find_opt steps pid) in
  let kills ~memory:_ runnable =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt budget p.pid with
        | Some b when taken p.pid >= b -> Some p.pid
        | Some _ | None -> None)
      runnable
  in
  let choose ~memory:_ runnable =
    let pid = (List.nth runnable (Rng.int rng (List.length runnable))).pid in
    Hashtbl.replace steps pid (taken pid + 1);
    pid
  in
  { name = Printf.sprintf "crash-%d" (List.length victims); choose; kills }

(* Stall storm: on each decision, with probability [prob_percent]/100, park
   a random runnable process for the next [stall] decisions; schedule
   uniformly among the unparked.  Unlike [laggard] (one fixed victim,
   periodic service) this starves a changing random subset, modeling
   machine-wide noise (GC pauses, interrupts) rather than one slow CPU. *)
let stall_storm ~seed ~prob_percent ~stall =
  if prob_percent < 0 || prob_percent > 100 then
    invalid_arg "Scheduler.stall_storm: prob_percent must be in [0, 100]";
  if stall < 1 then invalid_arg "Scheduler.stall_storm: stall must be >= 1";
  let rng = Rng.create seed in
  let parked_until = Hashtbl.create 8 in
  let decision = ref 0 in
  let choose ~memory:_ runnable =
    incr decision;
    let parked p =
      match Hashtbl.find_opt parked_until p.pid with
      | Some d when d > !decision -> true
      | Some _ -> Hashtbl.remove parked_until p.pid; false
      | None -> false
    in
    let awake = List.filter (fun p -> not (parked p)) runnable in
    (* Never park the last awake process: the schedule must stay fair
       enough to terminate, and wait-freedom is about the victim's own
       steps, not about freezing the whole machine. *)
    let awake =
      if List.length awake > 1 && Rng.int rng 100 < prob_percent then begin
        let victim = List.nth awake (Rng.int rng (List.length awake)) in
        Hashtbl.replace parked_until victim.pid (!decision + stall);
        List.filter (fun p -> p.pid <> victim.pid) awake
      end
      else awake
    in
    let pool = if awake = [] then runnable else awake in
    (List.nth pool (Rng.int rng (List.length pool))).pid
  in
  { name = Printf.sprintf "stall-storm-%d" prob_percent; choose; kills = no_kills }
