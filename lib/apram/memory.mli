(** Simulated shared memory of the APRAM.

    A flat array of integer cells.  The scheduler applies one operation at a
    time, so plain OCaml mutation is enough: atomicity of [Cas] is a
    consequence of the simulation's one-op-at-a-time execution, exactly as in
    the APRAM model where [Cas] is a primitive atomic step. *)

type t

type op =
  | Read of int  (** [Read a] returns the value at address [a]. *)
  | Write of int * int  (** [Write (a, v)] stores [v] at [a]; returns [v]. *)
  | Cas of int * int * int
      (** [Cas (a, expected, desired)] returns 1 and stores [desired] if the
          cell holds [expected], else returns 0 and leaves it unchanged. *)

val create : int -> (int -> int) -> t
(** [create n f] is a memory of [n] cells, cell [a] initialized to [f a]. *)

val length : t -> int
val apply : t -> op -> int
(** Apply one operation atomically and return its result. *)

val peek : t -> int -> int
(** Read a cell without going through the scheduler; for assertions and
    post-mortem inspection only. *)

val poke : t -> int -> int -> unit
(** Direct store, for test setup only. *)

val snapshot : t -> int array
val address_of_op : op -> int
val is_cas : op -> bool
val pp_op : Format.formatter -> op -> unit
