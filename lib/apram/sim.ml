open Effect.Deep

type outcome = {
  steps : int array;
  total_steps : int;
  history : History.t;
  memory : Memory.t;
  schedule_len : int;
  crashed : int list;
}

(* A process is waiting to perform a memory op, finished, or crash-stopped
   by the scheduler (its pending operation discarded, its continuation
   never resumed — partial writes it already made stay in memory).  Running
   a process always runs it up to its next memory access (local computation
   and history recording are handled inline and are free). *)
type status =
  | Blocked of Memory.op * (int, status) continuation
  | Finished
  | Crashed

let run ?(max_steps = 200_000_000) ?on_step ~mem_size ~init ~sched bodies =
  let p = Array.length bodies in
  let memory = Memory.create mem_size init in
  let events = ref [] in
  let steps = Array.make p 0 in
  let handler (pid : int) =
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Process.Access op ->
            Some (fun (k : (a, status) continuation) -> Blocked (op, k))
          | Process.Record proto ->
            Some
              (fun (k : (a, status) continuation) ->
                let event =
                  match proto with
                  | History.Proto_invoke call ->
                    History.Invoke { pid; call; step = steps.(pid) }
                  | History.Proto_return value ->
                    History.Return { pid; value; step = steps.(pid) }
                in
                events := event :: !events;
                continue k ())
          | Process.Self -> Some (fun (k : (a, status) continuation) -> continue k pid)
          | _ -> None);
    }
  in
  let statuses =
    Array.mapi (fun pid body -> match_with (fun () -> body pid) () (handler pid)) bodies
  in
  let total = ref 0 in
  let decisions = ref 0 in
  let crashed = ref [] in
  let runnable () =
    let acc = ref [] in
    for pid = p - 1 downto 0 do
      match statuses.(pid) with
      | Blocked (op, _) -> acc := { Scheduler.pid; op } :: !acc
      | Finished | Crashed -> ()
    done;
    !acc
  in
  let rec loop () =
    match runnable () with
    | [] -> ()
    | pending -> (
      match Scheduler.kills sched ~memory pending with
      | _ :: _ as kills ->
        List.iter
          (fun pid ->
            match statuses.(pid) with
            | Blocked _ ->
              statuses.(pid) <- Crashed;
              crashed := pid :: !crashed
            | Finished | Crashed -> ())
          kills;
        loop ()
      | [] ->
        let pid = Scheduler.choose sched ~memory pending in
        (match statuses.(pid) with
        | Finished | Crashed ->
          invalid_arg "Sim.run: scheduler chose a finished or crashed process"
        | Blocked (op, k) ->
          let result = Memory.apply memory op in
          (match on_step with None -> () | Some f -> f ~pid ~op ~result);
          steps.(pid) <- steps.(pid) + 1;
          incr total;
          incr decisions;
          if Atomic.get Sim_obs.armed then Sim_obs.on_step ();
          if !total > max_steps then
            failwith "Sim.run: max_steps exceeded (livelock or runaway workload)";
          statuses.(pid) <- continue k result);
        loop ())
  in
  loop ();
  if Atomic.get Sim_obs.armed then Sim_obs.on_run_complete steps;
  {
    steps;
    total_steps = !total;
    history = List.rev !events;
    memory;
    schedule_len = !decisions;
    crashed = List.sort compare !crashed;
  }

let run_ops ?max_steps ?on_step ~mem_size ~init ~sched ops =
  let bodies = Array.map (fun closures _pid -> List.iter (fun f -> f ()) closures) ops in
  run ?max_steps ?on_step ~mem_size ~init ~sched bodies
