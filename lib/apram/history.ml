type call = { name : string; args : int list }

type proto = Proto_invoke of call | Proto_return of int

type event =
  | Invoke of { pid : int; call : call; step : int }
  | Return of { pid : int; value : int; step : int }

type t = event list

type complete_op = {
  pid : int;
  call : call;
  result : int;
  invoked_at : int;
  returned_at : int;
  steps : int;
}

let complete_ops events =
  let pending : (int, call * int * int) Hashtbl.t = Hashtbl.create 16 in
  let acc = ref [] in
  List.iteri
    (fun idx event ->
      match event with
      | Invoke { pid; call; step } ->
        if Hashtbl.mem pending pid then
          invalid_arg "History.complete_ops: overlapping invocations on one process";
        Hashtbl.replace pending pid (call, idx, step)
      | Return { pid; value; step } -> (
        match Hashtbl.find_opt pending pid with
        | None -> invalid_arg "History.complete_ops: return without invocation"
        | Some (call, invoked_at, inv_step) ->
          Hashtbl.remove pending pid;
          acc :=
            {
              pid;
              call;
              result = value;
              invoked_at;
              returned_at = idx;
              steps = step - inv_step;
            }
            :: !acc))
    events;
  List.rev !acc

let pending_calls events =
  let pending : (int, call) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun event ->
      match event with
      | Invoke { pid; call; _ } -> Hashtbl.replace pending pid call
      | Return { pid; _ } -> Hashtbl.remove pending pid)
    events;
  Hashtbl.fold (fun pid call acc -> (pid, call) :: acc) pending []
  |> List.sort compare

let op_step_costs events = List.map (fun op -> op.steps) (complete_ops events)

let pp_call ppf { name; args } =
  Format.fprintf ppf "%s(%s)" name (String.concat ", " (List.map string_of_int args))

let pp ppf events =
  List.iteri
    (fun i event ->
      match event with
      | Invoke { pid; call; step } ->
        Format.fprintf ppf "%4d p%d  inv %a (step %d)@." i pid pp_call call step
      | Return { pid; value; step } ->
        Format.fprintf ppf "%4d p%d  ret %d (step %d)@." i pid value step)
    events
