(** Operation histories recorded during a simulation.

    Because the simulator executes one shared-memory step at a time, the
    recorded events are totally ordered; an operation's execution interval is
    the span between its [Invoke] and matching [Return].  Each event also
    carries the invoking process's step counter at the instant of the event,
    so an operation's exact step cost is [Return.step - Invoke.step].  The
    linearizability checker consumes this representation. *)

type call = { name : string; args : int list }
(** A high-level operation, e.g. [{ name = "unite"; args = [x; y] }]. *)

type proto = Proto_invoke of call | Proto_return of int
(** What a process reports from inside the simulation; the simulator stamps
    it with the pid and step counter. *)

type event =
  | Invoke of { pid : int; call : call; step : int }
  | Return of { pid : int; value : int; step : int }

type t = event list
(** Events in simulation order (earliest first). *)

type complete_op = {
  pid : int;
  call : call;
  result : int;
  invoked_at : int;  (** index of the [Invoke] event *)
  returned_at : int;  (** index of the [Return] event *)
  steps : int;  (** shared-memory steps the operation cost its process *)
}

val complete_ops : t -> complete_op list
(** Pair up invokes with returns.  Raises [Invalid_argument] on a malformed
    history (a process with two outstanding invocations) and drops trailing
    pending operations (invoked but never returned), which is the standard
    treatment for histories cut off mid-operation. *)

val pending_calls : t -> (int * call) list
(** Invocations with no matching return, with their pids. *)

val op_step_costs : t -> int list
(** The per-operation step costs of all completed operations, in completion
    order — the measurements behind the paper's per-operation bounds. *)

val pp : Format.formatter -> t -> unit
val pp_call : Format.formatter -> call -> unit
