(** Exhaustive schedule exploration: run a simulated workload under {e every}
    interleaving (or the first [max_schedules] of them, depth-first) and
    check a predicate on each outcome — a bounded model checker for
    algorithms running on the APRAM.

    Exploration is replay-based: each schedule is executed from scratch with
    a scheduler that follows a recorded choice prefix and then defaults to
    the lowest-pid runnable process, while recording how many processes were
    runnable at every decision point; backtracking increments the deepest
    incrementable choice, exactly like an odometer over the schedule tree.

    The workload must be deterministic apart from scheduling (true of the
    DSU operations), and every execution must terminate (the object is
    wait-free, and {!Sim.run}'s step limit backstops bugs). *)

type summary = {
  schedules : int;  (** distinct complete schedules executed *)
  truncated : bool;  (** true if [max_schedules] stopped the exploration *)
}

type violation = {
  schedule_index : int;  (** 0-based index of the offending schedule *)
  choices : int list;  (** decision sequence (index into the runnable list) *)
  outcome : Sim.outcome;
}

val run_all :
  ?max_schedules:int ->
  mem_size:int ->
  init:(int -> int) ->
  make_ops:(unit -> (unit -> unit) list array) ->
  check:(Sim.outcome -> bool) ->
  unit ->
  (summary, violation) result
(** [run_all ~mem_size ~init ~make_ops ~check ()] returns [Ok summary] when
    [check] held on every explored schedule, or [Error violation] with the
    first failing schedule.  [make_ops] is called once per schedule and must
    build fresh operation closures (and any per-run handles they capture).
    [max_schedules] defaults to 1_000_000. *)

val count_schedules : ?max_schedules:int ->
  mem_size:int -> init:(int -> int) ->
  make_ops:(unit -> (unit -> unit) list array) -> unit -> summary
(** Exploration without a predicate, to size a state space. *)
