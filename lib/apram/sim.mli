(** The APRAM simulator: runs [p] asynchronous processes over a shared
    memory under a pluggable schedule, counting every shared-memory step each
    process takes.

    Processes are ordinary OCaml functions that touch shared state only
    through {!Process}.  Each {!Process.read}/[write]/[cas] suspends the
    process (via an effect); the scheduler picks a suspended process, applies
    its pending operation to the memory atomically, charges it one step, and
    resumes it.  Local computation between accesses is free, matching the
    paper's work metric where the dominant cost is traversals of shared
    parent pointers.

    Because the simulator is deterministic given the schedule (and its seed),
    every work measurement in the experiments is exactly reproducible. *)

type outcome = {
  steps : int array;  (** shared-memory steps charged to each process *)
  total_steps : int;
  history : History.t;  (** recorded operation events, in execution order *)
  memory : Memory.t;  (** final memory, for post-mortem inspection *)
  schedule_len : int;  (** number of scheduling decisions taken *)
  crashed : int list;
      (** pids crash-stopped by the scheduler ({!Scheduler.kills}), sorted.
          A crashed process's in-flight operation appears in [history] as an
          invoke with no matching return ({!History.pending_calls}); its
          completed shared-memory writes remain in [memory]. *)
}

val run :
  ?max_steps:int ->
  ?on_step:(pid:int -> op:Memory.op -> result:int -> unit) ->
  mem_size:int ->
  init:(int -> int) ->
  sched:Scheduler.t ->
  (int -> unit) array ->
  outcome
(** [run ~mem_size ~init ~sched bodies] executes [bodies.(pid) pid] for every
    [pid] as one simulated process each.  [max_steps] (default 200 million)
    guards against livelock in buggy algorithms; exceeding it raises
    [Failure].  [on_step] observes every scheduled shared-memory step after
    it is applied — the raw execution trace, for debugging and demos. *)

val run_ops :
  ?max_steps:int ->
  ?on_step:(pid:int -> op:Memory.op -> result:int -> unit) ->
  mem_size:int ->
  init:(int -> int) ->
  sched:Scheduler.t ->
  (unit -> unit) list array ->
  outcome
(** [run_ops ... ops] is [run] where process [pid] executes the closures in
    [ops.(pid)] in order.  Closures that should appear in the history must
    record their own invoke/return via {!Process.record_invoke} and
    {!Process.record_return} (the DSU simulator bindings do). *)
