(** The process-facing view of the APRAM.

    Code running inside a simulated process uses these functions to touch the
    shared memory; each call performs an effect that suspends the process and
    hands control to the scheduler, which applies the operation atomically
    and charges one step to the process.  [record_*] calls log history events
    without consuming a step (they model the operation boundary, not a memory
    access).

    Calling any of these outside {!Sim.run} raises [Effect.Unhandled]. *)

type _ Effect.t +=
  | Access : Memory.op -> int Effect.t
  | Record : History.proto -> unit Effect.t
  | Self : int Effect.t

val read : int -> int
(** Atomic read of a shared cell; one step. *)

val write : int -> int -> unit
(** Atomic write; one step. *)

val cas : int -> int -> int -> bool
(** Atomic compare-and-swap; one step. *)

val self : unit -> int
(** The executing process's id (free; local knowledge). *)

val record_invoke : name:string -> args:int list -> unit
(** Log the start of a high-level operation for the history. *)

val record_return : int -> unit
(** Log the completion of the current high-level operation. *)
