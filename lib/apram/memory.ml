type t = int array

type op = Read of int | Write of int * int | Cas of int * int * int

let create n f = Array.init n f

let length = Array.length

let apply t = function
  | Read a -> t.(a)
  | Write (a, v) ->
    t.(a) <- v;
    v
  | Cas (a, expected, desired) ->
    if t.(a) = expected then begin
      t.(a) <- desired;
      1
    end
    else 0

let peek t a = t.(a)

let poke t a v = t.(a) <- v

let snapshot t = Array.copy t

let address_of_op = function Read a | Write (a, _) | Cas (a, _, _) -> a

let is_cas = function Cas _ -> true | Read _ | Write _ -> false

let pp_op ppf = function
  | Read a -> Format.fprintf ppf "read[%d]" a
  | Write (a, v) -> Format.fprintf ppf "write[%d]<-%d" a v
  | Cas (a, e, d) -> Format.fprintf ppf "cas[%d](%d->%d)" a e d
