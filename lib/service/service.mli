(** Connectivity-as-a-service: a long-running multi-domain DSU server
    with bounded ingestion, explicit backpressure, and a durable ack
    contract.

    {2 Request path}

    A client session {!submit}s an op; admission is governed by the
    configured {!admission} policy over that session's per-worker bounded
    {!Bounded_queue}:

    - [Reject] — fail fast with [Rejected Queue_full] when the queue is
      at capacity (the caller sees backpressure immediately);
    - [Shed_oldest] — always admit, displacing the oldest queued op when
      full; the victim receives a [Shed] response (displacement is never
      silent);
    - [Block t] — retry under bounded {!Repro_util.Backoff} until
      admitted or the admission deadline [t] expires
      ([Rejected Admission_deadline]).

    Worker domains drain FIFO batches and apply them through the bulk
    [unite_batch]/[same_set_batch] kernels where the layout has them
    (flat, packed), falling back to the uniform per-op dispatchers
    elsewhere.  An op carrying a [deadline_ns] that expired while queued
    is answered [Timed_out] without touching the structure.

    {2 Ack/durability contract}

    With a WAL attached, a worker forces the group commit {e before}
    acknowledging any op of a drained batch, and only acks if the
    committer is still alive to have performed it.  Therefore:

    - an acked ([Done]) unite is on disk — recovery must reproduce it
      (RPO = 0, measured by the serving chaos drill);
    - an op lost to a crash is lost {e unacknowledged} — admitted ops die
      with a crashed worker and their submitters never see a response;
    - every admitted op on a surviving path gets exactly one response:
      [Done], [Shed], [Timed_out], or [Failed] (the last when durable
      acking became impossible — dead committer — or at shutdown sweep).

    {2 Snapshots}

    With [snapshot_dir] set, an initial fuzzy snapshot is written
    {e synchronously} before serving begins (recovery always has a
    candidate) and a snapshotter domain checkpoints every
    [snapshot_interval] seconds, epoch-stamped against the WAL
    ({!Repro_durable.Fuzzy.of_restored}).

    Do not {!submit} concurrently with {!stop}: the shutdown sweep can
    miss a submission racing the final drain. *)

type op = Unite of int * int | Same_set of int * int | Find of int

val op_to_string : op -> string

type admission = Reject | Shed_oldest | Block of float  (** seconds *)

val admission_to_string : admission -> string
val admission_of_string : string -> admission option
(** ["reject"], ["shed-oldest"], ["block"] (= 5ms) or ["block:MS"]. *)

type reject_reason = Queue_full | Admission_deadline | Stopped

val reject_reason_to_string : reject_reason -> string

type value = V_unit | V_bool of bool | V_int of int
(** [V_unit] for unite, [V_bool] for same_set, [V_int] for find. *)

type outcome =
  | Done of value  (** applied and (with a WAL) durable *)
  | Shed  (** displaced by shed-oldest admission before being applied *)
  | Timed_out  (** missed its per-op deadline while queued *)
  | Failed of string  (** not applied durably; safe to resubmit *)

type response = {
  r_id : int;
  r_session : int;
  r_op : op;
  r_outcome : outcome;
  r_intended_ns : int;
  r_completed_ns : int;
}

type admit = Enqueued of int | Rejected of reject_reason
(** [Enqueued id]: admitted; a response for [id] will arrive on the
    session's completion lane (unless a crash takes it, unacked). *)

type config = {
  n : int;  (** universe size *)
  workers : int;  (** drain domains (= ingestion queues) *)
  clients : int;  (** completion lanes; sessions hash onto them *)
  queue_capacity : int;  (** per-worker ingestion bound *)
  batch : int;  (** max ops drained per lock acquisition *)
  admission : admission;
  plan : Dsu.Plan.t;  (** compaction/order/backoff knobs for the backend *)
  seed : int;
  snapshot_dir : string option;
  snapshot_interval : float;  (** seconds between fuzzy checkpoints *)
}

val default_config : config

type t

val create :
  ?backend:Repro_recover.Restore.restored ->
  ?wal:Repro_durable.Wal.writer ->
  ?on_worker_start:(int -> unit) ->
  ?kind:Repro_recover.Snapshot.kind ->
  config ->
  t
(** Build the backend (from [kind], default [Flat], under the config's
    plan; WAL [on_link] attached when [wal] is given), write the initial
    snapshot if configured, and spawn the worker and snapshotter domains.
    [backend] overrides construction — pass a recovered
    {!Repro_recover.Restore.restored} (with its own [on_link] re-attached
    via {!Repro_durable.Recovery.recover_files}) to resume serving after
    a crash.  The WAL writer remains owned by the caller and is {e not}
    closed by {!stop}.  [on_worker_start k] runs first on worker domain
    [k] — the chaos drill uses it to enroll workers for fault injection.
    @raise Invalid_argument on nonsensical knobs. *)

val submit :
  t -> ?intended_ns:int -> ?deadline_ns:int -> session:int -> op -> admit
(** [intended_ns] (default: now) is echoed in the response for open-loop
    latency accounting; [deadline_ns] (default: none) expires the op if
    still queued past that clock value.  Routing: session mod workers.
    @raise Invalid_argument if an element is outside [\[0, n)]. *)

val poll : ?max:int -> t -> session:int -> response list
(** Drain (up to [max]) responses from the session's completion lane.
    Lanes are shared by sessions congruent mod [clients]; give each
    polling domain its own lane. *)

val stop : t -> unit
(** Graceful shutdown: workers drain their queues and exit, the
    snapshotter stops, then any ops stranded in crashed workers' queues
    are answered [Failed "shutdown"], and a final WAL flush is forced.
    The WAL writer is not closed. *)

type health = {
  h_dead_workers : (int * (Repro_fault.Site.t * int)) list;
      (** worker index ↦ latched injected crash *)
  h_committer_dead : bool;
}

val health : t -> health
val healthy : t -> bool

val backend : t -> Repro_recover.Restore.restored
val kind : t -> Repro_recover.Snapshot.kind

val snapshot_files : t -> string list
(** Checkpoints written so far (sorted), for recovery. *)

type stats = {
  s_submitted : int;
  s_accepted : int;
  s_rejected_full : int;
  s_rejected_deadline : int;
  s_rejected_stopped : int;
  s_shed : int;
  s_timed_out : int;
  s_acked : int;
  s_failed : int;
  s_displaced : int;
      (** completion-lane displacements: always 0 (lanes are sized for the
          worst-case in-flight population); nonzero means a sizing bug *)
  s_batches : int;
  s_max_batch : int;
  s_max_depth : int;  (** max ingestion depth seen at submit *)
  s_snapshots : int;
}

val stats : t -> stats
