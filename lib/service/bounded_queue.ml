(* Bounded MPMC ring queue: a hybrid of the classic two-lock queue and a
   lock-free size probe.

   The Michael-Scott two-lock queue serializes producers on one mutex and
   consumers on another, so producers never contend with consumers.  The
   hybrid keeps that structure over a fixed ring but publishes occupancy
   through a single atomic [size] counter:

   - [size] is incremented only AFTER the slot write, under the enqueue
     lock; decremented only AFTER the slot is taken, under the dequeue
     lock.  The increment is the linearization point of enqueue, the
     decrement of dequeue.
   - The full/empty fast paths ([try_enqueue] on a full queue, [dequeue]
     on an empty one) are a single atomic load — no lock is touched, so a
     producer hammering a full queue (the backpressure case this queue
     exists for) cannot slow the consumers down, and vice versa.
   - Under the enqueue lock, [size] can only decrease concurrently
     (consumers), so a capacity re-check that passes stays valid until
     the publish; symmetrically under the dequeue lock [size] can only
     grow, so a non-empty re-check stays valid until the take.  That is
     the whole correctness argument — the CAS loop of a fully lock-free
     ring buys nothing here because each side is already serialized.

   Fault-injection sites ([Site.Queue_enq_cas] / [Site.Queue_deq_cas]) are
   hit BEFORE any lock acquisition: an injected [Crash] aborts the attempt
   with both mutexes free, so crash-stop chaos can never wedge the queue
   for the surviving domains. *)

module Site = Repro_fault.Site
module Fi = Repro_fault.Inject
module Backoff = Repro_util.Backoff
module Clock = Repro_obs.Clock

type 'a t = {
  slots : 'a option array;
  cap : int;
  mutable head : int;  (* next take index; guarded by deq_mu *)
  mutable tail : int;  (* next put index; guarded by enq_mu *)
  size : int Atomic.t;  (* published occupancy: the lock-free probe *)
  enq_mu : Mutex.t;
  deq_mu : Mutex.t;
}

let create cap =
  if cap < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    slots = Array.make cap None;
    cap;
    head = 0;
    tail = 0;
    size = Atomic.make 0;
    enq_mu = Mutex.create ();
    deq_mu = Mutex.create ();
  }

let capacity t = t.cap
let length t = Atomic.get t.size
let is_empty t = length t = 0

let[@inline] hit site = if Atomic.get Fi.armed then Fi.hit site

(* Put [v] into the ring; caller holds [enq_mu] and has room. *)
let[@inline] put t v =
  t.slots.(t.tail) <- Some v;
  t.tail <- (t.tail + 1) mod t.cap;
  Atomic.incr t.size

(* Take the head slot; caller holds [deq_mu] and has checked non-empty. *)
let[@inline] take t =
  let v = t.slots.(t.head) in
  t.slots.(t.head) <- None;
  t.head <- (t.head + 1) mod t.cap;
  Atomic.decr t.size;
  match v with Some v -> v | None -> assert false

(* The sites are hit after the occupancy probe and before the lock: a
   fast-fail on a full/empty queue is not an injection point (nothing was
   going to happen), an attempt that will take the lock is — and an
   injected crash there still leaves both mutexes free. *)
let try_enqueue t v =
  if Atomic.get t.size >= t.cap then false
  else begin
    hit Site.Queue_enq_cas;
    Mutex.lock t.enq_mu;
    let ok = Atomic.get t.size < t.cap in
    if ok then put t v;
    Mutex.unlock t.enq_mu;
    ok
  end

let enqueue_until t ~deadline_ns v =
  let rec go spins =
    if try_enqueue t v then true
    else if Clock.now_ns () >= deadline_ns then false
    else go (Backoff.once spins)
  in
  go Backoff.initial

let shed_enqueue t v =
  hit Site.Queue_enq_cas;
  Mutex.lock t.enq_mu;
  let dropped =
    if Atomic.get t.size >= t.cap then begin
      (* Full: displace the oldest.  Taking [deq_mu] inside [enq_mu] is
         the one place both locks nest; dequeue-side paths never take
         [enq_mu], so the order cannot invert. *)
      Mutex.lock t.deq_mu;
      let d = if Atomic.get t.size >= t.cap then Some (take t) else None in
      Mutex.unlock t.deq_mu;
      d
    end
    else None
  in
  (* Room is guaranteed now: under [enq_mu] no other producer runs, and
     consumers only shrink [size]. *)
  put t v;
  Mutex.unlock t.enq_mu;
  dropped

let dequeue_opt t =
  if Atomic.get t.size = 0 then None
  else begin
    hit Site.Queue_deq_cas;
    Mutex.lock t.deq_mu;
    let r = if Atomic.get t.size = 0 then None else Some (take t) in
    Mutex.unlock t.deq_mu;
    r
  end

let dequeue_batch t ~max =
  if max < 1 then invalid_arg "Bounded_queue.dequeue_batch: max must be >= 1";
  if Atomic.get t.size = 0 then []
  else begin
    hit Site.Queue_deq_cas;
    Mutex.lock t.deq_mu;
    let rec go k acc =
      if k = 0 || Atomic.get t.size = 0 then acc else go (k - 1) (take t :: acc)
    in
    let r = List.rev (go max []) in
    Mutex.unlock t.deq_mu;
    r
  end
