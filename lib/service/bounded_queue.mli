(** Bounded MPMC queue with explicit backpressure: the ingestion and
    completion lanes of {!Service}.

    A hybrid of the Michael-Scott two-lock queue (producers serialize on
    one mutex, consumers on another, so the two sides never contend) and
    a lock-free occupancy probe: a single atomic [size] counter,
    incremented after publish under the enqueue lock and decremented
    after take under the dequeue lock, makes the full/empty fast paths a
    single atomic load.  A producer spinning against a full queue — the
    backpressure case — never touches a lock and therefore never slows
    the consumers draining it.

    Admission is always explicit: {!try_enqueue} fails fast when full,
    {!enqueue_until} bounds the wait by a deadline, and {!shed_enqueue}
    always admits but hands back the displaced oldest element so the
    caller can answer its submitter — nothing is ever dropped silently.

    With {!Repro_fault.Inject} armed, every operation hits
    {!Repro_fault.Site.Queue_enq_cas} / {!Repro_fault.Site.Queue_deq_cas}
    {e before} acquiring any lock, so injected crash-stop cannot leave a
    mutex held. *)

type 'a t

val create : int -> 'a t
(** [create capacity].  @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Published occupancy: one atomic load, always in [0, capacity]. *)

val is_empty : 'a t -> bool

val try_enqueue : 'a t -> 'a -> bool
(** [false] iff the queue was full — the reject admission policy. *)

val enqueue_until : 'a t -> deadline_ns:int -> 'a -> bool
(** Retry {!try_enqueue} under {!Repro_util.Backoff} until it succeeds or
    {!Repro_obs.Clock.now_ns} passes [deadline_ns] — the block-with-
    deadline admission policy.  [false] iff the deadline expired. *)

val shed_enqueue : 'a t -> 'a -> 'a option
(** Always admits.  Returns [Some oldest] when the queue was full and the
    oldest element was displaced to make room — the shed-oldest admission
    policy; the caller owes the displaced element a response. *)

val dequeue_opt : 'a t -> 'a option

val dequeue_batch : 'a t -> max:int -> 'a list
(** Up to [max] elements, FIFO order, taken under one lock acquisition —
    the worker drain path.  @raise Invalid_argument if [max < 1]. *)
