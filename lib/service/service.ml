(* The connectivity server: bounded ingestion, batched drain, durable ack.

   Client sessions submit ops into per-worker bounded ingestion queues
   under an explicit admission policy; worker domains drain batches and
   apply them through the layouts' bulk kernels where available; when a
   WAL is attached, a group commit is forced BEFORE any op in the batch
   is acknowledged, so an acked unite is always on disk — that ordering
   is the whole RPO=0 argument, and the serving chaos drill measures it.

   Every admitted op gets exactly one response (Done, Shed, Timed_out or
   Failed) unless the worker holding it crashes, in which case it is lost
   {e unacknowledged} — the failure mode the contract permits. *)

module Queue = Bounded_queue
module Site = Repro_fault.Site
module Fi = Repro_fault.Inject
module Backoff = Repro_util.Backoff
module Clock = Repro_obs.Clock
module Metrics = Repro_obs.Metrics
module Wal = Repro_durable.Wal
module Fuzzy = Repro_durable.Fuzzy
module Restore = Repro_recover.Restore
module Rsnap = Repro_recover.Snapshot

type op = Unite of int * int | Same_set of int * int | Find of int

let op_to_string = function
  | Unite (x, y) -> Printf.sprintf "unite %d %d" x y
  | Same_set (x, y) -> Printf.sprintf "same_set %d %d" x y
  | Find x -> Printf.sprintf "find %d" x

type admission = Reject | Shed_oldest | Block of float

let admission_to_string = function
  | Reject -> "reject"
  | Shed_oldest -> "shed-oldest"
  | Block s -> Printf.sprintf "block:%g" (s *. 1e3)

let admission_of_string s =
  match String.split_on_char ':' s with
  | [ "reject" ] -> Some Reject
  | [ "shed-oldest" ] -> Some Shed_oldest
  | [ "block" ] -> Some (Block 0.005)
  | [ "block"; ms ] -> (
    match float_of_string_opt ms with
    | Some ms when ms > 0. -> Some (Block (ms /. 1e3))
    | _ -> None)
  | _ -> None

type reject_reason = Queue_full | Admission_deadline | Stopped

let reject_reason_to_string = function
  | Queue_full -> "queue-full"
  | Admission_deadline -> "admission-deadline"
  | Stopped -> "stopped"

type value = V_unit | V_bool of bool | V_int of int

type outcome =
  | Done of value
  | Shed
  | Timed_out
  | Failed of string

type request = {
  id : int;
  session : int;
  op : op;
  intended_ns : int;
  deadline_ns : int;  (* 0 = none *)
}

type response = {
  r_id : int;
  r_session : int;
  r_op : op;
  r_outcome : outcome;
  r_intended_ns : int;
  r_completed_ns : int;
}

type admit = Enqueued of int | Rejected of reject_reason

type config = {
  n : int;
  workers : int;
  clients : int;
  queue_capacity : int;
  batch : int;
  admission : admission;
  plan : Dsu.Plan.t;
  seed : int;
  snapshot_dir : string option;
  snapshot_interval : float;
}

let default_config =
  {
    n = 1 lsl 16;
    workers = 2;
    clients = 2;
    queue_capacity = 1024;
    batch = 64;
    admission = Reject;
    plan = Dsu.Plan.default;
    seed = 42;
    snapshot_dir = None;
    snapshot_interval = 0.05;
  }

type t = {
  cfg : config;
  backend : Restore.restored;
  wal : Wal.writer option;
  queues : request Queue.t array;
  completions : response Queue.t array;
  stopping : bool Atomic.t;
  mutable worker_handles : unit Domain.t list;
  mutable snapshotter : unit Domain.t option;
  worker_crash : (Site.t * int) option Atomic.t array;
  unhealthy : bool Atomic.t;  (* a worker refused to ack: wal dead *)
  next_id : int Atomic.t;
  submitted : int Atomic.t;
  accepted : int Atomic.t;
  rejected_full : int Atomic.t;
  rejected_deadline : int Atomic.t;
  rejected_stopped : int Atomic.t;
  shed : int Atomic.t;
  timed_out : int Atomic.t;
  acked : int Atomic.t;
  failed : int Atomic.t;
  displaced : int Atomic.t;  (* completion-lane displacement: 0 by sizing *)
  batches : int Atomic.t;
  max_batch : int Atomic.t;
  max_depth : int Atomic.t;
  snapshots_taken : int Atomic.t;
  m_depth : Metrics.gauge array;
  m_shed : Metrics.counter;
  m_rejected : Metrics.counter;
  m_acked : Metrics.counter;
  m_timed_out : Metrics.counter;
}

let backend t = t.backend
let kind t = Restore.kind t.backend

let note_max cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

let committer_dead t =
  match t.wal with
  | None -> false
  | Some w -> Wal.crashed w <> None || Wal.failed w <> None

type health = {
  h_dead_workers : (int * (Site.t * int)) list;
  h_committer_dead : bool;
}

let health t =
  let dead = ref [] in
  Array.iteri
    (fun k c ->
      match Atomic.get c with
      | Some cs -> dead := (k, cs) :: !dead
      | None -> ())
    t.worker_crash;
  {
    h_dead_workers = List.rev !dead;
    h_committer_dead = committer_dead t || Atomic.get t.unhealthy;
  }

let healthy t =
  let h = health t in
  h.h_dead_workers = [] && not h.h_committer_dead

(* ------------------------------------------------------------ responses *)

(* Completion lanes are sized in [create] for the worst-case in-flight
   population, so the shed path below is unreachable in a correctly-sized
   service; it exists (instead of a blocking push) so a worker can never
   be wedged by a client that stopped polling, and the [displaced]
   counter makes any sizing violation loud. *)
let push_completion t (rsp : response) =
  let lane = t.completions.(rsp.r_session mod Array.length t.completions) in
  match Queue.shed_enqueue lane rsp with
  | None -> ()
  | Some _ -> Atomic.incr t.displaced

let respond t (r : request) outcome =
  (match outcome with
  | Done _ ->
    Atomic.incr t.acked;
    Metrics.incr t.m_acked
  | Shed ->
    Atomic.incr t.shed;
    Metrics.incr t.m_shed
  | Timed_out ->
    Atomic.incr t.timed_out;
    Metrics.incr t.m_timed_out
  | Failed _ -> Atomic.incr t.failed);
  push_completion t
    {
      r_id = r.id;
      r_session = r.session;
      r_op = r.op;
      r_outcome = outcome;
      r_intended_ns = r.intended_ns;
      r_completed_ns = Clock.now_ns ();
    }

(* ---------------------------------------------------------- application *)

(* Apply a drained batch in FIFO order, fusing maximal consecutive runs of
   the same constructor through the bulk kernels where the layout has them
   (flat and packed); other layouts and singleton runs fall back to the
   uniform per-op dispatchers.  Returns [(request, value)] in FIFO order. *)
let apply t reqs =
  let out = ref [] in
  let flush_run run =
    match run with
    | [] -> ()
    | ({ op = Unite _; _ } :: _ as rs) ->
      let arr = Array.of_list rs in
      let get f r = match r.op with Unite (x, y) -> f x y | _ -> assert false in
      let xs = Array.map (get (fun x _ -> x)) arr in
      let ys = Array.map (get (fun _ y -> y)) arr in
      (match t.backend with
      | Restore.Flat d when Array.length arr > 1 -> Dsu.Native.unite_batch d xs ys
      | Restore.Packed d when Array.length arr > 1 ->
        Dsu.Packed.Native.unite_batch d xs ys
      | b ->
        for i = 0 to Array.length arr - 1 do
          Restore.unite b xs.(i) ys.(i)
        done);
      Array.iter (fun r -> out := (r, V_unit) :: !out) arr
    | ({ op = Same_set _; _ } :: _ as rs) ->
      let arr = Array.of_list rs in
      let get f r =
        match r.op with Same_set (x, y) -> f x y | _ -> assert false
      in
      let xs = Array.map (get (fun x _ -> x)) arr in
      let ys = Array.map (get (fun _ y -> y)) arr in
      let bs =
        match t.backend with
        | Restore.Flat d when Array.length arr > 1 ->
          Dsu.Native.same_set_batch d xs ys
        | Restore.Packed d when Array.length arr > 1 ->
          Dsu.Packed.Native.same_set_batch d xs ys
        | b -> Array.mapi (fun i x -> Restore.same_set b x ys.(i)) xs
      in
      Array.iteri (fun i r -> out := (r, V_bool bs.(i)) :: !out) arr
    | [ ({ op = Find x; _ } as r) ] ->
      out := (r, V_int (Restore.find t.backend x)) :: !out
    | { op = Find _; _ } :: _ -> assert false (* finds are never fused *)
  in
  let tag r =
    match r.op with Unite _ -> 0 | Same_set _ -> 1 | Find _ -> 2
  in
  let rec go run run_tag = function
    | [] -> flush_run (List.rev run)
    | r :: tl when tag r = run_tag && run_tag <> 2 -> go (r :: run) run_tag tl
    | r :: tl ->
      flush_run (List.rev run);
      go [ r ] (tag r) tl
  in
  (match reqs with [] -> () | r :: tl -> go [ r ] (tag r) tl);
  List.rev !out

let process_batch t reqs =
  Atomic.incr t.batches;
  note_max t.max_batch (List.length reqs);
  let now = Clock.now_ns () in
  (* ops that missed their deadline while queued time out before touching
     the structure — the client already gave up on them *)
  let live =
    List.filter
      (fun r ->
        if r.deadline_ns > 0 && now > r.deadline_ns then begin
          respond t r Timed_out;
          false
        end
        else true)
      reqs
  in
  let results = apply t live in
  (* The durability barrier: force the group commit and only ack if the
     committer is still alive to have performed it.  An ack therefore
     implies the batch's links are on disk — RPO = 0 by construction. *)
  let durable =
    match t.wal with
    | None -> true
    | Some w ->
      Wal.flush w;
      Wal.crashed w = None && Wal.failed w = None
  in
  if durable then List.iter (fun (r, v) -> respond t r (Done v)) results
  else begin
    Atomic.set t.unhealthy true;
    List.iter (fun (r, _) -> respond t r (Failed "wal-committer-dead")) results
  end;
  durable

let worker_loop t k =
  let q = t.queues.(k) in
  let idle = ref 0 in
  try
    let continue = ref true in
    while !continue do
      match Queue.dequeue_batch q ~max:t.cfg.batch with
      | [] ->
        if Atomic.get t.stopping then continue := false
        else begin
          incr idle;
          (* brief spin, then sleep: an idle worker must not steal the
             mutators' CPU (same reasoning as the WAL committer) *)
          if !idle < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002
        end
      | reqs ->
        idle := 0;
        if not (process_batch t reqs) then begin
          (* No durable acks are possible any more: fail the backlog so
             nothing rots unanswered, then leave. *)
          let rec drain () =
            match Queue.dequeue_opt q with
            | None -> ()
            | Some r ->
              respond t r (Failed "wal-committer-dead");
              drain ()
          in
          drain ();
          continue := false
        end
    done
  with Fi.Crashed (site, slot) ->
    (* Crash-stop: the partially-processed batch dies with the worker,
       unacknowledged — admitted-but-unacked loss, which the serving
       contract permits and the drill's RPO accounting verifies. *)
    Atomic.set t.worker_crash.(k) (Some (site, slot))

(* ----------------------------------------------------------- snapshotter *)

let write_snapshot t dir seq =
  let epoch = Option.map Wal.epoch t.wal in
  let cap = Fuzzy.of_restored ?epoch t.backend in
  Rsnap.write_file
    (Filename.concat dir (Printf.sprintf "snap-%03d.bin" seq))
    cap.Fuzzy.snapshot;
  Atomic.incr t.snapshots_taken

let snapshotter_loop t dir =
  let seq = ref 1 in
  (* snap-000 was written synchronously in [create] *)
  while not (Atomic.get t.stopping) do
    let until = Clock.wall_s () +. t.cfg.snapshot_interval in
    while (not (Atomic.get t.stopping)) && Clock.wall_s () < until do
      Unix.sleepf 0.001
    done;
    if not (Atomic.get t.stopping) then begin
      write_snapshot t dir !seq;
      incr seq
    end
  done

let snapshot_files t =
  match t.cfg.snapshot_dir with
  | None -> []
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".bin")
    |> List.sort compare
    |> List.map (Filename.concat dir)

(* -------------------------------------------------------------- lifecycle *)

let backend_of ~kind ~(plan : Dsu.Plan.t) ~seed ?on_link n =
  let policy = plan.Dsu.Plan.compaction in
  let memory_order = plan.Dsu.Plan.memory_order in
  let backoff = plan.Dsu.Plan.backoff in
  match (kind : Rsnap.kind) with
  | Rsnap.Flat ->
    Restore.Flat
      (Dsu.Native.create
         ~padded:(plan.Dsu.Plan.layout = Dsu.Plan.Padded)
         ~policy ~backoff ~memory_order ?on_link ~seed n)
  | Rsnap.Boxed -> Restore.Boxed (Dsu.Boxed.create ~policy ~backoff ?on_link ~seed n)
  | Rsnap.Growable ->
    let d =
      Dsu.Growable.create ~policy ~memory_order ?on_link ~seed ~capacity:n ()
    in
    (* pre-create the universe: make_set is not WAL-logged, so a recovered
       universe is the snapshot's (same convention as the durable drill) *)
    for _ = 1 to n do
      ignore (Dsu.Growable.make_set d)
    done;
    Restore.Growable d
  | Rsnap.Rank -> Restore.Rank (Dsu.Rank.Native.create ~memory_order ?on_link n)
  | Rsnap.Packed ->
    Restore.Packed (Dsu.Packed.Native.create ~policy ~backoff ~memory_order ?on_link n)

let validate_config cfg =
  if cfg.n < 2 then invalid_arg "Service.create: n must be >= 2";
  if cfg.workers < 1 then invalid_arg "Service.create: workers must be >= 1";
  if cfg.clients < 1 then invalid_arg "Service.create: clients must be >= 1";
  if cfg.queue_capacity < 1 then
    invalid_arg "Service.create: queue_capacity must be >= 1";
  if cfg.batch < 1 then invalid_arg "Service.create: batch must be >= 1";
  if cfg.snapshot_interval <= 0. then
    invalid_arg "Service.create: snapshot_interval must be positive"

let create ?backend ?wal ?on_worker_start ?(kind = Rsnap.Flat) cfg =
  validate_config cfg;
  let backend =
    match backend with
    | Some b -> b
    | None ->
      let on_link =
        Option.map (fun w -> fun ~child ~parent -> Wal.append w ~child ~parent) wal
      in
      backend_of ~kind ~plan:cfg.plan ~seed:cfg.seed ?on_link cfg.n
  in
  (* worst-case responses outstanding per lane: every admitted op of every
     worker (queued + one in-process batch) could route to one lane *)
  let lane_cap = (cfg.workers * (cfg.queue_capacity + cfg.batch)) + 8 in
  let t =
    {
      cfg;
      backend;
      wal;
      queues = Array.init cfg.workers (fun _ -> Queue.create cfg.queue_capacity);
      completions = Array.init cfg.clients (fun _ -> Queue.create lane_cap);
      stopping = Atomic.make false;
      worker_handles = [];
      snapshotter = None;
      worker_crash = Array.init cfg.workers (fun _ -> Atomic.make None);
      unhealthy = Atomic.make false;
      next_id = Atomic.make 0;
      submitted = Atomic.make 0;
      accepted = Atomic.make 0;
      rejected_full = Atomic.make 0;
      rejected_deadline = Atomic.make 0;
      rejected_stopped = Atomic.make 0;
      shed = Atomic.make 0;
      timed_out = Atomic.make 0;
      acked = Atomic.make 0;
      failed = Atomic.make 0;
      displaced = Atomic.make 0;
      batches = Atomic.make 0;
      max_batch = Atomic.make 0;
      max_depth = Atomic.make 0;
      snapshots_taken = Atomic.make 0;
      m_depth =
        Array.init cfg.workers (fun k ->
            Metrics.gauge
              ~help:"current ingestion queue depth"
              (Printf.sprintf "service_queue_%d_depth" k));
      m_shed = Metrics.counter ~help:"ops displaced by shed-oldest" "service_shed_total";
      m_rejected =
        Metrics.counter ~help:"submissions rejected at admission"
          "service_rejected_total";
      m_acked = Metrics.counter ~help:"ops acknowledged Done" "service_acked_total";
      m_timed_out =
        Metrics.counter ~help:"ops expired past their deadline"
          "service_timed_out_total";
    }
  in
  (* always leave at least one recovery candidate on disk before serving *)
  (match cfg.snapshot_dir with
  | None -> ()
  | Some dir ->
    write_snapshot t dir 0;
    t.snapshotter <- Some (Domain.spawn (fun () -> snapshotter_loop t dir)));
  t.worker_handles <-
    List.init cfg.workers (fun k ->
        Domain.spawn (fun () ->
            (match on_worker_start with None -> () | Some f -> f k);
            worker_loop t k));
  t

(* -------------------------------------------------------------- requests *)

let check_element t x =
  if x < 0 || x >= t.cfg.n then
    invalid_arg (Printf.sprintf "Service.submit: element %d outside [0, %d)" x t.cfg.n)

let submit t ?intended_ns ?(deadline_ns = 0) ~session op =
  (match op with
  | Unite (x, y) | Same_set (x, y) ->
    check_element t x;
    check_element t y
  | Find x -> check_element t x);
  Atomic.incr t.submitted;
  if Atomic.get t.stopping then begin
    Atomic.incr t.rejected_stopped;
    Metrics.incr t.m_rejected;
    Rejected Stopped
  end
  else begin
    let id = Atomic.fetch_and_add t.next_id 1 in
    let intended_ns =
      match intended_ns with Some ns -> ns | None -> Clock.now_ns ()
    in
    let req = { id; session; op; intended_ns; deadline_ns } in
    let qi = session mod t.cfg.workers in
    let q = t.queues.(qi) in
    let depth = Queue.length q in
    note_max t.max_depth depth;
    Metrics.set t.m_depth.(qi) depth;
    match t.cfg.admission with
    | Reject ->
      if Queue.try_enqueue q req then begin
        Atomic.incr t.accepted;
        Enqueued id
      end
      else begin
        Atomic.incr t.rejected_full;
        Metrics.incr t.m_rejected;
        Rejected Queue_full
      end
    | Shed_oldest -> (
      match Queue.shed_enqueue q req with
      | None ->
        Atomic.incr t.accepted;
        Enqueued id
      | Some victim ->
        Atomic.incr t.accepted;
        respond t victim Shed;
        Enqueued id)
    | Block timeout_s ->
      let deadline = Clock.now_ns () + int_of_float (timeout_s *. 1e9) in
      if Queue.enqueue_until q ~deadline_ns:deadline req then begin
        Atomic.incr t.accepted;
        Enqueued id
      end
      else begin
        Atomic.incr t.rejected_deadline;
        Metrics.incr t.m_rejected;
        Rejected Admission_deadline
      end
  end

let poll ?(max = max_int) t ~session =
  let lane = t.completions.(session mod t.cfg.clients) in
  if Queue.is_empty lane then [] else Queue.dequeue_batch lane ~max

(* ------------------------------------------------------------------ stop *)

let stop t =
  Atomic.set t.stopping true;
  List.iter Domain.join t.worker_handles;
  t.worker_handles <- [];
  (match t.snapshotter with
  | None -> ()
  | Some d ->
    Domain.join d;
    t.snapshotter <- None);
  (* Sweep the queues of crashed workers (and any enqueue that raced the
     drain-then-exit): every admitted op still gets its response. *)
  Array.iter
    (fun q ->
      let rec go () =
        match Queue.dequeue_opt q with
        | None -> ()
        | Some r ->
          respond t r (Failed "shutdown");
          go ()
      in
      go ())
    t.queues;
  match t.wal with None -> () | Some w -> Wal.flush w

(* ----------------------------------------------------------------- stats *)

type stats = {
  s_submitted : int;
  s_accepted : int;
  s_rejected_full : int;
  s_rejected_deadline : int;
  s_rejected_stopped : int;
  s_shed : int;
  s_timed_out : int;
  s_acked : int;
  s_failed : int;
  s_displaced : int;
  s_batches : int;
  s_max_batch : int;
  s_max_depth : int;
  s_snapshots : int;
}

let stats t =
  {
    s_submitted = Atomic.get t.submitted;
    s_accepted = Atomic.get t.accepted;
    s_rejected_full = Atomic.get t.rejected_full;
    s_rejected_deadline = Atomic.get t.rejected_deadline;
    s_rejected_stopped = Atomic.get t.rejected_stopped;
    s_shed = Atomic.get t.shed;
    s_timed_out = Atomic.get t.timed_out;
    s_acked = Atomic.get t.acked;
    s_failed = Atomic.get t.failed;
    s_displaced = Atomic.get t.displaced;
    s_batches = Atomic.get t.batches;
    s_max_batch = Atomic.get t.max_batch;
    s_max_depth = Atomic.get t.max_depth;
    s_snapshots = Atomic.get t.snapshots_taken;
  }
