let saturation = max_int / 2

let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 256

(* Saturating evaluation.  Closed forms handle the low levels (whose naive
   recursion is linear in [j], infeasible for the huge intermediate values
   the higher levels produce): A_0(j) = j+1, A_1(j) = j+2, A_2(j) = 2j+3.
   For k >= 3, A_k(j) >= A_3(j) >= 2^(j+2), so any j >= 61 saturates a
   63-bit integer immediately; the remaining recursion tree is tiny. *)
let rec ackermann k j =
  if k < 0 || j < 0 then invalid_arg "Alpha.ackermann: negative argument";
  if k = 0 then if j >= saturation - 1 then saturation else j + 1
  else if k = 1 then if j >= saturation - 2 then saturation else j + 2
  else if k = 2 then if j >= (saturation - 3) / 2 then saturation else (2 * j) + 3
  else if j >= 61 then saturation
  else begin
    match Hashtbl.find_opt tbl (k, j) with
    | Some v -> v
    | None ->
      let v =
        if j = 0 then ackermann (k - 1) 1
        else begin
          let inner = ackermann k (j - 1) in
          if inner >= saturation then saturation else ackermann (k - 1) inner
        end
      in
      Hashtbl.replace tbl (k, j) v;
      v
  end

let alpha n d =
  if n < 0 then invalid_arg "Alpha.alpha: negative n";
  if d < 0. then invalid_arg "Alpha.alpha: negative d";
  let dj =
    if d >= float_of_int saturation then saturation
    else int_of_float (Float.floor d)
  in
  let rec loop i = if ackermann i dj > n then i else loop (i + 1) in
  loop 1

let index i k =
  if i < 0 || k < 0 then invalid_arg "Alpha.index: negative argument";
  let rec loop j = if ackermann i j > k then j else loop (j + 1) in
  loop 0

let level ~d ~n:_ k j =
  let a_kd = alpha k d in
  let rec loop i =
    if i > a_kd then a_kd + 1
    else if ackermann i (index i k) > j then i
    else loop (i + 1)
  in
  loop 0

let floor_log2 x =
  if x < 1 then invalid_arg "Alpha.floor_log2: argument must be >= 1";
  let rec loop acc x = if x = 1 then acc else loop (acc + 1) (x lsr 1) in
  loop 0 x
