(** Bounded exponential backoff for CAS-contention retry loops.

    A failed {e link} CAS means another domain just made real progress on
    the same root, so immediately retrying mostly re-collides; spinning a
    short, exponentially growing, bounded number of [Domain.cpu_relax]
    iterations drains the burst without risking unbounded delay (the bound
    keeps the paper's wait-freedom analysis intact — backoff adds at most a
    constant factor per retry).

    The state is a plain [int] (the current spin count) so hot loops can
    thread it as an unboxed loop argument with zero allocation:

    {[
      let rec link spins =
        if cas ... then ()
        else link (Backoff.once spins)
      in
      link Backoff.initial
    ]} *)

val initial : int
(** Starting spin count ([8]). *)

val cap : int
(** Upper bound on the spin count ([512]); {!next} never exceeds it. *)

val spin : int -> unit
(** [spin k] executes [k] [Domain.cpu_relax] iterations. *)

val next : int -> int
(** [next k] is the doubled spin count, saturating at {!cap}. *)

val once : int -> int
(** [once k] = [spin k; next k] — back off, then return the next state. *)
