(** Minimal ASCII charts for the experiment reports: scatter/line plots of
    measured series against a predictor, so the harness can render
    figure-style output (the textual analogue of the plots a paper's
    evaluation section would contain) without any graphics dependency. *)

type series = { label : char; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** [render series] draws all series in one frame (distinct marker per
    series), with linearly scaled axes covering the data's bounding box and
    numeric tick labels on both axes.  Points that collide keep the marker
    of the last series drawn.  Width/height are the plot area in characters
    (defaults 60×16). *)

val render_single :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  (float * float) list -> string
(** One unlabeled series with marker ['*']. *)
