let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub: range outside the string";
  let table = Lazy.force table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string s = sub s ~pos:0 ~len:(String.length s)
