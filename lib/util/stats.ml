type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let pos = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile xs q =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted q

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile_sorted sorted 50.;
    p95 = percentile_sorted sorted 95.;
    p99 = percentile_sorted sorted 99.;
  }

let summarize_ints xs = summarize (Array.map float_of_int xs)

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let fn = float_of_int n in
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. fn in
  (slope, intercept)

let r_squared points =
  let slope, intercept = linear_fit points in
  let ys = Array.map snd points in
  let ym = mean ys in
  let ss_tot = Array.fold_left (fun acc y -> acc +. ((y -. ym) *. (y -. ym))) 0. ys in
  let ss_res =
    Array.fold_left
      (fun acc (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        acc +. (e *. e))
      0. points
  in
  if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f p95=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.median s.p95 s.p99 s.max
