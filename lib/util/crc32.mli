(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.

    Shared by the snapshot codec ({!Repro_recover.Snapshot}) and the
    write-ahead log ({!Repro_durable.Wal}) so both subsystems agree on one
    checksum and the WAL inspector can validate either artifact.  Values
    stay in the low 32 bits of an OCaml [int]. *)

val string : string -> int
(** CRC-32 of a whole string. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [s] starting at [pos].  @raise
    Invalid_argument when the range falls outside the string. *)
