(** The analysis rank of Section 4.

    Number the [n] elements from 1 to [n] consistent with the random total
    order.  The rank of element [x] (identified by its number) is
    [floor (lg n) - floor (lg (n - x + 1))]: element [n] has rank
    [floor (lg n)], elements [n-1] and [n-2] have rank [floor (lg n) - 1],
    and so on.  Ranks are monotone (not strictly) in element number.

    The rank is purely an analysis device — the algorithm never consults
    it — but the experiments of Section 4 (equal-rank ancestors, union-forest
    height) measure it directly. *)

val rank : n:int -> int -> int
(** [rank ~n x] is the rank of the element numbered [x], [1 <= x <= n]. *)

val max_rank : n:int -> int
(** [max_rank ~n] is [floor (lg n)], the rank of element [n]. *)

val count_with_rank : n:int -> int -> int
(** [count_with_rank ~n r] is the number of elements of rank [r]; useful to
    sanity-check the geometric decay of high ranks. *)
