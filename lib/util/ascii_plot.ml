type series = { label : char; points : (float * float) list }

let bounds series =
  let all = List.concat_map (fun s -> s.points) series in
  match all with
  | [] -> invalid_arg "Ascii_plot.render: no points"
  | (x0, y0) :: rest ->
    List.fold_left
      (fun (xmin, xmax, ymin, ymax) (x, y) ->
        (min xmin x, max xmax x, min ymin y, max ymax y))
      (x0, x0, y0, y0) rest

let render ?(width = 60) ?(height = 16) ?(x_label = "") ?(y_label = "") series =
  if width < 10 || height < 4 then invalid_arg "Ascii_plot.render: frame too small";
  let xmin, xmax, ymin, ymax = bounds series in
  (* Avoid zero-width ranges. *)
  let xspan = if xmax -. xmin > 0. then xmax -. xmin else 1. in
  let yspan = if ymax -. ymin > 0. then ymax -. ymin else 1. in
  let grid = Array.make_matrix height width ' ' in
  let place label (x, y) =
    let col =
      int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
    in
    let row =
      height - 1
      - int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
    in
    grid.(row).(col) <- label
  in
  List.iter (fun s -> List.iter (place s.label) s.points) series;
  let buf = Buffer.create ((width + 16) * (height + 3)) in
  if y_label <> "" then begin
    Buffer.add_string buf y_label;
    Buffer.add_char buf '\n'
  end;
  let y_tick row =
    (* Value corresponding to a grid row. *)
    ymin +. (float_of_int (height - 1 - row) /. float_of_int (height - 1) *. yspan)
  in
  Array.iteri
    (fun row line ->
      let tick =
        if row = 0 || row = height - 1 || row = height / 2 then
          Printf.sprintf "%10.2f |" (y_tick row)
        else Printf.sprintf "%10s |" ""
      in
      Buffer.add_string buf tick;
      Array.iter (Buffer.add_char buf) line;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s  %-*.2f%*.2f\n" "" (width - 8) xmin 8 xmax);
  if x_label <> "" then
    Buffer.add_string buf (Printf.sprintf "%10s  %s\n" "" x_label);
  Buffer.contents buf

let render_single ?width ?height ?x_label ?y_label points =
  render ?width ?height ?x_label ?y_label [ { label = '*'; points } ]
