/* Sequentially consistent word accesses into an OCaml [int array].
 *
 * An [int array] is a contiguous block of tagged immediates (no float
 * unboxing applies: the array is created from ints only), so every element
 * occupies exactly one machine word and holds no pointer.  That makes the
 * three primitives below safe:
 *
 *   - the GC never needs a write barrier for immediates, so bypassing
 *     caml_modify is correct;
 *   - word-aligned word-sized accesses cannot tear, so a concurrent marker
 *     always reads a valid tagged int;
 *   - the arguments and results are immediates, so the stubs allocate
 *     nothing and are declared [@@noalloc] on the OCaml side.
 *
 * Tagged representation is preserved end-to-end: the CAS compares and
 * stores *tagged* words, which is exactly the comparison by value OCaml's
 * [Atomic.compare_and_set] performs on ints.  All operations are
 * __ATOMIC_SEQ_CST, matching the guarantees of [Atomic] that the rest of
 * the code base (and the paper's Cas-based pseudocode) assumes. */

#include <caml/mlvalues.h>

CAMLprim value dsu_flat_atomic_get(value arr, value idx)
{
  return __atomic_load_n(&Field(arr, Long_val(idx)), __ATOMIC_SEQ_CST);
}

CAMLprim value dsu_flat_atomic_set(value arr, value idx, value v)
{
  __atomic_store_n(&Field(arr, Long_val(idx)), v, __ATOMIC_SEQ_CST);
  return Val_unit;
}

CAMLprim value dsu_flat_atomic_cas(value arr, value idx, value expected,
                                   value desired)
{
  value e = expected;
  int ok = __atomic_compare_exchange_n(&Field(arr, Long_val(idx)), &e,
                                       desired, 0, __ATOMIC_SEQ_CST,
                                       __ATOMIC_SEQ_CST);
  return Val_bool(ok);
}

CAMLprim value dsu_flat_atomic_fetch_add(value arr, value idx, value delta)
{
  /* On tagged ints, adding the *untagged* delta shifted left by one adds
   * [delta] to the represented value while keeping the tag bit intact:
   * (2a+1) + 2d = 2(a+d)+1. */
  return __atomic_fetch_add(&Field(arr, Long_val(idx)),
                            ((value)Long_val(delta)) << 1, __ATOMIC_SEQ_CST);
}
