/* Sequentially consistent word accesses into an OCaml [int array].
 *
 * An [int array] is a contiguous block of tagged immediates (no float
 * unboxing applies: the array is created from ints only), so every element
 * occupies exactly one machine word and holds no pointer.  That makes the
 * three primitives below safe:
 *
 *   - the GC never needs a write barrier for immediates, so bypassing
 *     caml_modify is correct;
 *   - word-aligned word-sized accesses cannot tear, so a concurrent marker
 *     always reads a valid tagged int;
 *   - the arguments and results are immediates, so the stubs allocate
 *     nothing and are declared [@@noalloc] on the OCaml side.
 *
 * Tagged representation is preserved end-to-end: the CAS compares and
 * stores *tagged* words, which is exactly the comparison by value OCaml's
 * [Atomic.compare_and_set] performs on ints.  The default primitives are
 * __ATOMIC_SEQ_CST, matching the guarantees of [Atomic] that the rest of
 * the code base (and the paper's Cas-based pseudocode) assumes; the
 * explicitly weaker variants further down carry their own ordering
 * arguments. */

#include <caml/mlvalues.h>

CAMLprim value dsu_flat_atomic_get(value arr, value idx)
{
  return __atomic_load_n(&Field(arr, Long_val(idx)), __ATOMIC_SEQ_CST);
}

CAMLprim value dsu_flat_atomic_set(value arr, value idx, value v)
{
  __atomic_store_n(&Field(arr, Long_val(idx)), v, __ATOMIC_SEQ_CST);
  return Val_unit;
}

CAMLprim value dsu_flat_atomic_cas(value arr, value idx, value expected,
                                   value desired)
{
  value e = expected;
  int ok = __atomic_compare_exchange_n(&Field(arr, Long_val(idx)), &e,
                                       desired, 0, __ATOMIC_SEQ_CST,
                                       __ATOMIC_SEQ_CST);
  return Val_bool(ok);
}

CAMLprim value dsu_flat_atomic_fetch_add(value arr, value idx, value delta)
{
  /* On tagged ints, adding the *untagged* delta shifted left by one adds
   * [delta] to the represented value while keeping the tag bit intact:
   * (2a+1) + 2d = 2(a+d)+1. */
  return __atomic_fetch_add(&Field(arr, Long_val(idx)),
                            ((value)Long_val(delta)) << 1, __ATOMIC_SEQ_CST);
}

/* Relaxed / acquire / release variants for the memory-order-tuned hot
 * path.  The same safety argument applies verbatim — immediates only,
 * word-aligned word-sized accesses, no GC barrier, no allocation — because
 * the argument depends on the *width and alignment* of the access, not on
 * its ordering.  What the weaker orders change is only visibility:
 *
 *   - an ACQUIRE parent load synchronises with the RELEASE/SEQ_CST store
 *     or CAS that published the parent, so everything that
 *     happened-before the link is visible after the load;
 *   - a RELAXED load may observe any previously stored value, i.e. it is
 *     the C-level twin of the plain OCaml load in [unsafe_load] — the DSU
 *     tolerates this because any formerly valid parent is still an
 *     ancestor (paper Lemma 3.1) and every write is re-validated by CAS;
 *   - a RELEASE store publishes all prior writes to whoever
 *     acquire-loads the stored value. */

CAMLprim value dsu_flat_atomic_get_acquire(value arr, value idx)
{
  return __atomic_load_n(&Field(arr, Long_val(idx)), __ATOMIC_ACQUIRE);
}

CAMLprim value dsu_flat_atomic_get_relaxed(value arr, value idx)
{
  return __atomic_load_n(&Field(arr, Long_val(idx)), __ATOMIC_RELAXED);
}

CAMLprim value dsu_flat_atomic_set_release(value arr, value idx, value v)
{
  __atomic_store_n(&Field(arr, Long_val(idx)), v, __ATOMIC_RELEASE);
  return Val_unit;
}

/* Weak CAS: may fail spuriously (return false with the cell unchanged even
 * though it held [expected]).  ACQ_REL on success — the successful exchange
 * both publishes the linker's prior writes and acquires the previous
 * linker's — and ACQUIRE on failure, so the observed current value is at
 * least as fresh as an acquire load.  Callers must treat a false return
 * exactly as a failed strong CAS whose retry policy tolerates "no progress
 * this try" (the DSU's one-try/two-try splitting does: a spurious failure
 * is simply a failed try). */
CAMLprim value dsu_flat_atomic_cas_weak(value arr, value idx, value expected,
                                        value desired)
{
  value e = expected;
  int ok = __atomic_compare_exchange_n(&Field(arr, Long_val(idx)), &e,
                                       desired, 1, __ATOMIC_ACQ_REL,
                                       __ATOMIC_ACQUIRE);
  return Val_bool(ok);
}

/* Read-prefetch of cell [idx] into all cache levels.  Purely a hint: no
 * memory access is architecturally performed, so it cannot fault, tear or
 * race — safe on any address inside the array block. */
CAMLprim value dsu_flat_prefetch(value arr, value idx)
{
#ifdef __GNUC__
  __builtin_prefetch((const void *)&Field(arr, Long_val(idx)), 0, 3);
#endif
  return Val_unit;
}
