(* C primitives over an [int array]; see flat_atomic_stubs.c for the safety
   argument (immediates only, word-aligned, no GC barrier needed). *)
external atomic_get : int array -> int -> int = "dsu_flat_atomic_get"
  [@@noalloc]

external atomic_set : int array -> int -> int -> unit = "dsu_flat_atomic_set"
  [@@noalloc]

external atomic_cas : int array -> int -> int -> int -> bool
  = "dsu_flat_atomic_cas"
  [@@noalloc]

external atomic_fetch_add : int array -> int -> int -> int
  = "dsu_flat_atomic_fetch_add"
  [@@noalloc]

external atomic_get_acquire : int array -> int -> int
  = "dsu_flat_atomic_get_acquire"
  [@@noalloc]

external atomic_get_relaxed : int array -> int -> int
  = "dsu_flat_atomic_get_relaxed"
  [@@noalloc]

external atomic_set_release : int array -> int -> int -> unit
  = "dsu_flat_atomic_set_release"
  [@@noalloc]

external atomic_cas_weak : int array -> int -> int -> int -> bool
  = "dsu_flat_atomic_cas_weak"
  [@@noalloc]

external atomic_prefetch : int array -> int -> unit = "dsu_flat_prefetch"
  [@@noalloc]

(* 8 words = 64 bytes on 64-bit targets: one logical cell per cache line in
   padded mode. *)
let pad_shift = 3

type t = { data : int array; shift : int; length : int }

let make ?(padded = false) n f =
  if n < 0 then invalid_arg "Flat_atomic_array.make: negative length";
  let shift = if padded then pad_shift else 0 in
  let data = Array.make (n lsl shift) 0 in
  for i = 0 to n - 1 do
    Array.unsafe_set data (i lsl shift) (f i)
  done;
  { data; shift; length = n }

let length t = t.length
let padded t = t.shift <> 0

let check t i op =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Flat_atomic_array.%s: index %d out of bounds [0, %d)" op i t.length)

let unsafe_get t i = atomic_get t.data (i lsl t.shift)

(* A plain (non-seq-cst) load compiled to a single inline [mov] — no C
   call.  Memory-safe on immediates (word-sized aligned loads cannot
   tear), but a racing read may observe a stale value; use only where the
   algorithm tolerates staleness (the DSU's parent reads: any formerly
   valid parent is still an ancestor, and every write is re-validated by
   CAS). *)
let unsafe_load t i = Array.unsafe_get t.data (i lsl t.shift)
let unsafe_set t i v = atomic_set t.data (i lsl t.shift) v
let unsafe_cas t i expected desired = atomic_cas t.data (i lsl t.shift) expected desired
let unsafe_fetch_add t i delta = atomic_fetch_add t.data (i lsl t.shift) delta

(* Explicit weaker orders.  Same width/alignment safety argument as above;
   see flat_atomic_stubs.c for the per-order visibility contracts. *)
let unsafe_get_acquire t i = atomic_get_acquire t.data (i lsl t.shift)
let unsafe_get_relaxed t i = atomic_get_relaxed t.data (i lsl t.shift)
let unsafe_set_release t i v = atomic_set_release t.data (i lsl t.shift) v

let unsafe_cas_weak t i expected desired =
  atomic_cas_weak t.data (i lsl t.shift) expected desired

let unsafe_prefetch t i = atomic_prefetch t.data (i lsl t.shift)

let get t i =
  check t i "get";
  unsafe_get t i

let set t i v =
  check t i "set";
  unsafe_set t i v

let cas t i expected desired =
  check t i "cas";
  unsafe_cas t i expected desired

let fetch_add t i delta =
  check t i "fetch_add";
  unsafe_fetch_add t i delta

let get_acquire t i =
  check t i "get_acquire";
  unsafe_get_acquire t i

let get_relaxed t i =
  check t i "get_relaxed";
  unsafe_get_relaxed t i

let set_release t i v =
  check t i "set_release";
  unsafe_set_release t i v

let cas_weak t i expected desired =
  check t i "cas_weak";
  unsafe_cas_weak t i expected desired

(* Prefetch is a pure hint, so the checked variant silently ignores
   out-of-range indices instead of raising: batch kernels prefetch a fixed
   distance ahead of the element they are about to validate. *)
let prefetch t i = if i >= 0 && i < t.length then unsafe_prefetch t i

(* Acquire loads: each cell read synchronises with the CAS/store that
   published it, so the snapshot sees fully published links (never a value
   "from before" the write that made it reachable).  Still not a consistent
   cut under concurrent writers. *)
let snapshot t =
  let shift = t.shift and data = t.data in
  Array.init t.length (fun i -> atomic_get_acquire data (i lsl shift))
