(* Bounded exponential backoff for CAS contention, int-only so retry loops
   can thread the state as an unboxed loop argument. *)

let initial = 8
let cap = 512

let spin k =
  for _ = 1 to k do
    Domain.cpu_relax ()
  done

let next k = if k >= cap then cap else k * 2

let once k =
  spin k;
  next k
