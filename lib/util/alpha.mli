(** Ackermann's function and its functional inverse, as defined in Section 2
    of the paper, plus the level/index machinery of Section 5.

    The paper's definition: [A 0 j = j + 1], [A k 0 = A (k-1) 1] for [k > 0],
    and [A k j = A (k-1) (A k (j-1))] for [k, j > 0].  For non-negative
    integer [n] and non-negative real [d],
    [alpha n d = min {i > 0 | A i (floor d) > n}]. *)

val ackermann : int -> int -> int
(** [ackermann k j] is [A_k(j)], saturating at [max_int / 2] (values beyond
    that threshold are astronomically large and are treated as infinite;
    saturation preserves all comparisons against realistic [n]). *)

val alpha : int -> float -> int
(** [alpha n d] is the paper's two-parameter inverse Ackermann
    [min {i > 0 | A_i(floor d) > n}].  Requires [n >= 0] and [d >= 0.]. *)

val index : int -> int -> int
(** [index i k] is the paper's index function
    [b(i, k) = min {j >= 0 | A_i(j) > k}]. *)

val level : d:float -> n:int -> int -> int -> int
(** [level ~d ~n k j] is the paper's level function
    [a(k, j) = min ({alpha(k, d) + 1} U {i <= alpha(k, d) | A_i(b(i, k)) > j})].
    Used by tests that exercise the Section 5 potential-function machinery;
    [n] is accepted for interface symmetry and unused by the definition. *)

val floor_log2 : int -> int
(** [floor_log2 x] is [floor (lg x)] for [x >= 1]. *)
