type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into the four xoshiro words, and to
   derive split streams. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let state = ref seed64 in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (int64 t)

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let rec int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let r = bits30 t in
    let v = r mod bound in
    if r - v + (bound - 1) < 1 lsl 30 then v else int t bound
  end
  else begin
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else int t bound
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits53 *. 0x1p-53

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
