(** Plain-text table rendering for the experiment reports.  Every experiment
    in the bench harness prints its results through this module so the output
    has a single consistent shape that EXPERIMENTS.md can quote directly. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with the given column headers.  Numeric-looking cells are right
    aligned by default; override with [~aligns]. *)

val create_aligned : headers:string list -> aligns:align list -> t

val add_row : t -> string list -> unit
(** Rows must have exactly as many cells as there are headers. *)

val add_rule : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
val pp : Format.formatter -> t -> unit

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> string
(** Two-decimal ratio rendered with a trailing [x], e.g. ["3.20x"]. *)
