let rank ~n x =
  if n < 1 then invalid_arg "Rank.rank: n must be >= 1";
  if x < 1 || x > n then invalid_arg "Rank.rank: element out of range";
  Alpha.floor_log2 n - Alpha.floor_log2 (n - x + 1)

let max_rank ~n = Alpha.floor_log2 n

let count_with_rank ~n r =
  if r < 0 || r > max_rank ~n then 0
  else begin
    (* Elements x with floor(lg (n - x + 1)) = floor(lg n) - r; writing
       y = n - x + 1, y ranges over [2^k, 2^(k+1)) intersected with [1, n]
       where k = floor(lg n) - r. *)
    let k = Alpha.floor_log2 n - r in
    let lo = 1 lsl k in
    let hi = min n ((1 lsl (k + 1)) - 1) in
    if hi < lo then 0 else hi - lo + 1
  end
