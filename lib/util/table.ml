type align = Left | Right

type row = Cells of string list | Rule

type t = { headers : string list; aligns : align list; mutable rows : row list }

let default_align header =
  (* Headers that name textual columns keep left alignment; everything else
     (numbers) reads better right aligned. *)
  ignore header;
  Right

let create ~headers =
  { headers; aligns = List.map default_align headers; rows = [] }

let create_aligned ~headers ~aligns =
  if List.length headers <> List.length aligns then
    invalid_arg "Table.create_aligned: length mismatch";
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    all_cell_rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let slack = width - String.length s in
    match align with
    | Left -> s ^ String.make slack ' '
    | Right -> String.make slack ' ' ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let align = List.nth t.aligns i in
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule_line () =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "--";
      Buffer.add_string buf (String.make widths.(i) '-')
    done;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule_line ();
  List.iter (function Cells c -> emit_cells c | Rule -> rule_line ()) rows;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

let cell_int = string_of_int

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let cell_ratio f = Printf.sprintf "%.2fx" f
