(** Integer-keyed frequency counts, used to report distributions such as
    find-path lengths and node depths. *)

type t

val create : unit -> t
val add : t -> int -> unit
val add_many : t -> int -> int -> unit
(** [add_many t key k] records [k] occurrences of [key]. *)

val count : t -> int -> int
val total : t -> int
val keys : t -> int list
(** Sorted list of keys with non-zero count. *)

val max_key : t -> int option
val mean : t -> float
val to_sorted_assoc : t -> (int * int) list
val pp : Format.formatter -> t -> unit
(** One line per key: [key: count  bar]. *)
