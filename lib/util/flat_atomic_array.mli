(** A flat array of atomically accessed integers.

    Unlike {!Atomic_array}, which wraps [int Atomic.t array] (one separately
    boxed heap block per cell, so every access pays a double indirection),
    this stores all cells contiguously in a single [int array] and performs
    sequentially consistent loads, stores and compare-and-swaps through C
    stubs built on the [__atomic] builtins.  This matches the paper's machine
    model — node [i]'s parent is word [i] of one shared array, and every
    link/splitting step is a single-word [Cas] — and restores spatial
    locality to the [find] hot path.

    Safety: cells hold immediates only, so no GC write barrier is required
    and word-sized aligned accesses cannot tear; see flat_atomic_stubs.c.

    With [~padded:true] each logical cell occupies its own 64-byte cache
    line (stride 8 words), for false-sharing ablation; indices are unchanged,
    only the memory footprint grows 8x. *)

type t

val make : ?padded:bool -> int -> (int -> int) -> t
(** [make n f] creates an array of length [n] with cell [i] holding [f i].
    [padded] (default [false]) gives every cell its own cache line.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int

val padded : t -> bool
(** Whether the array was created with [~padded:true]. *)

val get : t -> int -> int
(** Atomic (seq_cst) load.  @raise Invalid_argument on out-of-bounds. *)

val set : t -> int -> int -> unit
(** Atomic (seq_cst) store.  @raise Invalid_argument on out-of-bounds. *)

val cas : t -> int -> int -> int -> bool
(** [cas t i expected desired] is a single-word compare-and-swap on cell
    [i].  @raise Invalid_argument on out-of-bounds. *)

val fetch_add : t -> int -> int -> int
(** [fetch_add t i delta] atomically adds [delta] to cell [i] and returns
    the previous value.  @raise Invalid_argument on out-of-bounds. *)

(** {2 Explicit memory orders}

    Weaker-than-seq-cst accesses for the tuned DSU hot path.  All of them
    share the seq-cst primitives' memory-safety argument (immediates only,
    word-aligned word-sized accesses: no tearing, no GC barrier); what
    changes is only the visibility contract, documented per function.  See
    flat_atomic_stubs.c and docs/PERFORMANCE.md ("Memory model &
    ordering"). *)

val get_acquire : t -> int -> int
(** Acquire load: synchronises with the store/CAS that published the read
    value, so everything that happened-before that write is visible after
    the load.  Sufficient for parent reads — the DSU only needs to see a
    value that {e was} the cell's content, plus the writes the linker
    published before installing it.
    @raise Invalid_argument on out-of-bounds. *)

val get_relaxed : t -> int -> int
(** Relaxed atomic load: no ordering at all, the C-level twin of
    {!unsafe_load}'s plain read.  May observe stale values; callers must
    tolerate staleness (a stale parent is still an ancestor and every
    write is re-validated by CAS).
    @raise Invalid_argument on out-of-bounds. *)

val set_release : t -> int -> int -> unit
(** Release store: publishes all program-order-prior writes to any thread
    that acquire-loads the stored value.
    @raise Invalid_argument on out-of-bounds. *)

val cas_weak : t -> int -> int -> int -> bool
(** [cas_weak t i expected desired]: compare-and-swap that {e may fail
    spuriously} — return [false] with the cell unchanged even though it
    held [expected].  Acq_rel on success, acquire on failure.  Use only
    where a failed try needs no distinct handling from a lost race, e.g.
    the DSU's one-try/two-try splitting (a spurious failure is exactly a
    failed try, Algorithms 4/5 allow it).
    @raise Invalid_argument on out-of-bounds. *)

val prefetch : t -> int -> unit
(** Hint the hardware to pull cell [i] into cache (read intent).  Purely
    advisory — never faults and performs no architectural memory access.
    Out-of-range indices are silently ignored (no exception): batch
    kernels prefetch ahead of validation. *)

val unsafe_load : t -> int -> int
(** Unchecked {e plain} load — a single inline memory read, no C call and
    no fence.  Memory-safe (immediates cannot tear) but racing reads may
    return stale values; callers must tolerate staleness the way the DSU
    does (a stale parent is still an ancestor; CAS re-validates writes).
    Prefer {!get}/{!unsafe_get} unless the load is on a measured hot
    path. *)

val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit
val unsafe_cas : t -> int -> int -> int -> bool
val unsafe_fetch_add : t -> int -> int -> int
val unsafe_get_acquire : t -> int -> int
val unsafe_get_relaxed : t -> int -> int
val unsafe_set_release : t -> int -> int -> unit
val unsafe_cas_weak : t -> int -> int -> int -> bool
val unsafe_prefetch : t -> int -> unit
(** Unchecked variants for hot paths whose indices are already validated
    (the DSU checks node arguments at operation entry, and every parent
    value is in range by construction). *)

val snapshot : t -> int array
(** Per-cell {e acquire} loads collected into a plain array: each cell
    value read synchronises with the store/CAS that published it, so a
    snapshotted link is fully published (its priority/metadata writes are
    visible too) regardless of which memory-order mode produced it.  Still
    not a consistent cut under concurrent writers; intended for quiescent
    inspection. *)
