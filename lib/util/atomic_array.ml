type t = int Atomic.t array

let make n f = Array.init n (fun i -> Atomic.make (f i))

let length = Array.length

let get t i = Atomic.get t.(i)

let set t i v = Atomic.set t.(i) v

let cas t i expected desired = Atomic.compare_and_set t.(i) expected desired

let snapshot t = Array.map Atomic.get t
