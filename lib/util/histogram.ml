type t = { counts : (int, int) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 64; total = 0 }

let add_many t key k =
  if k < 0 then invalid_arg "Histogram.add_many: negative count";
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key (cur + k);
  t.total <- t.total + k

let add t key = add_many t key 1

let count t key = Option.value ~default:0 (Hashtbl.find_opt t.counts key)

let total t = t.total

let keys t =
  Hashtbl.fold (fun k c acc -> if c > 0 then k :: acc else acc) t.counts []
  |> List.sort compare

let max_key t =
  match keys t with [] -> None | ks -> Some (List.fold_left max min_int ks)

let mean t =
  if t.total = 0 then 0.
  else begin
    let s = Hashtbl.fold (fun k c acc -> acc + (k * c)) t.counts 0 in
    float_of_int s /. float_of_int t.total
  end

let to_sorted_assoc t = List.map (fun k -> (k, count t k)) (keys t)

let pp ppf t =
  let assoc = to_sorted_assoc t in
  let width = List.fold_left (fun acc (_, c) -> max acc c) 1 assoc in
  List.iter
    (fun (k, c) ->
      let bar = String.make (max 1 (c * 40 / width)) '#' in
      Format.fprintf ppf "%6d: %8d %s@." k c bar)
    assoc
