(** An array of atomically accessed integers.

    OCaml 5.1 has no flat atomic array, so this wraps [int Atomic.t array].
    The extra indirection costs a constant factor in native benchmarks and is
    invisible to the simulator-based work measurements; see DESIGN.md.  All
    operations are sequentially consistent, inheriting [Atomic]'s guarantees. *)

type t

val make : int -> (int -> int) -> t
(** [make n f] creates an array of length [n] with cell [i] holding [f i]. *)

val length : t -> int

val get : t -> int -> int
(** Atomic load. *)

val set : t -> int -> int -> unit
(** Atomic store. *)

val cas : t -> int -> int -> int -> bool
(** [cas t i expected desired] is a single-word compare-and-swap on cell
    [i]. *)

val snapshot : t -> int array
(** Per-cell atomic reads collected into a plain array.  Not a consistent
    snapshot under concurrent writers; intended for quiescent inspection. *)
