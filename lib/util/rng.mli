(** Deterministic, splittable pseudo-random number generation.

    The library never uses the global [Random] state: every randomized
    component takes an explicit generator so that experiments and tests are
    reproducible from a single integer seed.  The implementation is
    xoshiro256** seeded through SplitMix64, following the reference
    construction of Blackman and Vigna. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Distinct seeds
    give statistically independent streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same stream
    as [t] from this point on. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child do not overlap for any practical horizon; used to
    hand independent generators to simulated processes. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** Next 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)
