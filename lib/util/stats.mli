(** Small statistics toolkit for the experiment harness: summary statistics,
    percentiles, and least-squares fits used to compare measured growth
    against the paper's asymptotic claims. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Summary statistics of a non-empty sample. *)

val summarize_ints : int array -> summary

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs q] for [q] in [0, 100], with linear interpolation between
    order statistics.  [xs] need not be sorted. *)

val linear_fit : (float * float) array -> float * float
(** [linear_fit points] is [(slope, intercept)] of the least-squares line
    through [points].  Used to fit, e.g., forest height against [lg n].
    Requires at least two distinct x values. *)

val r_squared : (float * float) array -> float
(** Coefficient of determination of the least-squares fit. *)

val pp_summary : Format.formatter -> summary -> unit
