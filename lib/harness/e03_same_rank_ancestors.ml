(** E3 — Corollary 4.1.1: for any node, the expected number of union-forest
    ancestors with the same rank is O(1) (the proof gives <= 2).  The rank
    of the element numbered x (in the random order) is
    floor(lg n) - floor(lg (n - x + 1)) — see {!Repro_util.Rank}. *)

module Table = Repro_util.Table
module Stats = Repro_util.Stats

let measure ~n ~seed =
  let links = ref [] in
  let d =
    Dsu.Native.create ~seed
      ~on_link:(fun ~child ~parent -> links := (child, parent) :: !links)
      n
  in
  let rng = Repro_util.Rng.create (seed * 7) in
  Workload.Op.run_native d (Workload.Random_mix.spanning_unites ~rng ~n);
  let f = Forest.of_links ~n !links in
  let rank_of i = Repro_util.Rank.rank ~n (Dsu.Native.id d i + 1) in
  let counts =
    Array.init n (fun i ->
        let r = rank_of i in
        List.length (List.filter (fun a -> rank_of a = r) (Forest.ancestors f i)))
  in
  Stats.summarize_ints counts

let run ppf =
  let table =
    Table.create
      ~headers:[ "n"; "mean same-rank ancestors"; "p99"; "max"; "bound (expected)" ]
  in
  List.iter
    (fun n ->
      let s = measure ~n ~seed:(n + 5) in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float s.Stats.mean;
          Table.cell_float s.Stats.p99;
          Table.cell_float ~decimals:0 s.Stats.max;
          "2.00";
        ])
    [ 1 lsl 8; 1 lsl 10; 1 lsl 12; 1 lsl 14 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: the mean stays below 2 at every n (the geometric-series \
     bound of Corollary 4.1.1); the max is small because deviations decay \
     exponentially.@."

let experiment =
  Experiment.make ~id:"e3" ~title:"equal-rank ancestors are O(1) in expectation"
    ~claim:
      "Corollary 4.1.1: the expected number of ancestors of a node with its \
       own rank is at most 2"
    run
