module Policy = Dsu.Find_policy
module Rng = Repro_util.Rng
module J = Repro_obs.Json
module Op = Workload.Op
module Site = Repro_fault.Site
module Fi = Repro_fault.Inject
module Fc = Repro_fault.Forest_check
module Seq = Sequential.Seq_dsu
module Rsnap = Repro_recover.Snapshot
module Rrepair = Repro_recover.Repair
module Rrestore = Repro_recover.Restore
module Depoch = Repro_durable.Epoch
module Dwal = Repro_durable.Wal
module Dfuzzy = Repro_durable.Fuzzy
module Drecovery = Repro_durable.Recovery

type config = {
  n : int;
  ops_per_domain : int;
  domains : int;
  crash_domains : int;
  crash_after : int;
  stall_prob : float;
  stall_len : int;
  unite_percent : int;
  seed : int;
  fault_seed : int;
  policies : Policy.t list;
  layouts : Scalability.layout list;
  memory_order : Dsu.Memory_order.t;
      (* the parent-load ordering mode every scenario's structure uses;
         kept in the config (not the scenario cross product) so one chaos
         run A/Bs a single mode and the report says which *)
  validate : bool;
}

let default_config =
  {
    n = 4096;
    ops_per_domain = 20_000;
    domains = 8;
    crash_domains = 2;
    crash_after = 5_000;
    stall_prob = 0.01;
    stall_len = 64;
    unite_percent = 40;
    seed = 11;
    fault_seed = 7;
    policies = [ Policy.Two_try_splitting ];
    layouts = [ Scalability.Flat ];
    memory_order = Dsu.Memory_order.default;
    validate = true;
  }

type check = { check_name : string; passed : bool; detail : string }

type scenario = {
  layout : Scalability.layout;
  policy : Policy.t;
  crashed : (int * Site.t) list;
  completed : int array;
  failures : (int * string) list;
  hops : int array;
  fault_totals : Fi.totals;
  forest : Fc.report option;
  checks : check list;
  seconds : float;
}

let scenario_ok s = s.failures = [] && List.for_all (fun c -> c.passed) s.checks

let hop_budget n = 16. *. ((log (float_of_int n) /. log 2.) +. 2.)

(* One closure set per memory layout, so the worker loop and the audit are
   written once.  [prio] feeds Forest_check the linking order the structure
   actually used. *)
type handle = {
  unite : int -> int -> unit;
  same_set : int -> int -> bool;
  find : int -> int;
  parents : unit -> int array;
  prio : int -> int;
  snapshot : unit -> Rsnap.t;
}

let handle_of ~layout ~policy ~memory_order ~seed n =
  match (layout : Scalability.layout) with
  | Flat | Padded ->
    let d =
      Dsu.Native.create
        ~padded:(layout = Scalability.Padded)
        ~policy ~memory_order ~seed n
    in
    {
      unite = Dsu.Native.unite d;
      same_set = Dsu.Native.same_set d;
      find = Dsu.Native.find d;
      parents = (fun () -> Dsu.Native.parents_snapshot d);
      prio = Dsu.Native.id d;
      snapshot = (fun () -> Rsnap.of_native d);
    }
  | Boxed ->
    let d = Dsu.Boxed.create ~policy ~seed n in
    {
      unite = Dsu.Boxed.unite d;
      same_set = Dsu.Boxed.same_set d;
      find = Dsu.Boxed.find d;
      parents = (fun () -> Dsu.Boxed.parents_snapshot d);
      prio = Dsu.Boxed.id d;
      snapshot = (fun () -> Rsnap.of_boxed d);
    }
  | Packed ->
    (* Linking by rank: [seed] draws no priorities; the forest audit's
       order is the rank unpacked from the live words. *)
    let d = Dsu.Packed.Native.create ~policy ~memory_order n in
    {
      unite = Dsu.Packed.Native.unite d;
      same_set = Dsu.Packed.Native.same_set d;
      find = Dsu.Packed.Native.find d;
      parents = (fun () -> Dsu.Packed.Native.parents_snapshot d);
      prio = Dsu.Packed.Native.rank_of d;
      snapshot = (fun () -> Rsnap.of_packed d);
    }

(* A handle over a restored structure, whatever kind came back.  The node
   order is immutable, so it is captured once rather than re-snapshotted on
   every [prio] call. *)
let handle_of_restored (r : Rrestore.restored) =
  let prios = (Rrestore.snapshot r).Rsnap.prios in
  {
    unite = Rrestore.unite r;
    same_set = Rrestore.same_set r;
    find = Rrestore.find r;
    parents = (fun () -> (Rrestore.snapshot r).Rsnap.parents);
    prio = (fun i -> prios.(i));
    snapshot = (fun () -> Rrestore.snapshot r);
  }

let gen_ops ~n ~unite_percent ~seed ~domains ~ops_per_domain =
  Array.init domains (fun k ->
      let rng = Rng.create (seed + (1000 * k)) in
      Array.init ops_per_domain (fun _ ->
          let x = Rng.int rng n and y = Rng.int rng n in
          if Rng.int rng 100 < unite_percent then Op.Unite (x, y)
          else Op.Same_set (x, y)))

(* Crash countdowns are staggered per slot so victims fall at different
   depths of the run; every slot shares the stall/yield noise. *)
let noise_of config =
  if config.stall_prob > 0. then
    [
      Fi.rule ~prob:config.stall_prob (Fi.Stall config.stall_len);
      Fi.rule ~prob:(config.stall_prob /. 2.) Fi.Yield;
    ]
  else []

let plan_of config =
  let noise = noise_of config in
  let rules_for slot =
    if slot < config.crash_domains then
      Fi.rule ~after:(config.crash_after * (slot + 1)) Fi.Crash :: noise
    else noise
  in
  { Fi.seed = config.fault_seed; rules_for }

(* ---------- the audit ---------- *)

let mk check_name passed detail = { check_name; passed; detail }

(* Root of every node by memoized parent chasing.  Only called after the
   forest check passed, so the chains are acyclic. *)
let roots_of parents =
  let n = Array.length parents in
  let memo = Array.make n (-1) in
  let rec go i =
    if memo.(i) >= 0 then memo.(i)
    else if parents.(i) = i then (
      memo.(i) <- i;
      i)
    else begin
      let r = go parents.(i) in
      memo.(i) <- r;
      r
    end
  in
  Array.init n go

(* First pair of nodes equivalent under [a] but split by [b], if any —
   i.e. whether the [a]-partition refines the [b]-partition. *)
let refines a b =
  let tbl = Hashtbl.create 97 in
  let bad = ref None in
  Array.iteri
    (fun i ra ->
      if !bad = None then
        match Hashtbl.find_opt tbl ra with
        | None -> Hashtbl.add tbl ra (i, b.(i))
        | Some (j, rb) -> if rb <> b.(i) then bad := Some (j, i))
    a;
  !bad

(* Completed ops of one slot, in issue order, as (start, stop, op). *)
let completed_ops ~starts ~stops ~ops k =
  let acc = ref [] in
  let m = Array.length ops.(k) in
  for j = m - 1 downto 0 do
    if stops.(k).(j) >= 0 then acc := (starts.(k).(j), stops.(k).(j), ops.(k).(j)) :: !acc
  done;
  !acc

let audit ~config ~(h : handle) ~ops ~starts ~stops ~results ~cur ~interrupted =
  let n = config.n in
  let parents = h.parents () in
  let forest = Fc.check ~prio:h.prio parents in
  let forest_check =
    mk "forest" (Fc.ok forest)
      (if Fc.ok forest then "" else Format.asprintf "%a" Fc.pp forest)
  in
  if not (Fc.ok forest) then
    (* Everything below chases parent chains or trusts the partition; a
       structurally broken forest would send those checks spinning. *)
    ( Some forest,
      [
        forest_check;
        mk "find-idempotent" false "skipped: forest invalid";
        mk "completed-unites" false "skipped: forest invalid";
        mk "sameset-true" false "skipped: forest invalid";
        mk "sameset-false" false "skipped: forest invalid";
        mk "partition-sandwich" false "skipped: forest invalid";
        mk "survivors-complete" false "skipped: forest invalid";
        mk "survivor-hops" false "skipped: forest invalid";
      ] )
  else begin
    let snap_roots = roots_of parents in
    let all_completed = List.concat (List.init config.domains (completed_ops ~starts ~stops ~ops)) in
    (* find agrees with the snapshot (same classes both ways) and is stable
       when repeated — note find may compact, so this runs on the live
       structure after the snapshot was taken. *)
    let find_check =
      let find_roots = Array.init n h.find in
      let unstable = ref None in
      for i = 0 to n - 1 do
        if !unstable = None && h.find i <> find_roots.(i) then unstable := Some i
      done;
      match (refines snap_roots find_roots, refines find_roots snap_roots, !unstable) with
      | None, None, None -> mk "find-idempotent" true ""
      | Some (i, j), _, _ | _, Some (i, j), _ ->
        mk "find-idempotent" false
          (Printf.sprintf "find and snapshot disagree on nodes %d and %d" i j)
      | _, _, Some i ->
        mk "find-idempotent" false
          (Printf.sprintf "find %d changed its answer at quiescence" i)
    in
    let unites_check =
      let bad =
        List.find_opt
          (function
            | _, _, Op.Unite (x, y) -> snap_roots.(x) <> snap_roots.(y)
            | _ -> false)
          all_completed
      in
      match bad with
      | None -> mk "completed-unites" true ""
      | Some (_, _, Op.Unite (x, y)) ->
        mk "completed-unites" false
          (Printf.sprintf "completed unite (%d, %d) not connected in final forest" x y)
      | Some _ -> assert false
    in
    let true_check =
      let bad = ref None in
      Array.iteri
        (fun k row ->
          Array.iteri
            (fun j r ->
              if !bad = None && r = 1 then
                match ops.(k).(j) with
                | Op.Same_set (x, y) when snap_roots.(x) <> snap_roots.(y) ->
                  bad := Some (x, y)
                | _ -> ())
            row)
        results;
      match !bad with
      | None -> mk "sameset-true" true ""
      | Some (x, y) ->
        mk "sameset-true" false
          (Printf.sprintf "same_set (%d, %d) answered true but they end up apart" x y)
    in
    (* A false answer is wrong if unites that fully completed before the
       query was even issued had already connected its arguments: replay
       completed unites in stop-stamp order into a sequential oracle and
       test each false query at its start stamp. *)
    let false_check =
      let unites =
        List.filter_map
          (function
            | _, stop, Op.Unite (x, y) -> Some (stop, x, y)
            | _ -> None)
          all_completed
        |> List.sort compare
      in
      let queries = ref [] in
      Array.iteri
        (fun k row ->
          Array.iteri
            (fun j r ->
              if r = 0 then
                match ops.(k).(j) with
                | Op.Same_set (x, y) -> queries := (starts.(k).(j), x, y) :: !queries
                | _ -> ())
            row)
        results;
      let queries = List.sort compare !queries in
      let oracle = Seq.create n in
      let pending = ref unites in
      let bad = ref None in
      List.iter
        (fun (s, x, y) ->
          let continue = ref true in
          while !continue do
            match !pending with
            | (t, ux, uy) :: rest when t < s ->
              Seq.unite oracle ux uy;
              pending := rest
            | _ -> continue := false
          done;
          if !bad = None && Seq.same_set oracle x y then bad := Some (x, y))
        queries;
      match !bad with
      | None -> mk "sameset-false" true ""
      | Some (x, y) ->
        mk "sameset-false" false
          (Printf.sprintf
             "same_set (%d, %d) answered false after unites completed before it started had joined them"
             x y)
    in
    (* Upper bound: every edge of the final forest must be justified by a
       completed unite or by the single in-flight unite of an interrupted
       worker.  (Compaction only rewires within a class, so an interrupted
       find can never add connectivity.)  The lower bound — completed
       unites are connected — is the completed-unites check above. *)
    let sandwich_check =
      let p1 = Seq.create n in
      List.iter
        (function _, _, Op.Unite (x, y) -> Seq.unite p1 x y | _ -> ())
        all_completed;
      List.iter
        (fun k ->
          let j = cur.(k) in
          if j < config.ops_per_domain then
            match ops.(k).(j) with Op.Unite (x, y) -> Seq.unite p1 x y | _ -> ())
        interrupted;
      let bad = ref None in
      for i = 0 to n - 1 do
        if !bad = None && parents.(i) <> i && not (Seq.same_set p1 i parents.(i))
        then bad := Some i
      done;
      match !bad with
      | None -> mk "partition-sandwich" true ""
      | Some i ->
        mk "partition-sandwich" false
          (Printf.sprintf
             "edge %d -> %d is not justified by any completed or in-flight unite" i
             parents.(i))
    in
    (Some forest, [ forest_check; find_check; unites_check; true_check; false_check; sandwich_check ])
  end

(* ---------- the run ---------- *)

let validate_config c =
  if c.n < 2 then invalid_arg "Chaos: n must be >= 2";
  if c.domains < 1 then invalid_arg "Chaos: domains must be >= 1";
  if c.crash_domains < 0 || c.crash_domains > c.domains then
    invalid_arg "Chaos: crash_domains must be between 0 and domains";
  if c.ops_per_domain < 1 then invalid_arg "Chaos: ops_per_domain must be >= 1";
  if c.stall_prob < 0. || c.stall_prob > 1. then
    invalid_arg "Chaos: stall_prob must be in [0, 1]"

(* Run the given slots' op streams from their current [cur] position to the
   end.  Used for the initial run (every slot from 0) and for the
   post-restore resume (crashed slots from the op they died inside —
   re-running it is safe: [unite] is idempotent, queries are read-only). *)
let run_workers ~m ~(h : handle) ~ops ~clock ~starts ~stops ~results ~cur ~crash_site
    ~failed ~hops slots =
  let worker k () =
    Fi.enroll ~slot:k;
    (try
       for j = cur.(k) to m - 1 do
         cur.(k) <- j;
         starts.(k).(j) <- Atomic.fetch_and_add clock 1;
         (match ops.(k).(j) with
          | Op.Unite (x, y) ->
            h.unite x y;
            results.(k).(j) <- 2
          | Op.Same_set (x, y) -> results.(k).(j) <- (if h.same_set x y then 1 else 0)
          | Op.Find x ->
            ignore (h.find x);
            results.(k).(j) <- 3);
         stops.(k).(j) <- Atomic.fetch_and_add clock 1
       done;
       cur.(k) <- m
     with
    | Fi.Crashed (site, _) -> crash_site.(k) <- Some site
    | e -> failed.(k) <- Some (Printexc.to_string e));
    hops.(k) <- hops.(k) + Fi.my_hops ()
  in
  let handles = List.map (fun k -> Domain.spawn (worker k)) slots in
  List.iter Domain.join handles

let completed_counts ~domains ~stops =
  Array.init domains (fun k ->
      let c = ref 0 in
      Array.iter (fun s -> if s >= 0 then incr c) stops.(k);
      !c)

(* The per-op audit plus the run-level checks (crash plan respected,
   survivors finished, survivor hop budget). *)
let full_audit ~config ~h ~ops ~starts ~stops ~results ~cur ~crash_site ~failed
    ~completed ~hops ~crashed =
  let m = config.ops_per_domain in
  let interrupted =
    List.filter
      (fun k -> crash_site.(k) <> None || failed.(k) <> None)
      (List.init config.domains Fun.id)
  in
  let forest, checks = audit ~config ~h ~ops ~starts ~stops ~results ~cur ~interrupted in
  let plan_check =
    (* Only planned victims may crash; whether every planned victim's
       countdown was reached depends on the workload length, so unfired
       victims are not a failure. *)
    match List.find_opt (fun (k, _) -> k >= config.crash_domains) crashed with
    | None -> mk "crash-plan" true ""
    | Some (k, site) ->
      mk "crash-plan" false
        (Printf.sprintf "slot %d crashed at %s without a crash rule" k
           (Site.to_string site))
  in
  let survivors =
    List.filter
      (fun k -> crash_site.(k) = None && failed.(k) = None)
      (List.init config.domains Fun.id)
  in
  let complete_check =
    match List.find_opt (fun k -> completed.(k) < m) survivors with
    | None -> mk "survivors-complete" true ""
    | Some k ->
      mk "survivors-complete" false
        (Printf.sprintf "survivor %d completed only %d of %d ops" k completed.(k) m)
  in
  let hop_check =
    let budget = hop_budget config.n in
    let over =
      List.find_opt
        (fun k ->
          completed.(k) > 0 && float_of_int hops.(k) /. float_of_int completed.(k) > budget)
        survivors
    in
    match over with
    | None -> mk "survivor-hops" true ""
    | Some k ->
      mk "survivor-hops" false
        (Printf.sprintf "survivor %d averaged %.1f own hops/op (budget %.1f)" k
           (float_of_int hops.(k) /. float_of_int completed.(k))
           budget)
  in
  (forest, checks @ [ plan_check; complete_check; hop_check ])

let run_scenario ?(config = default_config) ~layout ~policy () =
  validate_config config;
  let { n; ops_per_domain = m; domains; unite_percent; seed; _ } = config in
  let ops = gen_ops ~n ~unite_percent ~seed ~domains ~ops_per_domain:m in
  let h = handle_of ~layout ~policy ~memory_order:config.memory_order ~seed n in
  let clock = Atomic.make 0 in
  let starts = Array.init domains (fun _ -> Array.make m (-1)) in
  let stops = Array.init domains (fun _ -> Array.make m (-1)) in
  let results = Array.init domains (fun _ -> Array.make m (-1)) in
  let cur = Array.make domains 0 in
  let crash_site = Array.make domains None in
  let failed = Array.make domains None in
  let hops = Array.make domains 0 in
  Fi.arm (plan_of config);
  let t0 = Repro_obs.Clock.now_ns () in
  run_workers ~m ~h ~ops ~clock ~starts ~stops ~results ~cur ~crash_site ~failed ~hops
    (List.init domains Fun.id);
  let seconds = float_of_int (Repro_obs.Clock.now_ns () - t0) /. 1e9 in
  Fi.disarm ();
  let fault_totals = Fi.totals () in
  let crashed =
    List.filter_map
      (fun k -> Option.map (fun site -> (k, site)) crash_site.(k))
      (List.init domains Fun.id)
  in
  let failures =
    List.filter_map
      (fun k -> Option.map (fun msg -> (k, msg)) failed.(k))
      (List.init domains Fun.id)
  in
  let completed = completed_counts ~domains ~stops in
  let forest, checks =
    if not config.validate then (None, [])
    else
      full_audit ~config ~h ~ops ~starts ~stops ~results ~cur ~crash_site ~failed
        ~completed ~hops ~crashed
  in
  {
    layout;
    policy;
    crashed;
    completed;
    failures;
    hops;
    fault_totals;
    forest;
    checks;
    seconds;
  }

(* ---------- crash -> snapshot -> repair -> resume ---------- *)

type recovery = {
  crash_snapshot : Rsnap.t;
  snapshot_crc : int;
  fixes : Rrepair.fix list;
  resumed_slots : int list;
  resumed_ops : int;
  resumed_forest : Fc.report option;
  recovery_checks : check list;
  resume_seconds : float;
  phase1_counters : (string * int) list;
  resume_counters : (string * int) list;
}

let recovery_ok r = List.for_all (fun c -> c.passed) r.recovery_checks

let counter_samples snap =
  List.filter_map
    (fun { Repro_obs.Metrics.name; value; _ } ->
      match value with Repro_obs.Metrics.Counter_v v -> Some (name, v) | _ -> None)
    snap

(* Counters that moved since [before] — the resumed run's own contribution,
   so a report over the resumed phase does not re-count pre-crash ops. *)
let delta_counters ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let b = Option.value ~default:0 (List.assoc_opt name before) in
      if v - b <> 0 then Some (name, v - b) else None)
    after

let run_recovery_scenario ?(config = default_config) ~layout ~policy () =
  validate_config config;
  let { n; ops_per_domain = m; domains; unite_percent; seed; _ } = config in
  let ops = gen_ops ~n ~unite_percent ~seed ~domains ~ops_per_domain:m in
  let h = handle_of ~layout ~policy ~memory_order:config.memory_order ~seed n in
  let clock = Atomic.make 0 in
  let starts = Array.init domains (fun _ -> Array.make m (-1)) in
  let stops = Array.init domains (fun _ -> Array.make m (-1)) in
  let results = Array.init domains (fun _ -> Array.make m (-1)) in
  let cur = Array.make domains 0 in
  let crash_site = Array.make domains None in
  let failed = Array.make domains None in
  let hops = Array.make domains 0 in
  (* Phase 1: the ordinary chaos run, crashes armed. *)
  Fi.arm (plan_of config);
  let t0 = Repro_obs.Clock.now_ns () in
  run_workers ~m ~h ~ops ~clock ~starts ~stops ~results ~cur ~crash_site ~failed ~hops
    (List.init domains Fun.id);
  let seconds = float_of_int (Repro_obs.Clock.now_ns () - t0) /. 1e9 in
  Fi.disarm ();
  let fault_totals = Fi.totals () in
  let crashed =
    List.filter_map
      (fun k -> Option.map (fun site -> (k, site)) crash_site.(k))
      (List.init domains Fun.id)
  in
  let failures =
    List.filter_map
      (fun k -> Option.map (fun msg -> (k, msg)) failed.(k))
      (List.init domains Fun.id)
  in
  let completed = completed_counts ~domains ~stops in
  let forest, checks =
    if not config.validate then (None, [])
    else
      full_audit ~config ~h ~ops ~starts ~stops ~results ~cur ~crash_site ~failed
        ~completed ~hops ~crashed
  in
  let phase1 =
    {
      layout;
      policy;
      crashed;
      completed;
      failures;
      hops;
      fault_totals;
      forest;
      checks;
      seconds;
    }
  in
  (* Crash-time bookkeeping: metrics accumulated so far belong to phase 1;
     the resumed run reports only its delta. *)
  let phase1_counters = counter_samples (Repro_obs.Metrics.snapshot ()) in
  (* Snapshot the crashed structure and prove the codec round-trips it. *)
  let snap = h.snapshot () in
  let codec_check =
    match
      ( Rsnap.of_binary_string (Rsnap.to_binary_string snap),
        Rsnap.of_json_string (Rsnap.to_json_string snap) )
    with
    | Ok b, Ok j when Rsnap.equal b snap && Rsnap.equal j snap ->
      mk "codec-roundtrip" true ""
    | Error e, _ | _, Error e -> mk "codec-roundtrip" false e
    | _ -> mk "codec-roundtrip" false "decoded snapshot differs from the original"
  in
  (* Repair must be a no-op — Theorem 3.4 means a crash never corrupts the
     forest — and must provably refine the crash-time partition. *)
  let repaired, fixes = Rrepair.repair snap in
  let repair_check =
    mk "repair-clean" (fixes = [])
      (if fixes = [] then ""
       else
         Printf.sprintf "crash-time snapshot needed %d fixes, e.g. %s" (List.length fixes)
           (Format.asprintf "%a" Rrepair.pp_fix (List.hd fixes)))
  in
  let refines_check =
    mk "repair-refines"
      (Rrepair.refines ~fine:repaired ~coarse:snap)
      "repaired partition does not refine the crash-time partition"
  in
  (* Restore into a fresh structure and resume the crashed slots' streams
     from the op they died inside; stall/yield noise stays armed, crashes
     do not re-fire. *)
  let h2 =
    handle_of_restored
      (Rrestore.restore ~policy ~padded:(layout = Scalability.Padded) repaired)
  in
  let resumed_slots =
    List.filter
      (fun k -> crash_site.(k) <> None || failed.(k) <> None)
      (List.init domains Fun.id)
  in
  List.iter
    (fun k ->
      crash_site.(k) <- None;
      failed.(k) <- None)
    resumed_slots;
  let resumed_ops = List.fold_left (fun acc k -> acc + (m - cur.(k))) 0 resumed_slots in
  Fi.arm { Fi.seed = config.fault_seed + 1; rules_for = (fun _ -> noise_of config) };
  let t1 = Repro_obs.Clock.now_ns () in
  run_workers ~m ~h:h2 ~ops ~clock ~starts ~stops ~results ~cur ~crash_site ~failed
    ~hops resumed_slots;
  let resume_seconds = float_of_int (Repro_obs.Clock.now_ns () - t1) /. 1e9 in
  Fi.disarm ();
  let resume_counters =
    delta_counters ~before:phase1_counters
      ~after:(counter_samples (Repro_obs.Metrics.snapshot ()))
  in
  let completed = completed_counts ~domains ~stops in
  let resumed_forest, resume_checks =
    if not config.validate then (None, [])
    else
      full_audit ~config ~h:h2 ~ops ~starts ~stops ~results ~cur ~crash_site ~failed
        ~completed ~hops ~crashed:[]
  in
  let resumed_complete =
    match List.find_opt (fun k -> completed.(k) < m) (List.init domains Fun.id) with
    | None -> mk "resumed-complete" true ""
    | Some k ->
      mk "resumed-complete" false
        (Printf.sprintf "slot %d finished only %d of %d ops after resume" k completed.(k)
           m)
  in
  let recovery =
    {
      crash_snapshot = snap;
      snapshot_crc = Rsnap.checksum snap;
      fixes;
      resumed_slots;
      resumed_ops;
      resumed_forest;
      recovery_checks =
        codec_check :: repair_check :: refines_check :: resumed_complete :: resume_checks;
      resume_seconds;
      phase1_counters;
      resume_counters;
    }
  in
  (phase1, recovery)

let run_all ?(config = default_config) ?progress () =
  let emit s = match progress with None -> () | Some f -> f s in
  List.concat_map
    (fun layout ->
      List.map
        (fun policy ->
          let s = run_scenario ~config ~layout ~policy () in
          emit s;
          s)
        config.policies)
    config.layouts

let run_recovery_all ?(config = default_config) ?progress () =
  let emit p = match progress with None -> () | Some f -> f p in
  List.concat_map
    (fun layout ->
      List.map
        (fun policy ->
          let p = run_recovery_scenario ~config ~layout ~policy () in
          emit p;
          p)
        config.policies)
    config.layouts

(* ---------- reporting ---------- *)

let scenario_to_json (s : scenario) =
  let t = s.fault_totals in
  J.Obj
    [
      ("layout", J.String (Scalability.layout_to_string s.layout));
      ("policy", J.String (Policy.to_string s.policy));
      ("seconds", J.Float s.seconds);
      ( "crashed",
        J.List
          (List.map
             (fun (k, site) ->
               J.Obj [ ("slot", J.Int k); ("site", J.String (Site.to_string site)) ])
             s.crashed) );
      ( "failures",
        J.List
          (List.map
             (fun (k, msg) -> J.Obj [ ("slot", J.Int k); ("error", J.String msg) ])
             s.failures) );
      ("completed", J.List (Array.to_list (Array.map (fun c -> J.Int c) s.completed)));
      ("hops", J.List (Array.to_list (Array.map (fun h -> J.Int h) s.hops)));
      ( "faults",
        J.Obj
          [
            ("site_hits", J.Int t.Fi.hits);
            ("yields", J.Int t.Fi.yields);
            ("stalls", J.Int t.Fi.stalls);
            ("crashes", J.Int t.Fi.crashes);
          ] );
      ("forest", (match s.forest with None -> J.Null | Some r -> Fc.to_json r));
      ( "checks",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.String c.check_name);
                   ("ok", J.Bool c.passed);
                   ("detail", J.String c.detail);
                 ])
             s.checks) );
      ("ok", J.Bool (scenario_ok s));
    ]

let config_fields (config : config) =
  [
    ("schema", J.String "dsu-chaos/v1");
    ("n", J.Int config.n);
    ("ops_per_domain", J.Int config.ops_per_domain);
    ("domains", J.Int config.domains);
    ("crash_domains", J.Int config.crash_domains);
    ("crash_after", J.Int config.crash_after);
    ("stall_prob", J.Float config.stall_prob);
    ("stall_len", J.Int config.stall_len);
    ("unite_percent", J.Int config.unite_percent);
    ("seed", J.Int config.seed);
    ("fault_seed", J.Int config.fault_seed);
    ("memory_order", J.String (Dsu.Memory_order.to_string config.memory_order));
    ("validate", J.Bool config.validate);
  ]

let to_json ?(config = default_config) scenarios =
  J.Obj
    (config_fields config
    @ [
        ("scenarios", J.List (List.map scenario_to_json scenarios));
        ("ok", J.Bool (List.for_all scenario_ok scenarios));
      ])

let counters_to_json counters =
  J.Obj (List.map (fun (name, v) -> (name, J.Int v)) counters)

let recovery_to_json (r : recovery) =
  J.Obj
    [
      ("snapshot_crc", J.String (Printf.sprintf "%08x" r.snapshot_crc));
      ("fixes", Rrepair.fixes_to_json r.fixes);
      ("resumed_slots", J.List (List.map (fun k -> J.Int k) r.resumed_slots));
      ("resumed_ops", J.Int r.resumed_ops);
      ("resume_seconds", J.Float r.resume_seconds);
      ( "resumed_forest",
        match r.resumed_forest with None -> J.Null | Some rep -> Fc.to_json rep );
      ( "checks",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.String c.check_name);
                   ("ok", J.Bool c.passed);
                   ("detail", J.String c.detail);
                 ])
             r.recovery_checks) );
      ("phase1_counters", counters_to_json r.phase1_counters);
      ("resume_counters", counters_to_json r.resume_counters);
      ("ok", J.Bool (recovery_ok r));
    ]

let recovery_report_to_json ?(config = default_config) pairs =
  let scenario_with_recovery (s, r) =
    match scenario_to_json s with
    | J.Obj fields -> J.Obj (fields @ [ ("recovery", recovery_to_json r) ])
    | other -> other
  in
  J.Obj
    (config_fields config
    @ [
        ("scenarios", J.List (List.map scenario_with_recovery pairs));
        ( "ok",
          J.Bool (List.for_all (fun (s, r) -> scenario_ok s && recovery_ok r) pairs) );
      ])

let pp_scenario ppf (s : scenario) =
  let t = s.fault_totals in
  Format.fprintf ppf "@[<v>%s/%s: %s in %.2fs@,"
    (Scalability.layout_to_string s.layout)
    (Policy.to_string s.policy)
    (if scenario_ok s then "OK" else "FAILED")
    s.seconds;
  Format.fprintf ppf "  faults: %d site hits, %d yields, %d stalls, %d crashes@,"
    t.Fi.hits t.Fi.yields t.Fi.stalls t.Fi.crashes;
  List.iter
    (fun (k, site) ->
      Format.fprintf ppf "  crashed: slot %d at %s after %d ops@," k
        (Site.to_string site) s.completed.(k))
    s.crashed;
  List.iter
    (fun (k, msg) -> Format.fprintf ppf "  worker %d failed: %s@," k msg)
    s.failures;
  List.iter
    (fun c ->
      if not c.passed then
        Format.fprintf ppf "  check %s FAILED: %s@," c.check_name c.detail)
    s.checks;
  (match s.forest with
  | Some r when Fc.ok r ->
    Format.fprintf ppf "  forest: %d nodes, %d roots, max depth %d@," r.Fc.nodes
      r.Fc.roots r.Fc.max_depth
  | _ -> ());
  Format.fprintf ppf "@]"

let pp ppf scenarios =
  List.iter (fun s -> Format.fprintf ppf "%a@." pp_scenario s) scenarios

let pp_recovery ppf (r : recovery) =
  Format.fprintf ppf "@[<v>recovery: %s (snapshot crc %08x)@,"
    (if recovery_ok r then "OK" else "FAILED")
    r.snapshot_crc;
  Format.fprintf ppf "  resumed %d op(s) across %d slot(s) in %.2fs@," r.resumed_ops
    (List.length r.resumed_slots) r.resume_seconds;
  if r.fixes <> [] then
    Format.fprintf ppf "  repair applied %d fix(es)@," (List.length r.fixes);
  List.iter
    (fun c ->
      if not c.passed then
        Format.fprintf ppf "  check %s FAILED: %s@," c.check_name c.detail)
    r.recovery_checks;
  Format.fprintf ppf "@]"

let pp_recovery_report ppf pairs =
  List.iter
    (fun (s, r) -> Format.fprintf ppf "%a@.%a@." pp_scenario s pp_recovery r)
    pairs

(* ---------- durable drill: crash mid-snapshot and mid-group-commit ---------- *)

type durable = {
  d_kind : Rsnap.kind;
  d_policy : Policy.t;
  d_snapshots : (string * Dfuzzy.capture) list;  (* oldest first *)
  d_snap_crash : Site.t option;
  d_commit_crash : (Site.t * int) option;
  d_wal_stats : Dwal.writer_stats;
  d_tail_records : int;
  d_truncated_at : int option;
  d_recovery : Drecovery.stats option;
  d_fault_totals : Fi.totals;
  d_checks : check list;
  d_seconds : float;
  d_resume_seconds : float;
}

let durable_ok d = List.for_all (fun c -> c.passed) d.d_checks

(* The durable drill runs over snapshot kinds, not harness layouts: the
   drill's point is that every layout a snapshot can restore survives a
   crash during its own fuzzy scan. *)
let durable_handle_of ~kind ~policy ~memory_order ~seed ~on_link n =
  match (kind : Rsnap.kind) with
  | Rsnap.Flat ->
    let d = Dsu.Native.create ~policy ~memory_order ~on_link ~seed n in
    ( {
        unite = Dsu.Native.unite d;
        same_set = Dsu.Native.same_set d;
        find = Dsu.Native.find d;
        parents = (fun () -> Dsu.Native.parents_snapshot d);
        prio = Dsu.Native.id d;
        snapshot = (fun () -> Rsnap.of_native d);
      },
      fun epoch -> Dfuzzy.of_native ~epoch d )
  | Rsnap.Boxed ->
    let d = Dsu.Boxed.create ~policy ~on_link ~seed n in
    ( {
        unite = Dsu.Boxed.unite d;
        same_set = Dsu.Boxed.same_set d;
        find = Dsu.Boxed.find d;
        parents = (fun () -> Dsu.Boxed.parents_snapshot d);
        prio = Dsu.Boxed.id d;
        snapshot = (fun () -> Rsnap.of_boxed d);
      },
      fun epoch -> Dfuzzy.of_boxed ~epoch d )
  | Rsnap.Growable ->
    let d = Dsu.Growable.create ~policy ~memory_order ~on_link ~seed ~capacity:n () in
    (* Pre-create the universe before the run so the workload's element ids
       are live; make_set is not WAL-logged, so recovery's universe is the
       snapshot's. *)
    for _ = 1 to n do
      ignore (Dsu.Growable.make_set d)
    done;
    ( {
        unite = Dsu.Growable.unite d;
        same_set = Dsu.Growable.same_set d;
        find = Dsu.Growable.find d;
        parents = (fun () -> Dsu.Growable.parents_snapshot d);
        prio = Dsu.Growable.priority d;
        snapshot = (fun () -> Rsnap.of_growable d);
      },
      fun epoch -> Dfuzzy.of_growable ~epoch d )
  | Rsnap.Rank ->
    let d = Dsu.Rank.Native.create ~memory_order ~on_link n in
    ( {
        unite = Dsu.Rank.Native.unite d;
        same_set = Dsu.Rank.Native.same_set d;
        find = Dsu.Rank.Native.find d;
        parents = (fun () -> Dsu.Rank.Native.parents_snapshot d);
        prio = Dsu.Rank.Native.rank_of d;
        snapshot = (fun () -> Rsnap.of_rank d);
      },
      fun epoch -> Dfuzzy.of_rank ~epoch d )
  | Rsnap.Packed ->
    let d = Dsu.Packed.Native.create ~policy ~memory_order ~on_link n in
    ( {
        unite = Dsu.Packed.Native.unite d;
        same_set = Dsu.Packed.Native.same_set d;
        find = Dsu.Packed.Native.find d;
        parents = (fun () -> Dsu.Packed.Native.parents_snapshot d);
        prio = Dsu.Packed.Native.rank_of d;
        snapshot = (fun () -> Rsnap.of_packed d);
      },
      fun epoch -> Dfuzzy.of_packed ~epoch d )

(* Mutator slots get the usual stall/yield noise; the snapshotter (slot
   [domains]) crashes mid-way through its second fuzzy scan (the first
   scan spends [n] Snapshot_read hits, so hit [n + n/2 + 1] is halfway
   into the second), and the committer (slot [domains + 1]) crashes on
   its fourth group commit, mid-record, leaving a torn tail.  Both are
   hit-count rules, so the drill is deterministic regardless of timing. *)
let durable_plan config =
  let noise = noise_of config in
  let snap_slot = config.domains and commit_slot = config.domains + 1 in
  let rules_for slot =
    if slot = snap_slot then
      Fi.rule ~sites:[ Site.Snapshot_read ]
        ~after:(config.n + (config.n / 2))
        Fi.Crash
      :: noise
    else if slot = commit_slot then
      [ Fi.rule ~sites:[ Site.Wal_commit_mid ] ~after:3 Fi.Crash ]
    else noise
  in
  { Fi.seed = config.fault_seed; rules_for }

let temp_dir () =
  let base = Filename.temp_file "dsu-durable" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let run_durable_scenario ?(config = default_config) ?dir ~kind ~policy () =
  validate_config config;
  let { n; ops_per_domain = m; domains; unite_percent; seed; _ } = config in
  let dir = match dir with Some d -> d | None -> temp_dir () in
  let wal_path = Filename.concat dir "wal.log" in
  let ops = gen_ops ~n ~unite_percent ~seed ~domains ~ops_per_domain:m in
  (* Arm before creating the writer: arming opens a fresh inject epoch and
     drops stale enrollments, so the committer domain enrolls itself via
     [on_committer_start], which runs after this arm. *)
  Fi.arm (durable_plan config);
  let wal =
    Dwal.create_writer ~shards:(max 2 domains) ~flush_records:32
      ~flush_interval:0.0005
      ~on_committer_start:(fun () -> Fi.enroll ~slot:(domains + 1))
      wal_path
  in
  let h, fuzzy =
    durable_handle_of ~kind ~policy ~memory_order:config.memory_order ~seed
      ~on_link:(Dwal.append wal) n
  in
  let epoch = Dwal.epoch wal in
  let clock = Atomic.make 0 in
  let starts = Array.init domains (fun _ -> Array.make m (-1)) in
  let stops = Array.init domains (fun _ -> Array.make m (-1)) in
  let results = Array.init domains (fun _ -> Array.make m (-1)) in
  let cur = Array.make domains 0 in
  let crash_site = Array.make domains None in
  let failed = Array.make domains None in
  let hops = Array.make domains 0 in
  let mutators_done = Atomic.make false in
  let snaps = ref [] and snap_crash = ref None and snap_count = ref 0 in
  let snapshotter =
    Domain.spawn (fun () ->
        Fi.enroll ~slot:domains;
        try
          (* Keep scanning until the second scan's crash fires; the
             [< 2] clause keeps the drill deterministic even when the
             mutators drain before the snapshotter gets going. *)
          while !snap_count < 2 || not (Atomic.get mutators_done) do
            let cap = fuzzy epoch in
            incr snap_count;
            let path =
              Filename.concat dir (Printf.sprintf "snap-%03d.bin" !snap_count)
            in
            Rsnap.write_file path cap.Dfuzzy.snapshot;
            snaps := (path, cap) :: !snaps
          done
        with Fi.Crashed (site, _) -> snap_crash := Some site)
  in
  let t0 = Repro_obs.Clock.now_ns () in
  run_workers ~m ~h ~ops ~clock ~starts ~stops ~results ~cur ~crash_site ~failed
    ~hops
    (List.init domains Fun.id);
  Atomic.set mutators_done true;
  Domain.join snapshotter;
  Dwal.close wal;
  let seconds = float_of_int (Repro_obs.Clock.now_ns () - t0) /. 1e9 in
  Fi.disarm ();
  let fault_totals = Fi.totals () in
  let wal_stats = Dwal.writer_stats wal in
  let caps = List.rev !snaps in
  let completed = completed_counts ~domains ~stops in
  let final = h.snapshot () in
  let final_roots = roots_of final.Rsnap.parents in
  (* Phase-1 audit: the mutators never crash in this drill, so the whole
     workload must have survived the WAL hook and the concurrent scans. *)
  let _, phase1_checks =
    full_audit ~config ~h ~ops ~starts ~stops ~results ~cur ~crash_site ~failed
      ~completed ~hops ~crashed:[]
  in
  let crash_checks =
    [
      mk "fuzzy-crash"
        (!snap_crash = Some Site.Snapshot_read)
        (match !snap_crash with
        | Some Site.Snapshot_read -> ""
        | Some s -> "snapshotter crashed at " ^ Site.to_string s
        | None -> "snapshotter never crashed");
      mk "commit-crash"
        (match wal_stats.Dwal.ws_crashed with
        | Some (Site.Wal_commit_mid, _) -> true
        | _ -> false)
        (match wal_stats.Dwal.ws_crashed with
        | Some (Site.Wal_commit_mid, _) -> ""
        | Some (s, _) -> "committer crashed at " ^ Site.to_string s
        | None -> "committer never crashed");
      mk "snapshots-taken"
        (caps <> [])
        (if caps = [] then "no fuzzy snapshot completed before the crash" else "");
    ]
  in
  (* Per-capture checks.  Reconciliation must be a no-op for the layouts
     whose fuzzy scan is provably a forest cut (flat/boxed/growable: one
     acquire load per node, ancestors are monotone).  Rank and packed
     scans can legitimately catch a racing promotion as a cross-node
     order violation, so there the bar is only that the repaired cut
     refines both the raw scan and the final partition. *)
  let repair_exempt =
    match kind with
    | Rsnap.Rank | Rsnap.Packed -> true
    | Rsnap.Flat | Rsnap.Boxed | Rsnap.Growable -> false
  in
  let cap_checks =
    let dirty =
      List.find_opt (fun (_, c) -> c.Dfuzzy.fixes <> []) caps
    in
    let repair_clean =
      if repair_exempt then
        mk "fuzzy-repair-clean" true "rank scans may race a promotion; exempt"
      else
        match dirty with
        | None -> mk "fuzzy-repair-clean" true ""
        | Some (p, c) ->
          mk "fuzzy-repair-clean" false
            (Printf.sprintf "%s needed %d reconciliation fixes" p
               (List.length c.Dfuzzy.fixes))
    in
    let refines_raw =
      match
        List.find_opt
          (fun (_, c) ->
            not (Rrepair.refines ~fine:c.Dfuzzy.snapshot ~coarse:c.Dfuzzy.raw))
          caps
      with
      | None -> mk "fuzzy-refines-raw" true ""
      | Some (p, _) ->
        mk "fuzzy-refines-raw" false
          (p ^ ": reconciled cut does not refine the raw scan")
    in
    let refines_final =
      match
        List.find_opt
          (fun (_, c) ->
            not (Rrepair.refines ~fine:c.Dfuzzy.snapshot ~coarse:final))
          caps
      with
      | None -> mk "fuzzy-refines-final" true ""
      | Some (p, _) ->
        mk "fuzzy-refines-final" false
          (p ^ ": fuzzy cut does not refine the final partition")
    in
    [ repair_clean; refines_raw; refines_final ]
  in
  let tail =
    match Dwal.read_file wal_path with Ok t -> Some t | Error _ -> None
  in
  let wal_checks =
    match tail with
    | None -> [ mk "wal-truncated" false "WAL unreadable" ]
    | Some t ->
      let torn =
        mk "wal-truncated"
          (t.Dwal.truncated_at <> None)
          (if t.Dwal.truncated_at = None then
             "commit crash left no torn tail"
           else "")
      in
      (* The epoch cut: every valid record with a strictly smaller epoch
         than a capture's stamp was linked before that capture's scan
         started, so the cut must already connect it. *)
      let bad = ref None in
      List.iter
        (fun (p, c) ->
          let sn = c.Dfuzzy.snapshot in
          if sn.Rsnap.epoch > 0 && !bad = None then begin
            let roots = roots_of sn.Rsnap.parents in
            Array.iter
              (fun (r : Dwal.record) ->
                if
                  !bad = None
                  && r.Dwal.epoch < sn.Rsnap.epoch
                  && r.Dwal.x >= 0
                  && r.Dwal.x < Array.length roots
                  && r.Dwal.y >= 0
                  && r.Dwal.y < Array.length roots
                  && roots.(r.Dwal.x) <> roots.(r.Dwal.y)
                then bad := Some (p, r))
              t.Dwal.records
          end)
        caps;
      let cut =
        match !bad with
        | None -> mk "epoch-cut" true ""
        | Some (p, r) ->
          mk "epoch-cut" false
            (Printf.sprintf
               "%s: record (%d, %d) of epoch %d not connected in the cut" p
               r.Dwal.x r.Dwal.y r.Dwal.epoch)
      in
      [ torn; cut ]
  in
  (* Recovery: newest valid snapshot + WAL tail replay, then resume the
     whole workload on the restored structure and re-audit it against the
     sequential oracle. *)
  let recovery =
    Drecovery.recover_files ~policy ~snapshots:(List.map fst caps)
      ~wal:wal_path ()
  in
  let recovery_stats, recovery_checks, resume_seconds =
    match recovery with
    | Error e -> (None, [ mk "recovery" false e ], 0.)
    | Ok (r, rstats) ->
      let contains_log =
        match tail with
        | None -> mk "recovered-contains-log" false "WAL unreadable"
        | Some t -> (
          let nr = Rrestore.n r in
          let bad = ref None in
          Array.iter
            (fun (rc : Dwal.record) ->
              if
                !bad = None
                && rc.Dwal.x >= 0
                && rc.Dwal.x < nr
                && rc.Dwal.y >= 0
                && rc.Dwal.y < nr
                && not (Rrestore.same_set r rc.Dwal.x rc.Dwal.y)
              then bad := Some rc)
            t.Dwal.records;
          match !bad with
          | None -> mk "recovered-contains-log" true ""
          | Some rc ->
            mk "recovered-contains-log" false
              (Printf.sprintf
                 "acknowledged record (%d, %d) not connected after recovery"
                 rc.Dwal.x rc.Dwal.y))
      in
      let recovered_refines =
        match refines (roots_of (Rrestore.snapshot r).Rsnap.parents) final_roots with
        | None -> mk "recovered-refines-final" true ""
        | Some (i, j) ->
          mk "recovered-refines-final" false
            (Printf.sprintf
               "recovered state joins %d and %d, the final partition does not"
               i j)
      in
      (* Resume: replay every mutator stream from scratch on the restored
         structure.  Re-running completed unites is idempotent, and the
         full audit's partition sandwich stays sound because the re-run's
         completed unites connect everything recovery restored. *)
      let h2 =
        let base = handle_of_restored r in
        match r with
        (* Ranks move during the resumed run (promotions), so the audit
           must read them live, not from the recovery-time capture. *)
        | Rrestore.Rank d -> { base with prio = Dsu.Rank.Native.rank_of d }
        | Rrestore.Packed d -> { base with prio = Dsu.Packed.Native.rank_of d }
        | _ -> base
      in
      let starts = Array.init domains (fun _ -> Array.make m (-1)) in
      let stops = Array.init domains (fun _ -> Array.make m (-1)) in
      let results = Array.init domains (fun _ -> Array.make m (-1)) in
      let cur = Array.make domains 0 in
      let crash_site = Array.make domains None in
      let failed = Array.make domains None in
      let hops = Array.make domains 0 in
      let clock = Atomic.make 0 in
      Fi.arm { Fi.seed = config.fault_seed + 1; rules_for = (fun _ -> noise_of config) };
      let t1 = Repro_obs.Clock.now_ns () in
      run_workers ~m ~h:h2 ~ops ~clock ~starts ~stops ~results ~cur ~crash_site
        ~failed ~hops
        (List.init domains Fun.id);
      let resume_seconds = float_of_int (Repro_obs.Clock.now_ns () - t1) /. 1e9 in
      Fi.disarm ();
      let completed = completed_counts ~domains ~stops in
      let _, resume_checks =
        full_audit ~config ~h:h2 ~ops ~starts ~stops ~results ~cur ~crash_site
          ~failed ~completed ~hops ~crashed:[]
      in
      let resumed_complete =
        match
          List.find_opt (fun k -> completed.(k) < m) (List.init domains Fun.id)
        with
        | None -> mk "resumed-complete" true ""
        | Some k ->
          mk "resumed-complete" false
            (Printf.sprintf "slot %d finished only %d of %d ops after recovery"
               k completed.(k) m)
      in
      ( Some rstats,
        mk "recovery" true "" :: contains_log :: recovered_refines
        :: resumed_complete :: resume_checks,
        resume_seconds )
  in
  {
    d_kind = kind;
    d_policy = policy;
    d_snapshots = caps;
    d_snap_crash = !snap_crash;
    d_commit_crash = wal_stats.Dwal.ws_crashed;
    d_wal_stats = wal_stats;
    d_tail_records =
      (match tail with None -> 0 | Some t -> Array.length t.Dwal.records);
    d_truncated_at =
      (match tail with None -> None | Some t -> t.Dwal.truncated_at);
    d_recovery = recovery_stats;
    d_fault_totals = fault_totals;
    d_checks = phase1_checks @ crash_checks @ cap_checks @ wal_checks @ recovery_checks;
    d_seconds = seconds;
    d_resume_seconds = resume_seconds;
  }

let all_kinds = [ Rsnap.Flat; Rsnap.Boxed; Rsnap.Growable; Rsnap.Rank; Rsnap.Packed ]

let run_durable_all ?(config = default_config) ?(kinds = all_kinds) ?progress () =
  let emit d = match progress with None -> () | Some f -> f d in
  List.concat_map
    (fun kind ->
      List.map
        (fun policy ->
          let d = run_durable_scenario ~config ~kind ~policy () in
          emit d;
          d)
        config.policies)
    kinds

let durable_to_json (d : durable) =
  let t = d.d_fault_totals in
  J.Obj
    [
      ("kind", J.String (Rsnap.kind_to_string d.d_kind));
      ("policy", J.String (Policy.to_string d.d_policy));
      ("seconds", J.Float d.d_seconds);
      ("resume_seconds", J.Float d.d_resume_seconds);
      ( "snapshots",
        J.List
          (List.map
             (fun (p, c) ->
               J.Obj
                 [
                   ("path", J.String p);
                   ("epoch", J.Int c.Dfuzzy.snapshot.Rsnap.epoch);
                   ("n", J.Int c.Dfuzzy.snapshot.Rsnap.n);
                   ("fixes", J.Int (List.length c.Dfuzzy.fixes));
                   ("scan_ns", J.Int c.Dfuzzy.scan_ns);
                   ("repair_ns", J.Int c.Dfuzzy.repair_ns);
                 ])
             d.d_snapshots) );
      ( "snap_crash",
        match d.d_snap_crash with
        | None -> J.Null
        | Some s -> J.String (Site.to_string s) );
      ( "commit_crash",
        match d.d_commit_crash with
        | None -> J.Null
        | Some (s, _) -> J.String (Site.to_string s) );
      ( "wal",
        J.Obj
          [
            ("appended", J.Int d.d_wal_stats.Dwal.ws_appended);
            ("committed", J.Int d.d_wal_stats.Dwal.ws_committed);
            ("commits", J.Int d.d_wal_stats.Dwal.ws_commits);
            ("tail_records", J.Int d.d_tail_records);
            ( "truncated_at",
              match d.d_truncated_at with None -> J.Null | Some o -> J.Int o );
          ] );
      ( "recovery",
        match d.d_recovery with
        | None -> J.Null
        | Some s -> Drecovery.stats_to_json s );
      ( "faults",
        J.Obj
          [
            ("site_hits", J.Int t.Fi.hits);
            ("yields", J.Int t.Fi.yields);
            ("stalls", J.Int t.Fi.stalls);
            ("crashes", J.Int t.Fi.crashes);
          ] );
      ( "checks",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.String c.check_name);
                   ("ok", J.Bool c.passed);
                   ("detail", J.String c.detail);
                 ])
             d.d_checks) );
      ("ok", J.Bool (durable_ok d));
    ]

let durable_report_to_json ?(config = default_config) ds =
  J.Obj
    (("schema", J.String "dsu-chaos-durable/v1")
     :: List.tl (config_fields config)
    @ [
        ("scenarios", J.List (List.map durable_to_json ds));
        ("ok", J.Bool (List.for_all durable_ok ds));
      ])

let pp_durable ppf (d : durable) =
  Format.fprintf ppf "@[<v>%s/%s durable: %s in %.2fs (+%.2fs resume)@,"
    (Rsnap.kind_to_string d.d_kind)
    (Policy.to_string d.d_policy)
    (if durable_ok d then "OK" else "FAILED")
    d.d_seconds d.d_resume_seconds;
  Format.fprintf ppf
    "  wal: %d appended, %d committed in %d commits%s@,"
    d.d_wal_stats.Dwal.ws_appended d.d_wal_stats.Dwal.ws_committed
    d.d_wal_stats.Dwal.ws_commits
    (match d.d_truncated_at with
    | None -> ""
    | Some o -> Printf.sprintf ", torn tail at byte %d" o);
  Format.fprintf ppf "  snapshots: %d written%s%s@,"
    (List.length d.d_snapshots)
    (match d.d_snap_crash with
    | None -> ""
    | Some s -> ", snapshotter crashed at " ^ Site.to_string s)
    (match d.d_commit_crash with
    | None -> ""
    | Some (s, _) -> ", committer crashed at " ^ Site.to_string s);
  (match d.d_recovery with
  | None -> ()
  | Some s -> Format.fprintf ppf "  %a@," Drecovery.pp_stats s);
  List.iter
    (fun c ->
      if not c.passed then
        Format.fprintf ppf "  check %s FAILED: %s@," c.check_name c.detail)
    d.d_checks;
  Format.fprintf ppf "@]"

let pp_durable_report ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_durable d) ds
