(** E9 — the Section 2 context: all twelve classical sequential variants
    (3 linking rules x 4 compaction rules) on one workload.  Every variant
    with compaction should land in the same near-linear work band
    (O(m alpha(n, m/n))); no-compaction variants pay logarithmic finds. *)

module Table = Repro_util.Table
module Seq = Sequential.Seq_dsu

let run ppf =
  let n = 1 lsl 14 in
  let rng = Repro_util.Rng.create 4242 in
  let ops =
    Workload.Random_mix.spanning_unites ~rng ~n
    @ Workload.Adversarial.all_same_set ~rng ~n ~m:(3 * n)
  in
  let total_ops = List.length ops in
  let table =
    Table.create
      ~headers:
        [ "linking"; "compaction"; "find iters"; "ptr updates"; "total work"; "work/op" ]
  in
  List.iter
    (fun linking ->
      List.iter
        (fun compaction ->
          if not (Seq.valid_combination linking compaction) then ()
          else
          let c = Measure.seq_work ~linking ~compaction ~seed:9 ~n ~ops () in
          let work = Seq.total_work c in
          Table.add_row table
            [
              Seq.linking_to_string linking;
              Seq.compaction_to_string compaction;
              Table.cell_int c.Seq.find_iters;
              Table.cell_int c.Seq.parent_updates;
              Table.cell_int work;
              Table.cell_float (float_of_int work /. float_of_int total_ops);
            ])
        Seq.all_compactions;
      Table.add_rule table)
    Seq.all_linkings;
  Table.pp ppf table;
  Format.fprintf ppf
    "@.n = %d, %d operations.  expected shape: the nine compacting variants \
     sit in one near-linear band (alpha is effectively constant); randomized \
     linking matches size/rank in expectation, confirming it costs nothing \
     to switch to the linking rule that concurrency needs.@."
    n total_ops

let experiment =
  Experiment.make ~id:"e9" ~title:"the classical sequential variants (incl. splicing)"
    ~claim:
      "Section 2: every linking x compaction combination runs in \
       O(m alpha(n, m/n)) (expected, for randomized linking)"
    run
