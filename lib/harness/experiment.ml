type t = {
  id : string;
  title : string;
  claim : string;
  run : Format.formatter -> unit;
}

let make ~id ~title ~claim run = { id; title; claim; run }

let header ppf t =
  let rule = String.make 72 '=' in
  Format.fprintf ppf "%s@.%s: %s@.claim: %s@.%s@." rule (String.uppercase_ascii t.id)
    t.title t.claim (String.make 72 '-')

let run ppf t =
  header ppf t;
  t.run ppf;
  Format.fprintf ppf "@."
