type t = { parent : int array; mutable depths : int array option }

let of_links ~n links =
  let parent = Array.init n (fun i -> i) in
  List.iter
    (fun (child, par) ->
      if child < 0 || child >= n || par < 0 || par >= n then
        invalid_arg "Forest.of_links: node out of range";
      if parent.(child) <> child then invalid_arg "Forest.of_links: node linked twice";
      parent.(child) <- par)
    links;
  { parent; depths = None }

let of_parents parent = { parent = Array.copy parent; depths = None }

let n t = Array.length t.parent

let parent t i = t.parent.(i)

let is_root t i = t.parent.(i) = i

let compute_depths t =
  let n = Array.length t.parent in
  let depths = Array.make n (-1) in
  let rec depth_of i visiting =
    if depths.(i) >= 0 then depths.(i)
    else if List.mem i visiting then invalid_arg "Forest.depths: cycle detected"
    else begin
      let d =
        if t.parent.(i) = i then 0 else 1 + depth_of t.parent.(i) (i :: visiting)
      in
      depths.(i) <- d;
      d
    end
  in
  for i = 0 to n - 1 do
    ignore (depth_of i [])
  done;
  depths

let depths t =
  match t.depths with
  | Some d -> d
  | None ->
    let d = compute_depths t in
    t.depths <- Some d;
    d

let height t = Array.fold_left max 0 (depths t)

let avg_depth t =
  let d = depths t in
  float_of_int (Array.fold_left ( + ) 0 d) /. float_of_int (Array.length d)

let ancestors t i =
  let rec loop acc u =
    let p = t.parent.(u) in
    if p = u then List.rev acc else loop (p :: acc) p
  in
  loop [] i

let depth_histogram t =
  let h = Repro_util.Histogram.create () in
  Array.iter (fun d -> Repro_util.Histogram.add h d) (depths t);
  h
