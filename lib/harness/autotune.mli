(** Plan-space autotuner.

    Sweeps a set of {!Dsu.Plan} points (default {!Dsu.Plan.candidates})
    over one workload {!profile} with {!Scalability.run_plan_point}, ranks
    them by throughput, and reports the winner with its margins over the
    runner-up and over {!Dsu.Plan.default}.  Results serialize as the
    ["dsu-autotune/v1"] JSON document (consumed by {!Perfdiff}) and cache
    on disk keyed by the profile's {!fingerprint}, so [--plan auto] in the
    CLIs is a file read on every run after the first. *)

type profile = {
  n : int;
  domains : int;
  unite_percent : int;
  dist : Scalability.dist;
  total_ops : int;
  seed : int;
}
(** The workload shape the tuner optimizes for.  All fields feed the
    {!fingerprint}. *)

val default_profile : profile
(** n = 2^16, min(recommended, 4) domains, 30% unites, uniform keys,
    200k ops, seed 21. *)

val fingerprint : profile -> string
(** Deterministic cache key, e.g. ["n65536-d2-u30-uniform-ops200000-s21"]. *)

type measurement = {
  plan : Dsu.Plan.t;
  mops_per_sec : float;  (** best of the repeats *)
  failures : int;  (** worker exceptions during the timed runs *)
}

type result = {
  profile : profile;
  winner : Dsu.Plan.t;
  winner_mops : float;
  runner_up : Dsu.Plan.t option;
  margin_over_runner_up_pct : float;
  margin_over_default_pct : float;
      (** winner vs {!Dsu.Plan.default} on the same profile; 0 when the
          default wins *)
  measurements : measurement list;  (** in sweep order *)
}

val run :
  ?plans:Dsu.Plan.t list ->
  ?repeats:int ->
  ?progress:(measurement -> unit) ->
  profile:profile ->
  unit ->
  result
(** One full sweep.  [plans] defaults to {!Dsu.Plan.candidates};
    {!Dsu.Plan.default} is force-included so the default margin is always
    measured.  [repeats] (default 1) takes the best of that many timed
    runs per plan.  Plans with worker failures are excluded from winning.
    @raise Invalid_argument on an empty [plans] list. *)

(** {1 Codec} — the ["dsu-autotune/v1"] schema *)

val schema : string

val to_json : result -> Repro_obs.Json.t
val of_json : Repro_obs.Json.t -> (result, string) Stdlib.result
val of_json_string : string -> (result, string) Stdlib.result

(** {1 Cache} *)

val default_cache_dir : string
(** [".dsu-autotune"], relative to the working directory. *)

val cache_path : dir:string -> profile -> string

val load_cached : dir:string -> profile -> result option
(** [None] on a missing, unreadable, corrupt or mismatching entry — a bad
    cache file is just a miss, never an error. *)

val store : dir:string -> result -> unit
(** Creates [dir] if missing.  Raises [Sys_error]/[Unix.Unix_error] on I/O
    failure. *)

val auto :
  ?plans:Dsu.Plan.t list ->
  ?repeats:int ->
  ?cache_dir:string ->
  ?progress:(measurement -> unit) ->
  profile:profile ->
  unit ->
  result * [ `Cached | `Measured ]
(** The [--plan auto] engine: {!load_cached}, falling back to {!run} +
    best-effort {!store}. *)

val pp : Format.formatter -> result -> unit
