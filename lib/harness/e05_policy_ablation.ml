(** E5 — Theorems 4.3, 5.1, 5.2 side by side: the three Find variants on the
    same workload.  One-try's bound replaces p by p^2 inside alpha and the
    log, so its gap from two-try should widen as p grows; no-compaction
    pays the full O(log n) per find. *)

module Table = Repro_util.Table

let work ~policy ~n ~m ~p ~seed =
  let rng = Repro_util.Rng.create seed in
  let ops_list =
    Workload.Random_mix.spanning_unites ~rng ~n
    @ Workload.Adversarial.all_same_set ~rng ~n ~m
  in
  let ops = Workload.Op.round_robin ops_list ~p in
  let r = Measure.run_sim ~policy ~n ~seed ~ops () in
  (Measure.work_per_op r, r.Measure.stats)

let run ppf =
  let n = 1 lsl 12 in
  let m = 4 * n in
  let table =
    Table.create
      ~headers:
        [ "p"; "policy"; "work/op"; "vs two-try"; "compaction cas"; "cas failed" ]
  in
  List.iter
    (fun p ->
      let results =
        List.map
          (fun policy ->
            let wpo, stats = work ~policy ~n ~m ~p ~seed:(11 * p) in
            (policy, wpo, stats))
          Dsu.Find_policy.all
      in
      let two_try =
        List.find_map
          (fun (policy, wpo, _) ->
            if policy = Dsu.Find_policy.Two_try_splitting then Some wpo else None)
          results
        |> Option.get
      in
      List.iter
        (fun (policy, wpo, stats) ->
          Table.add_row table
            [
              Table.cell_int p;
              Dsu.Find_policy.to_string policy;
              Table.cell_float wpo;
              Table.cell_ratio (wpo /. two_try);
              Table.cell_int stats.Dsu.Stats.compaction_cas;
              Table.cell_int stats.Dsu.Stats.compaction_cas_failures;
            ])
        results;
      Table.add_rule table)
    [ 1; 4; 16 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: both splitting variants beat no-compaction on this \
     find-heavy workload; one-try trails two-try slightly, with the gap (and \
     its failed-CAS count) growing with p, consistent with the p vs p^2 \
     difference between Theorems 5.1 and 5.2.@."

let experiment =
  Experiment.make ~id:"e5" ~title:"find-policy ablation: none / one-try / two-try"
    ~claim:
      "Theorems 4.3, 5.1, 5.2: two-try splitting achieves the best work \
       bound; one-try's bound degrades with p^2; no compaction pays log n \
       per find"
    run
