(** E8 — the headline comparison (Section 1): the randomized algorithm
    matches the work of a rank-based concurrent union-find without the
    indirection Anderson & Woll needed (their published structure reaches a
    node's (parent, rank) pair through an extra pointer hop), and its total
    work is nearly independent of p — so with p busy processes it achieves
    almost-linear speedup over the sequential algorithm.

    Two AW columns: "AW'91" charges the extra read per word access that
    their indirection costs (the comparator the paper argues against);
    "AW packed" is the modernized single-word variant (rank and parent
    packed), which concedes AW the benefit of 64-bit packing.

    "speedup" = sequential work / (concurrent work / p): the idealized
    parallel time gain when p equal-speed processes stay busy. *)

module Table = Repro_util.Table

let workload ~n ~m ~seed =
  let rng = Repro_util.Rng.create seed in
  Workload.Random_mix.spanning_unites ~rng ~n
  @ Workload.Random_mix.mixed ~rng ~n ~m ~unite_fraction:0.2

let run ppf =
  let n = 1 lsl 12 in
  let m = 3 * n in
  let seed = 77 in
  let ops_list = workload ~n ~m ~seed in
  let total_ops = List.length ops_list in
  let seq =
    Measure.seq_work ~linking:Sequential.Seq_dsu.By_random
      ~compaction:Sequential.Seq_dsu.Splitting ~seed ~n ~ops:ops_list ()
  in
  let seq_total = Sequential.Seq_dsu.total_work seq in
  let table =
    Table.create
      ~headers:
        [
          "p";
          "JT work/op";
          "AW'91 work/op";
          "AW packed";
          "AW'91/JT";
          "JT speedup";
        ]
  in
  List.iter
    (fun p ->
      let ops = Workload.Op.round_robin ops_list ~p in
      let jt = Measure.run_sim ~policy:Dsu.Find_policy.Two_try_splitting ~n ~seed ~ops () in
      let aw91 = Measure.run_sim_aw ~indirection:true ~n ~seed ~ops () in
      let awp = Measure.run_sim_aw ~indirection:false ~n ~seed ~ops () in
      let per_op total = float_of_int total /. float_of_int total_ops in
      let jt_wpo = Measure.work_per_op jt in
      let speedup total =
        float_of_int seq_total /. (float_of_int total /. float_of_int p)
      in
      Table.add_row table
        [
          Table.cell_int p;
          Table.cell_float jt_wpo;
          Table.cell_float (per_op aw91.Measure.aw_total_steps);
          Table.cell_float (per_op awp.Measure.aw_total_steps);
          Table.cell_ratio (per_op aw91.Measure.aw_total_steps /. jt_wpo);
          Table.cell_ratio (speedup jt.Measure.total_steps);
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.sequential reference: randomized linking + splitting, total work %d \
     (%.2f/op).@.expected shape: JT total work stays nearly flat as p grows, \
     so JT speedup approaches p (almost-linear); JT beats the published AW \
     structure by the indirection constant and matches the modernized packed \
     variant while being simpler (one CAS per link, no rank maintenance, no \
     packing-imposed bound on n).@."
    seq_total
    (float_of_int seq_total /. float_of_int total_ops)

let experiment =
  Experiment.make ~id:"e8" ~title:"vs Anderson–Woll and sequential baselines"
    ~claim:
      "Section 1: the algorithm significantly improves on Anderson & Woll \
       and achieves almost-linear speedup when all processes stay busy"
    run
