(** E2 — Corollary 4.2.1: the union forest built by randomized linking has
    height O(log n) w.h.p.  We record every link (the union forest ignores
    compaction), measure forest height across n, and fit height against
    lg n; the slope is the hidden constant.  A concurrent configuration is
    included to show asynchrony does not change the shape. *)

module Table = Repro_util.Table
module Stats = Repro_util.Stats

let native_forest_height ~n ~seed =
  let links = ref [] in
  let d =
    Dsu.Native.create ~seed ~on_link:(fun ~child ~parent -> links := (child, parent) :: !links) n
  in
  let rng = Repro_util.Rng.create (seed * 31) in
  Workload.Op.run_native d (Workload.Random_mix.spanning_unites ~rng ~n);
  let f = Forest.of_links ~n !links in
  (Forest.height f, Forest.avg_depth f)

let concurrent_forest_height ~n ~seed ~p =
  let rng = Repro_util.Rng.create (seed * 31) in
  let ops = Workload.Op.round_robin (Workload.Random_mix.spanning_unites ~rng ~n) ~p in
  let r = Measure.run_sim ~n ~seed ~ops () in
  let f = Forest.of_links ~n r.Measure.links in
  (Forest.height f, Forest.avg_depth f)

let trials = 5

let run ppf =
  let table =
    Table.create
      ~headers:[ "n"; "mode"; "mean height"; "max height"; "height / lg n"; "avg depth" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let heights = Array.init trials (fun t -> native_forest_height ~n ~seed:(1000 + t)) in
      let hs = Array.map (fun (h, _) -> float_of_int h) heights in
      let av = Stats.mean (Array.map snd heights) in
      let lg = float_of_int (Repro_util.Alpha.floor_log2 n) in
      points := (lg, Stats.mean hs) :: !points;
      Table.add_row table
        [
          Table.cell_int n;
          "seq";
          Table.cell_float (Stats.mean hs);
          Table.cell_float ~decimals:0 (Array.fold_left max 0. hs);
          Table.cell_float (Stats.mean hs /. lg);
          Table.cell_float av;
        ])
    [ 1 lsl 8; 1 lsl 10; 1 lsl 12; 1 lsl 14; 1 lsl 16 ];
  (* one concurrent configuration, p = 4 under the random scheduler *)
  let n = 1 lsl 12 in
  let heights = Array.init trials (fun t -> concurrent_forest_height ~n ~seed:(2000 + t) ~p:4) in
  let hs = Array.map (fun (h, _) -> float_of_int h) heights in
  let lg = float_of_int (Repro_util.Alpha.floor_log2 n) in
  Table.add_rule table;
  Table.add_row table
    [
      Table.cell_int n;
      "p=4 sim";
      Table.cell_float (Stats.mean hs);
      Table.cell_float ~decimals:0 (Array.fold_left max 0. hs);
      Table.cell_float (Stats.mean hs /. lg);
      Table.cell_float (Stats.mean (Array.map snd heights));
    ];
  Table.pp ppf table;
  let slope, intercept = Stats.linear_fit (Array.of_list !points) in
  Format.fprintf ppf "@.%s@."
    (Repro_util.Ascii_plot.render_single ~height:12 ~x_label:"lg n"
       ~y_label:"mean union-forest height" (List.rev !points));
  Format.fprintf ppf
    "least-squares fit: height = %.2f * lg n + %.2f (R^2 = %.3f)@.expected \
     shape: linear in lg n with a small constant slope; the paper proves \
     height <= c lg n w.h.p.@."
    slope intercept
    (Stats.r_squared (Array.of_list !points))

let experiment =
  Experiment.make ~id:"e2" ~title:"union-forest height is logarithmic"
    ~claim:"Corollary 4.2.1: the union forest has height O(log n) w.h.p." run
