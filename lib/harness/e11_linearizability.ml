(** E11 — Theorem 3.4, exercised empirically: every history produced by any
    variant under any schedule linearizes against the sequential partition
    specification.  Small instances so the Wing–Gong search is exact; the
    schedulers include the CAS adversary and the laggard (which also
    witnesses wait-freedom: the starved process still completes). *)

module Table = Repro_util.Table

let schedulers seed =
  [
    Apram.Scheduler.round_robin ();
    Apram.Scheduler.sequential ();
    Apram.Scheduler.random ~seed;
    Apram.Scheduler.quantum ~seed ~quantum:3;
    Apram.Scheduler.cas_adversary ~seed;
    Apram.Scheduler.laggard ~seed ~victim:0 ~delay:5;
  ]

let random_small_workload rng ~n ~ops_per_proc ~p =
  Array.init p (fun _ ->
      List.init ops_per_proc (fun _ ->
          let x = Repro_util.Rng.int rng n in
          let y = Repro_util.Rng.int rng n in
          if Repro_util.Rng.bool rng then Workload.Op.Unite (x, y)
          else Workload.Op.Same_set (x, y)))

let run ppf =
  let n = 5 in
  let table =
    Table.create ~headers:[ "policy"; "early"; "histories"; "linearizable"; "violations" ]
  in
  List.iter
    (fun policy ->
      List.iter
        (fun early ->
          let checked = ref 0 in
          let ok = ref 0 in
          let rng = Repro_util.Rng.create 1234 in
          for trial = 1 to 25 do
            let ops = random_small_workload rng ~n ~ops_per_proc:3 ~p:3 in
            List.iter
              (fun sched ->
                let r = Measure.run_sim ~sched ~policy ~early ~n ~seed:trial ~ops () in
                incr checked;
                match Lincheck.Checker.check ~n r.Measure.history with
                | Lincheck.Checker.Linearizable -> incr ok
                | Lincheck.Checker.Not_linearizable _ -> ())
              (schedulers (trial * 17))
          done;
          Table.add_row table
            [
              Dsu.Find_policy.to_string policy;
              string_of_bool early;
              Table.cell_int !checked;
              Table.cell_int !ok;
              Table.cell_int (!checked - !ok);
            ])
        [ false; true ])
    Dsu.Find_policy.all;
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: zero violations in every row — all six variants \
     linearize under all six schedulers, including the CAS adversary and the \
     process-starving laggard (whose victim still finishes: wait-freedom).@."

let experiment =
  Experiment.make ~id:"e11" ~title:"linearizability under adversarial schedules"
    ~claim:
      "Theorem 3.4: the implementation is a correct linearizable wait-free \
       algorithm with any of the three Find versions"
    run
