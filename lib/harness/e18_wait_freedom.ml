(** E18 — Lemma 3.3 quantified: wait-freedom means a starved process still
    finishes its operation in O(h + 1) of {e its own} steps (h = union
    forest height), no matter how long the adversary makes it wait.  We
    starve a victim with the laggard scheduler at increasing delays while
    3 aggressors hammer the structure with conflicting unites; the victim's
    own step count must stay flat (bounded by the forest height), even as
    its wall-clock (total schedule length until it finishes) grows
    linearly with the delay. *)

module Table = Repro_util.Table

let victim_cost ~delay ~seed =
  let n = 256 in
  let spec = Dsu.Sim.spec ~n ~seed () in
  let h = Dsu.Sim.handle spec in
  let victim = [ Dsu.Sim.same_set_op h 0 (n - 1) ] in
  let aggressor pid =
    let rng = Repro_util.Rng.create (seed + pid) in
    List.init 200 (fun _ ->
        Dsu.Sim.unite_op h (Repro_util.Rng.int rng n) (Repro_util.Rng.int rng n))
  in
  let ops = [| victim; aggressor 1; aggressor 2; aggressor 3 |] in
  let outcome =
    Apram.Sim.run_ops ~mem_size:n ~init:(Dsu.Sim.init spec)
      ~sched:(Apram.Scheduler.laggard ~seed:(seed * 3) ~victim:0 ~delay)
      ops
  in
  let victim_op =
    List.find
      (fun op -> op.Apram.History.pid = 0)
      (Apram.History.complete_ops outcome.Apram.Sim.history)
  in
  (victim_op.Apram.History.steps, outcome.Apram.Sim.total_steps)

let run ppf =
  let table =
    Table.create
      ~headers:
        [ "laggard delay"; "victim steps (own work)"; "total steps until done"; "victim share" ]
  in
  List.iter
    (fun delay ->
      let trials = 5 in
      let own = Array.make trials 0 and total = Array.make trials 0 in
      for t = 0 to trials - 1 do
        let o, tt = victim_cost ~delay ~seed:(100 + t) in
        own.(t) <- o;
        total.(t) <- tt
      done;
      let mean xs = Repro_util.Stats.mean (Array.map float_of_int xs) in
      Table.add_row table
        [
          Table.cell_int delay;
          Table.cell_float (mean own);
          Table.cell_float ~decimals:0 (mean total);
          Printf.sprintf "%.2f%%" (100. *. mean own /. mean total);
        ])
    [ 1; 10; 100; 1000 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: the victim's own step count stays flat — a handful \
     of steps, bounded by the union-forest height (Lemma 3.3) — across a \
     1000x range of starvation; it is delayed, never prevented: \
     wait-freedom.  A lock-based structure would instead see the victim's \
     own work explode whenever an aggressor parks inside the critical \
     section.@."

let experiment =
  Experiment.make ~id:"e18" ~title:"wait-freedom under starvation, quantified"
    ~claim:
      "Lemma 3.3 / Theorem 3.4: any execution of SameSet or Unite finishes \
       in O(h + 1) of its own steps regardless of other processes' speeds"
    run
