(** Perf-regression differ over the repo's benchmark JSON documents.

    Compares two documents of the same kind — bechamel [bench --out]
    results, [dsu-scalability/*] sweeps, [dsu-latency/*] sweeps,
    [dsu-service/*] serving reports (sweep points and crash-drill RTO;
    RPO is a correctness gate, not a diffed metric), [dsu-durability/*]
    reports, or [dsu-autotune/*] reports (auto-detected) — and flags
    per-configuration metric deltas beyond a noise threshold, respecting
    each metric's better-direction ([ns_per_run], latency quantiles,
    [pause_ns] and [rto_ns] lower-better, [mops_per_sec] and
    [achieved_rate] higher-better).  For autotune
    documents the per-plan throughputs diff as ordinary rows and a changed
    winning plan is reported in {!report.warnings} — a warning, not a
    structural error.  Consumed by [bench --baseline]/[--guard-tuned] and
    the [dsu_workload perfdiff] / [latency --baseline] CLIs; the CI
    perf-history artifact is {!to_json}'s [dsu-perfdiff/v1] document. *)

type direction = Lower_better | Higher_better

type row = {
  key : string;  (** which measured configuration *)
  metric : string;
  dir : direction;
  base : float;
  current : float;
  delta_pct : float;  (** signed; positive means current is larger *)
}

type report = {
  kind : string;  (** detected document kind *)
  threshold_pct : float;
  rows : row list;  (** every key+metric present in both documents *)
  regressions : row list;
  improvements : row list;
  only_base : string list;
  only_current : string list;
  warnings : string list;
      (** non-fatal observations — currently the autotune winner changing
          between baseline and current *)
}

val diff :
  ?threshold_pct:float ->
  base:Repro_obs.Json.t ->
  current:Repro_obs.Json.t ->
  unit ->
  (report, string) result
(** [threshold_pct] defaults to 10.  [Error] on unparseable structure,
    unrecognized schema, or kind mismatch. *)

val diff_strings :
  ?threshold_pct:float ->
  base:string ->
  current:string ->
  unit ->
  (report, string) result
(** {!diff} after parsing both documents; malformed JSON is an [Error]. *)

val to_json : report -> Repro_obs.Json.t
(** The [dsu-perfdiff/v1] document. *)

val pp : Format.formatter -> report -> unit
