(* Coordinated-omission-free open-loop load harness.

   A closed-loop harness issues the next operation only when the previous
   one returns, so a server stall pauses the load generator too: the
   stall's queueing delay never appears in the numbers (coordinated
   omission).  Here each generator domain walks a precomputed arrival
   schedule and charges every operation from its *intended* start time —
   an operation delayed behind a stall is billed for the wait.  The
   service-time distribution (completion − actual start: what a
   closed-loop harness would report) is recorded alongside, so the gap
   between the two IS the coordinated-omission error. *)

module Clock = Repro_obs.Clock
module Hdr = Repro_obs.Hdr
module Reservoir = Repro_obs.Reservoir
module J = Repro_obs.Json
module Rng = Repro_util.Rng

type shape = Fixed | Poisson | Bursty of int

let shape_to_string = function
  | Fixed -> "fixed"
  | Poisson -> "poisson"
  | Bursty k -> Printf.sprintf "bursty:%d" k

let shape_of_string s =
  match String.split_on_char ':' s with
  | [ "fixed" ] -> Some Fixed
  | [ "poisson" ] -> Some Poisson
  | [ "bursty" ] -> Some (Bursty 16)
  | [ "bursty"; k ] -> (
    match int_of_string_opt k with
    | Some k when k > 0 -> Some (Bursty k)
    | _ -> None)
  | _ -> None

type config = {
  n : int;  (* universe size *)
  unite_percent : int;  (* remaining ops are same_set *)
  seed : int;
  domains : int;  (* load-generator domains *)
  ops : int;  (* operations per generator *)
  shape : shape;
  reservoir : int;  (* exact open-loop samples kept per point *)
}

let default_config =
  {
    n = 1 lsl 16;
    unite_percent = 30;
    seed = 42;
    domains = 2;
    ops = 20_000;
    shape = Poisson;
    reservoir = 512;
  }

(* Deterministic arrival offsets (ns from the generator's epoch) for one
   generator.  Mean inter-arrival is [1e9 /. rate] for every shape. *)
let arrival_offsets ~shape ~rate ~ops ~seed =
  let period = 1e9 /. rate in
  let off = Array.make ops 0 in
  (match shape with
  | Fixed ->
    for i = 0 to ops - 1 do
      off.(i) <- int_of_float (float_of_int i *. period)
    done
  | Poisson ->
    let rng = Rng.create seed in
    let t = ref 0.0 in
    for i = 0 to ops - 1 do
      off.(i) <- int_of_float !t;
      (* exponential inter-arrival; 1 - u > 0 since u < 1 *)
      t := !t -. (log (1.0 -. Rng.float rng) *. period)
    done
  | Bursty k ->
    (* k back-to-back arrivals per burst, bursts spaced k * period. *)
    for i = 0 to ops - 1 do
      off.(i) <- int_of_float (float_of_int (i / k * k) *. period)
    done);
  off

(* Exported as [arrivals]: the serving harness drives its generators with
   the exact same schedules, so its open-loop accounting is comparable. *)
let arrivals = arrival_offsets

type op = Unite of int * int | Same_set of int * int

let make_ops ~n ~unite_percent ~ops ~seed =
  let rng = Rng.create seed in
  Array.init ops (fun _ ->
      let x = Rng.int rng n and y = Rng.int rng n in
      if Rng.int rng 100 < unite_percent then Unite (x, y) else Same_set (x, y))

type point = {
  rate : float;  (* offered arrivals/sec per generator *)
  offered_rate : float;  (* rate * domains *)
  target_ops : int;
  completed_ops : int;
  duration_s : float;
  achieved_rate : float;
  latency : Hdr.snapshot;  (* completion − intended start *)
  service : Hdr.snapshot;  (* completion − actual start *)
  samples : int array;  (* sorted reservoir of open-loop latencies *)
  max_lag_ns : int;  (* worst scheduling lag: actual − intended start *)
  saturated : bool;
}

let spin_until target =
  while Clock.now_ns () < target do
    Domain.cpu_relax ()
  done

(* [stall ~domain ~index] returns extra busy-work nanoseconds injected
   into the service of that operation — the "deliberately stalled server"
   of the coordinated-omission demonstration. *)
let run_point ?(stall = fun ~domain:_ ~index:_ -> 0) ~config ~rate () =
  if rate <= 0.0 then invalid_arg "Latency.run_point: rate must be positive";
  if config.domains < 1 || config.ops < 1 then
    invalid_arg "Latency.run_point: domains and ops must be positive";
  let d = Dsu.Native.create ~seed:config.seed config.n in
  let worker k =
    let offsets =
      arrival_offsets ~shape:config.shape ~rate ~ops:config.ops
        ~seed:(config.seed + (1000 * k) + 1)
    in
    let ops =
      make_ops ~n:config.n ~unite_percent:config.unite_percent ~ops:config.ops
        ~seed:(config.seed + (1000 * k) + 2)
    in
    let lat = Hdr.create ~sharded:false () in
    let srv = Hdr.create ~sharded:false () in
    Hdr.materialize lat;
    Hdr.materialize srv;
    let res =
      Reservoir.create ~seed:(config.seed + (1000 * k) + 3)
        ~capacity:config.reservoir ()
    in
    let max_lag = ref 0 in
    fun () ->
      let epoch = Clock.now_ns () in
      for i = 0 to config.ops - 1 do
        let intended = epoch + offsets.(i) in
        spin_until intended;
        let actual = Clock.now_ns () in
        if actual - intended > !max_lag then max_lag := actual - intended;
        let extra = stall ~domain:k ~index:i in
        if extra > 0 then spin_until (actual + extra);
        (match ops.(i) with
        | Unite (x, y) -> Dsu.Native.unite d x y
        | Same_set (x, y) -> ignore (Dsu.Native.same_set d x y));
        let fin = Clock.now_ns () in
        Hdr.observe lat (fin - intended);
        Hdr.observe srv (fin - actual);
        Reservoir.add res (fin - intended)
      done;
      let dur = Clock.now_ns () - epoch in
      (Hdr.snap lat, Hdr.snap srv, Reservoir.samples res, !max_lag, dur)
  in
  (* Build workers (schedules, op streams, recorders) before spawning so
     domain start-up cost is not on any schedule; each generator times
     its own epoch-to-last-completion span, so spawn/join overhead never
     counts against the achieved rate. *)
  let bodies = List.init config.domains worker in
  let handles = List.map (fun body -> Domain.spawn body) bodies in
  let results = List.map Domain.join handles in
  let duration_s =
    float_of_int
      (List.fold_left (fun acc (_, _, _, _, d) -> Stdlib.max acc d) 1 results)
    /. 1e9
  in
  let latency =
    List.fold_left (fun acc (l, _, _, _, _) -> Hdr.merge acc l) Hdr.empty results
  in
  let service =
    List.fold_left (fun acc (_, s, _, _, _) -> Hdr.merge acc s) Hdr.empty results
  in
  let samples =
    let all = Array.concat (List.map (fun (_, _, s, _, _) -> s) results) in
    Array.sort compare all;
    if Array.length all <= config.reservoir then all
    else
      (* deterministic even-stride thin to the configured capacity *)
      Array.init config.reservoir (fun i ->
          all.(i * Array.length all / config.reservoir))
  in
  let max_lag_ns =
    List.fold_left (fun acc (_, _, _, m, _) -> Stdlib.max acc m) 0 results
  in
  let target_ops = config.domains * config.ops in
  let offered_rate = rate *. float_of_int config.domains in
  let achieved_rate = float_of_int latency.Hdr.count /. duration_s in
  {
    rate;
    offered_rate;
    target_ops;
    completed_ops = latency.Hdr.count;
    duration_s;
    achieved_rate;
    latency;
    service;
    samples;
    max_lag_ns;
    saturated = achieved_rate < 0.95 *. offered_rate;
  }

let sweep ?stall ~config ~rates () =
  List.map (fun rate -> run_point ?stall ~config ~rate ()) rates

(* The saturation knee: the highest offered rate the system still kept up
   with.  [None] when every point saturated. *)
let knee points =
  List.fold_left
    (fun acc p ->
      if p.saturated then acc
      else
        match acc with
        | Some r when r >= p.offered_rate -> acc
        | _ -> Some p.offered_rate)
    None points

let hdr_fields (h : Hdr.snapshot) =
  [
    ("count", J.Int h.Hdr.count);
    ("mean_ns", J.Float (Hdr.mean h));
    ("min_ns", J.Int h.Hdr.min);
    ("p50_ns", J.Int (Hdr.quantile h 0.50));
    ("p90_ns", J.Int (Hdr.quantile h 0.90));
    ("p99_ns", J.Int (Hdr.quantile h 0.99));
    ("p999_ns", J.Int (Hdr.quantile h 0.999));
    ("max_ns", J.Int h.Hdr.max);
  ]

let point_json p =
  J.Obj
    [
      ("arrival_rate_per_gen", J.Float p.rate);
      ("offered_rate", J.Float p.offered_rate);
      ("target_ops", J.Int p.target_ops);
      ("completed_ops", J.Int p.completed_ops);
      ("duration_s", J.Float p.duration_s);
      ("achieved_rate", J.Float p.achieved_rate);
      ("saturated", J.Bool p.saturated);
      ("max_lag_ns", J.Int p.max_lag_ns);
      ("latency", J.Obj (hdr_fields p.latency));
      ("service", J.Obj (hdr_fields p.service));
      ( "samples_ns",
        J.List (Array.to_list (Array.map (fun v -> J.Int v) p.samples)) );
    ]

let to_json config points =
  J.Obj
    [
      ("schema", J.String "dsu-latency/v1");
      ("n", J.Int config.n);
      ("unite_percent", J.Int config.unite_percent);
      ("seed", J.Int config.seed);
      ("domains", J.Int config.domains);
      ("ops_per_domain", J.Int config.ops);
      ("shape", J.String (shape_to_string config.shape));
      ("points", J.List (List.map point_json points));
      ( "knee_rate",
        match knee points with Some r -> J.Float r | None -> J.Null );
    ]

let pp_point ppf p =
  Format.fprintf ppf
    "rate %8.0f/s  achieved %8.0f/s  p50 %7d  p99 %8d  p999 %9d  max %9d  \
     %s"
    p.offered_rate p.achieved_rate
    (Hdr.quantile p.latency 0.50)
    (Hdr.quantile p.latency 0.99)
    (Hdr.quantile p.latency 0.999)
    p.latency.Hdr.max
    (if p.saturated then "SATURATED" else "ok")

let pp_table ppf points =
  Format.fprintf ppf "open-loop latency (ns, intended-start accounting)@.";
  List.iter (fun p -> Format.fprintf ppf "  %a@." pp_point p) points;
  match knee points with
  | Some r -> Format.fprintf ppf "  saturation knee: %.0f ops/s@." r
  | None -> Format.fprintf ppf "  saturation knee: below the swept range@."
