(* Streaming-connectivity benchmark family: edges/sec for the
   ConnectIt-style pipeline (sampling x finish x plan x mode) over
   streamed generators, against the Borůvka and Anderson–Woll baselines,
   plus a Pătrașcu–Thorup adversarial incremental-connectivity point.
   Emits dsu-connectivity/v1, understood by {!Perfdiff}. *)

module J = Repro_obs.Json
module Clock = Repro_obs.Clock
module Table = Repro_util.Table
module Rng = Repro_util.Rng
module Connectit = Graphs.Connectit
module Edge_stream = Graphs.Edge_stream

type gen = Rmat | Er | Power_law

let all_gens = [ Rmat; Er; Power_law ]
let gen_to_string = function Rmat -> "rmat" | Er -> "er" | Power_law -> "power-law"

let gen_of_string = function
  | "rmat" -> Some Rmat
  | "er" | "erdos-renyi" -> Some Er
  | "power-law" | "powerlaw" -> Some Power_law
  | _ -> None

type config = {
  scale : int;  (** 2^scale vertices *)
  edge_factor : int;  (** edges = edge_factor * 2^scale *)
  chunk_size : int;
  seed : int;
  simple : bool;
  domains_list : int list;
  gens : gen list;
  samplings : Connectit.sampling list;
  finishes : Connectit.finish list;
  modes : Connectit.mode list;
  plan : Dsu.Plan.t;
  block_chunks : int;
  baselines : bool;
  adversarial_n : int;  (** 0 disables the PT point *)
}

let default_config =
  {
    scale = 16;
    edge_factor = 8;
    chunk_size = 1 lsl 14;
    seed = 42;
    simple = false;
    domains_list = [ 1; 4 ];
    gens = [ Rmat; Er ];
    samplings = [ Connectit.No_sampling; Connectit.K_out 2 ];
    finishes = [ Connectit.Per_op; Connectit.Bulk ];
    modes = [ Connectit.Racy ];
    plan = Dsu.Plan.default;
    block_chunks = 8;
    baselines = true;
    adversarial_n = 1 lsl 14;
  }

let make_stream config gen =
  let n = 1 lsl config.scale in
  let m = config.edge_factor * n in
  match gen with
  | Rmat ->
    Edge_stream.rmat ~simple:config.simple ~chunk_size:config.chunk_size
      ~seed:config.seed ~scale:config.scale ~edge_factor:config.edge_factor ()
  | Er ->
    Edge_stream.erdos_renyi ~simple:config.simple
      ~chunk_size:config.chunk_size ~seed:config.seed ~n ~m ()
  | Power_law ->
    Edge_stream.power_law ~simple:config.simple ~chunk_size:config.chunk_size
      ~seed:config.seed ~n ~m ()

type point = {
  gen : string;
  n : int;
  m : int;
  domains : int;
  sampling : string;
  finish : string;
  mode : string;
  plan : string;
  seconds : float;
  edges_per_sec : float;  (** total-edge throughput (whole pipeline) *)
  finish_edges_per_sec : float;
      (** finish-phase-only throughput over all [m] edges *)
  sample_ns : int;
  finish_ns : int;
  label_ns : int;
  skipped_ratio : float;
  components : int;
  det_rounds : int;
}

let run_point ~config ~gen ~domains ~sampling ~finish ~mode =
  let stream = make_stream config gen in
  let r =
    Connectit.run_stream ~domains ~seed:config.seed ~plan:config.plan
      ~sampling ~finish ~mode ~block_chunks:config.block_chunks stream
  in
  let m = r.Connectit.edges_total in
  let seconds = float_of_int r.Connectit.total_ns /. 1e9 in
  let eps ns = if ns <= 0 then 0. else float_of_int m /. (float_of_int ns /. 1e9) in
  {
    gen = Edge_stream.kind_name stream;
    n = Edge_stream.n stream;
    m;
    domains;
    sampling = Connectit.sampling_to_string sampling;
    finish = Connectit.finish_to_string finish;
    mode = Connectit.mode_to_string mode;
    plan = Dsu.Plan.to_string config.plan;
    seconds;
    edges_per_sec = eps r.Connectit.total_ns;
    finish_edges_per_sec = eps r.Connectit.finish_ns;
    sample_ns = r.Connectit.sample_ns;
    finish_ns = r.Connectit.finish_ns;
    label_ns = r.Connectit.label_ns;
    skipped_ratio =
      (if m = 0 then 0.
       else float_of_int r.Connectit.edges_skipped /. float_of_int m);
    components = r.Connectit.components;
    det_rounds = r.Connectit.det_rounds;
  }

let sweep ?(config = default_config) ?(progress = fun (_ : point) -> ()) () =
  let points = ref [] in
  List.iter
    (fun gen ->
      List.iter
        (fun domains ->
          List.iter
            (fun mode ->
              match mode with
              | Connectit.Deterministic ->
                (* Sampling and finish are ignored by the deterministic
                   engine; one point per (gen, domains). *)
                let p =
                  run_point ~config ~gen ~domains
                    ~sampling:Connectit.No_sampling ~finish:Connectit.Bulk
                    ~mode
                in
                progress p;
                points := p :: !points
              | Connectit.Racy ->
                List.iter
                  (fun sampling ->
                    List.iter
                      (fun finish ->
                        let p =
                          run_point ~config ~gen ~domains ~sampling ~finish
                            ~mode
                        in
                        progress p;
                        points := p :: !points)
                      config.finishes)
                  config.samplings)
            config.modes)
        config.domains_list)
    config.gens;
  List.rev !points

(* ------------------------------------------------------------ baselines *)

type baseline_point = {
  b_name : string;
  b_gen : string;
  b_domains : int;
  b_m : int;
  b_seconds : float;
  b_edges_per_sec : float;
}

(* Anderson–Woll locked baseline: per-op unites (it has no bulk kernel)
   over the same streamed chunks, domains racing on the chunk cursor. *)
let anderson_woll_baseline ~config ~gen ~domains =
  let stream = make_stream config gen in
  let n = Edge_stream.n stream in
  let m = Edge_stream.total_edges stream in
  let d = Baselines.Anderson_woll.Native.create n in
  let chunks = Edge_stream.chunk_count stream in
  let next = Atomic.make 0 in
  let t0 = Clock.now_ns () in
  Connectit.in_domains ~domains (fun _ _ ->
      let buf = Edge_stream.make_chunk stream in
      let rec loop () =
        let idx = Atomic.fetch_and_add next 1 in
        if idx < chunks then begin
          Edge_stream.fill stream idx buf;
          for e = 0 to buf.Edge_stream.len - 1 do
            Baselines.Anderson_woll.Native.unite d
              buf.Edge_stream.src.(e) buf.Edge_stream.dst.(e)
          done;
          loop ()
        end
      in
      loop ());
  let dt = Clock.now_ns () - t0 in
  {
    b_name = "anderson-woll";
    b_gen = Edge_stream.kind_name stream;
    b_domains = domains;
    b_m = m;
    b_seconds = float_of_int dt /. 1e9;
    b_edges_per_sec = float_of_int m /. (float_of_int dt /. 1e9);
  }

(* Borůvka baseline: an MSF pass does strictly more work than
   connectivity, but it is the classic parallel-DSU consumer.  Needs a
   materialized weighted graph, so it is capped. *)
let boruvka_cap = 1 lsl 23

let boruvka_baseline ~config ~gen ~domains =
  let stream = make_stream config gen in
  let m = Edge_stream.total_edges stream in
  if m > boruvka_cap then None
  else begin
    let g = Edge_stream.materialize stream in
    let rng = Rng.create (config.seed + 17) in
    let w = Graphs.Graph.with_random_weights ~rng g in
    let t0 = Clock.now_ns () in
    let _ = Graphs.Boruvka.run_parallel ~domains ~seed:config.seed w in
    let dt = Clock.now_ns () - t0 in
    Some
      {
        b_name = "boruvka-msf";
        b_gen = Edge_stream.kind_name stream;
        b_domains = domains;
        b_m = m;
        b_seconds = float_of_int dt /. 1e9;
        b_edges_per_sec = float_of_int m /. (float_of_int dt /. 1e9);
      }
  end

let run_baselines ?(config = default_config) () =
  if not config.baselines then []
  else
    List.concat_map
      (fun gen ->
        List.concat_map
          (fun domains ->
            let aw = anderson_woll_baseline ~config ~gen ~domains in
            match boruvka_baseline ~config ~gen ~domains with
            | Some b -> [ aw; b ]
            | None -> [ aw ])
          config.domains_list)
      config.gens

(* ----------------------------------------------------- adversarial PT *)

type adversarial_point = {
  a_n : int;
  a_ops : int;
  a_unions : int;
  a_queries : int;
  a_domains : int;
  a_seconds : float;
  a_ops_per_sec : float;
}

(* The Pătrașcu–Thorup workload is inherently phased (late queries must
   see the merges of every earlier phase), so domains split each
   phase-shaped op list round-robin rather than racing on a cursor. *)
let run_adversarial ?(config = default_config) ~domains () =
  let n = config.adversarial_n in
  let rng = Rng.create (config.seed + 23) in
  let ops =
    Workload.Adversarial.pt_incremental ~rng ~n ~queries_per_phase:(n / 4)
  in
  let ops = Array.of_list ops in
  let total = Array.length ops in
  let unions = ref 0 and queries = ref 0 in
  Array.iter
    (function
      | Workload.Op.Unite _ -> incr unions
      | Workload.Op.Same_set _ | Workload.Op.Find _ -> incr queries)
    ops;
  let d = Dsu.Driver.create ~plan:config.plan ~seed:config.seed n in
  let t0 = Clock.now_ns () in
  Connectit.in_domains ~domains (fun k total_d ->
      let i = ref k in
      while !i < total do
        (match ops.(!i) with
        | Workload.Op.Unite (x, y) -> d.Dsu.Driver.unite x y
        | Workload.Op.Same_set (x, y) -> ignore (d.Dsu.Driver.same_set x y)
        | Workload.Op.Find x -> ignore (d.Dsu.Driver.find x));
        i := !i + total_d
      done);
  let dt = Clock.now_ns () - t0 in
  {
    a_n = n;
    a_ops = total;
    a_unions = !unions;
    a_queries = !queries;
    a_domains = domains;
    a_seconds = float_of_int dt /. 1e9;
    a_ops_per_sec = float_of_int total /. (float_of_int dt /. 1e9);
  }

(* ------------------------------------------------------------- report *)

let point_to_json p =
  J.Obj
    [
      ("gen", J.String p.gen);
      ("n", J.Int p.n);
      ("m", J.Int p.m);
      ("domains", J.Int p.domains);
      ("sampling", J.String p.sampling);
      ("finish", J.String p.finish);
      ("mode", J.String p.mode);
      ("plan", J.String p.plan);
      ("seconds", J.Float p.seconds);
      ("edges_per_sec", J.Float p.edges_per_sec);
      ("finish_edges_per_sec", J.Float p.finish_edges_per_sec);
      ("sample_ns", J.Int p.sample_ns);
      ("finish_ns", J.Int p.finish_ns);
      ("label_ns", J.Int p.label_ns);
      ("skipped_ratio", J.Float p.skipped_ratio);
      ("components", J.Int p.components);
      ("det_rounds", J.Int p.det_rounds);
    ]

let baseline_to_json b =
  J.Obj
    [
      ("name", J.String b.b_name);
      ("gen", J.String b.b_gen);
      ("domains", J.Int b.b_domains);
      ("m", J.Int b.b_m);
      ("seconds", J.Float b.b_seconds);
      ("edges_per_sec", J.Float b.b_edges_per_sec);
    ]

let adversarial_to_json a =
  J.Obj
    [
      ("n", J.Int a.a_n);
      ("ops", J.Int a.a_ops);
      ("unions", J.Int a.a_unions);
      ("queries", J.Int a.a_queries);
      ("domains", J.Int a.a_domains);
      ("seconds", J.Float a.a_seconds);
      ("ops_per_sec", J.Float a.a_ops_per_sec);
    ]

let to_json ?(config = default_config) ?(baselines = [])
    ?adversarial points =
  J.Obj
    ([
       ("schema", J.String "dsu-connectivity/v1");
       ("scale", J.Int config.scale);
       ("edge_factor", J.Int config.edge_factor);
       ("chunk_size", J.Int config.chunk_size);
       ("seed", J.Int config.seed);
       ("simple", J.Bool config.simple);
       ("plan", J.String (Dsu.Plan.to_string config.plan));
       ("points", J.List (List.map point_to_json points));
       ("baselines", J.List (List.map baseline_to_json baselines));
     ]
    @
    match adversarial with
    | None -> []
    | Some a -> [ ("adversarial", adversarial_to_json a) ])

let pp_table ppf points =
  let table =
    Table.create
      ~headers:
        [
          "gen"; "mode"; "sampling"; "finish"; "domains"; "Medges/s";
          "finish Medges/s"; "skipped"; "comps";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          p.gen;
          p.mode;
          p.sampling;
          p.finish;
          Table.cell_int p.domains;
          Table.cell_float (p.edges_per_sec /. 1e6);
          Table.cell_float (p.finish_edges_per_sec /. 1e6);
          Printf.sprintf "%.1f%%" (100. *. p.skipped_ratio);
          Table.cell_int p.components;
        ])
    points;
  Table.pp ppf table

let pp_baselines ppf baselines =
  if baselines <> [] then begin
    let table =
      Table.create ~headers:[ "baseline"; "gen"; "domains"; "Medges/s" ]
    in
    List.iter
      (fun b ->
        Table.add_row table
          [
            b.b_name;
            b.b_gen;
            Table.cell_int b.b_domains;
            Table.cell_float (b.b_edges_per_sec /. 1e6);
          ])
      baselines;
    Table.pp ppf table
  end

(* ------------------------------------------------------------- guard *)

(* The CI gate: at the highest measured domain count, the bulk finish
   must achieve at least [min_ratio] x the per-op finish's edges/sec
   (same gen, same sampling, racy mode).  Returns the worst ratio and
   the pairs it compared; [Error] if the sweep lacks a comparable
   pair. *)
let guard_finish ?(min_ratio = 0.9) points =
  let racy = List.filter (fun p -> p.mode = "racy") points in
  let max_domains =
    List.fold_left (fun acc p -> max acc p.domains) 0 racy
  in
  let pairs =
    List.filter_map
      (fun p ->
        if p.domains <> max_domains || p.finish <> "bulk" then None
        else
          let per_op =
            List.find_opt
              (fun q ->
                q.domains = max_domains && q.finish = "per-op"
                && q.gen = p.gen && q.sampling = p.sampling
                && q.mode = "racy")
              racy
          in
          Option.map
            (fun q ->
              let ratio =
                if q.finish_edges_per_sec > 0. then
                  p.finish_edges_per_sec /. q.finish_edges_per_sec
                else infinity
              in
              (p.gen, p.sampling, ratio))
            per_op)
      racy
  in
  if pairs = [] then Error "guard-finish: no bulk/per-op pair in the sweep"
  else begin
    let worst =
      List.fold_left (fun acc (_, _, r) -> min acc r) infinity pairs
    in
    if worst >= min_ratio then Ok (worst, pairs)
    else
      Error
        (Printf.sprintf
           "guard-finish: bulk finish is %.2fx the per-op finish at %d \
            domains (floor %.2fx): %s"
           worst max_domains min_ratio
           (String.concat ", "
              (List.map
                 (fun (g, s, r) -> Printf.sprintf "%s/%s=%.2fx" g s r)
                 pairs)))
  end
