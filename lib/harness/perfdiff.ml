(* Perf-regression differ over the repo's benchmark JSON documents.

   Auto-detects the document kind (bechamel [bench --out], dsu-scalability,
   dsu-latency, dsu-autotune), extracts keyed scalar metrics with a
   better-direction, and flags relative deltas beyond a noise threshold.
   Structural problems (unparseable JSON, unrecognized schema, mismatched
   kinds) are [Error]s so CLI callers can map them onto their usage-error
   exit; a changed autotune winner is only a [warnings] line — two valid
   tuning runs may legitimately disagree. *)

module J = Repro_obs.Json

type direction = Lower_better | Higher_better

type row = {
  key : string;  (* which measured configuration *)
  metric : string;
  dir : direction;
  base : float;
  current : float;
  delta_pct : float;  (* signed: (current - base) / base * 100 *)
}

type report = {
  kind : string;
  threshold_pct : float;
  rows : row list;
  regressions : row list;
  improvements : row list;
  only_base : string list;  (* keys present only in the baseline *)
  only_current : string list;
  warnings : string list;
      (* non-fatal observations, e.g. an autotune winner change *)
}

(* ------------------------------------------------------------ extract *)

(* A document flattens to (key, metric, direction, value) tuples. *)
type entry = { e_key : string; e_metric : string; e_dir : direction; e_value : float }

let num = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let str = function J.String s -> Some s | _ -> None
let mem name j = J.member name j

let num_field name j = Option.bind (mem name j) num
let str_field name j = Option.bind (mem name j) str

let ( let* ) = Option.bind

let bechamel_entries doc =
  let* results = mem "results" doc in
  match results with
  | J.List rs ->
    Some
      (List.filter_map
         (fun r ->
           let* name = str_field "name" r in
           let* v = num_field "ns_per_run" r in
           Some
             { e_key = name; e_metric = "ns_per_run"; e_dir = Lower_better;
               e_value = v })
         rs)
  | _ -> None

let scalability_entries doc =
  let* points = mem "points" doc in
  match points with
  | J.List ps ->
    Some
      (List.filter_map
         (fun p ->
           let part name =
             match mem name p with
             | Some (J.String s) -> name ^ "=" ^ s
             | Some (J.Int i) -> name ^ "=" ^ string_of_int i
             | Some (J.Bool b) -> name ^ "=" ^ string_of_bool b
             | _ -> ""
           in
           let key =
             [ "layout"; "policy"; "order"; "backoff"; "dist"; "domains" ]
             |> List.map part
             |> List.filter (fun s -> s <> "")
             |> String.concat " "
           in
           let* v = num_field "mops_per_sec" p in
           Some
             { e_key = key; e_metric = "mops_per_sec"; e_dir = Higher_better;
               e_value = v })
         ps)
  | _ -> None

let latency_entries doc =
  let* points = mem "points" doc in
  match points with
  | J.List ps ->
    Some
      (List.concat_map
         (fun p ->
           let key =
             match num_field "offered_rate" p with
             | Some r -> Printf.sprintf "rate=%.0f" r
             | None -> "rate=?"
           in
           let lat name =
             let* l = mem "latency" p in
             num_field name l
           in
           List.filter_map Fun.id
             [
               (let* v = lat "p99_ns" in
                Some
                  { e_key = key; e_metric = "latency_p99_ns";
                    e_dir = Lower_better; e_value = v });
               (let* v = lat "p999_ns" in
                Some
                  { e_key = key; e_metric = "latency_p999_ns";
                    e_dir = Lower_better; e_value = v });
               (let* v = num_field "achieved_rate" p in
                Some
                  { e_key = key; e_metric = "achieved_rate";
                    e_dir = Higher_better; e_value = v });
             ])
         ps)
  | _ -> None

(* dsu-service/v1 carries both sweep points (throughput up-is-good, tail
   latency down-is-good) and crash drills (RTO down-is-good; RPO is a
   correctness gate, not a perf metric, so it is not diffed). *)
let service_entries doc =
  let points =
    match mem "points" doc with
    | Some (J.List ps) ->
      Some
        (List.concat_map
           (fun p ->
             let key =
               match num_field "offered_rate" p with
               | Some r -> Printf.sprintf "serve rate=%.0f" r
               | None -> "serve rate=?"
             in
             let lat name =
               let* l = mem "latency" p in
               num_field name l
             in
             List.filter_map Fun.id
               [
                 (let* v = num_field "achieved_rate" p in
                  Some
                    { e_key = key; e_metric = "achieved_rate";
                      e_dir = Higher_better; e_value = v });
                 (let* v = lat "p99_ns" in
                  Some
                    { e_key = key; e_metric = "latency_p99_ns";
                      e_dir = Lower_better; e_value = v });
                 (let* v = lat "p999_ns" in
                  Some
                    { e_key = key; e_metric = "latency_p999_ns";
                      e_dir = Lower_better; e_value = v });
               ])
           ps)
    | _ -> None
  in
  let drills =
    match mem "drills" doc with
    | Some (J.List ds) ->
      Some
        (List.filter_map
           (fun d ->
             let key =
               "drill " ^ Option.value ~default:"?" (str_field "kind" d)
             in
             let* v = num_field "rto_ns" d in
             Some
               { e_key = key; e_metric = "rto_ns"; e_dir = Lower_better;
                 e_value = v })
           ds)
    | _ -> None
  in
  match (points, drills) with
  | None, None -> None
  | _ ->
    Some
      (Option.value ~default:[] points @ Option.value ~default:[] drills)

let durability_entries doc =
  let* points = mem "points" doc in
  match points with
  | J.List ps ->
    Some
      (List.concat_map
         (fun p ->
           let key = Option.value ~default:"?" (str_field "name" p) in
           List.filter_map Fun.id
             [
               (let* v = num_field "mops_per_sec" p in
                Some
                  { e_key = key; e_metric = "mops_per_sec";
                    e_dir = Higher_better; e_value = v });
               (let* v = num_field "pause_ns" p in
                Some
                  { e_key = key; e_metric = "pause_ns"; e_dir = Lower_better;
                    e_value = v });
             ])
         ps)
  | _ -> None

(* dsu-connectivity/v1: pipeline points (total and finish-phase
   edges/sec up-is-good), streamed baselines, and the adversarial PT
   point (ops/sec up-is-good).  The skipped ratio is workload shape, not
   a perf metric, so it is not diffed. *)
let connectivity_entries doc =
  let points =
    match mem "points" doc with
    | Some (J.List ps) ->
      Some
        (List.concat_map
           (fun p ->
             let part name =
               match mem name p with
               | Some (J.String s) -> name ^ "=" ^ s
               | Some (J.Int i) -> name ^ "=" ^ string_of_int i
               | _ -> ""
             in
             let key =
               [ "gen"; "mode"; "sampling"; "finish"; "domains" ]
               |> List.map part
               |> List.filter (fun s -> s <> "")
               |> String.concat " "
             in
             List.filter_map Fun.id
               [
                 (let* v = num_field "edges_per_sec" p in
                  Some
                    { e_key = key; e_metric = "edges_per_sec";
                      e_dir = Higher_better; e_value = v });
                 (let* v = num_field "finish_edges_per_sec" p in
                  Some
                    { e_key = key; e_metric = "finish_edges_per_sec";
                      e_dir = Higher_better; e_value = v });
               ])
           ps)
    | _ -> None
  in
  let baselines =
    match mem "baselines" doc with
    | Some (J.List bs) ->
      Some
        (List.filter_map
           (fun b ->
             let name = Option.value ~default:"?" (str_field "name" b) in
             let gen = Option.value ~default:"?" (str_field "gen" b) in
             let domains =
               match num_field "domains" b with
               | Some d -> string_of_int (int_of_float d)
               | None -> "?"
             in
             let* v = num_field "edges_per_sec" b in
             Some
               { e_key =
                   Printf.sprintf "baseline=%s gen=%s domains=%s" name gen
                     domains;
                 e_metric = "edges_per_sec"; e_dir = Higher_better;
                 e_value = v })
           bs)
    | _ -> None
  in
  let adversarial =
    match mem "adversarial" doc with
    | Some a ->
      let* v = num_field "ops_per_sec" a in
      let domains =
        match num_field "domains" a with
        | Some d -> string_of_int (int_of_float d)
        | None -> "?"
      in
      Some
        [
          { e_key = "adversarial=pt domains=" ^ domains;
            e_metric = "ops_per_sec"; e_dir = Higher_better; e_value = v };
        ]
    | None -> None
  in
  match (points, baselines, adversarial) with
  | None, None, None -> None
  | _ ->
    Some
      (Option.value ~default:[] points
      @ Option.value ~default:[] baselines
      @ Option.value ~default:[] adversarial)

let autotune_entries doc =
  let* ms = mem "measurements" doc in
  match ms with
  | J.List ms ->
    Some
      (List.filter_map
         (fun m ->
           let* plan = str_field "plan" m in
           let* v = num_field "mops_per_sec" m in
           Some
             { e_key = "plan=" ^ plan; e_metric = "mops_per_sec";
               e_dir = Higher_better; e_value = v })
         ms)
  | _ -> None

let classify doc =
  match mem "schema" doc with
  | Some (J.String s) when String.length s >= 15
                           && String.sub s 0 15 = "dsu-scalability" ->
    Some (s, scalability_entries)
  | Some (J.String s) when String.length s >= 11
                           && String.sub s 0 11 = "dsu-latency" ->
    Some (s, latency_entries)
  | Some (J.String s) when String.length s >= 11
                           && String.sub s 0 11 = "dsu-service" ->
    Some (s, service_entries)
  | Some (J.String s) when String.length s >= 14
                           && String.sub s 0 14 = "dsu-durability" ->
    Some (s, durability_entries)
  | Some (J.String s) when String.length s >= 16
                           && String.sub s 0 16 = "dsu-connectivity" ->
    Some (s, connectivity_entries)
  | Some (J.String s) when String.length s >= 12
                           && String.sub s 0 12 = "dsu-autotune" ->
    Some (s, autotune_entries)
  | _ -> (
    match mem "results" doc with
    | Some _ -> Some ("bechamel", bechamel_entries)
    | None -> None)

let extract doc =
  match classify doc with
  | None ->
    Error
      "unrecognized perf document (expected bechamel results, \
       dsu-scalability/*, dsu-latency/*, dsu-service/*, dsu-durability/*, \
       dsu-connectivity/* or dsu-autotune/*)"
  | Some (kind, f) -> (
    match f doc with
    | Some entries -> Ok (kind, entries)
    | None -> Error (Printf.sprintf "malformed %s document" kind))

(* --------------------------------------------------------------- diff *)

let diff ?(threshold_pct = 10.0) ~base ~current () =
  match (extract base, extract current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok (kb, eb), Ok (kc, ec) ->
    if kb <> kc then
      Error (Printf.sprintf "kind mismatch: baseline is %s, current is %s" kb kc)
    else begin
      let id e = e.e_key ^ "/" ^ e.e_metric in
      let rows =
        List.filter_map
          (fun b ->
            match List.find_opt (fun c -> id c = id b) ec with
            | None -> None
            | Some c ->
              let delta_pct =
                if b.e_value = 0.0 then
                  if c.e_value = 0.0 then 0.0 else infinity
                else (c.e_value -. b.e_value) /. b.e_value *. 100.0
              in
              Some
                { key = b.e_key; metric = b.e_metric; dir = b.e_dir;
                  base = b.e_value; current = c.e_value; delta_pct })
          eb
      in
      let worse r =
        match r.dir with
        | Lower_better -> r.delta_pct > threshold_pct
        | Higher_better -> r.delta_pct < -.threshold_pct
      in
      let better r =
        match r.dir with
        | Lower_better -> r.delta_pct < -.threshold_pct
        | Higher_better -> r.delta_pct > threshold_pct
      in
      let matched b = List.exists (fun c -> id c = id b) in
      (* An autotune run picking a different winner than the baseline is
         worth surfacing but is not a regression in itself — the per-plan
         rows above already capture any throughput movement. *)
      let warnings =
        if String.length kb >= 12 && String.sub kb 0 12 = "dsu-autotune"
        then
          match (str_field "winner" base, str_field "winner" current) with
          | Some wb, Some wc when wb <> wc ->
            [ Printf.sprintf "tuned plan changed: %s -> %s" wb wc ]
          | _ -> []
        else []
      in
      Ok
        {
          kind = kb;
          threshold_pct;
          rows;
          regressions = List.filter worse rows;
          improvements = List.filter better rows;
          only_base =
            List.filter_map
              (fun b -> if matched b ec then None else Some (id b))
              eb;
          only_current =
            List.filter_map
              (fun c -> if matched c eb then None else Some (id c))
              ec;
          warnings;
        }
    end

let diff_strings ?threshold_pct ~base ~current () =
  match (J.parse base, J.parse current) with
  | Error e, _ -> Error ("baseline: malformed JSON: " ^ e)
  | _, Error e -> Error ("current: malformed JSON: " ^ e)
  | Ok b, Ok c -> diff ?threshold_pct ~base:b ~current:c ()

(* ------------------------------------------------------------- output *)

let row_json r =
  J.Obj
    [
      ("key", J.String r.key);
      ("metric", J.String r.metric);
      ( "direction",
        J.String
          (match r.dir with
          | Lower_better -> "lower-better"
          | Higher_better -> "higher-better") );
      ("base", J.Float r.base);
      ("current", J.Float r.current);
      ("delta_pct", J.Float r.delta_pct);
    ]

let to_json rep =
  J.Obj
    [
      ("schema", J.String "dsu-perfdiff/v1");
      ("kind", J.String rep.kind);
      ("threshold_pct", J.Float rep.threshold_pct);
      ("compared", J.Int (List.length rep.rows));
      ("regressions", J.List (List.map row_json rep.regressions));
      ("improvements", J.List (List.map row_json rep.improvements));
      ("only_baseline", J.List (List.map (fun s -> J.String s) rep.only_base));
      ("only_current", J.List (List.map (fun s -> J.String s) rep.only_current));
      ("warnings", J.List (List.map (fun s -> J.String s) rep.warnings));
    ]

let pp ppf rep =
  Format.fprintf ppf
    "perfdiff (%s, threshold %.1f%%): %d compared, %d regressions, %d \
     improvements@."
    rep.kind rep.threshold_pct (List.length rep.rows)
    (List.length rep.regressions)
    (List.length rep.improvements);
  let pp_row tag r =
    Format.fprintf ppf "  %s %s %s: %.1f -> %.1f (%+.1f%%)@." tag r.key
      r.metric r.base r.current r.delta_pct
  in
  List.iter (pp_row "REGRESSION") rep.regressions;
  List.iter (pp_row "improvement") rep.improvements;
  List.iter (fun w -> Format.fprintf ppf "  warning: %s@." w) rep.warnings;
  List.iter (fun k -> Format.fprintf ppf "  only in baseline: %s@." k)
    rep.only_base;
  List.iter (fun k -> Format.fprintf ppf "  only in current: %s@." k)
    rep.only_current
