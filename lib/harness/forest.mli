(** Static rooted forests, used to analyze the {e union forest} (the forest
    formed by the links done in Unites, ignoring all compaction — Section 3)
    and the final compressed trees. *)

type t

val of_links : n:int -> (int * int) list -> t
(** Build from recorded [(child, parent)] link events.  Raises
    [Invalid_argument] if a node is linked twice (impossible for a correct
    DSU run). *)

val of_parents : int array -> t
(** From a parent array ([parent.(i) = i] marks roots), e.g. a final memory
    snapshot. *)

val n : t -> int
val parent : t -> int -> int
val is_root : t -> int -> bool
val depths : t -> int array
(** Depth of every node (roots have depth 0).  Raises [Invalid_argument] if
    the structure contains a cycle. *)

val height : t -> int
val avg_depth : t -> float
val ancestors : t -> int -> int list
(** Proper ancestors of a node, nearest first. *)

val depth_histogram : t -> Repro_util.Histogram.t
