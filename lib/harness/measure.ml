type sim_result = {
  total_steps : int;
  steps_per_process : int array;
  op_costs : int array;
  stats : Dsu.Stats.snapshot;
  links : (int * int) list;
  memory : Apram.Memory.t;
  spec : Dsu.Sim.spec;
  history : Apram.History.t;
  obs : Repro_obs.Metrics.snapshot;
  crashed : int list;
}

let run_sim ?sched ?policy ?early ?init_parents ?max_steps ~n ~seed ~ops () =
  let spec = Dsu.Sim.spec ?policy ?early ~n ~seed () in
  let links = ref [] in
  let handle = Dsu.Sim.handle ~on_link:(fun ~child ~parent -> links := (child, parent) :: !links) spec in
  let sched =
    match sched with Some s -> s | None -> Apram.Scheduler.random ~seed:(seed + 1)
  in
  let init =
    match init_parents with
    | None -> Dsu.Sim.init spec
    | Some parents ->
      if Array.length parents <> n then
        invalid_arg "Measure.run_sim: init_parents length mismatch";
      fun i -> parents.(i)
  in
  let bodies = Array.map (Workload.Op.to_sim_ops handle) ops in
  let outcome =
    Apram.Sim.run_ops ?max_steps ~mem_size:(Dsu.Sim.mem_size spec) ~init ~sched bodies
  in
  {
    total_steps = outcome.Apram.Sim.total_steps;
    steps_per_process = outcome.Apram.Sim.steps;
    op_costs = Array.of_list (Apram.History.op_step_costs outcome.Apram.Sim.history);
    stats = Dsu.Sim.stats handle;
    links = List.rev !links;
    memory = outcome.Apram.Sim.memory;
    spec;
    history = outcome.Apram.Sim.history;
    obs = Repro_obs.Metrics.snapshot ();
    crashed = outcome.Apram.Sim.crashed;
  }

type aw_result = {
  aw_total_steps : int;
  aw_op_costs : int array;
  aw_stats : Dsu.Stats.snapshot;
}

let run_sim_aw ?sched ?max_steps ?indirection ~n ~seed ~ops () =
  let handle = Baselines.Anderson_woll.Sim.handle ?indirection n in
  let sched =
    match sched with Some s -> s | None -> Apram.Scheduler.random ~seed:(seed + 1)
  in
  let bodies = Array.map (Workload.Op.to_sim_ops_aw handle) ops in
  let outcome =
    Apram.Sim.run_ops ?max_steps
      ~mem_size:(Baselines.Anderson_woll.Sim.mem_size n)
      ~init:(Baselines.Anderson_woll.Sim.init n)
      ~sched bodies
  in
  {
    aw_total_steps = outcome.Apram.Sim.total_steps;
    aw_op_costs = Array.of_list (Apram.History.op_step_costs outcome.Apram.Sim.history);
    aw_stats = Baselines.Anderson_woll.Sim.stats handle;
  }

let seq_work ~linking ~compaction ?seed ~n ~ops () =
  let d = Sequential.Seq_dsu.create ~linking ~compaction ?seed n in
  Workload.Op.run_seq d ops;
  Sequential.Seq_dsu.counters d

let mean_int xs =
  if Array.length xs = 0 then 0.
  else float_of_int (Array.fold_left ( + ) 0 xs) /. float_of_int (Array.length xs)

let work_per_op r =
  let ops = Array.length r.op_costs in
  if ops = 0 then 0. else float_of_int r.total_steps /. float_of_int ops
