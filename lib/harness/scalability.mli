(** Domain-parallel throughput engine: the repo's scalability benchmark.

    Runs one shared DSU under [D] concurrent domains (each executing a
    pre-generated stream of random [Unite]/[SameSet] operations, the worker
    pattern of experiment E13) and reports operations per second, sweeping

    - the domain count (default [1; 2; 4; 8]),
    - the find policy,
    - the memory layout: [Flat] (the contiguous
      {!Repro_util.Flat_atomic_array} parent array), [Padded] (one parent
      word per cache line — false-sharing ablation) and [Boxed] (the
      pre-flat [int Atomic.t array] layout, via {!Dsu.Boxed}),
    - the parent-load {!Dsu.Memory_order} mode and the link-CAS backoff
      switch (the memory-order × backoff ablation axis), and
    - the key distribution: [Uniform], or [Skewed] (80% of endpoints drawn
      from a hot range of [max 16 (n/256)] nodes — the high-contention
      sweep where backoff and ordering matter most).

    The JSON emitted by {!to_json} (schema ["dsu-scalability/v2"]; v1
    lacked the [memory_order]/[backoff]/[dist] point fields) is the
    machine-readable product consumed by the perf-trajectory tooling;
    [bench/main.exe --parallel] is the CLI entry point.  See
    docs/PERFORMANCE.md for the schema and how to read the numbers on
    machines with few cores. *)

type layout = Dsu.Plan.layout = Flat | Padded | Boxed | Packed
(** [Packed] is the bit-packed linking-by-rank layout
    ({!Dsu.Packed.Native}); the constructors are shared with
    {!Dsu.Plan.layout} so plan points and sweep points interoperate. *)

val all_layouts : layout list
val layout_to_string : layout -> string
val layout_of_string : string -> layout option

type dist = Uniform | Skewed

val all_dists : dist list
val dist_to_string : dist -> string
val dist_of_string : string -> dist option

val hot_range : int -> int
(** Size of the [Skewed] hot range for an [n]-node structure
    ([max 16 (n/256)]). *)

type point = {
  layout : layout;
  policy : Dsu.Find_policy.t;
  memory_order : Dsu.Memory_order.t;
      (** recorded even for [Boxed], which has no order knob (always
          seq-cst) — keeps ablation grids rectangular *)
  backoff : bool;
  dist : dist;
  domains : int;
  n : int;
  total_ops : int;  (** ops actually executed, summed over domains *)
  seconds : float;
  mops_per_sec : float;
  failures : (int * string) list;
      (** worker exceptions captured per domain as [(domain_index, message)];
          empty on a clean run.  Workers never abort the measurement: every
          domain is always joined, and failures surface here, in the JSON
          ([failures] array per point) and below {!pp_table}'s output. *)
}

type config = {
  n : int;  (** number of nodes *)
  total_ops : int;  (** split evenly across domains *)
  unite_percent : int;  (** percentage of [Unite] ops, rest [SameSet] *)
  seed : int;
  domain_counts : int list;
  policies : Dsu.Find_policy.t list;
  layouts : layout list;
  memory_orders : Dsu.Memory_order.t list;
  backoffs : bool list;
  dists : dist list;
}

val default_config : config
(** n = 2^16, 400k ops, 30% unites, domains 1/2/4/8, two-try and one-try
    policies, flat vs boxed layouts, the default (relaxed-reads) order
    with backoff on, uniform keys. *)

val run_point :
  ?config:config ->
  ?memory_order:Dsu.Memory_order.t ->
  ?backoff:bool ->
  ?dist:dist ->
  layout:layout ->
  policy:Dsu.Find_policy.t ->
  domains:int ->
  unit ->
  point
(** One timed run.  Operation streams are generated outside the timed
    section; timing covers domain spawn to join.  [memory_order] defaults
    to {!Dsu.Memory_order.default}, [backoff] to [true], [dist] to
    [Uniform]. *)

val run_plan_point :
  ?config:config -> ?dist:dist -> plan:Dsu.Plan.t -> domains:int -> unit -> point
(** {!run_point} driven by a {!Dsu.Plan} point: compaction, memory order,
    backoff and layout come from the plan (the linking rule is implied by
    the layout).  @raise Invalid_argument on an invalid plan. *)

val sweep : ?config:config -> ?progress:(point -> unit) -> unit -> point list
(** The full cross product (layouts × policies × memory_orders × backoffs
    × dists × domain_counts); [progress] is called after each point. *)

val point_to_json : point -> Repro_obs.Json.t

val to_json : ?config:config -> point list -> Repro_obs.Json.t
(** The ["dsu-scalability/v2"] document: config echo, the host's
    recommended domain count, and one object per point (now carrying
    [memory_order], [backoff] and [dist]). *)

val pp_table : Format.formatter -> point list -> unit
(** Human-readable table with per-(layout, policy, order, backoff, dist)
    speedup vs 1 domain. *)
