(** All experiments, in DESIGN.md §5 order. *)

val all : Experiment.t list
val find : string -> Experiment.t option
val run_all : Format.formatter -> unit
