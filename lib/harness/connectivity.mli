(** Streaming-connectivity benchmark family ([dsu-connectivity/v1]):
    edges/sec for the ConnectIt-style pipeline over streamed generators
    — sampling × finish × mode × domains — against the Borůvka and
    Anderson–Woll baselines, plus a Pătrașcu–Thorup adversarial
    incremental-connectivity point.  Surfaced by [dsu_workload
    connectivity] and [bench --connectivity]; diffed by {!Perfdiff}. *)

type gen = Rmat | Er | Power_law

val all_gens : gen list
val gen_to_string : gen -> string
val gen_of_string : string -> gen option

type config = {
  scale : int;  (** 2^scale vertices *)
  edge_factor : int;  (** edges = edge_factor * 2^scale *)
  chunk_size : int;
  seed : int;
  simple : bool;  (** self-loop rejection in the generators *)
  domains_list : int list;
  gens : gen list;
  samplings : Graphs.Connectit.sampling list;
  finishes : Graphs.Connectit.finish list;
  modes : Graphs.Connectit.mode list;
  plan : Dsu.Plan.t;
  block_chunks : int;  (** deterministic engine block size *)
  baselines : bool;
  adversarial_n : int;  (** 0 disables the PT point *)
}

val default_config : config
(** scale 16, edge factor 8, chunk 2^14, domains [1; 4], rmat + er,
    no-sampling + k-out:2, per-op + bulk, racy mode, default plan. *)

val make_stream : config -> gen -> Graphs.Edge_stream.t

type point = {
  gen : string;
  n : int;
  m : int;
  domains : int;
  sampling : string;
  finish : string;
  mode : string;
  plan : string;
  seconds : float;
  edges_per_sec : float;  (** whole pipeline (sample + finish + label) *)
  finish_edges_per_sec : float;  (** finish phase only, over all m edges *)
  sample_ns : int;
  finish_ns : int;
  label_ns : int;
  skipped_ratio : float;
  components : int;
  det_rounds : int;
}

val run_point :
  config:config ->
  gen:gen ->
  domains:int ->
  sampling:Graphs.Connectit.sampling ->
  finish:Graphs.Connectit.finish ->
  mode:Graphs.Connectit.mode ->
  point

val sweep : ?config:config -> ?progress:(point -> unit) -> unit -> point list

type baseline_point = {
  b_name : string;
  b_gen : string;
  b_domains : int;
  b_m : int;
  b_seconds : float;
  b_edges_per_sec : float;
}

val run_baselines : ?config:config -> unit -> baseline_point list
(** Anderson–Woll per-op unites over the same streamed chunks, and (for
    streams small enough to materialize) a parallel Borůvka MSF pass. *)

type adversarial_point = {
  a_n : int;
  a_ops : int;
  a_unions : int;
  a_queries : int;
  a_domains : int;
  a_seconds : float;
  a_ops_per_sec : float;
}

val run_adversarial :
  ?config:config -> domains:int -> unit -> adversarial_point
(** {!Workload.Adversarial.pt_incremental} through the plan's backend:
    binomial merge phases interleaved with cross-component queries. *)

val point_to_json : point -> Repro_obs.Json.t

val to_json :
  ?config:config ->
  ?baselines:baseline_point list ->
  ?adversarial:adversarial_point ->
  point list ->
  Repro_obs.Json.t
(** The [dsu-connectivity/v1] document. *)

val pp_table : Format.formatter -> point list -> unit
val pp_baselines : Format.formatter -> baseline_point list -> unit

val guard_finish :
  ?min_ratio:float ->
  point list ->
  ((float * (string * string * float) list), string) result
(** CI gate: at the highest measured domain count every bulk-finish
    point must reach [min_ratio] (default 0.9) × its per-op twin's
    finish-phase edges/sec.  [Ok (worst, pairs)] or a saying-why
    [Error]. *)
