(** The experiment registry: one entry per reproduced claim of the paper.
    The paper is a theory paper with no numeric tables, so each experiment
    regenerates one theorem/claim as a measured table; see DESIGN.md §5 and
    EXPERIMENTS.md for the paper-vs-measured record. *)

type t = {
  id : string;  (** e.g. "e1" *)
  title : string;
  claim : string;  (** the paper statement being exercised *)
  run : Format.formatter -> unit;
}

val make : id:string -> title:string -> claim:string -> (Format.formatter -> unit) -> t

val header : Format.formatter -> t -> unit
(** Print the experiment banner (id, title, claim). *)

val run : Format.formatter -> t -> unit
(** Banner then body. *)
