(** Durability cost measurement: WAL overhead and snapshot pause.

    Three phases over the same seeded workload on the flat layout, best
    wall time of [repeats] runs each:

    - {b wal=off}: bare-structure throughput baseline, plus the
      stop-the-world cost of a quiescent snapshot (the whole scan — a
      quiescent capture needs every mutator parked while it runs);
    - {b fuzzy}: the same run with [snapshots] concurrent fuzzy captures
      ({!Repro_durable.Fuzzy}); the reported pause is the run's wall-time
      inflation divided across the captures — the mutator-observed cost,
      which the fuzzy design claims is ~0;
    - {b wal=on}: the same run with every link appended to a
      group-committed WAL ({!Repro_durable.Wal}) — the overhead the CI
      guard bounds at 15%.

    Emits the ["dsu-durability/v1"] document ({!to_json}), whose
    [points] are consumable by {!Perfdiff}.  CLI: [dsu_workload
    durability]. *)

type config = {
  n : int;
  ops_per_domain : int;
  domains : int;
  unite_percent : int;  (** rest are [same_set] queries *)
  seed : int;
  repeats : int;  (** best-of repeats per phase *)
  snapshots : int;  (** fuzzy captures during the fuzzy phase *)
  flush_records : int;  (** group-commit batch bound *)
  flush_interval : float;  (** group-commit window, seconds *)
  policy : Dsu.Find_policy.t;
}

val default_config : config
(** 64k nodes, 4 domains x 200k ops at 60% unite, best of 3, 8 fuzzy
    captures, 256-record / 2ms group commits. *)

type result = {
  config : config;
  wal_off_mops : float;
  wal_on_mops : float;
  overhead_pct : float;  (** throughput lost to the WAL, percent *)
  quiescent_pause_ns : float;
  fuzzy_pause_ns : float;  (** per-capture mutator-observed inflation *)
  fuzzy_scan_ns : float;  (** mean fuzzy scan duration (scanner's own cost) *)
  wal_appended : int;
  wal_committed : int;
  wal_commits : int;
}

val run : ?config:config -> unit -> result
(** @raise Invalid_argument on a nonsensical config. *)

val to_json : result -> Repro_obs.Json.t
val pp : Format.formatter -> result -> unit
