(* Plan-space autotuner: sweep a set of Dsu.Plan points over one workload
   profile with the scalability harness, pick the fastest, and cache the
   verdict keyed by the profile's fingerprint so `--plan auto` is a file
   read on every run after the first. *)

module J = Repro_obs.Json
module Plan = Dsu.Plan

type profile = {
  n : int;
  domains : int;
  unite_percent : int;
  dist : Scalability.dist;
  total_ops : int;
  seed : int;
}

let default_profile =
  {
    n = 1 lsl 16;
    domains = Domain.recommended_domain_count () |> min 4 |> max 1;
    unite_percent = 30;
    dist = Scalability.Uniform;
    total_ops = 200_000;
    seed = 21;
  }

(* The cache key.  Every field that changes the measured regime is in it;
   nothing else is, so re-running with the same workload shape hits. *)
let fingerprint p =
  Printf.sprintf "n%d-d%d-u%d-%s-ops%d-s%d" p.n p.domains p.unite_percent
    (Scalability.dist_to_string p.dist)
    p.total_ops p.seed

type measurement = {
  plan : Plan.t;
  mops_per_sec : float;
  failures : int;  (** worker exceptions during the timed run *)
}

type result = {
  profile : profile;
  winner : Plan.t;
  winner_mops : float;
  runner_up : Plan.t option;
  margin_over_runner_up_pct : float;
  margin_over_default_pct : float;
      (** winner vs {!Dsu.Plan.default} on the same profile; 0 when the
          default wins *)
  measurements : measurement list;
}

let config_of_profile p =
  {
    Scalability.default_config with
    Scalability.n = p.n;
    total_ops = p.total_ops;
    unite_percent = p.unite_percent;
    seed = p.seed;
    domain_counts = [ p.domains ];
    dists = [ p.dist ];
  }

let measure ?(repeats = 1) ~profile plan =
  let config = config_of_profile profile in
  let best = ref neg_infinity in
  let failures = ref 0 in
  for _ = 1 to max 1 repeats do
    let pt =
      Scalability.run_plan_point ~config ~dist:profile.dist ~plan
        ~domains:profile.domains ()
    in
    failures := !failures + List.length pt.Scalability.failures;
    if pt.Scalability.mops_per_sec > !best then
      best := pt.Scalability.mops_per_sec
  done;
  { plan; mops_per_sec = !best; failures = !failures }

let pct_over a b = if b <= 0. then 0. else (a -. b) /. b *. 100.

let run ?(plans = Plan.candidates) ?repeats ?progress ~profile () =
  if plans = [] then invalid_arg "Autotune.run: empty plan list";
  (* The default plan is always measured: the winner's margin over it is
     what `--guard-tuned` gates on. *)
  let plans =
    if List.exists (Plan.equal Plan.default) plans then plans
    else Plan.default :: plans
  in
  let measurements =
    List.map
      (fun plan ->
        let m = measure ?repeats ~profile plan in
        (match progress with None -> () | Some f -> f m);
        m)
      plans
  in
  (* A plan whose run failed in a worker is not a candidate winner. *)
  let healthy = List.filter (fun m -> m.failures = 0) measurements in
  let ranked =
    List.sort
      (fun a b -> compare b.mops_per_sec a.mops_per_sec)
      (if healthy = [] then measurements else healthy)
  in
  let winner = List.hd ranked in
  let runner_up = match ranked with _ :: r :: _ -> Some r | _ -> None in
  let default_mops =
    List.find_opt (fun m -> Plan.equal m.plan Plan.default) measurements
    |> Option.map (fun m -> m.mops_per_sec)
    |> Option.value ~default:winner.mops_per_sec
  in
  {
    profile;
    winner = winner.plan;
    winner_mops = winner.mops_per_sec;
    runner_up = Option.map (fun m -> m.plan) runner_up;
    margin_over_runner_up_pct =
      (match runner_up with
      | None -> 0.
      | Some r -> pct_over winner.mops_per_sec r.mops_per_sec);
    margin_over_default_pct = pct_over winner.mops_per_sec default_mops;
    measurements;
  }

(* ------------------------------------------------------------- codec *)

let schema = "dsu-autotune/v1"

let profile_to_json p =
  J.Obj
    [
      ("n", J.Int p.n);
      ("domains", J.Int p.domains);
      ("unite_percent", J.Int p.unite_percent);
      ("dist", J.String (Scalability.dist_to_string p.dist));
      ("total_ops", J.Int p.total_ops);
      ("seed", J.Int p.seed);
    ]

let measurement_to_json m =
  J.Obj
    [
      ("plan", J.String (Plan.to_string m.plan));
      ("mops_per_sec", J.Float m.mops_per_sec);
      ("failures", J.Int m.failures);
    ]

let to_json r =
  J.Obj
    [
      ("schema", J.String schema);
      ("fingerprint", J.String (fingerprint r.profile));
      ("profile", profile_to_json r.profile);
      ("winner", J.String (Plan.to_string r.winner));
      ("winner_mops_per_sec", J.Float r.winner_mops);
      ( "runner_up",
        match r.runner_up with
        | None -> J.Null
        | Some p -> J.String (Plan.to_string p) );
      ("margin_over_runner_up_pct", J.Float r.margin_over_runner_up_pct);
      ("margin_over_default_pct", J.Float r.margin_over_default_pct);
      ("measurements", J.List (List.map measurement_to_json r.measurements));
    ]

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "autotune document: missing field %S" name)

let int_field name j =
  let* v = field name j in
  match v with
  | J.Int i -> Ok i
  | _ -> Error (Printf.sprintf "autotune document: field %S is not an integer" name)

let float_field name j =
  let* v = field name j in
  match v with
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "autotune document: field %S is not a number" name)

let str_field name j =
  let* v = field name j in
  match v with
  | J.String s -> Ok s
  | _ -> Error (Printf.sprintf "autotune document: field %S is not a string" name)

let plan_field name j =
  let* s = str_field name j in
  Plan.of_string s

let profile_of_json j =
  let* n = int_field "n" j in
  let* domains = int_field "domains" j in
  let* unite_percent = int_field "unite_percent" j in
  let* dist_s = str_field "dist" j in
  let* dist =
    match Scalability.dist_of_string dist_s with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "autotune document: unknown dist %S" dist_s)
  in
  let* total_ops = int_field "total_ops" j in
  let* seed = int_field "seed" j in
  Ok { n; domains; unite_percent; dist; total_ops; seed }

let of_json j =
  let* s = str_field "schema" j in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
  in
  let* pj = field "profile" j in
  let* profile = profile_of_json pj in
  let* winner = plan_field "winner" j in
  let* winner_mops = float_field "winner_mops_per_sec" j in
  let runner_up =
    match J.member "runner_up" j with
    | Some (J.String s) -> Result.to_option (Plan.of_string s)
    | _ -> None
  in
  let* margin_over_runner_up_pct = float_field "margin_over_runner_up_pct" j in
  let* margin_over_default_pct = float_field "margin_over_default_pct" j in
  let* measurements =
    let* mj = field "measurements" j in
    match mj with
    | J.List ms ->
      List.fold_left
        (fun acc m ->
          let* acc = acc in
          let* plan = plan_field "plan" m in
          let* mops_per_sec = float_field "mops_per_sec" m in
          let* failures = int_field "failures" m in
          Ok ({ plan; mops_per_sec; failures } :: acc))
        (Ok []) ms
      |> Result.map List.rev
    | _ -> Error "autotune document: measurements is not an array"
  in
  Ok
    {
      profile;
      winner;
      winner_mops;
      runner_up;
      margin_over_runner_up_pct;
      margin_over_default_pct;
      measurements;
    }

let of_json_string s =
  match J.parse s with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> of_json j

(* ------------------------------------------------------------- cache *)

let default_cache_dir = ".dsu-autotune"
let cache_path ~dir profile = Filename.concat dir (fingerprint profile ^ ".json")

let load_cached ~dir profile =
  let path = cache_path ~dir profile in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | exception End_of_file -> None
  | data -> (
    match of_json_string data with
    | Error _ -> None (* a corrupt cache entry is just a miss *)
    | Ok r -> if fingerprint r.profile = fingerprint profile then Some r else None)

let store ~dir r =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = cache_path ~dir r.profile in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (J.to_string (to_json r)))

let auto ?plans ?repeats ?(cache_dir = default_cache_dir) ?progress ~profile ()
    =
  match load_cached ~dir:cache_dir profile with
  | Some r -> (r, `Cached)
  | None ->
    let r = run ?plans ?repeats ?progress ~profile () in
    (try store ~dir:cache_dir r
     with Sys_error _ | Unix.Unix_error _ -> () (* cache is best-effort *));
    (r, `Measured)

let pp ppf r =
  Format.fprintf ppf
    "autotune %s: winner %s (%.2f Mops/s, +%.1f%% vs runner-up %s, +%.1f%% \
     vs default)"
    (fingerprint r.profile) (Plan.to_string r.winner) r.winner_mops
    r.margin_over_runner_up_pct
    (match r.runner_up with None -> "-" | Some p -> Plan.to_string p)
    r.margin_over_default_pct;
  List.iter
    (fun m ->
      Format.fprintf ppf "@.  %-45s %8.2f Mops/s%s" (Plan.to_string m.plan)
        m.mops_per_sec
        (if m.failures = 0 then ""
         else Printf.sprintf "  (%d worker failures)" m.failures))
    r.measurements
