(** E14 — the Section 6 conjecture: "appropriate concurrent versions of
    compression will have the bounds of Theorems 5.1 and 5.2".  We run the
    two-pass concurrent compression Find (see {!Dsu.Find_policy.Compression})
    against two-try splitting on the same workloads and report work per
    operation; the conjecture predicts compression lands in the same band
    (it pays a second pass per find — exactly the constant-factor cost the
    paper cites when preferring splitting: "splitting requires only one
    traversal of the find path (compression requires two) and is purely
    local"). *)

module Table = Repro_util.Table

let work ~policy ~n ~p ~seed ~find_heavy =
  let rng = Repro_util.Rng.create seed in
  let ops_list =
    if find_heavy then
      Workload.Random_mix.spanning_unites ~rng ~n
      @ Workload.Adversarial.all_same_set ~rng ~n ~m:(4 * n)
    else Workload.Random_mix.mixed ~rng ~n ~m:(4 * n) ~unite_fraction:0.5
  in
  let ops = Workload.Op.round_robin ops_list ~p in
  let r = Measure.run_sim ~policy ~n ~seed ~ops () in
  (Measure.work_per_op r, r.Measure.stats)

let run ppf =
  let n = 1 lsl 12 in
  let table =
    Table.create
      ~headers:
        [ "workload"; "p"; "policy"; "work/op"; "vs two-try"; "compaction cas" ]
  in
  List.iter
    (fun find_heavy ->
      let label = if find_heavy then "find-heavy" else "union-heavy" in
      List.iter
        (fun p ->
          let two_try, _ =
            work ~policy:Dsu.Find_policy.Two_try_splitting ~n ~p ~seed:(3 * p)
              ~find_heavy
          in
          List.iter
            (fun policy ->
              let wpo, stats = work ~policy ~n ~p ~seed:(3 * p) ~find_heavy in
              Table.add_row table
                [
                  label;
                  Table.cell_int p;
                  Dsu.Find_policy.to_string policy;
                  Table.cell_float wpo;
                  Table.cell_ratio (wpo /. two_try);
                  Table.cell_int stats.Dsu.Stats.compaction_cas;
                ])
            [ Dsu.Find_policy.Two_try_splitting; Dsu.Find_policy.Compression ];
          Table.add_rule table)
        [ 1; 4; 16 ])
    [ true; false ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: compression stays within a small constant of two-try \
     splitting at every p — the same band, as conjectured.  In raw step \
     counts it even wins slightly on these shallow random forests (two-try \
     pays two read-read-Cas attempts per hop; compression one read per hop \
     plus one Cas per path node).  The paper still prefers splitting for \
     reasons steps don't capture: splitting is one traversal and purely \
     local, while compression's second pass revisits the whole path.@."

let experiment =
  Experiment.make ~id:"e14" ~title:"concurrent compression (Section 6 conjecture)"
    ~claim:
      "Section 6: appropriate concurrent versions of compression have the \
       bounds of Theorems 5.1 and 5.2"
    run
