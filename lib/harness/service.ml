(* Serving harness: open-loop load over Repro_service.Service, plus the
   crash-recovery drill that measures RPO and RTO.

   Load generation reuses the exact arrival schedules of the latency
   harness ([Latency.arrivals]) so the serving numbers are open-loop and
   coordinated-omission-free: every admitted op is charged from its
   *intended* arrival time, submitted with that timestamp, and the
   service echoes it back in the response — latency = completion −
   intended, however long the op sat in the ingestion queue.

   The drill is the point of the whole serving layer: crash a worker
   mid-drain and the WAL committer mid-commit (deterministic injected
   crash-stop), recover from the newest fuzzy snapshot plus the WAL tail,
   resume serving on the recovered backend, and measure

   - RPO: acked unites the recovered partition does not contain — the
     ack/durability contract (flush-before-ack) makes the only correct
     answer 0;
   - RTO: first post-recovery [Done] ack minus the moment the crash was
     first detected — the full outage window including shutdown,
     snapshot selection, replay, and restart. *)

module Svc = Repro_service.Service
module Hdr = Repro_obs.Hdr
module J = Repro_obs.Json
module Clock = Repro_obs.Clock
module Rng = Repro_util.Rng
module Wal = Repro_durable.Wal
module Recovery = Repro_durable.Recovery
module Restore = Repro_recover.Restore
module Snapshot = Repro_recover.Snapshot
module Fi = Repro_fault.Inject
module Site = Repro_fault.Site

type config = {
  n : int;  (* universe size *)
  unite_percent : int;
  find_percent : int;  (* remainder is same_set *)
  seed : int;
  generators : int;  (* load-generator domains (= client sessions) *)
  ops : int;  (* operations per generator *)
  shape : Latency.shape;
  workers : int;
  queue_capacity : int;
  batch : int;
  admission : Svc.admission;
  plan : Dsu.Plan.t;
  kind : Snapshot.kind;
  op_deadline_ms : float;  (* 0 = no per-op deadline *)
  durable : bool;  (* attach a WAL (group commit on the drain path) *)
}

let default_config =
  {
    n = 1 lsl 14;
    unite_percent = 40;
    find_percent = 10;
    seed = 42;
    generators = 2;
    ops = 4_000;
    shape = Latency.Poisson;
    workers = 2;
    queue_capacity = 256;
    batch = 64;
    admission = Svc.Reject;
    plan = Dsu.Plan.default;
    kind = Snapshot.Flat;
    op_deadline_ms = 0.0;
    durable = false;
  }

(* Scratch directory for WALs and snapshots, same convention as Chaos. *)
let temp_dir () =
  let base = Filename.temp_file "dsu-service" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with _ -> ()
    end
    else try Sys.remove path with _ -> ()

let spin_until target =
  while Clock.now_ns () < target do
    Domain.cpu_relax ()
  done

let make_ops ~n ~unite_percent ~find_percent ~ops ~seed =
  let rng = Rng.create seed in
  Array.init ops (fun _ ->
      let r = Rng.int rng 100 in
      let x = Rng.int rng n in
      if r < unite_percent then Svc.Unite (x, Rng.int rng n)
      else if r < unite_percent + find_percent then Svc.Find x
      else Svc.Same_set (x, Rng.int rng n))

let service_config (c : config) : Svc.config =
  {
    Svc.n = c.n;
    workers = c.workers;
    clients = c.generators;
    queue_capacity = c.queue_capacity;
    batch = c.batch;
    admission = c.admission;
    plan = c.plan;
    seed = c.seed;
    snapshot_dir = None;
    snapshot_interval = Svc.default_config.Svc.snapshot_interval;
  }

(* ------------------------------------------------------------- sweep *)

type point = {
  rate : float;  (* offered arrivals/sec per generator *)
  offered_rate : float;
  target_ops : int;
  submitted : int;
  accepted : int;
  rejected : int;  (* admission backpressure: Queue_full / deadline *)
  acked : int;
  shed : int;
  timed_out : int;
  failed : int;
  lost : int;  (* admitted, never answered within the end drain *)
  duration_s : float;
  achieved_rate : float;  (* acked ops per second *)
  latency : Hdr.snapshot;  (* completion − intended arrival *)
  max_depth : int;  (* deepest ingestion queue seen at submit *)
  depth_bound_ok : bool;  (* max_depth ≤ queue_capacity *)
  accounted_ok : bool;
      (* accepted = acked+shed+timed_out+failed+lost, no phantom or
         duplicate responses, no completion-lane displacement *)
  saturated : bool;
}

type tally = {
  mutable g_submitted : int;
  mutable g_accepted : int;
  mutable g_rejected : int;
  mutable g_acked : int;
  mutable g_shed : int;
  mutable g_timed_out : int;
  mutable g_failed : int;
  mutable g_phantom : int;  (* responses whose id we never admitted *)
}

let run_point ~config ~rate () =
  if rate <= 0.0 then invalid_arg "Service.run_point: rate must be positive";
  if config.generators < 1 || config.ops < 1 then
    invalid_arg "Service.run_point: generators and ops must be positive";
  if
    config.unite_percent < 0 || config.find_percent < 0
    || config.unite_percent + config.find_percent > 100
  then invalid_arg "Service.run_point: op mix percentages must fit in 100";
  let dir = if config.durable then Some (temp_dir ()) else None in
  let wal =
    Option.map (fun d -> Wal.create_writer (Filename.concat d "wal.log")) dir
  in
  let svc = Svc.create ?wal ~kind:config.kind (service_config config) in
  let worker k =
    let offsets =
      Latency.arrivals ~shape:config.shape ~rate ~ops:config.ops
        ~seed:(config.seed + (1000 * k) + 1)
    in
    let ops =
      make_ops ~n:config.n ~unite_percent:config.unite_percent
        ~find_percent:config.find_percent ~ops:config.ops
        ~seed:(config.seed + (1000 * k) + 2)
    in
    let lat = Hdr.create ~sharded:false () in
    Hdr.materialize lat;
    let t =
      {
        g_submitted = 0;
        g_accepted = 0;
        g_rejected = 0;
        g_acked = 0;
        g_shed = 0;
        g_timed_out = 0;
        g_failed = 0;
        g_phantom = 0;
      }
    in
    let pending = Hashtbl.create 1024 in
    fun () ->
      let epoch = Clock.now_ns () in
      let last_done = ref epoch in
      let drain () =
        List.iter
          (fun (r : Svc.response) ->
            if not (Hashtbl.mem pending r.Svc.r_id) then
              t.g_phantom <- t.g_phantom + 1
            else begin
              Hashtbl.remove pending r.Svc.r_id;
              match r.Svc.r_outcome with
              | Svc.Done _ ->
                t.g_acked <- t.g_acked + 1;
                Hdr.observe lat
                  (Stdlib.max 0 (r.Svc.r_completed_ns - r.Svc.r_intended_ns));
                if r.Svc.r_completed_ns > !last_done then
                  last_done := r.Svc.r_completed_ns
              | Svc.Shed -> t.g_shed <- t.g_shed + 1
              | Svc.Timed_out -> t.g_timed_out <- t.g_timed_out + 1
              | Svc.Failed _ -> t.g_failed <- t.g_failed + 1
            end)
          (Svc.poll svc ~session:k)
      in
      for i = 0 to config.ops - 1 do
        let intended = epoch + offsets.(i) in
        spin_until intended;
        let deadline_ns =
          if config.op_deadline_ms > 0.0 then
            intended + int_of_float (config.op_deadline_ms *. 1e6)
          else 0
        in
        t.g_submitted <- t.g_submitted + 1;
        (match
           Svc.submit svc ~intended_ns:intended ~deadline_ns ~session:k ops.(i)
         with
        | Svc.Enqueued id ->
          t.g_accepted <- t.g_accepted + 1;
          Hashtbl.replace pending id ()
        | Svc.Rejected _ -> t.g_rejected <- t.g_rejected + 1);
        drain ()
      done;
      (* end drain: every admitted op owes exactly one response *)
      let give_up = Clock.now_ns () + 2_000_000_000 in
      while Hashtbl.length pending > 0 && Clock.now_ns () < give_up do
        drain ();
        if Hashtbl.length pending > 0 then Unix.sleepf 0.0002
      done;
      let lost = Hashtbl.length pending in
      (Hdr.snap lat, t, Stdlib.max 1 (!last_done - epoch), lost)
  in
  (* Build generators (schedules, op streams) before spawning so domain
     start-up cost is on no schedule. *)
  let bodies = List.init config.generators worker in
  let handles = List.map Domain.spawn bodies in
  let results = List.map Domain.join handles in
  Svc.stop svc;
  let st = Svc.stats svc in
  Option.iter Wal.close wal;
  Option.iter rmrf dir;
  let sum f = List.fold_left (fun acc (_, t, _, _) -> acc + f t) 0 results in
  let submitted = sum (fun t -> t.g_submitted) in
  let accepted = sum (fun t -> t.g_accepted) in
  let rejected = sum (fun t -> t.g_rejected) in
  let acked = sum (fun t -> t.g_acked) in
  let shed = sum (fun t -> t.g_shed) in
  let timed_out = sum (fun t -> t.g_timed_out) in
  let failed = sum (fun t -> t.g_failed) in
  let phantom = sum (fun t -> t.g_phantom) in
  let lost = List.fold_left (fun acc (_, _, _, l) -> acc + l) 0 results in
  let latency =
    List.fold_left (fun acc (l, _, _, _) -> Hdr.merge acc l) Hdr.empty results
  in
  let duration_s =
    float_of_int
      (List.fold_left (fun acc (_, _, d, _) -> Stdlib.max acc d) 1 results)
    /. 1e9
  in
  let offered_rate = rate *. float_of_int config.generators in
  let achieved_rate = float_of_int acked /. duration_s in
  {
    rate;
    offered_rate;
    target_ops = config.generators * config.ops;
    submitted;
    accepted;
    rejected;
    acked;
    shed;
    timed_out;
    failed;
    lost;
    duration_s;
    achieved_rate;
    latency;
    max_depth = st.Svc.s_max_depth;
    depth_bound_ok = st.Svc.s_max_depth <= config.queue_capacity;
    accounted_ok =
      phantom = 0
      && accepted = acked + shed + timed_out + failed + lost
      && st.Svc.s_displaced = 0;
    saturated = achieved_rate < 0.95 *. offered_rate;
  }

let sweep ~config ~rates () =
  List.map (fun rate -> run_point ~config ~rate ()) rates

let knee points =
  List.fold_left
    (fun acc p ->
      if p.saturated then acc
      else
        match acc with
        | Some r when r >= p.offered_rate -> acc
        | _ -> Some p.offered_rate)
    None points

(* ------------------------------------------------------------- drill *)

type check = { c_name : string; c_passed : bool; c_detail : string }

type drill = {
  d_kind : Snapshot.kind;
  d_submitted : int;
  d_acked : int;
  d_acked_unites : int;
  d_rpo_lost : int;  (* acked unites missing after recovery; must be 0 *)
  d_rto_ns : int;  (* first post-recovery ack − crash detection *)
  d_recovery : Recovery.stats option;
  d_checks : check list;
  d_passed : bool;
}

let check name passed detail = { c_name = name; c_passed = passed; c_detail = detail }

(* Crash a worker mid-drain and the committer mid-commit, recover, resume.

   Fault plan: worker slot 0 crashes on its 5th non-empty drain attempt
   ([Queue_deq_cas] is hit only when the queue has work, so the count is
   in batches, not idle polls); the committer (enrolled as slot
   [workers]) crashes on its 12th group commit at [Wal_commit_mid],
   deterministically tearing the final record of that batch.  Both
   crashes land with acked traffic before, between, and after them. *)
let drill ~config ~kind () =
  let workers = Stdlib.max 2 config.workers in
  let dir = temp_dir () in
  let wal_path = Filename.concat dir "wal.log" in
  Fi.arm
    {
      Fi.seed = config.seed;
      rules_for =
        (fun slot ->
          if slot = 0 then
            [ Fi.rule ~sites:[ Site.Queue_deq_cas ] ~after:4 Fi.Crash ]
          else if slot = workers then
            [ Fi.rule ~sites:[ Site.Wal_commit_mid ] ~after:11 Fi.Crash ]
          else []);
    };
  let wal =
    Wal.create_writer ~flush_records:32 ~flush_interval:0.0005
      ~on_committer_start:(fun () -> Fi.enroll ~slot:workers)
      wal_path
  in
  let scfg =
    {
      (service_config config) with
      Svc.workers;
      clients = workers;
      admission = Svc.Block 0.05;
      snapshot_dir = Some dir;
      snapshot_interval = 0.005;
    }
  in
  let svc =
    Svc.create ~wal ~on_worker_start:(fun k -> Fi.enroll ~slot:k) ~kind scfg
  in
  let rng = Rng.create (config.seed + 17) in
  let pending : (int, Svc.op) Hashtbl.t = Hashtbl.create 1024 in
  let acked_unites = ref [] in
  let acked = ref 0 in
  let submitted = ref 0 in
  let t_crash = ref 0 in
  let drain s =
    List.iter
      (fun (r : Svc.response) ->
        (match (Hashtbl.find_opt pending r.Svc.r_id, r.Svc.r_outcome) with
        | Some (Svc.Unite (x, y)), Svc.Done _ ->
          acked_unites := (x, y) :: !acked_unites
        | _ -> ());
        (match r.Svc.r_outcome with Svc.Done _ -> incr acked | _ -> ());
        Hashtbl.remove pending r.Svc.r_id)
      (Svc.poll svc ~session:s)
  in
  (* Phase 1: serve until both crashes have been detected (wall-guarded). *)
  let wall_deadline = Clock.now_ns () + 10_000_000_000 in
  let budget = 200_000 in
  let finished = ref false in
  while not !finished do
    let h = Svc.health svc in
    let wd = h.Svc.h_dead_workers <> [] in
    let cd = h.Svc.h_committer_dead in
    if (wd || cd) && !t_crash = 0 then t_crash := Clock.now_ns ();
    if (wd && cd) || !submitted >= budget || Clock.now_ns () > wall_deadline
    then finished := true
    else begin
      (* route around workers already known dead: their ops would only
         block the admission deadline and die unacknowledged anyway *)
      let dead = List.map fst h.Svc.h_dead_workers in
      let session =
        let rec pick k =
          let c = (!submitted + k) mod workers in
          if k < workers && List.mem c dead then pick (k + 1) else c
        in
        pick 0
      in
      let x = Rng.int rng config.n and y = Rng.int rng config.n in
      let op =
        if Rng.int rng 100 < 70 then Svc.Unite (x, y) else Svc.Same_set (x, y)
      in
      incr submitted;
      (match Svc.submit svc ~session op with
      | Svc.Enqueued id -> Hashtbl.replace pending id op
      | Svc.Rejected _ -> ());
      for s = 0 to workers - 1 do
        drain s
      done
    end
  done;
  (* collect responses still in flight from the surviving paths *)
  let settle = Clock.now_ns () + 200_000_000 in
  while Clock.now_ns () < settle do
    for s = 0 to workers - 1 do
      drain s
    done;
    Unix.sleepf 0.0005
  done;
  let health1 = Svc.health svc in
  Svc.stop svc;
  Wal.close wal;
  (* exercised in anger: the committer is dead, close must neither hang
     nor double-join (the hardened Wal shutdown path) *)
  Fi.disarm ();
  let snapshots = Svc.snapshot_files svc in
  let wal2 = Wal.create_writer (Filename.concat dir "wal-resume.log") in
  let padded = config.plan.Dsu.Plan.layout = Dsu.Plan.Padded in
  let recovered =
    Recovery.recover_files ~policy:config.plan.Dsu.Plan.compaction ~padded
      ~on_link:(fun ~child ~parent -> Wal.append wal2 ~child ~parent)
      ~snapshots ~wal:wal_path ()
  in
  let base_checks =
    [
      check "worker-crashed" (health1.Svc.h_dead_workers <> []) "a worker died mid-drain";
      check "committer-crashed" health1.Svc.h_committer_dead
        "the WAL committer died mid-commit";
      check "acked-traffic"
        (!acked > 0 && !acked_unites <> [])
        (Printf.sprintf "%d acks (%d unites) before/around the crashes" !acked
           (List.length !acked_unites));
      check "snapshots-present" (snapshots <> [])
        (Printf.sprintf "%d checkpoint(s)" (List.length snapshots));
    ]
  in
  match recovered with
  | Error e ->
    Wal.close wal2;
    rmrf dir;
    let checks = base_checks @ [ check "recovered" false e ] in
    {
      d_kind = kind;
      d_submitted = !submitted;
      d_acked = !acked;
      d_acked_unites = List.length !acked_unites;
      d_rpo_lost = List.length !acked_unites;
      d_rto_ns = 0;
      d_recovery = None;
      d_checks = checks;
      d_passed = false;
    }
  | Ok (restored, rstats) ->
    let rpo_lost =
      List.length
        (List.filter
           (fun (x, y) -> not (Restore.same_set restored x y))
           !acked_unites)
    in
    let audit1 = Snapshot.ok (Restore.snapshot restored) in
    (* Resume serving on the recovered backend, logging to the fresh WAL. *)
    let dir2 = Filename.concat dir "resume" in
    Unix.mkdir dir2 0o700;
    let scfg2 = { scfg with Svc.snapshot_dir = Some dir2 } in
    let svc2 = Svc.create ~backend:restored ~wal:wal2 scfg2 in
    let rto = ref 0 in
    let resume_deadline = Clock.now_ns () + 5_000_000_000 in
    let sub2 = ref 0 in
    while !rto = 0 && Clock.now_ns () < resume_deadline do
      let x = Rng.int rng config.n and y = Rng.int rng config.n in
      (match Svc.submit svc2 ~session:(!sub2 mod workers) (Svc.Unite (x, y)) with
      | Svc.Enqueued _ -> incr sub2
      | Svc.Rejected _ -> ());
      for s = 0 to workers - 1 do
        List.iter
          (fun (r : Svc.response) ->
            match r.Svc.r_outcome with
            | Svc.Done _ when !rto = 0 && !t_crash > 0 ->
              rto := r.Svc.r_completed_ns - !t_crash
            | _ -> ())
          (Svc.poll svc2 ~session:s)
      done
    done;
    Svc.stop svc2;
    (* unites only ever merge, so everything acked before the crash must
       still hold after the resumed service has served fresh traffic *)
    let survived =
      List.for_all
        (fun (x, y) -> Restore.same_set (Svc.backend svc2) x y)
        !acked_unites
    in
    let audit2 = Snapshot.ok (Restore.snapshot (Svc.backend svc2)) in
    Wal.close wal2;
    rmrf dir;
    let checks =
      base_checks
      @ [
          check "recovered" true
            (Printf.sprintf "replayed %d record(s) from epoch %d"
               rstats.Recovery.replayed rstats.Recovery.from_epoch);
          check "rpo-zero" (rpo_lost = 0)
            (Printf.sprintf "%d acked unite(s) lost" rpo_lost);
          check "audit-post-recovery" audit1
            "recovered forest passes the order invariant";
          check "resumed-ack" (!rto > 0)
            (Printf.sprintf "first post-recovery ack after %.3f ms"
               (float_of_int !rto /. 1e6));
          check "acked-survive-resume" survived
            "pre-crash acked unites still united after resumed serving";
          check "audit-post-resume" audit2
            "forest passes the order invariant after resumed serving";
        ]
    in
    {
      d_kind = kind;
      d_submitted = !submitted;
      d_acked = !acked;
      d_acked_unites = List.length !acked_unites;
      d_rpo_lost = rpo_lost;
      d_rto_ns = !rto;
      d_recovery = Some rstats;
      d_checks = checks;
      d_passed = List.for_all (fun c -> c.c_passed) checks;
    }

let drill_all ~config () =
  List.map
    (fun kind -> drill ~config ~kind ())
    [
      Snapshot.Flat;
      Snapshot.Boxed;
      Snapshot.Growable;
      Snapshot.Rank;
      Snapshot.Packed;
    ]

(* -------------------------------------------------------------- JSON *)

let hdr_fields (h : Hdr.snapshot) =
  [
    ("count", J.Int h.Hdr.count);
    ("mean_ns", J.Float (Hdr.mean h));
    ("min_ns", J.Int h.Hdr.min);
    ("p50_ns", J.Int (Hdr.quantile h 0.50));
    ("p90_ns", J.Int (Hdr.quantile h 0.90));
    ("p99_ns", J.Int (Hdr.quantile h 0.99));
    ("p999_ns", J.Int (Hdr.quantile h 0.999));
    ("max_ns", J.Int h.Hdr.max);
  ]

let point_json p =
  J.Obj
    [
      ("arrival_rate_per_gen", J.Float p.rate);
      ("offered_rate", J.Float p.offered_rate);
      ("target_ops", J.Int p.target_ops);
      ("submitted", J.Int p.submitted);
      ("accepted", J.Int p.accepted);
      ("rejected", J.Int p.rejected);
      ("acked", J.Int p.acked);
      ("shed", J.Int p.shed);
      ("timed_out", J.Int p.timed_out);
      ("failed", J.Int p.failed);
      ("lost", J.Int p.lost);
      ("duration_s", J.Float p.duration_s);
      ("achieved_rate", J.Float p.achieved_rate);
      ("max_depth", J.Int p.max_depth);
      ("depth_bound_ok", J.Bool p.depth_bound_ok);
      ("accounted_ok", J.Bool p.accounted_ok);
      ("saturated", J.Bool p.saturated);
      ("latency", J.Obj (hdr_fields p.latency));
    ]

let check_json c =
  J.Obj
    [
      ("name", J.String c.c_name);
      ("passed", J.Bool c.c_passed);
      ("detail", J.String c.c_detail);
    ]

let drill_json d =
  J.Obj
    [
      ("kind", J.String (Snapshot.kind_to_string d.d_kind));
      ("submitted", J.Int d.d_submitted);
      ("acked", J.Int d.d_acked);
      ("acked_unites", J.Int d.d_acked_unites);
      ("rpo_lost", J.Int d.d_rpo_lost);
      ("rto_ns", J.Int d.d_rto_ns);
      ( "recovery",
        match d.d_recovery with
        | Some s -> Recovery.stats_to_json s
        | None -> J.Null );
      ("checks", J.List (List.map check_json d.d_checks));
      ("passed", J.Bool d.d_passed);
    ]

let to_json config ~points ~drills =
  J.Obj
    [
      ("schema", J.String "dsu-service/v1");
      ("n", J.Int config.n);
      ("unite_percent", J.Int config.unite_percent);
      ("find_percent", J.Int config.find_percent);
      ("seed", J.Int config.seed);
      ("generators", J.Int config.generators);
      ("ops_per_generator", J.Int config.ops);
      ("shape", J.String (Latency.shape_to_string config.shape));
      ("workers", J.Int config.workers);
      ("queue_capacity", J.Int config.queue_capacity);
      ("batch", J.Int config.batch);
      ("admission", J.String (Svc.admission_to_string config.admission));
      ("plan", J.String (Dsu.Plan.to_string config.plan));
      ("kind", J.String (Snapshot.kind_to_string config.kind));
      ("durable", J.Bool config.durable);
      ("points", J.List (List.map point_json points));
      ( "knee_rate",
        match knee points with Some r -> J.Float r | None -> J.Null );
      ("drills", J.List (List.map drill_json drills));
    ]

(* ------------------------------------------------------------ pretty *)

let pp_point ppf p =
  Format.fprintf ppf
    "rate %8.0f/s  acked %8.0f/s  p99 %8d  depth %4d/%s  rej %5d  shed %4d  \
     %s%s"
    p.offered_rate p.achieved_rate
    (Hdr.quantile p.latency 0.99)
    p.max_depth
    (if p.depth_bound_ok then "ok" else "OVER")
    p.rejected p.shed
    (if p.saturated then "SATURATED" else "ok")
    (if p.accounted_ok then "" else "  UNACCOUNTED")

let pp_table ppf points =
  Format.fprintf ppf "serving sweep (open-loop, intended-start accounting)@.";
  List.iter (fun p -> Format.fprintf ppf "  %a@." pp_point p) points;
  match knee points with
  | Some r -> Format.fprintf ppf "  saturation knee: %.0f ops/s@." r
  | None -> Format.fprintf ppf "  saturation knee: below the swept range@."

let pp_drill ppf d =
  Format.fprintf ppf "drill %-8s %s  acked %d (%d unites)  RPO lost %d  RTO %.3f ms@."
    (Snapshot.kind_to_string d.d_kind)
    (if d.d_passed then "PASS" else "FAIL")
    d.d_acked d.d_acked_unites d.d_rpo_lost
    (float_of_int d.d_rto_ns /. 1e6);
  List.iter
    (fun c ->
      Format.fprintf ppf "    [%s] %-22s %s@."
        (if c.c_passed then "ok" else "FAIL")
        c.c_name c.c_detail)
    d.d_checks
