(** Serving harness: open-loop load sweeps over the
    {!Repro_service.Service} layer, and the crash-recovery drill that
    measures the serving layer's RPO and RTO.

    Load generators walk the exact arrival schedules of the latency
    harness ({!Latency.arrivals}) — fixed, Poisson, or bursty — and
    charge every operation from its {e intended} arrival time (the
    service echoes the submitted timestamp back in the response), so the
    reported latencies are open-loop and include ingestion queueing.

    The drill injects two deterministic crash-stop faults — a worker at
    {!Repro_fault.Site.Queue_deq_cas} mid-drain and the WAL committer at
    {!Repro_fault.Site.Wal_commit_mid} mid-commit — then recovers from
    the newest fuzzy checkpoint plus the WAL tail, resumes serving on
    the recovered backend, and measures:

    - {b RPO}: acknowledged unites absent from the recovered partition.
      The flush-before-ack contract makes the only passing value 0.
    - {b RTO}: first post-recovery [Done] ack minus the moment a crash
      was first detected — the full outage window (shutdown, snapshot
      selection, WAL replay, restart).

    Results serialize as the versioned [dsu-service/v1] JSON. *)

type config = {
  n : int;  (** universe size *)
  unite_percent : int;
  find_percent : int;  (** remaining operations are [same_set] *)
  seed : int;
  generators : int;  (** load-generator domains (= client sessions) *)
  ops : int;  (** operations per generator *)
  shape : Latency.shape;
  workers : int;
  queue_capacity : int;
  batch : int;
  admission : Repro_service.Service.admission;
  plan : Dsu.Plan.t;
  kind : Repro_recover.Snapshot.kind;
  op_deadline_ms : float;  (** 0 = no per-op deadline *)
  durable : bool;  (** attach a WAL (group commit on the drain path) *)
}

val default_config : config

val temp_dir : unit -> string
(** Fresh scratch directory for WALs and snapshots (caller removes). *)

type point = {
  rate : float;  (** offered arrivals/sec per generator *)
  offered_rate : float;  (** [rate *. generators] *)
  target_ops : int;
  submitted : int;
  accepted : int;
  rejected : int;  (** admission backpressure (full / deadline) *)
  acked : int;
  shed : int;
  timed_out : int;
  failed : int;
  lost : int;  (** admitted, never answered within the end drain *)
  duration_s : float;
  achieved_rate : float;  (** acked operations per second *)
  latency : Repro_obs.Hdr.snapshot;  (** completion − intended arrival *)
  max_depth : int;  (** deepest ingestion queue observed at submit *)
  depth_bound_ok : bool;  (** [max_depth <= queue_capacity] *)
  accounted_ok : bool;
      (** [accepted = acked + shed + timed_out + failed + lost], no
          phantom/duplicate responses, no completion-lane displacement —
          the "nothing silently dropped after ack" guarantee *)
  saturated : bool;  (** achieved < 95% of offered *)
}

val run_point : config:config -> rate:float -> unit -> point
(** One offered rate: build a service, drive it open-loop from
    [generators] domains, stop it, and account for every operation.
    @raise Invalid_argument on nonsensical knobs. *)

val sweep : config:config -> rates:float list -> unit -> point list

val knee : point list -> float option
(** Highest offered rate that did not saturate; [None] if all did. *)

type check = { c_name : string; c_passed : bool; c_detail : string }

type drill = {
  d_kind : Repro_recover.Snapshot.kind;
  d_submitted : int;
  d_acked : int;
  d_acked_unites : int;
  d_rpo_lost : int;  (** acked unites missing after recovery; must be 0 *)
  d_rto_ns : int;  (** first post-recovery ack − crash detection *)
  d_recovery : Repro_durable.Recovery.stats option;
  d_checks : check list;
  d_passed : bool;
}

val drill : config:config -> kind:Repro_recover.Snapshot.kind -> unit -> drill
(** The crash-recovery drill for one backend kind (uses [config]'s plan
    knobs, at least 2 workers, block admission, and its own scratch
    directory — removed before returning). *)

val drill_all : config:config -> unit -> drill list
(** {!drill} over all five kinds: flat, boxed, growable, rank, packed. *)

val to_json : config -> points:point list -> drills:drill list -> Repro_obs.Json.t
(** The [dsu-service/v1] document (either list may be empty). *)

val pp_point : Format.formatter -> point -> unit
val pp_table : Format.formatter -> point list -> unit
val pp_drill : Format.formatter -> drill -> unit
