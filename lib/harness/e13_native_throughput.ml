(** E13 — native context numbers (not a paper claim): wall-clock throughput
    of the OCaml 5 domains implementation, against the global-lock baseline.

    NOTE on this machine: with a single physical core, extra domains add
    scheduling overhead instead of parallel speedup; the interesting columns
    are the single-domain throughput and the lock-free vs lock comparison
    under oversubscription.  The paper's speedup claims are about total
    work, which experiments E4–E8 measure exactly in the simulator. *)

module Table = Repro_util.Table

(* Monotonic: a wall-clock step mid-run must not distort throughput. *)
let now () = float_of_int (Repro_obs.Clock.now_ns ()) /. 1e9

let throughput_concurrent ~policy ~n ~ops_per_domain ~domains ~seed =
  let d = Dsu.Native.create ~policy ~seed n in
  let worker k () =
    let rng = Repro_util.Rng.create (seed + (1000 * k)) in
    for _ = 1 to ops_per_domain do
      let x = Repro_util.Rng.int rng n in
      let y = Repro_util.Rng.int rng n in
      if Repro_util.Rng.int rng 10 < 3 then Dsu.Native.unite d x y
      else ignore (Dsu.Native.same_set d x y)
    done
  in
  let t0 = now () in
  let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join handles;
  let dt = now () -. t0 in
  float_of_int (ops_per_domain * domains) /. dt

let throughput_locked ~n ~ops_per_domain ~domains ~seed =
  let d = Baselines.Locked_dsu.create ~seed n in
  let worker k () =
    let rng = Repro_util.Rng.create (seed + (1000 * k)) in
    for _ = 1 to ops_per_domain do
      let x = Repro_util.Rng.int rng n in
      let y = Repro_util.Rng.int rng n in
      if Repro_util.Rng.int rng 10 < 3 then Baselines.Locked_dsu.unite d x y
      else ignore (Baselines.Locked_dsu.same_set d x y)
    done
  in
  let t0 = now () in
  let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join handles;
  let dt = now () -. t0 in
  float_of_int (ops_per_domain * domains) /. dt

let run ppf =
  let n = 1 lsl 17 in
  let total_ops = 400_000 in
  let table =
    Table.create ~headers:[ "domains"; "impl"; "Mops/s"; "vs locked" ]
  in
  List.iter
    (fun domains ->
      let ops_per_domain = total_ops / domains in
      let jt =
        throughput_concurrent ~policy:Dsu.Find_policy.Two_try_splitting ~n
          ~ops_per_domain ~domains ~seed:21
      in
      let locked = throughput_locked ~n ~ops_per_domain ~domains ~seed:21 in
      Table.add_row table
        [ Table.cell_int domains; "jt two-try"; Table.cell_float (jt /. 1e6); Table.cell_ratio (jt /. locked) ];
      Table.add_row table
        [ Table.cell_int domains; "global lock"; Table.cell_float (locked /. 1e6); "1.00x" ])
    [ 1; 2; 4 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.caveat: this host has 1 physical core, so domains>1 measures \
     oversubscribed concurrency, not parallelism; see the simulator \
     experiments for the paper's work-based speedup claims.@."

let experiment =
  Experiment.make ~id:"e13" ~title:"native throughput (OCaml 5 domains)"
    ~claim:
      "context: the wait-free implementation is competitive with (and under \
       contention better than) a lock-based DSU in wall-clock terms"
    run
