(** E4 — Theorem 5.1: with two-try splitting the expected total work is
    O(m (alpha(n, m/np) + log(np/m + 1))).  We sweep the crucial ratio
    np/m and compare measured work per operation to the bound's shape
    alpha(n, m/np) + lg(np/m + 1); the measured/bound ratio should stay
    within a constant band across the sweep. *)

module Table = Repro_util.Table
module Alpha = Repro_util.Alpha

let bound ~n ~m ~p =
  let d = float_of_int m /. (float_of_int n *. float_of_int p) in
  let alpha = Alpha.alpha n d in
  let log_term = Float.log2 ((float_of_int (n * p) /. float_of_int m) +. 1.) in
  float_of_int alpha +. log_term

let config ~n ~m ~p ~seed =
  let rng = Repro_util.Rng.create seed in
  (* m operations total: half unions (random pairs, so redundant unions
     appear), half queries — the generic on-line mix. *)
  let ops_list = Workload.Random_mix.mixed ~rng ~n ~m ~unite_fraction:0.5 in
  let ops = Workload.Op.round_robin ops_list ~p in
  let r =
    Measure.run_sim ~policy:Dsu.Find_policy.Two_try_splitting ~n ~seed ~ops ()
  in
  Measure.work_per_op r

let run ppf =
  let n = 1 lsl 12 in
  let table =
    Table.create
      ~headers:[ "n"; "m"; "p"; "np/m"; "work/op"; "alpha+log bound"; "ratio" ]
  in
  let configs =
    (* Sweep np/m across three orders of magnitude both by p and by m. *)
    [
      (4 * n, 1);
      (4 * n, 4);
      (4 * n, 16);
      (n, 1);
      (n, 4);
      (n, 16);
      (n, 64);
      (n / 2, 16);
      (n / 2, 64);
    ]
  in
  List.iter
    (fun (m, p) ->
      let wpo = config ~n ~m ~p ~seed:(m + p) in
      let b = bound ~n ~m ~p in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int m;
          Table.cell_int p;
          Table.cell_float (float_of_int (n * p) /. float_of_int m);
          Table.cell_float wpo;
          Table.cell_float b;
          Table.cell_float (wpo /. b);
        ])
    configs;
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: measured work/op never exceeds a small constant times \
     the bound (the ratio column is bounded); on this benign random workload \
     it stays flat and the bound's log(np/m + 1) term is slack — the \
     adversarial workload of E7 is what realizes that term, showing the \
     bound is tight over inputs, not over this input.@."

let experiment =
  Experiment.make ~id:"e4" ~title:"two-try splitting work bound"
    ~claim:
      "Theorem 5.1: expected total work O(m(alpha(n, m/np) + log(np/m + 1))) \
       with two-try splitting"
    run
