(** E7 — Theorem 5.4 (lower bound): an explicit workload forces
    Omega(m log(np/m)) total work.  Following the paper's construction:
    (a) one process builds n/delta binomial trees of delta nodes each
    (Lemma 5.3); (b) a random node x_i is drawn from each tree; (c) all p
    processes run SameSet(x_i, x_i) in lockstep.  Each probe must walk its
    tree's depth, so phase-(c) work per operation grows like lg delta. *)

module Table = Repro_util.Table

let phase_c_work ~n ~tree_size ~p ~seed =
  (* Phase (a): sequential build in the simulator, so phase (c) starts from
     exactly the memory the construction produced. *)
  let build = Workload.Binomial.forest_schedule ~n ~tree_size in
  let r1 =
    Measure.run_sim ~sched:(Apram.Scheduler.sequential ()) ~n ~seed
      ~ops:[| build |] ()
  in
  let snapshot = Apram.Memory.snapshot r1.Measure.memory in
  (* Phases (b) and (c). *)
  let rng = Repro_util.Rng.create (seed * 13) in
  let probes = Workload.Binomial.probes ~rng ~n ~tree_size in
  let ops = Workload.Op.duplicate probes ~p in
  let r2 =
    Measure.run_sim ~sched:(Apram.Scheduler.round_robin ()) ~init_parents:snapshot
      ~n ~seed ~ops ()
  in
  Measure.work_per_op r2

let run ppf =
  let n = 1 lsl 12 in
  let p = 8 in
  let table =
    Table.create
      ~headers:[ "delta (tree size)"; "probes x p"; "work/op"; "lg delta"; "work / lg delta" ]
  in
  let points = ref [] in
  List.iter
    (fun tree_size ->
      let wpo = phase_c_work ~n ~tree_size ~p ~seed:(tree_size + 3) in
      let lg = float_of_int (Repro_util.Alpha.floor_log2 tree_size) in
      points := (lg, wpo) :: !points;
      Table.add_row table
        [
          Table.cell_int tree_size;
          Table.cell_int (n / tree_size * p);
          Table.cell_float wpo;
          Table.cell_float ~decimals:0 lg;
          Table.cell_float (wpo /. lg);
        ])
    [ 4; 16; 64; 256; 1024 ];
  Table.pp ppf table;
  Format.fprintf ppf "@.%s@."
    (Repro_util.Ascii_plot.render_single ~height:12 ~x_label:"lg delta"
       ~y_label:"probe work per operation" (List.rev !points));
  Format.fprintf ppf
    "@.expected shape: probe work per operation grows linearly in lg delta \
     (the work/lg-delta column levels off), matching the Omega(m log(np/m)) \
     term of Theorem 5.4 with delta = np/3m.@."

let experiment =
  Experiment.make ~id:"e7" ~title:"explicit lower-bound workload"
    ~claim:
      "Theorem 5.4: there are workloads forcing \
       Omega(m(alpha(n, m/np) + log(np/m + 1))) expected work — the bound of \
       Theorem 5.1 is tight"
    run
