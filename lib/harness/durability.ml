(* Durability cost measurement: what the WAL and the fuzzy snapshots
   charge the hot path.

   Three phases over the same pre-generated workload, best wall time of
   [repeats] runs each:

   - wal=off: the bare structure — the throughput baseline, plus the
     stop-the-world price of a quiescent snapshot (the full scan, since a
     quiescent capture requires every mutator parked for its duration);
   - fuzzy: the same run with a snapshotter domain taking [snapshots]
     fuzzy captures concurrently — the mutator-observed "pause" is the
     run's wall-time inflation divided across the captures, which the
     fuzzy design claims is ~0 (mutators never stop);
   - wal=on: the same run with every link appended to a group-committed
     WAL — the overhead the 15% CI guard watches. *)

module Policy = Dsu.Find_policy
module Rng = Repro_util.Rng
module J = Repro_obs.Json
module Clock = Repro_obs.Clock
module Rsnap = Repro_recover.Snapshot
module Dwal = Repro_durable.Wal
module Dfuzzy = Repro_durable.Fuzzy

type config = {
  n : int;
  ops_per_domain : int;
  domains : int;
  unite_percent : int;
  seed : int;
  repeats : int;
  snapshots : int;  (** fuzzy captures taken during the fuzzy phase *)
  flush_records : int;
  flush_interval : float;
  policy : Policy.t;
}

let default_config =
  {
    n = 1 lsl 16;
    ops_per_domain = 200_000;
    domains = 4;
    unite_percent = 60;
    seed = 11;
    repeats = 3;
    snapshots = 8;
    flush_records = 256;
    flush_interval = 0.002;
    policy = Policy.Two_try_splitting;
  }

type result = {
  config : config;
  wal_off_mops : float;
  wal_on_mops : float;
  overhead_pct : float;  (** throughput lost to the WAL, percent *)
  quiescent_pause_ns : float;  (** stop-the-world scan duration *)
  fuzzy_pause_ns : float;  (** mutator-observed inflation per fuzzy capture *)
  fuzzy_scan_ns : float;  (** mean fuzzy scan duration (the scanner's cost) *)
  wal_appended : int;
  wal_committed : int;
  wal_commits : int;
}

let validate c =
  if c.n < 2 then invalid_arg "Durability: n must be >= 2";
  if c.domains < 1 then invalid_arg "Durability: domains must be >= 1";
  if c.ops_per_domain < 1 then invalid_arg "Durability: ops_per_domain must be >= 1";
  if c.repeats < 1 then invalid_arg "Durability: repeats must be >= 1";
  if c.snapshots < 1 then invalid_arg "Durability: snapshots must be >= 1"

(* (x, y, is_unite) streams, same generator discipline as the chaos
   harness so runs are reproducible from the seed alone. *)
let gen_ops c =
  Array.init c.domains (fun k ->
      let rng = Rng.create (c.seed + (1000 * k)) in
      Array.init c.ops_per_domain (fun _ ->
          let x = Rng.int rng c.n and y = Rng.int rng c.n in
          (x, y, Rng.int rng 100 < c.unite_percent)))

(* One timed run of every stream against a fresh structure; returns the
   wall nanoseconds and the structure (for the quiescent-snapshot timing
   and so the WAL writer sees real link traffic). *)
let timed_run c ~on_link ~during =
  let d =
    match on_link with
    | None -> Dsu.Native.create ~policy:c.policy ~seed:c.seed c.n
    | Some f -> Dsu.Native.create ~policy:c.policy ~seed:c.seed ~on_link:f c.n
  in
  let ops = gen_ops c in
  let t0 = Clock.now_ns () in
  let workers =
    List.init c.domains (fun k ->
        Domain.spawn (fun () ->
            Array.iter
              (fun (x, y, u) ->
                if u then Dsu.Native.unite d x y
                else ignore (Dsu.Native.same_set d x y))
              ops.(k)))
  in
  let aux = during d in
  List.iter Domain.join workers;
  let ns = Clock.now_ns () - t0 in
  (ns, d, aux)

let best c f =
  let rec go i (best_ns, best_aux) =
    if i >= c.repeats then (best_ns, best_aux)
    else
      let ns, aux = f () in
      go (i + 1) (if ns < best_ns then (ns, aux) else (best_ns, best_aux))
  in
  let ns, aux = f () in
  go 1 (ns, aux)

let mops c ns =
  float_of_int (c.domains * c.ops_per_domain) /. (float_of_int ns /. 1e9) /. 1e6

let run ?(config = default_config) () =
  let c = config in
  validate c;
  (* Phase 1: baseline, plus the quiescent scan at quiescence. *)
  let off_ns, quiescent_pause_ns =
    best c (fun () ->
        let ns, d, () = timed_run c ~on_link:None ~during:(fun _ -> ()) in
        let t0 = Clock.now_ns () in
        ignore (Rsnap.of_native d : Rsnap.t);
        (ns, float_of_int (Clock.now_ns () - t0)))
  in
  (* Phase 2: concurrent fuzzy captures.  The per-capture "pause" is the
     wall-time the mutators lost, not the scanner's own cost. *)
  let fuzzy_ns, fuzzy_scan_ns =
    best c (fun () ->
        let ns, _, scan_ns =
          timed_run c ~on_link:None ~during:(fun d ->
              let scans = ref 0 in
              for _ = 1 to c.snapshots do
                let cap = Dfuzzy.of_native d in
                scans := !scans + cap.Dfuzzy.scan_ns
              done;
              float_of_int !scans /. float_of_int c.snapshots)
        in
        (ns, scan_ns))
  in
  (* Phase 3: WAL on — every link enqueued, committer group-committing to
     a scratch file that is removed afterwards. *)
  let on_ns, (wal_appended, wal_committed, wal_commits) =
    best c (fun () ->
        let path = Filename.temp_file "dsu-durability" ".wal" in
        let wal =
          Dwal.create_writer ~flush_records:c.flush_records
            ~flush_interval:c.flush_interval path
        in
        let ns, _, () =
          timed_run c ~on_link:(Some (Dwal.append wal)) ~during:(fun _ -> ())
        in
        Dwal.close wal;
        let s = Dwal.writer_stats wal in
        (try Sys.remove path with Sys_error _ -> ());
        (ns, (s.Dwal.ws_appended, s.Dwal.ws_committed, s.Dwal.ws_commits)))
  in
  let wal_off_mops = mops c off_ns and wal_on_mops = mops c on_ns in
  {
    config = c;
    wal_off_mops;
    wal_on_mops;
    overhead_pct =
      (if wal_off_mops = 0. then 0.
       else (wal_off_mops -. wal_on_mops) /. wal_off_mops *. 100.);
    quiescent_pause_ns;
    fuzzy_pause_ns =
      Float.max 0.
        (float_of_int (fuzzy_ns - off_ns) /. float_of_int c.snapshots);
    fuzzy_scan_ns;
    wal_appended;
    wal_committed;
    wal_commits;
  }

let to_json (r : result) =
  let c = r.config in
  J.Obj
    [
      ("schema", J.String "dsu-durability/v1");
      ("n", J.Int c.n);
      ("ops_per_domain", J.Int c.ops_per_domain);
      ("domains", J.Int c.domains);
      ("unite_percent", J.Int c.unite_percent);
      ("seed", J.Int c.seed);
      ("repeats", J.Int c.repeats);
      ("snapshots", J.Int c.snapshots);
      ("flush_records", J.Int c.flush_records);
      ("flush_interval", J.Float c.flush_interval);
      ("policy", J.String (Policy.to_string c.policy));
      ( "points",
        J.List
          [
            J.Obj
              [
                ("name", J.String "unite wal=off");
                ("mops_per_sec", J.Float r.wal_off_mops);
              ];
            J.Obj
              [
                ("name", J.String "unite wal=on");
                ("mops_per_sec", J.Float r.wal_on_mops);
              ];
            J.Obj
              [
                ("name", J.String "snapshot quiescent");
                ("pause_ns", J.Float r.quiescent_pause_ns);
              ];
            J.Obj
              [
                ("name", J.String "snapshot fuzzy");
                ("pause_ns", J.Float r.fuzzy_pause_ns);
              ];
          ] );
      ("wal_overhead_pct", J.Float r.overhead_pct);
      ("fuzzy_scan_ns", J.Float r.fuzzy_scan_ns);
      ( "wal",
        J.Obj
          [
            ("appended", J.Int r.wal_appended);
            ("committed", J.Int r.wal_committed);
            ("commits", J.Int r.wal_commits);
          ] );
    ]

let pp ppf (r : result) =
  Format.fprintf ppf
    "@[<v>durability (n=%d, %d domains x %d ops, %d%% unite):@,\
    \  unite throughput: %.2f Mops/s wal=off, %.2f Mops/s wal=on (%.1f%% \
     overhead)@,\
    \  snapshot pause: %.0f ns quiescent (stop-the-world scan), %.0f ns \
     fuzzy (mutator-observed, %d captures, mean scan %.0f ns)@,\
    \  wal: %d appended, %d committed in %d group commits@]"
    r.config.n r.config.domains r.config.ops_per_domain
    r.config.unite_percent r.wal_off_mops r.wal_on_mops r.overhead_pct
    r.quiescent_pause_ns r.fuzzy_pause_ns r.config.snapshots r.fuzzy_scan_ns
    r.wal_appended r.wal_committed r.wal_commits
