(** E12 — the introduction's application claims, end to end: connected
    components, minimum spanning forests, percolation, and SCC condensation
    all run on the concurrent DSU and agree with their sequential
    references. *)

module Table = Repro_util.Table

let run ppf =
  let table = Table.create ~headers:[ "application"; "instance"; "check"; "result" ] in
  let rng = Repro_util.Rng.create 99 in
  (* Connected components: concurrent labels must equal sequential labels. *)
  let g = Graphs.Generators.erdos_renyi ~rng ~n:20_000 ~m:30_000 () in
  let seq_labels = Graphs.Components.sequential g in
  let conc_labels = Graphs.Components.concurrent ~domains:4 ~seed:5 g in
  Table.add_row table
    [
      "connected components";
      "ER n=20k m=30k";
      "labels equal, count";
      Printf.sprintf "%s, %d components"
        (if seq_labels = conc_labels then "equal" else "MISMATCH")
        (Graphs.Components.count seq_labels);
    ];
  (* Minimum spanning forest: same total weight from both DSUs. *)
  let base = Graphs.Generators.erdos_renyi ~rng ~n:2_000 ~m:6_000 () in
  let w = Graphs.Graph.with_random_weights ~rng base in
  let mst_seq = Graphs.Kruskal.run w in
  let mst_conc = Graphs.Kruskal.run_concurrent_dsu ~seed:7 w in
  Table.add_row table
    [
      "Kruskal MSF";
      "ER n=2k m=6k";
      "equal weight";
      Printf.sprintf "%.4f vs %.4f (%s)" mst_seq.Graphs.Kruskal.total_weight
        mst_conc.Graphs.Kruskal.total_weight
        (if Float.abs (mst_seq.Graphs.Kruskal.total_weight -. mst_conc.Graphs.Kruskal.total_weight) < 1e-9
         then "equal" else "MISMATCH");
    ];
  (* Percolation threshold. *)
  let s = Graphs.Percolation.threshold_estimate ~rng ~size:48 ~trials:20 in
  Table.add_row table
    [
      "site percolation";
      "48x48, 20 trials";
      "threshold ~ 0.5927";
      Printf.sprintf "mean %.4f (sd %.4f)" s.Repro_util.Stats.mean s.Repro_util.Stats.stddev;
    ];
  (* SCC condensation. *)
  let dg = Graphs.Generators.clustered_digraph ~rng ~clusters:40 ~cluster_size:25 ~extra:200 in
  let cond = Graphs.Scc.condense_with_dsu ~seed:11 dg in
  Table.add_row table
    [
      "SCC condensation";
      "40 cycles x 25 + 200 dag edges";
      "40 SCCs, acyclic quotient";
      Printf.sprintf "%d SCCs, quotient self-SCCs: %d"
        (Graphs.Scc.count cond.Graphs.Scc.labels)
        (Graphs.Scc.count (Graphs.Scc.tarjan cond.Graphs.Scc.quotient));
    ];
  (* Parallel Boruvka MSF: rounds of concurrent finds + contractions. *)
  let bw = Graphs.Graph.with_random_weights ~rng (Graphs.Generators.erdos_renyi ~rng ~n:3_000 ~m:9_000 ()) in
  let bk = Graphs.Kruskal.run bw in
  let bb = Graphs.Boruvka.run_parallel ~domains:4 bw in
  Table.add_row table
    [
      "Boruvka MSF (parallel)";
      "ER n=3k m=9k, 4 domains";
      "equals Kruskal weight";
      Printf.sprintf "%.4f vs %.4f in %d rounds (%s)"
        bk.Graphs.Kruskal.total_weight bb.Graphs.Boruvka.total_weight
        bb.Graphs.Boruvka.rounds
        (if Float.abs (bk.Graphs.Kruskal.total_weight -. bb.Graphs.Boruvka.total_weight) < 1e-9
         then "equal" else "MISMATCH");
    ];
  (* Offline LCA. *)
  let t = Graphs.Lca.random_tree ~rng ~n:5_000 in
  let queries =
    List.init 2_000 (fun _ ->
        (Repro_util.Rng.int rng 5_000, Repro_util.Rng.int rng 5_000))
  in
  let fast = Graphs.Lca.solve t queries in
  let naive = List.map (fun (u, v) -> Graphs.Lca.lca_naive t u v) queries in
  Table.add_row table
    [
      "offline LCA (Tarjan)";
      "random tree n=5k, 2k queries";
      "equals naive walk";
      (if fast = naive then "all 2000 equal" else "MISMATCH");
    ];
  (* Dominators. *)
  let fg = Graphs.Generators.random_digraph ~rng ~n:2_000 ~m:5_000 in
  let lt = Graphs.Dominators.lengauer_tarjan fg ~root:0 in
  let it = Graphs.Dominators.iterative fg ~root:0 in
  Table.add_row table
    [
      "dominators (Lengauer-Tarjan)";
      "random flowgraph n=2k m=5k";
      "equals iterative dataflow";
      (if lt = it then "idom arrays equal" else "MISMATCH");
    ];
  (* Pointer analysis. *)
  let var i = Printf.sprintf "v%d" i in
  let program =
    List.init 4_000 (fun _ ->
        let x = var (Repro_util.Rng.int rng 200) in
        let y = var (Repro_util.Rng.int rng 200) in
        match Repro_util.Rng.int rng 4 with
        | 0 -> Analysis.Steensgaard.Address_of (x, y)
        | 1 -> Analysis.Steensgaard.Copy (x, y)
        | 2 -> Analysis.Steensgaard.Load (x, y)
        | _ -> Analysis.Steensgaard.Store (x, y))
  in
  let steens = Analysis.Steensgaard.analyze ~capacity:20_000 program in
  let anders = Analysis.Andersen.analyze program in
  let unsound = ref 0 in
  let vars = Analysis.Andersen.variables anders in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if
            Analysis.Andersen.may_alias anders x y
            && not (Analysis.Steensgaard.may_alias steens x y)
          then incr unsound)
        vars)
    vars;
  Table.add_row table
    [
      "Steensgaard points-to";
      "4000 stmts, 200 vars";
      "covers Andersen aliases";
      Printf.sprintf "%d uncovered (cells: %d)" !unsound
        (Analysis.Steensgaard.cells_used steens);
    ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: components and MSF weights agree exactly with the \
     sequential references; the percolation estimate approaches the known \
     threshold 0.5927; the clustered digraph yields exactly its built-in 40 \
     SCCs and the quotient is a DAG; offline LCA matches the naive walk; the \
     two dominator algorithms agree; and Steensgaard (unification over the \
     growable DSU) covers every Andersen alias (0 uncovered).@."

let experiment =
  Experiment.make ~id:"e12" ~title:"applications end-to-end"
    ~claim:
      "Section 1: DSU drives connected components, MSTs, percolation, SCCs, \
       compiler storage allocation (pointer analysis), and dominators; the \
       concurrent algorithm slots in for all of them"
    run
