(** Shared measurement machinery: run a workload against an implementation
    (simulated concurrent, simulated Anderson–Woll, or sequential) and
    collect every quantity the experiments report. *)

type sim_result = {
  total_steps : int;  (** total work in shared-memory steps *)
  steps_per_process : int array;
  op_costs : int array;  (** per completed operation, completion order *)
  stats : Dsu.Stats.snapshot;
  links : (int * int) list;  (** union-forest edges (child, parent) *)
  memory : Apram.Memory.t;
  spec : Dsu.Sim.spec;
  history : Apram.History.t;
  obs : Repro_obs.Metrics.snapshot;
      (** Telemetry registry snapshot taken as the run completed — all
          zeros unless [Repro_obs.Metrics.set_enabled true] was called
          before the run.  The registry is process-global and cumulative
          across runs; [Repro_obs.Metrics.reset ()] between runs isolates
          one run's figures. *)
  crashed : int list;
      (** pids crash-stopped by the scheduler (non-empty only under
          {!Apram.Scheduler.crash}); their in-flight ops are absent from
          [op_costs]. *)
}

val run_sim :
  ?sched:Apram.Scheduler.t ->
  ?policy:Dsu.Find_policy.t ->
  ?early:bool ->
  ?init_parents:int array ->
  ?max_steps:int ->
  n:int ->
  seed:int ->
  ops:Workload.Op.t list array ->
  unit ->
  sim_result
(** Run one simulated execution: process [i] performs [ops.(i)] in order.
    [seed] fixes the random node order; the default scheduler is
    [Apram.Scheduler.random] seeded from [seed]; [init_parents] warm-starts
    the parent array (for phase-separated experiments). *)

type aw_result = {
  aw_total_steps : int;
  aw_op_costs : int array;
  aw_stats : Dsu.Stats.snapshot;
}

val run_sim_aw :
  ?sched:Apram.Scheduler.t ->
  ?max_steps:int ->
  ?indirection:bool ->
  n:int ->
  seed:int ->
  ops:Workload.Op.t list array ->
  unit ->
  aw_result
(** Same execution shape for the Anderson–Woll baseline. *)

val seq_work :
  linking:Sequential.Seq_dsu.linking ->
  compaction:Sequential.Seq_dsu.compaction ->
  ?seed:int ->
  n:int ->
  ops:Workload.Op.t list ->
  unit ->
  Sequential.Seq_dsu.counters

val mean_int : int array -> float
val work_per_op : sim_result -> float
(** [total_steps / number of completed operations]. *)
