let all =
  [
    E01_per_op_steps.experiment;
    E02_forest_height.experiment;
    E03_same_rank_ancestors.experiment;
    E04_two_try_bound.experiment;
    E05_policy_ablation.experiment;
    E06_binomial_depth.experiment;
    E07_lower_bound.experiment;
    E08_vs_anderson_woll.experiment;
    E09_sequential_variants.experiment;
    E10_early_termination.experiment;
    E11_linearizability.experiment;
    E12_applications.experiment;
    E13_native_throughput.experiment;
    E14_compression_conjecture.experiment;
    E15_independence_assumption.experiment;
    E16_step_distribution.experiment;
    E17_connectit_sampling.experiment;
    E18_wait_freedom.experiment;
  ]

let find id = List.find_opt (fun e -> e.Experiment.id = id) all

let run_all ppf = List.iter (Experiment.run ppf) all
