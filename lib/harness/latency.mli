(** Coordinated-omission-free open-loop load harness.

    Each load-generator domain walks a {e precomputed} arrival schedule
    (fixed-rate, Poisson, or bursty — deterministic from the seed) and
    charges every operation from its {e intended} start time, so an
    operation queued behind a server stall is billed for the wait.  A
    closed-loop harness (issue-on-return, like
    {!Scalability}/{!E13_native_throughput}) measures only service time
    and silently omits exactly those samples — coordinated omission,
    which flattens the reported tail.  Both distributions are recorded
    ({!Repro_obs.Hdr}, ≤1% quantile error) so the gap is visible, plus a
    {!Repro_obs.Reservoir} of exact open-loop samples for export.

    Rate sweeps locate the saturation knee; results serialize as the
    versioned [dsu-latency/v1] JSON (see docs/OBSERVABILITY.md). *)

type shape = Fixed | Poisson | Bursty of int  (** arrivals per burst *)

val shape_to_string : shape -> string
val shape_of_string : string -> shape option
(** ["fixed"], ["poisson"], ["bursty"] (= [Bursty 16]) or ["bursty:K"]. *)

type config = {
  n : int;  (** universe size *)
  unite_percent : int;  (** remaining operations are [same_set] *)
  seed : int;
  domains : int;  (** load-generator domains *)
  ops : int;  (** operations per generator *)
  shape : shape;
  reservoir : int;  (** exact samples kept per point *)
}

val default_config : config

val arrivals : shape:shape -> rate:float -> ops:int -> seed:int -> int array
(** The deterministic arrival-offset schedule (ns from the generator's
    epoch) one generator walks: mean inter-arrival [1e9 /. rate] for
    every shape.  Exposed so other open-loop harnesses ({!Service}) drive
    identical schedules. *)

type point = {
  rate : float;  (** offered arrivals/sec per generator *)
  offered_rate : float;  (** [rate *. domains] *)
  target_ops : int;
  completed_ops : int;
  duration_s : float;
  achieved_rate : float;
  latency : Repro_obs.Hdr.snapshot;
      (** open-loop: completion − intended start *)
  service : Repro_obs.Hdr.snapshot;
      (** closed-loop equivalent: completion − actual start *)
  samples : int array;  (** sorted reservoir of open-loop latencies, ns *)
  max_lag_ns : int;  (** worst (actual − intended) start lag *)
  saturated : bool;  (** achieved < 95% of offered *)
}

val run_point :
  ?stall:(domain:int -> index:int -> int) ->
  config:config ->
  rate:float ->
  unit ->
  point
(** One arrival rate.  [stall ~domain ~index] (default: none) injects
    that many nanoseconds of busy-work into the service of generator
    [domain]'s [index]-th operation — the "deliberately stalled server"
    whose queueing delay open-loop accounting exposes and closed-loop
    accounting hides. *)

val sweep :
  ?stall:(domain:int -> index:int -> int) ->
  config:config ->
  rates:float list ->
  unit ->
  point list

val knee : point list -> float option
(** Highest offered rate that did not saturate; [None] if all did. *)

val to_json : config -> point list -> Repro_obs.Json.t
(** The [dsu-latency/v1] document. *)

val pp_point : Format.formatter -> point -> unit
val pp_table : Format.formatter -> point list -> unit
