(** E15 — the independence assumption (Section 4's starred assumption,
    discussed in
    Section 7): randomized linking's bounds assume the random node order is
    independent of the linearization order of the Unites.  An id-aware
    adversary can violate this: uniting elements in increasing id order
    makes every link extend a path, so the union forest degenerates to a
    chain of height n-1 and uncompacted finds cost Θ(n).

    Section 7's answer is linking by rank ("one of them is randomized and
    needs no independence assumption; the other two are deterministic");
    {!Dsu.Rank} implements the deterministic one, and this experiment shows
    it is immune to the same adversary.  Compaction (splitting) also
    repairs the damage for randomized linking in the amortized sense — the
    chain is expensive once, not per operation. *)

module Table = Repro_util.Table

(* Adversarial schedule: unite elements in increasing id order.  For the
   randomized structure the adversary reads the ids off the handle (the
   model allows this: ids are not secret, and real workloads can correlate
   with them by accident); for the rank structure there are no ids, so the
   same schedule unites in element order. *)

let randomized_chain ~policy ~n ~seed =
  let links = ref [] in
  let d =
    Dsu.Native.create ~policy ~seed
      ~on_link:(fun ~child ~parent -> links := (child, parent) :: !links)
      n
  in
  (* Sort elements by their random id, then unite neighbours in that order. *)
  let by_id = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (Dsu.Native.id d a) (Dsu.Native.id d b)) by_id;
  for i = 0 to n - 2 do
    Dsu.Native.unite d by_id.(i) by_id.(i + 1)
  done;
  Forest.height (Forest.of_links ~n !links)

let randomized_probe_work ~policy ~n ~seed =
  (* Same adversarial build, then measure the work of n/8 random queries. *)
  let d = Dsu.Native.create ~policy ~seed ~collect_stats:true n in
  let by_id = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (Dsu.Native.id d a) (Dsu.Native.id d b)) by_id;
  for i = 0 to n - 2 do
    Dsu.Native.unite d by_id.(i) by_id.(i + 1)
  done;
  let before = Dsu.Native.stats d in
  let rng = Repro_util.Rng.create (seed + 1) in
  let probes = n / 8 in
  for _ = 1 to probes do
    ignore (Dsu.Native.same_set d (Repro_util.Rng.int rng n) (Repro_util.Rng.int rng n))
  done;
  let delta = Dsu.Stats.sub (Dsu.Native.stats d) before in
  float_of_int (Dsu.Stats.total_work delta) /. float_of_int probes

let rank_chain_height ~n =
  let d = Dsu.Rank.Native.create n in
  for i = 0 to n - 2 do
    Dsu.Rank.Native.unite d i (i + 1)
  done;
  let max_depth = ref 0 in
  for i = 0 to n - 1 do
    let u = ref i and depth = ref 0 in
    while Dsu.Rank.Native.parent_of d !u <> !u do
      u := Dsu.Rank.Native.parent_of d !u;
      incr depth
    done;
    max_depth := max !max_depth !depth
  done;
  !max_depth

let run ppf =
  let table =
    Table.create
      ~headers:
        [ "n"; "structure"; "union-forest height"; "height / lg n"; "probe work/op" ]
  in
  List.iter
    (fun n ->
      let lg = float_of_int (Repro_util.Alpha.floor_log2 n) in
      let h_rand = randomized_chain ~policy:Dsu.Find_policy.No_compaction ~n ~seed:n in
      let w_none =
        randomized_probe_work ~policy:Dsu.Find_policy.No_compaction ~n ~seed:n
      in
      Table.add_row table
        [
          Table.cell_int n;
          "randomized, none";
          Table.cell_int h_rand;
          Table.cell_float (float_of_int h_rand /. lg);
          Table.cell_float w_none;
        ];
      let w_split =
        randomized_probe_work ~policy:Dsu.Find_policy.Two_try_splitting ~n ~seed:n
      in
      Table.add_row table
        [
          Table.cell_int n;
          "randomized, two-try";
          Table.cell_int h_rand;
          Table.cell_float (float_of_int h_rand /. lg);
          Table.cell_float w_split;
        ];
      let h_rank = rank_chain_height ~n in
      Table.add_row table
        [
          Table.cell_int n;
          "by-rank (Sec. 7)";
          Table.cell_int h_rank;
          Table.cell_float (float_of_int h_rank /. lg);
          "-";
        ];
      Table.add_rule table)
    [ 1 lsl 8; 1 lsl 10; 1 lsl 12 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: the id-aware adversarial union order drives the \
     randomized union forest to height n-1 (height/lg n blows up) and makes \
     uncompacted probes cost Theta(n) — the independence assumption is real, \
     not an analysis artifact.  Splitting repairs the per-probe cost \
     (amortized), and the Section 7 rank-based variant never degenerates \
     (height stays <= lg n with no assumption).@."

let experiment =
  Experiment.make ~id:"e15" ~title:"the independence assumption, violated"
    ~claim:
      "Sections 4 and 7: the bounds assume the random node order is \
       independent of the Unite order; linking by rank removes the \
       assumption"
    run
