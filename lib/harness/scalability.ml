module Policy = Dsu.Find_policy
module Order = Dsu.Memory_order
module Rng = Repro_util.Rng
module Table = Repro_util.Table
module J = Repro_obs.Json

(* The layout constructors are re-exported from {!Dsu.Plan} so a plan's
   layout field and a sweep point's layout are the same value. *)
type layout = Dsu.Plan.layout = Flat | Padded | Boxed | Packed

let all_layouts = Dsu.Plan.all_layouts
let layout_to_string = Dsu.Plan.layout_to_string
let layout_of_string = Dsu.Plan.layout_of_string

type dist = Uniform | Skewed

let all_dists = [ Uniform; Skewed ]
let dist_to_string = function Uniform -> "uniform" | Skewed -> "skewed"

let dist_of_string = function
  | "uniform" -> Some Uniform
  | "skewed" -> Some Skewed
  | _ -> None

type point = {
  layout : layout;
  policy : Policy.t;
  memory_order : Order.t;
  backoff : bool;
  dist : dist;
  domains : int;
  n : int;
  total_ops : int;
  seconds : float;
  mops_per_sec : float;
  failures : (int * string) list;
}

type config = {
  n : int;
  total_ops : int;
  unite_percent : int;
  seed : int;
  domain_counts : int list;
  policies : Policy.t list;
  layouts : layout list;
  memory_orders : Order.t list;
  backoffs : bool list;
  dists : dist list;
}

let default_config =
  {
    n = 1 lsl 16;
    total_ops = 400_000;
    unite_percent = 30;
    seed = 21;
    domain_counts = [ 1; 2; 4; 8 ];
    policies = [ Policy.Two_try_splitting; Policy.One_try_splitting ];
    layouts = [ Flat; Boxed ];
    memory_orders = [ Order.default ];
    backoffs = [ true ];
    dists = [ Uniform ];
  }

(* The skewed distribution concentrates 80% of all endpoint draws on a hot
   range of [max 16 (n/256)] nodes, so with several domains nearly every
   operation contends on the same few trees — the regime where link-CAS
   backoff and the memory orders matter most.  (A Zipf sampler would need
   per-draw float work inside the generator; a two-level hot/cold mix gets
   the same contention with integer arithmetic only.) *)
let hot_range n = max 16 (n / 256)

let gen_endpoint rng ~n ~dist =
  match dist with
  | Uniform -> Rng.int rng n
  | Skewed -> if Rng.int rng 100 < 80 then Rng.int rng (hot_range n) else Rng.int rng n

(* Per-domain op streams are generated outside the timed section (the
   generator's RNG and list building must not pollute the measurement) and
   handed to the workers as contiguous arrays — see Workload.Op's array
   runners for why. *)
let gen_ops ?(dist = Uniform) ~n ~unite_percent ~seed ~domains ~ops_per_domain
    () =
  Array.init domains (fun k ->
      let rng = Rng.create (seed + (1000 * k)) in
      Array.init ops_per_domain (fun _ ->
          let x = gen_endpoint rng ~n ~dist and y = gen_endpoint rng ~n ~dist in
          if Rng.int rng 100 < unite_percent then Workload.Op.Unite (x, y)
          else Workload.Op.Same_set (x, y)))

(* Every worker body is wrapped so an exception in one domain is captured
   into its slot instead of escaping through [Domain.join]: re-raising
   mid-join would abandon the remaining joins, leaving live domains racing
   on a structure the caller believes quiesced.  All joins always complete;
   failures are reported per-domain afterwards. *)
let time_run ~domains ~(run : int -> unit) =
  let errors = Array.make domains None in
  let t0 = Repro_obs.Clock.now_ns () in
  let handles =
    List.init domains (fun k ->
        Domain.spawn (fun () ->
            try run k
            with e -> errors.(k) <- Some (Printexc.to_string e)))
  in
  List.iter Domain.join handles;
  let seconds = float_of_int (Repro_obs.Clock.now_ns () - t0) /. 1e9 in
  let failures =
    Array.to_list errors
    |> List.mapi (fun k e -> (k, e))
    |> List.filter_map (fun (k, e) -> Option.map (fun msg -> (k, msg)) e)
  in
  (seconds, failures)

let run_point ?(config = default_config) ?(memory_order = Order.default)
    ?(backoff = true) ?(dist = Uniform) ~layout ~policy ~domains () =
  if domains < 1 then invalid_arg "Scalability.run_point: domains must be >= 1";
  let { n; total_ops; unite_percent; seed; _ } = config in
  let ops_per_domain = max 1 (total_ops / domains) in
  let ops = gen_ops ~dist ~n ~unite_percent ~seed ~domains ~ops_per_domain () in
  let seconds, failures =
    match layout with
    | Flat ->
      let d = Dsu.Native.create ~policy ~backoff ~memory_order ~seed n in
      time_run ~domains ~run:(fun k -> Workload.Op.run_native_array d ops.(k))
    | Padded ->
      let d =
        Dsu.Native.create ~padded:true ~policy ~backoff ~memory_order ~seed n
      in
      time_run ~domains ~run:(fun k -> Workload.Op.run_native_array d ops.(k))
    | Boxed ->
      (* The boxed layout has no memory-order knob ([Atomic.t] is always
         seq-cst); the point still records the requested mode so ablation
         grids stay rectangular. *)
      let d = Dsu.Boxed.create ~policy ~backoff ~seed n in
      time_run ~domains ~run:(fun k -> Workload.Op.run_boxed_array d ops.(k))
    | Packed ->
      (* Linking by rank over the bit-packed single-word layout; [seed]
         is irrelevant (no random priorities). *)
      let d = Dsu.Packed.Native.create ~policy ~backoff ~memory_order n in
      time_run ~domains ~run:(fun k -> Workload.Op.run_packed_array d ops.(k))
  in
  let total = ops_per_domain * domains in
  {
    layout;
    policy;
    memory_order;
    backoff;
    dist;
    domains;
    n;
    total_ops = total;
    seconds;
    mops_per_sec = (float_of_int total /. seconds) /. 1e6;
    failures;
  }

(* One timed run of a {!Dsu.Plan} point: the plan's axes map straight onto
   [run_point]'s knobs (the linking rule is implied by the layout). *)
let run_plan_point ?config ?dist ~(plan : Dsu.Plan.t) ~domains () =
  (match Dsu.Plan.validate plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Scalability.run_plan_point: " ^ e));
  run_point ?config ~memory_order:plan.Dsu.Plan.memory_order
    ~backoff:plan.Dsu.Plan.backoff ?dist ~layout:plan.Dsu.Plan.layout
    ~policy:plan.Dsu.Plan.compaction ~domains ()

let sweep ?(config = default_config) ?progress () =
  let emit p = match progress with None -> () | Some f -> f p in
  List.concat_map
    (fun layout ->
      List.concat_map
        (fun policy ->
          List.concat_map
            (fun memory_order ->
              List.concat_map
                (fun backoff ->
                  List.concat_map
                    (fun dist ->
                      List.map
                        (fun domains ->
                          let p =
                            run_point ~config ~memory_order ~backoff ~dist
                              ~layout ~policy ~domains ()
                          in
                          emit p;
                          p)
                        config.domain_counts)
                    config.dists)
                config.backoffs)
            config.memory_orders)
        config.policies)
    config.layouts

let point_to_json (p : point) =
  J.Obj
    [
      ("layout", J.String (layout_to_string p.layout));
      ("policy", J.String (Policy.to_string p.policy));
      ("memory_order", J.String (Order.to_string p.memory_order));
      ("backoff", J.Bool p.backoff);
      ("dist", J.String (dist_to_string p.dist));
      ("domains", J.Int p.domains);
      ("n", J.Int p.n);
      ("total_ops", J.Int p.total_ops);
      ("seconds", J.Float p.seconds);
      ("mops_per_sec", J.Float p.mops_per_sec);
      ( "failures",
        J.List
          (List.map
             (fun (k, msg) ->
               J.Obj [ ("domain", J.Int k); ("error", J.String msg) ])
             p.failures) );
    ]

let to_json ?(config = default_config) points =
  J.Obj
    [
      ("schema", J.String "dsu-scalability/v2");
      ("n", J.Int config.n);
      ("unite_percent", J.Int config.unite_percent);
      ("seed", J.Int config.seed);
      ("recommended_domains", J.Int (Domain.recommended_domain_count ()));
      ("points", J.List (List.map point_to_json points));
    ]

let pp_table ppf points =
  let table =
    Table.create
      ~headers:
        [
          "layout"; "policy"; "order"; "backoff"; "dist"; "domains"; "Mops/s";
          "vs 1-dom"; "errs";
        ]
  in
  let key p = (p.layout, p.policy, p.memory_order, p.backoff, p.dist) in
  let base = Hashtbl.create 8 in
  List.iter
    (fun p -> if p.domains = 1 then Hashtbl.replace base (key p) p.mops_per_sec)
    points;
  List.iter
    (fun p ->
      let speedup =
        match Hashtbl.find_opt base (key p) with
        | Some b when b > 0. -> Table.cell_ratio (p.mops_per_sec /. b)
        | _ -> "-"
      in
      Table.add_row table
        [
          layout_to_string p.layout;
          Policy.to_string p.policy;
          Order.to_string p.memory_order;
          (if p.backoff then "on" else "off");
          dist_to_string p.dist;
          Table.cell_int p.domains;
          Table.cell_float p.mops_per_sec;
          speedup;
          (if p.failures = [] then "-" else Table.cell_int (List.length p.failures));
        ])
    points;
  Table.pp ppf table;
  List.iter
    (fun p ->
      List.iter
        (fun (k, msg) ->
          Format.fprintf ppf "@.worker failure: %s/%s/%s domain %d: %s"
            (layout_to_string p.layout) (Policy.to_string p.policy)
            (Order.to_string p.memory_order) k msg)
        p.failures)
    points
