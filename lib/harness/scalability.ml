module Policy = Dsu.Find_policy
module Rng = Repro_util.Rng
module Table = Repro_util.Table
module J = Repro_obs.Json

type layout = Flat | Padded | Boxed

let all_layouts = [ Flat; Padded; Boxed ]

let layout_to_string = function
  | Flat -> "flat"
  | Padded -> "flat-padded"
  | Boxed -> "boxed"

let layout_of_string = function
  | "flat" -> Some Flat
  | "flat-padded" | "padded" -> Some Padded
  | "boxed" -> Some Boxed
  | _ -> None

type point = {
  layout : layout;
  policy : Policy.t;
  domains : int;
  n : int;
  total_ops : int;
  seconds : float;
  mops_per_sec : float;
  failures : (int * string) list;
}

type config = {
  n : int;
  total_ops : int;
  unite_percent : int;
  seed : int;
  domain_counts : int list;
  policies : Policy.t list;
  layouts : layout list;
}

let default_config =
  {
    n = 1 lsl 16;
    total_ops = 400_000;
    unite_percent = 30;
    seed = 21;
    domain_counts = [ 1; 2; 4; 8 ];
    policies = [ Policy.Two_try_splitting; Policy.One_try_splitting ];
    layouts = [ Flat; Boxed ];
  }

(* Per-domain op streams are generated outside the timed section (the
   generator's RNG and list building must not pollute the measurement) and
   handed to the workers as contiguous arrays — see Workload.Op's array
   runners for why. *)
let gen_ops ~n ~unite_percent ~seed ~domains ~ops_per_domain =
  Array.init domains (fun k ->
      let rng = Rng.create (seed + (1000 * k)) in
      Array.init ops_per_domain (fun _ ->
          let x = Rng.int rng n and y = Rng.int rng n in
          if Rng.int rng 100 < unite_percent then Workload.Op.Unite (x, y)
          else Workload.Op.Same_set (x, y)))

(* Every worker body is wrapped so an exception in one domain is captured
   into its slot instead of escaping through [Domain.join]: re-raising
   mid-join would abandon the remaining joins, leaving live domains racing
   on a structure the caller believes quiesced.  All joins always complete;
   failures are reported per-domain afterwards. *)
let time_run ~domains ~(run : int -> unit) =
  let errors = Array.make domains None in
  let t0 = Unix.gettimeofday () in
  let handles =
    List.init domains (fun k ->
        Domain.spawn (fun () ->
            try run k
            with e -> errors.(k) <- Some (Printexc.to_string e)))
  in
  List.iter Domain.join handles;
  let seconds = Unix.gettimeofday () -. t0 in
  let failures =
    Array.to_list errors
    |> List.mapi (fun k e -> (k, e))
    |> List.filter_map (fun (k, e) -> Option.map (fun msg -> (k, msg)) e)
  in
  (seconds, failures)

let run_point ?(config = default_config) ~layout ~policy ~domains () =
  if domains < 1 then invalid_arg "Scalability.run_point: domains must be >= 1";
  let { n; total_ops; unite_percent; seed; _ } = config in
  let ops_per_domain = max 1 (total_ops / domains) in
  let ops = gen_ops ~n ~unite_percent ~seed ~domains ~ops_per_domain in
  let seconds, failures =
    match layout with
    | Flat ->
      let d = Dsu.Native.create ~policy ~seed n in
      time_run ~domains ~run:(fun k -> Workload.Op.run_native_array d ops.(k))
    | Padded ->
      let d = Dsu.Native.create ~padded:true ~policy ~seed n in
      time_run ~domains ~run:(fun k -> Workload.Op.run_native_array d ops.(k))
    | Boxed ->
      let d = Dsu.Boxed.create ~policy ~seed n in
      time_run ~domains ~run:(fun k -> Workload.Op.run_boxed_array d ops.(k))
  in
  let total = ops_per_domain * domains in
  {
    layout;
    policy;
    domains;
    n;
    total_ops = total;
    seconds;
    mops_per_sec = (float_of_int total /. seconds) /. 1e6;
    failures;
  }

let sweep ?(config = default_config) ?progress () =
  let emit p = match progress with None -> () | Some f -> f p in
  List.concat_map
    (fun layout ->
      List.concat_map
        (fun policy ->
          List.map
            (fun domains ->
              let p = run_point ~config ~layout ~policy ~domains () in
              emit p;
              p)
            config.domain_counts)
        config.policies)
    config.layouts

let point_to_json (p : point) =
  J.Obj
    [
      ("layout", J.String (layout_to_string p.layout));
      ("policy", J.String (Policy.to_string p.policy));
      ("domains", J.Int p.domains);
      ("n", J.Int p.n);
      ("total_ops", J.Int p.total_ops);
      ("seconds", J.Float p.seconds);
      ("mops_per_sec", J.Float p.mops_per_sec);
      ( "failures",
        J.List
          (List.map
             (fun (k, msg) ->
               J.Obj [ ("domain", J.Int k); ("error", J.String msg) ])
             p.failures) );
    ]

let to_json ?(config = default_config) points =
  J.Obj
    [
      ("schema", J.String "dsu-scalability/v1");
      ("n", J.Int config.n);
      ("unite_percent", J.Int config.unite_percent);
      ("seed", J.Int config.seed);
      ("recommended_domains", J.Int (Domain.recommended_domain_count ()));
      ("points", J.List (List.map point_to_json points));
    ]

let pp_table ppf points =
  let table =
    Table.create
      ~headers:[ "layout"; "policy"; "domains"; "Mops/s"; "vs 1-dom"; "errs" ]
  in
  let base = Hashtbl.create 8 in
  List.iter
    (fun p -> if p.domains = 1 then Hashtbl.replace base (p.layout, p.policy) p.mops_per_sec)
    points;
  List.iter
    (fun p ->
      let speedup =
        match Hashtbl.find_opt base (p.layout, p.policy) with
        | Some b when b > 0. -> Table.cell_ratio (p.mops_per_sec /. b)
        | _ -> "-"
      in
      Table.add_row table
        [
          layout_to_string p.layout;
          Policy.to_string p.policy;
          Table.cell_int p.domains;
          Table.cell_float p.mops_per_sec;
          speedup;
          (if p.failures = [] then "-" else Table.cell_int (List.length p.failures));
        ])
    points;
  Table.pp ppf table;
  List.iter
    (fun p ->
      List.iter
        (fun (k, msg) ->
          Format.fprintf ppf "@.worker failure: %s/%s domain %d: %s"
            (layout_to_string p.layout) (Policy.to_string p.policy) k msg)
        p.failures)
    points
