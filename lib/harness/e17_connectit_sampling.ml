(** E17 — follow-on context (not a paper claim): the calibration notes for
    this reproduction flag the paper as "the basis for ConnectIt/GBBS
    follow-on work".  ConnectIt composes a sampling phase with a finish
    phase around exactly this concurrent union-find; we reproduce the
    pattern and measure how much DSU work k-out sampling saves on graphs
    with a giant component. *)

module Table = Repro_util.Table

let run ppf =
  let table =
    Table.create
      ~headers:
        [ "graph"; "strategy"; "edges skipped"; "dsu work"; "work vs direct"; "correct" ]
  in
  let rng = Repro_util.Rng.create 321 in
  let instances =
    [
      ("ER n=16k m=64k (giant)", Graphs.Generators.erdos_renyi ~rng ~n:16_384 ~m:65_536 ());
      ("ER n=16k m=16k (critical)", Graphs.Generators.erdos_renyi ~rng ~n:16_384 ~m:16_384 ());
      ("grid 128x128", Graphs.Generators.grid2d ~rows:128 ~cols:128);
      ("rmat scale 13", Graphs.Generators.rmat ~rng ~scale:13 ~edge_factor:8 ());
    ]
  in
  List.iter
    (fun (name, g) ->
      let reference = Graphs.Components.sequential g in
      let direct_labels, direct =
        Graphs.Connectit.components ~domains:4 ~seed:7 ~strategy:Graphs.Connectit.Direct g
      in
      let sampled_labels, sampled =
        Graphs.Connectit.components ~domains:4 ~seed:7
          ~strategy:(Graphs.Connectit.Sampled 2) g
      in
      List.iter
        (fun (label, labels, (stats : Graphs.Connectit.stats)) ->
          Table.add_row table
            [
              name;
              label;
              Printf.sprintf "%d/%d" stats.Graphs.Connectit.edges_skipped
                stats.Graphs.Connectit.edges_total;
              Table.cell_int stats.Graphs.Connectit.dsu_work;
              Table.cell_ratio
                (float_of_int stats.Graphs.Connectit.dsu_work
                /. float_of_int direct.Graphs.Connectit.dsu_work);
              (if labels = reference then "yes" else "NO");
            ])
        [ ("direct", direct_labels, direct); ("k-out k=2", sampled_labels, sampled) ];
      Table.add_rule table)
    instances;
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: on graphs with a giant component the sampling \
     strategy skips most finish-phase edges with two array reads each, \
     cutting total DSU work well below the direct strategy while producing \
     identical components; near the connectivity threshold or on grids the \
     saving shrinks (smaller giant class) but correctness never does.@."

let experiment =
  Experiment.make ~id:"e17" ~title:"ConnectIt-style sampling (follow-on)"
    ~claim:
      "context: the paper's algorithm is the engine of ConnectIt-style \
       frameworks, where a k-out sampling phase plus snapshot filtering \
       skips most of the work of the finish phase"
    run
