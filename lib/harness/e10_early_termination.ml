(** E10 — Section 6: interleaving the two finds and always stepping from the
    smaller-id node ("early termination", Algorithms 6 and 7) keeps the
    Section 4/5 bounds and can only shorten executions — one of the two
    traversals stops as soon as the smaller current node is a root. *)

module Table = Repro_util.Table

let work ~early ~policy ~n ~p ~seed =
  let rng = Repro_util.Rng.create seed in
  let ops_list =
    Workload.Random_mix.spanning_unites ~rng ~n
    @ Workload.Random_mix.mixed ~rng ~n ~m:(2 * n) ~unite_fraction:0.3
  in
  let ops = Workload.Op.round_robin ops_list ~p in
  let r = Measure.run_sim ~policy ~early ~n ~seed ~ops () in
  Measure.work_per_op r

let run ppf =
  let n = 1 lsl 12 in
  let table =
    Table.create ~headers:[ "p"; "policy"; "plain work/op"; "early work/op"; "early/plain" ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun policy ->
          let plain = work ~early:false ~policy ~n ~p ~seed:(5 * p) in
          let early = work ~early:true ~policy ~n ~p ~seed:(5 * p) in
          Table.add_row table
            [
              Table.cell_int p;
              Dsu.Find_policy.to_string policy;
              Table.cell_float plain;
              Table.cell_float early;
              Table.cell_ratio (early /. plain);
            ])
        Dsu.Find_policy.all;
      Table.add_rule table)
    [ 1; 4; 16 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: the asymptotic bounds are unchanged (Section 6); for \
     the splitting variants early termination trims a constant fraction \
     (walking only the smaller-id path until it roots), while for \
     no-compaction the saving is washed out by its extra per-hop root test. \
     Compression's early rows equal no-compaction's: full compression needs \
     a complete find path, so the interleaved walk degrades to plain hops \
     (see Dsu_algorithm.early_step) — pair early termination with \
     splitting, as the paper does.@."

let experiment =
  Experiment.make ~id:"e10" ~title:"early-termination variant"
    ~claim:
      "Section 6: SameSet/Unite with interleaved finds and early termination \
       keep the same bounds with a smaller constant"
    run
