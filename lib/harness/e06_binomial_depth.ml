(** E6 — Lemma 5.3: a suitable sequence of k-1 Unites builds a k-node tree
    of average node depth >= (1/4) lg k even though every find does
    splitting.  We execute the binomial-style schedule (unite in pairs
    through designated representatives) and measure the average depth of the
    {e actual} tree (post-compaction parent pointers, not the union
    forest). *)

module Table = Repro_util.Table

let avg_depth_of_build ~policy ~k ~seed =
  let d = Dsu.Native.create ~policy ~seed k in
  Workload.Op.run_native d (Workload.Binomial.schedule ~base:0 ~k);
  let f = Forest.of_parents (Dsu.Native.parents_snapshot d) in
  Forest.avg_depth f

let run ppf =
  let table =
    Table.create
      ~headers:
        [ "k"; "policy"; "avg depth"; "(lg k)/4"; "ratio"; "claim holds" ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun policy ->
          let trials = 5 in
          let depths =
            Array.init trials (fun t -> avg_depth_of_build ~policy ~k ~seed:(t + k))
          in
          let mean = Repro_util.Stats.mean depths in
          let target = float_of_int (Repro_util.Alpha.floor_log2 k) /. 4. in
          Table.add_row table
            [
              Table.cell_int k;
              Dsu.Find_policy.to_string policy;
              Table.cell_float mean;
              Table.cell_float target;
              Table.cell_float (mean /. target);
              (if mean >= target then "yes" else "NO");
            ])
        [ Dsu.Find_policy.One_try_splitting; Dsu.Find_policy.Two_try_splitting ];
      Table.add_rule table)
    [ 1 lsl 4; 1 lsl 6; 1 lsl 8; 1 lsl 10; 1 lsl 12 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: average depth grows with lg k and stays at or above \
     (lg k)/4 — splitting cannot flatten the binomial construction, which is \
     what makes the lower bound of Theorem 5.4 work.@."

let experiment =
  Experiment.make ~id:"e6" ~title:"binomial construction defeats splitting"
    ~claim:
      "Lemma 5.3: k-1 Unites whose finds do one- or two-try splitting can \
       still build a k-node tree of average depth >= (1/4) lg k"
    run
