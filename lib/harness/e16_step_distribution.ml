(** E16 — the distribution behind Theorem 4.3's "with high probability": the
    per-operation step costs concentrate tightly, with an exponentially
    decaying tail (the Chernoff bound of Lemma 4.2 at work).  Rendered as
    histograms — the figure a systems-paper version of this work would
    plot. *)

module Table = Repro_util.Table
module Histogram = Repro_util.Histogram

let costs ~policy ~n ~p ~seed =
  let rng = Repro_util.Rng.create seed in
  let ops_list =
    Workload.Random_mix.spanning_unites ~rng ~n
    @ Workload.Adversarial.all_same_set ~rng ~n ~m:n
  in
  let ops = Workload.Op.round_robin ops_list ~p in
  let r = Measure.run_sim ~policy ~n ~seed ~ops () in
  r.Measure.op_costs

let run ppf =
  let n = 1 lsl 12 in
  let p = 8 in
  List.iter
    (fun policy ->
      let costs = costs ~policy ~n ~p ~seed:123 in
      let h = Histogram.create () in
      Array.iter (fun c -> Histogram.add h c) costs;
      Format.fprintf ppf "per-operation steps, %s (n=%d, p=%d, %d ops):@."
        (Dsu.Find_policy.to_string policy)
        n p (Array.length costs);
      Format.fprintf ppf "%a@." Histogram.pp h)
    [ Dsu.Find_policy.No_compaction; Dsu.Find_policy.Two_try_splitting ];
  (* Tail decay table: fraction of operations above k * median. *)
  let table =
    Table.create ~headers:[ "policy"; "median"; "> 2x median"; "> 3x median"; "max" ]
  in
  List.iter
    (fun policy ->
      let costs = costs ~policy ~n ~p ~seed:123 in
      let sorted = Array.map float_of_int costs in
      let s = Repro_util.Stats.summarize sorted in
      let frac k =
        let cutoff = k *. s.Repro_util.Stats.median in
        let above =
          Array.fold_left
            (fun acc c -> if float_of_int c > cutoff then acc + 1 else acc)
            0 costs
        in
        float_of_int above /. float_of_int (Array.length costs)
      in
      Table.add_row table
        [
          Dsu.Find_policy.to_string policy;
          Table.cell_float ~decimals:0 s.Repro_util.Stats.median;
          Printf.sprintf "%.3f%%" (100. *. frac 2.);
          Printf.sprintf "%.3f%%" (100. *. frac 3.);
          Table.cell_float ~decimals:0 s.Repro_util.Stats.max;
        ])
    Dsu.Find_policy.all;
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: unimodal histograms with short exponential tails; \
     only a fraction of a percent of operations exceed 3x the median, and \
     the max stays within a small multiple of lg n = %d — the \
     concentration behind the w.h.p. statements of Section 4.@."
    (Repro_util.Alpha.floor_log2 n)

let experiment =
  Experiment.make ~id:"e16" ~title:"per-operation step distribution"
    ~claim:
      "Theorem 4.3 / Lemma 4.2: per-operation costs concentrate with \
       exponentially decaying tails (the 'with high probability' is visible \
       in the histogram)"
    run
