(** E1 — Theorem 4.3: with any Find variant, every operation does O(log n)
    steps w.h.p., so total work is O(m log n).  Measured here for Find
    without compaction (the theorem's weakest case): per-operation
    shared-memory step counts under a random schedule, against lg n. *)

module Table = Repro_util.Table
module Stats = Repro_util.Stats

let run ppf =
  let table =
    Table.create
      ~headers:
        [ "n"; "p"; "ops"; "mean steps/op"; "p99"; "max"; "max / lg n" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let rng = Repro_util.Rng.create (97 * n) in
          let ops_list =
            Workload.Random_mix.spanning_unites ~rng ~n
            @ Workload.Adversarial.all_same_set ~rng ~n ~m:n
          in
          let ops = Workload.Op.round_robin ops_list ~p in
          let r = Measure.run_sim ~policy:Dsu.Find_policy.No_compaction ~n ~seed:n ~ops () in
          let costs = Array.map float_of_int r.Measure.op_costs in
          let s = Stats.summarize costs in
          let lg = float_of_int (Repro_util.Alpha.floor_log2 n) in
          Table.add_row table
            [
              Table.cell_int n;
              Table.cell_int p;
              Table.cell_int (Array.length costs);
              Table.cell_float s.Stats.mean;
              Table.cell_float s.Stats.p99;
              Table.cell_float ~decimals:0 s.Stats.max;
              Table.cell_float (s.Stats.max /. lg);
            ])
        [ 1; 4; 16 ])
    [ 1 lsl 10; 1 lsl 12; 1 lsl 14 ];
  Table.pp ppf table;
  Format.fprintf ppf
    "@.expected shape: max/op stays within a small constant times lg n as n \
     grows 16x and p grows 16x.@."

let experiment =
  Experiment.make ~id:"e1" ~title:"per-operation step bound, no compaction"
    ~claim:
      "Theorem 4.3: every operation takes O(log n) steps w.h.p.; total work \
       O(m log n)"
    run
