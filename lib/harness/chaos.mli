(** The chaos harness: drive the native concurrent DSU under injected
    faults — crash-stopped domains, stall storms, adversarial yields — and
    then prove the structure and the surviving domains' answers are still
    correct.

    Each {b scenario} runs one (layout, policy) pair: [domains] OCaml
    domains execute pre-generated random [Unite]/[SameSet] streams against
    one shared structure while a {!Repro_fault.Inject} plan is armed.  The
    first [crash_domains] slots carry a crash-stop rule (they abandon an
    operation mid-flight, wherever the countdown lands them — possibly
    between the two reads of splitting or on either side of a CAS); every
    slot carries probabilistic stall and yield rules.  Survivors must
    finish their full streams unassisted — that is Theorem 3.4's
    wait-freedom claim under the strongest adversary it tolerates.

    At quiescence the harness disarms injection and audits the run:

    - {b forest}: {!Repro_fault.Forest_check} on the parent snapshot
      (range, priority order, acyclicity);
    - {b find-idempotence}: [find] agrees with the snapshot's root chains
      and is stable when repeated;
    - {b completed-unites} / {b sameset-true}: every completed [Unite] and
      every [SameSet] that answered [true] is connected in the final
      partition;
    - {b sameset-false}: a timestamp sweep against a sequential oracle —
      no [SameSet] answered [false] after unites that fully completed
      before it started had already connected its arguments;
    - {b partition-sandwich}: the final partition is refined below by the
      completed unites and above by completed plus crashed-in-flight
      unites (compaction never changes the partition, so an interrupted
      [find] cannot widen it);
    - {b survivors}: every non-crashed domain completed every operation,
      within a mean own-hops-per-op budget of [16 * (log2 n + 2)]
      (own traversal work, counted at the [Find_hop] site).

    Results are reported per scenario as named pass/fail {!check}s, a
    human summary ({!pp}) and the machine-readable ["dsu-chaos/v1"] JSON
    ({!to_json}); fault counters also land in the {!Repro_obs.Metrics}
    default registry.  CLI entry point: [dsu_workload --chaos]; see
    docs/ROBUSTNESS.md. *)

type config = {
  n : int;  (** number of nodes *)
  ops_per_domain : int;
  domains : int;
  crash_domains : int;  (** slots [0 .. crash_domains-1] get a crash rule *)
  crash_after : int;  (** base site-hit countdown before a crash fires *)
  stall_prob : float;  (** per-site-hit stall probability, every slot *)
  stall_len : int;  (** stall length in [cpu_relax] iterations *)
  unite_percent : int;  (** percentage of [Unite] ops, rest [SameSet] *)
  seed : int;  (** workload + structure seed *)
  fault_seed : int;  (** injection-plan seed ({!Repro_fault.Inject.plan}) *)
  policies : Dsu.Find_policy.t list;
  layouts : Scalability.layout list;
  memory_order : Dsu.Memory_order.t;
      (** parent-load ordering mode for every scenario's structure
          ([Flat]/[Padded] layouts; [Boxed] is always seq-cst), so the
          chaos audit can be pointed at the tuned or the fenced path *)
  validate : bool;  (** run the post-quiescence audit (default) *)
}

val default_config : config
(** n = 4096, 20k ops per domain, 8 domains with 2 crashing, 1% stalls of
    64 relax-iterations, 40% unites, two-try splitting on the flat
    layout under the default (relaxed-reads) memory order, validation
    on. *)

type check = {
  check_name : string;
  passed : bool;
  detail : string;  (** empty when passed; first counterexample when not *)
}

type scenario = {
  layout : Scalability.layout;
  policy : Dsu.Find_policy.t;
  crashed : (int * Repro_fault.Site.t) list;
      (** slots whose crash rule fired, with the site it fired at *)
  completed : int array;  (** operations completed, per slot *)
  failures : (int * string) list;
      (** unexpected worker exceptions (never {!Repro_fault.Inject.Crashed}) *)
  hops : int array;  (** own [Find_hop] count, per slot *)
  fault_totals : Repro_fault.Inject.totals;
  forest : Repro_fault.Forest_check.report option;  (** when validating *)
  checks : check list;  (** empty when [validate = false] *)
  seconds : float;
}

val scenario_ok : scenario -> bool
(** No unexpected worker exceptions and every check passed. *)

val run_scenario :
  ?config:config ->
  layout:Scalability.layout ->
  policy:Dsu.Find_policy.t ->
  unit ->
  scenario
(** One armed run plus its audit.  Arms the global injection switch for
    the duration — do not run concurrently with other DSU work.
    @raise Invalid_argument on nonsensical config ([domains < 1],
    [crash_domains] outside [0..domains], [n < 2]). *)

val run_all : ?config:config -> ?progress:(scenario -> unit) -> unit -> scenario list
(** The [layouts × policies] cross product; [progress] after each. *)

(** {2 Crash → snapshot → repair → resume}

    {!run_recovery_scenario} is the full recovery drill: run phase 1 exactly
    like {!run_scenario} (crashes armed), then at quiescence

    + snapshot the crashed structure ({!Repro_recover.Snapshot}) and prove
      both codecs round-trip it ([codec-roundtrip]);
    + run {!Repro_recover.Repair} over it — Theorem 3.4 means a crash never
      corrupts the forest, so the repair must apply {e zero} fixes
      ([repair-clean]) and the repaired partition must refine the
      crash-time one ([repair-refines]);
    + restore into a fresh structure and resume each crashed slot's stream
      from the operation it died inside (re-running it is safe — [unite] is
      idempotent, queries read-only), stall/yield noise still armed;
    + re-run the full audit on the resumed structure and require every slot
      to have completed every operation ([resumed-complete]).

    Metrics are snapshotted between the phases: [phase1_counters] is the
    crash-time registry state and [resume_counters] only the delta the
    resumed run added, so a report over the resumed phase never
    double-counts pre-crash operations. *)

type recovery = {
  crash_snapshot : Repro_recover.Snapshot.t;
      (** the crash-time snapshot itself, for archiving *)
  snapshot_crc : int;  (** CRC-32 of the crash-time snapshot *)
  fixes : Repro_recover.Repair.fix list;  (** must be empty *)
  resumed_slots : int list;
  resumed_ops : int;  (** operations re-run or newly run in phase 2 *)
  resumed_forest : Repro_fault.Forest_check.report option;
  recovery_checks : check list;
  resume_seconds : float;
  phase1_counters : (string * int) list;  (** metrics registry at crash time *)
  resume_counters : (string * int) list;  (** what the resume alone added *)
}

val recovery_ok : recovery -> bool

val run_recovery_scenario :
  ?config:config ->
  layout:Scalability.layout ->
  policy:Dsu.Find_policy.t ->
  unit ->
  scenario * recovery
(** The phase-1 scenario (with its ordinary audit) plus the recovery
    record.  Arms the global injection switch for the duration, like
    {!run_scenario}. *)

val run_recovery_all :
  ?config:config ->
  ?progress:(scenario * recovery -> unit) ->
  unit ->
  (scenario * recovery) list

val hop_budget : int -> float
(** [16 * (log2 n + 2)] — the mean own-hops-per-op ceiling asserted for
    survivors. *)

val scenario_to_json : scenario -> Repro_obs.Json.t
val to_json : ?config:config -> scenario list -> Repro_obs.Json.t
(** The ["dsu-chaos/v1"] document: config echo plus one object per
    scenario. *)

val recovery_to_json : recovery -> Repro_obs.Json.t

val recovery_report_to_json :
  ?config:config -> (scenario * recovery) list -> Repro_obs.Json.t
(** The ["dsu-chaos/v1"] document with a ["recovery"] object inside each
    scenario. *)

val pp_scenario : Format.formatter -> scenario -> unit
val pp : Format.formatter -> scenario list -> unit
val pp_recovery : Format.formatter -> recovery -> unit
val pp_recovery_report : Format.formatter -> (scenario * recovery) list -> unit

(** {2 Durable drill: crash mid-fuzzy-snapshot and mid-group-commit}

    {!run_durable_scenario} is the hardest drill: mutators drive the
    structure (noise armed, no mutator crashes) while a write-ahead log
    ({!Repro_durable.Wal}) records every link and a snapshotter domain
    takes fuzzy epoch snapshots ({!Repro_durable.Fuzzy}) concurrently.
    Two extra fault slots crash the durability machinery itself:

    - the {b snapshotter} (slot [domains]) crashes halfway through its
      second fuzzy scan ([Snapshot_read] hit-count rule — the first scan
      completes and is written, the second dies mid-scan);
    - the {b committer} (slot [domains + 1]) crashes on its fourth group
      commit, between the two halves of a record write
      ([Wal_commit_mid]), leaving a physically torn WAL tail.

    At quiescence the drill audits phase 1 like {!run_scenario}, then
    checks the durability story end to end: the crashes fired where
    planned; at least one fuzzy snapshot survived; reconciliation was a
    no-op for the single-pointer layouts (rank/packed scans may race a
    promotion, so there only refinement is asserted); each reconciled cut
    refines both its raw scan and the final partition; the WAL tail is
    torn and truncates cleanly; every valid record below a capture's
    epoch is already connected in that cut (the epoch-cut guarantee);
    recovery (newest snapshot + tail replay, {!Repro_durable.Recovery})
    succeeds, contains every acknowledged record, and refines the final
    partition; and the restored structure absorbs a full re-run of the
    workload, re-audited against the sequential oracle. *)

type durable = {
  d_kind : Repro_recover.Snapshot.kind;
  d_policy : Dsu.Find_policy.t;
  d_snapshots : (string * Repro_durable.Fuzzy.capture) list;
      (** snapshots written before the crash, oldest first *)
  d_snap_crash : Repro_fault.Site.t option;
  d_commit_crash : (Repro_fault.Site.t * int) option;
  d_wal_stats : Repro_durable.Wal.writer_stats;
  d_tail_records : int;  (** valid records decoded from the WAL file *)
  d_truncated_at : int option;  (** torn-tail byte offset, if torn *)
  d_recovery : Repro_durable.Recovery.stats option;
  d_fault_totals : Repro_fault.Inject.totals;
  d_checks : check list;
  d_seconds : float;
  d_resume_seconds : float;
}

val durable_ok : durable -> bool

val run_durable_scenario :
  ?config:config ->
  ?dir:string ->
  kind:Repro_recover.Snapshot.kind ->
  policy:Dsu.Find_policy.t ->
  unit ->
  durable
(** One durable drill over the given snapshot kind.  [dir] (default: a
    fresh temp directory) receives the WAL and the snapshot files and is
    left in place for inspection.  Arms the global injection switch for
    the duration, like {!run_scenario}.  [config]'s [crash_domains] and
    [layouts] are ignored — the drill crashes the durability machinery,
    not the mutators, and runs over snapshot kinds. *)

val all_kinds : Repro_recover.Snapshot.kind list
(** All five snapshot kinds, the default drill coverage. *)

val run_durable_all :
  ?config:config ->
  ?kinds:Repro_recover.Snapshot.kind list ->
  ?progress:(durable -> unit) ->
  unit ->
  durable list
(** The [kinds × policies] cross product; [progress] after each. *)

val durable_to_json : durable -> Repro_obs.Json.t

val durable_report_to_json :
  ?config:config -> durable list -> Repro_obs.Json.t
(** The ["dsu-chaos-durable/v1"] document: config echo plus one object
    per drill. *)

val pp_durable : Format.formatter -> durable -> unit
val pp_durable_report : Format.formatter -> durable list -> unit
