(** Structural validation of a union forest snapshot.

    Operates on a quiescent parent array ([parents.(i)] is node [i]'s
    parent, roots are self-parented) plus the node priority order, and
    checks the invariants that Lemma 3.1 maintains through {e every}
    reachable state of the concurrent algorithm — including states left by
    processes that crashed mid-operation:

    - {b range}: every parent is a valid node index;
    - {b priority order}: every non-root's parent is strictly later in the
      random linking order (ties broken by node index, matching the
      algorithm's [less]).  Links only ever install an order-increasing
      edge and compaction only replaces a parent by a proper ancestor, so
      no interleaving — crashed or not — may violate this;
    - {b acyclicity}: parent chains reach a root (implied by the order
      invariant, but checked independently so a corrupted snapshot with a
      broken priority table still reports the cycle itself).

    The checker never follows more than [n] hops from any node, so it
    terminates on arbitrary (even cyclic) input. *)

type violation =
  | Out_of_range of { node : int; parent : int }
  | Order of { node : int; parent : int }
      (** [parent] does not follow [node] in the linking order. *)
  | Cycle of int list
      (** A parent-pointer cycle, listed in traversal order. *)

type report = {
  nodes : int;
  roots : int;
  max_depth : int;  (** longest root path found; [-1] when cyclic *)
  violations : violation list;
}

val check : ?prio:(int -> int) -> int array -> report
(** [check ~prio parents].  [prio] defaults to the identity (node index =
    priority), which matches a forest built with sequential ids. *)

val ok : report -> bool

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> report -> unit

val to_json : report -> Repro_obs.Json.t
(** Counts plus the first few violations, for the chaos report. *)
