module J = Repro_obs.Json

type violation =
  | Out_of_range of { node : int; parent : int }
  | Order of { node : int; parent : int }
  | Cycle of int list

type report = {
  nodes : int;
  roots : int;
  max_depth : int;
  violations : violation list;
}

let check ?(prio = fun i -> i) parents =
  let n = Array.length parents in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let in_range p = p >= 0 && p < n in
  let roots = ref 0 in
  for i = 0 to n - 1 do
    let p = parents.(i) in
    if not (in_range p) then add (Out_of_range { node = i; parent = p })
    else if p = i then incr roots
    else begin
      (* The algorithm's [less]: priority first, node index on ties. *)
      let pi = prio i and pp = prio p in
      if not (pi < pp || (pi = pp && i < p)) then add (Order { node = i; parent = p })
    end
  done;
  (* Depth / cycle detection with memoization: [depth.(i)] is the hop count
     to a root, [-1] = unvisited, [-2] = on the current path (gray), [-3] =
     known to lead out of range or into a cycle. *)
  let depth = Array.make n (-1) in
  let cyclic = ref false in
  let max_depth = ref 0 in
  for start = 0 to n - 1 do
    if depth.(start) = -1 then begin
      let path = ref [] in
      let rec walk u =
        if not (in_range u) then -3
        else
          match depth.(u) with
          | -1 ->
            let p = parents.(u) in
            if p = u then begin
              depth.(u) <- 0;
              0
            end
            else begin
              depth.(u) <- -2;
              path := u :: !path;
              let d = walk p in
              let d = if d < 0 then d else d + 1 in
              depth.(u) <- (if d < 0 then -3 else d);
              d
            end
          | -2 ->
            (* Hit a gray node: the tail of [path] from [u] is a cycle. *)
            cyclic := true;
            let rec cycle_from acc = function
              | [] -> acc
              | v :: rest -> if v = u then v :: acc else cycle_from (v :: acc) rest
            in
            add (Cycle (cycle_from [] !path));
            -3
          | d -> d
      in
      let d = walk start in
      if d > !max_depth then max_depth := d
    end
  done;
  {
    nodes = n;
    roots = !roots;
    max_depth = (if !cyclic then -1 else !max_depth);
    violations = List.rev !violations;
  }

let ok r = r.violations = []

let pp_violation ppf = function
  | Out_of_range { node; parent } ->
    Format.fprintf ppf "parent out of range: parent(%d) = %d" node parent
  | Order { node; parent } ->
    Format.fprintf ppf "order violation: parent(%d) = %d does not follow %d" node
      parent node
  | Cycle nodes ->
    Format.fprintf ppf "cycle: %s"
      (String.concat " -> " (List.map string_of_int nodes))

let pp ppf r =
  Format.fprintf ppf "forest: %d nodes, %d roots, max depth %d, %d violation(s)"
    r.nodes r.roots r.max_depth (List.length r.violations);
  List.iteri
    (fun i v -> if i < 5 then Format.fprintf ppf "@.  %a" pp_violation v)
    r.violations

let violation_to_json v = J.String (Format.asprintf "%a" pp_violation v)

let to_json r =
  J.Obj
    [
      ("nodes", J.Int r.nodes);
      ("roots", J.Int r.roots);
      ("max_depth", J.Int r.max_depth);
      ("violations", J.Int (List.length r.violations));
      ( "first_violations",
        J.List (List.filteri (fun i _ -> i < 5) r.violations |> List.map violation_to_json) );
    ]
