(** The fault-injection engine: per-domain probabilistic yields, bounded
    stalls, and crash-stop, fired from labeled {!Site}s compiled into the
    DSU hot paths.

    {2 Cost model}

    Injection follows the zero-cost-when-off pattern of
    {!Repro_obs.Switch}: every compiled-in site is guarded by a single
    atomic load of {!armed} and a predictable branch, and the instrumented
    loop bodies are only selected at all while some instrumentation is
    armed, so a production run pays nothing.  While armed, an
    {e unenrolled} domain (any domain that never called {!enroll}) pays one
    domain-local-storage read per site and is otherwise unaffected —
    faults only ever fire on domains that opted in.

    {2 Fault model}

    A {!plan} gives each enrolled domain (identified by a small [slot]
    index chosen by the harness) a list of {!rule}s.  On each site hit,
    each rule whose site filter matches first consumes its [after]
    countdown, then fires with probability [prob] (drawn from a
    deterministic per-slot stream seeded by [plan.seed], so a scenario
    replays exactly given the same thread interleaving):

    - [Yield] — surrender the processor ([Domain.cpu_relax]); models an
      adversarial preemption at the site.
    - [Stall k] — spin for [k] relax iterations; models a bounded delay
      (page fault, interrupt) parked {e inside} the protocol.
    - [Crash] — raise {!Crashed}: the domain abandons its current
      operation mid-flight, leaving whatever shared-memory writes it
      already performed.  This is crash-stop, the strongest adversary
      Theorem 3.4's wait-freedom claim tolerates; the harness catches the
      exception and halts the worker.

    Counters for every fired fault are kept internally (readable via
    {!totals} even with telemetry disarmed) and mirrored into the
    {!Repro_obs.Metrics} default registry as [fault_site_hits_total],
    [fault_yields_total], [fault_stalls_total] and [fault_crashes_total]. *)

exception Crashed of Site.t * int
(** [Crashed (site, slot)]: the crash-stop fault fired on the domain
    enrolled as [slot] while at [site]. *)

type action = Yield | Stall of int | Crash

type rule = {
  sites : Site.t list;  (** sites the rule applies to; [[]] means all *)
  prob : float;  (** per-hit firing probability once [after] is consumed *)
  after : int;  (** matching hits to skip before the rule becomes eligible *)
  action : action;
}

val rule : ?sites:Site.t list -> ?prob:float -> ?after:int -> action -> rule
(** Defaults: all sites, probability [1.0], no skip. *)

type plan = {
  seed : int;  (** base seed; slot [k] draws from stream [seed ⊕ k] *)
  rules_for : int -> rule list;  (** rules for the domain enrolled as slot *)
}

val armed : bool Atomic.t
(** The single switch every compiled-in site tests first.  Arm via
    {!arm}/{!disarm}, never by writing it directly. *)

val arm : plan -> unit
(** Install [plan], zero the counters, and arm all sites.  Enrollments
    from a previous plan are invalidated. *)

val disarm : unit -> unit
(** Disarm all sites and invalidate every enrollment.  Counters keep
    their values until the next {!arm} so post-run reports can read them. *)

val enroll : slot:int -> unit
(** Opt the calling domain into the current plan as [slot].  No-op when
    disarmed.  @raise Invalid_argument if [slot < 0]. *)

val hit : Site.t -> unit
(** The hook compiled into the hot paths.  Call only under an
    [Atomic.get armed] guard.  May raise {!Crashed}. *)

val my_hops : unit -> int
(** [Find_hop] hits recorded for the calling domain under its current
    enrollment — the domain's own traversal work, the quantity bounded by
    wait-freedom (Lemma 3.3).  [0] if not enrolled. *)

type totals = { hits : int; yields : int; stalls : int; crashes : int }

val totals : unit -> totals
(** Process-wide fault counts since the last {!arm} (exact once all
    enrolled domains have joined). *)
