type t =
  | Find_hop
  | Split_read_gap
  | Split_cas_pre
  | Split_cas_post
  | Link_cas_pre
  | Link_cas_post
  | Make_set_publish
  | Chunk_publish_pre
  | Chunk_publish_post
  | Rank_read
  | Snapshot_read
  | Wal_commit_pre
  | Wal_commit_mid
  | Wal_commit_post
  | Queue_enq_cas
  | Queue_deq_cas
  | Link_cas
  | Split_cas

let all =
  [
    Find_hop;
    Split_read_gap;
    Split_cas_pre;
    Split_cas_post;
    Link_cas_pre;
    Link_cas_post;
    Make_set_publish;
    Chunk_publish_pre;
    Chunk_publish_post;
    Rank_read;
    Snapshot_read;
    Wal_commit_pre;
    Wal_commit_mid;
    Wal_commit_post;
    Queue_enq_cas;
    Queue_deq_cas;
    Link_cas;
    Split_cas;
  ]

let to_string = function
  | Find_hop -> "find-hop"
  | Split_read_gap -> "split-read-gap"
  | Split_cas_pre -> "split-cas-pre"
  | Split_cas_post -> "split-cas-post"
  | Link_cas_pre -> "link-cas-pre"
  | Link_cas_post -> "link-cas-post"
  | Make_set_publish -> "make-set-publish"
  | Chunk_publish_pre -> "chunk-publish-pre"
  | Chunk_publish_post -> "chunk-publish-post"
  | Rank_read -> "rank-read"
  | Snapshot_read -> "snapshot-read"
  | Wal_commit_pre -> "wal-commit-pre"
  | Wal_commit_mid -> "wal-commit-mid"
  | Wal_commit_post -> "wal-commit-post"
  | Queue_enq_cas -> "queue-enq-cas"
  | Queue_deq_cas -> "queue-deq-cas"
  | Link_cas -> "link-cas"
  | Split_cas -> "split-cas"

let of_string = function
  | "find-hop" -> Some Find_hop
  | "split-read-gap" -> Some Split_read_gap
  | "split-cas-pre" -> Some Split_cas_pre
  | "split-cas-post" -> Some Split_cas_post
  | "link-cas-pre" -> Some Link_cas_pre
  | "link-cas-post" -> Some Link_cas_post
  | "make-set-publish" -> Some Make_set_publish
  | "chunk-publish-pre" -> Some Chunk_publish_pre
  | "chunk-publish-post" -> Some Chunk_publish_post
  | "rank-read" -> Some Rank_read
  | "snapshot-read" -> Some Snapshot_read
  | "wal-commit-pre" -> Some Wal_commit_pre
  | "wal-commit-mid" -> Some Wal_commit_mid
  | "wal-commit-post" -> Some Wal_commit_post
  | "queue-enq-cas" -> Some Queue_enq_cas
  | "queue-deq-cas" -> Some Queue_deq_cas
  | "link-cas" -> Some Link_cas
  | "split-cas" -> Some Split_cas
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let cas_sites = [ Split_cas_pre; Split_cas_post; Link_cas_pre; Link_cas_post ]
