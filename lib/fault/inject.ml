module Rng = Repro_util.Rng
module M = Repro_obs.Metrics

exception Crashed of Site.t * int

type action = Yield | Stall of int | Crash

type rule = { sites : Site.t list; prob : float; after : int; action : action }

let rule ?(sites = []) ?(prob = 1.0) ?(after = 0) action =
  if not (prob >= 0.) then invalid_arg "Inject.rule: prob must be >= 0";
  if after < 0 then invalid_arg "Inject.rule: after must be >= 0";
  { sites; prob; after; action }

type plan = { seed : int; rules_for : int -> rule list }

let armed = Atomic.make false

(* The plan and an epoch stamp.  [arm] bumps the epoch; enrollment records
   the epoch it was made under, so domain-local state from a previous plan
   (or a worker of a finished scenario whose domain id got reused) is
   recognized as stale and ignored instead of firing a dead plan's rules. *)
let epoch = Atomic.make 0
let current_plan : plan option Atomic.t = Atomic.make None

(* Internal counters: plain atomics, always live while armed, independent of
   whether the telemetry registry is enabled.  Mirrored into [Repro_obs]
   below so they also flow into --metrics-out artifacts when telemetry is
   armed. *)
let hits_total = Atomic.make 0
let yields_total = Atomic.make 0
let stalls_total = Atomic.make 0
let crashes_total = Atomic.make 0

let m_hits = M.counter ~help:"fault-injection site hits" "fault_site_hits_total"
let m_yields = M.counter ~help:"injected yields" "fault_yields_total"
let m_stalls = M.counter ~help:"injected bounded stalls" "fault_stalls_total"
let m_crashes = M.counter ~help:"injected crash-stops" "fault_crashes_total"

type totals = { hits : int; yields : int; stalls : int; crashes : int }

let totals () =
  {
    hits = Atomic.get hits_total;
    yields = Atomic.get yields_total;
    stalls = Atomic.get stalls_total;
    crashes = Atomic.get crashes_total;
  }

(* Per-domain enrollment.  Mutable fields are domain-local (DLS), so plain
   reads/writes are race-free. *)
type armed_rule = {
  r_sites : Site.t list;
  r_prob : float;
  r_action : action;
  mutable countdown : int;
}

type state = {
  st_epoch : int;
  slot : int;
  rng : Rng.t;
  rules : armed_rule list;
  mutable hops : int;
}

let state_key : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let arm plan =
  Atomic.set current_plan (Some plan);
  Atomic.incr epoch;
  Atomic.set hits_total 0;
  Atomic.set yields_total 0;
  Atomic.set stalls_total 0;
  Atomic.set crashes_total 0;
  Atomic.set armed true

let disarm () =
  Atomic.set armed false;
  Atomic.set current_plan None;
  Atomic.incr epoch

let enroll ~slot =
  if slot < 0 then invalid_arg "Inject.enroll: slot must be >= 0";
  match Atomic.get current_plan with
  | None -> ()
  | Some plan ->
    let rules =
      List.map
        (fun r ->
          { r_sites = r.sites; r_prob = r.prob; r_action = r.action; countdown = r.after })
        (plan.rules_for slot)
    in
    Domain.DLS.set state_key
      (Some
         {
           st_epoch = Atomic.get epoch;
           slot;
           rng = Rng.create (plan.seed lxor (0x9e3779b9 * (slot + 1)));
           rules;
           hops = 0;
         })

let my_state () =
  match Domain.DLS.get state_key with
  | Some s when s.st_epoch = Atomic.get epoch -> Some s
  | Some _ | None -> None

let my_hops () = match my_state () with None -> 0 | Some s -> s.hops

let perform s site = function
  | Yield ->
    Atomic.incr yields_total;
    M.incr m_yields;
    Domain.cpu_relax ()
  | Stall k ->
    Atomic.incr stalls_total;
    M.incr m_stalls;
    for _ = 1 to k do
      Domain.cpu_relax ()
    done
  | Crash ->
    Atomic.incr crashes_total;
    M.incr m_crashes;
    raise (Crashed (site, s.slot))

let matches r site = match r.r_sites with [] -> true | sites -> List.mem site sites

let hit site =
  match my_state () with
  | None -> ()
  | Some s ->
    if site = Site.Find_hop then s.hops <- s.hops + 1;
    Atomic.incr hits_total;
    M.incr m_hits;
    List.iter
      (fun r ->
        if matches r site then begin
          if r.countdown > 0 then r.countdown <- r.countdown - 1
          else if r.r_prob >= 1.0 || Rng.float s.rng < r.r_prob then
            perform s site r.r_action
        end)
      s.rules
