(** Labeled fault-injection sites inside the concurrent DSU hot paths.

    Each constructor names one program point of {!Dsu_algorithm} where the
    adversary of the paper's asynchronous model (Section 2) may preempt,
    delay, or crash a process.  The interesting points are exactly the
    shared-memory access boundaries: between them a process owns only its
    local state, so scheduling there cannot create new behaviors.

    - [Find_hop] — top of each find-loop iteration (one parent-pointer
      traversal step, the unit of the paper's work measure).
    - [Split_read_gap] — between the two reads [v = parent(u)] and
      [w = parent(v)] of splitting (Algorithms 4/5); a process stalled here
      holds a stale [v], so its later [Cas] exercises the Lemma 3.1
      argument that stale parents are still ancestors.
    - [Split_cas_pre] / [Split_cas_post] — immediately before/after a
      splitting or compression [Cas] on a parent pointer.
    - [Link_cas_pre] / [Link_cas_post] — immediately before/after the
      linking [Cas] of [Unite] (Algorithms 3/7); crashing between these two
      is the "half-installed link" scenario: the link is in shared memory
      but the process that installed it never returns.

    Sites outside {!Dsu_algorithm}, arming the [MakeSet] extensions and the
    linking-by-rank variant:

    - [Make_set_publish] — inside {!Dsu.Growable.make_set} /
      {!Dsu.Growable_unbounded.make_set}, after the slot is claimed and its
      storage exists but before the random priority is published; a crash
      here leaves a live element with the default priority [0], which the
      tie-breaking order tolerates.
    - [Chunk_publish_pre] / [Chunk_publish_post] — either side of the
      directory republication in {!Dsu.Growable_unbounded.Chunked.ensure};
      a process crashed between them dies holding the growth lock released
      only by its [Fun.protect], exercising the spin-bound slow path.
    - [Rank_read] — after a packed [(rank, parent)] word read that feeds a
      linking decision in {!Dsu.Rank}; a process stalled here holds a stale
      rank, exercising the re-validation [Cas].

    Durability sites, arming the fuzzy-snapshot scan and the write-ahead
    log's group commit ({!Repro_durable}):

    - [Snapshot_read] — before each per-cell acquire load of a fuzzy
      (non-quiescent) snapshot scan; crashing here abandons a snapshot
      mid-scan, recovery must fall back to the previous checkpoint.
    - [Wal_commit_pre] — at the top of a WAL group commit, before any byte
      of the batch reaches the file; crashing here loses the whole staged
      batch but leaves the log tail clean.
    - [Wal_commit_mid] — between the two partial writes of a group commit;
      crashing here leaves a torn record at the tail, which recovery must
      truncate at the first bad CRC.
    - [Wal_commit_post] — after the batch is written and fsynced; crashing
      here loses nothing (the batch is durable).

    Serving sites, arming the bounded MPMC ingestion/completion queues of
    {!Repro_service.Bounded_queue}:

    - [Queue_enq_cas] — at the top of an enqueue attempt, before the
      lock-free size probe and before any lock is taken; a crash here
      abandons the submission with no queue state disturbed (the queue's
      mutexes are never held across a site, so injected crash-stop cannot
      leak a lock).
    - [Queue_deq_cas] — at the top of a dequeue / batch-drain attempt,
      same discipline; a worker crashed here dies between drains, the
      "crash a worker domain mid-drain" scenario of the serving chaos
      drill.

    Attribution-only labels, used by the contention profiler to key
    CAS-outcome counts ([Dsu.Contention]) and never offered to the
    injection engine — no injection rule ever fires at them:

    - [Link_cas] — the linking [Cas] itself (outcome, not a crash point).
    - [Split_cas] — a splitting/compression [Cas] itself. *)

type t =
  | Find_hop
  | Split_read_gap
  | Split_cas_pre
  | Split_cas_post
  | Link_cas_pre
  | Link_cas_post
  | Make_set_publish
  | Chunk_publish_pre
  | Chunk_publish_post
  | Rank_read
  | Snapshot_read
  | Wal_commit_pre
  | Wal_commit_mid
  | Wal_commit_post
  | Queue_enq_cas
  | Queue_deq_cas
  | Link_cas
  | Split_cas

val all : t list

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val cas_sites : t list
(** The four sites adjacent to a [Cas] — where crash-stop leaves the most
    interesting partial state. *)
