(** Labeled fault-injection sites inside the concurrent DSU hot paths.

    Each constructor names one program point of {!Dsu_algorithm} where the
    adversary of the paper's asynchronous model (Section 2) may preempt,
    delay, or crash a process.  The interesting points are exactly the
    shared-memory access boundaries: between them a process owns only its
    local state, so scheduling there cannot create new behaviors.

    - [Find_hop] — top of each find-loop iteration (one parent-pointer
      traversal step, the unit of the paper's work measure).
    - [Split_read_gap] — between the two reads [v = parent(u)] and
      [w = parent(v)] of splitting (Algorithms 4/5); a process stalled here
      holds a stale [v], so its later [Cas] exercises the Lemma 3.1
      argument that stale parents are still ancestors.
    - [Split_cas_pre] / [Split_cas_post] — immediately before/after a
      splitting or compression [Cas] on a parent pointer.
    - [Link_cas_pre] / [Link_cas_post] — immediately before/after the
      linking [Cas] of [Unite] (Algorithms 3/7); crashing between these two
      is the "half-installed link" scenario: the link is in shared memory
      but the process that installed it never returns. *)

type t =
  | Find_hop
  | Split_read_gap
  | Split_cas_pre
  | Split_cas_post
  | Link_cas_pre
  | Link_cas_post

val all : t list

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val cas_sites : t list
(** The four sites adjacent to a [Cas] — where crash-stop leaves the most
    interesting partial state. *)
