module Rng = Repro_util.Rng

type linking = By_size | By_rank | By_random

type compaction = No_compaction | Halving | Splitting | Compression | Splicing

let all_linkings = [ By_size; By_rank; By_random ]
let all_compactions = [ No_compaction; Halving; Splitting; Compression; Splicing ]

let linking_to_string = function
  | By_size -> "size"
  | By_rank -> "rank"
  | By_random -> "random"

let compaction_to_string = function
  | No_compaction -> "none"
  | Halving -> "halving"
  | Splitting -> "splitting"
  | Compression -> "compression"
  | Splicing -> "splicing"

type counters = {
  finds : int;
  find_iters : int;
  parent_updates : int;
  links : int;
  same_sets : int;
  unites : int;
}

type t = {
  linking : linking;
  compaction : compaction;
  parent : int array;
  aux : int array;  (** size, rank, or random id depending on [linking] *)
  mutable finds : int;
  mutable find_iters : int;
  mutable parent_updates : int;
  mutable links : int;
  mutable same_sets : int;
  mutable unites : int;
}

let valid_combination linking compaction =
  match (linking, compaction) with
  | By_random, _ -> true
  | (By_size | By_rank), Splicing -> false
  | (By_size | By_rank), (No_compaction | Halving | Splitting | Compression) -> true

let create ?(linking = By_rank) ?(compaction = Splitting) ?(seed = 1) n =
  if n < 1 then invalid_arg "Seq_dsu.create: n must be >= 1";
  if not (valid_combination linking compaction) then
    invalid_arg "Seq_dsu.create: splicing requires randomized linking";
  let aux =
    match linking with
    | By_size -> Array.make n 1
    | By_rank -> Array.make n 0
    | By_random -> Rng.permutation (Rng.create seed) n
  in
  {
    linking;
    compaction;
    parent = Array.init n (fun i -> i);
    aux;
    finds = 0;
    find_iters = 0;
    parent_updates = 0;
    links = 0;
    same_sets = 0;
    unites = 0;
  }

let n t = Array.length t.parent

let check t x = if x < 0 || x >= n t then invalid_arg "Seq_dsu: node out of range"

let find_no_compaction t x =
  let rec loop u =
    t.find_iters <- t.find_iters + 1;
    let p = t.parent.(u) in
    if p = u then u else loop p
  in
  loop x

let find_halving t x =
  let rec loop u =
    t.find_iters <- t.find_iters + 1;
    let p = t.parent.(u) in
    let g = t.parent.(p) in
    if p = g then p
    else begin
      t.parent.(u) <- g;
      t.parent_updates <- t.parent_updates + 1;
      loop g
    end
  in
  loop x

let find_splitting t x =
  let rec loop u =
    t.find_iters <- t.find_iters + 1;
    let p = t.parent.(u) in
    let g = t.parent.(p) in
    if p = g then p
    else begin
      t.parent.(u) <- g;
      t.parent_updates <- t.parent_updates + 1;
      loop p
    end
  in
  loop x

let find_compression t x =
  let root = find_no_compaction t x in
  let rec compress u =
    let p = t.parent.(u) in
    if p <> root && u <> root then begin
      t.parent.(u) <- root;
      t.parent_updates <- t.parent_updates + 1;
      compress p
    end
  in
  compress x;
  root

let find t x =
  check t x;
  t.finds <- t.finds + 1;
  match t.compaction with
  | No_compaction -> find_no_compaction t x
  | Halving -> find_halving t x
  | Splitting -> find_splitting t x
  | Compression -> find_compression t x
  (* Queries cannot splice (splicing across two different sets would merge
     them), so the splicing variant compacts query paths by splitting. *)
  | Splicing -> find_splitting t x

let same_set t x y =
  t.same_sets <- t.same_sets + 1;
  find t x = find t y

(* Link root [rv] below root [ru] or vice versa according to the rule. *)
let link t ru rv =
  let make_child child parent =
    t.parent.(child) <- parent;
    t.links <- t.links + 1
  in
  match t.linking with
  | By_size ->
    let su = t.aux.(ru) and sv = t.aux.(rv) in
    if su < sv then begin
      make_child ru rv;
      t.aux.(rv) <- su + sv
    end
    else begin
      make_child rv ru;
      t.aux.(ru) <- su + sv
    end
  | By_rank ->
    let ku = t.aux.(ru) and kv = t.aux.(rv) in
    if ku < kv then make_child ru rv
    else if kv < ku then make_child rv ru
    else begin
      make_child rv ru;
      t.aux.(ru) <- ku + 1
    end
  | By_random ->
    if t.aux.(ru) < t.aux.(rv) then make_child ru rv else make_child rv ru

(* Rem-style splicing unite: walk both find paths at once, always advancing
   from the node whose parent has the smaller priority and splicing that
   node's parent pointer into the other path.  Priorities (the random total
   order in [aux]) strictly increase along parent chains, so the walk
   terminates; the paths have met exactly when the two parents coincide. *)
let unite_splice t x y =
  let prio i = t.aux.(i) in
  let rec loop u v =
    t.find_iters <- t.find_iters + 1;
    let pu = t.parent.(u) and pv = t.parent.(v) in
    if pu = pv then ()
    else if prio pu < prio pv then begin
      t.parent.(u) <- pv;
      if pu = u then t.links <- t.links + 1
      else begin
        t.parent_updates <- t.parent_updates + 1;
        loop pu v
      end
    end
    else begin
      t.parent.(v) <- pu;
      if pv = v then t.links <- t.links + 1
      else begin
        t.parent_updates <- t.parent_updates + 1;
        loop u pv
      end
    end
  in
  loop x y

let unite t x y =
  t.unites <- t.unites + 1;
  match t.compaction with
  | Splicing ->
    check t x;
    check t y;
    unite_splice t x y
  | No_compaction | Halving | Splitting | Compression ->
    let ru = find t x in
    let rv = find t y in
    if ru <> rv then link t ru rv

let count_sets t =
  let c = ref 0 in
  Array.iteri (fun i p -> if i = p then incr c) t.parent;
  !c

let parent_of t x =
  check t x;
  t.parent.(x)

let counters t =
  {
    finds = t.finds;
    find_iters = t.find_iters;
    parent_updates = t.parent_updates;
    links = t.links;
    same_sets = t.same_sets;
    unites = t.unites;
  }

let reset_counters t =
  t.finds <- 0;
  t.find_iters <- 0;
  t.parent_updates <- 0;
  t.links <- 0;
  t.same_sets <- 0;
  t.unites <- 0

let total_work (c : counters) = c.find_iters + c.parent_updates + c.links
