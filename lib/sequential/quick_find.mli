(** The obviously-correct reference partition: each element stores its class
    label directly, and [unite] relabels the smaller class eagerly.

    O(n) per union, O(1) per query — too slow to benchmark, but trivially
    correct, which makes it the oracle for every correctness test and for the
    linearizability checker's sequential specification. *)

type t

val create : int -> t
val n : t -> int
val same_set : t -> int -> int -> bool
val unite : t -> int -> int -> unit
val label : t -> int -> int
(** A canonical class label: the smallest element of the class. *)

val count_sets : t -> int
val classes : t -> int list list
(** The partition as sorted classes sorted by first element. *)

val copy : t -> t
val equal : t -> t -> bool
(** Same partition (labels may differ). *)

val canonical : t -> string
(** A canonical string encoding of the partition, usable as a memo key. *)
