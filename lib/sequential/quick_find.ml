type t = {
  label : int array;  (** class label = smallest member *)
  members : (int, int list) Hashtbl.t;  (** label -> members *)
}

let create n =
  if n < 1 then invalid_arg "Quick_find.create: n must be >= 1";
  let members = Hashtbl.create (2 * n) in
  for i = 0 to n - 1 do
    Hashtbl.replace members i [ i ]
  done;
  { label = Array.init n (fun i -> i); members }

let n t = Array.length t.label

let check t x = if x < 0 || x >= n t then invalid_arg "Quick_find: node out of range"

let label t x =
  check t x;
  t.label.(x)

let same_set t x y = label t x = label t y

let unite t x y =
  let lx = label t x and ly = label t y in
  if lx <> ly then begin
    let winner, loser = if lx < ly then (lx, ly) else (ly, lx) in
    let moved = Hashtbl.find t.members loser in
    List.iter (fun v -> t.label.(v) <- winner) moved;
    Hashtbl.replace t.members winner (List.rev_append moved (Hashtbl.find t.members winner));
    Hashtbl.remove t.members loser
  end

let count_sets t = Hashtbl.length t.members

let classes t =
  Hashtbl.fold (fun _ ms acc -> List.sort compare ms :: acc) t.members []
  |> List.sort compare

let copy t =
  let members = Hashtbl.copy t.members in
  { label = Array.copy t.label; members }

let equal a b =
  Array.length a.label = Array.length b.label && classes a = classes b

let canonical t =
  classes t
  |> List.map (fun c -> String.concat "," (List.map string_of_int c))
  |> String.concat "|"
