(** The classical sequential compressed-tree algorithms of Section 2.

    Any of the compaction methods (none, halving, splitting, compression) can
    be combined with any of the linking methods (by size, by rank,
    randomized), giving the twelve classical variants; the nine with
    compaction all run in O(m α(n, m/n)) time (worst-case for size/rank,
    expected for randomized — Tarjan & van Leeuwen 1984, Goel et al. 2014).

    These are single-threaded reference implementations: they are the
    correctness oracle for the concurrent algorithm and the baseline for the
    E9 work-comparison experiment.  All operations count their steps. *)

type linking =
  | By_size  (** link smaller tree below larger, ties arbitrary *)
  | By_rank  (** link smaller rank below larger; tie increments the winner *)
  | By_random  (** randomized linking: fixed random total order on nodes *)

type compaction =
  | No_compaction
  | Halving
  | Splitting
  | Compression
  | Splicing
      (** Rem-style splicing (the fifth method Goel et al. analyze; the
          paper's Section 6 discusses why it is dangerous {e concurrently} —
          here it is the sequential version): [unite] walks both find paths
          simultaneously, splicing each visited parent pointer into the
          other path, so union and compaction happen in one interleaved
          pass.  Queries compact by splitting (a query cannot splice: doing
          so across two different sets would merge them).  Requires
          [By_random] linking (splicing needs a static total order on
          nodes). *)

val all_linkings : linking list
val all_compactions : compaction list
val linking_to_string : linking -> string
val compaction_to_string : compaction -> string

type t

val create : ?linking:linking -> ?compaction:compaction -> ?seed:int -> int -> t
(** [create n] builds [n] singleton sets.  Defaults: [By_rank], [Splitting].
    [seed] only matters for [By_random].  Raises [Invalid_argument] when
    [Splicing] is combined with a linking other than [By_random]. *)

val valid_combination : linking -> compaction -> bool
(** Whether {!create} accepts the pair. *)

val n : t -> int
val find : t -> int -> int
val same_set : t -> int -> int -> bool
val unite : t -> int -> int -> unit
val count_sets : t -> int
val parent_of : t -> int -> int

type counters = {
  finds : int;
  find_iters : int;  (** parent-pointer traversal steps *)
  parent_updates : int;  (** pointer writes done by compaction *)
  links : int;
  same_sets : int;
  unites : int;
}

val counters : t -> counters
val reset_counters : t -> unit
val total_work : counters -> int
(** [find_iters + parent_updates + links]: comparable to the concurrent
    algorithm's work figure. *)
