(** The wait-free union-find of Anderson and Woll (STOC 1991) — the only
    prior concurrent disjoint-set-union algorithm and the paper's
    comparator.

    Reconstructed from their paper (no public implementation exists): rank
    linking with concurrent halving.  Their published structure reaches a
    node's (parent, rank) pair through one level of indirection so both can
    be compared and updated atomically; we realize the same atomicity by
    packing [(rank, parent)] into a single word ([word = rank * n + parent])
    and model the indirection's cost, when asked, as one extra shared read
    per word access.  See DESIGN.md §2 and experiment E8. *)

module Make (M : Dsu.Memory_intf.S) : sig
  type t

  val create : ?stats:Dsu.Stats.t -> ?indirection:bool -> mem:M.t -> n:int -> unit -> t
  (** [indirection] (default false) charges the extra read per access that
      AW's published indirection costs. *)

  val init_word : int -> int -> int
  (** [init_word n i] — initial memory word for node [i] (rank 0, parent
      [i]). *)

  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit
  val count_sets : t -> int
  val stats : t -> Dsu.Stats.snapshot
end

(** Native instantiation over [Atomic] arrays. *)
module Native : sig
  type t

  val create :
    ?memory_order:Dsu.Memory_order.t ->
    ?collect_stats:bool ->
    ?indirection:bool ->
    int ->
    t
  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit
  val count_sets : t -> int
  (** Quiescent only. *)

  val stats : t -> Dsu.Stats.snapshot
end

(** Simulator instantiation; see {!Dsu.Sim} for the usage pattern. *)
module Sim : sig
  type t

  val mem_size : int -> int
  val init : int -> int -> int
  val handle : ?indirection:bool -> int -> t
  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit
  val stats : t -> Dsu.Stats.snapshot

  val same_set_op : t -> int -> int -> unit -> unit
  (** Closure for {!Apram.Sim.run_ops}, recorded in the history. *)

  val unite_op : t -> int -> int -> unit -> unit
end
