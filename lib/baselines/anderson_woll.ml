(** The wait-free union-find of Anderson and Woll (STOC 1991) — the only
    prior concurrent disjoint-set-union algorithm, and the baseline the
    paper compares against.

    Their algorithm links by rank, which needs a node's parent and rank to
    be compared and updated together atomically; they achieve this with one
    level of indirection.  Following their idea in its modern form, we pack
    [(rank, parent)] into a single word ([word = rank * n + parent]) so a
    single [Cas] updates both — functionally the same trick, with the same
    work behaviour (rank ties force extra [Cas] retries, and an unsuccessful
    linker must re-run its finds).  Compaction is their concurrent halving.

    The reconstruction is documented in DESIGN.md; no public implementation
    of AW91 exists.  The module is functorized over the same memory
    signature as the main algorithm, so its work is measured by the same
    APRAM simulator in experiment E8. *)

module Make (M : Dsu.Memory_intf.S) = struct
  type t = {
    mem : M.t;
    n : int;
    indirection : bool;
        (** model AW's published data structure, where reaching a node's
            (parent, rank) pair costs an extra pointer hop through the
            indirection record: every word access is charged one extra
            shared-memory read *)
    stats : Dsu.Stats.t option;
  }

  let create ?stats ?(indirection = false) ~mem ~n () =
    if n < 1 then invalid_arg "Anderson_woll.create: n must be >= 1";
    { mem; n; indirection; stats }

  (* One logical access to a node's packed (rank, parent) word; under
     [indirection] it costs two shared-memory reads, as in AW91. *)
  let read_word t u =
    if t.indirection then ignore (M.read t.mem u);
    M.read t.mem u

  (* Initial word for node [i]: rank 0, parent itself. *)
  let init_word _n i = i

  let bump t f = match t.stats with None -> () | Some s -> f s

  let parent_of_word t w = w mod t.n
  let rank_of_word t w = w / t.n
  let word t ~rank ~parent = (rank * t.n) + parent

  (* Find with concurrent halving: swing u's parent to its grandparent with
     a Cas that preserves u's packed rank, then jump to the grandparent. *)
  let find_root t x =
    bump t Dsu.Stats.incr_find;
    let rec loop u =
      bump t Dsu.Stats.incr_find_iter;
      let wu = read_word t u in
      let pu = parent_of_word t wu in
      if pu = u then u
      else begin
        let wp = read_word t pu in
        let pp = parent_of_word t wp in
        if pp = pu then pu
        else begin
          let ok = M.cas t.mem u wu (word t ~rank:(rank_of_word t wu) ~parent:pp) in
          bump t (Dsu.Stats.incr_compaction_cas ~ok);
          loop pp
        end
      end
    in
    loop x

  let check t x = if x < 0 || x >= t.n then invalid_arg "Anderson_woll: node out of range"

  let find t x =
    check t x;
    find_root t x

  let same_set t x y =
    check t x;
    check t y;
    bump t Dsu.Stats.incr_same_set;
    let rec loop u v ~first =
      if not first then bump t Dsu.Stats.incr_outer_retry;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then true
      else if parent_of_word t (read_word t u) = u then false
      else loop u v ~first:false
    in
    loop x y ~first:true

  let unite t x y =
    check t x;
    check t y;
    bump t Dsu.Stats.incr_unite;
    let rec loop u v ~first =
      if not first then bump t Dsu.Stats.incr_outer_retry;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then ()
      else begin
        let wu = read_word t u in
        let wv = read_word t v in
        let pu = parent_of_word t wu and ru = rank_of_word t wu in
        let pv = parent_of_word t wv and rv = rank_of_word t wv in
        if pu <> u || pv <> v then loop u v ~first:false
        else begin
          let link a wa ra b =
            let ok = M.cas t.mem a wa (word t ~rank:ra ~parent:b) in
            bump t (Dsu.Stats.incr_link_cas ~ok);
            ok
          in
          if ru < rv then begin
            if not (link u wu ru v) then loop u v ~first:false
          end
          else if rv < ru then begin
            if not (link v wv rv u) then loop u v ~first:false
          end
          else if u < v then begin
            (* Rank tie: the lower-indexed root goes below, and the winner's
               rank is promoted with a second Cas whose failure is benign
               (someone else already promoted it or linked it away). *)
            if link u wu ru v then
              ignore (M.cas t.mem v wv (word t ~rank:(rv + 1) ~parent:v))
            else loop u v ~first:false
          end
          else if link v wv rv u then
            ignore (M.cas t.mem u wu (word t ~rank:(ru + 1) ~parent:u))
          else loop u v ~first:false
        end
      end
    in
    loop x y ~first:true

  let count_sets t =
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if parent_of_word t (M.read t.mem i) = i then incr c
    done;
    !c

  let stats t =
    match t.stats with
    | None -> Dsu.Stats.zero
    | Some s -> Dsu.Stats.snapshot s
end

(** Native instantiation over [Atomic] arrays. *)
module Native = struct
  module A = Make (Dsu.Native_memory)

  type t = A.t

  let create ?memory_order ?(collect_stats = false) ?indirection n =
    let stats = if collect_stats then Some (Dsu.Stats.create ()) else None in
    let mem = Dsu.Native_memory.make ?order:memory_order n (A.init_word n) in
    A.create ?stats ?indirection ~mem ~n ()

  let find = A.find
  let same_set = A.same_set
  let unite = A.unite
  let count_sets = A.count_sets
  let stats = A.stats
end

(** Simulator instantiation; see {!Dsu.Dsu_sim} for the usage pattern. *)
module Sim = struct
  module Sim_memory = struct
    type t = unit

    let read () a = Apram.Process.read a
    let cas () a expected desired = Apram.Process.cas a expected desired

    (* Step-counted memory: weak CAS costs a strong CAS's step; prefetch
       is not a memory step. *)
    let cas_weak = cas
    let prefetch () _ = ()
  end

  module A = Make (Sim_memory)

  type t = A.t

  let mem_size n = n
  let init n i = A.init_word n i

  let handle ?indirection n =
    let stats = Dsu.Stats.create () in
    A.create ~stats ?indirection ~mem:() ~n ()

  let find = A.find
  let same_set = A.same_set
  let unite = A.unite
  let stats = A.stats

  let same_set_op t x y () =
    Apram.Process.record_invoke ~name:"same_set" ~args:[ x; y ];
    let r = A.same_set t x y in
    Apram.Process.record_return (if r then 1 else 0)

  let unite_op t x y () =
    Apram.Process.record_invoke ~name:"unite" ~args:[ x; y ];
    A.unite t x y;
    Apram.Process.record_return 0
end
