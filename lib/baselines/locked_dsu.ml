type t = { lock : Mutex.t; dsu : Sequential.Seq_dsu.t }

let create ?linking ?compaction ?seed n =
  { lock = Mutex.create (); dsu = Sequential.Seq_dsu.create ?linking ?compaction ?seed n }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.dsu)

let same_set t x y = locked t (fun d -> Sequential.Seq_dsu.same_set d x y)
let unite t x y = locked t (fun d -> Sequential.Seq_dsu.unite d x y)
let find t x = locked t (fun d -> Sequential.Seq_dsu.find d x)
let count_sets t = locked t Sequential.Seq_dsu.count_sets
let counters t = locked t Sequential.Seq_dsu.counters
