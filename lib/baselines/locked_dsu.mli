(** The trivial concurrent baseline: a sequential DSU behind one global
    mutex.

    Linearizable by construction and blocking (not wait-free): a stalled
    lock-holder stalls everyone, which is exactly the behaviour the paper's
    wait-free algorithms avoid.  Included to anchor the comparison benches. *)

type t

val create :
  ?linking:Sequential.Seq_dsu.linking ->
  ?compaction:Sequential.Seq_dsu.compaction ->
  ?seed:int ->
  int ->
  t

val same_set : t -> int -> int -> bool
val unite : t -> int -> int -> unit
val find : t -> int -> int
val count_sets : t -> int
val counters : t -> Sequential.Seq_dsu.counters
