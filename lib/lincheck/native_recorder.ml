type t = { lock : Mutex.t; mutable events : Apram.History.event list }

let create () = { lock = Mutex.create (); events = [] }

let append t event =
  Mutex.lock t.lock;
  t.events <- event :: t.events;
  Mutex.unlock t.lock

let run t ~pid ~name ~args f =
  append t (Apram.History.Invoke { pid; call = { Apram.History.name; args }; step = 0 });
  let result = f () in
  append t (Apram.History.Return { pid; value = result; step = 0 });
  result

let history t =
  Mutex.lock t.lock;
  let events = List.rev t.events in
  Mutex.unlock t.lock;
  events

let size t =
  Mutex.lock t.lock;
  let n = List.length t.events in
  Mutex.unlock t.lock;
  n
