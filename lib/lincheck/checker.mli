(** A Wing–Gong linearizability checker for DSU histories.

    Searches for a total order of the completed operations that (a) respects
    the real-time order (an operation that returned before another was
    invoked must be linearized first) and (b) is a legal sequential
    execution of the {!Spec}.

    The search memoizes on the set of linearized operations: for this
    object the state reached is independent of the order in which a given
    subset of unites is applied (set union is commutative and associative),
    so the subset alone determines the state and the memoization is sound.

    Histories must be complete (every invocation matched by a response):
    the wait-free algorithm run to quiescence in the simulator always
    produces complete histories.  A pending invocation raises
    [Invalid_argument]. *)

type verdict =
  | Linearizable
  | Not_linearizable of string  (** human-readable explanation *)

val check : n:int -> Apram.History.t -> verdict
(** [check ~n history] — [n] is the number of DSU elements.  At most 62
    completed operations (the memo key is a bitmask). *)

val check_exn : n:int -> Apram.History.t -> unit
(** Raises [Failure] with the explanation if not linearizable. *)

val witness : n:int -> Apram.History.t -> Apram.History.complete_op list option
(** A linearization order if one exists. *)
