(** A Wing–Gong linearizability checker for DSU histories.

    Searches for a total order of the completed operations that (a) respects
    the real-time order (an operation that returned before another was
    invoked must be linearized first) and (b) is a legal sequential
    execution of the {!Spec}.

    The search memoizes on the set of linearized operations: for this
    object the state reached is independent of the order in which a given
    subset of unites is applied (set union is commutative and associative),
    so the subset alone determines the state and the memoization is sound.

    Histories must be complete (every invocation matched by a response):
    the wait-free algorithm run to quiescence in the simulator always
    produces complete histories.  A pending invocation raises
    [Invalid_argument]. *)

type verdict =
  | Linearizable
  | Not_linearizable of string  (** human-readable explanation *)

val check : n:int -> Apram.History.t -> verdict
(** [check ~n history] — [n] is the number of DSU elements.  At most 62
    completed operations (the memo key is a bitmask). *)

val check_exn : n:int -> Apram.History.t -> unit
(** Raises [Failure] with the explanation if not linearizable. *)

val witness : n:int -> Apram.History.t -> Apram.History.complete_op list option
(** A linearization order if one exists. *)

(** {2 Crash-aware checking}

    A history cut off by crash-stopped processes carries pending
    invocations.  The correctness condition (strict linearizability for
    crash-stop histories) is: each pending operation either {e linearized}
    — took effect at some point after its invocation — or {e vanished} —
    never took effect; it must not half-apply.

    {!check_crash} decides it by search: pending queries always vanish
    (sound and complete — a query constrains but never changes the state),
    and every include/exclude choice over the pending unites is tried in
    increasing-inclusion order, so an operation only counts as linearized
    when the history forces it.  With [final_roots] (the quiescent memory's
    root per node, e.g. {!Dsu.Sim.roots_of_memory}), a [same_set]
    observation per pending unite is appended after all events: a crashed
    unite whose link CAS landed must then linearize, one whose CAS never
    landed must vanish — without [final_roots] the two are
    indistinguishable and the checker prefers vanish. *)

type crash_verdict = {
  crash_ok : bool;
  linearized : Apram.History.call list;  (** pending unites forced to take effect *)
  vanished : Apram.History.call list;  (** pending calls that never took effect *)
  crash_detail : string;
}

val check_crash :
  n:int -> ?final_roots:int array -> Apram.History.t -> crash_verdict
(** [check_crash ~n history] — the completed ops plus synthetic entries for
    included pending unites and final-state observations all feed one
    {!check}-style search, so the 62-operation bound counts completed +
    pending unites + one observation per pending unite.  A complete history
    degenerates to {!check}. *)
