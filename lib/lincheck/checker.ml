module History = Apram.History

type verdict = Linearizable | Not_linearizable of string

let explain_op (op : History.complete_op) =
  Format.asprintf "p%d:%a=%d" op.pid History.pp_call op.call op.result

(* Depth-first search for a legal linearization.  [order] accumulates the
   chosen operations in reverse. *)
let search ~n ops =
  let num = Array.length ops in
  if num > 62 then invalid_arg "Checker: more than 62 operations";
  let full = if num = 62 then -1 lxor (1 lsl 62) else (1 lsl num) - 1 in
  let failed : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec go mask state order =
    if mask = full then Some (List.rev order)
    else if Hashtbl.mem failed mask then None
    else begin
      (* Earliest response among not-yet-linearized operations: anything
         invoked after it is ineligible. *)
      let min_ret = ref max_int in
      for i = 0 to num - 1 do
        if mask land (1 lsl i) = 0 then
          min_ret := min !min_ret ops.(i).History.returned_at
      done;
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < num do
        let idx = !i in
        incr i;
        (* Event indices are distinct, so < is equivalent to <=. *)
        if mask land (1 lsl idx) = 0 && ops.(idx).History.invoked_at < !min_ret
        then begin
          let op = Spec.op_of_call ops.(idx).History.call in
          if Spec.matches state op ops.(idx).History.result then begin
            let state', _ = Spec.apply state op in
            match go (mask lor (1 lsl idx)) state' (ops.(idx) :: order) with
            | Some _ as found -> result := found
            | None -> ()
          end
        end
      done;
      if !result = None then Hashtbl.replace failed mask ();
      !result
    end
  in
  go 0 (Spec.initial n) []

let prepare history =
  (match History.pending_calls history with
  | [] -> ()
  | pending ->
    invalid_arg
      (Format.asprintf "Checker: history has %d pending operations"
         (List.length pending)));
  Array.of_list (History.complete_ops history)

let witness ~n history = search ~n (prepare history)

let check ~n history =
  let ops = prepare history in
  match search ~n ops with
  | Some _ -> Linearizable
  | None ->
    let desc =
      ops |> Array.to_list |> List.map explain_op |> String.concat "; "
    in
    Not_linearizable ("no legal linearization of: " ^ desc)

let check_exn ~n history =
  match check ~n history with
  | Linearizable -> ()
  | Not_linearizable msg -> failwith msg

(* ---------- crash-aware checking ---------- *)

type crash_verdict = {
  crash_ok : bool;
  linearized : History.call list;
  vanished : History.call list;
  crash_detail : string;
}

(* Pending invocations with the index of their [Invoke] event —
   {!History.pending_calls} drops the index, which the search needs as the
   operation's lower time bound. *)
let pending_with_index (events : History.t) =
  let pending : (int, History.call * int) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun idx event ->
      match event with
      | History.Invoke { pid; call; _ } -> Hashtbl.replace pending pid (call, idx)
      | History.Return { pid; _ } -> Hashtbl.remove pending pid)
    events;
  Hashtbl.fold (fun pid (call, idx) acc -> (pid, call, idx) :: acc) pending []
  |> List.sort compare

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

(* All subsets of [0..k-1] as bitmasks, smallest subsets first — a pending
   operation vanishes unless the history forces it to have taken effect. *)
let subsets k =
  List.init (1 lsl k) Fun.id
  |> List.sort (fun a b -> compare (popcount a, a) (popcount b, b))

let check_crash ~n ?final_roots history =
  let completed = Array.of_list (History.complete_ops history) in
  let pending = pending_with_index history in
  (* A pending query constrains but never changes the state, so dropping it
     is sound and complete: any witness with it remains one without it. *)
  let pending_unites, pending_queries =
    List.partition (fun (_, call, _) -> call.History.name = "unite") pending
  in
  let base = List.length history in
  (* Post-quiescence observations of the final memory, synthesized as
     completed [same_set] ops after every event: a crashed unite whose link
     CAS landed shows up as a [true] its subset must explain (must
     linearize); one whose CAS never landed shows up as a [false] that
     forbids including it (must vanish). *)
  let observations =
    match final_roots with
    | None -> []
    | Some roots ->
      List.mapi
        (fun k (_, (call : History.call), _) ->
          match call.args with
          | [ x; y ] ->
            {
              History.pid = -1;
              call = { History.name = "same_set"; args = [ x; y ] };
              result = (if roots.(x) = roots.(y) then 1 else 0);
              invoked_at = base + 64 + (2 * k);
              returned_at = base + 64 + (2 * k) + 1;
              steps = 0;
            }
          | _ -> invalid_arg "Checker.check_crash: malformed pending unite")
        pending_unites
  in
  let k = List.length pending_unites in
  if Array.length completed + k + List.length observations > 62 then
    invalid_arg "Checker.check_crash: more than 62 operations";
  let unites = Array.of_list pending_unites in
  let calls_of = List.map (fun (_, call, _) -> call) in
  let rec try_subsets = function
    | [] -> None
    | mask :: rest ->
      let included = ref [] in
      Array.iteri
        (fun i entry -> if mask land (1 lsl i) <> 0 then included := entry :: !included)
        unites;
      let included = List.rev !included in
      (* An included unite took effect before quiescence, so its synthetic
         return lands after every real event but before the observations. *)
      let synth =
        List.mapi
          (fun j (pid, call, invoked_at) ->
            {
              History.pid;
              call;
              result = 0;
              invoked_at;
              returned_at = base + j;
              steps = 0;
            })
          included
      in
      let ops =
        Array.concat [ completed; Array.of_list synth; Array.of_list observations ]
      in
      (match search ~n ops with
      | Some _ -> Some (mask, included)
      | None -> try_subsets rest)
  in
  match try_subsets (subsets k) with
  | Some (mask, included) ->
    let excluded =
      Array.to_list unites
      |> List.filteri (fun i _ -> mask land (1 lsl i) = 0)
    in
    let vanished = calls_of excluded @ calls_of pending_queries in
    {
      crash_ok = true;
      linearized = calls_of included;
      vanished;
      crash_detail =
        Printf.sprintf "%d pending: %d linearized, %d vanished" (List.length pending)
          (List.length included) (List.length vanished);
    }
  | None ->
    {
      crash_ok = false;
      linearized = [];
      vanished = [];
      crash_detail =
        Printf.sprintf
          "no include/vanish choice for the %d pending operation(s) yields a legal \
           linearization of: %s"
          (List.length pending)
          (completed |> Array.to_list |> List.map explain_op |> String.concat "; ");
    }
