module History = Apram.History

type verdict = Linearizable | Not_linearizable of string

let explain_op (op : History.complete_op) =
  Format.asprintf "p%d:%a=%d" op.pid History.pp_call op.call op.result

(* Depth-first search for a legal linearization.  [order] accumulates the
   chosen operations in reverse. *)
let search ~n ops =
  let num = Array.length ops in
  if num > 62 then invalid_arg "Checker: more than 62 operations";
  let full = if num = 62 then -1 lxor (1 lsl 62) else (1 lsl num) - 1 in
  let failed : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec go mask state order =
    if mask = full then Some (List.rev order)
    else if Hashtbl.mem failed mask then None
    else begin
      (* Earliest response among not-yet-linearized operations: anything
         invoked after it is ineligible. *)
      let min_ret = ref max_int in
      for i = 0 to num - 1 do
        if mask land (1 lsl i) = 0 then
          min_ret := min !min_ret ops.(i).History.returned_at
      done;
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < num do
        let idx = !i in
        incr i;
        (* Event indices are distinct, so < is equivalent to <=. *)
        if mask land (1 lsl idx) = 0 && ops.(idx).History.invoked_at < !min_ret
        then begin
          let op = Spec.op_of_call ops.(idx).History.call in
          if Spec.matches state op ops.(idx).History.result then begin
            let state', _ = Spec.apply state op in
            match go (mask lor (1 lsl idx)) state' (ops.(idx) :: order) with
            | Some _ as found -> result := found
            | None -> ()
          end
        end
      done;
      if !result = None then Hashtbl.replace failed mask ();
      !result
    end
  in
  go 0 (Spec.initial n) []

let prepare history =
  (match History.pending_calls history with
  | [] -> ()
  | pending ->
    invalid_arg
      (Format.asprintf "Checker: history has %d pending operations"
         (List.length pending)));
  Array.of_list (History.complete_ops history)

let witness ~n history = search ~n (prepare history)

let check ~n history =
  let ops = prepare history in
  match search ~n ops with
  | Some _ -> Linearizable
  | None ->
    let desc =
      ops |> Array.to_list |> List.map explain_op |> String.concat "; "
    in
    Not_linearizable ("no legal linearization of: " ^ desc)

let check_exn ~n history =
  match check ~n history with
  | Linearizable -> ()
  | Not_linearizable msg -> failwith msg
