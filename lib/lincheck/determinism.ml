module Rng = Repro_util.Rng

(* ------------------------------------------------------------------ *)
(* Determinism checking for the bulk connectivity engine — the
   lincheck-style companion to {!Checker}: instead of searching for a
   linearization of one observed history, it replays the *same input
   stream* under many schedules (domain counts x perturbation seeds x
   injected yields) and demands byte-identical output.

   The check has teeth in both directions:

   - {!check} must find a single digest across every schedule of the
     deterministic engine, or the run is a counterexample (reported with
     the offending configuration);
   - {!distinguish} demonstrates the racy engine really is
     schedule-dependent: its *normalized labels* agree (connectivity is
     correct under any schedule) while its raw parent forests differ
     across schedules for some seed — evidence the determinism property
     is a property of the engine, not of the workload. *)

type outcome = {
  digest : string;  (** digest of the agreed labels (when [ok]) *)
  runs : int;
  ok : bool;
  failures : string list;
      (** one ["domains=2 seed=3 yields=on: <digest>"] line per
          disagreeing run *)
}

let digest_labels (labels : int array) =
  Digest.to_hex (Digest.string (Marshal.to_string labels []))

(* A pseudo-random sleep schedule: perturb domain [d] after round [r]
   with probability ~1/4, sleeping up to ~200us.  Enough jitter to
   reorder every barrier race on a real machine without stalling CI. *)
let yield_schedule perturb_seed =
  fun ~domain ~round ->
    let h = Rng.create ((perturb_seed * 7919) + (domain * 613) + round) in
    if Rng.int h 4 = 0 then Unix.sleepf (float_of_int (Rng.int h 200) /. 1e6)

let check ?(domain_counts = [ 1; 2; 4 ]) ?(perturb_seeds = [ 0; 1; 2 ])
    ~run () =
  let reference = ref None in
  let runs = ref 0 in
  let failures = ref [] in
  List.iter
    (fun domains ->
      List.iter
        (fun perturb_seed ->
          let on_round =
            if perturb_seed = 0 then fun ~domain:_ ~round:_ -> ()
            else yield_schedule perturb_seed
          in
          let labels : int array = run ~domains ~on_round in
          let d = digest_labels labels in
          incr runs;
          match !reference with
          | None -> reference := Some d
          | Some r ->
            if d <> r then
              failures :=
                Printf.sprintf "domains=%d perturb=%d: %s (expected %s)"
                  domains perturb_seed d r
                :: !failures)
        perturb_seeds)
    domain_counts;
  {
    digest = Option.value ~default:"" !reference;
    runs = !runs;
    ok = !failures = [];
    failures = List.rev !failures;
  }

let distinguish ?(schedules = [ (1, 0); (2, 0); (4, 0); (4, 1) ]) ~run () =
  let digests =
    List.map
      (fun (domains, variant) ->
        digest_labels (run ~domains ~variant))
      schedules
  in
  match digests with
  | [] -> false
  | d :: rest -> List.exists (fun d' -> d' <> d) rest
