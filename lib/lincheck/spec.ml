module Quick_find = Sequential.Quick_find

type op = Same_set of int * int | Unite of int * int | Find of int

let op_of_call (call : Apram.History.call) =
  match (call.name, call.args) with
  | "same_set", [ x; y ] -> Same_set (x, y)
  | "unite", [ x; y ] -> Unite (x, y)
  | "find", [ x ] -> Find x
  | name, _ -> invalid_arg ("Spec.op_of_call: unknown operation " ^ name)

let call_of_op op : Apram.History.call =
  match op with
  | Same_set (x, y) -> { name = "same_set"; args = [ x; y ] }
  | Unite (x, y) -> { name = "unite"; args = [ x; y ] }
  | Find x -> { name = "find"; args = [ x ] }

type state = Quick_find.t

let initial n = Quick_find.create n

let apply s op =
  match op with
  | Same_set (x, y) -> (s, if Quick_find.same_set s x y then 1 else 0)
  | Unite (x, y) ->
    let s' = Quick_find.copy s in
    Quick_find.unite s' x y;
    (s', 0)
  | Find x -> (s, Quick_find.label s x)

let matches s op observed =
  match op with
  | Same_set (x, y) -> (if Quick_find.same_set s x y then 1 else 0) = observed
  | Unite _ -> true
  | Find x ->
    (* Weak spec: the witness must be some member of x's class.  The
       concurrent object's root identity depends on the random node order,
       which the sequential spec does not model. *)
    observed >= 0
    && observed < Quick_find.n s
    && Quick_find.same_set s x observed

let is_query = function Same_set _ | Find _ -> true | Unite _ -> false

let pp_op ppf op = Apram.History.pp_call ppf (call_of_op op)
