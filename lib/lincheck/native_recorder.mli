(** Record operation histories from {e native} multi-domain executions, for
    post-hoc linearizability checking — the bridge between the simulator
    (where every interleaving is controlled) and real OCaml 5 domains (where
    the hardware interleaves).

    Events are appended under a mutex, which perturbs timing slightly but
    records a sound real-time order: if operation A returned before B was
    invoked, A's return event precedes B's invoke event in the recorded
    history, which is exactly what the checker's precedence constraint
    needs.  Use small histories (the checker is exponential). *)

type t

val create : unit -> t

val run : t -> pid:int -> name:string -> args:int list -> (unit -> int) -> int
(** [run t ~pid ~name ~args f] records the invocation, executes [f ()],
    records its result, and returns it.  [pid] identifies the calling
    logical process (e.g. the domain index); a pid must not run two
    operations concurrently. *)

val history : t -> Apram.History.t
(** The events recorded so far, in append order.  Call after all domains
    have joined. *)

val size : t -> int
