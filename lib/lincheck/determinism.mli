(** Determinism checking — the lincheck-style companion to {!Checker}
    for the internally deterministic bulk connectivity engine: replay
    one input under many schedules (domain counts × perturbation seeds
    with injected sleeps) and demand byte-identical output.

    The module is engine-agnostic: callers pass a closure that runs the
    engine at a given domain count with a given round hook, so the check
    composes with {!Graphs.Det_bulk} without this library depending on
    the graphs layer. *)

type outcome = {
  digest : string;  (** digest of the agreed labels (when [ok]) *)
  runs : int;
  ok : bool;
  failures : string list;
      (** one ["domains=D perturb=S: <got> (expected <ref>)"] line per
          disagreeing run *)
}

val digest_labels : int array -> string
(** Hex digest of a label array (marshalled bytes — byte-identical
    arrays, not just equal multisets). *)

val check :
  ?domain_counts:int list ->
  ?perturb_seeds:int list ->
  run:
    (domains:int -> on_round:(domain:int -> round:int -> unit) -> int array) ->
  unit ->
  outcome
(** Run the engine once per (domain count × perturbation seed) — seeds
    default to [[0; 1; 2]], where seed 0 injects no delays and the rest
    sleep pseudo-randomly inside [on_round] — and compare digests.
    [ok = false] lists every run disagreeing with the first. *)

val distinguish :
  ?schedules:(int * int) list ->
  run:(domains:int -> variant:int -> int array) ->
  unit ->
  bool
(** [true] if at least two schedules (pairs of domain count × variant,
    passed to [run]) produce different digests — the positive control
    proving a racy engine's raw forest really is schedule-dependent. *)
