(** The sequential specification of the disjoint-set-union object.

    States are set partitions (represented by {!Sequential.Quick_find}); the
    operations are those the paper's object exposes, plus a weak
    specification of [find] (the returned witness must be in the caller's
    class — the concrete root identity is implementation-defined, so a
    stronger sequential spec would be wrong for the concurrent object). *)

type op = Same_set of int * int | Unite of int * int | Find of int

val op_of_call : Apram.History.call -> op
(** Raises [Invalid_argument] on an unknown operation name. *)

val call_of_op : op -> Apram.History.call

type state = Sequential.Quick_find.t

val initial : int -> state

val apply : state -> op -> state * int
(** [apply s op] is the post-state and the specified return value.  The
    input state is not mutated. *)

val matches : state -> op -> int -> bool
(** [matches s op observed] — would a sequential execution of [op] in state
    [s] return [observed]?  For [Find x] this accepts any member of [x]'s
    class. *)

val is_query : op -> bool
val pp_op : Format.formatter -> op -> unit
