(** The [MakeSet] extension with {e no a-priori capacity}: the universe
    grows without bound, as in the paper's Section 3 remark ("in a setting
    in which there is no a priori bound on the number of MakeSet
    operations...").  In that setting the algorithms are lock-free rather
    than wait-free — an operation can be overtaken forever by new elements
    joining its sets — which this module inherits.

    Storage is a chunk directory: parents and priorities live in fixed-size
    chunks of [Atomic] cells; [make_set] appends a chunk (under a mutex,
    amortized over [chunk_size] allocations) and publishes the new directory
    through an [Atomic] reference, so {e all set operations remain
    lock-free} — they read a directory snapshot and never take the lock.
    Element indices are stable forever. *)

(** The underlying growable array of atomic cells: an immutable chunk
    directory republished through an [Atomic] on growth, so reads are
    lock-free.  Exposed for tests and for building other unbounded
    concurrent structures. *)
module Chunked : sig
  type t

  val create : chunk_size:int -> init:(base:int -> int -> int) -> t
  (** [init ~base j] is the initial value of absolute cell [base + j].
      @raise Invalid_argument when [chunk_size < 1]. *)

  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val cas : t -> int -> int -> int -> bool
  (** Cell accessors.  If the index is beyond the current capacity they
      briefly wait for an in-progress growth to publish; if no growth is
      in progress they raise [Invalid_argument] naming the index and the
      capacity — accessing a never-created cell is a caller bug, not a
      reason to spin forever. *)

  val ensure : t -> int -> unit
  (** Grow until cell [i] exists; amortized O(1), locks only to append. *)

  val capacity : t -> int
  val chunk_count : t -> int
end

type t

val create :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?collect_stats:bool ->
  ?chunk_size:int ->
  ?seed:int ->
  unit ->
  t
(** [chunk_size] (default 1024) trades allocation frequency for slack. *)

val make_set : t -> int
(** Allocate a fresh singleton element; never fails.  Takes the growth lock
    only when a new chunk is needed. *)

val cardinal : t -> int
val same_set : t -> int -> int -> bool
val unite : t -> int -> int -> unit
val find : t -> int -> int
val priority : t -> int -> int
val stats : t -> Dsu_stats.snapshot
val count_sets : t -> int
(** Quiescent only. *)

val chunk_count : t -> int
(** Chunks allocated so far (for tests). *)
