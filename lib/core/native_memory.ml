(** The {!Memory_intf.S} instance over {!Repro_util.Flat_atomic_array}: one
    contiguous word per node, so every parent hop in [find] is a single
    cache-friendly load and every link/splitting step a single-word CAS —
    the paper's machine model, with no per-cell boxing.

    The unchecked accessors are safe here: the algorithm validates node
    arguments at operation entry ([check_node]), and every parent value
    stored in the array is in range by construction (links only ever store
    existing node indices). *)

type t = Repro_util.Flat_atomic_array.t

(* Parent reads are plain loads (inline [mov], no C call): the algorithm
   tolerates stale parents — a formerly valid parent is still an ancestor
   with a larger id, so walks terminate and Lemma 3.1 is preserved — and
   every write goes through [cas], which re-validates against the current
   memory.  This is the "fenced unsafe load" model of the C/C++ concurrent
   union-find implementations (relaxed loads + CAS). *)
let read = Repro_util.Flat_atomic_array.unsafe_load
let cas = Repro_util.Flat_atomic_array.unsafe_cas
