(** The {!Memory_intf.S} instance over [Atomic]-backed arrays: the shared
    memory used by the native (OCaml 5 domains) instantiations. *)

type t = Repro_util.Atomic_array.t

let read = Repro_util.Atomic_array.get
let cas = Repro_util.Atomic_array.cas
