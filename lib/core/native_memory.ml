(** The {!Memory_intf.S} instance over {!Repro_util.Flat_atomic_array}: one
    contiguous word per node, so every parent hop in [find] is a single
    cache-friendly load and every link/splitting step a single-word CAS —
    the paper's machine model, with no per-cell boxing.

    The memory carries its {!Memory_order.t} mode so one set of algorithm
    loops serves all modes: without flambda the functorised [M.read] is an
    indirect call per hop anyway, so the perfectly predicted mode branch
    inside it is free next to the load it guards, and the instrumented
    (fault/telemetry) twins automatically inherit the tuned accesses.

    The unchecked accessors are safe here: the algorithm validates node
    arguments at operation entry ([check_node]), and every parent value
    stored in the array is in range by construction (links only ever store
    existing node indices). *)

module A = Repro_util.Flat_atomic_array

type t = { arr : A.t; order : Memory_order.t }

let make ?(padded = false) ?(order = Memory_order.default) n f =
  { arr = A.make ~padded n f; order }

let of_flat ?(order = Memory_order.default) arr = { arr; order }
let order t = t.order

(* Parent reads per mode; see {!Memory_order} for the soundness argument
   of each (the weakest mode relies on: a formerly valid parent is still
   an ancestor with a larger id, so walks terminate and Lemma 3.1 is
   preserved, and every write goes through a CAS that re-validates). *)
let read t i =
  match t.order with
  | Memory_order.Relaxed_reads -> A.unsafe_load t.arr i
  | Memory_order.Acquire -> A.unsafe_get_acquire t.arr i
  | Memory_order.Seq_cst -> A.unsafe_get t.arr i

(* Link CASes stay strong in every mode: a reported failure must mean a
   real conflict, because [unite] uses it to decide between backing off
   and re-reading versus retrying blindly. *)
let cas t i expected desired = A.unsafe_cas t.arr i expected desired

(* Splitting CASes may fail spuriously (a spurious failure is exactly a
   failed try).  Under [Seq_cst] the weak CAS is strengthened back to the
   strong seq-cst one so that mode really is the original fully fenced
   baseline. *)
let cas_weak t i expected desired =
  match t.order with
  | Memory_order.Seq_cst -> A.unsafe_cas t.arr i expected desired
  | Memory_order.Acquire | Memory_order.Relaxed_reads ->
    A.unsafe_cas_weak t.arr i expected desired

let prefetch t i = A.unsafe_prefetch t.arr i
