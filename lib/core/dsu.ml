(** Concurrent disjoint set union with randomized linking — an OCaml
    implementation of Jayanti & Tarjan, "A Randomized Concurrent Algorithm
    for Disjoint Set Union" (PODC 2016).

    Entry points:

    - {!Native} — the user-facing DSU over OCaml 5 domains.
    - {!Growable} — the [MakeSet] extension (elements created on the fly).
    - {!Sim} — the same algorithm instrumented to run inside the APRAM
      simulator ({!Apram.Sim}) for exact work measurements.
    - {!Find_policy} — selects among the paper's three [Find] variants.
    - {!Stats} — operation counters shared by all instantiations.
    - {!Obs} — telemetry instruments ({!Repro_obs} glue): latency/step
      histograms, CAS counters and trace events, armed globally via
      [Repro_obs.Metrics.set_enabled] / [Repro_obs.Trace.set_enabled].
    - {!Algorithm} — the functor over {!Memory_intf.S}, for embedding the
      algorithm over a custom shared memory. *)

module Find_policy = Find_policy
module Memory_order = Memory_order
module Memory_intf = Memory_intf
module Stats = Dsu_stats
module Obs = Dsu_obs

module Contention = Dsu_contention
(** Per-site/per-node CAS contention attribution (armed independently of
    metrics and tracing); exports the [dsu-contention/v1] hot-node
    report. *)

module Algorithm = Dsu_algorithm
module Native_memory = Native_memory
module Native = Dsu_native

module Boxed_memory = Boxed_memory
(** The pre-flat-layout memory ([int Atomic.t array]); baseline side of the
    memory-layout A/B benchmarks. *)

(** The algorithm over {!Boxed_memory} — benchmarking comparator only; use
    {!Native} for real work. *)
module Boxed = Dsu_boxed
module Sim = Dsu_sim
module Growable = Growable

module Growable_unbounded = Growable_unbounded
(** The capacity-free [MakeSet] variant: the universe grows without bound
    (Section 3 remark); set operations stay lock-free. *)

module Rank = Rank_dsu
(** The concurrent linking-by-rank variant of Section 7, which needs no
    independence assumption; see experiment E15. *)

module Packed = Packed_dsu
(** Linking by rank over a bit-packed [(root flag, rank, parent)] word —
    the shift/mask layout that replaces {!Rank}'s division-based packing;
    supports every {!Find_policy} compaction rule. *)

module Plan = Dsu_plan

(** Plan-dispatched backend as a first-class closure record. *)
module Driver = Dsu_driver
(** First-class configuration points of the plan space (linking rule x
    compaction x memory order x backoff x layout), with the registry swept
    by [Harness.Autotune] and the [--plan] CLI spec syntax. *)
