(** The concurrent [Find] variants.

    The first three are the paper's (Algorithms 1, 4, 5):

    - {!No_compaction} follows parent pointers without modifying them
      (Algorithm 1); analyzed in Section 4 (Theorem 4.3).
    - {!One_try_splitting} tries once per visited node to swing its parent to
      its grandparent with a [Cas] (Algorithm 4); analyzed in Theorem 5.2.
    - {!Two_try_splitting} retries each such update once before moving on
      (Algorithm 5); achieves the paper's best bound (Theorem 5.1), tight by
      Theorem 5.4.

    {!Compression} is the concurrent two-pass compression whose existence
    Section 6 conjectures ("we conjecture that appropriate concurrent
    versions of compression will have the bounds of Theorems 5.1 and 5.2"):
    the first pass walks to the root, the second swings every path node's
    parent to it with a [Cas] from the parent observed in the first pass —
    which keeps every update an ancestor move in the union forest, so the
    Lemma 3.1 correctness argument goes through unchanged.  Experiment E14
    measures the conjecture.

    {!Halving} is concurrent path halving (van der Weide's rule, the
    remaining cell of the Alistarh–Fedorov–Koval compaction grid): each
    visited node tries once to swing its parent to its grandparent — the
    same [Cas] as one-try splitting — but the traversal then advances
    {e two} hops, to the grandparent, so each pass touches half the path.
    Every update is still an ancestor move, so Lemma 3.1 applies
    unchanged. *)

type t =
  | No_compaction
  | One_try_splitting
  | Two_try_splitting
  | Halving
  | Compression

let all =
  [ No_compaction; One_try_splitting; Two_try_splitting; Halving; Compression ]

let to_string = function
  | No_compaction -> "none"
  | One_try_splitting -> "one-try"
  | Two_try_splitting -> "two-try"
  | Halving -> "halving"
  | Compression -> "compression"

let of_string = function
  | "none" -> Some No_compaction
  | "one-try" -> Some One_try_splitting
  | "two-try" -> Some Two_try_splitting
  | "halving" -> Some Halving
  | "compression" -> Some Compression
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = a = b
