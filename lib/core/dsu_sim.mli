(** The same concurrent DSU running inside the APRAM simulator.

    Operations called from within simulated process bodies perform their
    shared-memory accesses through {!Apram.Process}, so the scheduler
    interleaves them at single-access granularity and charges each access as
    one step — the paper's work metric, measured exactly.

    Typical use:

    {[
      let spec = Dsu_sim.spec ~n:1024 ~seed:7 () in
      let handle = Dsu_sim.handle spec in
      let bodies = [| ops for process 0; ops for process 1 |] in
      let outcome =
        Apram.Sim.run_ops
          ~mem_size:(Dsu_sim.mem_size spec)
          ~init:(Dsu_sim.init spec)
          ~sched:(Apram.Scheduler.random ~seed:3)
          bodies
      in
      ...
    ]} *)

type spec = {
  n : int;
  policy : Find_policy.t;
  early : bool;
  ids : int array;  (** the random total order; [ids.(i)] = priority of node [i] *)
}

val spec :
  ?policy:Find_policy.t -> ?early:bool -> ?ids:int array -> n:int -> seed:int -> unit -> spec
(** Build a specification; [ids] defaults to a random permutation drawn from
    [seed].  Supplying [ids] explicitly lets tests fix the linking order. *)

val mem_size : spec -> int
(** Cells of simulated shared memory the DSU needs (= [n]; cell [i] is node
    [i]'s parent). *)

val init : spec -> int -> int
(** Initial memory contents: every node its own parent. *)

type t
(** A handle usable from inside simulated processes. *)

val handle : ?on_link:(child:int -> parent:int -> unit) -> spec -> t
(** The handle also carries a {!Dsu_stats.t}; counter updates are host-local
    and cost no simulated steps. *)

val stats : t -> Dsu_stats.snapshot

val same_set : t -> int -> int -> bool
(** Must be called from inside a simulated process. *)

val unite : t -> int -> int -> unit
val find : t -> int -> int

val same_set_op : t -> int -> int -> unit -> unit
(** A closure for {!Apram.Sim.run_ops} that runs [same_set] and records the
    operation in the history (for the linearizability checker). *)

val unite_op : t -> int -> int -> unit -> unit
val find_op : t -> int -> unit -> unit

val roots_of_memory : spec -> Apram.Memory.t -> int array
(** Post-mortem: the root of every node in the final memory (host-side
    pointer chasing; no simulated steps). *)

val sets_of_memory : spec -> Apram.Memory.t -> int list list
(** Post-mortem: the partition as sorted classes, for comparison against a
    reference implementation. *)
