module Rng = Repro_util.Rng
module Fi = Repro_fault.Inject

(* A growable array of atomic cells: an immutable directory of fixed-size
   chunks, republished through an [Atomic] on growth.  Readers snapshot the
   directory with one atomic load; a snapshot taken before a growth still
   covers every index allocated at snapshot time, so reads are lock-free. *)
module Chunked = struct
  type t = {
    chunk_size : int;
    directory : int Atomic.t array array Atomic.t;
    grow_lock : Mutex.t;
    init : base:int -> int -> int;  (** initial value of absolute cell [base + j] *)
  }

  let create ~chunk_size ~init =
    if chunk_size < 1 then invalid_arg "Growable_unbounded: chunk_size must be >= 1";
    { chunk_size; directory = Atomic.make [||]; grow_lock = Mutex.create (); init }

  let capacity t = Array.length (Atomic.get t.directory) * t.chunk_size

  (* Locate cell [i], re-fetching the directory if the snapshot is stale.
     A traversal can only reach indices of fully created elements (their
     chunk was published before their index became reachable through any
     parent pointer), so a fresh directory load always covers [i]: the
     sequentially consistent order puts the directory publication before
     the parent write the reader just observed.

     The retry is therefore expected to resolve after at most one
     republication — but an index that was {e never} created (a caller
     bug) would otherwise spin forever.  The slow path tells the two
     apart: once it can take the growth lock, no growth is in progress,
     so the directory it sees is definitive and a still-uncovered index
     is an error, reported rather than spun on. *)
  let rec cell t i =
    let dir = Atomic.get t.directory in
    if i < Array.length dir * t.chunk_size then
      dir.(i / t.chunk_size).(i mod t.chunk_size)
    else if Mutex.try_lock t.grow_lock then begin
      let cap = capacity t in
      Mutex.unlock t.grow_lock;
      if i >= cap then
        invalid_arg
          (Printf.sprintf
             "Growable_unbounded: cell %d out of capacity %d with no growth \
              in progress"
             i cap)
      else cell t i
    end
    else begin
      (* A grower holds the lock: wait for it to publish, then re-check. *)
      Domain.cpu_relax ();
      cell t i
    end

  let get t i = Atomic.get (cell t i)
  let set t i v = Atomic.set (cell t i) v
  let cas t i expected desired = Atomic.compare_and_set (cell t i) expected desired

  (* Make sure cell [i] exists; amortized O(1), takes the lock only when a
     new chunk is actually needed. *)
  let ensure t i =
    if i >= capacity t then begin
      Mutex.lock t.grow_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.grow_lock)
        (fun () ->
          while i >= capacity t do
            let dir = Atomic.get t.directory in
            let base = Array.length dir * t.chunk_size in
            let chunk =
              Array.init t.chunk_size (fun j -> Atomic.make (t.init ~base j))
            in
            (* A crash at either site dies inside the [Fun.protect], so the
               growth lock is released and readers spin-bounded on it see a
               definitive directory; pre kills before the new chunk is
               visible (allocation lost, never reachable), post kills after
               publication (chunk live, grower dead). *)
            if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Chunk_publish_pre;
            Atomic.set t.directory (Array.append dir [| chunk |]);
            if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Chunk_publish_post
          done)
    end

  let chunk_count t = Array.length (Atomic.get t.directory)
end

module Memory = struct
  type t = Chunked.t

  let read = Chunked.get
  let cas = Chunked.cas

  (* Cells are boxed [Atomic.t]s inside chunks: no cheaper weak CAS exists
     (the strong one is a valid weak CAS), and prefetching would only pull
     the box pointer, so it is a no-op. *)
  let cas_weak = Chunked.cas
  let prefetch _ _ = ()
end

module Algo = Dsu_algorithm.Make (Memory)

type t = {
  parents : Chunked.t;
  prios : Chunked.t;
  next : int Atomic.t;
  rng_state : int Atomic.t;
  algo : Algo.t;
}

let mix64 z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let create ?policy ?early ?(collect_stats = false) ?(chunk_size = 1024)
    ?(seed = 0x51ed2701) () =
  let parents = Chunked.create ~chunk_size ~init:(fun ~base j -> base + j) in
  let prios = Chunked.create ~chunk_size ~init:(fun ~base:_ _ -> 0) in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  let algo =
    (* The functor needs a bound for its range checks; the universe is
       unbounded, so give it the largest representable one and do real
       bounds checking against [cardinal] here. *)
    Algo.create ?policy ?early ?stats ~mem:parents ~n:max_int
      ~prio:(fun i -> Chunked.get prios i)
      ()
  in
  { parents; prios; next = Atomic.make 0; rng_state = Atomic.make seed; algo }

let cardinal t = Atomic.get t.next

let make_set t =
  let slot = Atomic.fetch_and_add t.next 1 in
  Chunked.ensure t.parents slot;
  Chunked.ensure t.prios slot;
  let r = Atomic.fetch_and_add t.rng_state 0x632be59bd9b4e019 in
  (* After both [ensure]s: storage for the slot exists, so a crash here
     leaves a live element with the default priority 0 (tolerated by the
     tie-break), never a claimed slot without storage. *)
  if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Make_set_publish;
  Chunked.set t.prios slot (mix64 r);
  slot

let check t x =
  if x < 0 || x >= cardinal t then
    invalid_arg "Growable_unbounded: element was not created"

let same_set t x y =
  check t x;
  check t y;
  Algo.same_set t.algo x y

let unite t x y =
  check t x;
  check t y;
  Algo.unite t.algo x y

let find t x =
  check t x;
  Algo.find t.algo x

let priority t x =
  check t x;
  Chunked.get t.prios x

let stats t =
  match Algo.stats t.algo with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s

let count_sets t =
  let c = ref 0 in
  for i = 0 to cardinal t - 1 do
    if Chunked.get t.parents i = i then incr c
  done;
  !c

let chunk_count t = Chunked.chunk_count t.parents
