(** Per-site, per-node contention attribution for the DSU hot paths.

    When armed ({!set_enabled}; folds into [Repro_obs.Switch.any], so the
    disarmed cost at an instrumentation point stays the existing one
    atomic load and branch), every linking and splitting/compression CAS
    outcome is recorded against its {!Repro_fault.Site} label
    ([Link_cas] / [Split_cas]), and every {e failed} CAS additionally
    against the node whose parent pointer was contended.  The paper's
    work argument (Lemma 3.1: every CAS happens on a current or former
    root's pointer as the tree is climbed) predicts failures concentrate
    at roots; {!root_failure_share} and {!heatmap} check that claim
    empirically, the signal the Alistarh–Fedorov–Koval study uses to
    separate compaction/linking plans.

    Recording is per-domain (DLS state on a global registration list, the
    {!Repro_obs.Trace} pattern): lock-free, no cross-domain sharing on
    the hot path.  {!report} merges; merging while writers run is racy
    like every other telemetry read — quiesce first for exact counts. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {2 Recording} — called by {!Dsu_obs} when armed. *)

val record_link : node:int -> ok:bool -> unit
(** Outcome of a linking CAS on [node]'s parent pointer ([node] was a
    root when the CAS was attempted). *)

val record_split : node:int -> ok:bool -> unit
(** Outcome of a splitting/compression CAS on [node]'s parent pointer. *)

val record_retry : unit -> unit
(** An extra iteration of a SameSet/Unite outer loop. *)

val reset : unit -> unit
(** Zero all domains' state (racy against concurrent writers). *)

(** {2 Reporting} *)

type site_stat = { site : Repro_fault.Site.t; ok : int; fail : int }

type report = {
  sites : site_stat list;
      (** [Link_cas] and [Split_cas], in that order. *)
  outer_retries : int;
  node_failures : (int * int) list;
      (** [(node, failed-CAS count)], descending by count, node id
          breaking ties. *)
}

val report : unit -> report

val total_failures : report -> int
val hot_nodes : ?top:int -> report -> (int * int) list
(** The [top] (default 16) most-contended nodes. *)

val heatmap : buckets:int -> n:int -> report -> int array
(** Failure counts folded into [buckets] equal node-id ranges over the
    universe [\[0, n)]. *)

val root_failure_share : is_root:(int -> bool) -> report -> float
(** Fraction of CAS failures that landed on nodes that are roots {e at
    report time} (a current root was necessarily a root when contended;
    a since-linked node shifts mass away from this share, so it is a
    lower bound on "failures at then-roots").  [0.] when no failures. *)

val to_json :
  ?top:int ->
  ?is_root:(int -> bool) ->
  ?heatmap_buckets:int ->
  ?n:int ->
  report ->
  Repro_obs.Json.t
(** The [dsu-contention/v1] document: site stats, outer retries, hot
    nodes (annotated with [is_root] when given), plus the heatmap when
    both [heatmap_buckets] and [n] are given and positive. *)
