(** The original {!Memory_intf.S} instance over [int Atomic.t array]
    ({!Repro_util.Atomic_array}): every cell is a separately boxed heap
    block, so each access pays a double indirection.

    Kept as the baseline side of the memory-layout A/B comparison — see
    {!Dsu_boxed}, [bench/main.exe] ([native/boxed-*], [micro/*-boxed]) and
    the [--parallel] sweep's [boxed] layout.  New code should use
    {!Native_memory} (flat) instead. *)

type t = Repro_util.Atomic_array.t

let read = Repro_util.Atomic_array.get
let cas = Repro_util.Atomic_array.cas

(* No cheaper weak CAS over [Atomic.t]; the strong one is a valid weak
   CAS (it just never fails spuriously).  Prefetching a boxed cell would
   only pull in the box pointer, so it is a no-op. *)
let cas_weak = cas
let prefetch _ _ = ()
