(** Operation counters for the concurrent DSU.

    Counters are [Atomic] so they can be shared across domains; enabling them
    costs one fetch-and-add per counted event, so native throughput
    benchmarks run with counting disabled while all work-measurement
    experiments run with it enabled.  A {!snapshot} is an immutable copy used
    by reports. *)

type t

type snapshot = {
  same_set_calls : int;
  unite_calls : int;
  find_calls : int;  (** invocations of the internal [Find] *)
  find_iters : int;  (** parent-pointer traversal steps inside finds *)
  compaction_cas : int;  (** splitting [Cas] attempts *)
  compaction_cas_failures : int;
  link_cas : int;  (** linking [Cas] attempts in [Unite] *)
  link_cas_failures : int;
  links : int;  (** successful links, i.e. unions that changed the partition *)
  outer_retries : int;  (** extra iterations of [SameSet]/[Unite] loops *)
}

val create : unit -> t

val reset : t -> unit
(** Zero every counter.  [reset] racing a concurrent {!snapshot} is safe
    (each field is an [Atomic]) but not atomic as a whole: the snapshot can
    observe a torn mix of pre- and post-reset fields.  Quiesce writers
    first when exact figures matter. *)

val snapshot : t -> snapshot
val zero : snapshot
val add : snapshot -> snapshot -> snapshot
val sub : snapshot -> snapshot -> snapshot
(** Pointwise difference, for measuring a phase between two snapshots. *)

val total_work : snapshot -> int
(** A single work figure: find iterations plus all [Cas] attempts — the
    quantity the paper's Theorems 4.3, 5.1, 5.2 bound. *)

val pp : Format.formatter -> snapshot -> unit

val to_json : snapshot -> string
(** The snapshot as one JSON object (field names as in the record, plus
    ["total_work"]); consumed by the telemetry exporters in
    [bin/dsu_workload] and [bench/main] so the counters are
    machine-readable, not printf-only. *)

(**/**)

(* Incrementers used by the algorithm; not part of the public API. *)
val incr_same_set : t -> unit
val incr_unite : t -> unit
val incr_find : t -> unit
val incr_find_iter : t -> unit
val incr_compaction_cas : t -> ok:bool -> unit
val incr_link_cas : t -> ok:bool -> unit
val incr_outer_retry : t -> unit
