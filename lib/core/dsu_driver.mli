(** A {!Dsu_plan}-dispatched DSU backend as a first-class value: one
    layout dispatch at [create] time, then a record of closures over the
    constructed structure.  Lets plan-parametric subsystems (the
    connectivity pipeline, batch services) stay agnostic of the layout
    without repeating the [Harness.Scalability]-style match.  The extra
    indirect call is negligible on the batch entry points; keep per-op
    hot loops layout-matched if the last few percent matter. *)

type t = {
  n : int;
  plan : Dsu_plan.t;
  find : int -> int;
  same_set : int -> int -> bool;
  unite : int -> int -> unit;
  unite_batch : int array -> int array -> unit;
  same_set_batch : int array -> int array -> bool array;
  find_batch : int array -> int array;
  count_sets : unit -> int;  (** Quiescent only. *)
  parents_snapshot : unit -> int array;  (** Quiescent only. *)
  stats : unit -> Dsu_stats.snapshot option;
      (** [None] unless created with [~collect_stats:true]. *)
}

val create : ?plan:Dsu_plan.t -> ?seed:int -> ?collect_stats:bool -> int -> t
(** [create n] builds the structure the plan names ([plan] defaults to
    {!Dsu_plan.default}, i.e. the flat native layout).  [seed] feeds the
    random priority permutation on the id-linking layouts (ignored by
    [packed], whose rank linking is seedless).
    @raise Invalid_argument if {!Dsu_plan.validate} rejects the plan, or
    [n < 1] (packed additionally bounds [n] by its parent-field width). *)
