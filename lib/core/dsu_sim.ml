module Rng = Repro_util.Rng

module Sim_memory = struct
  type t = unit

  let read () a = Apram.Process.read a
  let cas () a expected desired = Apram.Process.cas a expected desired

  (* The simulator counts steps, not fences: a weak CAS costs the same
     simulated step as a strong one, and prefetch is not a memory step at
     all. *)
  let cas_weak = cas
  let prefetch () _ = ()
end

module A = Dsu_algorithm.Make (Sim_memory)

type spec = { n : int; policy : Find_policy.t; early : bool; ids : int array }

let spec ?(policy = Find_policy.Two_try_splitting) ?(early = false) ?ids ~n ~seed () =
  if n < 1 then invalid_arg "Dsu_sim.spec: n must be >= 1";
  let ids =
    match ids with Some ids -> ids | None -> Rng.permutation (Rng.create seed) n
  in
  if Array.length ids <> n then invalid_arg "Dsu_sim.spec: ids length mismatch";
  { n; policy; early; ids }

let mem_size spec = spec.n

let init _spec i = i

type t = A.t

let handle ?on_link (spec : spec) =
  let stats = Dsu_stats.create () in
  let ids = spec.ids in
  A.create ~policy:spec.policy ~early:spec.early ~stats ?on_link ~mem:()
    ~n:spec.n ~prio:(fun i -> ids.(i)) ()

let stats t =
  match A.stats t with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s

let same_set = A.same_set
let unite = A.unite
let find = A.find

let same_set_op t x y () =
  Apram.Process.record_invoke ~name:"same_set" ~args:[ x; y ];
  let r = A.same_set t x y in
  Apram.Process.record_return (if r then 1 else 0)

let unite_op t x y () =
  Apram.Process.record_invoke ~name:"unite" ~args:[ x; y ];
  A.unite t x y;
  Apram.Process.record_return 0

let find_op t x () =
  Apram.Process.record_invoke ~name:"find" ~args:[ x ];
  let r = A.find t x in
  Apram.Process.record_return r

let root_in_memory memory x =
  let rec loop u =
    let p = Apram.Memory.peek memory u in
    if p = u then u else loop p
  in
  loop x

let roots_of_memory (spec : spec) memory =
  Array.init spec.n (fun i -> root_in_memory memory i)

let sets_of_memory (spec : spec) memory =
  let roots = roots_of_memory spec memory in
  let classes : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  for i = spec.n - 1 downto 0 do
    let r = roots.(i) in
    let existing = Option.value ~default:[] (Hashtbl.find_opt classes r) in
    Hashtbl.replace classes r (i :: existing)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) classes []
  |> List.map (List.sort compare)
  |> List.sort compare
