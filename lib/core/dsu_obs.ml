module M = Repro_obs.Metrics
module T = Repro_obs.Trace
module Clock = Repro_obs.Clock

let armed = Repro_obs.Switch.any

(* Instruments (registered in the default registry at module init; names
   are catalogued in docs/OBSERVABILITY.md, with the paper quantity each
   one measures). *)

(* Latency and step distributions are HDR instruments (log-linear
   buckets, ≤1% quantile error) so the exported p99/p999 are usable;
   the remaining instruments are plain counters. *)
let find_latency =
  M.hdr_histogram
    ~help:"wall-clock latency of each internal Find, nanoseconds"
    "dsu_find_latency_ns"

let unite_latency =
  M.hdr_histogram
    ~help:"wall-clock latency of each Dsu.Native.unite, nanoseconds"
    "dsu_unite_latency_ns"

let same_set_latency =
  M.hdr_histogram
    ~help:"wall-clock latency of each Dsu.Native.same_set, nanoseconds"
    "dsu_same_set_latency_ns"

let find_iters =
  M.hdr_histogram
    ~help:
      "parent-pointer steps per Find (the w.h.p. O(log n) quantity of \
       Theorem 4.3)"
    "dsu_find_iters"

let finds_total = M.counter ~help:"internal Find invocations" "dsu_find_total"

let ops_total =
  M.counter ~help:"top-level operations applied through Dsu.Native"
    "dsu_ops_total"

let link_cas_ok =
  M.counter ~help:"successful linking Cas attempts (= links)"
    "dsu_link_cas_ok_total"

let link_cas_fail =
  M.counter ~help:"failed linking Cas attempts" "dsu_link_cas_fail_total"

let compaction_cas_ok =
  M.counter ~help:"successful splitting/compression Cas attempts"
    "dsu_compaction_cas_ok_total"

let compaction_cas_fail =
  M.counter ~help:"failed splitting/compression Cas attempts"
    "dsu_compaction_cas_fail_total"

let outer_retries =
  M.counter ~help:"extra iterations of the SameSet/Unite outer loops"
    "dsu_outer_retries_total"

(* Per-domain scratch for the open find window: iteration count and start
   timestamp.  One window per domain suffices because a find never nests
   inside another find on the same domain; under the APRAM simulator many
   simulated processes interleave on one domain, so per-find attribution
   there is approximate (the simulator's own op_costs are the exact
   figures) — see docs/OBSERVABILITY.md. *)
type scratch = { mutable active : bool; mutable iters : int; mutable t0 : int }

let scratch_key =
  Domain.DLS.new_key (fun () -> { active = false; iters = 0; t0 = 0 })

let find_begin node =
  let s = Domain.DLS.get scratch_key in
  s.active <- true;
  s.iters <- 0;
  s.t0 <- Clock.now_ns ();
  M.incr finds_total;
  T.emit (T.Find_start { node })

let find_end node root =
  let s = Domain.DLS.get scratch_key in
  if s.active then begin
    s.active <- false;
    M.observe_hdr find_iters s.iters;
    M.observe_hdr find_latency (Clock.now_ns () - s.t0);
    T.emit (T.Find_end { node; root; iters = s.iters })
  end

let on_find_iter () =
  let s = Domain.DLS.get scratch_key in
  if s.active then s.iters <- s.iters + 1

let contention_on () = Atomic.get Repro_obs.Switch.contention

let on_link_cas ~node ~ok =
  M.incr (if ok then link_cas_ok else link_cas_fail);
  if contention_on () then Dsu_contention.record_link ~node ~ok;
  T.emit (T.Link_cas { ok })

let on_compaction_cas ~node ~ok =
  M.incr (if ok then compaction_cas_ok else compaction_cas_fail);
  if contention_on () then Dsu_contention.record_split ~node ~ok;
  T.emit (T.Compaction_cas { ok })

let on_outer_retry () =
  M.incr outer_retries;
  if contention_on () then Dsu_contention.record_retry ();
  T.emit T.Outer_retry

let now_ns = Clock.now_ns

let record_op_latency h t0 =
  M.incr ops_total;
  M.observe_hdr h (Clock.now_ns () - t0)

let record_unite_latency t0 = record_op_latency unite_latency t0
let record_same_set_latency t0 = record_op_latency same_set_latency t0

let record_find_op () = M.incr ops_total
