module Flat_atomic_array = Repro_util.Flat_atomic_array
module Rng = Repro_util.Rng

module A = Dsu_algorithm.Make (Native_memory)

type t = A.t

(* [fetch_and_add], not a plain [ref] + [incr]: [create] may be called from
   several domains at once, and racing increments could hand two structures
   the same default seed (identical priority permutations defeat the
   randomized-linking analysis). *)
let self_seed = Atomic.make 0x4d595df4d0f33173

let create ?policy ?early ?backoff ?memory_order ?(collect_stats = false)
    ?on_link ?seed ?(padded = false) n =
  if n < 1 then invalid_arg "Dsu_native.create: n must be >= 1";
  let seed =
    match seed with
    | Some s -> s
    | None -> 1 + Atomic.fetch_and_add self_seed 1
  in
  let ids = Rng.permutation (Rng.create seed) n in
  let mem = Native_memory.make ~padded ?order:memory_order n (fun i -> i) in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  A.create ?policy ?early ?backoff ?stats ?on_link ~mem ~n
    ~prio:(fun i -> ids.(i))
    ()

let n = A.n

(* Top-level operations time themselves when telemetry is armed
   (dsu_unite_latency_ns / dsu_same_set_latency_ns / dsu_ops_total);
   per-find latency is captured inside the algorithm's find itself. *)

let same_set t x y =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    let r = A.same_set t x y in
    Dsu_obs.record_same_set_latency t0;
    r
  end
  else A.same_set t x y

let unite t x y =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    A.unite t x y;
    Dsu_obs.record_unite_latency t0
  end
  else A.unite t x y

let find t x =
  if Atomic.get Dsu_obs.armed then Dsu_obs.record_find_op ();
  A.find t x

let unite_batch t xs ys =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    A.unite_batch t xs ys;
    Dsu_obs.record_unite_latency t0
  end
  else A.unite_batch t xs ys

let same_set_batch t xs ys =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    let r = A.same_set_batch t xs ys in
    Dsu_obs.record_same_set_latency t0;
    r
  end
  else A.same_set_batch t xs ys

let find_batch t xs =
  if Atomic.get Dsu_obs.armed then Dsu_obs.record_find_op ();
  A.find_batch t xs

let id = A.id
let parent_of = A.parent_of
let is_root = A.is_root
let count_sets = A.count_sets

let stats t = match A.stats t with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s

let reset_stats t = match A.stats t with None -> () | Some s -> Dsu_stats.reset s

let invariant_violations = A.invariant_violations
let memory_order t = Native_memory.order (A.mem t)

let parents_snapshot t =
  Flat_atomic_array.snapshot (A.mem t).Native_memory.arr

let sets t =
  let size = A.n t in
  let root = Array.init size (fun i -> A.find t i) in
  let classes : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  for i = size - 1 downto 0 do
    let r = root.(i) in
    Hashtbl.replace classes r (i :: Option.value ~default:[] (Hashtbl.find_opt classes r))
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) classes []
  |> List.map (List.sort compare)
  |> List.sort compare

type snapshot = { parents : int array; ids : int array }

let snapshot t =
  { parents = parents_snapshot t; ids = Array.init (A.n t) (fun i -> A.id t i) }

let ids_snapshot t = Array.init (A.n t) (fun i -> A.id t i)

(* Fuzzy (non-quiescent) scan: per-cell acquire loads racing the mutators,
   each preceded by a [Snapshot_read] fault site so chaos can crash a
   snapshotter mid-scan.  Sound by Lemma 3.1: parents only ever move to
   proper ancestors, so every scanned edge was a real ancestor edge at the
   instant its cell was read.  The ids are immutable and need no care. *)
module Fi = Repro_fault.Inject

let snapshot_fuzzy t =
  let arr = (A.mem t).Native_memory.arr in
  let parents =
    Array.init (A.n t) (fun i ->
        if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Snapshot_read;
        Flat_atomic_array.get_acquire arr i)
  in
  (parents, ids_snapshot t)

let restore ?policy ?early ?backoff ?memory_order ?(collect_stats = false)
    ?on_link ?(padded = false) (s : snapshot) =
  let n = Array.length s.parents in
  if n < 1 || Array.length s.ids <> n then
    invalid_arg "Dsu_native.restore: malformed snapshot";
  let ids = Array.copy s.ids in
  let seen = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n || seen.(id) then
        invalid_arg "Dsu_native.restore: ids are not a permutation";
      seen.(id) <- true)
    ids;
  Array.iteri
    (fun i p ->
      if p < 0 || p >= n then invalid_arg "Dsu_native.restore: parent out of range";
      if p <> i && ids.(p) <= ids.(i) then
        invalid_arg "Dsu_native.restore: parents violate the linking order")
    s.parents;
  let mem =
    Native_memory.make ~padded ?order:memory_order n (fun i -> s.parents.(i))
  in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  A.create ?policy ?early ?backoff ?stats ?on_link ~mem ~n ~prio:(fun i -> ids.(i)) ()

let of_snapshot ?policy ?early ?backoff ?memory_order ?collect_stats ?on_link
    ?padded ~parents ~ids () =
  restore ?policy ?early ?backoff ?memory_order ?collect_stats ?on_link ?padded
    { parents; ids }

let snapshot_to_string (s : snapshot) =
  let buf = Buffer.create (Array.length s.parents * 8) in
  Buffer.add_string buf (string_of_int (Array.length s.parents));
  Array.iter (fun p -> Buffer.add_char buf ' '; Buffer.add_string buf (string_of_int p)) s.parents;
  Array.iter (fun id -> Buffer.add_char buf ' '; Buffer.add_string buf (string_of_int id)) s.ids;
  Buffer.contents buf

let snapshot_of_string text =
  match String.split_on_char ' ' (String.trim text) with
  | [] -> invalid_arg "Dsu_native.snapshot_of_string: empty"
  | count :: rest -> (
    match int_of_string_opt count with
    | None -> invalid_arg "Dsu_native.snapshot_of_string: bad header"
    | Some n ->
      if n < 1 || List.length rest <> 2 * n then
        invalid_arg "Dsu_native.snapshot_of_string: wrong field count";
      let values =
        List.map
          (fun f ->
            match int_of_string_opt f with
            | Some v -> v
            | None -> invalid_arg "Dsu_native.snapshot_of_string: bad integer")
          rest
      in
      let arr = Array.of_list values in
      { parents = Array.sub arr 0 n; ids = Array.sub arr n n })
