type t = {
  same_set_calls : int Atomic.t;
  unite_calls : int Atomic.t;
  find_calls : int Atomic.t;
  find_iters : int Atomic.t;
  compaction_cas : int Atomic.t;
  compaction_cas_failures : int Atomic.t;
  link_cas : int Atomic.t;
  link_cas_failures : int Atomic.t;
  links : int Atomic.t;
  outer_retries : int Atomic.t;
}

type snapshot = {
  same_set_calls : int;
  unite_calls : int;
  find_calls : int;
  find_iters : int;
  compaction_cas : int;
  compaction_cas_failures : int;
  link_cas : int;
  link_cas_failures : int;
  links : int;
  outer_retries : int;
}

let create () : t =
  {
    same_set_calls = Atomic.make 0;
    unite_calls = Atomic.make 0;
    find_calls = Atomic.make 0;
    find_iters = Atomic.make 0;
    compaction_cas = Atomic.make 0;
    compaction_cas_failures = Atomic.make 0;
    link_cas = Atomic.make 0;
    link_cas_failures = Atomic.make 0;
    links = Atomic.make 0;
    outer_retries = Atomic.make 0;
  }

let reset (t : t) =
  Atomic.set t.same_set_calls 0;
  Atomic.set t.unite_calls 0;
  Atomic.set t.find_calls 0;
  Atomic.set t.find_iters 0;
  Atomic.set t.compaction_cas 0;
  Atomic.set t.compaction_cas_failures 0;
  Atomic.set t.link_cas 0;
  Atomic.set t.link_cas_failures 0;
  Atomic.set t.links 0;
  Atomic.set t.outer_retries 0

let snapshot (t : t) : snapshot =
  {
    same_set_calls = Atomic.get t.same_set_calls;
    unite_calls = Atomic.get t.unite_calls;
    find_calls = Atomic.get t.find_calls;
    find_iters = Atomic.get t.find_iters;
    compaction_cas = Atomic.get t.compaction_cas;
    compaction_cas_failures = Atomic.get t.compaction_cas_failures;
    link_cas = Atomic.get t.link_cas;
    link_cas_failures = Atomic.get t.link_cas_failures;
    links = Atomic.get t.links;
    outer_retries = Atomic.get t.outer_retries;
  }

let zero =
  {
    same_set_calls = 0;
    unite_calls = 0;
    find_calls = 0;
    find_iters = 0;
    compaction_cas = 0;
    compaction_cas_failures = 0;
    link_cas = 0;
    link_cas_failures = 0;
    links = 0;
    outer_retries = 0;
  }

let map2 f (a : snapshot) (b : snapshot) : snapshot =
  {
    same_set_calls = f a.same_set_calls b.same_set_calls;
    unite_calls = f a.unite_calls b.unite_calls;
    find_calls = f a.find_calls b.find_calls;
    find_iters = f a.find_iters b.find_iters;
    compaction_cas = f a.compaction_cas b.compaction_cas;
    compaction_cas_failures = f a.compaction_cas_failures b.compaction_cas_failures;
    link_cas = f a.link_cas b.link_cas;
    link_cas_failures = f a.link_cas_failures b.link_cas_failures;
    links = f a.links b.links;
    outer_retries = f a.outer_retries b.outer_retries;
  }

let add = map2 ( + )
let sub = map2 ( - )

let total_work (s : snapshot) = s.find_iters + s.compaction_cas + s.link_cas

let to_json (s : snapshot) =
  Printf.sprintf
    {|{"same_set_calls":%d,"unite_calls":%d,"find_calls":%d,"find_iters":%d,"compaction_cas":%d,"compaction_cas_failures":%d,"link_cas":%d,"link_cas_failures":%d,"links":%d,"outer_retries":%d,"total_work":%d}|}
    s.same_set_calls s.unite_calls s.find_calls s.find_iters s.compaction_cas
    s.compaction_cas_failures s.link_cas s.link_cas_failures s.links
    s.outer_retries (total_work s)

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "@[<v>same_set=%d unite=%d finds=%d@ find_iters=%d@ compaction_cas=%d \
     (failed %d)@ link_cas=%d (failed %d) links=%d@ outer_retries=%d \
     total_work=%d@]"
    s.same_set_calls s.unite_calls s.find_calls s.find_iters s.compaction_cas
    s.compaction_cas_failures s.link_cas s.link_cas_failures s.links
    s.outer_retries (total_work s)

let incr_same_set (t : t) = Atomic.incr t.same_set_calls
let incr_unite (t : t) = Atomic.incr t.unite_calls
let incr_find (t : t) = Atomic.incr t.find_calls
let incr_find_iter (t : t) = Atomic.incr t.find_iters

let incr_compaction_cas (t : t) ~ok =
  Atomic.incr t.compaction_cas;
  if not ok then Atomic.incr t.compaction_cas_failures

let incr_link_cas (t : t) ~ok =
  Atomic.incr t.link_cas;
  if ok then Atomic.incr t.links else Atomic.incr t.link_cas_failures

let incr_outer_retry (t : t) = Atomic.incr t.outer_retries
