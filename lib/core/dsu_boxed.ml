module Atomic_array = Repro_util.Atomic_array
module Rng = Repro_util.Rng

module A = Dsu_algorithm.Make (Boxed_memory)

type t = A.t

let self_seed = Atomic.make 0x2545f4914f6cdd1d

let create ?policy ?early ?(collect_stats = false) ?seed n =
  if n < 1 then invalid_arg "Dsu_boxed.create: n must be >= 1";
  let seed =
    match seed with
    | Some s -> s
    | None -> 1 + Atomic.fetch_and_add self_seed 1
  in
  let ids = Rng.permutation (Rng.create seed) n in
  let mem = Atomic_array.make n (fun i -> i) in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  A.create ?policy ?early ?stats ~mem ~n ~prio:(fun i -> ids.(i)) ()

let n = A.n

(* The same armed-telemetry wrappers as {!Dsu_native}, so layout A/B runs
   compare memory layouts only, not instrumentation overhead. *)

let same_set t x y =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    let r = A.same_set t x y in
    Dsu_obs.record_same_set_latency t0;
    r
  end
  else A.same_set t x y

let unite t x y =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    A.unite t x y;
    Dsu_obs.record_unite_latency t0
  end
  else A.unite t x y

let find t x =
  if Atomic.get Dsu_obs.armed then Dsu_obs.record_find_op ();
  A.find t x

let id = A.id
let parent_of = A.parent_of
let is_root = A.is_root
let count_sets = A.count_sets
let invariant_violations = A.invariant_violations
let parents_snapshot t = Atomic_array.snapshot (A.mem t)

let stats t = match A.stats t with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s
