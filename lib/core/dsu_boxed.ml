module Atomic_array = Repro_util.Atomic_array
module Rng = Repro_util.Rng

module A = Dsu_algorithm.Make (Boxed_memory)

type t = A.t

let self_seed = Atomic.make 0x2545f4914f6cdd1d

let create ?policy ?early ?backoff ?(collect_stats = false) ?on_link ?seed n =
  if n < 1 then invalid_arg "Dsu_boxed.create: n must be >= 1";
  let seed =
    match seed with
    | Some s -> s
    | None -> 1 + Atomic.fetch_and_add self_seed 1
  in
  let ids = Rng.permutation (Rng.create seed) n in
  let mem = Atomic_array.make n (fun i -> i) in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  A.create ?policy ?early ?backoff ?stats ?on_link ~mem ~n ~prio:(fun i -> ids.(i)) ()

let n = A.n

(* The same armed-telemetry wrappers as {!Dsu_native}, so layout A/B runs
   compare memory layouts only, not instrumentation overhead. *)

let same_set t x y =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    let r = A.same_set t x y in
    Dsu_obs.record_same_set_latency t0;
    r
  end
  else A.same_set t x y

let unite t x y =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    A.unite t x y;
    Dsu_obs.record_unite_latency t0
  end
  else A.unite t x y

let find t x =
  if Atomic.get Dsu_obs.armed then Dsu_obs.record_find_op ();
  A.find t x

let unite_batch t xs ys =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    A.unite_batch t xs ys;
    Dsu_obs.record_unite_latency t0
  end
  else A.unite_batch t xs ys

let same_set_batch t xs ys =
  if Atomic.get Dsu_obs.armed then begin
    let t0 = Dsu_obs.now_ns () in
    let r = A.same_set_batch t xs ys in
    Dsu_obs.record_same_set_latency t0;
    r
  end
  else A.same_set_batch t xs ys

let find_batch t xs =
  if Atomic.get Dsu_obs.armed then Dsu_obs.record_find_op ();
  A.find_batch t xs

let id = A.id
let parent_of = A.parent_of
let is_root = A.is_root
let count_sets = A.count_sets
let invariant_violations = A.invariant_violations
let parents_snapshot t = Atomic_array.snapshot (A.mem t)
let ids_snapshot t = Array.init (A.n t) (fun i -> A.id t i)

(* Fuzzy (non-quiescent) scan; see {!Dsu_native.snapshot_fuzzy} for the
   Lemma 3.1 soundness argument.  Boxed cells are seq-cst [Atomic.t]s, so
   each per-cell read is at least as strong as the acquire load the flat
   layout uses. *)
module Fi = Repro_fault.Inject

let snapshot_fuzzy t =
  let mem = A.mem t in
  let parents =
    Array.init (A.n t) (fun i ->
        if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Snapshot_read;
        Atomic_array.get mem i)
  in
  (parents, ids_snapshot t)

let stats t = match A.stats t with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s

(* The same validated restore as {!Dsu_native.of_snapshot}, over the boxed
   layout — so a snapshot taken from either layout restores into either. *)
let of_snapshot ?policy ?early ?backoff ?(collect_stats = false) ?on_link ~parents ~ids () =
  let n = Array.length parents in
  if n < 1 || Array.length ids <> n then
    invalid_arg "Dsu_boxed.of_snapshot: malformed snapshot";
  let ids = Array.copy ids in
  let seen = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n || seen.(id) then
        invalid_arg "Dsu_boxed.of_snapshot: ids are not a permutation";
      seen.(id) <- true)
    ids;
  Array.iteri
    (fun i p ->
      if p < 0 || p >= n then invalid_arg "Dsu_boxed.of_snapshot: parent out of range";
      if p <> i && ids.(p) <= ids.(i) then
        invalid_arg "Dsu_boxed.of_snapshot: parents violate the linking order")
    parents;
  let mem = Atomic_array.make n (fun i -> parents.(i)) in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  A.create ?policy ?early ?backoff ?stats ?on_link ~mem ~n ~prio:(fun i -> ids.(i)) ()
