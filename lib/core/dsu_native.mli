(** Concurrent disjoint set union over OCaml 5 domains.

    This is the main user-facing module: the paper's wait-free, linearizable
    randomized-linking DSU instantiated on [Atomic]-backed shared memory.
    All operations may be called concurrently from any number of domains.

    {1 Quick start}

    {[
      let rng_seed = 42 in
      let d = Dsu.Dsu_native.create ~seed:rng_seed 1_000_000 in
      Dsu_native.unite d 1 2;
      assert (Dsu_native.same_set d 1 2)
    ]} *)

type t

val create :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?backoff:bool ->
  ?memory_order:Memory_order.t ->
  ?collect_stats:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  ?seed:int ->
  ?padded:bool ->
  int ->
  t
(** [create n] makes [n] singleton sets, nodes numbered [0 .. n-1].

    - [policy] selects the [Find] variant (default {!Find_policy.Two_try_splitting},
      the paper's best).
    - [early] enables the early-termination [SameSet]/[Unite] of Section 6
      (default [false]).
    - [backoff] (default [true]) enables bounded exponential backoff after
      a failed link CAS in [unite]; see {!Repro_util.Backoff}.
    - [memory_order] picks the parent-load ordering mode (default
      {!Memory_order.Relaxed_reads}); [Seq_cst] is the fully fenced
      baseline kept for A/B runs.  See {!Memory_order} and
      docs/PERFORMANCE.md ("Memory model & ordering").
    - [collect_stats] enables the atomic operation counters (default
      [false]; they cost a fetch-and-add per event).
    - [on_link] is called after each successful link with the union-forest
      edge; it runs concurrently with other operations, so it must be
      thread-safe.  Used by the forest-shape experiments.
    - [seed] fixes the random node order for reproducibility; omitting it
      uses a self-initializing seed (drawn from an atomic counter, so
      concurrent [create] calls never share one).
    - [padded] gives each parent word its own cache line (8x memory) —
      the false-sharing ablation knob; see docs/PERFORMANCE.md. *)

val n : t -> int

val same_set : t -> int -> int -> bool
(** [same_set t x y] is linearizable: true iff [x] and [y] were in the same
    set at the linearization point (Algorithm 2, or 6 with [~early:true]). *)

val unite : t -> int -> int -> unit
(** Merge the sets of [x] and [y] (Algorithm 3, or 7 with [~early:true]).
    Wait-free: completes regardless of other processes' speeds. *)

val find : t -> int -> int
(** Current root of [x]'s tree.  The returned node was the root of [x]'s set
    at the operation's linearization point; roots change as unions occur, so
    treat it as a same-set witness, not a stable canonical name. *)

val unite_batch : t -> int array -> int array -> unit
(** [unite_batch t xs ys] unites [xs.(k), ys.(k)] for every [k] through the
    bulk kernel: per-call direct-mapped root cache plus parent-cell
    prefetching a fixed distance ahead.  Equivalent to a per-element
    [unite] loop (linearizable per element, not atomic as a whole) but
    measurably faster on large batches; see docs/PERFORMANCE.md.
    @raise Invalid_argument on length mismatch or out-of-range nodes. *)

val same_set_batch : t -> int array -> int array -> bool array
(** [same_set_batch t xs ys].(k) = [same_set t xs.(k) ys.(k)], through the
    same bulk kernel machinery as {!unite_batch}.
    @raise Invalid_argument on length mismatch or out-of-range nodes. *)

val find_batch : t -> int array -> int array
(** [find_batch t xs].(k) = [find t xs.(k)], through the same bulk kernel
    machinery as {!unite_batch}.  Per-element linearizable; a quiescent
    caller (e.g. a connectivity label pass) gets a consistent labelling.
    @raise Invalid_argument on out-of-range nodes. *)

val memory_order : t -> Memory_order.t
(** The parent-load ordering mode this structure was created with. *)

val id : t -> int -> int
(** The node's position in the random total order (the linking priority). *)

val parent_of : t -> int -> int
val is_root : t -> int -> bool

val count_sets : t -> int
(** Number of sets.  Accurate only at quiescence (no concurrent updates). *)

val stats : t -> Dsu_stats.snapshot
(** Counter snapshot; all zeros unless [collect_stats] was set. *)

val reset_stats : t -> unit

val invariant_violations : t -> (int * int) list
(** Pairs [(node, parent)] violating the id-monotonicity invariant of
    Lemma 3.1; always empty unless the implementation is broken.  For tests. *)

val parents_snapshot : t -> int array
(** Per-cell reads of the parent array; consistent only at quiescence. *)

val ids_snapshot : t -> int array
(** The random node order as an array ([ids_snapshot t].(i) = [id t i]). *)

val snapshot_fuzzy : t -> int array * int array
(** [(parents, ids)] from a {e fuzzy} (non-quiescent) scan: per-cell
    acquire loads racing the mutators.  Lemma 3.1's ancestor monotonicity
    makes any such cut a valid forest — every scanned edge existed at the
    instant its cell was read, so the cut refines the final partition and
    still satisfies the linking order.  Each cell read is preceded by a
    {!Repro_fault.Site.Snapshot_read} hit so a chaos plan can crash the
    snapshotter mid-scan.  See {!Repro_durable.Fuzzy}. *)

val sets : t -> int list list
(** The partition as sorted classes (sorted by smallest member).  Quiescent
    only. *)

type snapshot
(** A serializable image of the structure (parents + node order), taken and
    restored at quiescence — persistence for checkpoint/restart uses. *)

val snapshot : t -> snapshot

val restore :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?backoff:bool ->
  ?memory_order:Memory_order.t ->
  ?collect_stats:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  ?padded:bool ->
  snapshot ->
  t
(** A fresh structure with the same partition, node order and tree shape;
    policy/early/backoff/memory_order/padded may differ from the
    original's. *)

val of_snapshot :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?backoff:bool ->
  ?memory_order:Memory_order.t ->
  ?collect_stats:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  ?padded:bool ->
  parents:int array ->
  ids:int array ->
  unit ->
  t
(** [restore] over raw arrays — the constructor {!Repro_recover.Restore}
    uses.  Same validation (ids a permutation, parents in range and
    order-increasing); raises [Invalid_argument] otherwise. *)

val snapshot_to_string : snapshot -> string
val snapshot_of_string : string -> snapshot
(** Raises [Invalid_argument] on malformed input. *)
