(** Concurrent disjoint set union with {e linking by rank} — the direction
    Section 7 announces ("we have developed several concurrent versions of
    linking by rank that give the bounds of Sections 4 and 5 ... one of them
    is randomized and needs no independence assumption; the other two are
    deterministic").

    This is the deterministic variant: [(rank, parent)] packed into one word
    so a single [Cas] updates both, with two-try splitting finds that
    preserve the rank bits.  Its union-forest height is O(log n) for
    {e every} union order — no independence assumption — which experiment
    E15 contrasts with randomized linking under an id-aware adversary.

    The packing requires [n * (max_rank + 1)] to fit in an [int]
    (n ≲ 2^57); randomized linking does not pay this structural cost. *)

module Make (M : Memory_intf.S) : sig
  type t

  val create :
    ?stats:Dsu_stats.t ->
    ?on_link:(child:int -> parent:int -> unit) ->
    mem:M.t ->
    n:int ->
    unit ->
    t
  (** [on_link] fires after every successful link CAS (effective merge),
      from the linking domain — the WAL hook point
      ({!Repro_durable.Wal}). *)

  val init_word : int -> int -> int
  (** [init_word n i] is the initial memory word for node [i] (rank 0,
      parent [i]). *)

  val n : t -> int
  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit
  val count_sets : t -> int
  val rank_of : t -> int -> int
  val parent_of : t -> int -> int
  val stats : t -> Dsu_stats.snapshot

  val parents_snapshot : t -> int array
  (** Parent of every node, unpacked from the words.  Quiescent only. *)

  val ranks_snapshot : t -> int array
  (** Rank of every node, unpacked from the words.  Quiescent only. *)

  val snapshot_fuzzy : t -> int array * int array
  (** Fuzzy (non-quiescent) [(parents, ranks)] scan — one word read per
      node with {!Repro_fault.Site.Snapshot_read} hits, so each node's
      pair is internally consistent.  A racing rank promotion can leave
      the cut with a [(rank, index)] order violation across nodes; the
      {!Repro_durable.Fuzzy} reconciliation pass repairs it.  See
      {!Dsu_native.snapshot_fuzzy}. *)
end

(** Native instantiation over [Atomic] arrays; safe from any number of
    domains. *)
module Native : sig
  type t

  val create :
    ?memory_order:Memory_order.t ->
    ?collect_stats:bool ->
    ?on_link:(child:int -> parent:int -> unit) ->
    int ->
    t
  (** [memory_order] as in {!Dsu_native.create}: parent-word load ordering
      (default {!Memory_order.Relaxed_reads}).  [on_link] as in
      {!Make.create}. *)

  val n : t -> int
  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit
  val count_sets : t -> int
  (** Quiescent only. *)

  val rank_of : t -> int -> int
  val parent_of : t -> int -> int
  val stats : t -> Dsu_stats.snapshot
  val parents_snapshot : t -> int array
  val ranks_snapshot : t -> int array

  val snapshot_fuzzy : t -> int array * int array
  (** See {!Make.snapshot_fuzzy}. *)

  val of_snapshot :
    ?memory_order:Memory_order.t ->
    ?collect_stats:bool ->
    ?on_link:(child:int -> parent:int -> unit) ->
    parents:int array ->
    ranks:int array ->
    unit ->
    t
  (** A fresh structure with the given forest and ranks re-packed into
      words.  @raise Invalid_argument on length mismatch, out-of-range
      parents, negative or packing-overflow ranks, or parents violating
      the [(rank, index)] order. *)
end

(** Simulator instantiation; see {!Dsu_sim} for the usage pattern. *)
module Sim : sig
  type t

  val mem_size : int -> int
  val init : int -> int -> int
  val handle : int -> t
  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit
  val rank_of : t -> int -> int
  val parent_of : t -> int -> int
  val stats : t -> Dsu_stats.snapshot

  val same_set_op : t -> int -> int -> unit -> unit
  (** Closure for {!Apram.Sim.run_ops}, recorded in the history. *)

  val unite_op : t -> int -> int -> unit -> unit
end
