(** Telemetry instruments for the DSU ({!Repro_obs} glue).

    Every hook here is called unconditionally from the algorithm's hot
    paths, guarded at the call site by [Atomic.get Dsu_obs.armed] — a
    single atomic load and predictable branch when telemetry is off (the
    default).  Arming is global: {!Repro_obs.Metrics.set_enabled} /
    {!Repro_obs.Trace.set_enabled}.

    The metric name catalog, the paper quantity each instrument measures,
    and accuracy caveats (racy merges, per-find attribution under the
    simulator) live in docs/OBSERVABILITY.md. *)

val armed : bool Atomic.t
(** True iff metrics or tracing (or both) are enabled. *)

(** {2 Hooks used by {!Dsu_algorithm}} *)

val find_begin : int -> unit
(** Open the calling domain's find window: reset the step counter, stamp
    the start time, emit [Find_start]. *)

val find_end : int -> int -> unit
(** [find_end node root] closes the window: observes the
    [dsu_find_iters] and [dsu_find_latency_ns] histograms and emits
    [Find_end]. *)

val on_find_iter : unit -> unit

val on_link_cas : node:int -> ok:bool -> unit
(** [node] is the root whose parent pointer the linking CAS targeted;
    when contention attribution is armed ({!Dsu_contention.set_enabled})
    a failure is charged to it. *)

val on_compaction_cas : node:int -> ok:bool -> unit
(** [node] is the node whose parent pointer the splitting/compression
    CAS targeted. *)

val on_outer_retry : unit -> unit

(** {2 Hooks used by {!Dsu_native}} *)

val now_ns : unit -> int

val record_unite_latency : int -> unit
(** [record_unite_latency t0] observes [now_ns () - t0] into
    [dsu_unite_latency_ns] and counts the operation in [dsu_ops_total]. *)

val record_same_set_latency : int -> unit

val record_find_op : unit -> unit
(** Count a top-level [find] in [dsu_ops_total] (its latency is already
    captured by the internal find window). *)
