(** The [MakeSet] extension of Section 3 (remark) and Section 7.

    Elements are created on the fly: each [make_set] allocates a fresh node
    and assigns it a priority drawn uniformly from a 62-bit universe, with
    node index as the tie-break — the paper's recipe for generating the node
    order on the fly when there is no a-priori bound on [MakeSet]s ("assign
    to each new element a random number selected uniformly from a universe
    large enough that the chance of a tie is sufficiently small, and add a
    tie-breaking rule").

    As the paper notes, in a setting where the universe grows without bound
    a [SameSet] or [Unite] can keep making progress forever while new
    elements join its sets, so the algorithms are lock-free rather than
    wait-free here.  This implementation bounds capacity up front (slots are
    preallocated; [make_set] is one fetch-and-add plus one atomic store), so
    in any finite execution operations still terminate.

    Nodes must not be passed to [same_set]/[unite]/[find] before [make_set]
    returns them. *)

type t

val create :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?backoff:bool ->
  ?memory_order:Memory_order.t ->
  ?collect_stats:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  ?seed:int ->
  capacity:int ->
  unit ->
  t
(** [backoff]/[memory_order] as in {!Dsu_native.create}.  Priorities are
    release-published by [make_set] and acquire-loaded by the linking
    order, independent of [memory_order]. *)

val make_set : t -> int
(** Allocate and return a fresh singleton element.  Lock-free; raises
    [Failure] when capacity is exhausted. *)

val cardinal : t -> int
(** Number of elements created so far. *)

val capacity : t -> int

val same_set : t -> int -> int -> bool
val unite : t -> int -> int -> unit
val find : t -> int -> int
val priority : t -> int -> int
val stats : t -> Dsu_stats.snapshot
val count_sets : t -> int
(** Quiescent only. *)

val parents_snapshot : t -> int array
(** Parents of the created elements ([0 .. cardinal - 1]).  Quiescent only. *)

val priorities_snapshot : t -> int array
(** Priorities of the created elements.  Quiescent only. *)

val snapshot_fuzzy : t -> int array * int array
(** Fuzzy (non-quiescent) [(parents, priorities)] scan over the cardinal
    latched at entry, with {!Repro_fault.Site.Snapshot_read} hits per
    parent cell; parents pointing past the latched cardinal (a racing
    [make_set] + link) are clamped to roots.  See
    {!Dsu_native.snapshot_fuzzy}. *)

val of_snapshot :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?backoff:bool ->
  ?memory_order:Memory_order.t ->
  ?collect_stats:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  ?seed:int ->
  ?capacity:int ->
  parents:int array ->
  prios:int array ->
  unit ->
  t
(** A fresh structure whose first [Array.length parents] elements are
    already created with the given parents and priorities; further
    [make_set]s continue from there.  [capacity] defaults to the element
    count.  @raise Invalid_argument on length mismatch, out-of-range
    parents, or parents violating the [(priority, index)] linking order. *)
