(** Concurrent linking-by-rank DSU over a bit-packed single word per node
    (the GBBS [jayanti.h] layout): parent index, rank and a root flag in
    fixed bit fields of one 63-bit OCaml int, so link and split each stay
    a single CAS and every unpack is a mask/shift instead of
    {!Rank_dsu}'s division by the non-constant [n].

    {v
      bit 61        root flag (set iff the node is a tree root)
      bits 40..60   rank (21 bits)
      bits  0..39   parent index (40 bits)
    v}

    The layout bounds the universe to [n <= 2^40] (checked at [create]);
    ranks are bounded by [ceil(lg n) <= 40], far below the field's
    [2^21 - 1].  Linking is by rank (ties by node index), so the bounds
    need no independence assumption.  See docs/PERFORMANCE.md for the
    measured packed-vs-rank numbers. *)

(** {2 Word layout}

    Exposed for tests, the snapshot codec and documentation; all pure. *)

val parent_bits : int
val rank_bits : int
val max_nodes : int
(** [2^parent_bits], the largest supported universe. *)

val max_rank : int
(** [2^rank_bits - 1], the largest encodable rank. *)

val is_root_word : int -> bool
val parent_of_word : int -> int
val rank_of_word : int -> int
val root_word : rank:int -> node:int -> int
val child_word : rank:int -> parent:int -> int

val init_word : int -> int
(** [init_word i] is node [i]'s initial word: rank 0, root flag set. *)

module Make (M : Memory_intf.S) : sig
  type t

  val create :
    ?policy:Find_policy.t ->
    ?backoff:bool ->
    ?stats:Dsu_stats.t ->
    ?on_link:(child:int -> parent:int -> unit) ->
    mem:M.t ->
    n:int ->
    unit ->
    t
  (** [policy] (default two-try splitting) selects the find compaction
      rule — all five {!Find_policy} variants are supported, with
      rank-preserving updates; [backoff] (default [true]) spins after a
      failed link CAS as in {!Dsu_algorithm}; [on_link] fires after every
      successful link CAS (the WAL hook point, {!Repro_durable.Wal}).
      @raise Invalid_argument unless [1 <= n <= max_nodes]. *)

  val n : t -> int
  val mem : t -> M.t
  val policy : t -> Find_policy.t
  val backoff : t -> bool
  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit

  val unite_batch : t -> int array -> int array -> unit
  (** The {!Dsu_algorithm.Make.unite_batch} bulk kernel (per-call root
      cache + prefetch) over packed words. *)

  val same_set_batch : t -> int array -> int array -> bool array
  val find_batch : t -> int array -> int array
  val parent_of : t -> int -> int
  val rank_of : t -> int -> int
  val is_root : t -> int -> bool

  val count_sets : t -> int
  (** Quiescent only. *)

  val stats : t -> Dsu_stats.snapshot

  val invariant_violations : t -> (int * int) list
  (** Pairs [(node, parent)] breaking the rank order (every non-root must
      point to a larger rank, ties broken upward by index) or whose root
      flag disagrees with the parent field; empty on a correct
      structure.  Quiescent only. *)

  val parents_snapshot : t -> int array
  val ranks_snapshot : t -> int array

  val snapshot_fuzzy : t -> int array * int array
  (** Fuzzy (non-quiescent) [(parents, ranks)] scan — one word read per
      node with {!Repro_fault.Site.Snapshot_read} hits; racing rank
      promotions can leave cross-node [(rank, index)] order violations
      for the {!Repro_durable.Fuzzy} reconciliation pass to repair.  See
      {!Rank_dsu.Make.snapshot_fuzzy}. *)
end

(** Native instantiation over {!Native_memory} ([Flat_atomic_array] with
    explicit-order loads); safe from any number of domains. *)
module Native : sig
  type t

  val create :
    ?policy:Find_policy.t ->
    ?backoff:bool ->
    ?memory_order:Memory_order.t ->
    ?collect_stats:bool ->
    ?padded:bool ->
    ?on_link:(child:int -> parent:int -> unit) ->
    int ->
    t
  (** [memory_order] as in {!Dsu_native.create} (default
      {!Memory_order.Relaxed_reads}); [padded] spreads one word per cache
      line; [on_link] as in {!Make.create}. *)

  val n : t -> int
  val policy : t -> Find_policy.t
  val backoff : t -> bool
  val find : t -> int -> int
  val same_set : t -> int -> int -> bool
  val unite : t -> int -> int -> unit
  val unite_batch : t -> int array -> int array -> unit
  val same_set_batch : t -> int array -> int array -> bool array
  val find_batch : t -> int array -> int array
  val parent_of : t -> int -> int
  val rank_of : t -> int -> int
  val is_root : t -> int -> bool

  val count_sets : t -> int
  (** Quiescent only. *)

  val stats : t -> Dsu_stats.snapshot
  val invariant_violations : t -> (int * int) list
  val memory_order : t -> Memory_order.t
  val parents_snapshot : t -> int array
  val ranks_snapshot : t -> int array

  val snapshot_fuzzy : t -> int array * int array
  (** See {!Make.snapshot_fuzzy}. *)

  val of_snapshot :
    ?policy:Find_policy.t ->
    ?backoff:bool ->
    ?memory_order:Memory_order.t ->
    ?collect_stats:bool ->
    ?padded:bool ->
    ?on_link:(child:int -> parent:int -> unit) ->
    parents:int array ->
    ranks:int array ->
    unit ->
    t
  (** A fresh structure with the given forest and ranks re-packed into
      words.  @raise Invalid_argument on length mismatch, out-of-range
      parents, ranks outside the bit field, or parents violating the
      [(rank, index)] order. *)
end
