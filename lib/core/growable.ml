module Flat_atomic_array = Repro_util.Flat_atomic_array
module Rng = Repro_util.Rng
module Fi = Repro_fault.Inject

module Algo = Dsu_algorithm.Make (Native_memory)

type t = {
  capacity : int;
  next : int Atomic.t;
  prios : Flat_atomic_array.t;
      (** atomic so priorities published by [make_set] are visible to every
          domain without further synchronization *)
  rng_state : int Atomic.t;  (** per-allocation counter, hashed to a priority *)
  algo : Algo.t;
}

let mix64 z =
  (* SplitMix64 finalizer on 62-bit ints; good avalanche, cheap. *)
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let create ?policy ?early ?backoff ?memory_order ?(collect_stats = false)
    ?on_link ?(seed = 0x9e3779b9) ~capacity () =
  if capacity < 1 then invalid_arg "Growable.create: capacity must be >= 1";
  let prios = Flat_atomic_array.make capacity (fun _ -> 0) in
  let mem = Native_memory.make ?order:memory_order capacity (fun i -> i) in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  let algo =
    (* Acquire is enough for priority reads: a slot's priority is published
       (release) by [make_set] before the slot index escapes to any other
       domain, so an acquire load of the cell synchronises with that
       publication; priority 0 is only observable for a slot whose
       [make_set] crashed mid-publish, which the tie-breaking order
       tolerates. *)
    Algo.create ?policy ?early ?backoff ?stats ?on_link ~mem ~n:capacity
      ~prio:(fun i -> Flat_atomic_array.get_acquire prios i)
      ()
  in
  { capacity; next = Atomic.make 0; prios; rng_state = Atomic.make seed; algo }

let make_set t =
  let slot = Atomic.fetch_and_add t.next 1 in
  if slot >= t.capacity then begin
    (* Undo is unnecessary: the counter may run past capacity harmlessly. *)
    failwith "Growable.make_set: capacity exhausted"
  end;
  let r = Atomic.fetch_and_add t.rng_state 0x632be59bd9b4e019 in
  (* Crash-stop here leaves the claimed slot with the default priority 0,
     which the tie-breaking order tolerates (Lemma 3.1 never needs
     distinct priorities). *)
  if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Make_set_publish;
  (* Release publication: pairs with the acquire priority loads in the
     linking order (see [create]); no full fence needed. *)
  Flat_atomic_array.set_release t.prios slot (mix64 r);
  slot

let cardinal t = min (Atomic.get t.next) t.capacity
let capacity t = t.capacity

let check t x =
  if x < 0 || x >= cardinal t then invalid_arg "Growable: element was not created"

let same_set t x y =
  check t x;
  check t y;
  Algo.same_set t.algo x y

let unite t x y =
  check t x;
  check t y;
  Algo.unite t.algo x y

let find t x =
  check t x;
  Algo.find t.algo x

let priority t x =
  check t x;
  Flat_atomic_array.get_acquire t.prios x

let stats t =
  match Algo.stats t.algo with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s

let count_sets t =
  let c = ref 0 in
  for i = 0 to cardinal t - 1 do
    if Algo.parent_of t.algo i = i then incr c
  done;
  !c

(* ---- snapshot / restore (quiescent persistence; see Repro_recover) ---- *)

let parents_snapshot t =
  let k = cardinal t in
  Array.init k (fun i -> Algo.parent_of t.algo i)

let priorities_snapshot t =
  let k = cardinal t in
  Array.init k (fun i -> Flat_atomic_array.get t.prios i)

(* Fuzzy (non-quiescent) scan; see {!Dsu_native.snapshot_fuzzy}.  The
   cardinal is latched first, so concurrent [make_set]s past it are simply
   not part of the cut; a slot below the latched cardinal has its priority
   release-published before the slot escaped, so the acquire loads see it. *)
let snapshot_fuzzy t =
  let k = cardinal t in
  let parents =
    Array.init k (fun i ->
        if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Snapshot_read;
        Algo.parent_of t.algo i)
  in
  let prios = Array.init k (fun i -> Flat_atomic_array.get_acquire t.prios i) in
  (* A parent installed by a racing link may point above the latched
     cardinal; clamp such nodes to roots — dropping the edge only makes the
     cut finer, which still refines the final partition. *)
  Array.iteri (fun i p -> if p >= k then parents.(i) <- i) parents;
  (parents, prios)

let of_snapshot ?policy ?early ?backoff ?memory_order ?(collect_stats = false)
    ?on_link ?(seed = 0x9e3779b9) ?capacity ~parents ~prios () =
  let k = Array.length parents in
  if Array.length prios <> k then
    invalid_arg "Growable.of_snapshot: parents/prios length mismatch";
  let capacity = match capacity with None -> max 1 k | Some c -> c in
  if capacity < max 1 k then
    invalid_arg "Growable.of_snapshot: capacity below element count";
  Array.iteri
    (fun i p ->
      if p < 0 || p >= k then invalid_arg "Growable.of_snapshot: parent out of range";
      if p <> i && not (prios.(i) < prios.(p) || (prios.(i) = prios.(p) && i < p))
      then invalid_arg "Growable.of_snapshot: parents violate the linking order")
    parents;
  let prios_arr =
    Flat_atomic_array.make capacity (fun i -> if i < k then prios.(i) else 0)
  in
  let mem =
    Native_memory.make ?order:memory_order capacity (fun i ->
        if i < k then parents.(i) else i)
  in
  let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
  let algo =
    Algo.create ?policy ?early ?backoff ?stats ?on_link ~mem ~n:capacity
      ~prio:(fun i -> Flat_atomic_array.get_acquire prios_arr i)
      ()
  in
  { capacity; next = Atomic.make k; prios = prios_arr; rng_state = Atomic.make seed; algo }
