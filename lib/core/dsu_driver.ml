(** A {!Dsu_plan}-dispatched DSU backend as a first-class value.

    [Harness.Scalability.run_plan_point] dispatches a plan to the right
    layout constructor inline; every new plan-aware subsystem (the
    connectivity pipeline, the service layer) was about to repeat that
    match.  This module does the dispatch once and hands back a record of
    closures over the constructed structure, so callers are parametric in
    the plan without a functor boundary or a GADT.

    The closure record costs one indirect call per operation.  The bulk
    kernels ([unite_batch] / [same_set_batch] / [find_batch]) amortize
    that over the whole batch, so plan-parametric batch pipelines pay
    essentially nothing; per-op hot loops that care about the last few
    percent should keep matching on the layout themselves (as the
    scalability harness does). *)

type t = {
  n : int;
  plan : Dsu_plan.t;
  find : int -> int;
  same_set : int -> int -> bool;
  unite : int -> int -> unit;
  unite_batch : int array -> int array -> unit;
  same_set_batch : int array -> int array -> bool array;
  find_batch : int array -> int array;
  count_sets : unit -> int;
  parents_snapshot : unit -> int array;
  stats : unit -> Dsu_stats.snapshot option;
}

let create ?(plan = Dsu_plan.default) ?(seed = 1) ?(collect_stats = false) n =
  (match Dsu_plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Dsu_driver.create: invalid plan: " ^ msg));
  let policy = plan.Dsu_plan.compaction in
  let backoff = plan.Dsu_plan.backoff in
  let memory_order = plan.Dsu_plan.memory_order in
  match plan.Dsu_plan.layout with
  | Dsu_plan.Flat | Dsu_plan.Padded ->
    let padded = plan.Dsu_plan.layout = Dsu_plan.Padded in
    let d =
      Dsu_native.create ~policy ~backoff ~memory_order ~collect_stats ~seed
        ~padded n
    in
    {
      n;
      plan;
      find = Dsu_native.find d;
      same_set = Dsu_native.same_set d;
      unite = Dsu_native.unite d;
      unite_batch = Dsu_native.unite_batch d;
      same_set_batch = Dsu_native.same_set_batch d;
      find_batch = Dsu_native.find_batch d;
      count_sets = (fun () -> Dsu_native.count_sets d);
      parents_snapshot = (fun () -> Dsu_native.parents_snapshot d);
      stats =
        (fun () -> if collect_stats then Some (Dsu_native.stats d) else None);
    }
  | Dsu_plan.Boxed ->
    let d = Dsu_boxed.create ~policy ~backoff ~collect_stats ~seed n in
    {
      n;
      plan;
      find = Dsu_boxed.find d;
      same_set = Dsu_boxed.same_set d;
      unite = Dsu_boxed.unite d;
      unite_batch = Dsu_boxed.unite_batch d;
      same_set_batch = Dsu_boxed.same_set_batch d;
      find_batch = Dsu_boxed.find_batch d;
      count_sets = (fun () -> Dsu_boxed.count_sets d);
      parents_snapshot = (fun () -> Dsu_boxed.parents_snapshot d);
      stats =
        (fun () -> if collect_stats then Some (Dsu_boxed.stats d) else None);
    }
  | Dsu_plan.Packed ->
    let d =
      Packed_dsu.Native.create ~policy ~backoff ~memory_order ~collect_stats n
    in
    {
      n;
      plan;
      find = Packed_dsu.Native.find d;
      same_set = Packed_dsu.Native.same_set d;
      unite = Packed_dsu.Native.unite d;
      unite_batch = Packed_dsu.Native.unite_batch d;
      same_set_batch = Packed_dsu.Native.same_set_batch d;
      find_batch = Packed_dsu.Native.find_batch d;
      count_sets = (fun () -> Packed_dsu.Native.count_sets d);
      parents_snapshot = (fun () -> Packed_dsu.Native.parents_snapshot d);
      stats =
        (fun () ->
          if collect_stats then Some (Packed_dsu.Native.stats d) else None);
    }
