(** Concurrent disjoint set union with {e linking by rank} — the direction
    Section 7 announces ("we have developed several concurrent versions of
    linking by rank that give the bounds of Sections 4 and 5 ... and need no
    independence assumption").

    Ranks must change atomically with parents, which randomized linking
    exists to avoid; here we instead pack [(rank, parent)] into one word
    ([word = rank * n + parent]), so a single [Cas] updates both.  Find uses
    two-try splitting with rank-preserving updates.  The packing bounds the
    universe: [n * (max_rank + 1)] must fit in an [int], i.e. roughly
    [n <= 2^57] (ranks stay below [lg n]) — irrelevant in practice, but a
    structural cost randomized linking does not pay.

    The point of this variant in the reproduction is experiment E15: its
    work bounds hold for {e every} union order, whereas randomized linking's
    analysis needs the independence assumption (star) of Section 4 — an
    id-aware adversary can drive the randomized union forest to linear
    height, and this variant is the paper's own answer to that gap. *)

module Make (M : Memory_intf.S) = struct
  type t = {
    mem : M.t;
    n : int;
    stats : Dsu_stats.t option;
    on_link : (child:int -> parent:int -> unit) option;
  }

  let create ?stats ?on_link ~mem ~n () =
    if n < 1 then invalid_arg "Rank_dsu.create: n must be >= 1";
    { mem; n; stats; on_link }

  let record_link t ~child ~parent =
    match t.on_link with None -> () | Some f -> f ~child ~parent

  let init_word _n i = i
  let n t = t.n

  let bump t f = match t.stats with None -> () | Some s -> f s

  let parent_of_word t w = w mod t.n
  let rank_of_word t w = w / t.n
  let word t ~rank ~parent = (rank * t.n) + parent

  (* Fault-injection sites (see {!Repro_fault.Site}), following the
     instrumented-twin pattern of {!Dsu_algorithm}: the find loop exists
     twice and [find_root] picks a body with one atomic load of
     [Fi.armed]; the rarely-hit unite sites are guarded inline. *)
  module Fi = Repro_fault.Inject

  let[@inline] fault_hop () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Find_hop

  let[@inline] fault_rank_read () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Rank_read

  let[@inline] fault_split_pre () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_cas_pre

  let[@inline] fault_split_post () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_cas_post

  let[@inline] fault_link_pre () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Link_cas_pre

  let[@inline] fault_link_post () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Link_cas_post

  (* Two-try splitting on packed words: each update swings a node's parent
     to its grandparent while preserving the node's rank bits. *)
  let find_root_plain t x =
    let try_split u =
      (* One splitting attempt from [u].  Returns [`Root r] when the root is
         found, otherwise the grandparent to advance to. *)
      let wu = M.read t.mem u in
      let pu = parent_of_word t wu in
      if pu = u then `Root u
      else begin
        let wp = M.read t.mem pu in
        let pp = parent_of_word t wp in
        if pp = pu then `Root pu
        else begin
          (* Weak CAS: a spurious failure is exactly a failed splitting
             try, which the two-try structure already tolerates. *)
          let ok =
            M.cas_weak t.mem u wu (word t ~rank:(rank_of_word t wu) ~parent:pp)
          in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          `Advance pu
        end
      end
    in
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      match try_split u with
      | `Root r -> r
      | `Advance _ -> (
        (* second try on the same node *)
        match try_split u with `Root r -> r | `Advance v -> loop v)
    in
    loop x

  let find_root_obs t x =
    let try_split u =
      fault_rank_read ();
      let wu = M.read t.mem u in
      let pu = parent_of_word t wu in
      if pu = u then `Root u
      else begin
        let wp = M.read t.mem pu in
        let pp = parent_of_word t wp in
        if pp = pu then `Root pu
        else begin
          fault_split_pre ();
          let ok =
            M.cas_weak t.mem u wu (word t ~rank:(rank_of_word t wu) ~parent:pp)
          in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          fault_split_post ();
          `Advance pu
        end
      end
    in
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      fault_hop ();
      match try_split u with
      | `Root r -> r
      | `Advance _ -> (
        match try_split u with `Root r -> r | `Advance v -> loop v)
    in
    loop x

  let find_root t x =
    bump t Dsu_stats.incr_find;
    if Atomic.get Fi.armed then find_root_obs t x else find_root_plain t x

  let check t x = if x < 0 || x >= t.n then invalid_arg "Rank_dsu: node out of range"

  let find t x =
    check t x;
    find_root t x

  let same_set t x y =
    check t x;
    check t y;
    bump t Dsu_stats.incr_same_set;
    let rec loop u v ~first =
      if not first then bump t Dsu_stats.incr_outer_retry;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then true
      else if parent_of_word t (M.read t.mem u) = u then false
      else loop u v ~first:false
    in
    loop x y ~first:true

  let unite t x y =
    check t x;
    check t y;
    bump t Dsu_stats.incr_unite;
    let rec loop u v ~first =
      if not first then bump t Dsu_stats.incr_outer_retry;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then ()
      else begin
        let wu = M.read t.mem u in
        let wv = M.read t.mem v in
        (* Stalling or dying here holds stale ranks; the linking Cas below
           re-validates the whole packed word, so staleness only costs a
           retry. *)
        fault_rank_read ();
        let pu = parent_of_word t wu and ru = rank_of_word t wu in
        let pv = parent_of_word t wv and rv = rank_of_word t wv in
        if pu <> u || pv <> v then loop u v ~first:false
        else begin
          let link a wa ra b =
            fault_link_pre ();
            let ok = M.cas t.mem a wa (word t ~rank:ra ~parent:b) in
            bump t (Dsu_stats.incr_link_cas ~ok);
            if ok then record_link t ~child:a ~parent:b;
            fault_link_post ();
            ok
          in
          if ru < rv then begin
            if not (link u wu ru v) then loop u v ~first:false
          end
          else if rv < ru then begin
            if not (link v wv rv u) then loop u v ~first:false
          end
          else if u < v then begin
            (* Rank tie, broken by node index; the winner's rank promotion
               may fail harmlessly (someone promoted or linked it first). *)
            if link u wu ru v then
              ignore (M.cas t.mem v wv (word t ~rank:(rv + 1) ~parent:v))
            else loop u v ~first:false
          end
          else if link v wv rv u then
            ignore (M.cas t.mem u wu (word t ~rank:(ru + 1) ~parent:u))
          else loop u v ~first:false
        end
      end
    in
    loop x y ~first:true

  let count_sets t =
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if parent_of_word t (M.read t.mem i) = i then incr c
    done;
    !c

  let rank_of t x =
    check t x;
    rank_of_word t (M.read t.mem x)

  let parent_of t x =
    check t x;
    parent_of_word t (M.read t.mem x)

  let stats t =
    match t.stats with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s

  (* Quiescent persistence: the packed words split into two plain arrays so
     a snapshot is layout-independent (Repro_recover re-packs on restore). *)
  let parents_snapshot t = Array.init t.n (fun i -> parent_of_word t (M.read t.mem i))
  let ranks_snapshot t = Array.init t.n (fun i -> rank_of_word t (M.read t.mem i))

  (* Fuzzy (non-quiescent) scan: one word read per node, so each node's
     (rank, parent) pair is internally consistent.  Across nodes a racing
     rank promotion can still leave the cut with a (rank, index) order
     violation — a child scanned after a tie-break link whose parent's word
     was scanned before the promotion — which is exactly what the
     {!Repro_durable.Fuzzy} reconciliation pass repairs. *)
  let snapshot_fuzzy t =
    let parents = Array.make t.n 0 and ranks = Array.make t.n 0 in
    for i = 0 to t.n - 1 do
      if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Snapshot_read;
      let w = M.read t.mem i in
      parents.(i) <- parent_of_word t w;
      ranks.(i) <- rank_of_word t w
    done;
    (parents, ranks)
end

(** Native instantiation over [Atomic] arrays. *)
module Native = struct
  module A = Make (Native_memory)

  type t = A.t

  let create ?memory_order ?(collect_stats = false) ?on_link n =
    let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
    let mem = Native_memory.make ?order:memory_order n (A.init_word n) in
    A.create ?stats ?on_link ~mem ~n ()

  let n = A.n
  let find = A.find
  let same_set = A.same_set
  let unite = A.unite
  let count_sets = A.count_sets
  let rank_of = A.rank_of
  let parent_of = A.parent_of
  let stats = A.stats
  let parents_snapshot = A.parents_snapshot
  let ranks_snapshot = A.ranks_snapshot
  let snapshot_fuzzy = A.snapshot_fuzzy

  let of_snapshot ?memory_order ?(collect_stats = false) ?on_link ~parents ~ranks () =
    let n = Array.length parents in
    if n < 1 || Array.length ranks <> n then
      invalid_arg "Rank_dsu.of_snapshot: malformed snapshot";
    let max_rank = Array.fold_left max 0 ranks in
    if max_rank > max_int / n - 1 then
      invalid_arg "Rank_dsu.of_snapshot: ranks overflow the packing";
    Array.iteri
      (fun i p ->
        if p < 0 || p >= n then
          invalid_arg "Rank_dsu.of_snapshot: parent out of range";
        if ranks.(i) < 0 then invalid_arg "Rank_dsu.of_snapshot: negative rank";
        (* The by-rank analogue of the linking order: every non-root points
           to a strictly larger rank, ties broken by node index (ties can
           only arise from the tie-break link whose promotion Cas lost). *)
        if p <> i && not (ranks.(i) < ranks.(p) || (ranks.(i) = ranks.(p) && i < p))
        then invalid_arg "Rank_dsu.of_snapshot: parents violate the rank order")
      parents;
    let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
    let mem =
      Native_memory.make ?order:memory_order n (fun i ->
          (ranks.(i) * n) + parents.(i))
    in
    A.create ?stats ?on_link ~mem ~n ()
end

(** Simulator instantiation; see {!Dsu_sim} for the usage pattern. *)
module Sim = struct
  module Sim_memory = struct
    type t = unit

    let read () a = Apram.Process.read a
    let cas () a expected desired = Apram.Process.cas a expected desired

    (* Step-counted memory: a weak CAS costs the same simulated step as a
       strong one; prefetch is not a memory step. *)
    let cas_weak = cas
    let prefetch () _ = ()
  end

  module A = Make (Sim_memory)

  type t = A.t

  let mem_size n = n
  let init n i = A.init_word n i

  let handle n =
    let stats = Dsu_stats.create () in
    A.create ~stats ~mem:() ~n ()

  let find = A.find
  let same_set = A.same_set
  let unite = A.unite
  let stats = A.stats
  let parent_of = A.parent_of
  let rank_of = A.rank_of

  let same_set_op t x y () =
    Apram.Process.record_invoke ~name:"same_set" ~args:[ x; y ];
    let r = A.same_set t x y in
    Apram.Process.record_return (if r then 1 else 0)

  let unite_op t x y () =
    Apram.Process.record_invoke ~name:"unite" ~args:[ x; y ];
    A.unite t x y;
    Apram.Process.record_return 0
end
