(** The concurrent disjoint-set-union algorithm of Jayanti and Tarjan,
    as a functor over the shared-memory primitives — one implementation of
    Algorithms 1–7 that runs both natively (over [Atomic]; see
    {!Dsu_native}) and inside the APRAM simulator (see {!Dsu_sim}).

    See the implementation for the transcription notes (the two documented
    deviations from the printed pseudocode are the merged redundant read in
    the early-termination variants and the skipped no-op splitting [Cas]). *)

module Make (M : Memory_intf.S) : sig
  type t
  (** A handle: the memory holding the parent array plus the immutable
      linking order, the chosen [Find] variant, and instrumentation. *)

  val create :
    ?policy:Find_policy.t ->
    ?early:bool ->
    ?backoff:bool ->
    ?stats:Dsu_stats.t ->
    ?on_link:(child:int -> parent:int -> unit) ->
    mem:M.t ->
    n:int ->
    prio:(int -> int) ->
    unit ->
    t
  (** [create ~mem ~n ~prio ()] wraps a memory whose cell [i] holds node
      [i]'s parent (initially [i]).  [prio i] is node [i]'s position in the
      random total order; ties are broken by node index, so priorities need
      not be distinct (the growable extension draws them from a large
      universe on the fly).  [policy] defaults to two-try splitting;
      [early] selects Algorithms 6/7; [backoff] (default [true]) spins a
      bounded, exponentially growing number of [cpu_relax] iterations after
      a failed link CAS in [unite] (see {!Repro_util.Backoff}); [on_link]
      observes every successful link (the union forest). *)

  val n : t -> int
  val mem : t -> M.t
  val policy : t -> Find_policy.t
  val early : t -> bool
  val backoff : t -> bool
  val stats : t -> Dsu_stats.t option

  val id : t -> int -> int
  (** The node's priority ([prio]). *)

  val less : t -> int -> int -> bool
  (** The linking order: priority, then node index. *)

  val find : t -> int -> int
  (** Current root of the node's tree (Algorithm 1, 4 or 5, or the
      two-pass concurrent compression). *)

  val same_set : t -> int -> int -> bool
  (** Algorithm 2, or 6 when [early]. *)

  val unite : t -> int -> int -> unit
  (** Algorithm 3, or 7 when [early]. *)

  val unite_batch : t -> int array -> int array -> unit
  (** [unite_batch t xs ys] unites [xs.(k), ys.(k)] for every [k], in
      order, through a bulk kernel with a per-call direct-mapped root
      cache (a previously observed ancestor stays an ancestor, so finds
      restart from it) and parent-cell prefetching a fixed distance
      ahead.  Equivalent to [Array.iter2 (unite t)] — linearizable per
      element, not atomic as a whole — but measurably faster on large
      batches.  Uses the plain (non-early) rounds regardless of [early].
      @raise Invalid_argument on length mismatch or out-of-range nodes. *)

  val same_set_batch : t -> int array -> int array -> bool array
  (** [same_set_batch t xs ys] answers [same_set t xs.(k) ys.(k)] for
      every [k], with the same root cache and prefetching as
      {!unite_batch}.
      @raise Invalid_argument on length mismatch or out-of-range nodes. *)

  val find_batch : t -> int array -> int array
  (** [find_batch t xs] answers [find t xs.(k)] for every [k], with the
      same per-call root cache and prefetching as {!unite_batch}.  The
      snapshot is per-element linearizable, not atomic as a whole: the
      roots returned for distinct elements may belong to different
      moments.  Quiescent callers (the phase-2 label pass of a
      connectivity driver) get a consistent forest labelling.
      @raise Invalid_argument on out-of-range nodes. *)

  val parent_of : t -> int -> int
  val is_root : t -> int -> bool
  val count_sets : t -> int
  (** Quiescent only; under the simulator these consume steps. *)

  val invariant_violations : t -> (int * int) list
  (** Pairs [(node, parent)] breaking the Lemma 3.1 order-monotonicity
      invariant; always empty for a correct implementation. *)
end
