(** Memory-order modes for the native parent-array hot path.

    The paper's machine model needs only a plain load to read a parent and
    a single-word [Cas] to link or split; sequentially consistent fences on
    every pointer chase are stronger than the correctness argument uses.
    The mode picks how {!Native_memory.read} loads a parent word:

    - {!Seq_cst}: every load is [__ATOMIC_SEQ_CST] — the strongest,
      fence-per-hop baseline the original port shipped with.  Kept
      selectable so lincheck and the chaos harness can A/B the tuned path
      against it, and as the conservative fallback on exotic hardware.
    - {!Acquire}: loads are [__ATOMIC_ACQUIRE] — each observed parent
      synchronises with the CAS that installed it.  The portable tuned
      mode: all the ordering [find] actually needs (Lemma 3.1 only
      requires that an observed parent was once the cell's value).
    - {!Relaxed_reads}: parent loads are plain inline reads (no C call, no
      fence) — the fastest mode and the default.  Sound because a stale
      parent is still an ancestor and every write is re-validated by a
      CAS that fails on mismatch.

    Writes are unaffected: links and splitting updates are CAS-published
    in every mode (acq_rel or seq_cst), so snapshot/recovery invariants
    hold regardless of mode. *)

type t = Seq_cst | Acquire | Relaxed_reads

let all = [ Seq_cst; Acquire; Relaxed_reads ]
let default = Relaxed_reads

let to_string = function
  | Seq_cst -> "seq-cst"
  | Acquire -> "acquire"
  | Relaxed_reads -> "relaxed-reads"

let of_string = function
  | "seq-cst" -> Some Seq_cst
  | "acquire" -> Some Acquire
  | "relaxed-reads" -> Some Relaxed_reads
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = a = b
