(** The concurrent DSU over the {b boxed} memory layout ({!Boxed_memory},
    i.e. [int Atomic.t array] — one heap block per parent word).

    This is the pre-flat-layout implementation, kept only as the baseline
    side of the memory-layout A/B comparison: [bench/main.exe] times it as
    [native/boxed-*] / [micro/*-boxed], and {!Harness.Scalability} sweeps it
    as the [boxed] layout.  It runs the identical {!Dsu_algorithm} code (same
    policies, same telemetry wrappers) — only [Memory_intf.S] differs.

    Use {!Dsu_native} for real work; this module exists so the claimed
    speedup of the flat layout stays measurable forever. *)

type t

val create :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?backoff:bool ->
  ?collect_stats:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  ?seed:int ->
  int ->
  t
(** [backoff] as in {!Dsu_native.create} — kept identical so layout A/B
    runs compare memory layouts only. *)

val n : t -> int
val same_set : t -> int -> int -> bool
val unite : t -> int -> int -> unit
val find : t -> int -> int

val unite_batch : t -> int array -> int array -> unit
(** The {!Dsu_algorithm.Make.unite_batch} bulk kernel over the boxed
    layout, so bulk-vs-per-op comparisons can A/B memory layouts too. *)

val same_set_batch : t -> int array -> int array -> bool array
val find_batch : t -> int array -> int array
val id : t -> int -> int
val parent_of : t -> int -> int
val is_root : t -> int -> bool
val count_sets : t -> int
val stats : t -> Dsu_stats.snapshot
val invariant_violations : t -> (int * int) list
val parents_snapshot : t -> int array

val ids_snapshot : t -> int array
(** The random node order as an array. *)

val snapshot_fuzzy : t -> int array * int array
(** Fuzzy (non-quiescent) [(parents, ids)] scan with
    {!Repro_fault.Site.Snapshot_read} hits per cell; see
    {!Dsu_native.snapshot_fuzzy}. *)

val of_snapshot :
  ?policy:Find_policy.t ->
  ?early:bool ->
  ?backoff:bool ->
  ?collect_stats:bool ->
  ?on_link:(child:int -> parent:int -> unit) ->
  parents:int array ->
  ids:int array ->
  unit ->
  t
(** A fresh boxed structure with the given forest and node order; same
    validation as {!Dsu_native.of_snapshot}.  Raises [Invalid_argument] on
    malformed input. *)
