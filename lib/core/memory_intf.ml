(** The shared-memory primitives the concurrent algorithm needs.

    Cell [i] of the memory holds the parent of node [i].  Only single-word
    atomic reads and compare-and-swaps are required — this is the point of
    randomized linking: unlike linking by rank or size, no second word ever
    has to change together with a parent pointer (Section 3).

    Two instantiations exist: {!Dsu.Native_memory} over [Atomic] for real
    OCaml 5 domains, and {!Dsu_sim.Sim_memory} over the APRAM simulator's
    effect-based shared memory for exact step counting. *)

module type S = sig
  type t

  val read : t -> int -> int
  (** Atomic load of node [i]'s parent. *)

  val cas : t -> int -> int -> int -> bool
  (** [cas t i expected desired] atomically replaces node [i]'s parent. *)
end
