(** The shared-memory primitives the concurrent algorithm needs.

    Cell [i] of the memory holds the parent of node [i].  Only single-word
    atomic reads and compare-and-swaps are required — this is the point of
    randomized linking: unlike linking by rank or size, no second word ever
    has to change together with a parent pointer (Section 3).

    Two instantiations exist: {!Dsu.Native_memory} over [Atomic] for real
    OCaml 5 domains, and {!Dsu_sim.Sim_memory} over the APRAM simulator's
    effect-based shared memory for exact step counting. *)

module type S = sig
  type t

  val read : t -> int -> int
  (** Atomic load of node [i]'s parent. *)

  val cas : t -> int -> int -> int -> bool
  (** [cas t i expected desired] atomically replaces node [i]'s parent.
      Strong: fails only if the cell did not hold [expected]. *)

  val cas_weak : t -> int -> int -> int -> bool
  (** Like {!cas} but {e may fail spuriously} (return [false] with the cell
      unchanged even though it held [expected]).  Use only where a failed
      attempt needs no distinct handling from a lost race — the splitting
      updates of Algorithms 4/5, where a spurious failure is exactly a
      failed try.  Implementations without a cheaper weak CAS may equate it
      with {!cas}. *)

  val prefetch : t -> int -> unit
  (** Hint that node [i]'s cell is about to be read.  Purely advisory —
      never faults, never counts as a memory step; simulator instances
      make it a no-op. *)
end
