(** The concurrent disjoint-set-union algorithm of Jayanti and Tarjan,
    parameterized by the shared-memory implementation.

    The functor body transcribes the paper's pseudocode:

    - [find] is Algorithm 1 ([No_compaction]), Algorithm 4
      ([One_try_splitting]) or Algorithm 5 ([Two_try_splitting]);
    - [same_set] and [unite] are Algorithms 2 and 3, or — with
      [~early:true] — the early-termination Algorithms 6 and 7 that
      interleave the two finds and always step from the node with the
      smaller id.

    Node ids are fixed uniformly at random at creation (randomized linking,
    Section 3): [Unite] always links the root with the smaller id below the
    root with the larger id, so every link is one [Cas] on one word and the
    structure needs no rank or size fields.  Ids are immutable, so processes
    read them from ordinary (non-shared-memory-step) storage.

    One deliberate deviation from the printed pseudocode: Algorithms 6 and 7
    perform the splitting [Cas(u.parent, z, w)] even when [z = w]; a [Cas]
    that would store the value already present is unobservable, so we skip
    it.  This only lowers constant factors and is noted in EXPERIMENTS.md. *)

module Make (M : Memory_intf.S) = struct
  module Backoff = Repro_util.Backoff

  type t = {
    mem : M.t;
    n : int;
    prio : int -> int;
        (** [prio i] = node [i]'s position in the random total order.  Ties
            are broken by node index, so priorities need not be distinct
            (needed by the growable extension, where priorities are drawn
            on the fly from a large universe). *)
    policy : Find_policy.t;
    early : bool;
    backoff : bool;
        (** Bounded exponential backoff after a failed {e link} CAS in
            [unite].  A failed link means another domain just linked the
            same root, so an immediate retry mostly re-collides; splitting
            CAS failures never back off (they are not retried at all beyond
            the policy's second try). *)
    stats : Dsu_stats.t option;
    on_link : (child:int -> parent:int -> unit) option;
  }

  let create ?(policy = Find_policy.Two_try_splitting) ?(early = false)
      ?(backoff = true) ?stats ?on_link ~mem ~n ~prio () =
    if n < 1 then invalid_arg "Dsu_algorithm.create: n must be >= 1";
    { mem; n; prio; policy; early; backoff; stats; on_link }

  let n t = t.n
  let mem t = t.mem
  let policy t = t.policy
  let early t = t.early
  let backoff t = t.backoff
  let stats t = t.stats

  let id t i = t.prio i

  let less t u v =
    let pu = t.prio u and pv = t.prio v in
    pu < pv || (pu = pv && u < v)

  let bump t f = match t.stats with None -> () | Some s -> f s

  let record_link t ~child ~parent =
    match t.on_link with None -> () | Some f -> f ~child ~parent

  (* Telemetry (lib/obs) and fault injection (lib/fault).  A per-hop armed
     test would cost a load, a call and a branch on every parent-pointer
     hop, which is measurable on the native fast path, so each find loop
     exists twice: the plain body below, byte-identical to the untraced
     algorithm, and an instrumented twin ([..._obs]) carrying both the
     telemetry hooks and the labeled fault-injection sites (see
     {!Repro_fault.Site}).  [find_root] picks a body with one atomic load
     each of [Dsu_obs.armed] and [Repro_fault.Inject.armed] per traversal,
     and the outer loops test them only at their (rare) retry/link/
     early-step sites — never via a captured binding or functor-level
     helper, either of which would be captured into every per-operation
     loop closure and grow each operation's allocation by a word; spelling
     out [Atomic.get Dsu_obs.armed] compiles to a global access instead.
     The hooks themselves are individually gated too (telemetry by the
     registry switch, fault sites by per-domain enrollment), so a stale
     pick is safe either way. *)

  module Fi = Repro_fault.Inject

  (* Shorthands for the compiled-in fault sites.  Each expands to an atomic
     load + branch when fault injection is disarmed; [Fi.hit] may raise
     [Repro_fault.Inject.Crashed] to model crash-stop mid-operation. *)
  let[@inline] fault_hop () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Find_hop

  let[@inline] fault_gap () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_read_gap

  let[@inline] fault_split_pre () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_cas_pre

  let[@inline] fault_split_post () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_cas_post

  let[@inline] fault_link_pre () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Link_cas_pre

  let[@inline] fault_link_post () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Link_cas_post

  (* Algorithm 1: Find without compaction. *)
  let find_no_compaction t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      let p = M.read t.mem u in
      if p = u then u else loop p
    in
    loop x

  let find_no_compaction_obs t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let p = M.read t.mem u in
      if p = u then u else loop p
    in
    loop x

  (* Algorithm 4: Find with one-try splitting.  The splitting update is a
     {e weak} CAS: Algorithm 4 already tolerates a failed try (it advances
     regardless), so a spurious failure is indistinguishable from losing a
     race and the semantics are unchanged.  Same in every splitting CAS
     below. *)
  let find_one_try t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      let v = M.read t.mem u in
      let w = M.read t.mem v in
      if v = w then v
      else begin
        let ok = M.cas_weak t.mem u v w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        loop v
      end
    in
    loop x

  let find_one_try_obs t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let v = M.read t.mem u in
      fault_gap ();
      let w = M.read t.mem v in
      if v = w then v
      else begin
        fault_split_pre ();
        let ok = M.cas_weak t.mem u v w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        Dsu_obs.on_compaction_cas ~node:u ~ok;
        fault_split_post ();
        loop v
      end
    in
    loop x

  (* Algorithm 5: Find with two-try splitting.  Each parent update is tried
     twice before the traversal advances; [u] advances to the second try's
     [v]. *)
  let find_two_try t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      let v = M.read t.mem u in
      let w = M.read t.mem v in
      if v = w then v
      else begin
        let ok = M.cas_weak t.mem u v w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        let v2 = M.read t.mem u in
        let w2 = M.read t.mem v2 in
        if v2 = w2 then v2
        else begin
          let ok2 = M.cas_weak t.mem u v2 w2 in
          bump t (Dsu_stats.incr_compaction_cas ~ok:ok2);
          loop v2
        end
      end
    in
    loop x

  let find_two_try_obs t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let v = M.read t.mem u in
      fault_gap ();
      let w = M.read t.mem v in
      if v = w then v
      else begin
        fault_split_pre ();
        let ok = M.cas_weak t.mem u v w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        Dsu_obs.on_compaction_cas ~node:u ~ok;
        fault_split_post ();
        let v2 = M.read t.mem u in
        fault_gap ();
        let w2 = M.read t.mem v2 in
        if v2 = w2 then v2
        else begin
          fault_split_pre ();
          let ok2 = M.cas_weak t.mem u v2 w2 in
          bump t (Dsu_stats.incr_compaction_cas ~ok:ok2);
          Dsu_obs.on_compaction_cas ~node:u ~ok:ok2;
          fault_split_post ();
          loop v2
        end
      end
    in
    loop x

  (* Concurrent path halving (van der Weide's rule): the same
     grandparent-swing CAS as one-try splitting, but the traversal advances
     two hops — to the grandparent — instead of one, so each pass visits
     half the path.  Every successful CAS replaces a parent by its current
     grandparent, an ancestor move, so Lemma 3.1's correctness argument is
     unchanged; like the splitting CASes it is weak (a spurious failure is
     just a skipped compaction). *)
  let find_halving t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      let v = M.read t.mem u in
      if v = u then u
      else begin
        let w = M.read t.mem v in
        if v = w then v
        else begin
          let ok = M.cas_weak t.mem u v w in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          loop w
        end
      end
    in
    loop x

  let find_halving_obs t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let v = M.read t.mem u in
      if v = u then u
      else begin
        fault_gap ();
        let w = M.read t.mem v in
        if v = w then v
        else begin
          fault_split_pre ();
          let ok = M.cas_weak t.mem u v w in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          Dsu_obs.on_compaction_cas ~node:u ~ok;
          fault_split_post ();
          loop w
        end
      end
    in
    loop x

  (* Concurrent two-pass compression (Section 6 conjecture).  Pass one walks
     to the current root recording each (node, observed parent) pair; pass
     two Cas-es each node's parent from the recorded value to the found
     root.  Because the root found in pass one is an ancestor (in the union
     forest) of every recorded parent, every successful Cas replaces a
     parent by a proper ancestor, exactly the invariant Lemma 3.1 needs; a
     Cas that fails because another process moved the parent first is
     simply skipped. *)
  let find_compression t x =
    let rec walk u acc =
      bump t Dsu_stats.incr_find_iter;
      let p = M.read t.mem u in
      if p = u then (u, acc) else walk p ((u, p) :: acc)
    in
    let root, path = walk x [] in
    List.iter
      (fun (u, observed_parent) ->
        if observed_parent <> root then begin
          let ok = M.cas_weak t.mem u observed_parent root in
          bump t (Dsu_stats.incr_compaction_cas ~ok)
        end)
      path;
    root

  let find_compression_obs t x =
    let rec walk u acc =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let p = M.read t.mem u in
      if p = u then (u, acc) else walk p ((u, p) :: acc)
    in
    let root, path = walk x [] in
    List.iter
      (fun (u, observed_parent) ->
        if observed_parent <> root then begin
          fault_split_pre ();
          let ok = M.cas_weak t.mem u observed_parent root in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          Dsu_obs.on_compaction_cas ~node:u ~ok;
          fault_split_post ()
        end)
      path;
    root

  let find_root t x =
    bump t Dsu_stats.incr_find;
    if Atomic.get Dsu_obs.armed || Atomic.get Fi.armed then begin
      Dsu_obs.find_begin x;
      let root =
        match t.policy with
        | Find_policy.No_compaction -> find_no_compaction_obs t x
        | Find_policy.One_try_splitting -> find_one_try_obs t x
        | Find_policy.Two_try_splitting -> find_two_try_obs t x
        | Find_policy.Halving -> find_halving_obs t x
        | Find_policy.Compression -> find_compression_obs t x
      in
      Dsu_obs.find_end x root;
      root
    end
    else
      match t.policy with
      | Find_policy.No_compaction -> find_no_compaction t x
      | Find_policy.One_try_splitting -> find_one_try t x
      | Find_policy.Two_try_splitting -> find_two_try t x
      | Find_policy.Halving -> find_halving t x
      | Find_policy.Compression -> find_compression t x

  let check_node t x =
    if x < 0 || x >= t.n then invalid_arg "Dsu: node out of range"

  let find t x =
    check_node t x;
    find_root t x

  (* One early-termination step from node [u] (Algorithms 6 and 7, lines
     7-11): advance [u] one hop along its find path, doing the splitting
     [Cas] once or twice according to the policy.  [z], the parent of [u]
     already read by the caller's root test, is reused rather than re-read —
     the printed pseudocode reads it twice; merging the reads only removes a
     redundant access (noted in EXPERIMENTS.md).  Returns the new [u]. *)
  let early_step t u z =
    bump t Dsu_stats.incr_find_iter;
    match t.policy with
    | Find_policy.No_compaction | Find_policy.Compression ->
      (* Full compression needs a complete find path, which the interleaved
         early-termination walk never has; its steps are plain hops. *)
      z
    | Find_policy.One_try_splitting ->
      let w = M.read t.mem z in
      if z <> w then begin
        let ok = M.cas_weak t.mem u z w in
        bump t (Dsu_stats.incr_compaction_cas ~ok)
      end;
      z
    | Find_policy.Halving ->
      (* Same CAS as one-try, but advance to the grandparent — still an
         ancestor of [u], so the early-termination invariant holds. *)
      let w = M.read t.mem z in
      if z <> w then begin
        let ok = M.cas_weak t.mem u z w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        w
      end
      else z
    | Find_policy.Two_try_splitting ->
      let w = M.read t.mem z in
      if z <> w then begin
        let ok = M.cas_weak t.mem u z w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        let z2 = M.read t.mem u in
        let w2 = M.read t.mem z2 in
        if z2 <> w2 then begin
          let ok2 = M.cas_weak t.mem u z2 w2 in
          bump t (Dsu_stats.incr_compaction_cas ~ok:ok2)
        end;
        z2
      end
      else z

  let early_step_obs t u z =
    bump t Dsu_stats.incr_find_iter;
    Dsu_obs.on_find_iter ();
    fault_hop ();
    match t.policy with
    | Find_policy.No_compaction | Find_policy.Compression -> z
    | Find_policy.One_try_splitting ->
      fault_gap ();
      let w = M.read t.mem z in
      if z <> w then begin
        fault_split_pre ();
        let ok = M.cas_weak t.mem u z w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        Dsu_obs.on_compaction_cas ~node:u ~ok;
        fault_split_post ()
      end;
      z
    | Find_policy.Halving ->
      fault_gap ();
      let w = M.read t.mem z in
      if z <> w then begin
        fault_split_pre ();
        let ok = M.cas_weak t.mem u z w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        Dsu_obs.on_compaction_cas ~node:u ~ok;
        fault_split_post ();
        w
      end
      else z
    | Find_policy.Two_try_splitting ->
      fault_gap ();
      let w = M.read t.mem z in
      if z <> w then begin
        fault_split_pre ();
        let ok = M.cas_weak t.mem u z w in
        bump t (Dsu_stats.incr_compaction_cas ~ok);
        Dsu_obs.on_compaction_cas ~node:u ~ok;
        fault_split_post ();
        let z2 = M.read t.mem u in
        fault_gap ();
        let w2 = M.read t.mem z2 in
        if z2 <> w2 then begin
          fault_split_pre ();
          let ok2 = M.cas_weak t.mem u z2 w2 in
          bump t (Dsu_stats.incr_compaction_cas ~ok:ok2);
          Dsu_obs.on_compaction_cas ~node:u ~ok:ok2;
          fault_split_post ()
        end;
        z2
      end
      else z

  (* Algorithm 2: SameSet via two complete finds per round. *)
  let same_set_plain t x y =
    let rec loop u v ~first =
      if not first then begin
        bump t Dsu_stats.incr_outer_retry;
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
      end;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then true
      else if M.read t.mem u = u then false
      else loop u v ~first:false
    in
    loop x y ~first:true

  (* Algorithm 6: SameSet with early termination — always step from the
     smaller of the two current nodes; answer as soon as the smaller one is
     a root. *)
  let same_set_early t x y =
    let rec loop u v ~first =
      if not first then begin
        bump t Dsu_stats.incr_outer_retry;
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
      end;
      if u = v then true
      else begin
        let u, v = if less t v u then (v, u) else (u, v) in
        let z = M.read t.mem u in
        if z = u then false
        else begin
          let u =
            if Atomic.get Dsu_obs.armed || Atomic.get Fi.armed then
              early_step_obs t u z
            else early_step t u z
          in
          loop u v ~first:false
        end
      end
    in
    loop x y ~first:true

  (* Algorithm 3: Unite via two complete finds per round; link the root with
     the smaller id below the other with one Cas.  The link CAS stays
     {e strong} (a reported failure must mean a real conflict) because a
     failure triggers the bounded exponential backoff: another domain just
     linked the same root, so an immediate retry mostly re-collides.  The
     spin count [spins] is threaded as an unboxed loop argument. *)
  let unite_plain t x y =
    let rec loop u v spins ~first =
      if not first then begin
        bump t Dsu_stats.incr_outer_retry;
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
      end;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then ()
      else if less t u v then begin
        fault_link_pre ();
        let ok = M.cas t.mem u u v in
        bump t (Dsu_stats.incr_link_cas ~ok);
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_link_cas ~node:u ~ok;
        fault_link_post ();
        if ok then record_link t ~child:u ~parent:v
        else
          loop u v (if t.backoff then Backoff.once spins else spins) ~first:false
      end
      else begin
        fault_link_pre ();
        let ok = M.cas t.mem v v u in
        bump t (Dsu_stats.incr_link_cas ~ok);
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_link_cas ~node:v ~ok;
        fault_link_post ();
        if ok then record_link t ~child:v ~parent:u
        else
          loop u v (if t.backoff then Backoff.once spins else spins) ~first:false
      end
    in
    loop x y Backoff.initial ~first:true

  (* Algorithm 7: Unite with early termination.  The printed pseudocode uses
     an unconditional linking Cas as the root test; attempting the Cas only
     after a read observes [u] to be a root costs the same step when [u] is
     a root and saves a wasted Cas when it is not (the Cas still re-verifies
     rootness atomically, so correctness is unchanged). *)
  let unite_early t x y =
    let rec loop u v spins ~first =
      if not first then begin
        bump t Dsu_stats.incr_outer_retry;
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
      end;
      if u = v then ()
      else begin
        let u, v = if less t v u then (v, u) else (u, v) in
        let z = M.read t.mem u in
        if z = u then begin
          fault_link_pre ();
          let ok = M.cas t.mem u u v in
          bump t (Dsu_stats.incr_link_cas ~ok);
          if Atomic.get Dsu_obs.armed then Dsu_obs.on_link_cas ~node:u ~ok;
          fault_link_post ();
          if ok then record_link t ~child:u ~parent:v
          else
            (* Only a failed link CAS backs off; early steps are progress. *)
            loop u v
              (if t.backoff then Backoff.once spins else spins)
              ~first:false
        end
        else begin
          let u =
            if Atomic.get Dsu_obs.armed || Atomic.get Fi.armed then
              early_step_obs t u z
            else early_step t u z
          in
          loop u v spins ~first:false
        end
      end
    in
    loop x y Backoff.initial ~first:true

  let same_set t x y =
    check_node t x;
    check_node t y;
    bump t Dsu_stats.incr_same_set;
    if t.early then same_set_early t x y else same_set_plain t x y

  let unite t x y =
    check_node t x;
    check_node t y;
    bump t Dsu_stats.incr_unite;
    if t.early then unite_early t x y else unite_plain t x y

  (* ------------------------------------------------------ bulk kernels *)

  (* ConnectIt-style batched processing: one call unites (or queries) a
     whole array of endpoint pairs.  Two per-call optimizations:

     - {b root cache}: a direct-mapped table mapping a recently seen node
       to a recently observed {e ancestor} of it.  Soundness: parents only
       ever move to proper ancestors (Lemma 3.1), so once [a] is an
       ancestor of [x] it stays one forever — [find_root] from the cached
       ancestor lands on exactly the current root of [x]'s tree, and a
       unite from the cached ancestors unites [x]'s and [y]'s sets.  The
       cache lives on the calling domain's stack (allocated per call), so
       it is per-domain by construction and never contended.
     - {b prefetching}: the parent cells of the pair [prefetch_dist]
       slots ahead are prefetched before the current pair is processed.
       Prefetch is a pure hint, so issuing it before the ahead-pair is
       bounds-checked is safe ({!Memory_intf.S.prefetch} never faults).

     The kernels use the plain (non-early) rounds regardless of [t.early]:
     batched callers want the roots settled for the cache.  Fault sites
     and telemetry fire exactly as in [unite] — the link CAS is wrapped in
     [fault_link_pre/post] — so chaos coverage extends to the bulk path. *)

  let cache_bits = 8
  let cache_size = 1 lsl cache_bits
  let cache_mask = cache_size - 1
  let prefetch_dist = 8

  (* Returns a common ancestor of [u] and [v] once they are in one set
     (the link target on success, the shared root when already joined). *)
  let settle_unite t u v =
    let rec loop u v spins ~first =
      if not first then begin
        bump t Dsu_stats.incr_outer_retry;
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
      end;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then u
      else begin
        let child, parent = if less t u v then (u, v) else (v, u) in
        fault_link_pre ();
        let ok = M.cas t.mem child child parent in
        bump t (Dsu_stats.incr_link_cas ~ok);
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_link_cas ~node:child ~ok;
        fault_link_post ();
        if ok then begin
          record_link t ~child ~parent;
          parent
        end
        else
          loop u v (if t.backoff then Backoff.once spins else spins) ~first:false
      end
    in
    loop u v Backoff.initial ~first:true

  let check_batch t op xs ys =
    let len = Array.length xs in
    if Array.length ys <> len then
      invalid_arg (Printf.sprintf "Dsu.%s: endpoint arrays differ in length" op);
    for k = 0 to len - 1 do
      check_node t (Array.unsafe_get xs k);
      check_node t (Array.unsafe_get ys k)
    done;
    len

  let[@inline] cache_hint keys anc x =
    let slot = x land cache_mask in
    if Array.unsafe_get keys slot = x then Array.unsafe_get anc slot else x

  let[@inline] cache_store keys anc x a =
    let slot = x land cache_mask in
    Array.unsafe_set keys slot x;
    Array.unsafe_set anc slot a

  let unite_batch t xs ys =
    let len = check_batch t "unite_batch" xs ys in
    let keys = Array.make cache_size (-1) and anc = Array.make cache_size 0 in
    for k = 0 to len - 1 do
      if k + prefetch_dist < len then begin
        M.prefetch t.mem (Array.unsafe_get xs (k + prefetch_dist));
        M.prefetch t.mem (Array.unsafe_get ys (k + prefetch_dist))
      end;
      let x = Array.unsafe_get xs k and y = Array.unsafe_get ys k in
      bump t Dsu_stats.incr_unite;
      let a = settle_unite t (cache_hint keys anc x) (cache_hint keys anc y) in
      cache_store keys anc x a;
      cache_store keys anc y a
    done

  let same_set_batch t xs ys =
    let len = check_batch t "same_set_batch" xs ys in
    let keys = Array.make cache_size (-1) and anc = Array.make cache_size 0 in
    let out = Array.make len false in
    for k = 0 to len - 1 do
      if k + prefetch_dist < len then begin
        M.prefetch t.mem (Array.unsafe_get xs (k + prefetch_dist));
        M.prefetch t.mem (Array.unsafe_get ys (k + prefetch_dist))
      end;
      let x = Array.unsafe_get xs k and y = Array.unsafe_get ys k in
      bump t Dsu_stats.incr_same_set;
      (* Algorithm 2's rounds, started from the cached ancestors. *)
      let rec loop u v ~first =
        if not first then begin
          bump t Dsu_stats.incr_outer_retry;
          if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
        end;
        let u = find_root t u in
        let v = find_root t v in
        if u = v then begin
          cache_store keys anc x u;
          cache_store keys anc y u;
          true
        end
        else if M.read t.mem u = u then begin
          (* [u]/[v] are (ancestors of) the two distinct roots observed;
             both remain ancestors of their endpoints forever. *)
          cache_store keys anc x u;
          cache_store keys anc y v;
          false
        end
        else loop u v ~first:false
      in
      Array.unsafe_set out k
        (loop (cache_hint keys anc x) (cache_hint keys anc y) ~first:true)
    done;
    out

  let find_batch t xs =
    let len = Array.length xs in
    for k = 0 to len - 1 do
      check_node t (Array.unsafe_get xs k)
    done;
    let keys = Array.make cache_size (-1) and anc = Array.make cache_size 0 in
    let out = Array.make len 0 in
    for k = 0 to len - 1 do
      if k + prefetch_dist < len then
        M.prefetch t.mem (Array.unsafe_get xs (k + prefetch_dist));
      let x = Array.unsafe_get xs k in
      (* [find_root] bumps [incr_find] itself, as in [find]. *)
      let r = find_root t (cache_hint keys anc x) in
      cache_store keys anc x r;
      Array.unsafe_set out k r
    done;
    out

  (* Quiescent inspection helpers.  These read through [M], so under the
     simulator they consume steps; call them only outside measured phases. *)

  let parent_of t x =
    check_node t x;
    M.read t.mem x

  let is_root t x = parent_of t x = x

  let count_sets t =
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if M.read t.mem i = i then incr c
    done;
    !c

  (* The id-monotonicity invariant of Lemma 3.1: every non-root points to a
     node with a strictly larger id. *)
  let invariant_violations t =
    let acc = ref [] in
    for i = t.n - 1 downto 0 do
      let p = M.read t.mem i in
      if p <> i && not (less t i p) then acc := (i, p) :: !acc
    done;
    !acc
end
