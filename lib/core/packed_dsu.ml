(** Concurrent linking-by-rank DSU over a {e bit-packed} single word per
    node — the GBBS [jayanti.h] layout.

    {!Rank_dsu} already packs [(rank, parent)] into one word, but with
    arithmetic coding ([word = rank * n + parent]): every hop pays an
    integer division and a modulo by the {e non-constant} [n] to unpack,
    which the compiler cannot strength-reduce.  Here the word is split
    into fixed bit fields, so unpacking is a mask and a shift and the
    root test is a single bit test:

    {v
      bit 62        (unused — OCaml ints are 63-bit)
      bit 61        root flag (set iff the node is a tree root)
      bits 40..60   rank (21 bits)
      bits  0..39   parent index (40 bits)
    v}

    Link and split each remain a single CAS on the one word, updating
    parent and rank atomically, with no indirection.  The layout bounds
    the universe to [n <= 2^40] nodes (checked at [create]); ranks never
    exceed [ceil(lg n) <= 40], far below the 21-bit field's 2^21 - 1.

    Linking is by rank with ties broken by node index (the winner's rank
    promotion is a separate, best-effort CAS), so — like {!Rank_dsu} —
    the structure needs no independence assumption; [find] supports all
    five compaction policies with rank-preserving updates. *)

(* ------------------------------------------------------- word layout *)

let parent_bits = 40
let rank_bits = 21
let rank_shift = parent_bits
let root_bit = 1 lsl (parent_bits + rank_bits)
let max_nodes = 1 lsl parent_bits
let max_rank = (1 lsl rank_bits) - 1
let parent_mask = max_nodes - 1
let rank_field = max_rank lsl rank_shift

let[@inline] is_root_word w = w land root_bit <> 0
let[@inline] parent_of_word w = w land parent_mask
let[@inline] rank_of_word w = (w land rank_field) lsr rank_shift
let[@inline] root_word ~rank ~node = root_bit lor (rank lsl rank_shift) lor node
let[@inline] child_word ~rank ~parent = (rank lsl rank_shift) lor parent

(* Swing a word's parent field, preserving the rank bits; the root flag is
   cleared (a node given a parent is by definition not a root). *)
let[@inline] with_parent w parent = (w land rank_field) lor parent

let init_word i = root_bit lor i

module Make (M : Memory_intf.S) = struct
  module Backoff = Repro_util.Backoff

  type t = {
    mem : M.t;
    n : int;
    policy : Find_policy.t;
    backoff : bool;
    stats : Dsu_stats.t option;
    on_link : (child:int -> parent:int -> unit) option;
  }

  let create ?(policy = Find_policy.Two_try_splitting) ?(backoff = true) ?stats
      ?on_link ~mem ~n () =
    if n < 1 || n > max_nodes then
      invalid_arg
        (Printf.sprintf
           "Packed_dsu.create: n must be in [1, 2^%d] (parent field is %d \
            bits)"
           parent_bits parent_bits);
    { mem; n; policy; backoff; stats; on_link }

  let record_link t ~child ~parent =
    match t.on_link with None -> () | Some f -> f ~child ~parent

  let n t = t.n
  let mem t = t.mem
  let policy t = t.policy
  let backoff t = t.backoff

  let bump t f = match t.stats with None -> () | Some s -> f s

  (* Instrumented-twin pattern of {!Dsu_algorithm}: each find loop exists
     twice (plain and [_obs], the latter carrying the telemetry hooks and
     labeled fault-injection sites), and [find_root] picks a body with one
     atomic load each of [Dsu_obs.armed] and [Repro_fault.Inject.armed]
     per traversal. *)
  module Fi = Repro_fault.Inject

  let[@inline] fault_hop () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Find_hop

  let[@inline] fault_gap () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_read_gap

  let[@inline] fault_rank_read () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Rank_read

  let[@inline] fault_split_pre () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_cas_pre

  let[@inline] fault_split_post () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Split_cas_post

  let[@inline] fault_link_pre () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Link_cas_pre

  let[@inline] fault_link_post () =
    if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Link_cas_post

  (* Algorithm 1 on packed words: rootness is the flag bit, so each hop is
     one load, one bit test and one mask. *)
  let find_no_compaction t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      let w = M.read t.mem u in
      if is_root_word w then u else loop (parent_of_word w)
    in
    loop x

  let find_no_compaction_obs t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let w = M.read t.mem u in
      if is_root_word w then u else loop (parent_of_word w)
    in
    loop x

  (* One-try splitting: swing [u]'s parent to its grandparent with a weak
     CAS (rank bits preserved), advance one hop. *)
  let find_one_try t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      let wu = M.read t.mem u in
      if is_root_word wu then u
      else begin
        let v = parent_of_word wu in
        let wv = M.read t.mem v in
        if is_root_word wv then v
        else begin
          let ok = M.cas_weak t.mem u wu (with_parent wu (parent_of_word wv)) in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          loop v
        end
      end
    in
    loop x

  let find_one_try_obs t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let wu = M.read t.mem u in
      if is_root_word wu then u
      else begin
        let v = parent_of_word wu in
        fault_gap ();
        let wv = M.read t.mem v in
        if is_root_word wv then v
        else begin
          fault_split_pre ();
          let ok = M.cas_weak t.mem u wu (with_parent wu (parent_of_word wv)) in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          Dsu_obs.on_compaction_cas ~node:u ~ok;
          fault_split_post ();
          loop v
        end
      end
    in
    loop x

  (* Two-try splitting (the {!Rank_dsu} find, re-coded on the bit fields):
     each node gets two splitting attempts before the traversal advances. *)
  let find_two_try t x =
    let try_split u =
      let wu = M.read t.mem u in
      if is_root_word wu then `Root u
      else begin
        let v = parent_of_word wu in
        let wv = M.read t.mem v in
        if is_root_word wv then `Root v
        else begin
          let ok = M.cas_weak t.mem u wu (with_parent wu (parent_of_word wv)) in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          `Advance v
        end
      end
    in
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      match try_split u with
      | `Root r -> r
      | `Advance _ -> (
        match try_split u with `Root r -> r | `Advance v -> loop v)
    in
    loop x

  let find_two_try_obs t x =
    let try_split u =
      let wu = M.read t.mem u in
      if is_root_word wu then `Root u
      else begin
        let v = parent_of_word wu in
        fault_gap ();
        let wv = M.read t.mem v in
        if is_root_word wv then `Root v
        else begin
          fault_split_pre ();
          let ok = M.cas_weak t.mem u wu (with_parent wu (parent_of_word wv)) in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          Dsu_obs.on_compaction_cas ~node:u ~ok;
          fault_split_post ();
          `Advance v
        end
      end
    in
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      match try_split u with
      | `Root r -> r
      | `Advance _ -> (
        match try_split u with `Root r -> r | `Advance v -> loop v)
    in
    loop x

  (* Path halving: the one-try CAS, but the traversal advances two hops. *)
  let find_halving t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      let wu = M.read t.mem u in
      if is_root_word wu then u
      else begin
        let v = parent_of_word wu in
        let wv = M.read t.mem v in
        if is_root_word wv then v
        else begin
          let g = parent_of_word wv in
          let ok = M.cas_weak t.mem u wu (with_parent wu g) in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          loop g
        end
      end
    in
    loop x

  let find_halving_obs t x =
    let rec loop u =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let wu = M.read t.mem u in
      if is_root_word wu then u
      else begin
        let v = parent_of_word wu in
        fault_gap ();
        let wv = M.read t.mem v in
        if is_root_word wv then v
        else begin
          let g = parent_of_word wv in
          fault_split_pre ();
          let ok = M.cas_weak t.mem u wu (with_parent wu g) in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          Dsu_obs.on_compaction_cas ~node:u ~ok;
          fault_split_post ();
          loop g
        end
      end
    in
    loop x

  (* Two-pass compression: pass one records each (node, observed word)
     pair; pass two swings each recorded parent to the found root — every
     successful CAS is an ancestor move, so Lemma 3.1 applies. *)
  let find_compression t x =
    let rec walk u acc =
      bump t Dsu_stats.incr_find_iter;
      let w = M.read t.mem u in
      if is_root_word w then (u, acc) else walk (parent_of_word w) ((u, w) :: acc)
    in
    let root, path = walk x [] in
    List.iter
      (fun (u, wu) ->
        if parent_of_word wu <> root then begin
          let ok = M.cas_weak t.mem u wu (with_parent wu root) in
          bump t (Dsu_stats.incr_compaction_cas ~ok)
        end)
      path;
    root

  let find_compression_obs t x =
    let rec walk u acc =
      bump t Dsu_stats.incr_find_iter;
      Dsu_obs.on_find_iter ();
      fault_hop ();
      let w = M.read t.mem u in
      if is_root_word w then (u, acc) else walk (parent_of_word w) ((u, w) :: acc)
    in
    let root, path = walk x [] in
    List.iter
      (fun (u, wu) ->
        if parent_of_word wu <> root then begin
          fault_split_pre ();
          let ok = M.cas_weak t.mem u wu (with_parent wu root) in
          bump t (Dsu_stats.incr_compaction_cas ~ok);
          Dsu_obs.on_compaction_cas ~node:u ~ok;
          fault_split_post ()
        end)
      path;
    root

  let find_root t x =
    bump t Dsu_stats.incr_find;
    if Atomic.get Dsu_obs.armed || Atomic.get Fi.armed then begin
      Dsu_obs.find_begin x;
      let root =
        match t.policy with
        | Find_policy.No_compaction -> find_no_compaction_obs t x
        | Find_policy.One_try_splitting -> find_one_try_obs t x
        | Find_policy.Two_try_splitting -> find_two_try_obs t x
        | Find_policy.Halving -> find_halving_obs t x
        | Find_policy.Compression -> find_compression_obs t x
      in
      Dsu_obs.find_end x root;
      root
    end
    else
      match t.policy with
      | Find_policy.No_compaction -> find_no_compaction t x
      | Find_policy.One_try_splitting -> find_one_try t x
      | Find_policy.Two_try_splitting -> find_two_try t x
      | Find_policy.Halving -> find_halving t x
      | Find_policy.Compression -> find_compression t x

  let check_node t x =
    if x < 0 || x >= t.n then invalid_arg "Packed_dsu: node out of range"

  let find t x =
    check_node t x;
    find_root t x

  let same_set t x y =
    check_node t x;
    check_node t y;
    bump t Dsu_stats.incr_same_set;
    let rec loop u v ~first =
      if not first then begin
        bump t Dsu_stats.incr_outer_retry;
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
      end;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then true
      else if is_root_word (M.read t.mem u) then false
      else loop u v ~first:false
    in
    loop x y ~first:true

  (* Linking by rank: the lower-ranked root is linked below the higher;
     rank ties break by node index, and the winner's rank promotion is a
     separate best-effort CAS (losing it means someone else promoted or
     linked the winner first, both fine).  The link CAS re-validates the
     whole packed word — parent {e and} rank — so a stale rank read only
     costs a retry.  A failed link backs off like {!Dsu_algorithm}. *)
  let unite_rounds t x y ~on_settled =
    let rec loop u v spins ~first =
      if not first then begin
        bump t Dsu_stats.incr_outer_retry;
        if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
      end;
      let u = find_root t u in
      let v = find_root t v in
      if u = v then on_settled u
      else begin
        let wu = M.read t.mem u in
        let wv = M.read t.mem v in
        fault_rank_read ();
        if not (is_root_word wu && is_root_word wv) then
          loop u v spins ~first:false
        else begin
          let link child wc parent =
            fault_link_pre ();
            let ok =
              M.cas t.mem child wc
                (child_word ~rank:(rank_of_word wc) ~parent)
            in
            bump t (Dsu_stats.incr_link_cas ~ok);
            if ok then record_link t ~child ~parent;
            if Atomic.get Dsu_obs.armed then Dsu_obs.on_link_cas ~node:child ~ok;
            fault_link_post ();
            ok
          in
          let retry () =
            loop u v (if t.backoff then Backoff.once spins else spins)
              ~first:false
          in
          let ru = rank_of_word wu and rv = rank_of_word wv in
          if ru < rv then if link u wu v then on_settled v else retry ()
          else if rv < ru then if link v wv u then on_settled u else retry ()
          else if u < v then begin
            if link u wu v then begin
              ignore (M.cas t.mem v wv (root_word ~rank:(rv + 1) ~node:v));
              on_settled v
            end
            else retry ()
          end
          else if link v wv u then begin
            ignore (M.cas t.mem u wu (root_word ~rank:(ru + 1) ~node:u));
            on_settled u
          end
          else retry ()
        end
      end
    in
    loop x y Backoff.initial ~first:true

  let unite t x y =
    check_node t x;
    check_node t y;
    bump t Dsu_stats.incr_unite;
    unite_rounds t x y ~on_settled:(fun _ -> ())

  (* ---------------------------------------------------- bulk kernels *)

  (* The {!Dsu_algorithm} batched kernels, unchanged in structure: the
     direct-mapped root cache is sound because packed parents also only
     ever move to proper ancestors (splitting/halving/compression swing to
     grandparents or the observed root; links point a root at another
     root), and prefetching the packed cell warms the only word a hop
     touches. *)
  let cache_bits = 8
  let cache_size = 1 lsl cache_bits
  let cache_mask = cache_size - 1
  let prefetch_dist = 8

  (* A common ancestor of [u] and [v] once they are in one set (the link
     target on success, the shared root when already joined). *)
  let settle_unite t u v = unite_rounds t u v ~on_settled:(fun a -> a)

  let check_batch t op xs ys =
    let len = Array.length xs in
    if Array.length ys <> len then
      invalid_arg
        (Printf.sprintf "Packed_dsu.%s: endpoint arrays differ in length" op);
    for k = 0 to len - 1 do
      check_node t (Array.unsafe_get xs k);
      check_node t (Array.unsafe_get ys k)
    done;
    len

  let[@inline] cache_hint keys anc x =
    let slot = x land cache_mask in
    if Array.unsafe_get keys slot = x then Array.unsafe_get anc slot else x

  let[@inline] cache_store keys anc x a =
    let slot = x land cache_mask in
    Array.unsafe_set keys slot x;
    Array.unsafe_set anc slot a

  let unite_batch t xs ys =
    let len = check_batch t "unite_batch" xs ys in
    let keys = Array.make cache_size (-1) and anc = Array.make cache_size 0 in
    for k = 0 to len - 1 do
      if k + prefetch_dist < len then begin
        M.prefetch t.mem (Array.unsafe_get xs (k + prefetch_dist));
        M.prefetch t.mem (Array.unsafe_get ys (k + prefetch_dist))
      end;
      let x = Array.unsafe_get xs k and y = Array.unsafe_get ys k in
      bump t Dsu_stats.incr_unite;
      let a = settle_unite t (cache_hint keys anc x) (cache_hint keys anc y) in
      cache_store keys anc x a;
      cache_store keys anc y a
    done

  let same_set_batch t xs ys =
    let len = check_batch t "same_set_batch" xs ys in
    let keys = Array.make cache_size (-1) and anc = Array.make cache_size 0 in
    let out = Array.make len false in
    for k = 0 to len - 1 do
      if k + prefetch_dist < len then begin
        M.prefetch t.mem (Array.unsafe_get xs (k + prefetch_dist));
        M.prefetch t.mem (Array.unsafe_get ys (k + prefetch_dist))
      end;
      let x = Array.unsafe_get xs k and y = Array.unsafe_get ys k in
      bump t Dsu_stats.incr_same_set;
      let rec loop u v ~first =
        if not first then begin
          bump t Dsu_stats.incr_outer_retry;
          if Atomic.get Dsu_obs.armed then Dsu_obs.on_outer_retry ()
        end;
        let u = find_root t u in
        let v = find_root t v in
        if u = v then begin
          cache_store keys anc x u;
          cache_store keys anc y u;
          true
        end
        else if is_root_word (M.read t.mem u) then begin
          cache_store keys anc x u;
          cache_store keys anc y v;
          false
        end
        else loop u v ~first:false
      in
      Array.unsafe_set out k
        (loop (cache_hint keys anc x) (cache_hint keys anc y) ~first:true)
    done;
    out

  let find_batch t xs =
    let len = Array.length xs in
    for k = 0 to len - 1 do
      check_node t (Array.unsafe_get xs k)
    done;
    let keys = Array.make cache_size (-1) and anc = Array.make cache_size 0 in
    let out = Array.make len 0 in
    for k = 0 to len - 1 do
      if k + prefetch_dist < len then
        M.prefetch t.mem (Array.unsafe_get xs (k + prefetch_dist));
      let x = Array.unsafe_get xs k in
      (* [find_root] bumps [incr_find] itself, as in [find]. *)
      let r = find_root t (cache_hint keys anc x) in
      cache_store keys anc x r;
      Array.unsafe_set out k r
    done;
    out

  (* Quiescent inspection helpers. *)

  let parent_of t x =
    check_node t x;
    parent_of_word (M.read t.mem x)

  let rank_of t x =
    check_node t x;
    rank_of_word (M.read t.mem x)

  let is_root t x =
    check_node t x;
    is_root_word (M.read t.mem x)

  let count_sets t =
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if is_root_word (M.read t.mem i) then incr c
    done;
    !c

  let stats t =
    match t.stats with None -> Dsu_stats.zero | Some s -> Dsu_stats.snapshot s

  let parents_snapshot t =
    Array.init t.n (fun i -> parent_of_word (M.read t.mem i))

  let ranks_snapshot t = Array.init t.n (fun i -> rank_of_word (M.read t.mem i))

  (* Fuzzy (non-quiescent) scan; see {!Rank_dsu.Make.snapshot_fuzzy} — one
     word read per node keeps each (rank, parent) pair internally
     consistent, and cross-node order violations from racing rank
     promotions are left to the {!Repro_durable.Fuzzy} reconciliation
     pass. *)
  let snapshot_fuzzy t =
    let parents = Array.make t.n 0 and ranks = Array.make t.n 0 in
    for i = 0 to t.n - 1 do
      if Atomic.get Fi.armed then Fi.hit Repro_fault.Site.Snapshot_read;
      let w = M.read t.mem i in
      parents.(i) <- parent_of_word w;
      ranks.(i) <- rank_of_word w
    done;
    (parents, ranks)

  (* The by-rank order invariant (the {!Rank_dsu} analogue of Lemma 3.1):
     every non-root points to a strictly larger rank, ties broken by node
     index.  The root flag must also agree with the parent field. *)
  let invariant_violations t =
    let acc = ref [] in
    for i = t.n - 1 downto 0 do
      let w = M.read t.mem i in
      let p = parent_of_word w and r = rank_of_word w in
      if is_root_word w then begin
        if p <> i then acc := (i, p) :: !acc
      end
      else begin
        let wp = M.read t.mem p in
        let rp = rank_of_word wp in
        if p = i || not (r < rp || (r = rp && i < p)) then acc := (i, p) :: !acc
      end
    done;
    !acc
end

(** Native instantiation over {!Native_memory}: the explicit-order
    [Flat_atomic_array] primitives, so parent-word loads follow the chosen
    {!Memory_order} mode and both CASes hit the flat array directly. *)
module Native = struct
  module A = Make (Native_memory)

  type t = A.t

  let create ?policy ?backoff ?memory_order ?(collect_stats = false)
      ?(padded = false) ?on_link n =
    (* Bounds-check before allocating: n > max_nodes must raise
       Invalid_argument, not attempt a 2^40-word allocation. *)
    if n < 1 || n > max_nodes then
      invalid_arg
        (Printf.sprintf
           "Packed_dsu.create: n must be in [1, 2^%d] (parent field is %d \
            bits)"
           parent_bits parent_bits);
    let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
    let mem =
      Native_memory.make ~padded ?order:memory_order n (fun i -> init_word i)
    in
    A.create ?policy ?backoff ?stats ?on_link ~mem ~n ()

  let n = A.n
  let policy = A.policy
  let backoff = A.backoff

  (* Top-level operations time themselves when telemetry is armed, exactly
     as {!Dsu_native} does. *)

  let same_set t x y =
    if Atomic.get Dsu_obs.armed then begin
      let t0 = Dsu_obs.now_ns () in
      let r = A.same_set t x y in
      Dsu_obs.record_same_set_latency t0;
      r
    end
    else A.same_set t x y

  let unite t x y =
    if Atomic.get Dsu_obs.armed then begin
      let t0 = Dsu_obs.now_ns () in
      A.unite t x y;
      Dsu_obs.record_unite_latency t0
    end
    else A.unite t x y

  let find t x =
    if Atomic.get Dsu_obs.armed then Dsu_obs.record_find_op ();
    A.find t x

  let unite_batch t xs ys =
    if Atomic.get Dsu_obs.armed then begin
      let t0 = Dsu_obs.now_ns () in
      A.unite_batch t xs ys;
      Dsu_obs.record_unite_latency t0
    end
    else A.unite_batch t xs ys

  let same_set_batch t xs ys =
    if Atomic.get Dsu_obs.armed then begin
      let t0 = Dsu_obs.now_ns () in
      let r = A.same_set_batch t xs ys in
      Dsu_obs.record_same_set_latency t0;
      r
    end
    else A.same_set_batch t xs ys

  let find_batch t xs =
    if Atomic.get Dsu_obs.armed then Dsu_obs.record_find_op ();
    A.find_batch t xs

  let parent_of = A.parent_of
  let rank_of = A.rank_of
  let is_root = A.is_root
  let count_sets = A.count_sets
  let stats = A.stats
  let invariant_violations = A.invariant_violations
  let memory_order t = Native_memory.order (A.mem t)
  let parents_snapshot = A.parents_snapshot
  let ranks_snapshot = A.ranks_snapshot
  let snapshot_fuzzy = A.snapshot_fuzzy

  let of_snapshot ?policy ?backoff ?memory_order ?(collect_stats = false)
      ?(padded = false) ?on_link ~parents ~ranks () =
    let n = Array.length parents in
    if n < 1 || Array.length ranks <> n then
      invalid_arg "Packed_dsu.of_snapshot: malformed snapshot";
    if n > max_nodes then
      invalid_arg "Packed_dsu.of_snapshot: n overflows the parent field";
    Array.iteri
      (fun i p ->
        if p < 0 || p >= n then
          invalid_arg "Packed_dsu.of_snapshot: parent out of range";
        if ranks.(i) < 0 || ranks.(i) > max_rank then
          invalid_arg "Packed_dsu.of_snapshot: rank overflows the rank field";
        if
          p <> i
          && not (ranks.(i) < ranks.(p) || (ranks.(i) = ranks.(p) && i < p))
        then invalid_arg "Packed_dsu.of_snapshot: parents violate the rank order")
      parents;
    let stats = if collect_stats then Some (Dsu_stats.create ()) else None in
    let mem =
      Native_memory.make ~padded ?order:memory_order n (fun i ->
          if parents.(i) = i then root_word ~rank:ranks.(i) ~node:i
          else child_word ~rank:ranks.(i) ~parent:parents.(i))
    in
    A.create ?policy ?backoff ?stats ?on_link ~mem ~n ()
end
