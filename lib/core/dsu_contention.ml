(* Per-site contention attribution.

   Each domain accumulates into its own DLS-held state (registered on a
   global list the way Trace registers its rings), so recording is
   lock-free and allocation-free after the first hit on a domain; [report]
   merges the states.  The per-node failure table is a Hashtbl keyed by
   node id — a hash insert per *failed* CAS, which is fine because this
   path only runs while the profiler is armed, and CAS failures are the
   rare outcome being counted. *)

module Site = Repro_fault.Site
module J = Repro_obs.Json

let enabled () = Atomic.get Repro_obs.Switch.contention
let set_enabled b = Repro_obs.Switch.set_contention b

type local = {
  mutable link_ok : int;
  mutable link_fail : int;
  mutable split_ok : int;
  mutable split_fail : int;
  mutable retries : int;
  node_fail : (int, int ref) Hashtbl.t; (* node -> failed-CAS count *)
}

let locals = Atomic.make ([] : local list)

let fresh_local () =
  let l =
    {
      link_ok = 0;
      link_fail = 0;
      split_ok = 0;
      split_fail = 0;
      retries = 0;
      node_fail = Hashtbl.create 64;
    }
  in
  let rec push () =
    let cur = Atomic.get locals in
    if not (Atomic.compare_and_set locals cur (l :: cur)) then push ()
  in
  push ();
  l

let key = Domain.DLS.new_key fresh_local

let bump_node l node =
  match Hashtbl.find_opt l.node_fail node with
  | Some r -> incr r
  | None -> Hashtbl.add l.node_fail node (ref 1)

let record_link ~node ~ok =
  let l = Domain.DLS.get key in
  if ok then l.link_ok <- l.link_ok + 1
  else begin
    l.link_fail <- l.link_fail + 1;
    bump_node l node
  end

let record_split ~node ~ok =
  let l = Domain.DLS.get key in
  if ok then l.split_ok <- l.split_ok + 1
  else begin
    l.split_fail <- l.split_fail + 1;
    bump_node l node
  end

let record_retry () =
  let l = Domain.DLS.get key in
  l.retries <- l.retries + 1

let reset () =
  List.iter
    (fun l ->
      l.link_ok <- 0;
      l.link_fail <- 0;
      l.split_ok <- 0;
      l.split_fail <- 0;
      l.retries <- 0;
      Hashtbl.reset l.node_fail)
    (Atomic.get locals)

(* --------------------------------------------------------------- report *)

type site_stat = { site : Site.t; ok : int; fail : int }

type report = {
  sites : site_stat list;
  outer_retries : int;
  node_failures : (int * int) list;
      (* (node, failed CASes), descending by count then ascending by node *)
}

let report () =
  let link_ok = ref 0
  and link_fail = ref 0
  and split_ok = ref 0
  and split_fail = ref 0
  and retries = ref 0 in
  let per_node : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun l ->
      link_ok := !link_ok + l.link_ok;
      link_fail := !link_fail + l.link_fail;
      split_ok := !split_ok + l.split_ok;
      split_fail := !split_fail + l.split_fail;
      retries := !retries + l.retries;
      Hashtbl.iter
        (fun node r ->
          match Hashtbl.find_opt per_node node with
          | Some acc -> acc := !acc + !r
          | None -> Hashtbl.add per_node node (ref !r))
        l.node_fail)
    (Atomic.get locals);
  let node_failures =
    Hashtbl.fold (fun node r acc -> (node, !r) :: acc) per_node []
    |> List.sort (fun (n1, c1) (n2, c2) ->
           if c1 <> c2 then compare c2 c1 else compare n1 n2)
  in
  {
    sites =
      [
        { site = Site.Link_cas; ok = !link_ok; fail = !link_fail };
        { site = Site.Split_cas; ok = !split_ok; fail = !split_fail };
      ];
    outer_retries = !retries;
    node_failures;
  }

let total_failures r =
  List.fold_left (fun acc (_, c) -> acc + c) 0 r.node_failures

let hot_nodes ?(top = 16) r =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take top r.node_failures

(* Node-bucket heatmap: fold the per-node failure counts into [buckets]
   equal id ranges over the universe [0, n).  Nodes outside [0, n) (from
   a differently-sized earlier run) land in the last bucket. *)
let heatmap ~buckets ~n r =
  if buckets <= 0 || n <= 0 then invalid_arg "Contention.heatmap";
  let h = Array.make buckets 0 in
  List.iter
    (fun (node, c) ->
      let b =
        if node < 0 then 0
        else if node >= n then buckets - 1
        else node * buckets / n
      in
      h.(b) <- h.(b) + c)
    r.node_failures;
  h

let root_failure_share ~is_root r =
  let total = total_failures r in
  if total = 0 then 0.0
  else begin
    let at_roots =
      List.fold_left
        (fun acc (node, c) -> if is_root node then acc + c else acc)
        0 r.node_failures
    in
    float_of_int at_roots /. float_of_int total
  end

let to_json ?(top = 16) ?is_root ?heatmap_buckets ?n r =
  let site_json s =
    J.Obj
      [
        ("site", J.String (Site.to_string s.site));
        ("ok", J.Int s.ok);
        ("fail", J.Int s.fail);
      ]
  in
  let hot =
    List.map
      (fun (node, c) ->
        let base = [ ("node", J.Int node); ("failures", J.Int c) ] in
        let base =
          match is_root with
          | Some f -> base @ [ ("is_root", J.Bool (f node)) ]
          | None -> base
        in
        J.Obj base)
      (hot_nodes ~top r)
  in
  let heat =
    match (heatmap_buckets, n) with
    | Some b, Some n when b > 0 && n > 0 ->
      [
        ( "heatmap",
          J.Obj
            [
              ("node_buckets", J.Int b);
              ("universe", J.Int n);
              ( "failures",
                J.List
                  (Array.to_list
                     (Array.map (fun c -> J.Int c) (heatmap ~buckets:b ~n r)))
              );
            ] );
      ]
    | _ -> []
  in
  let share =
    match is_root with
    | Some f -> [ ("root_failure_share", J.Float (root_failure_share ~is_root:f r)) ]
    | None -> []
  in
  J.Obj
    ([
       ("schema", J.String "dsu-contention/v1");
       ("sites", J.List (List.map site_json r.sites));
       ("outer_retries", J.Int r.outer_retries);
       ("total_cas_failures", J.Int (total_failures r));
       ("hot_nodes", J.List hot);
     ]
    @ share @ heat)
