(** First-class points of the implementation plan space.

    Alistarh, Fedorov and Koval ("In Search of the Fastest Concurrent
    Union-Find Algorithm") show that no single (linking rule x compaction
    rule) point wins across workloads; this module names the grid the
    repo can actually run — linking rule x {!Find_policy} compaction x
    {!Memory_order} x link-CAS backoff x memory layout — so ablation
    sweeps, the autotuner ([Harness.Autotune]) and the [--plan] CLI flags
    all speak the same value.

    A plan is {e valid} when the combination is implemented and
    meaningful:

    - [Random_id] linking (the paper's randomized algorithm) runs over
      the [Flat], [Padded] and [Boxed] layouts;
    - [By_rank] linking runs over the [Packed] single-word layout (the
      two-array {!Rank_dsu} comparator is fixed to two-try splitting and
      is deliberately not a plan point);
    - [By_size] linking names the remaining cell of the Alistarh et al.
      grid but has no concurrent implementation here yet — always
      invalid, with a saying-so error;
    - the [Boxed] layout has no memory-order knob ([Atomic.t] is always
      sequentially consistent), so only [Seq_cst] is accepted for it.

    The spec syntax, shared by [bench --plan] and [dsu_workload --plan],
    is five colon-separated fields:

    {v linking:compaction:memory-order:backoff:layout
       e.g.  rand:two-try:relaxed-reads:on:flat
             rank:halving:acquire:off:packed v} *)

type linking = Random_id | By_rank | By_size

let all_linkings = [ Random_id; By_rank; By_size ]

let linking_to_string = function
  | Random_id -> "rand"
  | By_rank -> "rank"
  | By_size -> "size"

let linking_of_string = function
  | "rand" | "random" -> Some Random_id
  | "rank" -> Some By_rank
  | "size" -> Some By_size
  | _ -> None

type layout = Flat | Padded | Boxed | Packed

let all_layouts = [ Flat; Padded; Boxed; Packed ]

let layout_to_string = function
  | Flat -> "flat"
  | Padded -> "flat-padded"
  | Boxed -> "boxed"
  | Packed -> "packed"

let layout_of_string = function
  | "flat" -> Some Flat
  | "flat-padded" | "padded" -> Some Padded
  | "boxed" -> Some Boxed
  | "packed" -> Some Packed
  | _ -> None

type t = {
  linking : linking;
  compaction : Find_policy.t;
  memory_order : Memory_order.t;
  backoff : bool;
  layout : layout;
}

let default =
  {
    linking = Random_id;
    compaction = Find_policy.Two_try_splitting;
    memory_order = Memory_order.default;
    backoff = true;
    layout = Flat;
  }

let equal a b =
  a.linking = b.linking
  && Find_policy.equal a.compaction b.compaction
  && a.memory_order = b.memory_order
  && a.backoff = b.backoff
  && a.layout = b.layout

let to_string p =
  String.concat ":"
    [
      linking_to_string p.linking;
      Find_policy.to_string p.compaction;
      Memory_order.to_string p.memory_order;
      (if p.backoff then "on" else "off");
      layout_to_string p.layout;
    ]

let pp ppf p = Format.pp_print_string ppf (to_string p)

let validate p =
  match (p.linking, p.layout) with
  | By_size, _ ->
    Error
      "by-size linking has no concurrent implementation here yet (see \
       ROADMAP.md); use rand or rank"
  | Random_id, Packed ->
    Error "the packed layout links by rank; use rank:...:packed"
  | By_rank, (Flat | Padded | Boxed) ->
    Error "rank linking requires the packed layout (rank:...:packed)"
  | (Random_id | By_rank), _ ->
    if p.layout = Boxed && p.memory_order <> Memory_order.Seq_cst then
      Error
        "the boxed layout has no memory-order knob (Atomic.t is always \
         seq-cst); spell it rand:...:seq-cst:...:boxed"
    else Ok ()

let is_valid p = Result.is_ok (validate p)

let of_string s =
  match String.split_on_char ':' s with
  | [ l; c; o; b; y ] -> (
    let field what parse v =
      match parse v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad plan %s %S in %S" what v s)
    in
    let ( let* ) = Result.bind in
    let* linking = field "linking rule" linking_of_string l in
    let* compaction = field "compaction rule" Find_policy.of_string c in
    let* memory_order = field "memory order" Memory_order.of_string o in
    let* backoff =
      field "backoff switch"
        (function "on" -> Some true | "off" -> Some false | _ -> None)
        b
    in
    let* layout = field "layout" layout_of_string y in
    let p = { linking; compaction; memory_order; backoff; layout } in
    match validate p with
    | Ok () -> Ok p
    | Error e -> Error (Printf.sprintf "invalid plan %S: %s" s e))
  | _ ->
    Error
      (Printf.sprintf
         "bad plan spec %S (want linking:compaction:order:backoff:layout, \
          e.g. %S)"
         s (to_string default))

(* The registry: every valid point of the grid, in deterministic order.
   [Padded] is omitted from the enumeration — it is the false-sharing
   ablation twin of [Flat], not an independent contender — but remains a
   valid spec for explicit [--plan] requests. *)
let registry =
  let orders = Memory_order.all in
  let backoffs = [ true; false ] in
  let points linking layouts =
    List.concat_map
      (fun layout ->
        List.concat_map
          (fun compaction ->
            List.concat_map
              (fun memory_order ->
                List.filter_map
                  (fun backoff ->
                    let p =
                      { linking; compaction; memory_order; backoff; layout }
                    in
                    if is_valid p then Some p else None)
                  backoffs)
              orders)
          Find_policy.all)
      layouts
  in
  points Random_id [ Flat; Boxed ] @ points By_rank [ Packed ]

(* The short list the fast calibration sweep measures: the default plan,
   its one-axis neighbours that historically matter (compaction rule,
   seq-cst baseline, padding) and the packed by-rank contenders.  Kept
   small on purpose — [--plan auto] runs these on the live machine. *)
let candidates =
  [
    default;
    { default with compaction = Find_policy.One_try_splitting };
    { default with compaction = Find_policy.Halving };
    { default with compaction = Find_policy.Compression };
    { default with memory_order = Memory_order.Seq_cst };
    { default with backoff = false };
    { default with layout = Padded };
    { default with linking = By_rank; layout = Packed };
    {
      default with
      linking = By_rank;
      layout = Packed;
      compaction = Find_policy.Halving;
    };
    {
      default with
      linking = By_rank;
      layout = Packed;
      compaction = Find_policy.One_try_splitting;
    };
  ]
