(** A minimal self-contained JSON tree, printer and parser.

    The exporters build {!t} values and serialize them; the test suite
    re-parses exporter output to prove it is well-formed.  This is
    deliberately tiny (no streaming, no numbers beyond OCaml [int]/[float])
    so the observability layer adds no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization.  Non-finite floats serialize as [null] (JSON has
    no representation for them); everything else round-trips through
    {!parse}. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict parser for the output of {!to_string} (and ordinary JSON):
    objects, arrays, strings with [\uXXXX] escapes, numbers, [true], [false],
    [null].  Numbers without [.], [e] or [E] parse as [Int]. *)

val parse_exn : string -> t
(** @raise Failure on malformed input. *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up key [k]; [None] on other constructors. *)
