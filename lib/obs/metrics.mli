(** The metrics registry: named counters, gauges and log-bucketed histograms.

    {2 Design}

    Counters and histograms are sharded into [slots] cache-padded cells
    indexed by [Domain.self () mod slots]; the hot-path update is a plain,
    unsynchronized load/add/store into the writing domain's own cell, and
    {!snapshot_of} merges the cells on read.  Two consequences, both
    deliberate (this is telemetry, not accounting):

    - concurrently-live domains whose ids collide modulo [slots] may lose
      increments to the race (in practice ids of simultaneously live domains
      are consecutive, so collisions require > [slots] live domains);
    - a snapshot taken while writers are running is a racy read and may mix
      updates from different instants.

    After all writing domains have joined, merged values are exact.

    Gauges record a last-written value, so they are a single [Atomic] cell
    rather than sharded slots.

    Every update first checks the global {!Switch.metrics} flag: with
    telemetry disabled (the default) an instrumentation point costs one
    atomic load and one predictable branch.  Slot storage is only
    allocated on the first {!set_enabled}[ true] (or at creation while
    enabled), so an unarmed program allocates nothing per instrument —
    keeping not just memory but the heap layout of the measured program
    identical to an uninstrumented build.

    Metric creation is idempotent per registry: asking for an existing name
    with the same kind returns the existing instrument; a kind mismatch
    raises [Invalid_argument].  Creation takes a lock and must not be done
    on a hot path. *)

type t
(** A registry: a named collection of instruments. *)

type counter
type gauge
type histogram

val slots : int
(** Number of per-domain cells each sharded instrument carries. *)

val create : unit -> t

val default : t
(** The process-global registry all library instrumentation registers in. *)

val set_enabled : bool -> unit
(** Arm or disarm every metric update in the process (see {!Switch}).
    [set_enabled true] first materializes the slot storage of every
    registered instrument in every registry, so prefer it over flipping
    {!Switch.set_metrics} directly: an instrument whose storage was never
    materialized silently drops its updates. *)

val enabled : unit -> bool

(** {2 Instrument creation} *)

val counter : ?registry:t -> ?help:string -> string -> counter
val gauge : ?registry:t -> ?help:string -> string -> gauge
val histogram : ?registry:t -> ?help:string -> string -> histogram

val hdr_histogram : ?registry:t -> ?help:string -> string -> Hdr.t
(** A registry-owned {!Hdr} histogram: log-linear buckets with ≤1%
    relative quantile error (p999-grade), against the factor-of-two
    error of {!histogram}.  Update through {!observe_hdr} so the sample
    is gated on the metrics switch like every other instrument. *)

(** {2 Hot-path updates} — no-ops while disabled. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c k] with [k < 0] is ignored (counters are monotone). *)

val set : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Record one sample.  Negative samples clamp to [0].  Buckets are powers
    of two: bucket [0] holds the value [0] and bucket [i >= 1] holds values
    in [\[2{^i-1}, 2{^i})]. *)

val observe_hdr : Hdr.t -> int -> unit
(** {!Hdr.observe}, gated on {!Switch.metrics} — the hot-path update for
    instruments created with {!hdr_histogram}. *)

(** {2 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int

type hist_snapshot = {
  count : int;
  sum : int;
  max : int;
  buckets : (int * int) list;
      (** [(inclusive upper bound, count)] for each non-empty bucket, in
          increasing bound order. *)
}

val hist_value : histogram -> hist_snapshot

val quantile : hist_snapshot -> float -> int
(** [quantile h q] for [q] in [\[0, 1\]]: the upper bound of the first
    bucket whose cumulative count reaches [q * count], clamped to the exact
    maximum ever observed; [0] when the histogram is empty.  The estimate
    can exceed the true quantile by at most the bucket width (a factor of
    two). *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of hist_snapshot
  | Hdr_v of Hdr.snapshot

type sample = { name : string; help : string; value : value }

type snapshot = sample list
(** Sorted by metric name. *)

val snapshot_of : t -> snapshot
val snapshot : unit -> snapshot
(** [snapshot () = snapshot_of default]. *)

val reset : ?registry:t -> unit -> unit
(** Zero every instrument in the registry (racy against concurrent
    writers, like {!snapshot_of}; quiesce first for exact semantics). *)
