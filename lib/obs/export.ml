(* ------------------------------------------------------------- metrics *)

let hist_json (h : Metrics.hist_snapshot) =
  [
    ("count", Json.Int h.count);
    ("sum", Json.Int h.sum);
    ("p50", Json.Int (Metrics.quantile h 0.50));
    ("p90", Json.Int (Metrics.quantile h 0.90));
    ("p99", Json.Int (Metrics.quantile h 0.99));
    ("max", Json.Int h.max);
    ( "buckets",
      Json.List
        (List.map
           (fun (upper, c) -> Json.List [ Json.Int upper; Json.Int c ])
           h.buckets) );
  ]

let hdr_json (h : Hdr.snapshot) =
  [
    ("count", Json.Int h.count);
    ("sum", Json.Int h.sum);
    ("p50", Json.Int (Hdr.quantile h 0.50));
    ("p90", Json.Int (Hdr.quantile h 0.90));
    ("p99", Json.Int (Hdr.quantile h 0.99));
    ("p999", Json.Int (Hdr.quantile h 0.999));
    ("min", Json.Int h.min);
    ("max", Json.Int h.max);
    ( "buckets",
      Json.List
        (List.map
           (fun (upper, c) -> Json.List [ Json.Int upper; Json.Int c ])
           h.buckets) );
  ]

let metric_json (s : Metrics.sample) =
  let tail =
    match s.value with
    | Metrics.Counter_v v -> [ ("value", Json.Int v) ]
    | Metrics.Gauge_v v -> [ ("value", Json.Int v) ]
    | Metrics.Histogram_v h -> hist_json h
    | Metrics.Hdr_v h -> hdr_json h
  in
  (* Hdr instruments export as "histogram" too: consumers care about the
     quantile keys, not the bucketing scheme. *)
  let kind =
    match s.value with
    | Metrics.Counter_v _ -> "counter"
    | Metrics.Gauge_v _ -> "gauge"
    | Metrics.Histogram_v _ | Metrics.Hdr_v _ -> "histogram"
  in
  Json.Obj
    (("name", Json.String s.name) :: ("type", Json.String kind) :: tail)

let metrics_jsonl (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Json.to_buffer buf (metric_json s);
      Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf

(* Prometheus exposition: backslash must be escaped before newline, or a
   literal "\n" in a help string round-trips as a line break. *)
let prom_escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let metrics_prometheus (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let header name kind help =
    if help <> "" then
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" name (prom_escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.Counter_v v ->
        header s.name "counter" s.help;
        Buffer.add_string buf (Printf.sprintf "%s %d\n" s.name v)
      | Metrics.Gauge_v v ->
        header s.name "gauge" s.help;
        Buffer.add_string buf (Printf.sprintf "%s %d\n" s.name v)
      | Metrics.Histogram_v h ->
        header s.name "histogram" s.help;
        let cum = ref 0 in
        List.iter
          (fun (upper, c) ->
            cum := !cum + c;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" s.name upper !cum))
          h.buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" s.name h.count);
        Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" s.name h.sum);
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" s.name h.count)
      | Metrics.Hdr_v h ->
        (* 4352 fine-grained buckets would bloat the exposition; a summary
           with precomputed quantiles is the idiomatic Prometheus shape
           for client-side-aggregated percentiles. *)
        header s.name "summary" s.help;
        List.iter
          (fun (label, q) ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%s\"} %d\n" s.name label
                 (Hdr.quantile h q)))
          [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99); ("0.999", 0.999) ];
        Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" s.name h.sum);
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" s.name h.count))
    snap;
  Buffer.contents buf

(* --------------------------------------------------------- chrome trace *)

let bool_arg name b = Json.Obj [ (name, Json.Bool b) ]

let event_fields (e : Trace.event) =
  match e with
  | Trace.Find_start { node } ->
    ("find", "B", Json.Obj [ ("node", Json.Int node) ])
  | Trace.Find_end { node; root; iters } ->
    ( "find",
      "E",
      Json.Obj
        [
          ("node", Json.Int node);
          ("root", Json.Int root);
          ("iters", Json.Int iters);
        ] )
  | Trace.Link_cas { ok } -> ("link_cas", "i", bool_arg "ok" ok)
  | Trace.Compaction_cas { ok } -> ("compaction_cas", "i", bool_arg "ok" ok)
  | Trace.Outer_retry -> ("outer_retry", "i", Json.Obj [])
  | Trace.Sched_decision { pid } ->
    ("sched_decision", "i", Json.Obj [ ("proc", Json.Int pid) ])
  | Trace.Phase_start { name } -> (name, "B", Json.Obj [])
  | Trace.Phase_end { name } -> (name, "E", Json.Obj [])
  | Trace.Instant { name } -> (name, "i", Json.Obj [])

let chrome_trace ?(pid = 0) chunks =
  let events =
    List.concat_map
      (fun (c : Trace.chunk) ->
        List.map
          (fun (r : Trace.record) ->
            let name, ph, args = event_fields r.event in
            let base =
              [
                ("name", Json.String name);
                ("ph", Json.String ph);
                ("ts", Json.Float (Clock.now_us r.ts_ns));
                ("pid", Json.Int pid);
                ("tid", Json.Int c.dom);
                ("args", args);
              ]
            in
            (* Instants need a scope; "t" (thread) keeps them attached to
               the emitting domain's track. *)
            Json.Obj (if ph = "i" then base @ [ ("s", Json.String "t") ] else base))
          c.records)
      chunks
  in
  Json.List events

let chrome_trace_string ?pid chunks = Json.to_string (chrome_trace ?pid chunks)
