type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      (* %.12g is compact and preserves every value the exporters emit
         (timestamps in microseconds, quantile estimates). *)
      Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf item)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------- parsing *)

exception Bad of string

type cursor = { text : string; mutable pos : int }

let error c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some k when k = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let len = String.length word in
  if
    c.pos + len <= String.length c.text
    && String.sub c.text c.pos len = word
  then begin
    c.pos <- c.pos + len;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then error c "bad \\u escape";
        let hex = String.sub c.text c.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> error c "bad \\u escape"
        | Some code ->
          c.pos <- c.pos + 4;
          (* Only BMP code points below 0x80 come back as a plain char;
             anything else is stored as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%04x" code));
        loop ()
      | _ -> error c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec eat () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      eat ()
    | _ -> ()
  in
  eat ();
  let s = String.sub c.text start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string_raw c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string_raw c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length text then Error "trailing garbage"
    else Ok v
  | exception Bad msg -> Error msg

let parse_exn text =
  match parse text with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

let member key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None
