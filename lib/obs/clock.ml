(* The wall-clock fallback (NTP steps, manual clock changes) can go
   backwards between calls; a global high-water mark keeps the reported
   value non-decreasing so latency differences never come out negative.
   Only the fallback branch pays for the CAS — on platforms where the
   monotonic source works (everywhere we run) now_ns stays a single
   clock read. *)
let fallback_floor = Atomic.make 0

let rec clamp_fallback t =
  let seen = Atomic.get fallback_floor in
  if t <= seen then seen
  else if Atomic.compare_and_set fallback_floor seen t then t
  else clamp_fallback t

let now_ns () =
  let t = Int64.to_int (Monotonic_clock.now ()) in
  if t > 0 then t
  else clamp_fallback (int_of_float (Unix.gettimeofday () *. 1e9))

let now_us ns = float_of_int ns /. 1e3

let wall_s () = Unix.gettimeofday ()
