let now_ns () =
  let t = Int64.to_int (Monotonic_clock.now ()) in
  if t > 0 then t else int_of_float (Unix.gettimeofday () *. 1e9)

let now_us ns = float_of_int ns /. 1e3

let wall_s () = Unix.gettimeofday ()
