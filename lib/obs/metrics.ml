let slots = 64
let slot_mask = slots - 1

(* One slot is [stride] words so distinct slots live on distinct cache
   lines (8-byte words, 128-byte padding covers adjacent-line prefetch). *)
let stride = 16

let nbuckets = 63 (* bucket 0 = value 0; bucket i>=1 = [2^(i-1), 2^i) *)

(* Histogram slot layout: one flat int array per slot — cells 0..62 are the
   bucket counts, then count, sum, max.  Each slot is its own heap block,
   which is what keeps writing domains off each other's cache lines. *)
let h_count = nbuckets
let h_sum = nbuckets + 1
let h_max = nbuckets + 2
let h_len = nbuckets + 3

(* Slot storage is allocated lazily, on the enabling transition: an
   unarmed program must not pay the ~0.5 MB the sharded arrays cost — not
   for the memory itself but for the heap-layout shift, which is
   measurable on cache-sensitive workloads allocated after it.  [ [||] ]
   is the "not yet materialized" sentinel; every writer and reader treats
   it as all-zeros. *)
type counter = { mutable c_cells : int array (* slots * stride *) }
type gauge = { g_cell : int Atomic.t }
type histogram = { mutable h_slots : int array array }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Hdr of Hdr.t

type t = {
  lock : Mutex.t;
  mutable items : (string * (string * metric)) list; (* name -> help, metric *)
}

(* Every registry ever created, so the enabling transition can materialize
   all of them.  Registries are few and permanent; no reclamation. *)
let registries = Atomic.make ([] : t list)

let create () =
  let t = { lock = Mutex.create (); items = [] } in
  let rec track () =
    let cur = Atomic.get registries in
    if not (Atomic.compare_and_set registries cur (t :: cur)) then track ()
  in
  track ();
  t

let default = create ()

let enabled () = Atomic.get Switch.metrics

let alloc_counter c =
  if Array.length c.c_cells = 0 then c.c_cells <- Array.make (slots * stride) 0

let alloc_histogram h =
  if Array.length h.h_slots = 0 then
    h.h_slots <- Array.init slots (fun _ -> Array.make h_len 0)

let materialize registry =
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () ->
      List.iter
        (fun (_, (_, metric)) ->
          match metric with
          | Counter c -> alloc_counter c
          | Gauge _ -> ()
          | Histogram h -> alloc_histogram h
          | Hdr h -> Hdr.materialize h)
        registry.items)

(* Storage is published before the switch flips (the atomic set releases
   the array writes), so a writer that observes the switch on also sees
   the arrays.  An instrument registered concurrently with the transition
   may stay unmaterialized until the next [set_enabled true]; its writers
   skip (see the sentinel checks below) rather than crash. *)
let set_enabled on =
  if on then List.iter materialize (Atomic.get registries);
  Switch.set_metrics on

let slot () = (Domain.self () :> int) land slot_mask

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Hdr _ -> "hdr histogram"

let register registry name help make match_existing =
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () ->
      match List.assoc_opt name registry.items with
      | Some (_, existing) -> (
        match match_existing existing with
        | Some m -> m
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name existing)))
      | None ->
        let m = make () in
        registry.items <- (name, (help, m)) :: registry.items;
        m)

let counter ?(registry = default) ?(help = "") name =
  register registry name help
    (fun () ->
      let c = { c_cells = [||] } in
      if enabled () then alloc_counter c;
      Counter c)
    (function Counter _ as m -> Some m | _ -> None)
  |> function
  | Counter c -> c
  | _ -> assert false

let gauge ?(registry = default) ?(help = "") name =
  register registry name help
    (fun () -> Gauge { g_cell = Atomic.make 0 })
    (function Gauge _ as m -> Some m | _ -> None)
  |> function
  | Gauge g -> g
  | _ -> assert false

let histogram ?(registry = default) ?(help = "") name =
  register registry name help
    (fun () ->
      let h = { h_slots = [||] } in
      if enabled () then alloc_histogram h;
      Histogram h)
    (function Histogram _ as m -> Some m | _ -> None)
  |> function
  | Histogram h -> h
  | _ -> assert false

let hdr_histogram ?(registry = default) ?(help = "") name =
  register registry name help
    (fun () ->
      let h = Hdr.create () in
      if enabled () then Hdr.materialize h;
      Hdr h)
    (function Hdr _ as m -> Some m | _ -> None)
  |> function
  | Hdr h -> h
  | _ -> assert false

(* ------------------------------------------------------------- updates *)

let add c k =
  if Atomic.get Switch.metrics && k > 0 then begin
    let cells = c.c_cells in
    if Array.length cells <> 0 then begin
      let i = slot () * stride in
      cells.(i) <- cells.(i) + k
    end
  end

let incr c =
  if Atomic.get Switch.metrics then begin
    let cells = c.c_cells in
    if Array.length cells <> 0 then begin
      let i = slot () * stride in
      cells.(i) <- cells.(i) + 1
    end
  end

let set g v = if Atomic.get Switch.metrics then Atomic.set g.g_cell v

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    let b = bits 0 v in
    if b > nbuckets - 1 then nbuckets - 1 else b
  end

let observe h v =
  if Atomic.get Switch.metrics then begin
    let hs = h.h_slots in
    if Array.length hs <> 0 then begin
      let v = if v < 0 then 0 else v in
      let s = hs.(slot ()) in
      let b = bucket_of v in
      s.(b) <- s.(b) + 1;
      s.(h_count) <- s.(h_count) + 1;
      s.(h_sum) <- s.(h_sum) + v;
      if v > s.(h_max) then s.(h_max) <- v
    end
  end

let observe_hdr h v = if Atomic.get Switch.metrics then Hdr.observe h v

(* ------------------------------------------------------------- reading *)

let counter_value c =
  let cells = c.c_cells in
  if Array.length cells = 0 then 0
  else begin
    let total = ref 0 in
    for s = 0 to slots - 1 do
      total := !total + cells.(s * stride)
    done;
    !total
  end

let gauge_value g = Atomic.get g.g_cell

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

type hist_snapshot = {
  count : int;
  sum : int;
  max : int;
  buckets : (int * int) list;
}

let hist_value h =
  let merged = Array.make h_len 0 in
  Array.iter
    (fun s ->
      for i = 0 to h_len - 1 do
        if i = h_max then merged.(i) <- Stdlib.max merged.(i) s.(i)
        else merged.(i) <- merged.(i) + s.(i)
      done)
    h.h_slots;
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if merged.(i) > 0 then buckets := (bucket_upper i, merged.(i)) :: !buckets
  done;
  {
    count = merged.(h_count);
    sum = merged.(h_sum);
    max = merged.(h_max);
    buckets = !buckets;
  }

let quantile (h : hist_snapshot) q =
  if h.count = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target =
      let t = int_of_float (ceil (q *. float_of_int h.count)) in
      if t < 1 then 1 else t
    in
    let rec scan cum = function
      | [] -> h.max
      | (upper, c) :: rest ->
        let cum = cum + c in
        if cum >= target then Stdlib.min upper h.max else scan cum rest
    in
    scan 0 h.buckets
  end

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of hist_snapshot
  | Hdr_v of Hdr.snapshot

type sample = { name : string; help : string; value : value }

type snapshot = sample list

let snapshot_of registry =
  Mutex.lock registry.lock;
  let items = registry.items in
  Mutex.unlock registry.lock;
  items
  |> List.map (fun (name, (help, metric)) ->
         let value =
           match metric with
           | Counter c -> Counter_v (counter_value c)
           | Gauge g -> Gauge_v (gauge_value g)
           | Histogram h -> Histogram_v (hist_value h)
           | Hdr h -> Hdr_v (Hdr.snap h)
         in
         { name; help; value })
  |> List.sort (fun a b -> compare a.name b.name)

let snapshot () = snapshot_of default

let reset ?(registry = default) () =
  Mutex.lock registry.lock;
  let items = registry.items in
  Mutex.unlock registry.lock;
  List.iter
    (fun (_, (_, metric)) ->
      match metric with
      | Counter c -> Array.fill c.c_cells 0 (Array.length c.c_cells) 0
      | Gauge g -> Atomic.set g.g_cell 0
      | Histogram h -> Array.iter (fun s -> Array.fill s 0 h_len 0) h.h_slots
      | Hdr h -> Hdr.reset h)
    items
