(** Lock-free per-domain event tracing with bounded memory.

    Each domain that calls {!emit} while tracing is armed owns a private
    ring buffer (created on first use through domain-local storage and
    published to a global list with a CAS push — no locks anywhere).  A ring
    holds the last [capacity] events; older events are overwritten and
    counted as dropped, so memory use is bounded by
    [rings * capacity * O(1)] regardless of run length.

    Timestamps come from {!Clock.now_ns}.

    {!dump} reads the rings without synchronizing with writers: call it
    after the traced domains have quiesced (joined) for an exact result. *)

type event =
  | Find_start of { node : int }
  | Find_end of { node : int; root : int; iters : int }
      (** [iters] = parent-pointer steps taken by this find (see
          {!Dsu.Native} instrumentation notes in docs/OBSERVABILITY.md). *)
  | Link_cas of { ok : bool }
  | Compaction_cas of { ok : bool }
  | Outer_retry
  | Sched_decision of { pid : int }
      (** A simulator scheduling decision ({!Apram.Scheduler}). *)
  | Phase_start of { name : string }
  | Phase_end of { name : string }
  | Instant of { name : string }  (** Free-form point event. *)

type record = { ts_ns : int; event : event }

type chunk = {
  dom : int;  (** id of the domain that recorded these events *)
  dropped : int;  (** events overwritten because the ring wrapped *)
  records : record list;  (** surviving events, oldest first *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_capacity : int -> unit
(** Ring capacity (events) for rings created {e after} this call; existing
    rings keep their size.  Default 8192.  Raises [Invalid_argument] on
    non-positive sizes. *)

val emit : event -> unit
(** Record an event in the calling domain's ring; a single atomic load and
    branch while tracing is disarmed. *)

val dump : unit -> chunk list
(** Every ring ever created in this process (including rings of domains
    that have terminated), newest ring first. *)

val clear : unit -> unit
(** Empty all rings and zero their drop counts (rings are kept). *)
