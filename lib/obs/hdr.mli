(** Log-linear ("HDR-style") histogram with bounded relative error.

    Values in [\[0, 255\]] are recorded exactly; each power-of-two octave
    above is split into 128 equal-width sub-buckets, so any reported
    bucket bound overstates a member value by at most {!rel_error}
    (1/128 ≈ 0.78%).  Values above {!max_trackable} (2{^40} − 1 ≈ 18
    minutes in nanoseconds) clamp to it.  This is the instrument behind
    the p999-grade latency quantiles; the factor-of-two
    {!Metrics.histogram} remains for cheap step-count distributions.

    Storage is sharded per domain exactly like {!Metrics} (16 cache-padded
    slots indexed by [Domain.self () mod 16], racy-merge caveats
    identical), and lazily materialized so an unarmed program allocates
    nothing.  [create ~sharded:false] gives a single-slot recorder for
    single-writer use (one per load-generator domain in
    [Harness.Latency]), 16× cheaper in memory. *)

type t

val create : ?sharded:bool -> unit -> t
(** A new histogram with no storage yet; [sharded] defaults to [true]. *)

val materialize : t -> unit
(** Allocate the slot storage.  Until this is called, {!observe} drops
    samples.  {!Metrics.set_enabled}[ true] materializes registered
    instruments; standalone recorders call this themselves. *)

val materialized : t -> bool

val observe : t -> int -> unit
(** Record one sample (unsynchronized write to the calling domain's slot).
    Negative samples clamp to [0], oversized ones to {!max_trackable}.
    No-op until {!materialize}.  Unlike {!Metrics.observe} this is not
    gated on {!Switch.metrics}; registry-owned instances are gated by
    {!Metrics.observe_hdr}. *)

val reset : t -> unit

(** {2 Snapshots} *)

type snapshot = {
  count : int;
  sum : int;
  min : int;  (** exact minimum observed; [0] when empty *)
  max : int;  (** exact maximum observed *)
  buckets : (int * int) list;
      (** [(inclusive upper bound, count)] per non-empty bucket, in
          increasing bound order. *)
}

val empty : snapshot

val snap : t -> snapshot
(** Merge all slots (racy against concurrent writers; exact once they
    have quiesced, like {!Metrics.snapshot_of}). *)

val merge : snapshot -> snapshot -> snapshot
(** Exact, associative and commutative: merging per-domain snapshots in
    any order equals having observed every sample into one histogram. *)

val quantile : snapshot -> float -> int
(** [quantile s q] for [q] in [\[0, 1\]]: the upper bound of the first
    bucket whose cumulative count reaches [ceil (q * count)], clamped to
    the exact maximum.  Overstates the true order statistic by at most
    {!rel_error}; exact for a single sample and everywhere below 256. *)

val mean : snapshot -> float

(** {2 Parameters} *)

val max_trackable : int
val rel_error : float
val n_buckets : int

val bucket_of : int -> int
(** Bucket index of a (clamped) value — exposed for tests. *)

val bucket_upper : int -> int
(** Inclusive upper bound of a bucket index — exposed for tests. *)
