(** The global telemetry switches.

    Metrics, tracing and contention attribution are armed independently
    ({!Metrics.set_enabled}, {!Trace.set_enabled}, the contention module
    in [lib/core]); [any] is maintained as their disjunction so that
    instrumented hot paths pay exactly one atomic load and one predictable
    branch when everything is off — [if Atomic.get Switch.any then ...]. *)

val metrics : bool Atomic.t
val trace : bool Atomic.t
val contention : bool Atomic.t

val any : bool Atomic.t
(** [metrics || trace || contention], kept up to date by the setters
    below. *)

val set_metrics : bool -> unit
val set_trace : bool -> unit
val set_contention : bool -> unit
