(** Fixed-size uniform reservoir sampler (Vitter's Algorithm R).

    Keeps a uniform random subset of at most [capacity] of the values fed
    to it, in O(capacity) memory however many are seen — the exact-sample
    companion to {!Hdr}: the histogram answers quantiles with ≤1%
    error over millions of samples, the reservoir exports a few hundred
    raw values for offline analysis.  Deterministic for a given [seed]
    and call sequence.  Single-writer; not thread-safe. *)

type t

val create : ?seed:int -> capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val add : t -> int -> unit

val seen : t -> int
(** Total values ever offered. *)

val length : t -> int
(** Values currently held: [min (seen t) capacity]. *)

val samples : t -> int array
(** Copy of the held values, arbitrary order. *)

val sorted : t -> int array
(** Copy of the held values, ascending. *)

val exact_quantile : int array -> float -> int
(** [exact_quantile sorted q]: the [ceil (q * n)]-th smallest element of a
    sorted array ([0] when empty) — the same rank convention as
    {!Hdr.quantile}, for error-bound comparisons. *)
