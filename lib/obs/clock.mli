(** Timestamps for telemetry.

    [now_ns] reads the POSIX monotonic clock (via the zero-allocation
    [Monotonic_clock] stub that bechamel ships); if the stub ever reports a
    non-positive time (unsupported platform), it falls back to
    [Unix.gettimeofday], clamped through a process-global high-water mark
    so a wall-clock step backwards cannot yield a decreasing timestamp.
    Telemetry only needs differences and ordering, so the two sources
    never need to agree on an epoch. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary origin; monotone non-decreasing within
    a process on either source (the fallback trades a CAS per read for
    that guarantee; the monotonic source needs none). *)

val now_us : int -> float
(** Convert a [now_ns] timestamp to microseconds (the unit Chrome's
    [trace_event] format expects). *)

val wall_s : unit -> float
(** Wall-clock seconds since the Unix epoch ([Unix.gettimeofday]); for
    human-facing progress reports, not for latency measurement. *)
