let metrics = Atomic.make false
let trace = Atomic.make false
let contention = Atomic.make false
let any = Atomic.make false

let update () =
  Atomic.set any
    (Atomic.get metrics || Atomic.get trace || Atomic.get contention)

let set_metrics b =
  Atomic.set metrics b;
  update ()

let set_trace b =
  Atomic.set trace b;
  update ()

let set_contention b =
  Atomic.set contention b;
  update ()
