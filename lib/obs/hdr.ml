(* Log-linear ("HDR-style") histogram: values below [sub_count] are
   recorded exactly; each octave above is split into [half] equal-width
   sub-buckets, so reporting a bucket's inclusive upper bound overstates a
   member value by at most [1/half] (0.78% with the shipped parameters) —
   tight enough for p999 tails, unlike the factor-of-two buckets of
   {!Metrics.histogram}.  Everything is plain int arithmetic; one
   [observe] is a handful of shifts and stores. *)

let sub_bits = 8
let sub_count = 1 lsl sub_bits (* 256: the exact linear range *)
let half = sub_count / 2 (* sub-buckets per octave above it *)
let max_exp = 40
let max_trackable = (1 lsl max_exp) - 1 (* ~18 minutes in nanoseconds *)
let n_buckets = sub_count + ((max_exp - sub_bits) * half)
let rel_error = 1.0 /. float_of_int half

(* Trailer cells after the bucket counts. *)
let c_count = n_buckets
let c_sum = n_buckets + 1
let c_max = n_buckets + 2
let c_min = n_buckets + 3
let cell_len = n_buckets + 4

(* Sharding mirrors Metrics: per-domain slots, each its own heap block so
   writing domains stay off each other's cache lines.  16 slots (not
   Metrics' 64) because one slot here is ~34 KB; single-writer recorders
   (the latency harness allocates one per load generator) use one slot. *)
let slots = 16
let slot_mask = slots - 1

type t = { sharded : bool; mutable cells : int array array }

let create ?(sharded = true) () = { sharded; cells = [||] }

let fresh_slot () =
  let a = Array.make cell_len 0 in
  a.(c_min) <- max_int;
  a

let materialize t =
  if Array.length t.cells = 0 then
    t.cells <-
      Array.init (if t.sharded then slots else 1) (fun _ -> fresh_slot ())

let materialized t = Array.length t.cells <> 0

let msb v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let bucket_of v =
  if v < sub_count then v
  else begin
    let m = msb v in
    sub_count
    + ((m - sub_bits) * half)
    + ((v - (1 lsl m)) lsr (m - (sub_bits - 1)))
  end

let bucket_upper i =
  if i < sub_count then i
  else begin
    let o = (i - sub_count) / half and r = (i - sub_count) mod half in
    let m = sub_bits + o in
    let width = 1 lsl (m - (sub_bits - 1)) in
    (1 lsl m) + ((r + 1) * width) - 1
  end

let observe t v =
  let cells = t.cells in
  let n = Array.length cells in
  if n <> 0 then begin
    let v =
      if v < 0 then 0 else if v > max_trackable then max_trackable else v
    in
    let s =
      cells.(if n = 1 then 0 else (Domain.self () :> int) land slot_mask)
    in
    let b = bucket_of v in
    s.(b) <- s.(b) + 1;
    s.(c_count) <- s.(c_count) + 1;
    s.(c_sum) <- s.(c_sum) + v;
    if v > s.(c_max) then s.(c_max) <- v;
    if v < s.(c_min) then s.(c_min) <- v
  end

type snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let empty = { count = 0; sum = 0; min = 0; max = 0; buckets = [] }

let snap t =
  if not (materialized t) then empty
  else begin
    let merged = Array.make n_buckets 0 in
    let count = ref 0 and sum = ref 0 and mx = ref 0 and mn = ref max_int in
    Array.iter
      (fun s ->
        for i = 0 to n_buckets - 1 do
          merged.(i) <- merged.(i) + s.(i)
        done;
        count := !count + s.(c_count);
        sum := !sum + s.(c_sum);
        if s.(c_max) > !mx then mx := s.(c_max);
        if s.(c_min) < !mn then mn := s.(c_min))
      t.cells;
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if merged.(i) > 0 then buckets := (bucket_upper i, merged.(i)) :: !buckets
    done;
    {
      count = !count;
      sum = !sum;
      min = (if !count = 0 then 0 else !mn);
      max = !mx;
      buckets = !buckets;
    }
  end

let reset t =
  Array.iter
    (fun s ->
      Array.fill s 0 cell_len 0;
      s.(c_min) <- max_int)
    t.cells

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let rec go xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | (ux, cx) :: tx, (uy, cy) :: ty ->
        if ux < uy then (ux, cx) :: go tx ys
        else if uy < ux then (uy, cy) :: go xs ty
        else (ux, cx + cy) :: go tx ty
    in
    {
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      buckets = go a.buckets b.buckets;
    }
  end

let quantile s q =
  if s.count = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target =
      let t = int_of_float (ceil (q *. float_of_int s.count)) in
      if t < 1 then 1 else t
    in
    let rec scan cum = function
      | [] -> s.max
      | (upper, c) :: rest ->
        let cum = cum + c in
        if cum >= target then Stdlib.min upper s.max else scan cum rest
    in
    scan 0 s.buckets
  end

let mean s =
  if s.count = 0 then 0.0 else float_of_int s.sum /. float_of_int s.count
