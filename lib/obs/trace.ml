type event =
  | Find_start of { node : int }
  | Find_end of { node : int; root : int; iters : int }
  | Link_cas of { ok : bool }
  | Compaction_cas of { ok : bool }
  | Outer_retry
  | Sched_decision of { pid : int }
  | Phase_start of { name : string }
  | Phase_end of { name : string }
  | Instant of { name : string }

type record = { ts_ns : int; event : event }

type ring = {
  dom : int;
  cap : int;
  ts : int array;
  evs : event array;
  mutable written : int;
      (** Total events ever emitted; the ring holds the last [cap]. *)
}

type chunk = { dom : int; dropped : int; records : record list }

let set_enabled = Switch.set_trace
let enabled () = Atomic.get Switch.trace

let capacity = Atomic.make 8192

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  Atomic.set capacity n

(* All rings ever created, newest first; pushed with a CAS loop so ring
   creation never blocks another domain. *)
let rings : ring list Atomic.t = Atomic.make []

let push_ring r =
  let rec go () =
    let old = Atomic.get rings in
    if not (Atomic.compare_and_set rings old (r :: old)) then go ()
  in
  go ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let cap = Atomic.get capacity in
      let r =
        {
          dom = (Domain.self () :> int);
          cap;
          ts = Array.make cap 0;
          evs = Array.make cap Outer_retry;
          written = 0;
        }
      in
      push_ring r;
      r)

let emit event =
  if Atomic.get Switch.trace then begin
    let r = Domain.DLS.get ring_key in
    let i = r.written mod r.cap in
    r.ts.(i) <- Clock.now_ns ();
    r.evs.(i) <- event;
    r.written <- r.written + 1
  end

let chunk_of_ring r =
  let written = r.written in
  let kept = if written > r.cap then r.cap else written in
  let first = written - kept in
  let records =
    List.init kept (fun k ->
        let i = (first + k) mod r.cap in
        { ts_ns = r.ts.(i); event = r.evs.(i) })
  in
  { dom = r.dom; dropped = written - kept; records }

let dump () = List.map chunk_of_ring (Atomic.get rings)

let clear () = List.iter (fun r -> r.written <- 0) (Atomic.get rings)
