(* Vitter's Algorithm R with a self-contained splitmix64 stream (repro_obs
   sits below repro_util in the dependency order, so no Rng here).  The
   k-th call sequence on a given seed is deterministic, which keeps
   harness exports reproducible. *)

type t = {
  cap : int;
  buf : int array;
  mutable seen : int;
  mutable state : int64;
}

let create ?(seed = 0x5EED) ~capacity () =
  if capacity <= 0 then
    invalid_arg "Reservoir.create: capacity must be positive";
  {
    cap = capacity;
    buf = Array.make capacity 0;
    seen = 0;
    state = Int64.of_int (seed lxor 0x9E3779B9);
  }

let mix z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_below t n =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  Int64.to_int (mix t.state) land max_int mod n

let add t v =
  t.seen <- t.seen + 1;
  if t.seen <= t.cap then t.buf.(t.seen - 1) <- v
  else begin
    let j = rand_below t t.seen in
    if j < t.cap then t.buf.(j) <- v
  end

let seen t = t.seen
let length t = Stdlib.min t.seen t.cap
let samples t = Array.sub t.buf 0 (length t)

let sorted t =
  let a = samples t in
  Array.sort compare a;
  a

let exact_quantile a q =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let k = int_of_float (ceil (q *. float_of_int n)) in
    a.((if k < 1 then 1 else k) - 1)
  end
