(** Exporters: metrics as JSON-lines or Prometheus text exposition, traces
    as Chrome [trace_event] JSON (loadable in [about://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}). *)

val metric_json : Metrics.sample -> Json.t
(** One metric as one JSON object:
    [{"name":..., "type":"counter", "value":...}] for counters and gauges;
    [{"name":..., "type":"histogram", "count":..., "sum":..., "p50":...,
    "p90":..., "p99":..., "max":..., "buckets":[[upper, count], ...]}]
    for histograms.  {!Hdr} instruments also export as
    ["type":"histogram"] and add ["p999"] and ["min"] keys (their
    quantiles are ≤1% error rather than factor-of-two). *)

val metrics_jsonl : Metrics.snapshot -> string
(** One {!metric_json} object per line, sorted by name, each line valid
    JSON on its own. *)

val metrics_prometheus : Metrics.snapshot -> string
(** Prometheus text exposition (version 0.0.4): [# HELP]/[# TYPE] headers,
    histograms as cumulative [_bucket{le="..."}] series plus [_sum] and
    [_count]; {!Hdr} instruments as [summary] series with
    [quantile="0.5" … "0.999"] labels (their thousands of fine-grained
    buckets would bloat a [_bucket] exposition). *)

val chrome_trace : ?pid:int -> Trace.chunk list -> Json.t
(** The Chrome [trace_event] array format: every event is an object with
    [name], [ph], [ts] (microseconds), [pid], [tid] (the recording domain's
    id) and an [args] object.  [Find_start]/[Find_end] and
    [Phase_start]/[Phase_end] map to ["B"]/["E"] duration events, everything
    else to ["i"] instants.  Events are emitted oldest-first per domain;
    ring wraparound can orphan a ["B"] or ["E"] at a chunk edge, which the
    viewers tolerate. *)

val chrome_trace_string : ?pid:int -> Trace.chunk list -> string
