(* Bechamel micro-benchmarks: one Test.make per experiment family of
   DESIGN.md §5 (wall-clock timing of the code paths each experiment
   exercises — the experiments' own tables, which are step-count based and
   deterministic, are produced by bin/experiments.exe).

   stdout gets the human-readable table only (nanoseconds per run for every
   benchmark, plus R² of the fit).  Machine-readable output goes to files:

     --out FILE           results as a JSON document
     --metrics-out FILE   enable telemetry during the runs and dump the
                          metrics registry as JSON lines
     --filter SUBSTR      run only benchmarks whose name contains SUBSTR
                          (repeatable; used by the CI bench-smoke job)
     --fast               reduced measurement quota, for smoke runs
     --baseline FILE      diff this run against a previous --out document
                          (Harness.Perfdiff; --diff-threshold sets the noise
                          floor, --diff-out writes the dsu-perfdiff/v1
                          artifact, --diff-fail turns regressions into exit 3)

   keeping stdout parse-free for the perf-trajectory tooling.

   A second mode, --parallel, skips bechamel entirely and runs the
   domain-parallel scalability sweep (Harness.Scalability): one shared DSU
   under 1..N domains, across find policies, memory layouts (flat /
   cache-line-padded / boxed), parent-load memory orders, link-CAS backoff
   on/off, and key distributions (uniform / skewed).  --out then writes
   the dsu-scalability/v2 JSON document; see docs/PERFORMANCE.md.

   --plan SPEC|auto (implies --parallel) pins the sweep to one plan point
   (linking:compaction:order:backoff:layout), or — with "auto" — asks
   Harness.Autotune for the fastest plan on the swept profile (cached by
   profile fingerprint in --autotune-cache; --autotune-out writes the
   dsu-autotune/v1 report).

   --guard-tuned PCT (with --parallel) is the CI perf regression gate,
   exit 1 on failure.  With --plan it compares the tuned plan against the
   default plan through the perfdiff differ; without it times the
   single-domain smoke pair (flat / two-try, seq-cst vs the default
   relaxed-reads order) and fails if the tuned path is more than PCT%
   slower than the fenced baseline.

   A third mode, --durability, runs the durability cost measurement
   (Harness.Durability): the same workload wal=off vs wal=on plus the
   quiescent vs fuzzy snapshot pause.  --out then writes the
   dsu-durability/v1 document and --max-wal-overhead PCT is the CI
   durability guard (exit 1 when the WAL costs more throughput than the
   budget). *)

open Bechamel
open Toolkit

module Policy = Dsu.Find_policy
module Rng = Repro_util.Rng

(* Pre-built inputs shared by the benchmark closures; building them outside
   the staged function keeps setup cost out of the measurement.  The op
   streams are arrays so the run loop iterates contiguous memory instead of
   chasing list cells (Workload.Op.run_native_array). *)

let n_small = 1 lsl 10
let n_medium = 1 lsl 14

let spanning_ops n seed =
  Workload.Random_mix.spanning_unites ~rng:(Rng.create seed) ~n

let mixed_ops n m seed =
  Workload.Random_mix.mixed ~rng:(Rng.create seed) ~n ~m ~unite_fraction:0.3

let mixed_ops_arr n m seed = Array.of_list (mixed_ops n m seed)

(* E1/E13 family: native end-to-end workload per policy. *)
let bench_native_policy policy =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make
    ~name:(Printf.sprintf "native/%s" (Policy.to_string policy))
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~policy ~seed:7 n_medium in
         Workload.Op.run_native_array d ops))

(* Memory-layout A/B twins: the identical workload over the boxed
   (pre-flat) parent array, and over the cache-line-padded flat array. *)
let bench_boxed_policy policy =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make
    ~name:(Printf.sprintf "native/boxed-%s" (Policy.to_string policy))
    (Staged.stage (fun () ->
         let d = Dsu.Boxed.create ~policy ~seed:7 n_medium in
         Workload.Op.run_boxed_array d ops))

let bench_native_padded =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"native/padded-two-try"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~padded:true ~seed:7 n_medium in
         Workload.Op.run_native_array d ops))

(* Memory-order A/B twin: the same end-to-end workload with every parent
   load fully fenced (seq-cst) — the fenced baseline the tuned default
   (relaxed-reads) is measured against.  Compare against native/two-try. *)
let bench_native_seqcst =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"native/two-try-seqcst"
    (Staged.stage (fun () ->
         let d =
           Dsu.Native.create ~memory_order:Dsu.Memory_order.Seq_cst ~seed:7
             n_medium
         in
         Workload.Op.run_native_array d ops))

(* Backoff A/B twin: link-CAS backoff disabled.  Single-threaded the two
   should be indistinguishable (backoff only runs after a failed link CAS);
   the multi-domain difference is the --parallel sweep's job. *)
let bench_native_nobackoff =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"native/two-try-nobackoff"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~backoff:false ~seed:7 n_medium in
         Workload.Op.run_native_array d ops))

(* E10 family: early termination. *)
let bench_native_early =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"native/two-try+early"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~early:true ~seed:7 n_medium in
         Workload.Op.run_native_array d ops))

(* E8 family: baselines on the same workload. *)
let bench_aw =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"baseline/anderson-woll"
    (Staged.stage (fun () ->
         let d = Baselines.Anderson_woll.Native.create n_medium in
         Array.iter
           (fun op ->
             match op with
             | Workload.Op.Unite (x, y) -> Baselines.Anderson_woll.Native.unite d x y
             | Workload.Op.Same_set (x, y) ->
               ignore (Baselines.Anderson_woll.Native.same_set d x y)
             | Workload.Op.Find x -> ignore (Baselines.Anderson_woll.Native.find d x))
           ops))

let bench_locked =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"baseline/global-lock"
    (Staged.stage (fun () ->
         let d = Baselines.Locked_dsu.create n_medium in
         Array.iter
           (fun op ->
             match op with
             | Workload.Op.Unite (x, y) -> Baselines.Locked_dsu.unite d x y
             | Workload.Op.Same_set (x, y) ->
               ignore (Baselines.Locked_dsu.same_set d x y)
             | Workload.Op.Find x -> ignore (Baselines.Locked_dsu.find d x))
           ops))

(* E9 family: sequential variants. *)
let bench_seq linking compaction =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make
    ~name:
      (Printf.sprintf "seq/%s-%s"
         (Sequential.Seq_dsu.linking_to_string linking)
         (Sequential.Seq_dsu.compaction_to_string compaction))
    (Staged.stage (fun () ->
         let d = Sequential.Seq_dsu.create ~linking ~compaction ~seed:5 n_medium in
         Workload.Op.run_seq_array d ops))

(* E4/E5 family: one simulated execution (work measurement machinery). *)
let bench_sim policy =
  let ops = Workload.Op.round_robin (spanning_ops n_small 11) ~p:4 in
  Test.make
    ~name:(Printf.sprintf "sim/p4-%s" (Policy.to_string policy))
    (Staged.stage (fun () ->
         ignore (Harness.Measure.run_sim ~policy ~n:n_small ~seed:13 ~ops ())))

(* E6/E7 family: the adversarial binomial build. *)
let bench_binomial =
  let k = 1 lsl 10 in
  let ops = Array.of_list (Workload.Binomial.schedule ~base:0 ~k) in
  Test.make ~name:"workload/binomial-build"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~seed:17 k in
         Workload.Op.run_native_array d ops))

(* E11 family: linearizability checking cost. *)
let bench_lincheck =
  let history =
    let ops =
      Array.init 3 (fun pid ->
          List.init 4 (fun i ->
              if (pid + i) mod 2 = 0 then Workload.Op.Unite (pid, (pid + i) mod 6)
              else Workload.Op.Same_set (i, pid * i mod 6)))
    in
    let r = Harness.Measure.run_sim ~n:6 ~seed:19 ~ops () in
    r.Harness.Measure.history
  in
  Test.make ~name:"lincheck/12-op-history"
    (Staged.stage (fun () -> ignore (Lincheck.Checker.check ~n:6 history)))

(* E12 family: the applications. *)
let bench_components =
  let g =
    Graphs.Generators.erdos_renyi ~rng:(Rng.create 23) ~n:n_medium ~m:(2 * n_medium) ()
  in
  Test.make ~name:"apps/connected-components"
    (Staged.stage (fun () -> ignore (Graphs.Components.sequential g)))

let bench_kruskal =
  let rng = Rng.create 29 in
  let g = Graphs.Generators.erdos_renyi ~rng ~n:n_small ~m:(4 * n_small) () in
  let w = Graphs.Graph.with_random_weights ~rng g in
  Test.make ~name:"apps/kruskal-msf"
    (Staged.stage (fun () -> ignore (Graphs.Kruskal.run_concurrent_dsu ~seed:3 w)))

let bench_percolation =
  Test.make ~name:"apps/percolation-32x32"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          ignore (Graphs.Percolation.simulate ~rng:(Rng.create !counter) 32)))

let bench_scc =
  let g =
    Graphs.Generators.clustered_digraph ~rng:(Rng.create 31) ~clusters:32
      ~cluster_size:16 ~extra:256
  in
  Test.make ~name:"apps/scc-condensation"
    (Staged.stage (fun () -> ignore (Graphs.Scc.condense_with_dsu ~seed:5 g)))

(* New-application families (E12 extensions). *)
let bench_boruvka =
  let rng = Rng.create 63 in
  let g = Graphs.Generators.erdos_renyi ~rng ~n:n_small ~m:(4 * n_small) () in
  let w = Graphs.Graph.with_random_weights ~rng g in
  Test.make ~name:"apps/boruvka-msf"
    (Staged.stage (fun () -> ignore (Graphs.Boruvka.run w)))

let bench_lca =
  let rng = Rng.create 67 in
  let t = Graphs.Lca.random_tree ~rng ~n:n_small in
  let queries = List.init 512 (fun _ -> (Rng.int rng n_small, Rng.int rng n_small)) in
  Test.make ~name:"apps/offline-lca"
    (Staged.stage (fun () -> ignore (Graphs.Lca.solve t queries)))

let bench_dominators =
  let g = Graphs.Generators.random_digraph ~rng:(Rng.create 71) ~n:n_small ~m:(3 * n_small) in
  Test.make ~name:"apps/dominators-lt"
    (Staged.stage (fun () -> ignore (Graphs.Dominators.lengauer_tarjan g ~root:0)))

let bench_steensgaard =
  let rng = Rng.create 73 in
  let var i = Printf.sprintf "v%d" i in
  let program =
    List.init 2048 (fun _ ->
        let x = var (Rng.int rng 128) and y = var (Rng.int rng 128) in
        match Rng.int rng 4 with
        | 0 -> Analysis.Steensgaard.Address_of (x, y)
        | 1 -> Analysis.Steensgaard.Copy (x, y)
        | 2 -> Analysis.Steensgaard.Load (x, y)
        | _ -> Analysis.Steensgaard.Store (x, y))
  in
  Test.make ~name:"apps/steensgaard"
    (Staged.stage (fun () ->
         ignore (Analysis.Steensgaard.analyze ~capacity:16_384 program)))

(* MakeSet extension. *)
let bench_growable =
  Test.make ~name:"growable/make_set+unite"
    (Staged.stage (fun () ->
         let g = Dsu.Growable.create ~capacity:4096 ~seed:37 () in
         let first = Dsu.Growable.make_set g in
         for _ = 2 to 4096 do
           let e = Dsu.Growable.make_set g in
           Dsu.Growable.unite g first e
         done))

let bench_growable_unbounded =
  Test.make ~name:"growable/unbounded"
    (Staged.stage (fun () ->
         let g = Dsu.Growable_unbounded.create ~chunk_size:256 ~seed:39 () in
         let first = Dsu.Growable_unbounded.make_set g in
         for _ = 2 to 4096 do
           let e = Dsu.Growable_unbounded.make_set g in
           Dsu.Growable_unbounded.unite g first e
         done))

(* Micro: single operations on a prepared structure, with boxed-layout and
   padded-layout twins for the flat-vs-boxed headline number.

   The preparation ends with repeated find passes over every node: two-try
   splitting keeps shortening paths, so without the passes the structure
   compacts *during* measurement and the timings are non-stationary (bad
   OLS fits, run-order-dependent estimates).  Flattening first makes the
   measured operation a stationary parent-hop walk — exactly the part the
   layouts differ on. *)
let flatten_native d =
  for _ = 1 to 3 do
    for i = 0 to Dsu.Native.n d - 1 do
      ignore (Dsu.Native.find d i)
    done
  done

let flatten_boxed d =
  for _ = 1 to 3 do
    for i = 0 to Dsu.Boxed.n d - 1 do
      ignore (Dsu.Boxed.find d i)
    done
  done

(* Each measured run is a batch of [micro_batch] operations over a
   pregenerated random index stream: a single find on a flattened
   structure is a ~25ns root check, below the noise floor of shared hosts
   (negative R^2 fits), and the batch lifts the run into the tens-of-us
   range where the OLS fit is stable and the stream spans enough of the
   structure for cache behaviour to show.  The twins share the stream
   (same seed), so the layout comparison is paired.  ns/run figures for
   micro/* are therefore per-batch; the A/B ratio is what matters. *)
let micro_batch = 2048

let micro_indices seed =
  let rng = Rng.create seed in
  Array.init micro_batch (fun _ -> Rng.int rng n_medium)

let bench_single_find =
  let d = Dsu.Native.create ~seed:41 n_medium in
  Workload.Op.run_native_array d (Array.of_list (spanning_ops n_medium 43));
  flatten_native d;
  let idx = micro_indices 47 in
  Test.make ~name:"micro/find"
    (Staged.stage (fun () ->
         for k = 0 to micro_batch - 1 do
           ignore (Dsu.Native.find d (Array.unsafe_get idx k))
         done))

let bench_single_find_boxed =
  let d = Dsu.Boxed.create ~seed:41 n_medium in
  Workload.Op.run_boxed_array d (Array.of_list (spanning_ops n_medium 43));
  flatten_boxed d;
  let idx = micro_indices 47 in
  Test.make ~name:"micro/find-boxed"
    (Staged.stage (fun () ->
         for k = 0 to micro_batch - 1 do
           ignore (Dsu.Boxed.find d (Array.unsafe_get idx k))
         done))

let bench_single_find_padded =
  let d = Dsu.Native.create ~padded:true ~seed:41 n_medium in
  Workload.Op.run_native_array d (Array.of_list (spanning_ops n_medium 43));
  flatten_native d;
  let idx = micro_indices 47 in
  Test.make ~name:"micro/find-padded"
    (Staged.stage (fun () ->
         for k = 0 to micro_batch - 1 do
           ignore (Dsu.Native.find d (Array.unsafe_get idx k))
         done))

let bench_single_same_set =
  let d = Dsu.Native.create ~seed:53 n_medium in
  Workload.Op.run_native_array d (Array.of_list (spanning_ops n_medium 59));
  flatten_native d;
  let xs = micro_indices 61 and ys = micro_indices 67 in
  Test.make ~name:"micro/same_set"
    (Staged.stage (fun () ->
         for k = 0 to micro_batch - 1 do
           ignore
             (Dsu.Native.same_set d (Array.unsafe_get xs k) (Array.unsafe_get ys k))
         done))

let bench_single_same_set_boxed =
  let d = Dsu.Boxed.create ~seed:53 n_medium in
  Workload.Op.run_boxed_array d (Array.of_list (spanning_ops n_medium 59));
  flatten_boxed d;
  let xs = micro_indices 61 and ys = micro_indices 67 in
  Test.make ~name:"micro/same_set-boxed"
    (Staged.stage (fun () ->
         for k = 0 to micro_batch - 1 do
           ignore
             (Dsu.Boxed.same_set d (Array.unsafe_get xs k) (Array.unsafe_get ys k))
         done))

(* Memory-order micro twin of micro/find: identical flattened structure and
   index stream, seq-cst parent loads. *)
let bench_single_find_seqcst =
  let d =
    Dsu.Native.create ~memory_order:Dsu.Memory_order.Seq_cst ~seed:41 n_medium
  in
  Workload.Op.run_native_array d (Array.of_list (spanning_ops n_medium 43));
  flatten_native d;
  let idx = micro_indices 47 in
  Test.make ~name:"micro/find-seqcst"
    (Staged.stage (fun () ->
         for k = 0 to micro_batch - 1 do
           ignore (Dsu.Native.find d (Array.unsafe_get idx k))
         done))

(* Bulk suite: the batched kernels (unite_batch / same_set_batch, with
   their per-call root cache and endpoint prefetching) against the
   per-operation loop over the same endpoint streams.  The A/B twins share
   streams (same seeds), so each pair is a paired comparison.

   The bulk benches run on a structure of [n_bulk] = 2^20 nodes: an 8 MB
   parent array, well past LLC on most hosts, so random endpoint accesses
   genuinely miss cache — the regime bulk kernels are for (prefetching
   only helps when there is a miss to hide; on a cache-resident structure
   the kernels' per-call setup is pure overhead and the per-op loop is the
   right tool).  The unite twins process [n_bulk / 2] pairs per run so the
   kernel, not structure creation, dominates. *)
let n_bulk = 1 lsl 20
let bulk_unites = n_bulk / 2
let bulk_queries = 1 lsl 15

let bulk_pairs count seed =
  let rng = Rng.create seed in
  let xs = Array.init count (fun _ -> Rng.int rng n_bulk) in
  let ys = Array.init count (fun _ -> Rng.int rng n_bulk) in
  (xs, ys)

let bench_bulk_unite_batch =
  let xs, ys = bulk_pairs bulk_unites 83 in
  Test.make ~name:"bulk/unite-batch"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~seed:7 n_bulk in
         Dsu.Native.unite_batch d xs ys))

let bench_bulk_unite_per_op =
  let xs, ys = bulk_pairs bulk_unites 83 in
  Test.make ~name:"bulk/unite-per-op"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~seed:7 n_bulk in
         for k = 0 to bulk_unites - 1 do
           Dsu.Native.unite d (Array.unsafe_get xs k) (Array.unsafe_get ys k)
         done))

(* The same_set twins query a prepared, flattened structure (like the
   micro benches), so the measured work is the query walk itself —
   two root checks at random far-apart addresses per query. *)
let bench_bulk_same_set_batch =
  let d = Dsu.Native.create ~seed:53 n_bulk in
  Workload.Op.run_native_array d (Array.of_list (spanning_ops n_bulk 59));
  flatten_native d;
  let xs, ys = bulk_pairs bulk_queries 91 in
  Test.make ~name:"bulk/same_set-batch"
    (Staged.stage (fun () -> ignore (Dsu.Native.same_set_batch d xs ys)))

let bench_bulk_same_set_per_op =
  let d = Dsu.Native.create ~seed:53 n_bulk in
  Workload.Op.run_native_array d (Array.of_list (spanning_ops n_bulk 59));
  flatten_native d;
  let xs, ys = bulk_pairs bulk_queries 91 in
  Test.make ~name:"bulk/same_set-per-op"
    (Staged.stage (fun () ->
         for k = 0 to bulk_queries - 1 do
           ignore
             (Dsu.Native.same_set d (Array.unsafe_get xs k) (Array.unsafe_get ys k))
         done))

(* End-to-end mixed stream through the batching op runner (maximal
   same-kind runs flushed through the bulk kernels) vs the plain array
   runner — what an application-level caller gains by batching. *)
let bench_bulk_mixed_batched =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"bulk/mixed-batched"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~seed:7 n_medium in
         Workload.Op.run_native_array_batched d ops))

let bench_bulk_mixed_per_op =
  let ops = mixed_ops_arr n_medium n_medium 3 in
  Test.make ~name:"bulk/mixed-per-op"
    (Staged.stage (fun () ->
         let d = Dsu.Native.create ~seed:7 n_medium in
         Workload.Op.run_native_array d ops))

(* Packed-vs-rank headline pairs: the bit-packed single-word layout
   (Dsu.Packed) against the two-array rank comparator (Dsu.Rank) on the
   same n=2^20 endpoint streams — unite over a fresh structure, then find
   over a prepared flattened one.  Both link by rank with splitting, so
   the pair isolates the memory layout: one word per node with mask/shift
   unpacking versus two arrays with a div/mod decode and twice the
   traffic.  Streams are shared (same seeds), so each pair is a paired
   comparison; docs/PERFORMANCE.md quotes these numbers. *)
let bench_packed_unite_pairs =
  let xs, ys = bulk_pairs bulk_unites 83 in
  Test.make ~name:"packedrank/unite-packed"
    (Staged.stage (fun () ->
         let d = Dsu.Packed.Native.create n_bulk in
         for k = 0 to bulk_unites - 1 do
           Dsu.Packed.Native.unite d (Array.unsafe_get xs k)
             (Array.unsafe_get ys k)
         done))

let bench_rank_unite_pairs =
  let xs, ys = bulk_pairs bulk_unites 83 in
  Test.make ~name:"packedrank/unite-rank"
    (Staged.stage (fun () ->
         let d = Dsu.Rank.Native.create n_bulk in
         for k = 0 to bulk_unites - 1 do
           Dsu.Rank.Native.unite d (Array.unsafe_get xs k)
             (Array.unsafe_get ys k)
         done))

let bulk_find_indices seed =
  let rng = Rng.create seed in
  Array.init bulk_queries (fun _ -> Rng.int rng n_bulk)

let bench_packed_find =
  let d = Dsu.Packed.Native.create n_bulk in
  let xs, ys = bulk_pairs bulk_unites 83 in
  for k = 0 to bulk_unites - 1 do
    Dsu.Packed.Native.unite d xs.(k) ys.(k)
  done;
  for _ = 1 to 3 do
    for i = 0 to n_bulk - 1 do
      ignore (Dsu.Packed.Native.find d i)
    done
  done;
  let idx = bulk_find_indices 97 in
  Test.make ~name:"packedrank/find-packed"
    (Staged.stage (fun () ->
         for k = 0 to bulk_queries - 1 do
           ignore (Dsu.Packed.Native.find d (Array.unsafe_get idx k))
         done))

let bench_rank_find =
  let d = Dsu.Rank.Native.create n_bulk in
  let xs, ys = bulk_pairs bulk_unites 83 in
  for k = 0 to bulk_unites - 1 do
    Dsu.Rank.Native.unite d xs.(k) ys.(k)
  done;
  for _ = 1 to 3 do
    for i = 0 to n_bulk - 1 do
      ignore (Dsu.Rank.Native.find d i)
    done
  done;
  let idx = bulk_find_indices 97 in
  Test.make ~name:"packedrank/find-rank"
    (Staged.stage (fun () ->
         for k = 0 to bulk_queries - 1 do
           ignore (Dsu.Rank.Native.find d (Array.unsafe_get idx k))
         done))

let all_tests () =
  [
    bench_native_policy Policy.No_compaction;
    bench_native_policy Policy.One_try_splitting;
    bench_native_policy Policy.Two_try_splitting;
    bench_boxed_policy Policy.Two_try_splitting;
    bench_boxed_policy Policy.One_try_splitting;
    bench_native_padded;
    bench_native_seqcst;
    bench_native_nobackoff;
    bench_native_early;
    bench_aw;
    bench_locked;
    bench_seq Sequential.Seq_dsu.By_rank Sequential.Seq_dsu.Splitting;
    bench_seq Sequential.Seq_dsu.By_random Sequential.Seq_dsu.Splitting;
    bench_seq Sequential.Seq_dsu.By_size Sequential.Seq_dsu.Halving;
    bench_sim Policy.Two_try_splitting;
    bench_sim Policy.One_try_splitting;
    bench_binomial;
    bench_lincheck;
    bench_components;
    bench_kruskal;
    bench_percolation;
    bench_scc;
    bench_boruvka;
    bench_lca;
    bench_dominators;
    bench_steensgaard;
    bench_growable;
    bench_growable_unbounded;
    bench_single_find;
    bench_single_find_boxed;
    bench_single_find_padded;
    bench_single_find_seqcst;
    bench_single_same_set;
    bench_single_same_set_boxed;
    bench_bulk_unite_batch;
    bench_bulk_unite_per_op;
    bench_bulk_same_set_batch;
    bench_bulk_same_set_per_op;
    bench_bulk_mixed_batched;
    bench_bulk_mixed_per_op;
    bench_packed_unite_pairs;
    bench_rank_unite_pairs;
    bench_packed_find;
    bench_rank_find;
  ]

(* ------------------------------------------------------------ CLI state *)

let out_file = ref None
let metrics_file = ref None
let filters : string list ref = ref []
let fast = ref false
let parallel = ref false
let parallel_n = ref (1 lsl 16)
let parallel_ops = ref 400_000
let max_domains = ref 8
let unite_percent = ref 30
let parallel_policies = ref [ Policy.Two_try_splitting; Policy.One_try_splitting ]
let parallel_layouts = ref [ Harness.Scalability.Flat; Harness.Scalability.Boxed ]
let parallel_orders = ref [ Dsu.Memory_order.default ]
let parallel_backoffs = ref [ true ]
let parallel_dists = ref [ Harness.Scalability.Uniform ]
let guard_tuned = ref None
let durability = ref false
let connectivity = ref false
let conn_scale = ref 16
let conn_edge_factor = ref 8
let guard_finish = ref None
let max_wal_overhead = ref None
let plan_request : [ `Auto | `Plan of Dsu.Plan.t ] option ref = ref None
let autotune_cache = ref Harness.Autotune.default_cache_dir
let autotune_out = ref None
let baseline_file = ref None
let diff_threshold = ref 10.0
let diff_fail = ref false
let diff_out = ref None

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let matches_filters name =
  match !filters with
  | [] -> true
  | fs -> List.exists (fun f -> contains_substring ~needle:f name) fs

let set_policies s =
  let policies =
    String.split_on_char ',' s
    |> List.map (fun p ->
           match Policy.of_string (String.trim p) with
           | Some p -> p
           | None -> raise (Arg.Bad (Printf.sprintf "unknown policy %S" p)))
  in
  if policies = [] then raise (Arg.Bad "--policies: empty list");
  parallel_policies := policies

let set_layouts s =
  let layouts =
    String.split_on_char ',' s
    |> List.map (fun l ->
           match Harness.Scalability.layout_of_string (String.trim l) with
           | Some l -> l
           | None -> raise (Arg.Bad (Printf.sprintf "unknown layout %S" l)))
  in
  if layouts = [] then raise (Arg.Bad "--layouts: empty list");
  parallel_layouts := layouts

let set_memory_orders s =
  let orders =
    String.split_on_char ',' s
    |> List.map (fun o ->
           match Dsu.Memory_order.of_string (String.trim o) with
           | Some o -> o
           | None -> raise (Arg.Bad (Printf.sprintf "unknown memory order %S" o)))
  in
  if orders = [] then raise (Arg.Bad "--memory-orders: empty list");
  parallel_orders := orders

let set_backoffs s =
  let backoffs =
    String.split_on_char ',' s
    |> List.map (fun b ->
           match String.trim b with
           | "on" | "true" | "1" -> true
           | "off" | "false" | "0" -> false
           | b -> raise (Arg.Bad (Printf.sprintf "unknown backoff switch %S" b)))
  in
  if backoffs = [] then raise (Arg.Bad "--backoffs: empty list");
  parallel_backoffs := backoffs

let set_plan s =
  if s = "auto" then plan_request := Some `Auto
  else
    match Dsu.Plan.of_string s with
    | Ok p -> plan_request := Some (`Plan p)
    | Error e -> raise (Arg.Bad e)

let set_dists s =
  let dists =
    String.split_on_char ',' s
    |> List.map (fun d ->
           match Harness.Scalability.dist_of_string (String.trim d) with
           | Some d -> d
           | None -> raise (Arg.Bad (Printf.sprintf "unknown distribution %S" d)))
  in
  if dists = [] then raise (Arg.Bad "--dists: empty list");
  parallel_dists := dists

let speclist =
  [
    ( "--out",
      Arg.String (fun f -> out_file := Some f),
      "FILE  write results as JSON to FILE (bechamel document, or \
       dsu-scalability/v1 with --parallel)" );
    ( "--metrics-out",
      Arg.String (fun f -> metrics_file := Some f),
      "FILE  enable telemetry and write the metrics registry (JSON lines) \
       to FILE" );
    ( "--filter",
      Arg.String (fun f -> filters := f :: !filters),
      "SUBSTR  run only benchmarks whose name contains SUBSTR (repeatable)" );
    ("--fast", Arg.Set fast, " reduced measurement quota (smoke runs / CI)");
    ( "--parallel",
      Arg.Set parallel,
      " run the domain-parallel scalability sweep instead of the bechamel \
       micro-benchmarks" );
    ( "--parallel-n",
      Arg.Set_int parallel_n,
      "N  nodes in the shared DSU for --parallel (default 65536)" );
    ( "--parallel-ops",
      Arg.Set_int parallel_ops,
      "N  total operations per point for --parallel (default 400000)" );
    ( "--max-domains",
      Arg.Set_int max_domains,
      "D  sweep domain counts 1,2,4,... up to D (default 8)" );
    ( "--unite-percent",
      Arg.Set_int unite_percent,
      "P  percentage of Unite ops in the --parallel streams (default 30)" );
    ( "--policies",
      Arg.String set_policies,
      "P1,P2  find policies for --parallel (default two-try,one-try)" );
    ( "--layouts",
      Arg.String set_layouts,
      "L1,L2  memory layouts for --parallel: flat, flat-padded, boxed \
       (default flat,boxed)" );
    ( "--memory-orders",
      Arg.String set_memory_orders,
      "O1,O2  parent-load memory orders for --parallel: seq-cst, acquire, \
       relaxed-reads (default relaxed-reads)" );
    ( "--backoffs",
      Arg.String set_backoffs,
      "B1,B2  link-CAS backoff switches for --parallel: on, off (default on)" );
    ( "--dists",
      Arg.String set_dists,
      "D1,D2  endpoint distributions for --parallel: uniform, skewed \
       (default uniform)" );
    ( "--plan",
      Arg.String set_plan,
      "SPEC|auto  run the --parallel sweep at one plan point \
       (linking:compaction:order:backoff:layout, e.g. \
       rank:halving:relaxed-reads:on:packed), or \"auto\" = pick the \
       fastest plan for the profile via Harness.Autotune (cached by \
       profile fingerprint).  Implies --parallel." );
    ( "--autotune-cache",
      Arg.Set_string autotune_cache,
      "DIR  cache directory for --plan auto results (default .dsu-autotune)" );
    ( "--autotune-out",
      Arg.String (fun f -> autotune_out := Some f),
      "FILE  with --plan auto, write the dsu-autotune/v1 report to FILE \
       (the CI artifact)" );
    ( "--guard-tuned",
      Arg.Float (fun p -> guard_tuned := Some p),
      "PCT  after --parallel, exit 1 if the tuned path regresses more than \
       PCT percent: with --plan, the plan vs the default plan through the \
       perfdiff differ; without, the single-domain smoke pair (flat / \
       two-try, seq-cst vs relaxed-reads)" );
    ( "--connectivity",
      Arg.Set connectivity,
      " run the streaming-connectivity edges/sec family (ConnectIt-style \
       sample+finish over chunked edge streams, racy and deterministic \
       engines, Anderson-Woll and Boruvka baselines) instead of the \
       bechamel micro-benchmarks; --out writes dsu-connectivity/v1.  \
       Honors --max-domains, --plan and --fast." );
    ( "--conn-scale",
      Arg.Set_int conn_scale,
      "S  with --connectivity: 2^S vertices per stream (default 16; --fast \
       caps it at 12)" );
    ( "--conn-edge-factor",
      Arg.Set_int conn_edge_factor,
      "E  with --connectivity: E * 2^scale streamed edges (default 8)" );
    ( "--guard-finish",
      Arg.Float (fun r -> guard_finish := Some r),
      "RATIO  with --connectivity, exit 1 unless every bulk finish reaches \
       RATIO x its per-op twin's finish-phase edges/sec at the highest \
       domain count" );
    ( "--durability",
      Arg.Set durability,
      " run the durability cost measurement (WAL throughput overhead, \
       quiescent vs fuzzy snapshot pause) instead of the bechamel \
       micro-benchmarks; --out writes dsu-durability/v1" );
    ( "--max-wal-overhead",
      Arg.Float (fun p -> max_wal_overhead := Some p),
      "PCT  with --durability, exit 1 if the WAL costs more than PCT \
       percent of unite throughput (the CI durability guard)" );
    ( "--baseline",
      Arg.String (fun f -> baseline_file := Some f),
      "FILE  diff this run's JSON document against a previous one (same \
       kind: bechamel, or dsu-scalability with --parallel) and print \
       per-benchmark deltas beyond the noise threshold" );
    ( "--diff-threshold",
      Arg.Set_float diff_threshold,
      "PCT  noise threshold for --baseline deltas (default 10)" );
    ( "--diff-out",
      Arg.String (fun f -> diff_out := Some f),
      "FILE  write the --baseline comparison as a dsu-perfdiff/v1 JSON \
       document (the CI perf-history artifact)" );
    ( "--diff-fail",
      Arg.Set diff_fail,
      " exit 3 if --baseline finds any regression beyond the threshold" );
  ]

let usage =
  "bench/main.exe [--out FILE] [--metrics-out FILE] [--filter SUBSTR] \
   [--fast] [--baseline FILE] [--parallel ...]"

let write_json file doc =
  let oc = open_out file in
  output_string oc (Repro_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc

(* The perf-regression differ: compare this run's document against
   --baseline.  Structural problems (unreadable file, malformed JSON,
   kind mismatch) exit 2 — CI must treat a broken baseline as broken
   plumbing, not a pass; actual regressions exit 3 only under
   --diff-fail, so the default is a soft gate that reports. *)
let run_baseline_diff current =
  match !baseline_file with
  | None -> ()
  | Some file ->
    let text =
      try In_channel.with_open_bin file In_channel.input_all
      with Sys_error e ->
        Printf.eprintf "bench: cannot read baseline: %s\n%!" e;
        exit 2
    in
    let base =
      match Repro_obs.Json.parse text with
      | Ok j -> j
      | Error e ->
        Printf.eprintf "bench: baseline: malformed JSON: %s\n%!" e;
        exit 2
    in
    (match
       Harness.Perfdiff.diff ~threshold_pct:!diff_threshold ~base ~current ()
     with
    | Error e ->
      Printf.eprintf "bench: %s\n%!" e;
      exit 2
    | Ok report ->
      print_newline ();
      Harness.Perfdiff.pp Format.std_formatter report;
      Format.pp_print_flush Format.std_formatter ();
      (match !diff_out with
      | Some f -> write_json f (Harness.Perfdiff.to_json report)
      | None -> ());
      if !diff_fail && report.Harness.Perfdiff.regressions <> [] then exit 3)

(* The perf-smoke regression gate: time the single-domain smoke pair —
   flat layout, two-try splitting, seq-cst vs the tuned default order —
   and fail if the tuned path lost more than [pct] percent of the fenced
   baseline's throughput.  Best-of-3 per side: single-domain runs on
   shared CI hosts are noisy, and the guard exists to catch a systematic
   regression (a misplaced fence, an accidental strong CAS in the hot
   loop), not scheduling jitter. *)
let run_guard_tuned config pct =
  let best order =
    let rec go best k =
      if k = 0 then best
      else
        let p =
          Harness.Scalability.run_point ~config ~memory_order:order
            ~layout:Harness.Scalability.Flat ~policy:Policy.Two_try_splitting
            ~domains:1 ()
        in
        go (max best p.Harness.Scalability.mops_per_sec) (k - 1)
    in
    go 0. 3
  in
  let seqcst = best Dsu.Memory_order.Seq_cst in
  let tuned = best Dsu.Memory_order.default in
  let loss = (seqcst -. tuned) /. seqcst *. 100. in
  Printf.printf
    "\nguard-tuned: seq-cst %.3f Mops/s, %s %.3f Mops/s (loss %.1f%%, \
     budget %.1f%%)\n%!"
    seqcst
    (Dsu.Memory_order.to_string Dsu.Memory_order.default)
    tuned loss pct;
  if loss > pct then begin
    Printf.eprintf
      "guard-tuned: FAIL — tuned path is %.1f%% slower than seq-cst \
       (budget %.1f%%)\n%!"
      loss pct;
    exit 1
  end

(* Plan-mode guard: the tuned plan against Dsu.Plan.default, routed
   through the perfdiff differ so the 10% noise threshold, the
   better-direction logic and the plan-changed warning all come from one
   place.  Both throughputs are wrapped as single-row dsu-autotune/v1
   documents sharing a key, so the differ compares exactly the pair. *)
let guard_pair_doc ~winner ~mops =
  let module J = Repro_obs.Json in
  J.Obj
    [
      ("schema", J.String Harness.Autotune.schema);
      ("winner", J.String (Dsu.Plan.to_string winner));
      ( "measurements",
        J.List
          [
            J.Obj
              [
                ("plan", J.String "tuned-vs-default");
                ("mops_per_sec", J.Float mops);
                ("failures", J.Int 0);
              ];
          ] );
    ]

let run_guard_tuned_plan ~pct ~tuned_plan ~tuned_mops ~default_mops =
  let base = guard_pair_doc ~winner:Dsu.Plan.default ~mops:default_mops in
  let current = guard_pair_doc ~winner:tuned_plan ~mops:tuned_mops in
  match Harness.Perfdiff.diff ~threshold_pct:pct ~base ~current () with
  | Error e ->
    Printf.eprintf "bench: guard-tuned: %s\n%!" e;
    exit 2
  | Ok report ->
    Printf.printf
      "\nguard-tuned: default %.3f Mops/s, tuned %s %.3f Mops/s (budget \
       %.1f%%)\n%!"
      default_mops
      (Dsu.Plan.to_string tuned_plan)
      tuned_mops pct;
    Harness.Perfdiff.pp Format.std_formatter report;
    Format.pp_print_flush Format.std_formatter ();
    if report.Harness.Perfdiff.regressions <> [] then begin
      Printf.eprintf
        "guard-tuned: FAIL — tuned plan %s is more than %.1f%% slower than \
         the default plan\n%!"
        (Dsu.Plan.to_string tuned_plan)
        pct;
      exit 1
    end

let run_parallel_sweep () =
  let rec counts d = if d > !max_domains then [] else d :: counts (2 * d) in
  let domain_counts = match counts 1 with [] -> [ 1 ] | l -> l in
  (* The autotuner profile mirrors the sweep's knobs at the largest swept
     domain count; seed fixed so the cache fingerprint is stable across
     runs with the same shape. *)
  let profile =
    {
      Harness.Autotune.n = !parallel_n;
      domains = List.fold_left max 1 domain_counts;
      unite_percent = !unite_percent;
      dist =
        (match !parallel_dists with
        | d :: _ -> d
        | [] -> Harness.Scalability.Uniform);
      total_ops = !parallel_ops;
      seed = 21;
    }
  in
  let tuned =
    match !plan_request with
    | None -> None
    | Some (`Plan p) -> Some (p, None)
    | Some `Auto ->
      let result, source =
        Harness.Autotune.auto ~cache_dir:!autotune_cache
          ~progress:(fun m ->
            Printf.printf "autotune: %-45s %8.3f Mops/s\n%!"
              (Dsu.Plan.to_string m.Harness.Autotune.plan)
              m.Harness.Autotune.mops_per_sec)
          ~profile ()
      in
      Printf.printf "plan: %s (auto, %s)\n%!"
        (Dsu.Plan.to_string result.Harness.Autotune.winner)
        (match source with `Cached -> "cached" | `Measured -> "measured");
      (match !autotune_out with
      | None -> ()
      | Some f -> write_json f (Harness.Autotune.to_json result));
      Some (result.Harness.Autotune.winner, Some result)
  in
  let config =
    {
      Harness.Scalability.default_config with
      n = !parallel_n;
      total_ops = !parallel_ops;
      unite_percent = !unite_percent;
      domain_counts;
      policies = !parallel_policies;
      layouts = !parallel_layouts;
      memory_orders = !parallel_orders;
      backoffs = !parallel_backoffs;
      dists = !parallel_dists;
    }
  in
  (* A plan pins the sweep to its point: one layout, one compaction rule,
     one order, one backoff switch — only domains and dists still sweep. *)
  let config =
    match tuned with
    | None -> config
    | Some (p, _) ->
      {
        config with
        layouts = [ p.Dsu.Plan.layout ];
        policies = [ p.Dsu.Plan.compaction ];
        memory_orders = [ p.Dsu.Plan.memory_order ];
        backoffs = [ p.Dsu.Plan.backoff ];
      }
  in
  let points =
    Harness.Scalability.sweep ~config
      ~progress:(fun p ->
        Printf.printf "%-12s %-10s %-13s %-3s %-7s d=%d  %8.3f Mops/s\n%!"
          (Harness.Scalability.layout_to_string p.Harness.Scalability.layout)
          (Policy.to_string p.Harness.Scalability.policy)
          (Dsu.Memory_order.to_string p.Harness.Scalability.memory_order)
          (if p.Harness.Scalability.backoff then "on" else "off")
          (Harness.Scalability.dist_to_string p.Harness.Scalability.dist)
          p.Harness.Scalability.domains p.Harness.Scalability.mops_per_sec)
      ()
  in
  print_newline ();
  Harness.Scalability.pp_table Format.std_formatter points;
  Format.pp_print_flush Format.std_formatter ();
  let doc = Harness.Scalability.to_json ~config points in
  (match !out_file with
  | None -> ()
  | Some file -> write_json file doc);
  run_baseline_diff doc;
  match !guard_tuned with
  | None -> ()
  | Some pct -> (
    match tuned with
    | None -> run_guard_tuned config pct
    | Some (plan, auto_result) ->
      let tuned_mops, default_mops =
        match auto_result with
        | Some r ->
          (* --plan auto: the calibration sweep already measured both
             sides; reuse its numbers rather than re-timing. *)
          let mops_of p =
            List.find_opt
              (fun m -> Dsu.Plan.equal m.Harness.Autotune.plan p)
              r.Harness.Autotune.measurements
            |> Option.map (fun m -> m.Harness.Autotune.mops_per_sec)
          in
          ( r.Harness.Autotune.winner_mops,
            Option.value
              (mops_of Dsu.Plan.default)
              ~default:r.Harness.Autotune.winner_mops )
        | None ->
          (* explicit --plan SPEC: time both plans, best of 3 single-domain
             runs each (same rationale as the no-plan guard). *)
          let best plan =
            let rec go best k =
              if k = 0 then best
              else
                let p =
                  Harness.Scalability.run_plan_point ~config ~plan ~domains:1
                    ()
                in
                go (max best p.Harness.Scalability.mops_per_sec) (k - 1)
            in
            go 0. 3
          in
          (best plan, best Dsu.Plan.default)
      in
      run_guard_tuned_plan ~pct ~tuned_plan:plan ~tuned_mops ~default_mops)

(* Durability mode: the WAL-overhead / snapshot-pause measurement, routed
   through the same --out / --baseline plumbing as the other modes.  The
   guard compares the same workload with the WAL attached and detached, so
   it bounds the logging tax, not machine speed. *)
let run_durability_mode () =
  let defaults = Harness.Durability.default_config in
  let config =
    {
      defaults with
      Harness.Durability.n = !parallel_n;
      unite_percent = !unite_percent;
      repeats = (if !fast then 1 else defaults.Harness.Durability.repeats);
      ops_per_domain =
        (if !fast then 50_000 else defaults.Harness.Durability.ops_per_domain);
    }
  in
  let r = Harness.Durability.run ~config () in
  Harness.Durability.pp Format.std_formatter r;
  Format.pp_print_newline Format.std_formatter ();
  let doc = Harness.Durability.to_json r in
  (match !out_file with None -> () | Some file -> write_json file doc);
  run_baseline_diff doc;
  match !max_wal_overhead with
  | None -> ()
  | Some pct ->
    if r.Harness.Durability.overhead_pct > pct then begin
      Printf.eprintf
        "durability: FAIL — wal overhead %.1f%% exceeds the %.1f%% budget\n%!"
        r.Harness.Durability.overhead_pct pct;
      exit 1
    end

(* Connectivity mode: the streaming edges/sec family, routed through the
   same --out / --baseline plumbing.  --fast shrinks the streams and
   drops the baselines so the CI smoke run stays in seconds. *)
let run_connectivity_mode () =
  let module C = Harness.Connectivity in
  let rec counts d = if d > !max_domains then [] else d :: counts (2 * d) in
  let domains_list = match counts 1 with [] -> [ 1 ] | l -> l in
  let scale = if !fast then Stdlib.min !conn_scale 12 else !conn_scale in
  let plan =
    match !plan_request with
    | None -> Dsu.Plan.default
    | Some (`Plan p) -> p
    | Some `Auto ->
      let profile =
        {
          Harness.Autotune.n = 1 lsl scale;
          domains = List.fold_left max 1 domains_list;
          unite_percent = 100;
          dist = Harness.Scalability.Uniform;
          total_ops = !conn_edge_factor * (1 lsl scale);
          seed = 21;
        }
      in
      let result, source =
        Harness.Autotune.auto ~cache_dir:!autotune_cache ~profile ()
      in
      Printf.printf "plan: %s (auto, %s)\n%!"
        (Dsu.Plan.to_string result.Harness.Autotune.winner)
        (match source with `Cached -> "cached" | `Measured -> "measured");
      (match !autotune_out with
      | None -> ()
      | Some f -> write_json f (Harness.Autotune.to_json result));
      result.Harness.Autotune.winner
  in
  let config =
    {
      C.default_config with
      C.scale;
      edge_factor = !conn_edge_factor;
      chunk_size = (if !fast then 1 lsl 12 else 1 lsl 14);
      domains_list;
      modes = [ Graphs.Connectit.Racy; Graphs.Connectit.Deterministic ];
      plan;
      baselines = not !fast;
      adversarial_n = (if !fast then 4096 else 16384);
    }
  in
  let points =
    C.sweep ~config
      ~progress:(fun p ->
        Printf.printf "%-12s %-4s %-9s %-6s d=%d  %8.2f Medges/s\n%!"
          p.C.gen p.C.mode p.C.sampling p.C.finish p.C.domains
          (p.C.edges_per_sec /. 1e6))
      ()
  in
  print_newline ();
  C.pp_table Format.std_formatter points;
  Format.pp_print_newline Format.std_formatter ();
  let baselines = if config.C.baselines then C.run_baselines ~config () else [] in
  if baselines <> [] then begin
    C.pp_baselines Format.std_formatter baselines;
    Format.pp_print_newline Format.std_formatter ()
  end;
  let adversarial =
    if config.C.adversarial_n = 0 then None
    else
      Some
        (C.run_adversarial ~config ~domains:(List.fold_left max 1 domains_list) ())
  in
  (match adversarial with
  | None -> ()
  | Some a ->
    Printf.printf "adversarial: n=%d, %d ops on %d domain(s), %.2f Mops/s\n"
      a.C.a_n a.C.a_ops a.C.a_domains
      (a.C.a_ops_per_sec /. 1e6));
  let doc = C.to_json ~config ~baselines ?adversarial points in
  (match !out_file with None -> () | Some file -> write_json file doc);
  run_baseline_diff doc;
  match !guard_finish with
  | None -> ()
  | Some min_ratio -> (
    match C.guard_finish ~min_ratio points with
    | Ok (worst, pairs) ->
      Printf.printf
        "guard-finish: ok — worst bulk/per-op finish ratio %.2f over %d \
         pair(s) (floor %.2f)\n"
        worst (List.length pairs) min_ratio
    | Error e ->
      Printf.eprintf "guard-finish: FAIL — %s\n%!" e;
      exit 1)

let run_bechamel () =
  let tests =
    List.filter (fun t -> matches_filters (Test.name t)) (all_tests ())
  in
  if tests = [] then begin
    prerr_endline "no benchmark matches the given --filter";
    exit 1
  end;
  let tests = Test.make_grouped ~name:"dsu" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if !fast then Benchmark.cfg ~limit:500 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  let estimates =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt results name with
        | None -> None
        | Some ols ->
          let estimate =
            match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols with Some r -> r | None -> nan
          in
          Some (name, estimate, r2))
      (List.sort compare names)
  in
  Printf.printf "%-40s %15s %10s\n" "benchmark" "ns/run" "R^2";
  Printf.printf "%s\n" (String.make 67 '-');
  List.iter
    (fun (name, estimate, r2) ->
      Printf.printf "%-40s %15.1f %10.4f\n" name estimate r2)
    estimates;
  let module J = Repro_obs.Json in
  let doc =
    J.Obj
      [
        ( "results",
          J.List
            (List.map
               (fun (name, estimate, r2) ->
                 J.Obj
                   [
                     ("name", J.String name);
                     ("ns_per_run", J.Float estimate);
                     ("r_square", J.Float r2);
                   ])
               estimates) );
      ]
  in
  (match !out_file with
  | None -> ()
  | Some file -> write_json file doc);
  run_baseline_diff doc

let () =
  Arg.parse speclist
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    usage;
  if !metrics_file <> None then Repro_obs.Metrics.set_enabled true;
  if !plan_request <> None then parallel := true;
  if !durability then run_durability_mode ()
  else if !connectivity then run_connectivity_mode ()
  else if !parallel then run_parallel_sweep ()
  else run_bechamel ();
  match !metrics_file with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc
      (Repro_obs.Export.metrics_jsonl (Repro_obs.Metrics.snapshot ()));
    close_out oc
