(* Tests for the workload generators and the op-distribution helpers. *)

module Op = Workload.Op
module Random_mix = Workload.Random_mix
module Binomial = Workload.Binomial
module Adversarial = Workload.Adversarial
module Quick_find = Sequential.Quick_find
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let partition_after ops ~n =
  let q = Quick_find.create n in
  Op.run_quick_find q ops;
  q

let op_tests =
  [
    case "round_robin deals cyclically" (fun () ->
        let buckets = Op.round_robin [ 1; 2; 3; 4; 5 ] ~p:2 in
        check Alcotest.(list int) "p0" [ 1; 3; 5 ] buckets.(0);
        check Alcotest.(list int) "p1" [ 2; 4 ] buckets.(1));
    case "blocks splits contiguously" (fun () ->
        let buckets = Op.blocks [ 1; 2; 3; 4; 5 ] ~p:2 in
        check Alcotest.(list int) "p0" [ 1; 2; 3 ] buckets.(0);
        check Alcotest.(list int) "p1" [ 4; 5 ] buckets.(1));
    case "blocks with p > length" (fun () ->
        let buckets = Op.blocks [ 1 ] ~p:3 in
        check Alcotest.int "buckets" 3 (Array.length buckets);
        check Alcotest.int "total" 1
          (Array.fold_left (fun acc l -> acc + List.length l) 0 buckets));
    case "duplicate replicates the whole list" (fun () ->
        let buckets = Op.duplicate [ 1; 2 ] ~p:3 in
        Array.iter (fun l -> check Alcotest.(list int) "copy" [ 1; 2 ] l) buckets);
    case "distribution preserves all items" (fun () ->
        let items = List.init 17 Fun.id in
        List.iter
          (fun f ->
            let buckets = f items ~p:4 in
            let collected = Array.to_list buckets |> List.concat |> List.sort compare in
            check Alcotest.(list int) "all items" items collected)
          [ Op.round_robin; Op.blocks ]);
    case "p must be positive" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Op.round_robin: p must be >= 1")
          (fun () -> ignore (Op.round_robin [ 1 ] ~p:0)));
    case "max_node scans all op kinds" (fun () ->
        check Alcotest.int "max" 9
          (Op.max_node [ Op.Unite (1, 2); Op.Same_set (3, 9); Op.Find 4 ]);
        check Alcotest.int "empty" (-1) (Op.max_node []));
    case "count_unites" (fun () ->
        check Alcotest.int "count" 2
          (Op.count_unites [ Op.Unite (0, 1); Op.Find 0; Op.Unite (1, 2); Op.Same_set (0, 1) ]));
  ]

let random_mix_tests =
  [
    case "spanning_unites yields one set" (fun () ->
        let n = 50 in
        let ops = Random_mix.spanning_unites ~rng:(Rng.create 1) ~n in
        check Alcotest.int "length" (n - 1) (List.length ops);
        let q = partition_after ops ~n in
        check Alcotest.int "single set" 1 (Quick_find.count_sets q));
    case "spanning_unites has no self-loops" (fun () ->
        let ops = Random_mix.spanning_unites ~rng:(Rng.create 2) ~n:100 in
        List.iter
          (fun op ->
            match op with
            | Op.Unite (x, y) -> check Alcotest.bool "distinct" true (x <> y)
            | Op.Same_set _ | Op.Find _ -> Alcotest.fail "unexpected op kind")
          ops);
    case "random_pairs length and range" (fun () ->
        let n = 30 in
        let ops = Random_mix.random_pairs ~rng:(Rng.create 3) ~n ~m:200 in
        check Alcotest.int "length" 200 (List.length ops);
        check Alcotest.bool "range" true (Op.max_node ops < n));
    case "mixed respects the unite fraction roughly" (fun () ->
        let ops = Random_mix.mixed ~rng:(Rng.create 4) ~n:100 ~m:4000 ~unite_fraction:0.25 in
        let unites = Op.count_unites ops in
        check Alcotest.bool "fraction" true (unites > 800 && unites < 1200));
    case "mixed validates the fraction" (fun () ->
        Alcotest.check_raises "range"
          (Invalid_argument "Random_mix.mixed: unite_fraction out of range") (fun () ->
            ignore (Random_mix.mixed ~rng:(Rng.create 1) ~n:4 ~m:1 ~unite_fraction:1.5)));
    case "queries_after_union shape" (fun () ->
        let n = 20 in
        let ops = Random_mix.queries_after_union ~rng:(Rng.create 5) ~n ~queries:30 in
        check Alcotest.int "length" (n - 1 + 30) (List.length ops);
        check Alcotest.int "unites" (n - 1) (Op.count_unites ops));
  ]

let binomial_tests =
  [
    case "rounds structure" (fun () ->
        let rounds = Binomial.rounds ~base:0 ~k:8 in
        check Alcotest.int "lg k rounds" 3 (List.length rounds);
        check
          Alcotest.(list int)
          "round sizes" [ 4; 2; 1 ]
          (List.map List.length rounds));
    case "schedule builds one set of k - 1 unites" (fun () ->
        let k = 32 in
        let ops = Binomial.schedule ~base:0 ~k in
        check Alcotest.int "k-1 unites" (k - 1) (List.length ops);
        let q = partition_after ops ~n:k in
        check Alcotest.int "single set" 1 (Quick_find.count_sets q));
    case "base offsets the elements" (fun () ->
        let ops = Binomial.schedule ~base:100 ~k:4 in
        List.iter
          (fun op ->
            match op with
            | Op.Unite (x, y) ->
              check Alcotest.bool "range" true (x >= 100 && x < 104 && y >= 100 && y < 104)
            | Op.Same_set _ | Op.Find _ -> Alcotest.fail "unexpected op")
          ops);
    case "non-power-of-two rejected" (fun () ->
        Alcotest.check_raises "k=6"
          (Invalid_argument "Binomial: tree size must be a positive power of two")
          (fun () -> ignore (Binomial.schedule ~base:0 ~k:6)));
    case "representative is the base" (fun () ->
        check Alcotest.int "rep" 16 (Binomial.representative ~base:16 ~k:8));
    case "forest_schedule builds n / tree_size sets" (fun () ->
        let n = 64 and tree_size = 8 in
        let ops = Binomial.forest_schedule ~n ~tree_size in
        let q = partition_after ops ~n in
        check Alcotest.int "sets" (n / tree_size) (Quick_find.count_sets q));
    case "forest_schedule validates divisibility" (fun () ->
        Alcotest.check_raises "bad"
          (Invalid_argument "Binomial: tree_size must divide n") (fun () ->
            ignore (Binomial.forest_schedule ~n:20 ~tree_size:8)));
    case "probe_nodes picks one node per tree" (fun () ->
        let n = 64 and tree_size = 16 in
        let probes = Binomial.probe_nodes ~rng:(Rng.create 6) ~n ~tree_size in
        check Alcotest.int "count" (n / tree_size) (List.length probes);
        List.iteri
          (fun b x ->
            check Alcotest.bool "in own block" true
              (x >= b * tree_size && x < (b + 1) * tree_size))
          probes);
    case "probes are reflexive same_sets" (fun () ->
        List.iter
          (fun op ->
            match op with
            | Op.Same_set (x, y) -> check Alcotest.int "reflexive" x y
            | Op.Unite _ | Op.Find _ -> Alcotest.fail "unexpected op")
          (Binomial.probes ~rng:(Rng.create 7) ~n:32 ~tree_size:8));
  ]

let adversarial_tests =
  [
    case "chain unions yield one set" (fun () ->
        let n = 40 in
        let q = partition_after (Adversarial.chain ~n) ~n in
        check Alcotest.int "single" 1 (Quick_find.count_sets q));
    case "star unions yield one set" (fun () ->
        let n = 40 in
        let q = partition_after (Adversarial.star ~n) ~n in
        check Alcotest.int "single" 1 (Quick_find.count_sets q));
    case "double_binary unions yield one set" (fun () ->
        let n = 64 in
        let q = partition_after (Adversarial.double_binary ~n) ~n in
        check Alcotest.int "single" 1 (Quick_find.count_sets q));
    case "contended_pair repeats one union" (fun () ->
        let ops = Adversarial.contended_pair ~m:10 ~x:3 ~y:7 in
        check Alcotest.int "length" 10 (List.length ops);
        List.iter
          (fun op ->
            check Alcotest.bool "same pair" true (op = Op.Unite (3, 7)))
          ops);
    case "all_same_set is query-only" (fun () ->
        let ops = Adversarial.all_same_set ~rng:(Rng.create 8) ~n:10 ~m:50 in
        check Alcotest.int "length" 50 (List.length ops);
        check Alcotest.int "no unites" 0 (Op.count_unites ops));
  ]

let execution_tests =
  [
    case "run_native, run_seq and run_quick_find agree" (fun () ->
        let n = 60 in
        let ops = Random_mix.mixed ~rng:(Rng.create 9) ~n ~m:400 ~unite_fraction:0.4 in
        let native = Dsu.Native.create ~seed:1 n in
        Op.run_native native ops;
        let seq = Sequential.Seq_dsu.create n in
        Op.run_seq seq ops;
        let q = Quick_find.create n in
        Op.run_quick_find q ops;
        for x = 0 to n - 1 do
          for y = x to n - 1 do
            let expected = Quick_find.same_set q x y in
            check Alcotest.bool "native" expected (Dsu.Native.same_set native x y);
            check Alcotest.bool "seq" expected (Sequential.Seq_dsu.same_set seq x y)
          done
        done);
  ]

let () =
  Alcotest.run "workload"
    [
      ("op", op_tests);
      ("random_mix", random_mix_tests);
      ("binomial", binomial_tests);
      ("adversarial", adversarial_tests);
      ("execution", execution_tests);
    ]
