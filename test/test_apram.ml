(* Tests for the APRAM simulator substrate: memory semantics, scheduling
   policies, step accounting, history recording, and the effect plumbing. *)

module Memory = Apram.Memory
module Scheduler = Apram.Scheduler
module Process = Apram.Process
module Sim = Apram.Sim
module History = Apram.History

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* --------------------------------------------------------------- Memory *)

let memory_tests =
  [
    case "create initializes via f" (fun () ->
        let m = Memory.create 4 (fun i -> 10 * i) in
        check Alcotest.int "len" 4 (Memory.length m);
        check Alcotest.int "cell 3" 30 (Memory.peek m 3));
    case "read op" (fun () ->
        let m = Memory.create 2 (fun i -> i + 5) in
        check Alcotest.int "read" 6 (Memory.apply m (Memory.Read 1)));
    case "write op returns value and stores" (fun () ->
        let m = Memory.create 1 (fun _ -> 0) in
        check Alcotest.int "write result" 9 (Memory.apply m (Memory.Write (0, 9)));
        check Alcotest.int "stored" 9 (Memory.peek m 0));
    case "cas success" (fun () ->
        let m = Memory.create 1 (fun _ -> 3) in
        check Alcotest.int "cas" 1 (Memory.apply m (Memory.Cas (0, 3, 4)));
        check Alcotest.int "stored" 4 (Memory.peek m 0));
    case "cas failure leaves memory" (fun () ->
        let m = Memory.create 1 (fun _ -> 3) in
        check Alcotest.int "cas" 0 (Memory.apply m (Memory.Cas (0, 7, 4)));
        check Alcotest.int "unchanged" 3 (Memory.peek m 0));
    case "address_of_op" (fun () ->
        check Alcotest.int "read" 5 (Memory.address_of_op (Memory.Read 5));
        check Alcotest.int "write" 6 (Memory.address_of_op (Memory.Write (6, 0)));
        check Alcotest.int "cas" 7 (Memory.address_of_op (Memory.Cas (7, 0, 1))));
    case "is_cas" (fun () ->
        check Alcotest.bool "cas" true (Memory.is_cas (Memory.Cas (0, 0, 0)));
        check Alcotest.bool "read" false (Memory.is_cas (Memory.Read 0)));
    case "snapshot is a copy" (fun () ->
        let m = Memory.create 2 (fun i -> i) in
        let s = Memory.snapshot m in
        Memory.poke m 0 99;
        check Alcotest.int "stale" 0 s.(0));
  ]

(* ------------------------------------------------------------------ Sim *)

let run_simple ?(sched = Scheduler.round_robin ()) ~mem_size ~init bodies =
  Sim.run ~mem_size ~init ~sched bodies

let sim_tests =
  [
    case "single process, exact step count" (fun () ->
        let body _pid =
          Process.write 0 1;
          ignore (Process.read 0);
          ignore (Process.cas 0 1 2)
        in
        let o = run_simple ~mem_size:1 ~init:(fun _ -> 0) [| body |] in
        check Alcotest.int "steps" 3 o.Sim.total_steps;
        check Alcotest.int "p0 steps" 3 o.Sim.steps.(0);
        check Alcotest.int "final" 2 (Memory.peek o.Sim.memory 0));
    case "local-only process costs zero steps" (fun () ->
        let body _pid = ignore (1 + 1) in
        let o = run_simple ~mem_size:1 ~init:(fun _ -> 0) [| body |] in
        check Alcotest.int "steps" 0 o.Sim.total_steps);
    case "cas atomicity: exactly one winner" (fun () ->
        List.iter
          (fun sched ->
            let won = Array.make 3 false in
            let body pid = won.(pid) <- Process.cas 0 0 (pid + 1) in
            let o =
              Sim.run ~mem_size:1 ~init:(fun _ -> 0) ~sched
                (Array.make 3 (fun pid -> body pid))
            in
            let winners = Array.to_list won |> List.filter Fun.id |> List.length in
            check Alcotest.int "one winner" 1 winners;
            check Alcotest.bool "memory matches winner" true
              (let v = Memory.peek o.Sim.memory 0 in
               v >= 1 && v <= 3 && won.(v - 1)))
          [
            Scheduler.round_robin ();
            Scheduler.sequential ();
            Scheduler.random ~seed:5;
            Scheduler.cas_adversary ~seed:6;
          ]);
    case "sequential scheduler runs p0 to completion first" (fun () ->
        (* p0 writes then reads its own write; p1 would overwrite if it ran
           in between. *)
        let trace = ref [] in
        let body pid =
          Process.write 0 pid;
          let v = Process.read 0 in
          trace := (pid, v) :: !trace
        in
        let o =
          Sim.run ~mem_size:1 ~init:(fun _ -> 99) ~sched:(Scheduler.sequential ())
            [| body; body |]
        in
        check Alcotest.int "steps" 4 o.Sim.total_steps;
        check
          Alcotest.(list (pair int int))
          "each read own write"
          [ (0, 0); (1, 1) ]
          (List.rev !trace));
    case "round robin alternates" (fun () ->
        (* Both processes increment distinct counters k times; under round
           robin both finish with identical step counts. *)
        let body pid =
          for _ = 1 to 10 do
            let v = Process.read pid in
            Process.write pid (v + 1)
          done
        in
        let o =
          Sim.run ~mem_size:2 ~init:(fun _ -> 0) ~sched:(Scheduler.round_robin ())
            [| body; body |]
        in
        check Alcotest.int "p0" 20 o.Sim.steps.(0);
        check Alcotest.int "p1" 20 o.Sim.steps.(1);
        check Alcotest.int "cell0" 10 (Memory.peek o.Sim.memory 0);
        check Alcotest.int "cell1" 10 (Memory.peek o.Sim.memory 1));
    case "random scheduler is deterministic given seed" (fun () ->
        let run () =
          let body pid =
            for i = 0 to 9 do
              Process.write ((pid + i) mod 4) i
            done
          in
          let o =
            Sim.run ~mem_size:4 ~init:(fun _ -> 0) ~sched:(Scheduler.random ~seed:11)
              [| body; body; body |]
          in
          (o.Sim.total_steps, Memory.snapshot o.Sim.memory)
        in
        let a = run () and b = run () in
        check Alcotest.int "steps equal" (fst a) (fst b);
        check Alcotest.(array int) "memory equal" (snd a) (snd b));
    case "interleaving visible under round robin" (fun () ->
        (* p0: write 0 <- 1; read 1.  p1: write 1 <- 1; read 0.  Round robin
           guarantees both reads see the other's write (the classic SB test
           cannot give 0/0 under any sequentially consistent interleaving of
           this schedule). *)
        let r0 = ref (-1) and r1 = ref (-1) in
        let body0 _ =
          Process.write 0 1;
          r0 := Process.read 1
        in
        let body1 _ =
          Process.write 1 1;
          r1 := Process.read 0
        in
        ignore
          (Sim.run ~mem_size:2 ~init:(fun _ -> 0) ~sched:(Scheduler.round_robin ())
             [| body0; body1 |]);
        check Alcotest.bool "not both zero" true (not (!r0 = 0 && !r1 = 0)));
    case "laggard victim still completes" (fun () ->
        let done_flags = Array.make 3 false in
        let body pid =
          for _ = 1 to 20 do
            ignore (Process.read 0)
          done;
          done_flags.(pid) <- true
        in
        ignore
          (Sim.run ~mem_size:1 ~init:(fun _ -> 0)
             ~sched:(Scheduler.laggard ~seed:3 ~victim:0 ~delay:7)
             (Array.make 3 (fun pid -> body pid)));
        Array.iteri
          (fun i f -> check Alcotest.bool (Printf.sprintf "p%d done" i) true f)
          done_flags);
    case "quantum scheduler completes everything" (fun () ->
        let body _ =
          for _ = 1 to 25 do
            ignore (Process.read 0)
          done
        in
        let o =
          Sim.run ~mem_size:1 ~init:(fun _ -> 0)
            ~sched:(Scheduler.quantum ~seed:4 ~quantum:5)
            (Array.make 4 (fun pid -> body pid))
        in
        check Alcotest.int "total" 100 o.Sim.total_steps);
    case "max_steps guards against livelock" (fun () ->
        let body _ =
          while true do
            ignore (Process.read 0)
          done
        in
        Alcotest.check_raises "livelock"
          (Failure "Sim.run: max_steps exceeded (livelock or runaway workload)")
          (fun () ->
            ignore
              (Sim.run ~max_steps:100 ~mem_size:1 ~init:(fun _ -> 0)
                 ~sched:(Scheduler.round_robin ())
                 [| body |])));
    case "Self returns the pid" (fun () ->
        let seen = Array.make 3 (-1) in
        let body pid =
          ignore (Process.read 0);
          seen.(pid) <- Process.self ()
        in
        ignore
          (Sim.run ~mem_size:1 ~init:(fun _ -> 0) ~sched:(Scheduler.round_robin ())
             (Array.make 3 (fun pid -> body pid)));
        Array.iteri (fun i v -> check Alcotest.int (string_of_int i) i v) seen);
    case "exceptions propagate" (fun () ->
        let body _ =
          ignore (Process.read 0);
          failwith "boom"
        in
        Alcotest.check_raises "boom" (Failure "boom") (fun () ->
            ignore
              (Sim.run ~mem_size:1 ~init:(fun _ -> 0)
                 ~sched:(Scheduler.round_robin ())
                 [| body |])));
    case "custom scheduler drives choices" (fun () ->
        (* Always pick the highest pid: p1 completes before p0 starts. *)
        let sched =
          Scheduler.custom ~name:"highest" (fun ~memory:_ pending ->
              (List.nth pending (List.length pending - 1)).Scheduler.pid)
        in
        let order = ref [] in
        let body pid =
          ignore (Process.read 0);
          order := pid :: !order
        in
        ignore (Sim.run ~mem_size:1 ~init:(fun _ -> 0) ~sched [| body; body |]);
        check Alcotest.(list int) "order" [ 1; 0 ] (List.rev !order));
  ]

(* -------------------------------------------------------------- History *)

let history_tests =
  [
    case "invoke/return pairing with step costs" (fun () ->
        let body _ =
          Process.record_invoke ~name:"op_a" ~args:[ 1 ];
          ignore (Process.read 0);
          ignore (Process.read 0);
          Process.record_return 7;
          Process.record_invoke ~name:"op_b" ~args:[];
          ignore (Process.read 0);
          Process.record_return 8
        in
        let o =
          Sim.run ~mem_size:1 ~init:(fun _ -> 0) ~sched:(Scheduler.round_robin ())
            [| body |]
        in
        let ops = History.complete_ops o.Sim.history in
        check Alcotest.int "two ops" 2 (List.length ops);
        (match ops with
        | [ a; b ] ->
          check Alcotest.string "name a" "op_a" a.History.call.History.name;
          check Alcotest.int "steps a" 2 a.History.steps;
          check Alcotest.int "result a" 7 a.History.result;
          check Alcotest.string "name b" "op_b" b.History.call.History.name;
          check Alcotest.int "steps b" 1 b.History.steps
        | _ -> Alcotest.fail "expected two ops"));
    case "pending operations detected" (fun () ->
        let body _ =
          Process.record_invoke ~name:"never_returns" ~args:[];
          ignore (Process.read 0)
        in
        let o =
          Sim.run ~mem_size:1 ~init:(fun _ -> 0) ~sched:(Scheduler.round_robin ())
            [| body |]
        in
        check Alcotest.int "pending" 1 (List.length (History.pending_calls o.Sim.history));
        check Alcotest.int "complete" 0
          (List.length (History.complete_ops o.Sim.history)));
    case "op_step_costs ordering" (fun () ->
        let body _ =
          Process.record_invoke ~name:"x" ~args:[];
          ignore (Process.read 0);
          Process.record_return 0;
          Process.record_invoke ~name:"y" ~args:[];
          ignore (Process.read 0);
          ignore (Process.read 0);
          ignore (Process.read 0);
          Process.record_return 0
        in
        let o =
          Sim.run ~mem_size:1 ~init:(fun _ -> 0) ~sched:(Scheduler.round_robin ())
            [| body |]
        in
        check Alcotest.(list int) "costs" [ 1; 3 ] (History.op_step_costs o.Sim.history));
    case "overlapping invocations on one pid rejected" (fun () ->
        let events =
          [
            History.Invoke { pid = 0; call = { History.name = "a"; args = [] }; step = 0 };
            History.Invoke { pid = 0; call = { History.name = "b"; args = [] }; step = 1 };
          ]
        in
        Alcotest.check_raises "overlap"
          (Invalid_argument "History.complete_ops: overlapping invocations on one process")
          (fun () -> ignore (History.complete_ops events)));
    case "return without invocation rejected" (fun () ->
        let events = [ History.Return { pid = 0; value = 1; step = 0 } ] in
        Alcotest.check_raises "orphan"
          (Invalid_argument "History.complete_ops: return without invocation")
          (fun () -> ignore (History.complete_ops events)));
  ]

(* --------------------------------------------------------- run_ops glue *)

let trace_tests =
  [
    case "on_step observes every applied step in order" (fun () ->
        let trace = ref [] in
        let body _ =
          Process.write 0 7;
          ignore (Process.read 0);
          ignore (Process.cas 0 7 9)
        in
        ignore
          (Sim.run
             ~on_step:(fun ~pid ~op ~result -> trace := (pid, op, result) :: !trace)
             ~mem_size:1 ~init:(fun _ -> 0) ~sched:(Scheduler.round_robin ())
             [| body |]);
        (match List.rev !trace with
        | [ (0, Memory.Write (0, 7), 7); (0, Memory.Read 0, 7); (0, Memory.Cas (0, 7, 9), 1) ] -> ()
        | other ->
          Alcotest.failf "unexpected trace (%d entries)" (List.length other)));
  ]

(* ------------------------------------------------------------- explore *)

let explore_tests =
  [
    case "counts schedules of independent processes" (fun () ->
        (* Two processes, two steps each, touching distinct cells: the
           number of interleavings is C(4,2) = 6. *)
        let make_ops () =
          Array.init 2 (fun pid ->
              [ (fun () -> Process.write pid 1); (fun () -> Process.write pid 2) ])
        in
        let s =
          Apram.Explore.count_schedules ~mem_size:2 ~init:(fun _ -> 0) ~make_ops ()
        in
        check Alcotest.int "schedules" 6 s.Apram.Explore.schedules;
        check Alcotest.bool "complete" false s.Apram.Explore.truncated);
    case "finds the lost-update interleaving" (fun () ->
        (* Two read-then-write increments: some schedule loses an update,
           and the explorer must find it. *)
        let make_ops () =
          Array.init 2 (fun _ ->
              [
                (fun () ->
                  let v = Process.read 0 in
                  Process.write 0 (v + 1));
              ])
        in
        match
          Apram.Explore.run_all ~mem_size:1 ~init:(fun _ -> 0) ~make_ops
            ~check:(fun o -> Memory.peek o.Sim.memory 0 = 2)
            ()
        with
        | Ok _ -> Alcotest.fail "expected a lost update"
        | Error v ->
          check Alcotest.int "final value" 1 (Memory.peek v.Apram.Explore.outcome.Sim.memory 0);
          check Alcotest.bool "nonempty schedule" true (v.Apram.Explore.choices <> []));
    case "single process has exactly one schedule" (fun () ->
        let make_ops () = [| [ (fun () -> Process.write 0 1) ] |] in
        let s =
          Apram.Explore.count_schedules ~mem_size:1 ~init:(fun _ -> 0) ~make_ops ()
        in
        check Alcotest.int "schedules" 1 s.Apram.Explore.schedules);
    case "max_schedules truncates" (fun () ->
        let make_ops () =
          Array.init 3 (fun pid ->
              [ (fun () -> Process.write pid 1); (fun () -> Process.write pid 2) ])
        in
        let s =
          Apram.Explore.count_schedules ~max_schedules:10 ~mem_size:3
            ~init:(fun _ -> 0) ~make_ops ()
        in
        check Alcotest.int "schedules" 10 s.Apram.Explore.schedules;
        check Alcotest.bool "truncated" true s.Apram.Explore.truncated);
    case "atomic cas increments never lose updates" (fun () ->
        (* The CAS-retry loop version must pass on every schedule. *)
        let make_ops () =
          Array.init 2 (fun _ ->
              [
                (fun () ->
                  let rec retry () =
                    let v = Process.read 0 in
                    if not (Process.cas 0 v (v + 1)) then retry ()
                  in
                  retry ());
              ])
        in
        match
          Apram.Explore.run_all ~mem_size:1 ~init:(fun _ -> 0) ~make_ops
            ~check:(fun o -> Memory.peek o.Sim.memory 0 = 2)
            ()
        with
        | Ok s -> check Alcotest.bool "several schedules" true (s.Apram.Explore.schedules > 1)
        | Error _ -> Alcotest.fail "cas loop lost an update");
  ]

let run_ops_tests =
  [
    case "closures execute in order per process" (fun () ->
        let log = ref [] in
        let mk pid i () =
          ignore (Process.read 0);
          log := (pid, i) :: !log
        in
        let ops = [| [ mk 0 0; mk 0 1 ]; [ mk 1 0; mk 1 1 ] |] in
        ignore
          (Sim.run_ops ~mem_size:1 ~init:(fun _ -> 0)
             ~sched:(Scheduler.sequential ()) ops);
        check
          Alcotest.(list (pair int int))
          "order"
          [ (0, 0); (0, 1); (1, 0); (1, 1) ]
          (List.rev !log));
  ]

(* ----------------------------------------------------- fault schedulers *)

let spin_reads n () =
  for _ = 1 to n do
    ignore (Process.read 0)
  done

let fault_sched_tests =
  [
    case "crash scheduler kills its victims, survivors finish" (fun () ->
        let ops = Array.make 3 [ spin_reads 50 ] in
        let outcome =
          Sim.run_ops ~mem_size:1 ~init:(fun _ -> 0)
            ~sched:(Scheduler.crash ~seed:3 ~victims:[ 1 ] ~after:5)
            ops
        in
        check Alcotest.(list int) "crashed" [ 1 ] outcome.Sim.crashed;
        check Alcotest.bool "victim stopped early" true (outcome.Sim.steps.(1) < 50);
        check Alcotest.int "survivor 0 finished" 50 outcome.Sim.steps.(0);
        check Alcotest.int "survivor 2 finished" 50 outcome.Sim.steps.(2));
    case "crash leaves the victim's op pending in the history" (fun () ->
        let op pid () =
          Process.record_invoke ~name:"op" ~args:[ pid ];
          spin_reads 40 ();
          Process.record_return 0
        in
        let ops = Array.init 2 (fun pid -> [ op pid ]) in
        let outcome =
          Sim.run_ops ~mem_size:1 ~init:(fun _ -> 0)
            ~sched:(Scheduler.crash ~seed:7 ~victims:[ 0 ] ~after:4)
            ops
        in
        check Alcotest.(list int) "crashed" [ 0 ] outcome.Sim.crashed;
        let pending = History.pending_calls outcome.Sim.history in
        check Alcotest.int "one pending call" 1 (List.length pending);
        let pid, call = List.hd pending in
        check Alcotest.int "pending pid" 0 pid;
        check Alcotest.string "pending op" "op" call.History.name);
    case "crash with no victims is a plain random schedule" (fun () ->
        let ops = Array.make 2 [ spin_reads 20 ] in
        let outcome =
          Sim.run_ops ~mem_size:1 ~init:(fun _ -> 0)
            ~sched:(Scheduler.crash ~seed:5 ~victims:[] ~after:1)
            ops
        in
        check Alcotest.(list int) "crashed" [] outcome.Sim.crashed;
        check Alcotest.int "all steps" 40 outcome.Sim.total_steps);
    case "stall storm terminates with everyone finished" (fun () ->
        let ops = Array.make 4 [ spin_reads 30 ] in
        let outcome =
          Sim.run_ops ~mem_size:1 ~init:(fun _ -> 0)
            ~sched:(Scheduler.stall_storm ~seed:9 ~prob_percent:30 ~stall:8)
            ops
        in
        check Alcotest.(list int) "no crashes" [] outcome.Sim.crashed;
        Array.iter (fun s -> check Alcotest.int "finished" 30 s) outcome.Sim.steps);
    case "stall storm is deterministic given the seed" (fun () ->
        let run () =
          let trace = ref [] in
          let outcome =
            Sim.run_ops ~mem_size:1 ~init:(fun _ -> 0)
              ~on_step:(fun ~pid ~op:_ ~result:_ -> trace := pid :: !trace)
              ~sched:(Scheduler.stall_storm ~seed:13 ~prob_percent:25 ~stall:4)
              (Array.make 3 [ spin_reads 15 ])
          in
          (outcome.Sim.total_steps, List.rev !trace)
        in
        let a = run () and b = run () in
        check Alcotest.(pair int (list int)) "same schedule" a b);
  ]

let () =
  Alcotest.run "apram"
    [
      ("memory", memory_tests);
      ("sim", sim_tests);
      ("history", history_tests);
      ("trace", trace_tests);
      ("explore", explore_tests);
      ("run_ops", run_ops_tests);
      ("fault_sched", fault_sched_tests);
    ]
