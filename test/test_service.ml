(* Tests for the serving layer: the bounded MPMC queue (sequential oracle,
   multi-domain stress, fault-injection histories), the service's
   backpressure accounting, and a miniature crash-recovery drill. *)

module Q = Repro_service.Bounded_queue
module Svc = Repro_service.Service
module Hsvc = Harness.Service
module Fi = Repro_fault.Inject
module Site = Repro_fault.Site
module Rng = Repro_util.Rng
module Clock = Repro_obs.Clock

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* ------------------------------------------------- sequential oracle *)

(* Random interleaving of enqueue/dequeue attempts against a stdlib Queue
   bounded by hand: every accept/reject decision and every dequeued value
   must match FIFO order and the capacity bound exactly. *)
let test_queue_oracle () =
  let rng = Rng.create 11 in
  let cap = 1 + Rng.int rng 8 in
  let q = Q.create cap in
  let oracle = Queue.create () in
  for i = 0 to 4_999 do
    if Rng.int rng 100 < 55 then begin
      let accepted = Q.try_enqueue q i in
      let should = Queue.length oracle < cap in
      check Alcotest.bool "admission matches capacity" should accepted;
      if accepted then Queue.push i oracle
    end
    else
      match Q.dequeue_opt q with
      | Some v -> check Alcotest.int "FIFO order" (Queue.pop oracle) v
      | None ->
        check Alcotest.bool "empty agrees" true (Queue.is_empty oracle)
  done;
  check Alcotest.int "final length" (Queue.length oracle) (Q.length q)

let test_queue_batch_oracle () =
  let rng = Rng.create 12 in
  let q = Q.create 16 in
  let oracle = Queue.create () in
  for i = 0 to 1_999 do
    if Rng.int rng 100 < 60 then begin
      if Q.try_enqueue q i then Queue.push i oracle
    end
    else begin
      let max = 1 + Rng.int rng 5 in
      let got = Q.dequeue_batch q ~max in
      check Alcotest.bool "batch bounded" true (List.length got <= max);
      List.iter
        (fun v -> check Alcotest.int "batch FIFO" (Queue.pop oracle) v)
        got
    end
  done

let test_queue_shed () =
  let q = Q.create 3 in
  for i = 0 to 2 do
    check Alcotest.bool "fills" true (Q.try_enqueue q i)
  done;
  check Alcotest.bool "full rejects" false (Q.try_enqueue q 99);
  (* shed admits by displacing the oldest, never silently *)
  check Alcotest.(option int) "displaces oldest" (Some 0) (Q.shed_enqueue q 3);
  check Alcotest.(option int) "no displacement with room"
    None
    (match Q.dequeue_opt q with
    | Some 1 -> Q.shed_enqueue q 4
    | _ -> Alcotest.fail "expected head 1");
  check Alcotest.int "capacity held" 3 (Q.length q);
  let drained = Q.dequeue_batch q ~max:10 in
  check Alcotest.(list int) "FIFO after shed" [ 2; 3; 4 ] drained

let test_queue_deadline () =
  let q = Q.create 1 in
  check Alcotest.bool "admits" true (Q.try_enqueue q 0);
  let t0 = Clock.now_ns () in
  let ok = Q.enqueue_until q ~deadline_ns:(t0 + 2_000_000) 1 in
  check Alcotest.bool "full queue times out" false ok;
  check Alcotest.bool "waited for the deadline" true
    (Clock.now_ns () - t0 >= 2_000_000);
  ignore (Q.dequeue_opt q);
  check Alcotest.bool "admits after room"
    true
    (Q.enqueue_until q ~deadline_ns:(Clock.now_ns () + 1_000_000) 1)

(* -------------------------------------------------- 4-domain stress *)

(* 2 producers x 2 consumers over a small ring: no op lost, none
   duplicated, and each producer's values are consumed in its own order
   (per-producer FIFO — the queue is MPMC so cross-producer order is
   unconstrained). *)
let run_queue_stress () =
  let per_producer = 5_000 in
  let producers = 2 and consumers = 2 in
  let q = Q.create 8 in
  (* on a single-core box spinning domains starve each other for whole
     scheduler quanta; sleep yields the OS thread instead *)
  let yield () = Unix.sleepf 0.00002 in
  let produce p () =
    (* tag values with the producer id in the low bit *)
    for i = 0 to per_producer - 1 do
      let v = (i * producers) + p in
      while not (Q.try_enqueue q v) do
        yield ()
      done
    done
  in
  let total = producers * per_producer in
  let taken = Atomic.make 0 in
  let consume _ () =
    let mine = ref [] in
    let continue_ = ref true in
    while !continue_ do
      match Q.dequeue_opt q with
      | Some v ->
        Atomic.incr taken;
        mine := v :: !mine
      | None -> if Atomic.get taken >= total then continue_ := false else yield ()
    done;
    List.rev !mine
  in
  let ps = List.init producers (fun p -> Domain.spawn (produce p)) in
  let cs = List.init consumers (fun c -> Domain.spawn (consume c)) in
  List.iter Domain.join ps;
  let batches = List.map Domain.join cs in
  let all = List.concat batches in
  check Alcotest.int "no loss" total (List.length all);
  let sorted = List.sort compare all in
  check Alcotest.bool "no duplicates" true
    (List.for_all2 (fun a b -> a = b) sorted (List.init total Fun.id));
  (* per-producer FIFO: within each consumer's stream, each producer's
     values appear in increasing order; merge-check across consumers via
     a per-producer high-water mark is not valid (two consumers can
     interleave), but within one consumer order must hold *)
  List.iter
    (fun stream ->
      let last = Array.make producers (-1) in
      List.iter
        (fun v ->
          let p = v mod producers in
          check Alcotest.bool "per-producer FIFO" true (v > last.(p));
          last.(p) <- v)
        stream)
    batches

let test_queue_stress () = run_queue_stress ()

(* Same stress with adversarial yields injected at the queue's fault
   sites on every enrolled domain — a lincheck-style schedule perturbation
   at exactly the published linearization-sensitive points. *)
let test_queue_stress_yields () =
  Fi.arm
    {
      Fi.seed = 5;
      rules_for =
        (fun _ ->
          [
            Fi.rule
              ~sites:[ Site.Queue_enq_cas; Site.Queue_deq_cas ]
              ~prob:0.2 Fi.Yield;
            Fi.rule
              ~sites:[ Site.Queue_enq_cas; Site.Queue_deq_cas ]
              ~prob:0.02 (Fi.Stall 64);
          ]);
    };
  Fun.protect ~finally:Fi.disarm (fun () ->
      let q = Q.create 4 in
      let per = 2_000 in
      let yield () = Unix.sleepf 0.00002 in
      let produce p () =
        Fi.enroll ~slot:p;
        for i = 0 to per - 1 do
          let v = (i * 2) + p in
          while not (Q.try_enqueue q v) do
            yield ()
          done
        done
      in
      let taken = Atomic.make 0 in
      let consume c () =
        Fi.enroll ~slot:(2 + c);
        let seen = ref [] in
        let continue_ = ref true in
        while !continue_ do
          match Q.dequeue_opt q with
          | Some v ->
            Atomic.incr taken;
            seen := v :: !seen
          | None ->
            if Atomic.get taken >= 2 * per then continue_ := false
            else yield ()
        done;
        !seen
      in
      let ps = List.init 2 (fun p -> Domain.spawn (produce p)) in
      let cs = List.init 2 (fun c -> Domain.spawn (consume c)) in
      List.iter Domain.join ps;
      let all = List.concat (List.map Domain.join cs) in
      check Alcotest.int "no loss under yields" (2 * per) (List.length all);
      let sorted = List.sort compare all in
      check Alcotest.bool "no duplicates under yields" true
        (List.for_all2 ( = ) sorted (List.init (2 * per) Fun.id)))

(* --------------------------------------------- service vs sequential *)

(* With one worker and one session, admitted ops apply in submission
   order, so every answered value must equal a sequential union-find
   replay of the accepted prefix.  Only unite/same_set are compared —
   find's answer is a representative node, which the layouts are free to
   pick differently (checked separately below). *)
let test_service_sequential_oracle () =
  let n = 256 in
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let cfg =
    {
      Svc.default_config with
      Svc.n;
      workers = 1;
      clients = 1;
      queue_capacity = 64;
      batch = 16;
      admission = Svc.Block 0.2;
    }
  in
  let svc = Svc.create cfg in
  let rng = Rng.create 3 in
  let expected = Hashtbl.create 512 in
  let answered = ref 0 in
  let drain () =
    List.iter
      (fun (r : Svc.response) ->
        incr answered;
        match (r.Svc.r_outcome, Hashtbl.find_opt expected r.Svc.r_id) with
        | Svc.Done v, Some e ->
          check Alcotest.bool "oracle agrees" true (v = e)
        | Svc.Done _, None -> Alcotest.fail "unexpected response id"
        | _ -> Alcotest.fail "unexpected non-Done outcome")
      (Svc.poll svc ~session:0)
  in
  for _ = 0 to 1_999 do
    let x = Rng.int rng n and y = Rng.int rng n in
    let op =
      if Rng.int rng 2 = 0 then Svc.Unite (x, y) else Svc.Same_set (x, y)
    in
    (match Svc.submit svc ~session:0 op with
    | Svc.Enqueued id ->
      (* the oracle applies the op now: one worker serves FIFO *)
      let e =
        match op with
        | Svc.Unite (x, y) ->
          let rx = find x and ry = find y in
          if rx <> ry then parent.(rx) <- ry;
          Svc.V_unit
        | Svc.Same_set (x, y) -> Svc.V_bool (find x = find y)
        | Svc.Find _ -> assert false
      in
      Hashtbl.replace expected id e
    | Svc.Rejected _ -> Alcotest.fail "block admission rejected");
    drain ()
  done;
  let give_up = Clock.now_ns () + 2_000_000_000 in
  while !answered < Hashtbl.length expected && Clock.now_ns () < give_up do
    drain ();
    Unix.sleepf 0.0002
  done;
  Svc.stop svc;
  check Alcotest.int "every accepted op answered" (Hashtbl.length expected)
    !answered

(* Find returns a real root of the element's current set — compare it as
   a set representative, not as a specific node. *)
let test_service_find_is_root () =
  let n = 64 in
  let cfg =
    { Svc.default_config with Svc.n; workers = 1; clients = 1; admission = Svc.Block 0.2 }
  in
  let svc = Svc.create cfg in
  (match Svc.submit svc ~session:0 (Svc.Unite (1, 2)) with
  | Svc.Enqueued _ -> ()
  | Svc.Rejected _ -> Alcotest.fail "rejected");
  (match Svc.submit svc ~session:0 (Svc.Find 1) with
  | Svc.Enqueued _ -> ()
  | Svc.Rejected _ -> Alcotest.fail "rejected");
  let root = ref (-1) in
  let give_up = Clock.now_ns () + 2_000_000_000 in
  while !root < 0 && Clock.now_ns () < give_up do
    List.iter
      (fun (r : Svc.response) ->
        match (r.Svc.r_op, r.Svc.r_outcome) with
        | Svc.Find _, Svc.Done (Svc.V_int v) -> root := v
        | _ -> ())
      (Svc.poll svc ~session:0);
    Unix.sleepf 0.0002
  done;
  Svc.stop svc;
  check Alcotest.bool "find answered with a member's root" true
    (!root = 1 || !root = 2);
  check Alcotest.bool "backend agrees" true
    (Repro_recover.Restore.same_set (Svc.backend svc) !root 1)

let test_service_element_bounds () =
  let cfg = { Svc.default_config with Svc.n = 8; workers = 1; clients = 1 } in
  let svc = Svc.create cfg in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Service.submit: element 8 outside [0, 8)") (fun () ->
      ignore (Svc.submit svc ~session:0 (Svc.Find 8)));
  Svc.stop svc

(* --------------------------------------------- backpressure accounting *)

(* Drive the open-loop harness at a rate far past saturation with a tiny
   queue: depth stays bounded by capacity, and every accepted op is
   accounted (acked + shed + timed_out + failed + lost = accepted, no
   silent drops). *)
let run_backpressure admission =
  let config =
    {
      Hsvc.default_config with
      Hsvc.n = 1 lsl 10;
      generators = 2;
      ops = 2_000;
      workers = 2;
      queue_capacity = 32;
      batch = 8;
      admission;
      shape = Harness.Latency.Fixed;
    }
  in
  let p = Hsvc.run_point ~config ~rate:400_000.0 () in
  check Alcotest.bool "depth bounded by capacity" true p.Hsvc.depth_bound_ok;
  check Alcotest.bool "all accepted ops accounted" true p.Hsvc.accounted_ok;
  check Alcotest.int "nothing lost" 0 p.Hsvc.lost;
  check Alcotest.int "everything submitted" (2 * 2_000) p.Hsvc.submitted;
  p

let test_backpressure_reject () =
  let p = run_backpressure Svc.Reject in
  check Alcotest.bool "reject surfaces backpressure" true
    (p.Hsvc.rejected > 0 || not p.Hsvc.saturated)

let test_backpressure_shed () =
  let p = run_backpressure Svc.Shed_oldest in
  check Alcotest.int "shed admission never rejects" 0 p.Hsvc.rejected;
  check Alcotest.bool "displacement is answered, not silent" true
    (p.Hsvc.shed > 0 || not p.Hsvc.saturated)

let test_deadline_expiry () =
  (* saturate a tiny queue with a 1ms per-op deadline: some queued ops
     must expire and be answered Timed_out without touching the DSU *)
  let config =
    {
      Hsvc.default_config with
      Hsvc.n = 1 lsl 10;
      generators = 2;
      ops = 1_500;
      workers = 1;
      queue_capacity = 512;
      batch = 4;
      admission = Svc.Block 0.05;
      op_deadline_ms = 1.0;
      shape = Harness.Latency.Bursty 64;
    }
  in
  let p = Hsvc.run_point ~config ~rate:500_000.0 () in
  check Alcotest.bool "accounted" true p.Hsvc.accounted_ok;
  check Alcotest.bool "deadlines fired" true (p.Hsvc.timed_out > 0)

(* ------------------------------------------------------- mini drill *)

let test_drill_flat () =
  let config =
    {
      Hsvc.default_config with
      Hsvc.n = 1 lsl 10;
      workers = 2;
      queue_capacity = 64;
      batch = 8;
    }
  in
  let d = Hsvc.drill ~config ~kind:Repro_recover.Snapshot.Flat () in
  List.iter
    (fun (c : Hsvc.check) ->
      check Alcotest.bool
        (Printf.sprintf "drill check %s: %s" c.Hsvc.c_name c.Hsvc.c_detail)
        true c.Hsvc.c_passed)
    d.Hsvc.d_checks;
  check Alcotest.int "RPO is zero" 0 d.Hsvc.d_rpo_lost;
  check Alcotest.bool "RTO measured" true (d.Hsvc.d_rto_ns > 0);
  check Alcotest.bool "passed" true d.Hsvc.d_passed

let () =
  Alcotest.run "service"
    [
      ( "bounded-queue",
        [
          case "sequential oracle" test_queue_oracle;
          case "batch oracle" test_queue_batch_oracle;
          case "shed displaces oldest" test_queue_shed;
          case "enqueue deadline" test_queue_deadline;
          slow "4-domain stress" test_queue_stress;
          slow "4-domain stress with yields" test_queue_stress_yields;
        ] );
      ( "service",
        [
          case "sequential oracle (1 worker)" test_service_sequential_oracle;
          case "find returns a root" test_service_find_is_root;
          case "element bounds" test_service_element_bounds;
        ] );
      ( "backpressure",
        [
          slow "reject at 2x saturation" test_backpressure_reject;
          slow "shed-oldest at 2x saturation" test_backpressure_shed;
          slow "per-op deadlines expire" test_deadline_expiry;
        ] );
      ("drill", [ slow "flat crash-recovery drill" test_drill_flat ]);
    ]
