(* Real-parallelism stress tests over OCaml 5 domains.  Each domain draws
   its operations from a deterministic per-domain stream, so after the
   domains join, the final partition can be checked exactly against the
   quick-find oracle fed the union of all streams. *)

module Native = Dsu.Native
module Policy = Dsu.Find_policy
module Quick_find = Sequential.Quick_find
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let domain_unites ~k ~n ~per_domain =
  let rng = Rng.create (1000 + k) in
  List.init per_domain (fun _ -> (Rng.int rng n, Rng.int rng n))

let stress ?(padded = false) ?memory_order ?backoff ~policy ~early ~domains ~n
    ~per_domain () =
  let d = Native.create ~padded ?memory_order ?backoff ~policy ~early ~seed:7 n in
  let worker k () = List.iter (fun (x, y) -> Native.unite d x y) (domain_unites ~k ~n ~per_domain) in
  let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join handles;
  (* Oracle: replay all streams sequentially (order irrelevant for the final
     partition). *)
  let q = Quick_find.create n in
  for k = 0 to domains - 1 do
    List.iter (fun (x, y) -> Quick_find.unite q x y) (domain_unites ~k ~n ~per_domain)
  done;
  (d, q)

let variant_cases =
  List.concat_map
    (fun policy ->
      List.map
        (fun early ->
          case
            (Printf.sprintf "4 domains agree with oracle (%s%s)"
               (Policy.to_string policy)
               (if early then "+early" else ""))
            (fun () ->
              let n = 500 in
              let d, q = stress ~policy ~early ~domains:4 ~n ~per_domain:2000 () in
              check Alcotest.int "count_sets" (Quick_find.count_sets q)
                (Native.count_sets d);
              for x = 0 to 99 do
                for y = 0 to 99 do
                  check Alcotest.bool "pair" (Quick_find.same_set q x y)
                    (Native.same_set d x y)
                done
              done;
              check Alcotest.int "invariants" 0
                (List.length (Native.invariant_violations d))))
        [ false; true ])
    Policy.all

(* The flat memory layout under real parallelism: oracle-agreement stress on
   the cache-line-padded mode across every find policy (the default
   unpadded mode is what every other case in this file already exercises,
   since Native is flat now), plus the boxed A/B comparator and a raw
   CAS-contention hammer on Flat_atomic_array itself. *)
let flat_layout_cases =
  let padded_cases =
    List.map
      (fun policy ->
        case
          (Printf.sprintf "padded flat layout agrees with oracle (%s)"
             (Policy.to_string policy))
          (fun () ->
            let n = 300 in
            let d, q =
              stress ~padded:true ~policy ~early:false ~domains:4 ~n
                ~per_domain:1500 ()
            in
            check Alcotest.int "count_sets" (Quick_find.count_sets q)
              (Native.count_sets d);
            for x = 0 to 59 do
              for y = 0 to 59 do
                check Alcotest.bool "pair" (Quick_find.same_set q x y)
                  (Native.same_set d x y)
              done
            done;
            check Alcotest.int "invariants" 0
              (List.length (Native.invariant_violations d))))
      Policy.all
  in
  padded_cases
  @ [
      case "boxed comparator agrees with oracle under 4 domains" (fun () ->
          let n = 300 in
          let d = Dsu.Boxed.create ~seed:7 n in
          let worker k () =
            List.iter (fun (x, y) -> Dsu.Boxed.unite d x y)
              (domain_unites ~k ~n ~per_domain:1500)
          in
          let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
          List.iter Domain.join handles;
          let q = Quick_find.create n in
          for k = 0 to 3 do
            List.iter (fun (x, y) -> Quick_find.unite q x y)
              (domain_unites ~k ~n ~per_domain:1500)
          done;
          check Alcotest.int "count_sets" (Quick_find.count_sets q)
            (Dsu.Boxed.count_sets d);
          for x = 0 to 59 do
            for y = 0 to 59 do
              check Alcotest.bool "pair" (Quick_find.same_set q x y)
                (Dsu.Boxed.same_set d x y)
            done
          done;
          check Alcotest.int "invariants" 0
            (List.length (Dsu.Boxed.invariant_violations d)));
      case "flat vs boxed reach the same partition" (fun () ->
          let n = 400 in
          let ops = domain_unites ~k:9 ~n ~per_domain:1200 in
          let f = Native.create ~seed:5 n in
          let b = Dsu.Boxed.create ~seed:5 n in
          List.iter (fun (x, y) -> Native.unite f x y) ops;
          List.iter (fun (x, y) -> Dsu.Boxed.unite b x y) ops;
          check Alcotest.int "count_sets" (Native.count_sets f)
            (Dsu.Boxed.count_sets b);
          for x = 0 to 79 do
            for y = 0 to 79 do
              check Alcotest.bool "pair" (Native.same_set f x y)
                (Dsu.Boxed.same_set b x y)
            done
          done);
      case "cas hammer: every increment lands exactly once" (fun () ->
          let module F = Repro_util.Flat_atomic_array in
          List.iter
            (fun padded ->
              let cells = 4 and domains = 4 and per_domain = 5000 in
              let a = F.make ~padded cells (fun _ -> 0) in
              let worker k () =
                let rng = Rng.create (900 + k) in
                for _ = 1 to per_domain do
                  let i = Rng.int rng cells in
                  let rec bump () =
                    let v = F.get a i in
                    if not (F.cas a i v (v + 1)) then bump ()
                  in
                  bump ()
                done
              in
              let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
              List.iter Domain.join handles;
              let total = Array.fold_left ( + ) 0 (F.snapshot a) in
              check Alcotest.int
                (if padded then "total (padded)" else "total")
                (domains * per_domain) total)
            [ false; true ]);
      case "fetch_add hammer: atomic under contention" (fun () ->
          let module F = Repro_util.Flat_atomic_array in
          let a = F.make 1 (fun _ -> 0) in
          let domains = 4 and per_domain = 10_000 in
          let worker _ () =
            for _ = 1 to per_domain do
              ignore (F.fetch_add a 0 1)
            done
          in
          let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
          List.iter Domain.join handles;
          check Alcotest.int "total" (domains * per_domain) (F.get a 0));
      case "padded restore round-trips the partition" (fun () ->
          let n = 200 in
          let d, _ = stress ~policy:Policy.Two_try_splitting ~early:false
              ~domains:2 ~n ~per_domain:500 ()
          in
          let r = Native.restore ~padded:true (Native.snapshot d) in
          check Alcotest.int "count_sets" (Native.count_sets d)
            (Native.count_sets r);
          for x = 0 to 49 do
            for y = 0 to 49 do
              check Alcotest.bool "pair" (Native.same_set d x y)
                (Native.same_set r x y)
            done
          done);
    ]

let mixed_cases =
  [
    case "concurrent queries during unions return consistent results" (fun () ->
        (* Queries racing with unions: results must be monotone — once two
           nodes are connected, they stay connected.  Each domain unites a
           chain segment and repeatedly queries its endpoints. *)
        let n = 400 in
        let d = Native.create ~seed:9 n in
        let anomalies = Atomic.make 0 in
        let worker k () =
          let lo = k * 100 in
          for i = lo to lo + 98 do
            Native.unite d i (i + 1);
            (* After uniting i and i+1, the connection must be visible. *)
            if not (Native.same_set d i (i + 1)) then Atomic.incr anomalies
          done;
          (* Endpoint connectivity within this domain's segment. *)
          if not (Native.same_set d lo (lo + 99)) then Atomic.incr anomalies
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join handles;
        check Alcotest.int "no anomalies" 0 (Atomic.get anomalies);
        check Alcotest.int "four chains" (n - 4 * 99) (Native.count_sets d));
    case "stats are exact under parallel updates" (fun () ->
        let n = 300 in
        let d = Native.create ~collect_stats:true ~seed:11 n in
        let per_domain = 1000 in
        let worker k () =
          let rng = Rng.create (50 + k) in
          for _ = 1 to per_domain do
            Native.unite d (Rng.int rng n) (Rng.int rng n)
          done
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join handles;
        let s = Native.stats d in
        check Alcotest.int "unite calls" 4000 s.Dsu.Stats.unite_calls;
        check Alcotest.int "links" (n - Native.count_sets d) s.Dsu.Stats.links);
    case "contended pair: exactly one link" (fun () ->
        let d = Native.create ~collect_stats:true ~seed:13 4 in
        let worker () = Native.unite d 0 1 in
        let handles = List.init 6 (fun _ -> Domain.spawn worker) in
        List.iter Domain.join handles;
        let s = Native.stats d in
        check Alcotest.int "links" 1 s.Dsu.Stats.links;
        check Alcotest.bool "0~1" true (Native.same_set d 0 1));
    case "growable parallel unite after parallel make_set" (fun () ->
        let g = Dsu.Growable.create ~capacity:800 ~seed:17 () in
        let worker _k () =
          let mine = Array.init 200 (fun _ -> Dsu.Growable.make_set g) in
          Array.iteri (fun i e -> if i > 0 then Dsu.Growable.unite g mine.(0) e) mine;
          mine.(0)
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        let reps = List.map Domain.join handles in
        check Alcotest.int "four groups" 4 (Dsu.Growable.count_sets g);
        (* Merge the four groups and recount. *)
        (match reps with
        | a :: rest -> List.iter (fun b -> Dsu.Growable.unite g a b) rest
        | [] -> ());
        check Alcotest.int "one group" 1 (Dsu.Growable.count_sets g));
  ]

(* Memory-order and bulk-kernel stress: the tuned read paths and the
   batched kernels under real domains, against the same oracle replay. *)
let tuned_cases =
  let order_cases =
    List.concat_map
      (fun memory_order ->
        List.map
          (fun backoff ->
            case
              (Printf.sprintf "4 domains agree with oracle (%s, backoff %s)"
                 (Dsu.Memory_order.to_string memory_order)
                 (if backoff then "on" else "off"))
              (fun () ->
                let n = 400 in
                let d, q =
                  stress ~memory_order ~backoff
                    ~policy:Policy.Two_try_splitting ~early:false ~domains:4
                    ~n ~per_domain:2000 ()
                in
                check Alcotest.int "count_sets" (Quick_find.count_sets q)
                  (Native.count_sets d);
                for x = 0 to 79 do
                  for y = 0 to 79 do
                    check Alcotest.bool "pair" (Quick_find.same_set q x y)
                      (Native.same_set d x y)
                  done
                done;
                check Alcotest.int "invariants" 0
                  (List.length (Native.invariant_violations d))))
          [ true; false ])
      Dsu.Memory_order.all
  in
  order_cases
  @ [
      case "concurrent unite_batch agrees with oracle" (fun () ->
          let n = 400 and domains = 4 and per_domain = 2000 in
          let d = Native.create ~seed:7 n in
          let pairs k =
            let rng = Rng.create (4000 + k) in
            let xs = Array.init per_domain (fun _ -> Rng.int rng n) in
            let ys = Array.init per_domain (fun _ -> Rng.int rng n) in
            (xs, ys)
          in
          let worker k () =
            let xs, ys = pairs k in
            Native.unite_batch d xs ys
          in
          let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
          List.iter Domain.join handles;
          let q = Quick_find.create n in
          for k = 0 to domains - 1 do
            let xs, ys = pairs k in
            Array.iteri (fun i x -> Quick_find.unite q x ys.(i)) xs
          done;
          check Alcotest.int "count_sets" (Quick_find.count_sets q)
            (Native.count_sets d);
          for x = 0 to 79 do
            for y = 0 to 79 do
              check Alcotest.bool "pair" (Quick_find.same_set q x y)
                (Native.same_set d x y)
            done
          done;
          check Alcotest.int "invariants" 0
            (List.length (Native.invariant_violations d)));
      case "same_set_batch racing unite_batch is sound" (fun () ->
          (* Two domains unite chain segments in bulk while two others run
             bulk queries; query answers must be monotone (no [false]
             after the endpoints' segments were fully linked before the
             batch started). *)
          let n = 512 in
          let d = Native.create ~seed:11 n in
          let half = n / 2 in
          let chain lo len =
            let xs = Array.init (len - 1) (fun i -> lo + i) in
            let ys = Array.init (len - 1) (fun i -> lo + i + 1) in
            (xs, ys)
          in
          let uniter lo () =
            let xs, ys = chain lo half in
            Native.unite_batch d xs ys
          in
          let anomalies = Atomic.make 0 in
          let querier lo () =
            let m = 200 in
            let xs = Array.make m lo in
            let ys = Array.init m (fun i -> lo + 1 + (i mod (half - 1))) in
            (* Answers may be false while the chain is being built, but the
               batch after the join below must be all-true; here just check
               the call survives the race and returns the right count. *)
            let got = Native.same_set_batch d xs ys in
            if Array.length got <> m then Atomic.incr anomalies
          in
          let ds =
            [
              Domain.spawn (uniter 0);
              Domain.spawn (uniter half);
              Domain.spawn (querier 0);
              Domain.spawn (querier half);
            ]
          in
          List.iter Domain.join ds;
          check Alcotest.int "query anomalies" 0 (Atomic.get anomalies);
          (* Post-quiescence: every in-chain pair must now answer true. *)
          let xs = Array.init (half - 1) (fun i -> i) in
          let ys = Array.init (half - 1) (fun i -> i + 1) in
          let got = Native.same_set_batch d xs ys in
          Array.iteri
            (fun i ans ->
              check Alcotest.bool (Printf.sprintf "pair %d" i) true ans)
            got;
          check Alcotest.int "two chains" 2 (Native.count_sets d));
    ]

(* Native histories: record real multi-domain executions and check them
   against the sequential specification. *)
let native_lincheck_cases =
  [
    case "native domain histories linearize" (fun () ->
        List.iter
          (fun policy ->
            for trial = 1 to 8 do
              let n = 5 in
              let d = Native.create ~policy ~seed:trial n in
              let recorder = Lincheck.Native_recorder.create () in
              let worker pid () =
                let rng = Rng.create ((trial * 10) + pid) in
                for _ = 1 to 3 do
                  let x = Rng.int rng n and y = Rng.int rng n in
                  if Rng.bool rng then
                    ignore
                      (Lincheck.Native_recorder.run recorder ~pid ~name:"unite"
                         ~args:[ x; y ]
                         (fun () ->
                           Native.unite d x y;
                           0))
                  else
                    ignore
                      (Lincheck.Native_recorder.run recorder ~pid ~name:"same_set"
                         ~args:[ x; y ]
                         (fun () -> if Native.same_set d x y then 1 else 0))
                done
              in
              let handles = List.init 3 (fun pid -> Domain.spawn (worker pid)) in
              List.iter Domain.join handles;
              let history = Lincheck.Native_recorder.history recorder in
              check Alcotest.int
                (Printf.sprintf "%s trial %d events" (Policy.to_string policy) trial)
                18
                (Lincheck.Native_recorder.size recorder);
              match Lincheck.Checker.check ~n history with
              | Lincheck.Checker.Linearizable -> ()
              | Lincheck.Checker.Not_linearizable msg ->
                Alcotest.failf "%s trial %d: %s" (Policy.to_string policy) trial msg
            done)
          Policy.all);
  ]

let () =
  Alcotest.run "parallel"
    [
      ("variants", variant_cases);
      ("flat-layout", flat_layout_cases);
      ("mixed", mixed_cases);
      ("tuned", tuned_cases);
      ("native-lincheck", native_lincheck_cases);
    ]
