(* Tests for the linearizability checker itself: it must accept legal
   histories, reject illegal ones, respect real-time order, and handle the
   weak find specification. *)

module History = Apram.History
module Checker = Lincheck.Checker
module Spec = Lincheck.Spec

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* History construction helpers.  Events get consecutive indices; steps are
   irrelevant to the checker. *)
let inv pid name args = History.Invoke { pid; call = { History.name; args }; step = 0 }
let ret pid value = History.Return { pid; value; step = 0 }

let expect_linearizable ~n history =
  match Checker.check ~n history with
  | Checker.Linearizable -> ()
  | Checker.Not_linearizable msg -> Alcotest.fail msg

let expect_violation ~n history =
  match Checker.check ~n history with
  | Checker.Linearizable -> Alcotest.fail "expected a violation"
  | Checker.Not_linearizable _ -> ()

let spec_tests =
  [
    case "op_of_call round trips" (fun () ->
        List.iter
          (fun op ->
            check Alcotest.bool "round trip" true
              (Spec.op_of_call (Spec.call_of_op op) = op))
          [ Spec.Same_set (1, 2); Spec.Unite (0, 3); Spec.Find 4 ]);
    case "op_of_call rejects unknown names" (fun () ->
        Alcotest.check_raises "unknown"
          (Invalid_argument "Spec.op_of_call: unknown operation pop") (fun () ->
            ignore (Spec.op_of_call { History.name = "pop"; args = [] })));
    case "apply unite changes partition without mutating input" (fun () ->
        let s = Spec.initial 4 in
        let s', r = Spec.apply s (Spec.Unite (0, 1)) in
        check Alcotest.int "unite returns 0" 0 r;
        check Alcotest.bool "new state united" true
          (Sequential.Quick_find.same_set s' 0 1);
        check Alcotest.bool "old state intact" false
          (Sequential.Quick_find.same_set s 0 1));
    case "matches same_set" (fun () ->
        let s = Spec.initial 4 in
        check Alcotest.bool "false obs 0" true (Spec.matches s (Spec.Same_set (0, 1)) 0);
        check Alcotest.bool "false obs 1" false (Spec.matches s (Spec.Same_set (0, 1)) 1));
    case "matches find is weak" (fun () ->
        let s, _ = Spec.apply (Spec.initial 4) (Spec.Unite (0, 1)) in
        check Alcotest.bool "member ok" true (Spec.matches s (Spec.Find 0) 1);
        check Alcotest.bool "self ok" true (Spec.matches s (Spec.Find 0) 0);
        check Alcotest.bool "non-member rejected" false (Spec.matches s (Spec.Find 0) 2);
        check Alcotest.bool "out of range rejected" false
          (Spec.matches s (Spec.Find 0) 9));
    case "is_query" (fun () ->
        check Alcotest.bool "same_set" true (Spec.is_query (Spec.Same_set (0, 1)));
        check Alcotest.bool "find" true (Spec.is_query (Spec.Find 0));
        check Alcotest.bool "unite" false (Spec.is_query (Spec.Unite (0, 1))));
  ]

let checker_tests =
  [
    case "empty history linearizes" (fun () -> expect_linearizable ~n:3 []);
    case "sequential history linearizes" (fun () ->
        expect_linearizable ~n:3
          [
            inv 0 "unite" [ 0; 1 ];
            ret 0 0;
            inv 0 "same_set" [ 0; 1 ];
            ret 0 1;
            inv 0 "same_set" [ 0; 2 ];
            ret 0 0;
          ]);
    case "same_set true without any unite is a violation" (fun () ->
        expect_violation ~n:3 [ inv 0 "same_set" [ 0; 1 ]; ret 0 1 ]);
    case "same_set false after completed unite is a violation" (fun () ->
        expect_violation ~n:3
          [
            inv 0 "unite" [ 0; 1 ];
            ret 0 0;
            inv 1 "same_set" [ 0; 1 ];
            ret 1 0;
          ]);
    case "overlapping unite may or may not be seen" (fun () ->
        (* The unite overlaps the query, so both answers linearize. *)
        let base result =
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "same_set" [ 0; 1 ];
            ret 1 result;
            ret 0 0;
          ]
        in
        expect_linearizable ~n:3 (base 1);
        expect_linearizable ~n:3 (base 0));
    case "real-time order is enforced across processes" (fun () ->
        (* p0 sees 0~1 false AFTER p1's unite(0,1) completed: violation. *)
        expect_violation ~n:3
          [
            inv 1 "unite" [ 0; 1 ];
            ret 1 0;
            inv 0 "same_set" [ 0; 1 ];
            ret 0 0;
          ]);
    case "transitivity across processes" (fun () ->
        expect_linearizable ~n:4
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "unite" [ 1; 2 ];
            ret 0 0;
            ret 1 0;
            inv 0 "same_set" [ 0; 2 ];
            ret 0 1;
          ]);
    case "inconsistent pair of queries is a violation" (fun () ->
        (* After both unites complete, 0~2 must hold; answering 1 for 0~1
           and 0 for 1~2 in sequence cannot linearize. *)
        expect_violation ~n:4
          [
            inv 0 "unite" [ 0; 1 ];
            ret 0 0;
            inv 0 "unite" [ 1; 2 ];
            ret 0 0;
            inv 1 "same_set" [ 0; 1 ];
            ret 1 1;
            inv 1 "same_set" [ 1; 2 ];
            ret 1 0;
          ]);
    case "find result must be in the caller's class" (fun () ->
        expect_linearizable ~n:3
          [ inv 0 "unite" [ 0; 1 ]; ret 0 0; inv 0 "find" [ 0 ]; ret 0 1 ];
        expect_violation ~n:3
          [ inv 0 "unite" [ 0; 1 ]; ret 0 0; inv 0 "find" [ 0 ]; ret 0 2 ]);
    case "pending invocation rejected" (fun () ->
        Alcotest.check_raises "pending"
          (Invalid_argument "Checker: history has 1 pending operations") (fun () ->
            ignore (Checker.check ~n:2 [ inv 0 "unite" [ 0; 1 ] ])));
    case "witness returns a legal order" (fun () ->
        let history =
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "same_set" [ 0; 1 ];
            ret 1 1;
            ret 0 0;
          ]
        in
        match Checker.witness ~n:2 history with
        | None -> Alcotest.fail "expected a witness"
        | Some order ->
          check Alcotest.int "both ops" 2 (List.length order);
          (* The query answered 1, so the unite must come first. *)
          (match order with
          | first :: _ ->
            check Alcotest.string "unite first" "unite"
              first.History.call.History.name
          | [] -> Alcotest.fail "empty order"));
    case "check_exn raises on violation" (fun () ->
        match
          Checker.check ~n:2 [ inv 0 "same_set" [ 0; 1 ]; ret 0 1 ]
        with
        | Checker.Linearizable -> Alcotest.fail "should violate"
        | Checker.Not_linearizable msg ->
          Alcotest.check_raises "raises" (Failure msg) (fun () ->
              Checker.check_exn ~n:2 [ inv 0 "same_set" [ 0; 1 ]; ret 0 1 ]));
    case "interleaved operations across three processes" (fun () ->
        expect_linearizable ~n:5
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "unite" [ 2; 3 ];
            inv 2 "same_set" [ 0; 3 ];
            ret 2 0;
            ret 0 0;
            ret 1 0;
            inv 2 "unite" [ 1; 2 ];
            ret 2 0;
            inv 0 "same_set" [ 0; 3 ];
            ret 0 1;
          ]);
  ]

(* Crash-aware checking: histories with pending invocations from killed
   processes.  A crashed op must fully linearize or fully vanish; the
   final-memory observations decide which. *)
let crash_tests =
  let pending_unite = inv 1 "unite" [ 0; 1 ] in
  (* p0 completes unite(2,3); p1 dies inside unite(0,1). *)
  let base = [ inv 0 "unite" [ 2; 3 ]; ret 0 0; pending_unite ] in
  [
    case "complete history degenerates to check" (fun () ->
        let h = [ inv 0 "unite" [ 0; 1 ]; ret 0 0; inv 1 "same_set" [ 0; 1 ]; ret 1 1 ] in
        let v = Checker.check_crash ~n:3 h in
        check Alcotest.bool "ok" true v.Checker.crash_ok;
        check Alcotest.int "nothing pending" 0
          (List.length v.Checker.linearized + List.length v.Checker.vanished));
    case "crashed unite whose CAS landed must linearize" (fun () ->
        (* Final memory has 0 and 1 rooted together: only including the
           pending unite explains it. *)
        let v = Checker.check_crash ~n:5 ~final_roots:[| 0; 0; 2; 2; 4 |] base in
        check Alcotest.bool "ok" true v.Checker.crash_ok;
        check Alcotest.int "linearized" 1 (List.length v.Checker.linearized);
        check Alcotest.int "vanished" 0 (List.length v.Checker.vanished);
        match v.Checker.linearized with
        | [ call ] -> check Alcotest.string "the unite" "unite" call.History.name
        | _ -> Alcotest.fail "expected exactly the pending unite");
    case "crashed unite whose CAS never landed must vanish" (fun () ->
        let v = Checker.check_crash ~n:5 ~final_roots:[| 0; 1; 2; 2; 4 |] base in
        check Alcotest.bool "ok" true v.Checker.crash_ok;
        check Alcotest.int "linearized" 0 (List.length v.Checker.linearized);
        check Alcotest.int "vanished" 1 (List.length v.Checker.vanished));
    case "without final roots vanish is preferred" (fun () ->
        let v = Checker.check_crash ~n:5 base in
        check Alcotest.bool "ok" true v.Checker.crash_ok;
        check Alcotest.int "linearized" 0 (List.length v.Checker.linearized);
        check Alcotest.int "vanished" 1 (List.length v.Checker.vanished));
    case "pending query always vanishes" (fun () ->
        let h = [ inv 0 "unite" [ 0; 1 ]; ret 0 0; inv 1 "same_set" [ 0; 1 ] ] in
        let v = Checker.check_crash ~n:3 h in
        check Alcotest.bool "ok" true v.Checker.crash_ok;
        check Alcotest.int "vanished" 1 (List.length v.Checker.vanished));
    case "completed contradiction still fails" (fun () ->
        (* A completed same_set(2,3)=false after unite(2,3) completed is a
           violation no include/vanish choice can repair. *)
        let h =
          [
            inv 0 "unite" [ 2; 3 ];
            ret 0 0;
            inv 2 "same_set" [ 2; 3 ];
            ret 2 0;
            pending_unite;
          ]
        in
        let v = Checker.check_crash ~n:5 ~final_roots:[| 0; 0; 2; 2; 4 |] h in
        check Alcotest.bool "not ok" false v.Checker.crash_ok);
    case "final state contradicting completed unites fails" (fun () ->
        (* unite(2,3) completed but the final memory keeps them apart: the
           observation for the pending unite's pair is satisfiable, the
           extra connectivity is not modeled -- craft the pending pair to
           overlap so the observation itself is the contradiction. *)
        let h = [ inv 0 "unite" [ 0; 1 ]; ret 0 0; inv 1 "unite" [ 0; 1 ] ] in
        (* Completed unite(0,1) but final memory says 0 and 1 apart. *)
        let v = Checker.check_crash ~n:3 ~final_roots:[| 0; 1; 2 |] h in
        check Alcotest.bool "not ok" false v.Checker.crash_ok);
    case "two pending unites: landed subset is found" (fun () ->
        let h =
          [
            inv 0 "unite" [ 0; 1 ];
            ret 0 0;
            inv 1 "unite" [ 2; 3 ];
            inv 2 "unite" [ 3; 4 ];
          ]
        in
        (* Only unite(2,3) landed. *)
        let v = Checker.check_crash ~n:6 ~final_roots:[| 0; 0; 2; 2; 4; 5 |] h in
        check Alcotest.bool "ok" true v.Checker.crash_ok;
        check Alcotest.int "one linearized" 1 (List.length v.Checker.linearized);
        check Alcotest.int "one vanished" 1 (List.length v.Checker.vanished);
        match v.Checker.linearized with
        | [ call ] -> check Alcotest.(list int) "the landed one" [ 2; 3 ] call.History.args
        | _ -> Alcotest.fail "expected exactly one linearized unite");
    case "simulator crash histories are strictly linearizable" (fun () ->
        (* >= 100 crash/stall-storm histories per policy, as fuzzed from the
           CLI; every policy must pass with pending ops resolved. *)
        let rng = Repro_util.Rng.create 23 in
        let histories = ref 0 in
        let trial = ref 0 in
        while !histories < 100 do
          incr trial;
          let n = 5 in
          let ops =
            Array.init 3 (fun _ ->
                List.init 3 (fun _ ->
                    let x = Repro_util.Rng.int rng n and y = Repro_util.Rng.int rng n in
                    if Repro_util.Rng.bool rng then Workload.Op.Unite (x, y)
                    else Workload.Op.Same_set (x, y)))
          in
          let sched =
            if !trial mod 3 = 2 then
              Apram.Scheduler.stall_storm ~seed:!trial ~prob_percent:30 ~stall:5
            else
              Apram.Scheduler.crash ~seed:!trial ~victims:[ 0; 1 ]
                ~after:(2 + (!trial mod 12))
          in
          List.iter
            (fun policy ->
              let r =
                Harness.Measure.run_sim ~sched ~policy ~n ~seed:!trial ~ops ()
              in
              let history = r.Harness.Measure.history in
              let final_roots =
                Dsu.Sim.roots_of_memory r.Harness.Measure.spec
                  r.Harness.Measure.memory
              in
              let v = Checker.check_crash ~n ~final_roots history in
              if Apram.History.pending_calls history <> [] then incr histories;
              if not v.Checker.crash_ok then Alcotest.fail v.Checker.crash_detail)
            Dsu.Find_policy.all
        done);
  ]

(* Randomized round-trip: run the spec sequentially to fabricate histories
   that are legal by construction; the checker must accept them all. *)
let roundtrip_tests =
  [
    case "sequentially generated histories always linearize" (fun () ->
        let rng = Repro_util.Rng.create 41 in
        for _trial = 1 to 50 do
          let n = 4 + Repro_util.Rng.int rng 3 in
          let state = ref (Spec.initial n) in
          let events = ref [] in
          for _ = 1 to 12 do
            let x = Repro_util.Rng.int rng n and y = Repro_util.Rng.int rng n in
            let op =
              if Repro_util.Rng.bool rng then Spec.Unite (x, y) else Spec.Same_set (x, y)
            in
            let state', result = Spec.apply !state op in
            state := state';
            let call = Spec.call_of_op op in
            events :=
              ret 0 result
              :: History.Invoke { pid = 0; call; step = 0 }
              :: !events
          done;
          expect_linearizable ~n (List.rev !events)
        done);
  ]

(* Native fuzz under the tuned memory-order path: real multi-domain
   executions with relaxed parent loads, weak splitting CAS and link
   backoff — the default production configuration — recorded and checked
   against the sequential spec, >= 100 histories per policy. *)
let native_tuned_tests =
  [
    case "native tuned-path histories linearize (100 per policy)" (fun () ->
        List.iter
          (fun policy ->
            for trial = 1 to 100 do
              let n = 5 in
              let d =
                Dsu.Native.create ~policy
                  ~memory_order:Dsu.Memory_order.Relaxed_reads ~seed:trial n
              in
              let recorder = Lincheck.Native_recorder.create () in
              let worker pid () =
                let rng = Repro_util.Rng.create ((trial * 100) + pid) in
                for _ = 1 to 3 do
                  let x = Repro_util.Rng.int rng n
                  and y = Repro_util.Rng.int rng n in
                  if Repro_util.Rng.bool rng then
                    ignore
                      (Lincheck.Native_recorder.run recorder ~pid ~name:"unite"
                         ~args:[ x; y ]
                         (fun () ->
                           Dsu.Native.unite d x y;
                           0))
                  else
                    ignore
                      (Lincheck.Native_recorder.run recorder ~pid
                         ~name:"same_set" ~args:[ x; y ]
                         (fun () -> if Dsu.Native.same_set d x y then 1 else 0))
                done
              in
              let handles = List.init 3 (fun pid -> Domain.spawn (worker pid)) in
              List.iter Domain.join handles;
              let history = Lincheck.Native_recorder.history recorder in
              match Checker.check ~n history with
              | Checker.Linearizable -> ()
              | Checker.Not_linearizable msg ->
                Alcotest.failf "%s trial %d: %s"
                  (Dsu.Find_policy.to_string policy)
                  trial msg
            done)
          Dsu.Find_policy.all);
  ]

(* Packed-layout fuzz: the single-word (rank,parent) representation under
   by-rank linking, exercised by real domains.  Complete histories go
   through the standard checker; crash histories are produced natively by
   arming the fault-injection engine with crash-stop rules — a killed
   worker leaves its pending invocation in the recorder, and the
   crash-aware checker resolves it against the final packed memory. *)
let packed_tests =
  let module Fi = Repro_fault.Inject in
  let n = 5 in
  let worker_ops d recorder ~trial pid =
    let rng = Repro_util.Rng.create ((trial * 100) + pid) in
    for _ = 1 to 3 do
      let x = Repro_util.Rng.int rng n and y = Repro_util.Rng.int rng n in
      if Repro_util.Rng.bool rng then
        ignore
          (Lincheck.Native_recorder.run recorder ~pid ~name:"unite"
             ~args:[ x; y ]
             (fun () ->
               Dsu.Packed.Native.unite d x y;
               0))
      else
        ignore
          (Lincheck.Native_recorder.run recorder ~pid ~name:"same_set"
             ~args:[ x; y ]
             (fun () -> if Dsu.Packed.Native.same_set d x y then 1 else 0))
    done
  in
  [
    case "packed histories linearize (100 per policy)" (fun () ->
        List.iter
          (fun policy ->
            for trial = 1 to 100 do
              let d =
                Dsu.Packed.Native.create ~policy
                  ~memory_order:Dsu.Memory_order.Relaxed_reads n
              in
              let recorder = Lincheck.Native_recorder.create () in
              let handles =
                List.init 3 (fun pid ->
                    Domain.spawn (fun () -> worker_ops d recorder ~trial pid))
              in
              List.iter Domain.join handles;
              match Checker.check ~n (Lincheck.Native_recorder.history recorder) with
              | Checker.Linearizable -> ()
              | Checker.Not_linearizable msg ->
                Alcotest.failf "packed %s trial %d: %s"
                  (Dsu.Find_policy.to_string policy)
                  trial msg
            done)
          Dsu.Find_policy.all);
    case "packed crash histories are strictly linearizable (>= 100)" (fun () ->
        (* Loop until 100 histories with a genuinely pending (crashed)
           operation have been checked; trials where the countdown outlives
           the workload still get a complete-history check for free. *)
        let histories = ref 0 in
        let trial = ref 0 in
        while !histories < 100 do
          incr trial;
          List.iter
            (fun policy ->
              let d =
                Dsu.Packed.Native.create ~policy
                  ~memory_order:Dsu.Memory_order.Relaxed_reads n
              in
              let recorder = Lincheck.Native_recorder.create () in
              Fi.arm
                {
                  Fi.seed = !trial;
                  rules_for =
                    (fun slot ->
                      if slot <= 1 then
                        [ Fi.rule ~prob:1.0 ~after:(slot + (!trial mod 6)) Fi.Crash ]
                      else []);
                };
              let worker pid () =
                Fi.enroll ~slot:pid;
                try worker_ops d recorder ~trial:!trial pid
                with Fi.Crashed (_, _) -> ()
              in
              let handles = List.init 3 (fun pid -> Domain.spawn (worker pid)) in
              List.iter Domain.join handles;
              Fi.disarm ();
              let history = Lincheck.Native_recorder.history recorder in
              let final_roots = Array.init n (Dsu.Packed.Native.find d) in
              let v = Checker.check_crash ~n ~final_roots history in
              if Apram.History.pending_calls history <> [] then incr histories;
              if not v.Checker.crash_ok then
                Alcotest.failf "packed crash %s trial %d: %s"
                  (Dsu.Find_policy.to_string policy)
                  !trial v.Checker.crash_detail)
            Dsu.Find_policy.all
        done);
  ]

let () =
  Alcotest.run "lincheck"
    [
      ("spec", spec_tests);
      ("checker", checker_tests);
      ("crash", crash_tests);
      ("native-tuned", native_tuned_tests);
      ("packed", packed_tests);
      ("roundtrip", roundtrip_tests);
    ]
