(* Tests for the linearizability checker itself: it must accept legal
   histories, reject illegal ones, respect real-time order, and handle the
   weak find specification. *)

module History = Apram.History
module Checker = Lincheck.Checker
module Spec = Lincheck.Spec

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* History construction helpers.  Events get consecutive indices; steps are
   irrelevant to the checker. *)
let inv pid name args = History.Invoke { pid; call = { History.name; args }; step = 0 }
let ret pid value = History.Return { pid; value; step = 0 }

let expect_linearizable ~n history =
  match Checker.check ~n history with
  | Checker.Linearizable -> ()
  | Checker.Not_linearizable msg -> Alcotest.fail msg

let expect_violation ~n history =
  match Checker.check ~n history with
  | Checker.Linearizable -> Alcotest.fail "expected a violation"
  | Checker.Not_linearizable _ -> ()

let spec_tests =
  [
    case "op_of_call round trips" (fun () ->
        List.iter
          (fun op ->
            check Alcotest.bool "round trip" true
              (Spec.op_of_call (Spec.call_of_op op) = op))
          [ Spec.Same_set (1, 2); Spec.Unite (0, 3); Spec.Find 4 ]);
    case "op_of_call rejects unknown names" (fun () ->
        Alcotest.check_raises "unknown"
          (Invalid_argument "Spec.op_of_call: unknown operation pop") (fun () ->
            ignore (Spec.op_of_call { History.name = "pop"; args = [] })));
    case "apply unite changes partition without mutating input" (fun () ->
        let s = Spec.initial 4 in
        let s', r = Spec.apply s (Spec.Unite (0, 1)) in
        check Alcotest.int "unite returns 0" 0 r;
        check Alcotest.bool "new state united" true
          (Sequential.Quick_find.same_set s' 0 1);
        check Alcotest.bool "old state intact" false
          (Sequential.Quick_find.same_set s 0 1));
    case "matches same_set" (fun () ->
        let s = Spec.initial 4 in
        check Alcotest.bool "false obs 0" true (Spec.matches s (Spec.Same_set (0, 1)) 0);
        check Alcotest.bool "false obs 1" false (Spec.matches s (Spec.Same_set (0, 1)) 1));
    case "matches find is weak" (fun () ->
        let s, _ = Spec.apply (Spec.initial 4) (Spec.Unite (0, 1)) in
        check Alcotest.bool "member ok" true (Spec.matches s (Spec.Find 0) 1);
        check Alcotest.bool "self ok" true (Spec.matches s (Spec.Find 0) 0);
        check Alcotest.bool "non-member rejected" false (Spec.matches s (Spec.Find 0) 2);
        check Alcotest.bool "out of range rejected" false
          (Spec.matches s (Spec.Find 0) 9));
    case "is_query" (fun () ->
        check Alcotest.bool "same_set" true (Spec.is_query (Spec.Same_set (0, 1)));
        check Alcotest.bool "find" true (Spec.is_query (Spec.Find 0));
        check Alcotest.bool "unite" false (Spec.is_query (Spec.Unite (0, 1))));
  ]

let checker_tests =
  [
    case "empty history linearizes" (fun () -> expect_linearizable ~n:3 []);
    case "sequential history linearizes" (fun () ->
        expect_linearizable ~n:3
          [
            inv 0 "unite" [ 0; 1 ];
            ret 0 0;
            inv 0 "same_set" [ 0; 1 ];
            ret 0 1;
            inv 0 "same_set" [ 0; 2 ];
            ret 0 0;
          ]);
    case "same_set true without any unite is a violation" (fun () ->
        expect_violation ~n:3 [ inv 0 "same_set" [ 0; 1 ]; ret 0 1 ]);
    case "same_set false after completed unite is a violation" (fun () ->
        expect_violation ~n:3
          [
            inv 0 "unite" [ 0; 1 ];
            ret 0 0;
            inv 1 "same_set" [ 0; 1 ];
            ret 1 0;
          ]);
    case "overlapping unite may or may not be seen" (fun () ->
        (* The unite overlaps the query, so both answers linearize. *)
        let base result =
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "same_set" [ 0; 1 ];
            ret 1 result;
            ret 0 0;
          ]
        in
        expect_linearizable ~n:3 (base 1);
        expect_linearizable ~n:3 (base 0));
    case "real-time order is enforced across processes" (fun () ->
        (* p0 sees 0~1 false AFTER p1's unite(0,1) completed: violation. *)
        expect_violation ~n:3
          [
            inv 1 "unite" [ 0; 1 ];
            ret 1 0;
            inv 0 "same_set" [ 0; 1 ];
            ret 0 0;
          ]);
    case "transitivity across processes" (fun () ->
        expect_linearizable ~n:4
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "unite" [ 1; 2 ];
            ret 0 0;
            ret 1 0;
            inv 0 "same_set" [ 0; 2 ];
            ret 0 1;
          ]);
    case "inconsistent pair of queries is a violation" (fun () ->
        (* After both unites complete, 0~2 must hold; answering 1 for 0~1
           and 0 for 1~2 in sequence cannot linearize. *)
        expect_violation ~n:4
          [
            inv 0 "unite" [ 0; 1 ];
            ret 0 0;
            inv 0 "unite" [ 1; 2 ];
            ret 0 0;
            inv 1 "same_set" [ 0; 1 ];
            ret 1 1;
            inv 1 "same_set" [ 1; 2 ];
            ret 1 0;
          ]);
    case "find result must be in the caller's class" (fun () ->
        expect_linearizable ~n:3
          [ inv 0 "unite" [ 0; 1 ]; ret 0 0; inv 0 "find" [ 0 ]; ret 0 1 ];
        expect_violation ~n:3
          [ inv 0 "unite" [ 0; 1 ]; ret 0 0; inv 0 "find" [ 0 ]; ret 0 2 ]);
    case "pending invocation rejected" (fun () ->
        Alcotest.check_raises "pending"
          (Invalid_argument "Checker: history has 1 pending operations") (fun () ->
            ignore (Checker.check ~n:2 [ inv 0 "unite" [ 0; 1 ] ])));
    case "witness returns a legal order" (fun () ->
        let history =
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "same_set" [ 0; 1 ];
            ret 1 1;
            ret 0 0;
          ]
        in
        match Checker.witness ~n:2 history with
        | None -> Alcotest.fail "expected a witness"
        | Some order ->
          check Alcotest.int "both ops" 2 (List.length order);
          (* The query answered 1, so the unite must come first. *)
          (match order with
          | first :: _ ->
            check Alcotest.string "unite first" "unite"
              first.History.call.History.name
          | [] -> Alcotest.fail "empty order"));
    case "check_exn raises on violation" (fun () ->
        match
          Checker.check ~n:2 [ inv 0 "same_set" [ 0; 1 ]; ret 0 1 ]
        with
        | Checker.Linearizable -> Alcotest.fail "should violate"
        | Checker.Not_linearizable msg ->
          Alcotest.check_raises "raises" (Failure msg) (fun () ->
              Checker.check_exn ~n:2 [ inv 0 "same_set" [ 0; 1 ]; ret 0 1 ]));
    case "interleaved operations across three processes" (fun () ->
        expect_linearizable ~n:5
          [
            inv 0 "unite" [ 0; 1 ];
            inv 1 "unite" [ 2; 3 ];
            inv 2 "same_set" [ 0; 3 ];
            ret 2 0;
            ret 0 0;
            ret 1 0;
            inv 2 "unite" [ 1; 2 ];
            ret 2 0;
            inv 0 "same_set" [ 0; 3 ];
            ret 0 1;
          ]);
  ]

(* Randomized round-trip: run the spec sequentially to fabricate histories
   that are legal by construction; the checker must accept them all. *)
let roundtrip_tests =
  [
    case "sequentially generated histories always linearize" (fun () ->
        let rng = Repro_util.Rng.create 41 in
        for _trial = 1 to 50 do
          let n = 4 + Repro_util.Rng.int rng 3 in
          let state = ref (Spec.initial n) in
          let events = ref [] in
          for _ = 1 to 12 do
            let x = Repro_util.Rng.int rng n and y = Repro_util.Rng.int rng n in
            let op =
              if Repro_util.Rng.bool rng then Spec.Unite (x, y) else Spec.Same_set (x, y)
            in
            let state', result = Spec.apply !state op in
            state := state';
            let call = Spec.call_of_op op in
            events :=
              ret 0 result
              :: History.Invoke { pid = 0; call; step = 0 }
              :: !events
          done;
          expect_linearizable ~n (List.rev !events)
        done);
  ]

let () =
  Alcotest.run "lincheck"
    [
      ("spec", spec_tests);
      ("checker", checker_tests);
      ("roundtrip", roundtrip_tests);
    ]
